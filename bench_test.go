// Package repro's benchmarks: one testing.B benchmark per experiment of
// EXPERIMENTS.md (E1–E10). cmd/benchtab prints the full tables with
// cross-checks; these benchmarks measure the same code paths under the
// standard Go harness so regressions are caught by `go test -bench`.
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cond"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/incr"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/porder"
	"repro/internal/prxml"
	"repro/internal/rel"
	"repro/internal/rules"
	"repro/internal/sampling"
	"repro/internal/server"
	"repro/internal/wal"
)

// BenchmarkE1TIDScaling measures Theorem 1: the tractable engine on
// treewidth-1 TID chains of growing size (expected: ns/op grows linearly
// with n).
func BenchmarkE1TIDScaling(b *testing.B) {
	q := rel.HardQuery()
	for _, n := range []int{50, 200, 800} {
		tid := gen.RSTChain(n, 0.5)
		b.Run(fmt.Sprintf("engine/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ProbabilityTID(tid, q, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The exponential baseline, at the largest size it can stand.
	for _, n := range []int{3, 5} {
		tid := gen.RSTChain(n, 0.5)
		b.Run(fmt.Sprintf("enumeration/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tid.QueryProbabilityEnumeration(q)
			}
		})
	}
}

// BenchmarkE1TIDScalingPrepared measures the amortized path of the
// Prepare/Evaluate split on the E1 instances: the plan is compiled once and
// only (*Plan).Probability runs per iteration, as in a server answering
// repeated probability requests for the same query and structure.
func BenchmarkE1TIDScalingPrepared(b *testing.B) {
	q := rel.HardQuery()
	for _, n := range []int{50, 200, 800} {
		tid := gen.RSTChain(n, 0.5)
		b.Run(fmt.Sprintf("evaluate/n=%d", n), func(b *testing.B) {
			pl, p, err := core.PrepareTID(tid, q, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pl.Probability(p); err != nil { // warm the transition tables
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pl.Probability(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sweepMaps builds b probability maps over the plan events of tid, varying
// every event away from its base value — the parameter-sweep workload of the
// batched and parallel benchmarks.
func sweepMaps(tid *pdb.TID, b int) []logic.Prob {
	out := make([]logic.Prob, b)
	for i := range out {
		m := make(logic.Prob, tid.NumFacts())
		for f := 0; f < tid.NumFacts(); f++ {
			m[tid.EventOf(f)] = 0.1 + 0.8*float64((i+f)%16)/15
		}
		out[i] = m
	}
	return out
}

// BenchmarkE1Batched measures the multi-lane batch path on E1 n=800: one
// ProbabilityBatch call with B lanes per iteration. The per-assignment
// metric is what a parameter sweep pays per parameter setting; compare
// lanes=1 against lanes=64 for the amortization of the row DP.
func BenchmarkE1Batched(b *testing.B) {
	q := rel.HardQuery()
	tid := gen.RSTChain(800, 0.5)
	pl, _, err := core.PrepareTID(tid, q, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := pl.Freeze(); err != nil {
		b.Fatal(err)
	}
	for _, lanes := range []int{1, 8, 16, 64, 256} {
		ps := sweepMaps(tid, lanes)
		b.Run(fmt.Sprintf("lanes=%d/n=800", lanes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pl.ProbabilityBatch(ps); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lanes), "ns/assign")
		})
	}
}

// BenchmarkE1Parallel measures concurrent serving of one shared frozen plan
// on E1 n=800: b.N independent evaluations split over g goroutines. ns/op is
// wall-clock per evaluation, so ideal scaling divides it by g.
func BenchmarkE1Parallel(b *testing.B) {
	q := rel.HardQuery()
	tid := gen.RSTChain(800, 0.5)
	pl, p, err := core.PrepareTID(tid, q, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := pl.Freeze(); err != nil {
		b.Fatal(err)
	}
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d/n=800", g), func(b *testing.B) {
			b.SetParallelism(1) // we manage the fan-out ourselves
			var wg sync.WaitGroup
			share := b.N / g
			b.ResetTimer()
			for w := 0; w < g; w++ {
				n := share
				if w == g-1 {
					n = b.N - share*(g-1)
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := pl.Probability(p); err != nil {
							b.Error(err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
		})
	}
}

// BenchmarkE1Update measures incremental maintenance on E1 n=800: a
// single-tuple SetProb plus the refreshed probability through a live
// materialized view (internal/incr), against re-Prepare + evaluate as the
// baseline a snapshot engine would pay. The ns/update metric lands in
// BENCH_BASELINE.json as ns_per_update.
func BenchmarkE1Update(b *testing.B) {
	q := rel.HardQuery()
	tid := gen.RSTChain(800, 0.5)
	b.Run("incremental/n=800", func(b *testing.B) {
		s, err := incr.NewStore(tid)
		if err != nil {
			b.Fatal(err)
		}
		v, err := s.RegisterView(q, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Period-7 weights are coprime to the id cycle: every SetProb
			// writes a real change (an unchanged weight commits as a no-op).
			if err := s.SetProb((i*37)%s.Len(), float64(i%7+1)/10); err != nil {
				b.Fatal(err)
			}
			_ = v.Probability()
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/update")
	})
	b.Run("reprepare/n=800", func(b *testing.B) {
		work := gen.RSTChain(800, 0.5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			work.Probs[(i*37)%work.NumFacts()] = 0.3 + 0.4*float64(i%2)
			pl, p, err := core.PrepareTID(work, q, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pl.Probability(p); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/update")
	})
	// The amortized batch path: 64 staged SetProbs, one commit.
	b.Run("batch64/n=800", func(b *testing.B) {
		s, err := incr.NewStore(tid)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.RegisterView(q, core.Options{}); err != nil {
			b.Fatal(err)
		}
		us := make([]incr.Update, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range us {
				us[j] = incr.Update{Op: incr.OpSet, ID: (i + j*37) % s.Len(), P: 0.3 + 0.4*float64(j%2)}
			}
			if err := s.ApplyBatch(us); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(us)), "ns/update")
	})
	// Net-zero churn: every staged change is staged back to the committed
	// weight inside the same batch, so the delta commit recomputes only the
	// touched leaves, finds each table unchanged, and short-circuits instead
	// of walking the spine — the low-impact floor of change propagation.
	// Compare against batch64 (every update propagates to the root).
	b.Run("churn-batch64/n=800", func(b *testing.B) {
		s, err := incr.NewStore(tid)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.RegisterView(q, core.Options{}); err != nil {
			b.Fatal(err)
		}
		us := make([]incr.Update, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < len(us); j += 2 {
				id := (i + j*37) % s.Len()
				us[j] = incr.Update{Op: incr.OpSet, ID: id, P: 0.9}
				us[j+1] = incr.Update{Op: incr.OpSet, ID: id, P: 0.5}
			}
			if err := s.ApplyBatch(us); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(us)), "ns/update")
	})
	// Several live views over the same store, refreshed by one batched
	// commit: the shard-major sweep recomputes every view's dirty spine
	// back-to-back through the compiled row programs.
	b.Run("multiview-batch64/n=800", func(b *testing.B) {
		s, err := incr.NewStore(tid)
		if err != nil {
			b.Fatal(err)
		}
		for _, vq := range []rel.CQ{
			q,
			rel.NewCQ(rel.NewAtom("R", rel.V("x"))),
			rel.NewCQ(rel.NewAtom("T", rel.V("x"))),
		} {
			if _, err := s.RegisterView(vq, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		us := make([]incr.Update, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range us {
				us[j] = incr.Update{Op: incr.OpSet, ID: (i + j*37) % s.Len(), P: float64((i+j)%7+1) / 10}
			}
			if err := s.ApplyBatch(us); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(us)), "ns/update")
	})
}

// BenchmarkE1JoinHeavy is the join-merge regression guard: a partial 3-tree
// instance whose branching decomposition is dense in NiceJoin nodes, under
// the prepared scalar path (the bits-sorted run merge in computeNode) and the
// frozen compiled-program path. The quadratic all-pairs join scan this
// replaced made this shape superlinearly slower.
func BenchmarkE1JoinHeavy(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	g, _ := gen.PartialKTree(120, 3, 0.6, r)
	tid := gen.RSTOverGraph(g, 0.05, 0.3, r)
	q := rel.HardQuery()
	pl, p, err := core.PrepareTID(tid, q, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dp/n=120", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pl.Probability(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := pl.Freeze(); err != nil {
		b.Fatal(err)
	}
	b.Run("prog/n=120", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pl.Probability(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE1ShardedUpdate measures update routing in the sharded store:
// the instance is K disjoint chains, 720 facts in total, served through one
// live hard-query view. A SetProb dirties only its owning shard's spine, so
// ns/update falls as K grows while the instance size stays fixed; shards=1
// is the unsharded baseline on the same fact count. The ns/update metric
// lands in BENCH_BASELINE.json as ns_per_update (with the shard count as
// "shards"), which is the recorded evidence that sharded update cost scales
// with the dirty shard, not the instance.
func BenchmarkE1ShardedUpdate(b *testing.B) {
	q := rel.HardQuery()
	const links = 240 // 3 facts per link
	for _, k := range []int{1, 4, 16} {
		tid := gen.RSTChains(k, links/k, 0.5)
		b.Run(fmt.Sprintf("shards=%d/facts=720", k), func(b *testing.B) {
			s, err := incr.NewStore(tid)
			if err != nil {
				b.Fatal(err)
			}
			v, err := s.RegisterView(q, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The weight cycle (period 7) is coprime to the id cycle, so
				// every visit writes a genuinely different weight — a SetProb
				// that matches the current value would commit as a no-op.
				if err := s.SetProb((i*37)%s.Len(), float64(i%7+1)/10); err != nil {
					b.Fatal(err)
				}
				_ = v.Probability()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/update")
			b.ReportMetric(float64(k), "shards")
		})
	}
}

// BenchmarkE2WidthSweep measures Theorem 2: cost vs planted width on
// partial k-tree TIDs of fixed size, plus correlated pc-instances.
func BenchmarkE2WidthSweep(b *testing.B) {
	q := rel.HardQuery()
	for _, k := range []int{1, 2, 3} {
		r := rand.New(rand.NewSource(42))
		g, _ := gen.PartialKTree(30, k, 0.6, r)
		tid := gen.RSTOverGraph(g, 0.05, 0.3, r)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ProbabilityTID(tid, q, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	r := rand.New(rand.NewSource(42))
	c, p := gen.CorrelatedPC(200, 4, r)
	qp := rel.NewCQ(
		rel.NewAtom("E", rel.V("x"), rel.V("y")),
		rel.NewAtom("E", rel.V("y"), rel.V("z")),
	)
	b.Run("correlated/n=200", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ProbabilityPC(c, p, qp, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE3PrXMLLocal measures tree-pattern probability on local
// (ind/mux) documents: linear in document size.
func BenchmarkE3PrXMLLocal(b *testing.B) {
	pattern := prxml.NewPattern("item").WithDescendant(prxml.NewPattern("value"))
	for _, n := range []int{100, 400, 1600} {
		r := rand.New(rand.NewSource(7))
		doc := gen.LocalDoc(n, 3, r)
		b.Run(fmt.Sprintf("n=%d", doc.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := doc.MatchProbability(pattern); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4ScopeSweep measures event documents of fixed size with growing
// scope bound: exponential in the bound only.
func BenchmarkE4ScopeSweep(b *testing.B) {
	pattern := prxml.NewPattern("entry").WithChild(prxml.NewPattern("payload"))
	for _, scope := range []int{1, 2, 4, 6, 8} {
		r := rand.New(rand.NewSource(int64(scope)))
		doc := gen.ScopedEventDoc(20, scope, r)
		b.Run(fmt.Sprintf("scope=%d", scope), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := doc.MatchProbability(pattern); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5HardQuery contrasts the intro's #P-hard query on tree-shaped
// vs bipartite instances.
func BenchmarkE5HardQuery(b *testing.B) {
	q := rel.HardQuery()
	cases := map[string]*pdb.TID{
		"engine/chain200":    gen.RSTChain(200, 0.5),
		"engine/bipartite5":  gen.RSTBipartite(5, 5, 0.5),
		"enumeration/chain3": gen.RSTChain(3, 0.5),
	}
	for name, tid := range cases {
		tid := tid
		if name == "enumeration/chain3" {
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tid.QueryProbabilityEnumeration(q)
				}
			})
			continue
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ProbabilityTID(tid, q, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5HardQueryPrepared measures the prepare-once/evaluate-many
// variant of E5: the #P-hard query on the chain and bipartite instances
// with all structural work hoisted into Prepare.
func BenchmarkE5HardQueryPrepared(b *testing.B) {
	q := rel.HardQuery()
	cases := []struct {
		name string
		tid  *pdb.TID
	}{
		{"evaluate/chain200", gen.RSTChain(200, 0.5)},
		{"evaluate/bipartite5", gen.RSTBipartite(5, 5, 0.5)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			pl, p, err := core.PrepareTID(tc.tid, q, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pl.Probability(p); err != nil { // warm the transition tables
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pl.Probability(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Linext measures linear-extension counting: the downset DP on
// random posets vs the closed form on series-parallel ones.
func BenchmarkE6Linext(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{12, 18, 24} {
		l := gen.RandomDAGPoset(n, 0.15, 3, r)
		b.Run(fmt.Sprintf("downsetDP/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := l.CountLinearExtensions(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, n := range []int{100, 1000, 10000} {
		sp := gen.RandomSP(n, r)
		b.Run(fmt.Sprintf("seriesParallel/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sp.CountLinearExtensions()
			}
		})
	}
}

// BenchmarkE7OrderAlgebra measures the algebra operators on merged logs.
func BenchmarkE7OrderAlgebra(b *testing.B) {
	merged := gen.InterleavedLogs(3, 60)
	b.Run("select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			porder.Select(merged, func(t porder.Tuple) bool { return t[0] == "m0" })
		}
	})
	b.Run("unionParallel", func(b *testing.B) {
		a := gen.InterleavedLogs(1, 60)
		c := gen.InterleavedLogs(1, 60)
		for i := 0; i < b.N; i++ {
			porder.UnionParallel(a, c)
		}
	})
	var world []porder.Tuple
	for j := 0; j < 60; j++ {
		for m := 0; m < 3; m++ {
			world = append(world, porder.Tuple{fmt.Sprintf("m%d", m), fmt.Sprintf("evt%d", j)})
		}
	}
	b.Run("membership", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, err := merged.IsPossibleWorld(world); err != nil || !ok {
				b.Fatal("membership failed")
			}
		}
	})
	b.Run("productLex20x20", func(b *testing.B) {
		x := gen.InterleavedLogs(1, 20)
		y := gen.InterleavedLogs(1, 20)
		for i := 0; i < b.N; i++ {
			porder.ProductLex(x, y)
		}
	})
}

// BenchmarkE8Chase measures the probabilistic chase on uncertain chains
// with soft transitivity.
func BenchmarkE8Chase(b *testing.B) {
	prog := rules.NewProgram(
		rules.NewRule(rel.NewAtom("T", rel.V("x"), rel.V("y")), rel.NewAtom("E", rel.V("x"), rel.V("y"))),
		rules.NewSoftRule(0.9, rel.NewAtom("T", rel.V("x"), rel.V("z")),
			rel.NewAtom("T", rel.V("x"), rel.V("y")), rel.NewAtom("T", rel.V("y"), rel.V("z"))),
	)
	for _, n := range []int{2, 3, 4} {
		base := pdb.NewCInstance()
		prob := logic.Prob{}
		for i := 0; i < n; i++ {
			e := logic.Event(fmt.Sprintf("e%d", i))
			base.AddFact(logic.Var(e), "E", fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1))
			prob[e] = 0.8
		}
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prog.Chase(base, prob, rules.ChaseOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9Conditioning measures posterior computation after a fact
// observation, engine vs enumeration.
func BenchmarkE9Conditioning(b *testing.B) {
	c := pdb.NewCInstance()
	p := logic.Prob{}
	for u := 0; u < 8; u++ {
		e := logic.Event(fmt.Sprintf("u%d", u))
		p[e] = 0.6
		c.AddFact(logic.Var(e), "Claim", fmt.Sprintf("s%d", u), fmt.Sprintf("o%d", u%2))
	}
	c.AddFact(logic.True, "Good", "o0")
	q := rel.NewCQ(rel.NewAtom("Claim", rel.V("x"), rel.V("y")), rel.NewAtom("Good", rel.V("y")))
	cd, err := cond.NewConditioned(c, p).ObserveFact(c.Inst.Fact(0), true)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cd.Probability(q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enumeration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cd.ProbabilityEnumeration(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10Sampling measures Monte Carlo estimation against the exact
// engine on the same instance.
func BenchmarkE10Sampling(b *testing.B) {
	tid := gen.RSTChain(50, 0.5)
	q := rel.HardQuery()
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ProbabilityTID(tid, q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("samples=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				sampling.QueryTID(tid, q, n, 0.99, r)
			}
		})
	}
}

// BenchmarkE13Service measures the query service end to end over HTTP:
// clients hammering /query on one shared normalized query shape (answered by
// a cached live view after a single Prepare), swept over the number of
// concurrent clients. req/s is the serving throughput number the service
// layer exists to move.
func BenchmarkE13Service(b *testing.B) {
	tid := gen.RSTChain(200, 0.5)
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("query/clients=%d", clients), func(b *testing.B) {
			s, err := server.New(tid, server.Config{Workers: clients})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Preregister("R(?x) & S(?x,?y) & T(?y)"); err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s)
			defer ts.Close()
			body := []byte(`{"query": "T(?b) & S(?a,?b) & R(?a)"}`)
			b.ResetTimer()
			var wg sync.WaitGroup
			var next atomic.Int64
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					client := &http.Client{}
					for next.Add(1) <= int64(b.N) {
						resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			// Server-side latency quantiles from the /query histogram — the
			// same numbers /statsz and /metrics expose.
			if sn, ok := s.LatencySnapshot("query"); ok && sn.Count > 0 {
				b.ReportMetric(sn.Quantile(0.50)*1e6, "p50_us")
				b.ReportMetric(sn.Quantile(0.99)*1e6, "p99_us")
			}
			st := s.Stats()
			if st.Prepares != 1 {
				b.Fatalf("prepares = %d, want 1 (cache must absorb the load)", st.Prepares)
			}
		})
	}

	// The batched sweep path: one request carrying 64 assignment lanes
	// through the frozen snapshot plan's multi-lane DP.
	b.Run("batch/lanes=64", func(b *testing.B) {
		s, err := server.New(tid, server.Config{})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s)
		defer ts.Close()
		lanes := make([]map[string]float64, 64)
		for i := range lanes {
			lanes[i] = map[string]float64{"0": float64(i+1) / 65}
		}
		body, err := json.Marshal(map[string]any{
			"query":       "R(?x) & S(?x,?y) & T(?y)",
			"assignments": lanes,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(lanes)), "ns/assign")
	})
}

// BenchmarkE15Mixed is the mixed read/write serving benchmark: concurrent
// /query readers and /update writers share one server, with the ingest
// batcher off (every write commits alone) and on (concurrent writes
// coalesce into merged commits). Reported p50/p99 are the server-side
// /query latency quantiles — the read tail a dashboard watches while writes
// stream in; the batcher's job is to keep it flat under write pressure.
func BenchmarkE15Mixed(b *testing.B) {
	tid := gen.RSTChain(200, 0.5)
	const readers, writers = 6, 2
	for _, tc := range []struct {
		name        string
		ingestBatch int
		maxWait     time.Duration
	}{
		{"readers=6/writers=2/ingest=none", 0, 0},
		// The sub-millisecond window is what makes two writers actually
		// share commits at benchmark scale (with maxWait=0 a commit on this
		// chain finishes before the next request arrives).
		{"readers=6/writers=2/ingest=256", 256, 500 * time.Microsecond},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s, err := server.New(tid, server.Config{Workers: readers + writers, IngestBatch: tc.ingestBatch, IngestMaxWait: tc.maxWait})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Preregister("R(?x) & S(?x,?y) & T(?y)"); err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s)
			defer ts.Close()
			queryBody := []byte(`{"query": "R(?x) & S(?x,?y) & T(?y)"}`)
			b.ResetTimer()
			var wg sync.WaitGroup
			var next atomic.Int64
			for c := 0; c < readers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					client := &http.Client{}
					for next.Add(1) <= int64(b.N) {
						resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(queryBody))
						if err != nil {
							b.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}()
			}
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					client := &http.Client{}
					for i := 0; next.Add(1) <= int64(b.N); i++ {
						// Each writer walks its own fact ids so merged
						// commits never collapse two writers' updates into
						// one staged weight.
						body := fmt.Sprintf(`{"updates":[{"op":"set","id":%d,"p":%g}]}`,
							(w*263+i*37)%tid.NumFacts(), float64(i%7+1)/10)
						resp, err := client.Post(ts.URL+"/update", "application/json", strings.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			if sn, ok := s.LatencySnapshot("query"); ok && sn.Count > 0 {
				b.ReportMetric(sn.Quantile(0.50)*1e6, "p50_us")
				b.ReportMetric(sn.Quantile(0.99)*1e6, "p99_us")
			}
		})
	}
}

// BenchmarkE14DurableUpdate is BenchmarkE1Update with the write-ahead log
// attached: every SetProb is acknowledged only after its record is durable
// under the named fsync policy, with concurrent committers sharing the
// group-commit pipeline (batch + single fsync). The paper's serving claim
// extends to durability when fsync=always stays within ~an order of
// magnitude of the in-memory ns/update.
func BenchmarkE14DurableUpdate(b *testing.B) {
	q := rel.HardQuery()
	tid := gen.RSTChain(800, 0.5)
	for _, pol := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncOff} {
		b.Run("fsync="+pol.String(), func(b *testing.B) {
			be, err := wal.NewDirBackend(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			// MaxWait 0: the accumulation window is the in-flight flush
			// itself (commits queue up behind it and the next flush takes
			// them all), which adds no artificial latency when committers
			// are scarce.
			w, _, err := wal.Open(wal.Options{
				Backend:   be,
				BatchSize: 64,
				MaxWait:   0,
				Sync:      pol,
				SyncEvery: 10 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			s, err := incr.NewStore(tid)
			if err != nil {
				b.Fatal(err)
			}
			v, err := s.RegisterView(q, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			w.Attach(s, nil)
			var next atomic.Int64
			b.SetParallelism(8) // concurrent committers share flushes and fsyncs
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1)
					if err := s.SetProb(int(i*37)%s.Len(), float64(i%7+1)/10); err != nil {
						b.Error(err)
						return
					}
					_ = v.Probability()
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/durable_update")
			st := w.Stats()
			if st.Err != "" {
				b.Fatalf("WAL failed during benchmark: %s", st.Err)
			}
			b.ReportMetric(float64(st.Appends)/float64(st.Flushes), "appends/flush")
			w.Kill()
		})
	}
}

// BenchmarkE14Recovery measures warm-restart latency: rebuilding the store
// from a snapshot plus a 1000-record log tail (the worst planned case —
// crash just before the next snapshot would have truncated).
func BenchmarkE14Recovery(b *testing.B) {
	mem := wal.NewMemBackend()
	w, _, err := wal.Open(wal.Options{Backend: mem, BatchSize: 64, MaxWait: 0, Sync: wal.SyncOff})
	if err != nil {
		b.Fatal(err)
	}
	s, err := incr.NewStore(gen.RSTChain(800, 0.5))
	if err != nil {
		b.Fatal(err)
	}
	w.Attach(s, nil)
	if err := w.Snapshot(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := s.SetProb((i*37)%s.Len(), float64(i%7+1)/10); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	wantSeq := s.Seq()
	w.Kill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := wal.Replay(mem)
		if err != nil {
			b.Fatal(err)
		}
		if rec.Seq != wantSeq {
			b.Fatalf("recovered seq %d, want %d", rec.Seq, wantSeq)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "recovery_ms")
}
