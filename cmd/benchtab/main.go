// Command benchtab regenerates every experiment table of EXPERIMENTS.md
// (the paper has no evaluation tables of its own — see DESIGN.md — so each
// experiment operationalizes one tractability claim as a scaling
// measurement with exact-agreement checks against exponential baselines).
//
// Usage:
//
//	benchtab          # run all experiments
//	benchtab E1 E4    # run selected experiments
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cond"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/incr"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/porder"
	"repro/internal/prxml"
	"repro/internal/rel"
	"repro/internal/rules"
	"repro/internal/sampling"
	"repro/internal/server"
)

func main() {
	selected := map[string]bool{}
	for _, a := range os.Args[1:] {
		selected[a] = true
	}
	run := func(id string, fn func()) {
		if len(selected) > 0 && !selected[id] {
			return
		}
		fn()
		fmt.Println()
	}
	run("E1", e1)
	run("E2", e2)
	run("E3", e3)
	run("E4", e4)
	run("E5", e5)
	run("E6", e6)
	run("E7", e7)
	run("E8", e8)
	run("E9", e9)
	run("E10", e10)
	run("E11", e11)
	run("E12", e12)
	run("E13", e13)
	run("E15", e15)
}

func timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }

// e1 — Theorem 1: query probability on bounded-treewidth TIDs scales
// linearly, while world enumeration is exponential in the fact count.
func e1() {
	fmt.Println("E1  Theorem 1: P(∃xy R(x)S(x,y)T(y)) on treewidth-1 TID chains")
	fmt.Println("    one-shot vs prepared plan (Prepare once, evaluate per request):")
	fmt.Println("    n(chain)  facts  oneshot_ms  eval_ms    P(q)        ms/fact")
	q := rel.HardQuery()
	for _, n := range []int{50, 100, 200, 400, 800, 1600, 3200} {
		tid := gen.RSTChain(n, 0.5)
		var res *core.Result
		var err error
		d := timed(func() { res, err = core.ProbabilityTID(tid, q, core.Options{}) })
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		pl, p, err := core.PrepareTID(tid, q, core.Options{})
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		if _, err := pl.Probability(p); err != nil { // warm the transition tables
			fmt.Println("    error:", err)
			return
		}
		de := timed(func() { _, err = pl.Probability(p) })
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		fmt.Printf("    %-9d %-6d %-11s %-10s %.9f %.5f\n", n, tid.NumFacts(), ms(d), ms(de), res.Probability,
			float64(d.Microseconds())/1000/float64(tid.NumFacts()))
	}
	fmt.Println("    agreement vs exhaustive enumeration (exponential baseline):")
	fmt.Println("    n  facts  worlds   engine_ms  enum_ms    |Δ|")
	for _, n := range []int{1, 2, 3, 4} {
		tid := gen.RSTChain(n, 0.5)
		var pe, pn float64
		de := timed(func() { r, _ := core.ProbabilityTID(tid, q, core.Options{}); pe = r.Probability })
		dn := timed(func() { pn = tid.QueryProbabilityEnumeration(q) })
		fmt.Printf("    %-2d %-6d %-8d %-10s %-10s %.1e\n", n, tid.NumFacts(), 1<<uint(tid.NumFacts()), ms(de), ms(dn), math.Abs(pe-pn))
	}
	e1Sweep(q)
}

// e1Sweep measures the multi-lane batched DP and the concurrent serving
// front end against serial evaluation: a 64-assignment parameter sweep on
// the n=800 chain, answered three ways off one shared compiled plan.
func e1Sweep(q rel.CQ) {
	const n, lanes = 800, 64
	tid := gen.RSTChain(n, 0.5)
	pl, base, err := core.PrepareTID(tid, q, core.Options{})
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	if err := pl.Freeze(); err != nil {
		fmt.Println("    error:", err)
		return
	}
	ps := make([]logic.Prob, lanes)
	for i := range ps {
		m := make(logic.Prob, len(base))
		for e := range base {
			m[e] = 0.1 + 0.8*float64(i)/float64(lanes-1)
		}
		ps[i] = m
	}

	serial := make([]float64, lanes)
	dSerial := timed(func() {
		for i, p := range ps {
			if serial[i], err = pl.Probability(p); err != nil {
				return
			}
		}
	})
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	var batched []float64
	dBatch := timed(func() { batched, err = pl.ProbabilityBatch(ps) })
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	maxDelta := 0.0
	for i := range serial {
		maxDelta = math.Max(maxDelta, math.Abs(serial[i]-batched[i]))
	}
	fmt.Printf("    batched sweep, %d assignments on the shared n=%d plan (max |Δ| vs serial %.1e):\n", lanes, n, maxDelta)
	fmt.Printf("    path            total_ms   ms/assignment  speedup\n")
	perSerial := float64(dSerial.Microseconds()) / 1000 / lanes
	perBatch := float64(dBatch.Microseconds()) / 1000 / lanes
	fmt.Printf("    serial x%-3d     %-10s %-14.3f 1.0x\n", lanes, ms(dSerial), perSerial)
	fmt.Printf("    batch %d lanes  %-10s %-14.3f %.1fx\n", lanes, ms(dBatch), perBatch, perSerial/perBatch)

	fmt.Println("    lane sweep (kernel block width vs per-assignment cost, same frozen plan):")
	fmt.Println("    lanes  total_ms   us/assignment")
	for _, B := range []int{8, 64, 256} {
		psB := make([]logic.Prob, B)
		for i := range psB {
			m := make(logic.Prob, len(base))
			for e := range base {
				m[e] = 0.1 + 0.8*float64(i)/float64(B)
			}
			psB[i] = m
		}
		if _, err := pl.ProbabilityBatch(psB); err != nil { // warm
			fmt.Println("    error:", err)
			return
		}
		const reps = 5
		d := timed(func() {
			for r := 0; r < reps; r++ {
				if _, err = pl.ProbabilityBatch(psB); err != nil {
					return
				}
			}
		})
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		fmt.Printf("    %-6d %-10s %.3f\n", B, ms(d/reps), float64(d.Microseconds())/reps/float64(B))
	}

	fmt.Println("    parallel serving of the same sweep (core.Serve, shared frozen plan):")
	fmt.Println("    workers  total_ms   ms/request")
	reqs := make([]core.Request, lanes)
	for i, p := range ps {
		reqs[i] = core.Request{Plan: pl, P: p}
	}
	for _, w := range []int{1, 4, 8} {
		var resp []core.Response
		d := timed(func() { resp = core.Serve(reqs, w) })
		for i, r := range resp {
			if r.Err != nil || math.Abs(r.Probability-serial[i]) > 1e-12 {
				fmt.Println("    serve mismatch:", r.Err)
				return
			}
		}
		fmt.Printf("    %-8d %-10s %.3f\n", w, ms(d), float64(d.Microseconds())/1000/lanes)
	}
}

// e2 — Theorem 2: cost grows exponentially in the (joint) width only,
// polynomially in the size; correlated annotations are handled exactly.
func e2() {
	fmt.Println("E2  Theorem 2: hard query over partial k-tree TIDs")
	fmt.Println("    width sweep (n=30 vertices fixed):")
	fmt.Println("    k  facts  width(joint)  engine_ms  P(q)")
	r := rand.New(rand.NewSource(42))
	q := rel.HardQuery()
	for _, k := range []int{1, 2, 3, 4} {
		g, _ := gen.PartialKTree(30, k, 0.6, r)
		tid := gen.RSTOverGraph(g, 0.05, 0.3, r)
		var res *core.Result
		var err error
		d := timed(func() { res, err = core.ProbabilityTID(tid, q, core.Options{}) })
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		fmt.Printf("    %d  %-6d %-13d %-10s %.6f\n", k, tid.NumFacts(), res.Width, ms(d), res.Probability)
	}
	fmt.Println("    size sweep (k=2 fixed):")
	fmt.Println("    n    facts  engine_ms  ms/fact")
	for _, n := range []int{60, 120, 240, 480} {
		g, _ := gen.PartialKTree(n, 2, 0.6, r)
		tid := gen.RSTOverGraph(g, 0.05, 0.3, r)
		var err error
		d := timed(func() { _, err = core.ProbabilityTID(tid, q, core.Options{}) })
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		fmt.Printf("    %-4d %-6d %-10s %.5f\n", n, tid.NumFacts(), ms(d), float64(d.Microseconds())/1000/float64(tid.NumFacts()))
	}
	fmt.Println("    correlated annotations (block events shared by consecutive chain facts):")
	fmt.Println("    n     block  engine_ms  P(path2)   enum_check")
	qp := rel.NewCQ(
		rel.NewAtom("E", rel.V("x"), rel.V("y")),
		rel.NewAtom("E", rel.V("y"), rel.V("z")),
	)
	for _, n := range []int{8, 100, 400, 1600} {
		c, p := gen.CorrelatedPC(n, 4, r)
		var res *core.Result
		var err error
		d := timed(func() { res, err = core.ProbabilityPC(c, p, qp, core.Options{}) })
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		check := "-"
		if n <= 8 {
			check = fmt.Sprintf("%.6f (enum)", c.QueryProbabilityEnumeration(qp, p))
		}
		fmt.Printf("    %-5d %-6d %-10s %.6f  %s\n", n, 4, ms(d), res.Probability, check)
	}
}

// e3 — local PrXML (ind/mux): linear-time pattern probability.
func e3() {
	fmt.Println("E3  Local PrXML (Cohen–Kimelfeld–Sagiv): pattern probability, linear in document size")
	fmt.Println("    nodes   dp_ms     P(pattern)  ms/node")
	pattern := prxml.NewPattern("item").WithDescendant(prxml.NewPattern("value"))
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{50, 100, 200, 400, 800, 1600, 3200} {
		doc := gen.LocalDoc(n, 3, r)
		var p float64
		var err error
		d := timed(func() { p, err = doc.MatchProbability(pattern) })
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		fmt.Printf("    %-7d %-9s %.6f    %.5f\n", doc.Size(), ms(d), p, float64(d.Microseconds())/1000/float64(doc.Size()))
	}
}

// e4 — event scopes: cost exponential only in the scope bound.
func e4() {
	fmt.Println("E4  PrXML with events: scope bound sweep (20 sections, 2·scope leaves each)")
	fmt.Println("    scope  max_scope  nodes  dp_ms      P(q)        enum_ms")
	// q: some section exposes entries from both of its groups — it needs
	// the correlations, so its probability moves with the scope structure.
	pattern := prxml.NewPattern("section",
		prxml.NewPattern("entry", prxml.NewPattern("payload")))
	for _, scope := range []int{1, 2, 4, 6, 8, 10, 12, 14} {
		r := rand.New(rand.NewSource(int64(scope)))
		doc := gen.ScopedEventDoc(20, scope, r)
		var p float64
		var err error
		d := timed(func() { p, err = doc.MatchProbability(pattern) })
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		enum := "-"
		if scope*20 <= 14 { // total events small enough to enumerate
			var pe float64
			de := timed(func() { pe = doc.MatchProbabilityEnumeration(pattern) })
			enum = fmt.Sprintf("%s (|Δ|=%.1e)", ms(de), math.Abs(p-pe))
		}
		fmt.Printf("    %-6d %-10d %-6d %-10s %.6f    %s\n", scope, doc.MaxScope(), doc.Size(), ms(d), p, enum)
	}
}

// e5 — the intro's #P-hard query: easy on trees, enumeration explodes on
// bipartite shapes while the engine pays only for the width.
func e5() {
	fmt.Println("E5  Hard query ∃xy R(x)S(x,y)T(y): structure decides the cost")
	fmt.Println("    shape            facts  width  engine_ms  enum_ms")
	q := rel.HardQuery()
	type row struct {
		name string
		tid  *pdb.TID
		enum bool
	}
	rows := []row{
		{"chain n=200", gen.RSTChain(200, 0.5), false},
		{"chain n=4", gen.RSTChain(4, 0.5), true},
		{"bipartite 2x2", gen.RSTBipartite(2, 2, 0.5), true},
		{"bipartite 3x3", gen.RSTBipartite(3, 3, 0.5), true},
		{"bipartite 4x4", gen.RSTBipartite(4, 4, 0.5), false},
		{"bipartite 6x6", gen.RSTBipartite(6, 6, 0.5), false},
	}
	for _, r := range rows {
		var res *core.Result
		var err error
		d := timed(func() { res, err = core.ProbabilityTID(r.tid, q, core.Options{}) })
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		enum := "-"
		if r.enum {
			var pe float64
			de := timed(func() { pe = r.tid.QueryProbabilityEnumeration(q) })
			enum = fmt.Sprintf("%s (|Δ|=%.1e)", ms(de), math.Abs(res.Probability-pe))
		}
		fmt.Printf("    %-16s %-6d %-6d %-10s %s\n", r.name, r.tid.NumFacts(), res.Width, ms(d), enum)
	}
}

// e6 — counting linear extensions: structure decides tractability.
func e6() {
	fmt.Println("E6  Counting linear extensions (Sec. 3): downset DP vs series-parallel closed form")
	fmt.Println("    poset              n      count                 time_ms")
	show := func(name string, n int, fn func() (string, time.Duration)) {
		count, d := fn()
		fmt.Printf("    %-18s %-6d %-21s %s\n", name, n, count, ms(d))
	}
	for _, n := range []int{10, 16, 20} {
		l := porder.Antichain(tuples(n)...)
		show("antichain (DP)", n, func() (string, time.Duration) {
			var c string
			d := timed(func() { b, _ := l.CountLinearExtensions(); c = trunc(b.String()) })
			return c, d
		})
	}
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{16, 20, 24} {
		l := gen.RandomDAGPoset(n, 0.15, 3, r)
		show("sparse random (DP)", n, func() (string, time.Duration) {
			var c string
			d := timed(func() { b, _ := l.CountLinearExtensions(); c = trunc(b.String()) })
			return c, d
		})
	}
	for _, n := range []int{100, 1000, 10000} {
		sp := gen.RandomSP(n, r)
		show("series-parallel", n, func() (string, time.Duration) {
			var c string
			d := timed(func() { c = trunc(sp.CountLinearExtensions().String()) })
			return c, d
		})
	}
}

func tuples(n int) []porder.Tuple {
	out := make([]porder.Tuple, n)
	for i := range out {
		out[i] = porder.Tuple{fmt.Sprintf("t%d", i)}
	}
	return out
}

func trunc(s string) string {
	if len(s) > 18 {
		return s[:12] + fmt.Sprintf("..(%dd)", len(s))
	}
	return s
}

// e7 — the positive relational algebra on LPOs.
func e7() {
	fmt.Println("E7  Order algebra on merged logs: operators and possible-world counts")
	fmt.Println("    k_logs  len  merged_n  worlds(SP)          sel_ms  member_ms")
	for _, k := range []int{2, 3, 4} {
		for _, length := range []int{20, 100} {
			merged := gen.InterleavedLogs(k, length)
			var parts []*porder.SP
			for i := 0; i < k; i++ {
				var labels []porder.Tuple
				for j := 0; j < length; j++ {
					labels = append(labels, porder.Tuple{fmt.Sprintf("m%d", i), "e"})
				}
				parts = append(parts, porder.SPChain(labels...))
			}
			count := trunc(porder.Parallel(parts...).CountLinearExtensions().String())
			var sel *porder.LPO
			dSel := timed(func() {
				sel = porder.Select(merged, func(t porder.Tuple) bool { return t[0] == "m0" })
			})
			// Membership of a round-robin interleaving.
			var world []porder.Tuple
			for j := 0; j < length; j++ {
				for i := 0; i < k; i++ {
					world = append(world, porder.Tuple{fmt.Sprintf("m%d", i), fmt.Sprintf("evt%d", j)})
				}
			}
			var member bool
			dMem := timed(func() { member, _ = merged.IsPossibleWorld(world) })
			if !member || sel.N() != length {
				fmt.Println("    internal check failed")
				return
			}
			fmt.Printf("    %-7d %-4d %-9d %-19s %-7s %s\n", k, length, merged.N(), count, ms(dSel), ms(dMem))
		}
	}
}

// e8 — probabilistic chase: soft transitive closure over uncertain edges.
func e8() {
	fmt.Println("E8  Probabilistic chase: soft transitivity T(x,z) :- T(x,y),T(y,z) [p=0.9] over uncertain chains")
	fmt.Println("    chain  rounds  derived  P(T(end-to-end))  chase_ms")
	prog := rules.NewProgram(
		rules.NewRule(rel.NewAtom("T", rel.V("x"), rel.V("y")), rel.NewAtom("E", rel.V("x"), rel.V("y"))),
		rules.NewSoftRule(0.9, rel.NewAtom("T", rel.V("x"), rel.V("z")),
			rel.NewAtom("T", rel.V("x"), rel.V("y")), rel.NewAtom("T", rel.V("y"), rel.V("z"))),
	)
	for _, n := range []int{2, 3, 4, 5} {
		base := pdb.NewCInstance()
		for i := 0; i < n; i++ {
			base.AddFact(logic.Var(logic.Event(fmt.Sprintf("e%d", i))), "E", fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1))
		}
		prob := logic.Prob{}
		for i := 0; i < n; i++ {
			prob[logic.Event(fmt.Sprintf("e%d", i))] = 0.8
		}
		var res *rules.ChaseResult
		var err error
		d := timed(func() { res, err = prog.Chase(base, prob, rules.ChaseOptions{MaxRounds: 8}) })
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		target := rel.NewFact("T", "v0", fmt.Sprintf("v%d", n))
		i := res.C.Inst.IndexOf(target)
		p := 0.0
		if i >= 0 {
			p = logic.Probability(res.C.Ann[i], res.P)
		}
		fmt.Printf("    %-6d %-7d %-8d %.6f          %s\n", n, res.Rounds, len(res.Derived), p, ms(d))
	}
}

// e9 — conditioning and question selection.
func e9() {
	fmt.Println("E9  Conditioning (Sec. 4): posterior cost and greedy vs random questions")
	fmt.Println("    contributors  facts  posterior_engine_ms  posterior_enum_ms")
	r := rand.New(rand.NewSource(9))
	for _, users := range []int{3, 6, 9} {
		c, p, q := crowdKB(users)
		cd := cond.NewConditioned(c, p)
		cd2, err := cd.ObserveFact(c.Inst.Fact(0), true)
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		var pe, pn float64
		de := timed(func() { pe, err = cd2.Probability(q, core.Options{}) })
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		dn := timed(func() { pn, _ = cd2.ProbabilityEnumeration(q) })
		if math.Abs(pe-pn) > 1e-9 {
			fmt.Println("    mismatch", pe, pn)
			return
		}
		fmt.Printf("    %-13d %-6d %-20s %s\n", users, c.NumFacts(), ms(de), ms(dn))
	}
	fmt.Println("    questions to certainty (mean over 40 random ground truths, 6 contributors):")
	greedy, random := 0.0, 0.0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		c, p, q := crowdKB(6)
		truth := logic.Valuation{}
		for _, e := range c.Events() {
			truth[e] = r.Float64() < p.P(e)
		}
		oracle := &cond.Oracle{Truth: truth}
		cd := cond.NewConditioned(c, p)
		res, err := cd.ResolveGreedy(q, oracle, 10)
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		greedy += float64(len(res.Questions))
		// Random policy: ask events in random order until certain.
		events := c.Events()
		r.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })
		cur := cd
		asked := 0
		for _, e := range events {
			post, _ := cur.ProbabilityEnumeration(q)
			if post < 1e-12 || post > 1-1e-12 {
				break
			}
			cur = cur.ObserveEvent(e, oracle.Answer(e))
			asked++
		}
		random += float64(asked)
	}
	fmt.Printf("    greedy %.2f   random %.2f\n", greedy/trials, random/trials)
}

// crowdKB builds a small contributor-trust KB and a two-hop query.
func crowdKB(users int) (*pdb.CInstance, logic.Prob, rel.CQ) {
	c := pdb.NewCInstance()
	p := logic.Prob{}
	for u := 0; u < users; u++ {
		e := logic.Event(fmt.Sprintf("u%d", u))
		p[e] = 0.5 + 0.4*float64(u%3)/3
		c.AddFact(logic.Var(e), "Claim", fmt.Sprintf("s%d", u), fmt.Sprintf("o%d", u%2))
	}
	c.AddFact(logic.True, "Good", "o0")
	q := rel.NewCQ(rel.NewAtom("Claim", rel.V("x"), rel.V("y")), rel.NewAtom("Good", rel.V("y")))
	return c, p, q
}

// e10 — sampling accuracy vs the exact engine.
func e10() {
	fmt.Println("E10 Sampling vs exact (chain n=50, exact P from the engine)")
	tid := gen.RSTChain(50, 0.5)
	q := rel.HardQuery()
	res, err := core.ProbabilityTID(tid, q, core.Options{})
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	fmt.Printf("    exact P = %.9f\n", res.Probability)
	fmt.Println("    samples  estimate    |error|    hoeffding_99  time_ms")
	r := rand.New(rand.NewSource(10))
	for _, n := range []int{100, 1000, 10000, 100000} {
		var est sampling.Estimate
		d := timed(func() { est = sampling.QueryTID(tid, q, n, 0.99, r) })
		fmt.Printf("    %-8d %.6f    %.6f   %.6f      %s\n", n, est.P, math.Abs(est.P-res.Probability), est.Radius, ms(d))
	}
	// Worlds decided through the prepared plan (64 samples per multi-lane
	// DP pass) instead of re-matching the query per sample.
	pl, _, err := core.PrepareTID(tid, q, core.Options{})
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	fmt.Println("    plan-decided sampling (batched 0/1 lanes):")
	fmt.Println("    samples  estimate    |error|    time_ms")
	for _, n := range []int{1000, 10000} {
		var est sampling.Estimate
		var err error
		d := timed(func() { est, err = sampling.QueryTIDPlan(tid, pl, n, 0.99, r) })
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		fmt.Printf("    %-8d %.6f    %.6f   %s\n", n, est.P, math.Abs(est.P-res.Probability), ms(d))
	}
	fmt.Printf("    samples needed for ±0.001 at 99%%: %d (the exact engine needs one pass)\n",
		sampling.SamplesForRadius(0.001, 0.99))
}

// e11 — incremental maintenance: a live materialized view absorbs updates at
// dirty-spine cost, against re-Prepare + evaluate as the baseline. Depth is
// printed because it bounds the spine a single update recomputes.
func e11() {
	fmt.Println("E11 Incremental maintenance: live views under updates (incr.Store on E1 chains)")
	fmt.Println("    single-tuple SetProb vs re-Prepare+evaluate:")
	fmt.Println("    n(chain)  facts  depth  nodes  update_us  reprep_ms  speedup")
	q := rel.HardQuery()
	for _, n := range []int{100, 400, 800} {
		tid := gen.RSTChain(n, 0.5)
		s, err := incr.NewStore(tid)
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		v, err := s.RegisterView(q, core.Options{})
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		const rounds = 50
		d := timed(func() {
			for i := 0; i < rounds; i++ {
				if err = s.SetProb((i*37)%s.Len(), 0.3+0.4*float64(i%2)); err != nil {
					return
				}
				_ = v.Probability()
			}
		})
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		perUpdate := float64(d.Microseconds()) / rounds
		dRe := timed(func() {
			tid.Probs[0] = 0.3
			pl, p, errP := core.PrepareTID(tid, q, core.Options{})
			if errP != nil {
				err = errP
				return
			}
			_, err = pl.Probability(p)
		})
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		sh := v.Shape()
		reprepMs := float64(dRe.Microseconds()) / 1000
		fmt.Printf("    %-9d %-6d %-6d %-6d %-10.1f %-10.2f %.0fx\n",
			n, s.Len(), sh.Depth, sh.Nodes, perUpdate, reprepMs, reprepMs*1000/perUpdate)
	}

	fmt.Println("    inserts, deletes and batches on the n=400 chain:")
	tid := gen.RSTChain(400, 0.5)
	s, err := incr.NewStore(tid)
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	v, err := s.RegisterView(q, core.Options{})
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	base := s.Len() // pre-insert fact count: batch targets only these ids
	const inserts = 40
	dIns := timed(func() {
		for i := 0; i < inserts && err == nil; i++ {
			// A second parallel S edge: absorbed in place by attach.
			_, err = s.Insert(rel.NewFact("S", fmt.Sprintf("v%d", 10*i+1), fmt.Sprintf("v%d", 10*i)), 0.3)
		}
	})
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	dDel := timed(func() {
		for i := 0; i < inserts && err == nil; i++ {
			err = s.Delete(s.Len() - 1 - i) // tombstone the freshly inserted facts
		}
	})
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	batch := make([]incr.Update, 64)
	for i := range batch {
		batch[i] = incr.Update{Op: incr.OpSet, ID: (i * 17) % base, P: 0.6}
	}
	dBatch := timed(func() { err = s.ApplyBatch(batch) })
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	st := s.Stats()
	fmt.Printf("    path              us/update  detail\n")
	fmt.Printf("    insert (attach)   %-10.1f %d absorbed in place, %d rebuilds\n",
		float64(dIns.Microseconds())/inserts, st.Attached, st.Rebuilds)
	fmt.Printf("    delete (tombstone) %-9.1f %d tombstones pending compaction\n",
		float64(dDel.Microseconds())/inserts, st.Tombstones)
	fmt.Printf("    batch 64 sets     %-10.1f one commit, shared spines\n",
		float64(dBatch.Microseconds())/float64(len(batch)))

	// Exact-agreement check against a full re-Prepare on the mutated store.
	want, err := s.Oracle(q)
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	fmt.Printf("    agreement vs full re-Prepare oracle: |Δ| = %.1e\n", math.Abs(v.Probability()-want))
}

// e12 — sharded plans: the same total fact count split into K disjoint
// chains. Updates route to the single dirty shard, so per-update cost falls
// with the shard size while the instance size stays fixed; the cold path
// evaluates shards in parallel off one sharded plan.
func e12() {
	fmt.Println("E12 Sharded plans: K disjoint chains, 720 facts total (incr.Store + core.PrepareSharded)")
	fmt.Println("    update routing (SetProb through a live hard-query view):")
	fmt.Println("    K(shards)  facts/shard  depth  update_us  tables/update")
	q := rel.HardQuery()
	const links = 240 // 3 facts per link
	for _, k := range []int{1, 2, 4, 8, 16} {
		s, err := incr.NewStore(gen.RSTChains(k, links/k, 0.5))
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		v, err := s.RegisterView(q, core.Options{})
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		const rounds = 50
		before := s.Stats().NodesRecomputed
		d := timed(func() {
			for i := 0; i < rounds; i++ {
				if err = s.SetProb((i*37)%s.Len(), float64(i%7+1)/10); err != nil {
					return
				}
				_ = v.Probability()
			}
		})
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		tables := float64(s.Stats().NodesRecomputed-before) / rounds
		fmt.Printf("    %-10d %-12d %-6d %-10.1f %.1f\n",
			k, s.Len()/k, v.Shape().Depth, float64(d.Microseconds())/rounds, tables)
	}

	fmt.Println("    cold path (K=8): monolithic Prepare vs PrepareSharded, same instance")
	tid := gen.RSTChains(8, links/8, 0.5)
	var pMono, pShard float64
	dMono := timed(func() {
		pl, p, errP := core.PrepareTID(tid, q, core.Options{})
		if errP == nil {
			pMono, errP = pl.Probability(p)
		}
		if errP != nil {
			fmt.Println("    error:", errP)
		}
	})
	sp, p, err := core.PrepareShardedTID(tid, q, core.Options{})
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	dShardPrep := timed(func() {
		sp2, p2, errP := core.PrepareShardedTID(tid, q, core.Options{})
		if errP == nil {
			pShard, errP = sp2.Probability(p2)
		}
		if errP != nil {
			fmt.Println("    error:", errP)
		}
	})
	if err := sp.Freeze(); err != nil {
		fmt.Println("    error:", err)
		return
	}
	if _, err := sp.Probability(p); err != nil { // warm
		fmt.Println("    error:", err)
		return
	}
	dEval := timed(func() {
		for i := 0; i < 20; i++ {
			if _, err = sp.Probability(p); err != nil {
				return
			}
		}
	})
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	fmt.Printf("    monolithic prepare+eval  %-8s ms\n", ms(dMono))
	fmt.Printf("    sharded    prepare+eval  %-8s ms (%d shards, widths <= %d)\n", ms(dShardPrep), sp.NumShards(), sp.Width())
	fmt.Printf("    frozen sharded eval      %-8s ms/eval (shards fanned over the worker pool)\n",
		fmt.Sprintf("%.2f", float64(dEval.Microseconds())/1000/20))
	fmt.Printf("    agreement |Δ| = %.1e\n", math.Abs(pMono-pShard))
}

// e13 — the query service under load: requests/sec on one cached query
// shape as the client count grows (one Prepare total, everything after is a
// plan-cache hit), plus the batched sweep path, with agreement checks
// against the store's from-scratch oracle.
func e13() {
	fmt.Println("E13 Query service (pdbd): /query throughput on a cached shape (chain n=200)")
	tid := gen.RSTChain(200, 0.5)
	q := rel.HardQuery()
	fmt.Println("    clients  requests  total_ms  req/s    p50_us   p99_us   cache_hit_rate")
	const perClient = 200
	for _, clients := range []int{1, 2, 4, 8} {
		s, err := server.New(tid, server.Config{Workers: clients})
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		ts := httptest.NewServer(s)
		body := []byte(`{"query": "T(?b) & S(?a,?b) & R(?a)"}`)
		total := clients * perClient
		var firstErr atomic.Value
		d := timed(func() {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
						if err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}()
			}
			wg.Wait()
		})
		if err := firstErr.Load(); err != nil {
			ts.Close()
			fmt.Println("    error:", err)
			return
		}
		st := s.Stats()
		ts.Close()
		if st.Prepares != 1 {
			fmt.Printf("    error: %d prepares for one shape\n", st.Prepares)
			return
		}
		hitRate := float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
		// Server-side quantiles from the per-endpoint latency histogram —
		// the same numbers /statsz and /metrics report.
		sn, _ := s.LatencySnapshot("query")
		fmt.Printf("    %-8d %-9d %-9s %-8.0f %-8.1f %-8.1f %.4f\n",
			clients, total, ms(d), float64(total)/d.Seconds(),
			sn.Quantile(0.50)*1e6, sn.Quantile(0.99)*1e6, hitRate)
	}

	fmt.Println("    batched sweep (/batch, 64 lanes/request) vs 64 single /query overrides:")
	s, err := server.New(tid, server.Config{Workers: 4})
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	lanes := make([]map[string]float64, 64)
	for i := range lanes {
		lanes[i] = map[string]float64{"0": float64(i+1) / 65}
	}
	batchBody, _ := json.Marshal(map[string]any{"query": "R(?x) & S(?x,?y) & T(?y)", "assignments": lanes})
	var batchProbs []float64
	dBatch := timed(func() {
		resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(batchBody))
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		defer resp.Body.Close()
		var br struct {
			Probabilities []float64 `json:"probabilities"`
		}
		json.NewDecoder(resp.Body).Decode(&br)
		batchProbs = br.Probabilities
	})
	dSingles := timed(func() {
		for i := range lanes {
			body, _ := json.Marshal(map[string]any{"query": "R(?x) & S(?x,?y) & T(?y)", "assignment": lanes[i]})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				fmt.Println("    error:", err)
				return
			}
			var qr struct {
				Probability float64 `json:"probability"`
			}
			json.NewDecoder(resp.Body).Decode(&qr)
			resp.Body.Close()
			if batchProbs != nil && math.Abs(qr.Probability-batchProbs[i]) > 1e-12 {
				fmt.Printf("    mismatch lane %d: %v vs %v\n", i, qr.Probability, batchProbs[i])
				return
			}
		}
	})
	fmt.Printf("    path             total_ms  ms/assignment\n")
	fmt.Printf("    batch 64 lanes   %-9s %.3f\n", ms(dBatch), float64(dBatch.Microseconds())/1000/64)
	fmt.Printf("    single x64       %-9s %.3f\n", ms(dSingles), float64(dSingles.Microseconds())/1000/64)

	// End-to-end freshness: an update commits and the cached view serves the
	// refreshed answer, matching the from-scratch oracle.
	upBody, _ := json.Marshal(map[string]any{"updates": []map[string]any{{"op": "set", "id": 0, "p": 0.95}}})
	if resp, err := http.Post(ts.URL+"/update", "application/json", bytes.NewReader(upBody)); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	qBody, _ := json.Marshal(map[string]any{"query": "R(?x) & S(?x,?y) & T(?y)"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(qBody))
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	var qr struct {
		Probability float64 `json:"probability"`
	}
	json.NewDecoder(resp.Body).Decode(&qr)
	resp.Body.Close()
	want, err := s.Store().Oracle(q)
	if err != nil {
		fmt.Println("    error:", err)
		return
	}
	fmt.Printf("    update freshness: |Δ| vs oracle after commit = %.1e\n", math.Abs(qr.Probability-want))
}

// e15 — mixed read/write serving: concurrent /query readers and /update
// writers on one server, with the ingest batcher off (every write commits
// alone) and on (concurrent writes coalesce into merged commits). The table
// shows the read-side tail latency under write pressure and how many store
// commits the same write stream cost each way; the final row checks the
// served answer still matches the from-scratch oracle.
func e15() {
	fmt.Println("E15 Mixed read/write service (pdbd): 6 readers + 2 writers (chain n=200)")
	tid := gen.RSTChain(200, 0.5)
	q := rel.HardQuery()
	fmt.Println("    ingest  requests  total_ms  req/s    q_p50_us  q_p99_us  commits  coalesced")
	const perClient = 150
	const readers, writers = 6, 2
	for _, batch := range []int{0, 256} {
		// A sub-millisecond accumulation window makes concurrent writers
		// actually share commits at this small scale; production setups can
		// leave it 0 and let the in-flight commit itself be the window.
		var maxWait time.Duration
		if batch > 0 {
			maxWait = 500 * time.Microsecond
		}
		s, err := server.New(tid, server.Config{Workers: readers + writers, IngestBatch: batch, IngestMaxWait: maxWait})
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		ts := httptest.NewServer(s)
		queryBody := []byte(`{"query": "R(?x) & S(?x,?y) & T(?y)"}`)
		total := (readers + writers) * perClient
		var firstErr atomic.Value
		d := timed(func() {
			var wg sync.WaitGroup
			for c := 0; c < readers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(queryBody))
						if err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}()
			}
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						body := fmt.Sprintf(`{"updates":[{"op":"set","id":%d,"p":%g}]}`,
							(w*263+i*37)%tid.NumFacts(), float64(i%7+1)/10)
						resp, err := http.Post(ts.URL+"/update", "application/json", strings.NewReader(body))
						if err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}(w)
			}
			wg.Wait()
		})
		if err := firstErr.Load(); err != nil {
			ts.Close()
			fmt.Println("    error:", err)
			return
		}
		// Commit count from the store, coalescing counters from /statsz —
		// the same surfaces an operator would read.
		var stz struct {
			IngestFlushes   uint64 `json:"ingest_flushes"`
			IngestCoalesced uint64 `json:"ingest_coalesced"`
		}
		if resp, err := http.Get(ts.URL + "/statsz"); err == nil {
			json.NewDecoder(resp.Body).Decode(&stz)
			resp.Body.Close()
		}
		commits := s.Store().Stats().Commits
		sn, _ := s.LatencySnapshot("query")
		name := "none"
		if batch > 0 {
			name = fmt.Sprintf("%d", batch)
		}
		fmt.Printf("    %-7s %-9d %-9s %-8.0f %-9.1f %-9.1f %-8d %d\n",
			name, total, ms(d), float64(total)/d.Seconds(),
			sn.Quantile(0.50)*1e6, sn.Quantile(0.99)*1e6, commits, stz.IngestCoalesced)

		// Freshness under the batcher: the served probability equals the
		// from-scratch oracle over the final store state.
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(queryBody))
		if err != nil {
			ts.Close()
			fmt.Println("    error:", err)
			return
		}
		var qr struct {
			Probability float64 `json:"probability"`
		}
		json.NewDecoder(resp.Body).Decode(&qr)
		resp.Body.Close()
		want, err := s.Store().Oracle(q)
		ts.Close()
		if err != nil {
			fmt.Println("    error:", err)
			return
		}
		if math.Abs(qr.Probability-want) > 1e-12 {
			fmt.Printf("    mismatch: served %v, oracle %v\n", qr.Probability, want)
			return
		}
	}
	fmt.Println("    (served answers matched the oracle to 1e-12 in both modes)")
}
