package main

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pdbio"
	"repro/internal/wal"
)

// RunInspect is pdbcli's -data-dir mode: a read-only replay of a pdbd
// durability directory. It reconstructs the store exactly as a restarting
// pdbd would — newest valid snapshot plus the surviving log tail — without
// creating, truncating or modifying anything, prints what recovery would
// find, and (with -q) answers a query against the recovered state. Safe to
// run against the data dir of a live or crashed server.
func RunInspect(dir, queryStr string, out io.Writer) error {
	b, err := wal.NewDirBackend(dir)
	if err != nil {
		return err
	}
	rec, err := wal.Replay(b)
	if err != nil {
		return err
	}
	st := rec.Store
	fmt.Fprintf(out, "data dir: %s\n", dir)
	fmt.Fprintf(out, "recovered: seq %d (snapshot at %d + %d log records over %d segments)\n",
		rec.Seq, rec.SnapshotSeq, rec.Records, rec.Segments)
	if rec.TornTail {
		fmt.Fprintln(out, "torn tail: a segment ends mid-record (crash residue); recovery stops at the last valid commit")
	}
	fmt.Fprintf(out, "store: %d live facts (%d slots incl. tombstones), %d shards\n",
		st.NumLive(), st.Len(), st.Stats().Shards)
	if len(rec.Views) > 0 {
		fmt.Fprintf(out, "views recorded at snapshot (%d):\n", len(rec.Views))
		for _, q := range rec.Views {
			fmt.Fprintf(out, "  %s\n", q)
		}
	}
	if queryStr == "" {
		return nil
	}
	q, err := pdbio.ParseCQ(queryStr)
	if err != nil {
		return err
	}
	v, err := st.RegisterView(core.NormalizeCQ(q), core.Options{})
	if err != nil {
		return err
	}
	prob, seq := v.ProbabilitySeq()
	fmt.Fprintf(out, "query: %s\nprobability: %.9f (at seq %d)\n", q, prob, seq)
	return nil
}
