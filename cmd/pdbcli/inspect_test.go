package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/incr"
	"repro/internal/rel"
	"repro/internal/wal"
)

// TestRunInspect builds a real on-disk data dir — baseline snapshot plus an
// unsealed log tail, as a crash leaves it — and checks the read-only
// inspection reports the recovery and answers a query, without modifying
// the directory.
func TestRunInspect(t *testing.T) {
	dir := t.TempDir()
	b, err := wal.NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := wal.Open(wal.Options{Backend: b, BatchSize: 4, MaxWait: 0, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	st, err := incr.NewStore(gen.RSTChain(4, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	w.Attach(st, func() []string { return []string{rel.HardQuery().String()} })
	if err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.SetProb(i%st.Len(), float64(i+1)/10); err != nil {
			t.Fatal(err)
		}
	}
	v, err := st.RegisterView(rel.HardQuery(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantProb := v.Probability()
	w.Kill() // crash: the log tail is left unsealed

	var out strings.Builder
	if err := RunInspect(dir, rel.HardQuery().String(), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"recovered: seq 5", "5 log records", "views recorded at snapshot (1)"} {
		if !strings.Contains(got, want) {
			t.Errorf("inspect output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "probability:") {
		t.Fatalf("no probability in:\n%s", got)
	}

	// Inspection is repeatable and read-only: a second run sees the same
	// directory, and a real recovery still works afterwards.
	var out2 strings.Builder
	if err := RunInspect(dir, "", &out2); err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Replay(b)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 5 {
		t.Fatalf("post-inspect recovery at seq %d, want 5", rec.Seq)
	}
	v2, err := rec.Store.RegisterView(rel.HardQuery(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Probability() != wantProb {
		t.Fatalf("post-inspect recovery probability %v, want %v", v2.Probability(), wantProb)
	}
}
