// Command pdbcli evaluates conjunctive queries on uncertain relational
// instances described in a small text format.
//
// Usage:
//
//	pdbcli -i instance.pdb -q 'R(?x) & S(?x,?y) & T(?y)' [-mode prob|possible|certain|all]
//	       [-batch 'e1=0.1,0.5,0.9'] [-parallel N] [-stats] [-shards]
//	       [-updates script.up]
//
// Instance format, one declaration per line ('#' starts a comment):
//
//	fact 0.9 R a          # TID-style fact with marginal probability
//	event e1 0.7          # declare an event with its probability
//	cfact e1 & !e2 S a b  # c-instance fact with a formula annotation
//
// fact and cfact lines may be mixed; plain facts get private events.
//
// -batch sweeps one event's probability over the listed values and answers
// every sweep point against the same compiled plan, through the multi-lane
// batched dynamic program ((*core.Plan).ProbabilityBatch: the row DP runs
// once, carrying one weight lane per value). With -parallel N the sweep is
// instead served as N-way concurrent single evaluations of the shared
// frozen plan (core.Serve), the worker-pool path a query server would use.
//
// -stats prints the shape of the decomposition the plan runs on (width,
// nice nodes, depth, max bag); depth bounds the cost of live updates.
//
// -shards additionally compiles a component-sharded plan (core.PrepareSharded:
// one sub-plan per connected component of the joint graph, combined at the
// root) and prints the per-shard shapes plus the agreement with the
// monolithic answer.
//
// -updates FILE switches to live-update mode: the instance (which must be
// tuple-independent) is loaded into an incr.Store serving the query from a
// live materialized view, and the update script in FILE — set/insert/delete/
// begin/commit/prob/stats commands, see RunUpdates — is replayed against it,
// printing the refreshed probability after every commit. FILE may be "-" to
// read commands from stdin, e.g. interactively.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"slices"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

func main() {
	inPath := flag.String("i", "", "instance file (default: stdin)")
	queryStr := flag.String("q", "", "conjunctive query, e.g. 'R(?x) & S(?x,?y)'")
	mode := flag.String("mode", "all", "prob | possible | certain | all")
	batchSpec := flag.String("batch", "", "sweep one event's probability, e.g. 'e1=0.1,0.5,0.9' (one batched multi-lane evaluation)")
	parallel := flag.Int("parallel", 0, "serve the -batch sweep over N worker goroutines instead of the lane path (0: batched)")
	stats := flag.Bool("stats", false, "print the decomposition shape (width, nice nodes, depth, max bag)")
	shards := flag.Bool("shards", false, "also compile a component-sharded plan and print per-shard statistics")
	updates := flag.String("updates", "", "live-update mode: replay the update script in this file ('-' for stdin) against a live view")
	flag.Parse()
	if *queryStr == "" {
		fmt.Fprintln(os.Stderr, "pdbcli: -q is required")
		os.Exit(2)
	}
	q, err := ParseCQ(*queryStr)
	if err != nil {
		fatal(err)
	}
	r := os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	c, p, err := ParseInstance(bufio.NewScanner(r))
	if err != nil {
		fatal(err)
	}

	// Live-update mode: load the instance into a store, serve the query from
	// a live materialized view, replay the script.
	if *updates != "" {
		tid, err := TIDFromInstance(c, p)
		if err != nil {
			fatal(err)
		}
		script := os.Stdin
		if *updates != "-" {
			f, err := os.Open(*updates)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			script = f
		} else if *inPath == "" {
			fatal(fmt.Errorf("-updates - needs -i: stdin cannot carry both the instance and the script"))
		}
		if err := RunUpdates(tid, q, script, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	switch *mode {
	case "prob", "possible", "certain", "all":
	default:
		fmt.Fprintf(os.Stderr, "pdbcli: unknown -mode %q (want prob|possible|certain|all)\n", *mode)
		os.Exit(2)
	}
	// Validate the sweep flags before paying for plan compilation and the
	// main evaluation.
	if *parallel > 0 && *batchSpec == "" {
		fmt.Fprintln(os.Stderr, "pdbcli: -parallel needs a -batch sweep to serve")
		os.Exit(2)
	}
	var sweepEvent logic.Event
	var sweepVals []float64
	if *batchSpec != "" {
		sweepEvent, sweepVals, err = ParseSweep(*batchSpec)
		if err != nil {
			fatal(err)
		}
		if _, declared := p[sweepEvent]; !declared && !slices.Contains(c.Events(), sweepEvent) {
			fatal(fmt.Errorf("-batch event %q is not an event of the instance", sweepEvent))
		}
	}
	fmt.Printf("instance: %d facts, %d events\n", c.NumFacts(), len(c.Events()))
	fmt.Printf("query: %s\n", q)

	// One compiled plan answers every mode: the structural work (domain
	// indexing, decomposition, automaton tables) runs once.
	pl, err := core.PrepareCQ(c, q, core.Options{})
	if err != nil {
		fatal(err)
	}
	res, err := pl.Result(p)
	if err != nil {
		fatal(err)
	}
	if *stats {
		sh := pl.Shape()
		fmt.Printf("decomposition: width %d, %d nice nodes, depth %d, max bag %d\n", sh.Width, sh.Nodes, sh.Depth, sh.MaxBag)
	}
	if *shards {
		sp, err := core.PrepareSharded(c, q, core.Options{})
		if err != nil {
			fatal(err)
		}
		sres, err := sp.Result(p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("shards: %d components, max width %d, %d nice nodes total, |Δ| vs monolithic %.1e\n",
			sp.NumShards(), sp.Width(), sp.NumNiceNodes(), math.Abs(sres.Probability-res.Probability))
		for i, st := range sp.ShardStats() {
			fmt.Printf("  shard %d: width %d, %d nodes, depth %d, max bag %d\n", i, st.Width, st.Nodes, st.Depth, st.MaxBag)
		}
	}
	if *mode == "prob" || *mode == "all" {
		fmt.Printf("probability: %.9f (joint width %d)\n", res.Probability, res.Width)
	}
	if *mode == "possible" || *mode == "all" {
		fmt.Printf("possible: %v\n", res.Probability > 1e-15)
	}
	if *mode == "certain" || *mode == "all" {
		fmt.Printf("certain: %v\n", res.Probability > 1-1e-12)
	}

	if *batchSpec != "" {
		probs, err := RunSweep(pl, p, sweepEvent, sweepVals, *parallel)
		if err != nil {
			fatal(err)
		}
		how := "multi-lane batch"
		if *parallel > 0 {
			how = fmt.Sprintf("%d parallel workers", *parallel)
		}
		fmt.Printf("sweep over P(%s) (%s):\n", sweepEvent, how)
		for i, v := range sweepVals {
			fmt.Printf("  P(%s)=%.6g  ->  P(q)=%.9f\n", sweepEvent, v, probs[i])
		}
	}
}

// ParseSweep parses a -batch spec "event=v1,v2,..." into the event and its
// probability values.
func ParseSweep(spec string) (logic.Event, []float64, error) {
	name, list, ok := strings.Cut(spec, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return "", nil, fmt.Errorf("-batch wants 'event=v1,v2,...', got %q", spec)
	}
	var vals []float64
	for _, tok := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return "", nil, fmt.Errorf("-batch value %q: %v", tok, err)
		}
		if v < 0 || v > 1 {
			return "", nil, fmt.Errorf("-batch value %v outside [0,1]", v)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return "", nil, fmt.Errorf("-batch lists no values")
	}
	return logic.Event(name), vals, nil
}

// RunSweep evaluates the plan with the probability of event swept over vals,
// all other events as in base. parallel <= 0 answers every sweep point in
// one multi-lane batched evaluation; parallel > 0 fans the points as
// independent requests over that many workers sharing the frozen plan.
func RunSweep(pl *core.Plan, base logic.Prob, event logic.Event, vals []float64, parallel int) ([]float64, error) {
	ps := make([]logic.Prob, len(vals))
	for i, v := range vals {
		m := make(logic.Prob, len(base)+1)
		for e, pr := range base {
			m[e] = pr
		}
		m[event] = v
		ps[i] = m
	}
	if parallel <= 0 {
		return pl.ProbabilityBatch(ps)
	}
	reqs := make([]core.Request, len(ps))
	for i, p := range ps {
		reqs[i] = core.Request{Plan: pl, P: p}
	}
	out := make([]float64, len(ps))
	for i, resp := range core.Serve(reqs, parallel) {
		if resp.Err != nil {
			return nil, resp.Err
		}
		out[i] = resp.Probability
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdbcli:", err)
	os.Exit(1)
}

// ParseInstance reads the instance format described in the package comment.
func ParseInstance(sc *bufio.Scanner) (*pdb.CInstance, logic.Prob, error) {
	c := pdb.NewCInstance()
	p := logic.Prob{}
	fresh := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "event":
			if len(fields) != 3 {
				return nil, nil, fmt.Errorf("line %d: event NAME PROB", line)
			}
			pr, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", line, err)
			}
			p[logic.Event(fields[1])] = pr
		case "fact":
			if len(fields) < 3 {
				return nil, nil, fmt.Errorf("line %d: fact PROB REL ARGS...", line)
			}
			pr, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", line, err)
			}
			e := logic.Event(fmt.Sprintf("_f%d", fresh))
			fresh++
			p[e] = pr
			c.AddFact(logic.Var(e), fields[2], fields[3:]...)
		case "cfact":
			// cfact FORMULA... REL ARGS...: the formula is everything up
			// to the second-to-last whitespace-run that starts a
			// relation name; we locate the split by parsing from the end:
			// the relation is the first field after the formula, so we
			// re-join and search for the last formula token.
			rest := strings.TrimSpace(text[len("cfact"):])
			ann, relPart, err := splitAnnotation(rest)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", line, err)
			}
			f, err := ParseFormula(ann)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", line, err)
			}
			rf := strings.Fields(relPart)
			c.AddFact(f, rf[0], rf[1:]...)
		default:
			return nil, nil, fmt.Errorf("line %d: unknown directive %q", line, fields[0])
		}
	}
	return c, p, sc.Err()
}

// splitAnnotation separates "e1 & !e2 S a b" into the formula part and the
// fact part: the fact begins at the last token run that is not part of a
// formula (no operators around it). We use the convention that the formula
// and the fact are separated by the last operator-free boundary: formula
// tokens are identifiers, '&', '|', '!', '(' , ')'; the first token that is
// followed only by identifier tokens and is preceded by an identifier or
// ')' begins the fact.
func splitAnnotation(s string) (string, string, error) {
	tokens := strings.Fields(s)
	if len(tokens) < 2 {
		return "", "", fmt.Errorf("cfact needs a formula and a fact")
	}
	isOp := func(t string) bool {
		return t == "&" || t == "|" || strings.HasPrefix(t, "!") || strings.HasSuffix(t, "&") || strings.HasSuffix(t, "|")
	}
	// Scan from the right: the fact is the longest suffix of operator-free
	// tokens such that the token before the suffix is not an operator.
	split := -1
	for i := len(tokens) - 1; i >= 1; i-- {
		if isOp(tokens[i]) {
			split = i + 1
			break
		}
	}
	if split < 0 {
		split = 1 // single-token formula
	}
	if split >= len(tokens) {
		return "", "", fmt.Errorf("cfact is missing the fact after the formula")
	}
	return strings.Join(tokens[:split], " "), strings.Join(tokens[split:], " "), nil
}

// ParseFormula parses formulas with '!', '&', '|' and parentheses, with the
// usual precedences (! > & > |).
func ParseFormula(s string) (logic.Formula, error) {
	p := &fparser{input: s}
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("trailing input %q in formula", p.input[p.pos:])
	}
	return f, nil
}

type fparser struct {
	input string
	pos   int
}

func (p *fparser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *fparser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func (p *fparser) parseOr() (logic.Formula, error) {
	f, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		g, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		f = logic.Or(f, g)
	}
	return f, nil
}

func (p *fparser) parseAnd() (logic.Formula, error) {
	f, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == '&' {
		p.pos++
		g, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		f = logic.And(f, g)
	}
	return f, nil
}

func (p *fparser) parseUnary() (logic.Formula, error) {
	switch p.peek() {
	case '!':
		p.pos++
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return logic.Not(f), nil
	case '(':
		p.pos++
		f, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ')' in formula")
		}
		p.pos++
		return f, nil
	case 0:
		return nil, fmt.Errorf("unexpected end of formula")
	}
	start := p.pos
	for p.pos < len(p.input) && isIdent(p.input[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("unexpected character %q in formula", p.input[p.pos])
	}
	name := p.input[start:p.pos]
	switch name {
	case "true":
		return logic.True, nil
	case "false":
		return logic.False, nil
	}
	return logic.Var(logic.Event(name)), nil
}

func isIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// ParseCQ parses 'R(?x) & S(?x,?y) & T(c)': variables start with '?',
// everything else is a constant.
func ParseCQ(s string) (rel.CQ, error) {
	var atoms []rel.Atom
	for _, part := range strings.Split(s, "&") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		open := strings.IndexByte(part, '(')
		if open < 0 || !strings.HasSuffix(part, ")") {
			return rel.CQ{}, fmt.Errorf("atom %q must look like R(?x,c)", part)
		}
		relName := strings.TrimSpace(part[:open])
		if relName == "" {
			return rel.CQ{}, fmt.Errorf("atom %q has no relation name", part)
		}
		inner := part[open+1 : len(part)-1]
		var terms []rel.Term
		if strings.TrimSpace(inner) != "" {
			for _, raw := range strings.Split(inner, ",") {
				tok := strings.TrimSpace(raw)
				if tok == "" {
					return rel.CQ{}, fmt.Errorf("empty term in %q", part)
				}
				if strings.HasPrefix(tok, "?") {
					terms = append(terms, rel.V(tok[1:]))
				} else {
					terms = append(terms, rel.C(tok))
				}
			}
		}
		atoms = append(atoms, rel.NewAtom(relName, terms...))
	}
	if len(atoms) == 0 {
		return rel.CQ{}, fmt.Errorf("empty query")
	}
	return rel.NewCQ(atoms...), nil
}
