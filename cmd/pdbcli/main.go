// Command pdbcli evaluates conjunctive queries on uncertain relational
// instances described in a small text format.
//
// Usage:
//
//	pdbcli -i instance.pdb -q 'R(?x) & S(?x,?y) & T(?y)' [-mode prob|possible|certain|all]
//	       [-batch 'e1=0.1,0.5,0.9'] [-parallel N] [-stats] [-shards]
//	       [-updates script.up]
//	pdbcli -data-dir DIR [-q 'R(?x)']
//
// Instance format, one declaration per line ('#' starts a comment):
//
//	fact 0.9 R a          # TID-style fact with marginal probability
//	event e1 0.7          # declare an event with its probability
//	cfact e1 & !e2 S a b  # c-instance fact with a formula annotation
//
// fact and cfact lines may be mixed; plain facts get private events.
//
// -batch sweeps one event's probability over the listed values and answers
// every sweep point against the same compiled plan, through the multi-lane
// batched dynamic program ((*core.Plan).ProbabilityBatch: the row DP runs
// once, carrying one weight lane per value). With -parallel N the sweep is
// instead served as N-way concurrent single evaluations of the shared
// frozen plan (core.Serve), the worker-pool path a query server would use.
//
// -stats prints the shape of the decomposition the plan runs on (width,
// nice nodes, depth, max bag); depth bounds the cost of live updates.
//
// -shards additionally compiles a component-sharded plan (core.PrepareSharded:
// one sub-plan per connected component of the joint graph, combined at the
// root) and prints the per-shard shapes plus the agreement with the
// monolithic answer.
//
// -updates FILE switches to live-update mode: the instance (which must be
// tuple-independent) is loaded into an incr.Store serving the query from a
// live materialized view, and the update script in FILE — set/insert/delete/
// begin/commit/prob/stats commands, see RunUpdates — is replayed against it,
// printing the refreshed probability after every commit. FILE may be "-" to
// read commands from stdin, e.g. interactively.
//
// -data-dir DIR switches to inspection mode: a read-only replay of a pdbd
// durability directory (WAL snapshot + log tail, see internal/wal) that
// prints what recovery would reconstruct — commit sequence, snapshot
// provenance, torn-tail status, live facts, recorded views — and, with -q,
// answers a query against the recovered state. Nothing in DIR is modified.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"slices"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/pdbio"
)

func main() {
	inPath := flag.String("i", "", "instance file (default: stdin)")
	queryStr := flag.String("q", "", "conjunctive query, e.g. 'R(?x) & S(?x,?y)'")
	mode := flag.String("mode", "all", "prob | possible | certain | all")
	batchSpec := flag.String("batch", "", "sweep one event's probability, e.g. 'e1=0.1,0.5,0.9' (one batched multi-lane evaluation)")
	parallel := flag.Int("parallel", 0, "serve the -batch sweep over N worker goroutines instead of the lane path (0: batched)")
	stats := flag.Bool("stats", false, "print the decomposition shape (width, nice nodes, depth, max bag)")
	shards := flag.Bool("shards", false, "also compile a component-sharded plan and print per-shard statistics")
	updates := flag.String("updates", "", "live-update mode: replay the update script in this file ('-' for stdin) against a live view")
	dataDir := flag.String("data-dir", "", "inspect a pdbd durability directory (read-only replay); -q optionally answers a query against the recovered state")
	flag.Parse()
	// Inspection mode stands alone: the instance comes from the data dir's
	// snapshot + log, not from -i, and -q is optional.
	if *dataDir != "" {
		if err := RunInspect(*dataDir, *queryStr, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *queryStr == "" {
		fmt.Fprintln(os.Stderr, "pdbcli: -q is required")
		os.Exit(2)
	}
	q, err := pdbio.ParseCQ(*queryStr)
	if err != nil {
		fatal(err)
	}
	r := os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	c, p, err := pdbio.ParseInstance(bufio.NewScanner(r))
	if err != nil {
		fatal(err)
	}

	// Live-update mode: load the instance into a store, serve the query from
	// a live materialized view, replay the script.
	if *updates != "" {
		tid, err := pdbio.TIDFromInstance(c, p)
		if err != nil {
			fatal(err)
		}
		script := os.Stdin
		// Interactive means a human at a terminal: a truncated session is
		// the user hanging up, not a broken script. A *piped* stdin
		// ("generate | pdbcli -updates -") is still script mode — its
		// producer dying mid-batch must fail the exit status.
		interactive := false
		if *updates != "-" {
			f, err := os.Open(*updates)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			script = f
		} else if *inPath == "" {
			fatal(fmt.Errorf("-updates - needs -i: stdin cannot carry both the instance and the script"))
		} else if st, err := os.Stdin.Stat(); err == nil {
			interactive = st.Mode()&os.ModeCharDevice != 0
		}
		if err := RunUpdates(tid, q, script, os.Stdout, interactive); err != nil {
			fatal(err)
		}
		return
	}

	switch *mode {
	case "prob", "possible", "certain", "all":
	default:
		fmt.Fprintf(os.Stderr, "pdbcli: unknown -mode %q (want prob|possible|certain|all)\n", *mode)
		os.Exit(2)
	}
	// Validate the sweep flags before paying for plan compilation and the
	// main evaluation.
	if *parallel > 0 && *batchSpec == "" {
		fmt.Fprintln(os.Stderr, "pdbcli: -parallel needs a -batch sweep to serve")
		os.Exit(2)
	}
	var sweepEvent logic.Event
	var sweepVals []float64
	if *batchSpec != "" {
		sweepEvent, sweepVals, err = pdbio.ParseSweep(*batchSpec)
		if err != nil {
			fatal(err)
		}
		if _, declared := p[sweepEvent]; !declared && !slices.Contains(c.Events(), sweepEvent) {
			fatal(fmt.Errorf("-batch event %q is not an event of the instance", sweepEvent))
		}
	}
	fmt.Printf("instance: %d facts, %d events\n", c.NumFacts(), len(c.Events()))
	fmt.Printf("query: %s\n", q)

	// One compiled plan answers every mode: the structural work (domain
	// indexing, decomposition, automaton tables) runs once.
	pl, err := core.PrepareCQ(c, q, core.Options{})
	if err != nil {
		fatal(err)
	}
	res, err := pl.Result(p)
	if err != nil {
		fatal(err)
	}
	if *stats {
		sh := pl.Shape()
		fmt.Printf("decomposition: width %d, %d nice nodes, depth %d, max bag %d\n", sh.Width, sh.Nodes, sh.Depth, sh.MaxBag)
	}
	if *shards {
		sp, err := core.PrepareSharded(c, q, core.Options{})
		if err != nil {
			fatal(err)
		}
		sres, err := sp.Result(p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("shards: %d components, max width %d, %d nice nodes total, |Δ| vs monolithic %.1e\n",
			sp.NumShards(), sp.Width(), sp.NumNiceNodes(), math.Abs(sres.Probability-res.Probability))
		for i, st := range sp.ShardStats() {
			fmt.Printf("  shard %d: width %d, %d nodes, depth %d, max bag %d\n", i, st.Width, st.Nodes, st.Depth, st.MaxBag)
		}
	}
	if *mode == "prob" || *mode == "all" {
		fmt.Printf("probability: %.9f (joint width %d)\n", res.Probability, res.Width)
	}
	if *mode == "possible" || *mode == "all" {
		fmt.Printf("possible: %v\n", res.Probability > 1e-15)
	}
	if *mode == "certain" || *mode == "all" {
		fmt.Printf("certain: %v\n", res.Probability > 1-1e-12)
	}

	if *batchSpec != "" {
		probs, err := RunSweep(pl, p, sweepEvent, sweepVals, *parallel)
		if err != nil {
			fatal(err)
		}
		how := "multi-lane batch"
		if *parallel > 0 {
			how = fmt.Sprintf("%d parallel workers", *parallel)
		}
		fmt.Printf("sweep over P(%s) (%s):\n", sweepEvent, how)
		for i, v := range sweepVals {
			fmt.Printf("  P(%s)=%.6g  ->  P(q)=%.9f\n", sweepEvent, v, probs[i])
		}
	}
}

// RunSweep evaluates the plan with the probability of event swept over vals,
// all other events as in base. parallel <= 0 answers every sweep point in
// one multi-lane batched evaluation; parallel > 0 fans the points as
// independent requests over that many workers sharing the frozen plan.
func RunSweep(pl *core.Plan, base logic.Prob, event logic.Event, vals []float64, parallel int) ([]float64, error) {
	ps := make([]logic.Prob, len(vals))
	for i, v := range vals {
		m := make(logic.Prob, len(base)+1)
		for e, pr := range base {
			m[e] = pr
		}
		m[event] = v
		ps[i] = m
	}
	if parallel <= 0 {
		return pl.ProbabilityBatch(ps)
	}
	reqs := make([]core.Request, len(ps))
	for i, p := range ps {
		reqs[i] = core.Request{Plan: pl, P: p}
	}
	out := make([]float64, len(ps))
	for i, resp := range core.Serve(reqs, parallel) {
		if resp.Err != nil {
			return nil, resp.Err
		}
		out[i] = resp.Probability
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdbcli:", err)
	os.Exit(1)
}
