package main

import (
	"bufio"
	"math"
	"strings"
	"testing"

	"repro/internal/pdbio"

	"repro/internal/core"
	"repro/internal/logic"
)

// TestRunSweepBatchedAndParallelAgree runs the same sweep through the
// multi-lane batch path and the worker-pool path; both must agree with
// per-point serial evaluation.
func TestRunSweepBatchedAndParallelAgree(t *testing.T) {
	input := `
event e1 0.5
cfact e1 R a
fact 0.8 S a b
fact 0.6 T b
`
	c, p, err := pdbio.ParseInstance(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	q, err := pdbio.ParseCQ("R(?x) & S(?x,?y) & T(?y)")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.PrepareCQ(c, q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{0, 0.25, 0.5, 1}
	batched, err := RunSweep(pl, p, "e1", vals, 0)
	if err != nil {
		t.Fatal(err)
	}
	served, err := RunSweep(pl, p, "e1", vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		pv := logic.Prob{}
		for e, pr := range p {
			pv[e] = pr
		}
		pv["e1"] = v
		want, err := pl.Probability(pv)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(batched[i]-want) > 1e-12 || math.Abs(served[i]-want) > 1e-12 {
			t.Errorf("P(e1)=%v: batch %v, served %v, serial %v", v, batched[i], served[i], want)
		}
	}
}
