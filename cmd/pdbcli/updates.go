package main

// The live-update mode of pdbcli: -updates replays a script of mutations
// (or serves an interactive REPL from stdin) against an incr.Store, printing
// the refreshed query probability after every commit. The query is answered
// from a live materialized view, so a probability tweak costs one dirty
// spine, not a re-Prepare.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// RunUpdates executes the update script from r against a fresh store over
// tid, serving q from a live view, and writes the refreshed probability
// after every commit to w. Supported commands, one per line ('#' comments):
//
//	set ID P             overwrite the probability of fact ID
//	insert P REL ARGS..  add (or revive) a fact
//	delete ID            tombstone fact ID
//	begin ... commit     group the enclosed updates into one batched commit
//	prob                 print the current probability
//	stats                print store counters, commit latency quantiles,
//	                     shards and the decomposition shape
//
// Fact ids are the load order of the instance file, counted from 0; inserts
// print the id they were assigned.
//
// A malformed line — bad probability, unknown fact id, unknown command —
// does not terminate the session: the error is reported to w (prefixed
// "error:") and processing continues, so an interactive REPL survives
// typos. A bad line inside a begin block leaves the already-staged batch
// intact.
//
// Input that ends inside a begin block holds staged-but-uncommitted updates
// that will never land; both modes report them with a "warning: N staged
// updates discarded" line so the loss is never silent. In script mode
// (interactive false) the truncated script is additionally an error — the
// caller exits non-zero; an interactive session (interactive true) treats
// the EOF as the user hanging up and ends cleanly after the warning.
// RunUpdates otherwise only errors on I/O failures.
func RunUpdates(tid *pdb.TID, q rel.CQ, r io.Reader, w io.Writer, interactive bool) error {
	s, err := incr.NewStore(tid)
	if err != nil {
		return err
	}
	// A private registry so `stats` can report commit-latency quantiles from
	// the same histograms pdbd would export.
	m := incr.NewMetrics(obs.NewRegistry())
	s.SetMetrics(m)
	v, err := s.RegisterView(q, core.Options{})
	if err != nil {
		return err
	}
	cancel := s.Subscribe(func(c incr.Commit) {
		// The trailing delta ledger shows what the commit actually cost: rows
		// recomputed by the delta pass, and spines cut short because a
		// recomputed table came out unchanged (" unchanged" flags a commit
		// that moved nothing — e.g. churn that cancelled out).
		suffix := ""
		if !c.AnyChanged() {
			suffix = " unchanged"
		}
		fmt.Fprintf(w, "#%d P(q) = %.9f [%d rows, %d spines cut]%s\n",
			c.Seq, c.Probabilities[0], c.RowsRecomputed, c.SpinesShortCircuited, suffix)
	})
	defer cancel()
	fmt.Fprintf(w, "live view ready: %d facts, P(q) = %.9f\n", s.Len(), v.Probability())

	var batch []incr.Update
	inBatch := false
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if err := runUpdateLine(s, m, v, w, fields, &batch, &inBatch); err != nil {
			// Report and carry on: the staged batch (if any) is untouched.
			fmt.Fprintf(w, "error: line %d: %v\n", line, err)
		}
	}
	if inBatch {
		fmt.Fprintf(w, "warning: %d staged updates discarded (input ended inside a begin block)\n", len(batch))
		if !interactive {
			return fmt.Errorf("updates: unterminated begin block: %d staged updates discarded", len(batch))
		}
	}
	return sc.Err()
}

// runUpdateLine executes one parsed update command. Errors are recoverable:
// the caller reports them and continues, with all staged state intact.
func runUpdateLine(s *incr.Store, m *incr.Metrics, v *incr.View, w io.Writer, fields []string, batch *[]incr.Update, inBatch *bool) error {
	switch fields[0] {
	case "set":
		if len(fields) != 3 {
			return fmt.Errorf("set ID P")
		}
		id, err1 := strconv.Atoi(fields[1])
		p, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("set wants an integer id and a probability")
		}
		if *inBatch {
			*batch = append(*batch, incr.Update{Op: incr.OpSet, ID: id, P: p})
		} else if err := s.SetProb(id, p); err != nil {
			return err
		}
	case "insert":
		if len(fields) < 3 {
			return fmt.Errorf("insert P REL ARGS...")
		}
		p, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return err
		}
		f := rel.NewFact(fields[2], fields[3:]...)
		if *inBatch {
			*batch = append(*batch, incr.Update{Op: incr.OpInsert, Fact: f, P: p})
		} else {
			id, err := s.Insert(f, p)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "inserted %s as id %d\n", f, id)
		}
	case "delete":
		if len(fields) != 2 {
			return fmt.Errorf("delete ID")
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		if *inBatch {
			*batch = append(*batch, incr.Update{Op: incr.OpDelete, ID: id})
		} else if err := s.Delete(id); err != nil {
			return err
		}
	case "begin":
		if *inBatch {
			return fmt.Errorf("nested begin")
		}
		*inBatch = true
		*batch = (*batch)[:0]
	case "commit":
		if !*inBatch {
			return fmt.Errorf("commit outside begin")
		}
		*inBatch = false
		err := s.ApplyBatch(*batch)
		// ApplyBatch commits the staged prefix even when a later update
		// fails, so report what actually landed either way: inserted ids for
		// the inserts the store now knows, and an explicit partial-commit
		// note alongside the error.
		for _, u := range *batch {
			if u.Op == incr.OpInsert {
				if id := s.IDOf(u.Fact); id >= 0 {
					fmt.Fprintf(w, "inserted %s as id %d\n", u.Fact, id)
				}
			}
		}
		if err != nil {
			return fmt.Errorf("%v (the staged updates before the failing one were committed)", err)
		}
		fmt.Fprintf(w, "batch of %d updates committed\n", len(*batch))
	case "prob":
		fmt.Fprintf(w, "P(q) = %.9f\n", v.Probability())
	case "stats":
		st := s.Stats()
		sh := v.Shape()
		fmt.Fprintf(w, "store: %d commits, %d updates (%d set, %d insert, %d delete), %d attached in place, %d shards opened, %d rebuilds, %d tombstones, %d tables recomputed\n",
			st.Commits, st.Updates, st.SetProbs, st.Inserts, st.Deletes, st.Attached, st.NewShards, st.Rebuilds, st.Tombstones, st.NodesRecomputed)
		fmt.Fprintf(w, "delta: %d rows recomputed, %d spines short-circuited\n",
			st.RowsRecomputed, st.SpinesShortCircuited)
		if cs := m.CommitSeconds.Snapshot(); cs.Count > 0 {
			fmt.Fprintf(w, "commit latency: p50 %.1fus, p95 %.1fus, p99 %.1fus over %d commits\n",
				cs.Quantile(0.50)*1e6, cs.Quantile(0.95)*1e6, cs.Quantile(0.99)*1e6, cs.Count)
		}
		fmt.Fprintf(w, "view: %d shards, max width %d, %d nice nodes, depth %d, max bag %d\n", st.Shards, sh.Width, sh.Nodes, sh.Depth, sh.MaxBag)
	default:
		return fmt.Errorf("unknown command %q (set|insert|delete|begin|commit|prob|stats)", fields[0])
	}
	return nil
}
