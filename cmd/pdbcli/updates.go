package main

// The live-update mode of pdbcli: -updates replays a script of mutations
// (or serves an interactive REPL from stdin) against an incr.Store, printing
// the refreshed query probability after every commit. The query is answered
// from a live materialized view, so a probability tweak costs one dirty
// spine, not a re-Prepare.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// TIDFromInstance converts a parsed instance into a tuple-independent one:
// every fact must be annotated by its own single positive event. Instances
// with shared or complex annotations are rejected — the live-update store
// maintains tuple-level probabilities, so correlated facts have no
// well-defined per-tuple weight to update.
func TIDFromInstance(c *pdb.CInstance, p logic.Prob) (*pdb.TID, error) {
	t := pdb.NewTID()
	seen := map[logic.Event]int{}
	for i := 0; i < c.NumFacts(); i++ {
		f := c.Inst.Fact(i)
		vars := logic.Vars(c.Ann[i])
		if len(vars) != 1 || !logic.Equivalent(c.Ann[i], logic.Var(vars[0])) {
			return nil, fmt.Errorf("fact %s has annotation %s: the update mode needs a tuple-independent instance (plain 'fact' lines, or one positive event per cfact)", f, logic.String(c.Ann[i]))
		}
		if prev, dup := seen[vars[0]]; dup {
			return nil, fmt.Errorf("facts %s and %s share event %s: the update mode needs independent tuples", c.Inst.Fact(prev), f, vars[0])
		}
		seen[vars[0]] = i
		if _, err := t.TryAdd(f, p.P(vars[0])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// RunUpdates executes the update script from r against a fresh store over
// tid, serving q from a live view, and writes the refreshed probability
// after every commit to w. Supported commands, one per line ('#' comments):
//
//	set ID P             overwrite the probability of fact ID
//	insert P REL ARGS..  add (or revive) a fact
//	delete ID            tombstone fact ID
//	begin ... commit     group the enclosed updates into one batched commit
//	prob                 print the current probability
//	stats                print store counters and the decomposition shape
//
// Fact ids are the load order of the instance file, counted from 0; inserts
// print the id they were assigned.
func RunUpdates(tid *pdb.TID, q rel.CQ, r io.Reader, w io.Writer) error {
	s, err := incr.NewStore(tid)
	if err != nil {
		return err
	}
	v, err := s.RegisterView(q, core.Options{})
	if err != nil {
		return err
	}
	cancel := s.Subscribe(func(c incr.Commit) {
		fmt.Fprintf(w, "#%d P(q) = %.9f\n", c.Seq, c.Probabilities[0])
	})
	defer cancel()
	fmt.Fprintf(w, "live view ready: %d facts, P(q) = %.9f\n", s.Len(), v.Probability())

	var batch []incr.Update
	inBatch := false
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		fail := func(err error) error { return fmt.Errorf("updates line %d: %v", line, err) }
		switch fields[0] {
		case "set":
			if len(fields) != 3 {
				return fail(fmt.Errorf("set ID P"))
			}
			id, err1 := strconv.Atoi(fields[1])
			p, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return fail(fmt.Errorf("set wants an integer id and a probability"))
			}
			if inBatch {
				batch = append(batch, incr.Update{Op: incr.OpSet, ID: id, P: p})
			} else if err := s.SetProb(id, p); err != nil {
				return fail(err)
			}
		case "insert":
			if len(fields) < 3 {
				return fail(fmt.Errorf("insert P REL ARGS..."))
			}
			p, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return fail(err)
			}
			f := rel.NewFact(fields[2], fields[3:]...)
			if inBatch {
				batch = append(batch, incr.Update{Op: incr.OpInsert, Fact: f, P: p})
			} else {
				id, err := s.Insert(f, p)
				if err != nil {
					return fail(err)
				}
				fmt.Fprintf(w, "inserted %s as id %d\n", f, id)
			}
		case "delete":
			if len(fields) != 2 {
				return fail(fmt.Errorf("delete ID"))
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return fail(err)
			}
			if inBatch {
				batch = append(batch, incr.Update{Op: incr.OpDelete, ID: id})
			} else if err := s.Delete(id); err != nil {
				return fail(err)
			}
		case "begin":
			if inBatch {
				return fail(fmt.Errorf("nested begin"))
			}
			inBatch = true
			batch = batch[:0]
		case "commit":
			if !inBatch {
				return fail(fmt.Errorf("commit outside begin"))
			}
			inBatch = false
			if err := s.ApplyBatch(batch); err != nil {
				return fail(err)
			}
			for _, u := range batch {
				if u.Op == incr.OpInsert {
					fmt.Fprintf(w, "inserted %s as id %d\n", u.Fact, s.IDOf(u.Fact))
				}
			}
			fmt.Fprintf(w, "batch of %d updates committed\n", len(batch))
		case "prob":
			fmt.Fprintf(w, "P(q) = %.9f\n", v.Probability())
		case "stats":
			st := s.Stats()
			sh := v.Shape()
			fmt.Fprintf(w, "store: %d commits, %d updates (%d set, %d insert, %d delete), %d attached in place, %d rebuilds, %d tombstones, %d tables recomputed\n",
				st.Commits, st.Updates, st.SetProbs, st.Inserts, st.Deletes, st.Attached, st.Rebuilds, st.Tombstones, st.NodesRecomputed)
			fmt.Fprintf(w, "view: width %d, %d nice nodes, depth %d, max bag %d\n", sh.Width, sh.Nodes, sh.Depth, sh.MaxBag)
		default:
			return fail(fmt.Errorf("unknown command %q (set|insert|delete|begin|commit|prob|stats)", fields[0]))
		}
	}
	if inBatch {
		return fmt.Errorf("updates: unterminated begin block")
	}
	return sc.Err()
}
