package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestTIDFromInstance(t *testing.T) {
	c, p, err := ParseInstance(bufio.NewScanner(strings.NewReader(`
fact 0.9 R a
event e1 0.5
cfact e1 S a b
`)))
	if err != nil {
		t.Fatal(err)
	}
	tid, err := TIDFromInstance(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if tid.NumFacts() != 2 || tid.Prob(0) != 0.9 || tid.Prob(1) != 0.5 {
		t.Fatalf("tid = %d facts, probs %v", tid.NumFacts(), tid.Probs)
	}

	// Correlated annotations are rejected: no per-tuple weight to maintain.
	for _, bad := range []string{
		"event e1 0.5\ncfact !e1 R b",               // negated annotation
		"event e1 0.5\ncfact e1 R a\ncfact e1 R b", // shared event
	} {
		c, p, err := ParseInstance(bufio.NewScanner(strings.NewReader(bad)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := TIDFromInstance(c, p); err == nil {
			t.Errorf("accepted correlated instance %q", bad)
		}
	}

	// Bad probabilities surface as errors, not panics.
	c2, p2, err := ParseInstance(bufio.NewScanner(strings.NewReader("fact 1.5 R a")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TIDFromInstance(c2, p2); err == nil {
		t.Error("accepted probability 1.5")
	}
}

func TestRunUpdatesReplay(t *testing.T) {
	c, p, err := ParseInstance(bufio.NewScanner(strings.NewReader(`
fact 0.9 R a
fact 0.5 S a b
fact 0.8 T b
`)))
	if err != nil {
		t.Fatal(err)
	}
	tid, err := TIDFromInstance(c, p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseCQ("R(?x) & S(?x,?y) & T(?y)")
	if err != nil {
		t.Fatal(err)
	}
	script := `
# raise the S link, then grow and shrink the instance
set 1 0.9
insert 0.7 S a c
insert 0.4 T c
begin
set 0 0.5
delete 2
commit
prob
stats
`
	var out strings.Builder
	if err := RunUpdates(tid, q, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"live view ready: 3 facts, P(q) = 0.360000000",
		"#1 P(q) = 0.648000000",
		"inserted T(c) as id 4",
		"#4 P(q) = 0.140000000",
		"batch of 2 updates committed",
		"view: width",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	// Script errors carry the line number and stop the replay.
	var out2 strings.Builder
	err = RunUpdates(tid, q, strings.NewReader("set 99 0.5\n"), &out2)
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("bad id error = %v", err)
	}
	if err := RunUpdates(tid, q, strings.NewReader("begin\nset 0 0.5\n"), &out2); err == nil {
		t.Error("unterminated begin accepted")
	}
}
