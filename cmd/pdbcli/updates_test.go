package main

import (
	"bufio"
	"strings"
	"testing"

	"repro/internal/pdbio"
)

func TestTIDFromInstance(t *testing.T) {
	c, p, err := pdbio.ParseInstance(bufio.NewScanner(strings.NewReader(`
fact 0.9 R a
event e1 0.5
cfact e1 S a b
`)))
	if err != nil {
		t.Fatal(err)
	}
	tid, err := pdbio.TIDFromInstance(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if tid.NumFacts() != 2 || tid.Prob(0) != 0.9 || tid.Prob(1) != 0.5 {
		t.Fatalf("tid = %d facts, probs %v", tid.NumFacts(), tid.Probs)
	}

	// Correlated annotations are rejected: no per-tuple weight to maintain.
	for _, bad := range []string{
		"event e1 0.5\ncfact !e1 R b",              // negated annotation
		"event e1 0.5\ncfact e1 R a\ncfact e1 R b", // shared event
	} {
		c, p, err := pdbio.ParseInstance(bufio.NewScanner(strings.NewReader(bad)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pdbio.TIDFromInstance(c, p); err == nil {
			t.Errorf("accepted correlated instance %q", bad)
		}
	}

	// Bad probabilities surface as errors, not panics.
	c2, p2, err := pdbio.ParseInstance(bufio.NewScanner(strings.NewReader("fact 1.5 R a")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pdbio.TIDFromInstance(c2, p2); err == nil {
		t.Error("accepted probability 1.5")
	}
}

func TestRunUpdatesReplay(t *testing.T) {
	c, p, err := pdbio.ParseInstance(bufio.NewScanner(strings.NewReader(`
fact 0.9 R a
fact 0.5 S a b
fact 0.8 T b
`)))
	if err != nil {
		t.Fatal(err)
	}
	tid, err := pdbio.TIDFromInstance(c, p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := pdbio.ParseCQ("R(?x) & S(?x,?y) & T(?y)")
	if err != nil {
		t.Fatal(err)
	}
	script := `
# raise the S link, then grow and shrink the instance
set 1 0.9
insert 0.7 S a c
insert 0.4 T c
begin
set 0 0.5
delete 2
commit
prob
stats
`
	var out strings.Builder
	if err := RunUpdates(tid, q, strings.NewReader(script), &out, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"live view ready: 3 facts, P(q) = 0.360000000",
		"#1 P(q) = 0.648000000",
		"inserted T(c) as id 4",
		"#4 P(q) = 0.140000000",
		"batch of 2 updates committed",
		"view: 1 shards, max width",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	// A script that ends inside a begin block is the one fatal condition.
	var out2 strings.Builder
	if err := RunUpdates(tid, q, strings.NewReader("begin\nset 0 0.5\n"), &out2, false); err == nil {
		t.Error("unterminated begin accepted")
	}
}

// TestRunUpdatesRecoversFromMalformedLines is the REPL-survival regression
// test: a bad probability, an unknown fact id, or an unknown command is
// reported (with its line number) and the session continues — and a bad line
// inside a begin block leaves the staged batch intact.
func TestRunUpdatesRecoversFromMalformedLines(t *testing.T) {
	c, p, err := pdbio.ParseInstance(bufio.NewScanner(strings.NewReader(`
fact 0.9 R a
fact 0.5 S a b
fact 0.8 T b
`)))
	if err != nil {
		t.Fatal(err)
	}
	tid, err := pdbio.TIDFromInstance(c, p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := pdbio.ParseCQ("R(?x) & S(?x,?y) & T(?y)")
	if err != nil {
		t.Fatal(err)
	}
	script := `
set 99 0.5
set 1 nope
frobnicate 3
set 1 0.9
begin
set 0 0.5
insert bad_probability R zzz
commit
prob
`
	// The malformed lines must not abort the replay: the two good updates
	// (set 1 0.9, and the batched set 0 0.5) still land, and the bad line
	// inside the begin block leaves the staged batch intact.
	var out strings.Builder
	if err := RunUpdates(tid, q, strings.NewReader(script), &out, false); err != nil {
		t.Fatalf("recoverable errors aborted the session: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"error: line 2: incr: no fact 99",
		"error: line 3: set wants an integer id and a probability",
		"error: line 4: unknown command \"frobnicate\"",
		"#1 P(q) = 0.648000000", // set 1 0.9 committed despite earlier errors
		"error: line 8",
		"batch of 1 updates committed", // the staged set 0 0.5 survived the bad line...
		"#2 P(q) = 0.360000000",        // ...and applied: 0.5*0.9*0.8
		"P(q) = 0.360000000",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunUpdatesPartialBatchCommitReported: when a batch fails mid-way,
// ApplyBatch commits the staged prefix — the REPL must say so and still
// print the ids of the inserts that landed.
func TestRunUpdatesPartialBatchCommitReported(t *testing.T) {
	c, p, err := pdbio.ParseInstance(bufio.NewScanner(strings.NewReader("fact 0.9 R a\nfact 0.5 S a b\nfact 0.8 T b\n")))
	if err != nil {
		t.Fatal(err)
	}
	tid, err := pdbio.TIDFromInstance(c, p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := pdbio.ParseCQ("R(?x) & S(?x,?y) & T(?y)")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	script := "begin\ninsert 0.7 S a c\nset 99 0.5\ncommit\nprob\n"
	if err := RunUpdates(tid, q, strings.NewReader(script), &out, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"inserted S(a,c) as id 3", // the committed prefix is visible
		"were committed",          // ...and the partial commit is called out
		"error: line 4",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "batch of 2 updates committed") {
		t.Errorf("failed batch reported as fully committed:\n%s", got)
	}
}

// TestRunUpdatesDiscardedBatchWarning: input ending inside a begin block
// discards the staged updates — never silently. Script mode warns AND errors
// (pdbcli exits non-zero); an interactive session warns and ends cleanly.
func TestRunUpdatesDiscardedBatchWarning(t *testing.T) {
	c, p, err := pdbio.ParseInstance(bufio.NewScanner(strings.NewReader("fact 0.9 R a\nfact 0.5 S a b\nfact 0.8 T b\n")))
	if err != nil {
		t.Fatal(err)
	}
	tid, err := pdbio.TIDFromInstance(c, p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := pdbio.ParseCQ("R(?x) & S(?x,?y) & T(?y)")
	if err != nil {
		t.Fatal(err)
	}
	script := "begin\nset 0 0.5\ninsert 0.7 S a c\n" // EOF before commit

	// Script mode: the truncated script is an error.
	var out strings.Builder
	err = RunUpdates(tid, q, strings.NewReader(script), &out, false)
	if err == nil {
		t.Error("script mode accepted an unterminated begin block")
	} else if !strings.Contains(err.Error(), "2 staged updates discarded") {
		t.Errorf("script-mode error %q does not count the discarded updates", err)
	}
	if !strings.Contains(out.String(), "warning: 2 staged updates discarded") {
		t.Errorf("script-mode output missing the warning:\n%s", out.String())
	}

	// Interactive mode: warn, exit clean.
	var out2 strings.Builder
	if err := RunUpdates(tid, q, strings.NewReader(script), &out2, true); err != nil {
		t.Errorf("interactive EOF treated as fatal: %v", err)
	}
	if !strings.Contains(out2.String(), "warning: 2 staged updates discarded") {
		t.Errorf("interactive output missing the warning:\n%s", out2.String())
	}

	// The discarded updates really did not land.
	var out3 strings.Builder
	if err := RunUpdates(tid, q, strings.NewReader("prob\n"), &out3, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3.String(), "P(q) = 0.360000000") {
		t.Errorf("staged updates leaked into the store:\n%s", out3.String())
	}
}
