// Command pdbd serves probabilistic-database queries over HTTP: the network
// front end of the serving stack (compiled plans + live incremental views).
//
// Usage:
//
//	pdbd -i instance.pdb [-addr :8080] [-workers N] [-cache N] [-q 'R(?x)']
//	     [-data-dir DIR] [-fsync always|interval|off] [-snapshot-every N]
//	     [-ingest-batch N] [-ingest-maxwait DUR]
//	     [-log-format text|json] [-slow-query DUR] [-debug-addr :6060]
//
// The instance file uses pdbcli's format (see internal/pdbio): it must be
// tuple-independent — plain 'fact' lines, or one positive event per cfact —
// because the live store maintains per-tuple probabilities under /update.
//
// Endpoints (JSON bodies; see internal/server for the full shapes):
//
//	POST /query   {"query": "R(?x) & S(?x,?y)"}           live-view answer
//	POST /batch   {"query": ..., "assignments": [{...}]}  multi-lane sweep
//	POST /update  {"updates": [{"op":"set","id":0,"p":.5}]}
//	GET  /watch                                           SSE delta stream (?full=1: full state)
//	GET  /healthz, /statsz, /metrics
//
// -data-dir makes the server crash-safe: every acknowledged /update commit
// is written to a write-ahead log in DIR before the response goes out, and
// periodic snapshots keep recovery fast. A fresh directory is seeded from
// -i (and a baseline snapshot written, so the instance file is not needed
// again); a directory holding state ignores -i and recovers exactly the
// pre-crash store — same commit sequence, same fact ids — re-registering
// the views the last snapshot recorded so the plan cache starts warm.
//
// Observability: /metrics serves the Prometheus exposition of the whole
// stack (request latencies, cache events, commit and fsync histograms);
// -slow-query logs any request over the threshold with its per-stage span
// breakdown; -debug-addr opens a second listener carrying net/http/pprof
// and a /metrics mirror, so profilers and scrapers never contend with (or
// get drained with) serving traffic. All logging is structured (log/slog);
// -log-format json emits one JSON object per line for log shippers.
//
// -q pre-registers a query shape so the first client request is already a
// cache hit. On SIGINT/SIGTERM the server drains: new requests get 503,
// watch streams close, in-flight requests finish, and the log is sealed
// under a final clean snapshot (planned restarts replay nothing).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/pdb"
	"repro/internal/pdbio"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	inPath := flag.String("i", "", "instance file (default: stdin; ignored when -data-dir holds state)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size for parallel evaluations (0: GOMAXPROCS)")
	cacheSize := flag.Int("cache", 64, "max cached query shapes (live views)")
	preQ := flag.String("q", "", "pre-register this conjunctive query, e.g. 'R(?x) & S(?x,?y)'")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain timeout on shutdown")
	dataDir := flag.String("data-dir", "", "durability directory (WAL + snapshots); empty: in-memory only")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always | interval | off")
	fsyncEvery := flag.Duration("fsync-interval", 50*time.Millisecond, "background fsync period under -fsync interval")
	walBatch := flag.Int("wal-batch", 64, "group-commit batch size")
	walMaxWait := flag.Duration("wal-maxwait", 0, "extra group-commit accumulation window (0: the in-flight flush itself is the window)")
	ingestBatch := flag.Int("ingest-batch", 256, "max updates per merged /update commit; concurrent requests coalesce up to this (0: every request commits alone)")
	ingestMaxWait := flag.Duration("ingest-maxwait", 0, "extra /update coalescing window (0: the in-flight commit itself is the window)")
	snapEvery := flag.Uint64("snapshot-every", 4096, "snapshot + truncate the log every N commits (0: only on shutdown)")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	slowQuery := flag.Duration("slow-query", 0, "log requests slower than this with their span breakdown (0: off)")
	debugAddr := flag.String("debug-addr", "", "debug listener (net/http/pprof + /metrics mirror); empty: off")
	flag.Parse()

	logger := newLogger(*logFormat)
	slog.SetDefault(logger)

	reg := obs.NewRegistry()
	cfg := server.Config{
		Workers:       *workers,
		CacheSize:     *cacheSize,
		IngestBatch:   *ingestBatch,
		IngestMaxWait: *ingestMaxWait,
		Options:       core.Options{},
		Metrics:       reg,
		SlowQuery:     *slowQuery,
		Logger:        logger,
	}
	var s *server.Server
	if *dataDir == "" {
		tid, err := loadInstance(*inPath)
		if err != nil {
			fatal(logger, err)
		}
		s, err = server.New(tid, cfg)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("loaded instance (no durability; set -data-dir)", "facts", tid.NumFacts())
	} else {
		var err error
		s, err = openDurable(*dataDir, *inPath, cfg, wal.Options{
			BatchSize:     *walBatch,
			MaxWait:       *walMaxWait,
			Sync:          parseFsync(logger, *fsync),
			SyncEvery:     *fsyncEvery,
			SnapshotEvery: *snapEvery,
			Metrics:       wal.NewMetrics(reg),
		}, logger)
		if err != nil {
			fatal(logger, err)
		}
	}
	if *preQ != "" {
		if err := s.Preregister(*preQ); err != nil {
			fatal(logger, fmt.Errorf("-q: %w", err))
		}
	}

	if *debugAddr != "" {
		go serveDebug(logger, *debugAddr, reg)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "slow_query", *slowQuery)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(logger, err)
	case <-sig:
	}
	logger.Info("draining")
	if !s.Shutdown(*drain) {
		logger.Warn("drain incomplete (timeout or WAL close error), closing anyway")
	}
	httpSrv.Close()
}

// newLogger builds the process logger in the requested format (both write to
// stderr, keeping stdout free for shell pipelines).
func newLogger(format string) *slog.Logger {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	fmt.Fprintf(os.Stderr, "pdbd: -log-format %q: want text or json\n", format)
	os.Exit(1)
	panic("unreachable")
}

// serveDebug runs the side listener: pprof's handlers on an explicit mux
// (never the DefaultServeMux, which would leak them onto the serving
// address) plus a /metrics mirror that stays reachable even when the main
// listener is saturated.
func serveDebug(logger *slog.Logger, addr string, reg *obs.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", reg.Handler())
	logger.Info("debug listener (pprof + metrics)", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug listener failed", "err", err)
	}
}

// loadInstance parses the -i file (or stdin) into a TID instance.
func loadInstance(inPath string) (*pdb.TID, error) {
	r := os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	c, p, err := pdbio.ParseInstance(bufio.NewScanner(r))
	if err != nil {
		return nil, err
	}
	return pdbio.TIDFromInstance(c, p)
}

// openDurable opens (or recovers) the WAL in dir and returns a durable
// server over it. A directory with no recoverable state is seeded from the
// instance file and immediately baseline-snapshotted; a directory holding
// state is recovered exactly, ignoring -i.
func openDurable(dir, inPath string, cfg server.Config, opts wal.Options, logger *slog.Logger) (*server.Server, error) {
	b, err := wal.NewDirBackend(dir)
	if err != nil {
		return nil, err
	}
	opts.Backend = b
	w, rec, err := wal.Open(opts)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", dir, err)
	}
	fresh := rec.SnapshotSeq == 0 && rec.Seq == 0 && rec.Records == 0
	if fresh {
		tid, err := loadInstance(inPath)
		if err != nil {
			return nil, err
		}
		st, err := incr.NewStore(tid)
		if err != nil {
			return nil, err
		}
		s := server.NewFromStore(st, cfg)
		s.AttachWAL(w)
		// Baseline snapshot: from here on the data dir alone carries the
		// instance; -i is never consulted again.
		if err := w.Snapshot(); err != nil {
			return nil, fmt.Errorf("baseline snapshot: %w", err)
		}
		logger.Info("seeded data dir", "dir", dir, "facts", tid.NumFacts(), "fsync", opts.Sync.String())
		return s, nil
	}
	if inPath != "" {
		logger.Info("data dir holds state; ignoring -i", "dir", dir, "i", inPath)
	}
	s := server.NewFromStore(rec.Store, cfg)
	s.AttachWAL(w)
	warm := 0
	for _, q := range rec.Views {
		if err := s.Preregister(q); err != nil {
			logger.Warn("warm view failed", "query", q, "err", err)
			continue
		}
		warm++
	}
	logger.Info("recovered data dir",
		"dir", dir, "seq", rec.Seq, "snapshot_seq", rec.SnapshotSeq,
		"records", rec.Records, "torn_tail", rec.TornTail,
		"warm_views", warm, "fsync", opts.Sync.String())
	return s, nil
}

func parseFsync(logger *slog.Logger, s string) wal.SyncPolicy {
	switch s {
	case "always":
		return wal.SyncAlways
	case "interval":
		return wal.SyncInterval
	case "off":
		return wal.SyncOff
	}
	fatal(logger, fmt.Errorf("-fsync %q: want always, interval or off", s))
	panic("unreachable")
}

func fatal(logger *slog.Logger, err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
