// Command pdbd serves probabilistic-database queries over HTTP: the network
// front end of the serving stack (compiled plans + live incremental views).
//
// Usage:
//
//	pdbd -i instance.pdb [-addr :8080] [-workers N] [-cache N] [-q 'R(?x)']
//	     [-data-dir DIR] [-fsync always|interval|off] [-snapshot-every N]
//
// The instance file uses pdbcli's format (see internal/pdbio): it must be
// tuple-independent — plain 'fact' lines, or one positive event per cfact —
// because the live store maintains per-tuple probabilities under /update.
//
// Endpoints (JSON bodies; see internal/server for the full shapes):
//
//	POST /query   {"query": "R(?x) & S(?x,?y)"}           live-view answer
//	POST /batch   {"query": ..., "assignments": [{...}]}  multi-lane sweep
//	POST /update  {"updates": [{"op":"set","id":0,"p":.5}]}
//	GET  /watch                                           SSE commit stream
//	GET  /healthz, /statsz
//
// -data-dir makes the server crash-safe: every acknowledged /update commit
// is written to a write-ahead log in DIR before the response goes out, and
// periodic snapshots keep recovery fast. A fresh directory is seeded from
// -i (and a baseline snapshot written, so the instance file is not needed
// again); a directory holding state ignores -i and recovers exactly the
// pre-crash store — same commit sequence, same fact ids — re-registering
// the views the last snapshot recorded so the plan cache starts warm.
//
// -q pre-registers a query shape so the first client request is already a
// cache hit. On SIGINT/SIGTERM the server drains: new requests get 503,
// watch streams close, in-flight requests finish, and the log is sealed
// under a final clean snapshot (planned restarts replay nothing).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/pdb"
	"repro/internal/pdbio"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	inPath := flag.String("i", "", "instance file (default: stdin; ignored when -data-dir holds state)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size for parallel evaluations (0: GOMAXPROCS)")
	cacheSize := flag.Int("cache", 64, "max cached query shapes (live views)")
	preQ := flag.String("q", "", "pre-register this conjunctive query, e.g. 'R(?x) & S(?x,?y)'")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain timeout on shutdown")
	dataDir := flag.String("data-dir", "", "durability directory (WAL + snapshots); empty: in-memory only")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always | interval | off")
	fsyncEvery := flag.Duration("fsync-interval", 50*time.Millisecond, "background fsync period under -fsync interval")
	walBatch := flag.Int("wal-batch", 64, "group-commit batch size")
	walMaxWait := flag.Duration("wal-maxwait", 0, "extra group-commit accumulation window (0: the in-flight flush itself is the window)")
	snapEvery := flag.Uint64("snapshot-every", 4096, "snapshot + truncate the log every N commits (0: only on shutdown)")
	flag.Parse()

	cfg := server.Config{Workers: *workers, CacheSize: *cacheSize, Options: core.Options{}}
	var s *server.Server
	if *dataDir == "" {
		tid, err := loadInstance(*inPath)
		if err != nil {
			fatal(err)
		}
		s, err = server.New(tid, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdbd: loaded %d facts (no durability; set -data-dir)\n", tid.NumFacts())
	} else {
		var err error
		s, err = openDurable(*dataDir, *inPath, cfg, wal.Options{
			BatchSize:     *walBatch,
			MaxWait:       *walMaxWait,
			Sync:          parseFsync(*fsync),
			SyncEvery:     *fsyncEvery,
			SnapshotEvery: *snapEvery,
		}, os.Stderr)
		if err != nil {
			fatal(err)
		}
	}
	if *preQ != "" {
		if err := s.Preregister(*preQ); err != nil {
			fatal(fmt.Errorf("-q: %w", err))
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "pdbd: serving on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case <-sig:
	}
	fmt.Fprintln(os.Stderr, "pdbd: draining")
	if !s.Shutdown(*drain) {
		fmt.Fprintln(os.Stderr, "pdbd: drain incomplete (timeout or WAL close error), closing anyway")
	}
	httpSrv.Close()
}

// loadInstance parses the -i file (or stdin) into a TID instance.
func loadInstance(inPath string) (*pdb.TID, error) {
	r := os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	c, p, err := pdbio.ParseInstance(bufio.NewScanner(r))
	if err != nil {
		return nil, err
	}
	return pdbio.TIDFromInstance(c, p)
}

// openDurable opens (or recovers) the WAL in dir and returns a durable
// server over it. A directory with no recoverable state is seeded from the
// instance file and immediately baseline-snapshotted; a directory holding
// state is recovered exactly, ignoring -i.
func openDurable(dir, inPath string, cfg server.Config, opts wal.Options, logw io.Writer) (*server.Server, error) {
	b, err := wal.NewDirBackend(dir)
	if err != nil {
		return nil, err
	}
	opts.Backend = b
	w, rec, err := wal.Open(opts)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", dir, err)
	}
	fresh := rec.SnapshotSeq == 0 && rec.Seq == 0 && rec.Records == 0
	if fresh {
		tid, err := loadInstance(inPath)
		if err != nil {
			return nil, err
		}
		st, err := incr.NewStore(tid)
		if err != nil {
			return nil, err
		}
		s := server.NewFromStore(st, cfg)
		s.AttachWAL(w)
		// Baseline snapshot: from here on the data dir alone carries the
		// instance; -i is never consulted again.
		if err := w.Snapshot(); err != nil {
			return nil, fmt.Errorf("baseline snapshot: %w", err)
		}
		fmt.Fprintf(logw, "pdbd: seeded %s with %d facts (fsync=%s)\n", dir, tid.NumFacts(), opts.Sync)
		return s, nil
	}
	if inPath != "" {
		fmt.Fprintf(logw, "pdbd: %s holds state; ignoring -i %s\n", dir, inPath)
	}
	s := server.NewFromStore(rec.Store, cfg)
	s.AttachWAL(w)
	warm := 0
	for _, q := range rec.Views {
		if err := s.Preregister(q); err != nil {
			fmt.Fprintf(logw, "pdbd: warm view %q: %v\n", q, err)
			continue
		}
		warm++
	}
	torn := ""
	if rec.TornTail {
		torn = ", torn tail discarded"
	}
	fmt.Fprintf(logw, "pdbd: recovered %s at seq %d (snapshot %d + %d records%s), %d warm views (fsync=%s)\n",
		dir, rec.Seq, rec.SnapshotSeq, rec.Records, torn, warm, opts.Sync)
	return s, nil
}

func parseFsync(s string) wal.SyncPolicy {
	switch s {
	case "always":
		return wal.SyncAlways
	case "interval":
		return wal.SyncInterval
	case "off":
		return wal.SyncOff
	}
	fatal(fmt.Errorf("-fsync %q: want always, interval or off", s))
	panic("unreachable")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdbd:", err)
	os.Exit(1)
}
