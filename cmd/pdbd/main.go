// Command pdbd serves probabilistic-database queries over HTTP: the network
// front end of the serving stack (compiled plans + live incremental views).
//
// Usage:
//
//	pdbd -i instance.pdb [-addr :8080] [-workers N] [-cache N] [-q 'R(?x)']
//
// The instance file uses pdbcli's format (see internal/pdbio): it must be
// tuple-independent — plain 'fact' lines, or one positive event per cfact —
// because the live store maintains per-tuple probabilities under /update.
//
// Endpoints (JSON bodies; see internal/server for the full shapes):
//
//	POST /query   {"query": "R(?x) & S(?x,?y)"}           live-view answer
//	POST /batch   {"query": ..., "assignments": [{...}]}  multi-lane sweep
//	POST /update  {"updates": [{"op":"set","id":0,"p":.5}]}
//	GET  /watch                                           SSE commit stream
//	GET  /healthz, /statsz
//
// -q pre-registers a query shape so the first client request is already a
// cache hit. On SIGINT/SIGTERM the server drains: new requests get 503,
// watch streams close, in-flight requests finish.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/pdbio"
	"repro/internal/server"
)

func main() {
	inPath := flag.String("i", "", "instance file (default: stdin)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size for parallel evaluations (0: GOMAXPROCS)")
	cacheSize := flag.Int("cache", 64, "max cached query shapes (live views)")
	preQ := flag.String("q", "", "pre-register this conjunctive query, e.g. 'R(?x) & S(?x,?y)'")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain timeout on shutdown")
	flag.Parse()

	r := os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	c, p, err := pdbio.ParseInstance(bufio.NewScanner(r))
	if err != nil {
		fatal(err)
	}
	tid, err := pdbio.TIDFromInstance(c, p)
	if err != nil {
		fatal(err)
	}
	s, err := server.New(tid, server.Config{Workers: *workers, CacheSize: *cacheSize, Options: core.Options{}})
	if err != nil {
		fatal(err)
	}
	if *preQ != "" {
		if err := s.Preregister(*preQ); err != nil {
			fatal(fmt.Errorf("-q: %w", err))
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "pdbd: serving %d facts on %s\n", tid.NumFacts(), *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case <-sig:
	}
	fmt.Fprintln(os.Stderr, "pdbd: draining")
	if !s.Shutdown(*drain) {
		fmt.Fprintln(os.Stderr, "pdbd: drain timeout, closing anyway")
	}
	httpSrv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdbd:", err)
	os.Exit(1)
}
