package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/pdbio"
	"repro/internal/server"
)

// TestServeParsedInstance wires the pdbcli instance format through the
// server exactly as main does: parse, TID-convert, serve, query.
func TestServeParsedInstance(t *testing.T) {
	input := `
fact 0.9 R a
fact 0.5 S a b
fact 0.8 T b
event e1 0.7
cfact e1 T c
`
	c, p, err := pdbio.ParseInstance(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	tid, err := pdbio.TIDFromInstance(c, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(tid, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Preregister("R(?x) & S(?x,?y) & T(?y)"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, _ := json.Marshal(map[string]string{"query": "T(?v) & R(?u) & S(?u,?v)"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr struct {
		Probability float64 `json:"probability"`
		Cached      bool    `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Cached {
		t.Error("preregistered shape missed the cache")
	}
	if got, want := qr.Probability, 0.9*0.5*0.8; math.Abs(got-want) > 1e-12 {
		// T(c) is disconnected from the a-b chain and cannot complete the
		// join, so the answer is the chain's alone.
		t.Fatalf("P(q) = %v, want %v", got, want)
	}

	// A correlated instance is rejected at the door, mirroring pdbcli.
	c2, p2, err := pdbio.ParseInstance(bufio.NewScanner(strings.NewReader("event e 0.5\ncfact e R a\ncfact e R b\n")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pdbio.TIDFromInstance(c2, p2); err == nil {
		t.Error("correlated instance accepted")
	}
}
