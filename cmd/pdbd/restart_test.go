package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

// TestRestartSmoke exercises pdbd's whole durability path over a real
// on-disk data dir: seed a fresh directory from an instance file, commit
// updates over HTTP, shut down gracefully, reopen the directory without the
// instance file, and check the restarted server carries the same sequence,
// state and warm views.
func TestRestartSmoke(t *testing.T) {
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.pdb")
	if err := os.WriteFile(inst, []byte("fact 0.9 R a\nfact 0.5 S a b\nfact 0.8 T b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(dir, "data")
	opts := wal.Options{BatchSize: 8, MaxWait: 0, Sync: wal.SyncAlways}
	var logs strings.Builder
	logger := slog.New(slog.NewTextHandler(&logs, nil))

	// Generation 1: seed from the instance file.
	s1, err := openDurable(dataDir, inst, server.Config{}, opts, logger)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Preregister("R(?x) & S(?x,?y) & T(?y)"); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	var up struct {
		Seq uint64 `json:"seq"`
	}
	post(t, ts1.URL+"/update", `{"updates":[{"op":"set","id":0,"p":0.4},{"op":"insert","rel":"T","args":["c"],"p":0.3}]}`, &up)
	var q1 struct {
		Probability float64 `json:"probability"`
		Seq         uint64  `json:"seq"`
	}
	post(t, ts1.URL+"/query", `{"query":"R(?x) & S(?x,?y) & T(?y)"}`, &q1)
	if q1.Seq != up.Seq {
		t.Fatalf("query at seq %d, update committed %d", q1.Seq, up.Seq)
	}
	if !s1.Shutdown(5 * time.Second) {
		t.Fatal("gen1 shutdown failed")
	}
	ts1.Close()

	// Generation 2: the data dir alone (no -i) restores everything.
	logs.Reset()
	s2, err := openDurable(dataDir, "", server.Config{}, opts, logger)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logs.String(), "recovered") {
		t.Fatalf("gen2 did not recover: %q", logs.String())
	}
	if got := s2.Store().Seq(); got != up.Seq {
		t.Fatalf("gen2 starts at seq %d, want %d", got, up.Seq)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	var q2 struct {
		Probability float64 `json:"probability"`
		Cached      bool    `json:"cached"`
	}
	post(t, ts2.URL+"/query", `{"query":"T(?v) & R(?u) & S(?u,?v)"}`, &q2)
	if !q2.Cached {
		t.Error("warm restart did not pre-register the snapshot's views")
	}
	if d := math.Abs(q2.Probability - q1.Probability); d > 1e-12 {
		t.Fatalf("restarted answer %v, pre-restart %v (|Δ|=%.3g)", q2.Probability, q1.Probability, d)
	}
	if !s2.Shutdown(5 * time.Second) {
		t.Fatal("gen2 shutdown failed")
	}
}

func post(t *testing.T, url, body string, into any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, into); err != nil {
		t.Fatalf("%s: %v in %s", url, err, data)
	}
}
