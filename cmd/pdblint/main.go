// Command pdblint is the multichecker for the internal/lint analyzer suite:
// the static half of the engine's invariant enforcement (the race detector
// and fuzz oracles are the dynamic half). It machine-checks the contracts
// the PR 3–9 stack documents in prose — no callbacks under the store lock,
// fixed-enum metric labels, fmt-free hot paths with live bounds hints,
// write-free frozen plans, slog-only internal logging.
//
// It runs two ways:
//
//	go vet -vettool=$(pwd)/bin/pdblint ./...    # the CI mode: full tree,
//	    test files included, package loading and caching by the go command
//	    (pdblint implements the vet unitchecker protocol: -V=full, -flags,
//	    and the JSON .cfg package description).
//
//	bin/pdblint ./...                           # standalone: self-drives
//	    `go list -deps -export -json` and checks non-test sources; handy
//	    for quick local runs of a single package.
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported
// (matching vet's convention).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

var jsonFlag bool

func run(args []string) int {
	fs := flag.NewFlagSet("pdblint", flag.ExitOnError)
	fs.Usage = usage
	printVersion := fs.String("V", "", "print version and exit (-V=full, for the go command's tool ID)")
	flagsJSON := fs.Bool("flags", false, "print the tool's flag schema as JSON (vet protocol)")
	fs.BoolVar(&jsonFlag, "json", false, "emit diagnostics as JSON")
	fs.Parse(args)

	if *printVersion != "" {
		return doVersion(*printVersion)
	}
	if *flagsJSON {
		// pdblint has no per-analyzer flags; report the set vet may probe.
		fmt.Println("[]")
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnitchecker(rest[0])
	}
	if len(rest) == 0 {
		usage()
		return 1
	}
	return runStandalone(rest)
}

func usage() {
	fmt.Fprintf(os.Stderr, `pdblint: static enforcement of the engine's concurrency, cardinality and hot-path contracts.

usage:
  go vet -vettool=$(command -v pdblint) ./...   # full tree including tests
  pdblint ./...                                 # standalone, non-test sources

analyzers:
`)
	for _, s := range lint.Suite() {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", s.Analyzer.Name, s.Analyzer.Doc)
	}
}

// doVersion implements -V=full: the go command derives the vet tool's cache
// ID from this line, so it must change when the binary changes (the content
// hash does) and keep the "name version" shape it parses.
func doVersion(mode string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	name := filepath.Base(exe)
	if mode != "full" {
		fmt.Println(name)
		return 0
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, h.Sum(nil))
	return 0
}

// --- the vet unitchecker protocol ---

// vetConfig is the JSON package description the go command hands a vettool
// (the unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdblint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pdblint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command expects the facts file regardless of findings.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("pdblint-no-facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pdblint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // facts-only run for a dependency; pdblint has no facts
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	diags, err := checkPackage(cfg.ImportPath, cfg.GoFiles, importer.ForCompiler(token.NewFileSet(), cfg.Compiler, lookup), cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "pdblint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	return report(cfg.ImportPath, diags)
}

// --- standalone driver (go list -export) ---

// listPkg is the subset of `go list -json` pdblint consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

func runStandalone(patterns []string) int {
	cmd := exec.Command("go", append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard", "--"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdblint: go list: %v\n", err)
		return 1
	}
	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "pdblint: parsing go list output: %v\n", err)
			return 1
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	status := 0
	for _, p := range targets {
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		if len(files) == 0 {
			continue
		}
		diags, err := checkPackage(p.ImportPath, files, importer.ForCompiler(token.NewFileSet(), "gc", lookup), "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdblint: %s: %v\n", p.ImportPath, err)
			status = 1
			continue
		}
		if s := report(p.ImportPath, diags); s > status {
			status = s
		}
	}
	return status
}

// --- shared checking and reporting ---

type diagJSON struct {
	Analyzer string `json:"analyzer"`
	Posn     string `json:"posn"`
	Message  string `json:"message"`
}

type diag struct {
	analyzer string
	posn     token.Position
	message  string
}

// checkPackage parses and type-checks one package's files and runs every
// suite analyzer whose scope matches.
func checkPackage(importPath string, files []string, imp types.Importer, goVersion string) ([]diag, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	if len(parsed) == 0 {
		return nil, nil
	}
	info := lint.NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	if goVersion != "" {
		conf.GoVersion = goVersion
	}
	pkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, err
	}

	normalized := lint.NormalizePkgPath(importPath)
	var out []diag
	for _, s := range lint.Suite() {
		if !s.Match(normalized) {
			continue
		}
		diags, err := lint.Run(s.Analyzer, fset, parsed, pkg, info)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			out = append(out, diag{analyzer: s.Analyzer.Name, posn: fset.Position(d.Pos), message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].posn, out[j].posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return out, nil
}

// report prints a package's diagnostics; returns 2 when any were found.
func report(importPath string, diags []diag) int {
	if len(diags) == 0 {
		return 0
	}
	if jsonFlag {
		byAnalyzer := map[string][]diagJSON{}
		for _, d := range diags {
			byAnalyzer[d.analyzer] = append(byAnalyzer[d.analyzer], diagJSON{
				Analyzer: d.analyzer, Posn: d.posn.String(), Message: d.message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(map[string]map[string][]diagJSON{importPath: byAnalyzer})
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.posn, d.message, d.analyzer)
	}
	return 2
}
