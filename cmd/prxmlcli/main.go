// Command prxmlcli evaluates tree-pattern queries on PrXML documents
// described in a small indented text format.
//
// Usage:
//
//	prxmlcli -i doc.prxml -p 'given_name[/Chelsea]'
//	prxmlcli -i doc.prxml -worlds        # list the possible worlds
//	prxmlcli -i doc.prxml -scopes        # report event scopes
//
// Document format: one node per line, nesting by two-space indentation.
//
//	tag LABEL
//	ind P1 P2 ...          # one probability per child, in order
//	mux P1 P2 ...
//	det
//	cie COND1 COND2 ...    # per-child conjunctions like e1&!e2
//	event NAME PROB        # global event declaration (top level only)
//
// Pattern syntax: LABEL, children in brackets: 'a[/b][//c]' means child b
// and descendant c; '*' is a wildcard label.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/logic"
	"repro/internal/prxml"
)

func main() {
	inPath := flag.String("i", "", "document file (default: stdin)")
	patternStr := flag.String("p", "", "tree pattern, e.g. 'a[/b][//c]'")
	worlds := flag.Bool("worlds", false, "enumerate the possible worlds")
	scopes := flag.Bool("scopes", false, "report event scope statistics")
	flag.Parse()

	r := os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	doc, err := ParseDocument(bufio.NewScanner(r))
	if err != nil {
		fatal(err)
	}
	if err := doc.Validate(); err != nil {
		fatal(err)
	}
	fmt.Printf("document: %d nodes, events %v\n", doc.Size(), doc.Events())

	if *scopes {
		fmt.Printf("max scope: %d\n", doc.MaxScope())
	}
	if *worlds {
		doc.EnumerateWorlds(func(w *prxml.XNode, p float64) {
			fmt.Printf("%.6f  %s\n", p, w)
		})
	}
	if *patternStr != "" {
		pat, err := ParsePattern(*patternStr)
		if err != nil {
			fatal(err)
		}
		p, err := doc.MatchProbability(pat)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("P(%s) = %.9f\n", pat, p)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prxmlcli:", err)
	os.Exit(1)
}

type docLine struct {
	indent int
	fields []string
}

// ParseDocument reads the indented document format.
func ParseDocument(sc *bufio.Scanner) (*prxml.Document, error) {
	var lines []docLine
	prob := logic.Prob{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		text := strings.TrimLeft(raw, " ")
		if strings.TrimSpace(text) == "" || strings.HasPrefix(text, "#") {
			continue
		}
		indent := len(raw) - len(text)
		if indent%2 != 0 {
			return nil, fmt.Errorf("line %d: indentation must be multiples of two spaces", lineNo)
		}
		fields := strings.Fields(text)
		if fields[0] == "event" {
			if indent != 0 || len(fields) != 3 {
				return nil, fmt.Errorf("line %d: event NAME PROB at top level", lineNo)
			}
			p, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			prob[logic.Event(fields[1])] = p
			continue
		}
		lines = append(lines, docLine{indent: indent / 2, fields: fields})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	node, next, err := parseNode(lines, 0, 0)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("multiple roots in document")
	}
	if node.Kind != prxml.Tag {
		return nil, fmt.Errorf("root must be a tag node")
	}
	return prxml.NewDocument(node, prob), nil
}

// parseNode parses the node at lines[i] (expected at the given depth) and
// its subtree, returning the node and the next unconsumed index.
func parseNode(lines []docLine, i, depth int) (*prxml.Node, int, error) {
	if i >= len(lines) || lines[i].indent != depth {
		return nil, i, fmt.Errorf("expected a node at depth %d", depth)
	}
	fields := lines[i].fields
	var children []*prxml.Node
	next := i + 1
	for next < len(lines) && lines[next].indent > depth {
		child, n, err := parseNode(lines, next, depth+1)
		if err != nil {
			return nil, n, err
		}
		children = append(children, child)
		next = n
	}
	switch fields[0] {
	case "tag":
		if len(fields) != 2 {
			return nil, next, fmt.Errorf("tag needs exactly one label")
		}
		return prxml.NewTag(fields[1], children...), next, nil
	case "det":
		return prxml.NewDet(children...), next, nil
	case "ind", "mux":
		probs := make([]float64, 0, len(fields)-1)
		for _, f := range fields[1:] {
			p, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, next, err
			}
			probs = append(probs, p)
		}
		if len(probs) != len(children) {
			return nil, next, fmt.Errorf("%s has %d probabilities for %d children", fields[0], len(probs), len(children))
		}
		if fields[0] == "ind" {
			return prxml.NewInd(probs, children...), next, nil
		}
		return prxml.NewMux(probs, children...), next, nil
	case "cie":
		conds := make([][]logic.Literal, 0, len(fields)-1)
		for _, f := range fields[1:] {
			cond, err := parseCond(f)
			if err != nil {
				return nil, next, err
			}
			conds = append(conds, cond)
		}
		if len(conds) != len(children) {
			return nil, next, fmt.Errorf("cie has %d conditions for %d children", len(conds), len(children))
		}
		return prxml.NewCie(conds, children...), next, nil
	}
	return nil, next, fmt.Errorf("unknown node kind %q", fields[0])
}

func parseCond(s string) ([]logic.Literal, error) {
	var out []logic.Literal
	for _, part := range strings.Split(s, "&") {
		part = strings.TrimSpace(part)
		neg := strings.HasPrefix(part, "!")
		if neg {
			part = part[1:]
		}
		if part == "" {
			return nil, fmt.Errorf("empty literal in condition %q", s)
		}
		out = append(out, logic.Literal{Event: logic.Event(part), Negated: neg})
	}
	return out, nil
}

// ParsePattern parses 'a[/b[//c]][//d]'.
func ParsePattern(s string) (*prxml.Pattern, error) {
	p := &pparser{input: s}
	pat, err := p.parse()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("trailing input %q in pattern", p.input[p.pos:])
	}
	return pat, nil
}

type pparser struct {
	input string
	pos   int
}

func (p *pparser) parse() (*prxml.Pattern, error) {
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] != '[' && p.input[p.pos] != ']' {
		p.pos++
	}
	label := strings.TrimSpace(p.input[start:p.pos])
	if label == "" {
		return nil, fmt.Errorf("empty label at position %d", start)
	}
	if label == "*" {
		label = ""
	}
	pat := prxml.NewPattern(label)
	for p.pos < len(p.input) && p.input[p.pos] == '[' {
		p.pos++
		descendant := false
		if strings.HasPrefix(p.input[p.pos:], "//") {
			descendant = true
			p.pos += 2
		} else if strings.HasPrefix(p.input[p.pos:], "/") {
			p.pos++
		} else {
			return nil, fmt.Errorf("edge must start with / or // at position %d", p.pos)
		}
		child, err := p.parse()
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.input) || p.input[p.pos] != ']' {
			return nil, fmt.Errorf("missing ']' at position %d", p.pos)
		}
		p.pos++
		if descendant {
			pat.WithDescendant(child)
		} else {
			pat.WithChild(child)
		}
	}
	return pat, nil
}
