package main

import (
	"bufio"
	"math"
	"strings"
	"testing"
)

const figure1Text = `
event eJane 0.9
tag Q298423
  ind 0.4
    tag occupation
      tag musician
  tag place_of_birth
    cie eJane
      tag Crescent
  tag surname
    cie eJane
      tag Manning
  tag given_name
    mux 0.4 0.6
      tag Bradley
      tag Chelsea
`

func TestParseDocumentFigure1(t *testing.T) {
	doc, err := ParseDocument(bufio.NewScanner(strings.NewReader(figure1Text)))
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if doc.Size() != 14 {
		t.Errorf("size = %d, want 14", doc.Size())
	}
	pat, err := ParsePattern("given_name[/Chelsea]")
	if err != nil {
		t.Fatal(err)
	}
	p, err := doc.MatchProbability(pat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.6) > 1e-12 {
		t.Errorf("P = %v, want 0.6", p)
	}
	// Correlated facts.
	pat2, err := ParsePattern("Q298423[/place_of_birth[/Crescent]][/surname[/Manning]]")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := doc.MatchProbability(pat2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2-0.9) > 1e-12 {
		t.Errorf("P(both) = %v, want 0.9", p2)
	}
}

func TestParsePattern(t *testing.T) {
	pat, err := ParsePattern("a[/b[//c]][//d]")
	if err != nil {
		t.Fatal(err)
	}
	if got := pat.String(); got != "a[/b[//c]][//d]" {
		t.Errorf("round trip = %q", got)
	}
	if pat.Edges[0].Descendant || !pat.Edges[1].Descendant {
		t.Error("edge kinds wrong")
	}
	wild, err := ParsePattern("*[/x]")
	if err != nil {
		t.Fatal(err)
	}
	if wild.Label != "" {
		t.Errorf("wildcard label = %q", wild.Label)
	}
	for _, bad := range []string{"", "a[b]", "a[/b", "[/a]", "a]"} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestParseDocumentErrors(t *testing.T) {
	cases := []string{
		"tag a\n   tag b",                       // odd indentation
		"ind 0.5\n  tag x",                      // root not a tag... ind root
		"tag a\ntag b",                          // two roots
		"tag a\n  ind 0.5 0.5\n    tag x",       // prob/child mismatch
		"tag a\n  cie e1\n    tag x\n    tag y", // cond/child mismatch
		"event x notanumber",
	}
	for _, bad := range cases {
		if _, err := ParseDocument(bufio.NewScanner(strings.NewReader(bad))); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestParseCondLiterals(t *testing.T) {
	lits, err := parseCond("e1&!e2")
	if err != nil {
		t.Fatal(err)
	}
	if len(lits) != 2 || lits[0].Negated || !lits[1].Negated {
		t.Errorf("lits = %v", lits)
	}
	if _, err := parseCond("e1&&e2"); err == nil {
		t.Error("expected error for empty literal")
	}
}
