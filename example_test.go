package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/porder"
	"repro/internal/prxml"
	"repro/internal/rel"
)

// Example_hardQuery evaluates the paper's #P-hard query exactly on a
// tree-shaped uncertain instance.
func Example_hardQuery() {
	tid := pdb.NewTID()
	tid.AddFact(0.9, "R", "a")
	tid.AddFact(0.5, "S", "a", "b")
	tid.AddFact(0.8, "T", "b")
	res, err := core.ProbabilityTID(tid, rel.HardQuery(), core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("P = %.3f\n", res.Probability)
	// Output: P = 0.360
}

// Example_figure1 queries the paper's Figure 1 PrXML document.
func Example_figure1() {
	doc := prxml.Figure1()
	p, err := doc.MatchProbability(prxml.NewPattern("given_name", prxml.NewPattern("Chelsea")))
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(given name = Chelsea) = %.1f\n", p)
	// Output: P(given name = Chelsea) = 0.6
}

// Example_table1 asks a certainty question on the paper's Table 1
// c-instance.
func Example_table1() {
	pods, stoc := logic.Var("pods"), logic.Var("stoc")
	c := pdb.NewCInstance()
	c.AddFact(pods, "Trip", "CDG", "MEL")
	c.AddFact(logic.And(pods, logic.Not(stoc)), "Trip", "MEL", "CDG")
	c.AddFact(logic.And(pods, stoc), "Trip", "MEL", "PDX")
	q := rel.NewCQ(rel.NewAtom("Trip", rel.C("MEL"), rel.V("x")))
	fmt.Println("possible:", c.PossibleEnumeration(q))
	fmt.Println("certain under pods:",
		c.QueryProbabilityEnumeration(q, logic.Prob{"pods": 1, "stoc": 0.5}) == 1)
	// Output:
	// possible: true
	// certain under pods: true
}

// Example_orderMerge merges two ordered logs and counts the interleavings.
func Example_orderMerge() {
	a := porder.Chain(porder.Tuple{"a1"}, porder.Tuple{"a2"})
	b := porder.Chain(porder.Tuple{"b1"}, porder.Tuple{"b2"})
	merged := porder.UnionParallel(a, b)
	n, err := merged.CountLinearExtensions()
	if err != nil {
		panic(err)
	}
	fmt.Println("interleavings:", n)
	// Output: interleavings: 6
}

// Example_reachability evaluates an MSO query (s-t connectivity) that no
// conjunctive query expresses.
func Example_reachability() {
	tid := pdb.NewTID()
	tid.AddFact(0.5, "E", "s", "m")
	tid.AddFact(0.5, "E", "m", "t")
	tid.AddFact(0.5, "E", "s", "t")
	res, err := core.ReachProbabilityTID(tid, "E", "s", "t", core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(s ~ t) = %.4f\n", res.Probability)
	// Output: P(s ~ t) = 0.6250
}
