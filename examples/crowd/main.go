// Command crowd demonstrates the Section 4 vision: iteratively conditioning
// uncertain data with crowd answers. A knowledge base extracted by three
// unreliable contributors is queried; the greedy value-of-information
// policy decides which contributor to verify next, a simulated oracle
// answers, and the posterior sharpens until the query is certain.
package main

import (
	"fmt"
	"log"

	"repro/internal/cond"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

func main() {
	// Facts contributed by users u1, u2, u3; a fact holds iff its
	// contributor is trustworthy (the eJane pattern of Figure 1).
	u1, u2, u3 := logic.Var("u1"), logic.Var("u2"), logic.Var("u3")
	c := pdb.NewCInstance()
	c.AddFact(u1, "BornIn", "manning", "crescent")
	c.AddFact(u1, "Surname", "manning", "Manning")
	c.AddFact(u2, "BornIn", "manning", "oklahoma")
	c.AddFact(u3, "CityIn", "crescent", "oklahomaState")
	c.AddFact(u3, "CityIn", "oklahoma", "oklahomaState")
	p := logic.Prob{"u1": 0.7, "u2": 0.4, "u3": 0.9}

	// Query: was Manning born in a city of Oklahoma State?
	q := rel.NewCQ(
		rel.NewAtom("BornIn", rel.C("manning"), rel.V("city")),
		rel.NewAtom("CityIn", rel.V("city"), rel.C("oklahomaState")),
	)
	cd := cond.NewConditioned(c, p)
	prior, err := cd.ProbabilityEnumeration(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\nprior P = %.4f\n\n", q, prior)

	// What should we ask first? Rank the candidate questions by expected
	// entropy reduction of the answer.
	ranked, err := cd.RankQuestions(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("question ranking (expected information gain, bits):")
	for _, qu := range ranked {
		fmt.Printf("  is %s trustworthy?  gain %.4f\n", qu.Event, qu.Gain)
	}

	// Hidden ground truth: u1 and u3 are reliable, u2 is a vandal.
	oracle := &cond.Oracle{Truth: logic.Valuation{"u1": true, "u2": false, "u3": true}}
	fmt.Println("\ngreedy resolution loop:")
	res, err := cd.ResolveGreedy(q, oracle, 3)
	if err != nil {
		log.Fatal(err)
	}
	cur := cd
	for _, e := range res.Questions {
		ans := oracle.Answer(e)
		cur = cur.ObserveEvent(e, ans)
		post, err := cur.ProbabilityEnumeration(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  asked %-3s -> answer %-5v -> P = %.4f\n", e, ans, post)
	}
	fmt.Printf("\nfinal posterior after %d question(s): %.4f\n", len(res.Questions), res.Posterior)

	// Contrast: asking questions at random typically needs more of them —
	// measured systematically in experiment E9 (cmd/benchtab).
}
