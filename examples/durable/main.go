// Command durable walks through crash recovery: a live store is made
// durable with a write-ahead log, commits are acknowledged only once on
// disk, the process "dies" without warning, and a second generation
// recovers the exact pre-crash state — same commit sequence, same weights,
// same query answer — from the data directory alone.
//
// Run it twice to see both paths: the first run seeds the directory, a
// rerun recovers whatever the previous run left behind.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/incr"
	"repro/internal/rel"
	"repro/internal/wal"
)

func main() {
	dir := "durable-data"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	b, err := wal.NewDirBackend(dir)
	if err != nil {
		log.Fatal(err)
	}

	// Open recovers whatever the directory holds: nothing on a fresh one,
	// the newest snapshot plus the log tail after a crash.
	w, rec, err := wal.Open(wal.Options{Backend: b, Sync: wal.SyncAlways})
	if err != nil {
		log.Fatal(err)
	}

	var st *incr.Store
	fresh := rec.SnapshotSeq == 0 && rec.Seq == 0 && rec.Records == 0
	if fresh {
		// Generation 1: seed the store from scratch and attach the WAL.
		// The baseline snapshot makes the directory self-contained.
		st, err = incr.NewStore(gen.RSTChain(8, 0.5))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fresh %s: seeded %d facts\n", dir, st.Len())
	} else {
		st = rec.Store
		torn := ""
		if rec.TornTail {
			torn = " (torn tail discarded)"
		}
		fmt.Printf("recovered %s: seq %d = snapshot %d + %d log records%s\n",
			dir, rec.Seq, rec.SnapshotSeq, rec.Records, torn)
		fmt.Printf("views recorded at snapshot: %v\n", rec.Views)
	}

	// The view is not persisted — it is recomputed from the recovered
	// facts, which is why recovery needs no plan state on disk.
	v, err := st.RegisterView(rel.HardQuery(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	w.Attach(st, func() []string { return []string{rel.HardQuery().String()} })
	if fresh {
		if err := w.Snapshot(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("P(R-S-T path) = %.12f at seq %d\n", v.Probability(), st.Seq())

	// Each commit below is on disk before SetProb/ApplyBatch returns:
	// kill -9 here and a rerun recovers every acknowledged commit.
	for i := 0; i < 5; i++ {
		id := int(st.Seq()) % st.Len()
		if err := st.SetProb(id, 0.1+0.8*float64(i)/5); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  commit %d durable: fact %d reweighted, P = %.12f\n",
			st.Seq(), id, v.Probability())
	}

	ws := w.Stats()
	fmt.Printf("wal: %d appends in %d flushes, %d fsyncs, %d log bytes\n",
		ws.Appends, ws.Flushes, ws.Syncs, ws.LogBytes)

	// Kill, not Close: simulate a crash. Everything acknowledged above is
	// already durable; a graceful Close would additionally seal the log
	// under a final snapshot so the next open replays nothing.
	w.Kill()
	fmt.Printf("crashed at seq %d — rerun to watch recovery replay the tail\n", st.Seq())
}
