// Command liveupdate walks through incremental maintenance: a travel-risk
// knowledge base served as a live materialized view that absorbs probability
// tweaks, inserts and deletes without ever re-preparing the query plan —
// until an update genuinely outgrows the decomposition, at which point the
// store pays one counted re-Prepare and carries on.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/pdb"
	"repro/internal/rel"
)

func main() {
	// An uncertain trip graph: Reachable(city), Leg(from, to), Open(city).
	// The query asks whether some reachable city has an open onward leg.
	tid := pdb.NewTID()
	tid.AddFact(0.9, "R", "mel")
	tid.AddFact(0.5, "S", "mel", "cdg")
	tid.AddFact(0.8, "T", "cdg")
	tid.AddFact(0.6, "S", "mel", "lhr")
	tid.AddFact(0.3, "T", "lhr")
	q := rel.HardQuery() // ∃xy R(x) S(x,y) T(y)

	// 1. Load the facts into a live store and register the query as a view:
	// one Prepare, one full DP pass, and from here on the data is alive.
	s, err := incr.NewStore(tid)
	if err != nil {
		log.Fatal(err)
	}
	v, err := s.RegisterView(q, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view registered: P(q) = %.6f\n", v.Probability())
	sh := v.Shape()
	fmt.Printf("decomposition: width %d, %d nice nodes, depth %d (depth bounds each update's cost)\n\n",
		sh.Width, sh.Nodes, sh.Depth)

	// 2. Watch every commit: subscribers see the refreshed probability.
	cancel := s.Subscribe(func(c incr.Commit) {
		if !c.AnyChanged() {
			fmt.Printf("   -> commit #%d: unchanged (%d rows recomputed, short-circuited)\n",
				c.Seq, c.RowsRecomputed)
			return
		}
		fmt.Printf("   -> commit #%d: P(q) = %.6f (%d rows recomputed, %d spines short-circuited)\n",
			c.Seq, c.Probabilities[0], c.RowsRecomputed, c.SpinesShortCircuited)
	})
	defer cancel()

	// 3. A probability tweak recomputes only the dirty root-path spine of
	// one event — O(depth) DP tables, not a re-Prepare.
	fmt.Println("SetProb: the mel-cdg leg firms up to 0.95")
	if err := s.SetProb(1, 0.95); err != nil {
		log.Fatal(err)
	}

	// 4. An insert whose arguments sit in an existing bag is absorbed in
	// place: a fresh event is spliced above the covering bag.
	fmt.Println("Insert: a return leg S(cdg, mel) appears (attach in place)")
	if _, err := s.Insert(rel.NewFact("S", "cdg", "mel"), 0.4); err != nil {
		log.Fatal(err)
	}

	// 5. A delete is a tombstone: the fact's weight drops to zero, which is
	// exactly the distribution without it.
	fmt.Println("Delete: the lhr terminal closes")
	lhr := s.IDOf(rel.NewFact("T", "lhr"))
	if err := s.Delete(lhr); err != nil {
		log.Fatal(err)
	}

	// 6. An insert whose constants are all brand new opens a fresh singleton
	// shard: the store is partitioned by connected component, so the new
	// city's component gets its own little plan and nothing else is touched.
	fmt.Println("Insert: a new city hnd enters (opens its own shard)")
	if _, err := s.Insert(rel.NewFact("T", "hnd"), 0.7); err != nil {
		log.Fatal(err)
	}
	// A leg connecting hnd to mel merges two components — the one shape the
	// shard layout cannot absorb in place — so the store pays one counted
	// re-shard and carries on.
	fmt.Println("Insert: a leg S(mel, hnd) links the components (one re-shard)")
	if _, err := s.Insert(rel.NewFact("S", "mel", "hnd"), 0.5); err != nil {
		log.Fatal(err)
	}

	// 7. Batches stage everything and commit once: overlapping spines are
	// recomputed a single time.
	fmt.Println("ApplyBatch: revise three legs in one commit")
	err = s.ApplyBatch([]incr.Update{
		{Op: incr.OpSet, ID: 1, P: 0.7},
		{Op: incr.OpSet, ID: 3, P: 0.9},
		{Op: incr.OpInsert, Fact: rel.NewFact("R", "cdg"), P: 0.8},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 8. The work ledger: how much was absorbed in place vs rebuilt.
	st := s.Stats()
	fmt.Printf("\nstats: %d commits, %d updates; %d inserts attached in place, %d shards opened, %d re-shards, %d shards now, %d tombstones, %d DP tables recomputed incrementally\n",
		st.Commits, st.Updates, st.Attached, st.NewShards, st.Rebuilds, st.Shards, st.Tombstones, st.NodesRecomputed)
	fmt.Printf("delta ledger: %d rows recomputed across those tables, %d spines short-circuited (recomputed but unchanged)\n",
		st.RowsRecomputed, st.SpinesShortCircuited)

	// 9. Ground truth: the incremental answer equals a full re-Prepare.
	want, err := s.Oracle(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle check: live %.9f vs re-Prepare %.9f\n", v.Probability(), want)
}
