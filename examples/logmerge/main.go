// Command logmerge demonstrates order uncertainty (Section 3): merging
// event logs from two machines that lack a shared clock, querying the merge
// with the positive relational algebra under bag semantics, and counting
// the possible interleavings — exponential in general, closed-form for the
// series-parallel structure that log merging produces.
package main

import (
	"fmt"
	"log"

	"repro/internal/porder"
)

func main() {
	// Two sequential logs (the paper's fetchmail / dmesg example).
	web := porder.Chain(
		porder.Tuple{"web", "start"},
		porder.Tuple{"web", "warn"},
		porder.Tuple{"web", "error"},
		porder.Tuple{"web", "stop"},
	)
	db := porder.Chain(
		porder.Tuple{"db", "start"},
		porder.Tuple{"db", "error"},
		porder.Tuple{"db", "stop"},
	)

	// The merge: parallel union (no cross-machine order is known).
	merged := porder.UnionParallel(web, db)
	count, err := merged.CountLinearExtensions()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged log: %d events, %s possible interleavings (C(7,4) = 35)\n", merged.N(), count)

	// The same merge as a series-parallel structure: counted in closed
	// form, scaling to logs far beyond the downset DP.
	sp := porder.Parallel(
		porder.SPChain(porder.Tuple{"web", "e"}, porder.Tuple{"web", "e"}, porder.Tuple{"web", "e"}, porder.Tuple{"web", "e"}),
		porder.SPChain(porder.Tuple{"db", "e"}, porder.Tuple{"db", "e"}, porder.Tuple{"db", "e"}),
	)
	fmt.Printf("series-parallel count: %s\n", sp.CountLinearExtensions())
	big := porder.Parallel(
		longLog("web", 500), longLog("db", 500), longLog("cache", 500),
	)
	fmt.Printf("three 500-event logs: %d digits of interleavings, still instant\n",
		len(big.CountLinearExtensions().String()))

	// Query: the errors, in their (uncertain) relative order.
	errs := porder.Select(merged, func(t porder.Tuple) bool { return t[1] == "error" })
	worlds, err := errs.PossibleWorlds()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nσ[event=error](merge): %d elements, %d possible orders:\n", errs.N(), len(worlds))
	for _, w := range worlds {
		fmt.Printf("  %v\n", w)
	}

	// Project to the machine column: duplicates are kept (bag semantics).
	machines := porder.Project(errs, porder.Columns(0))
	fmt.Printf("π[machine]: %d tuples (bag semantics keeps both errors)\n", machines.N())

	// Membership: is a claimed global order actually possible?
	claimed := []porder.Tuple{
		{"web", "start"}, {"db", "start"}, {"web", "warn"}, {"db", "error"},
		{"web", "error"}, {"web", "stop"}, {"db", "stop"},
	}
	ok, err := merged.IsPossibleWorld(claimed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclaimed interleaving possible: %v\n", ok)
	badClaim := []porder.Tuple{
		{"web", "error"}, {"web", "start"}, {"db", "start"}, {"db", "error"},
		{"web", "warn"}, {"web", "stop"}, {"db", "stop"},
	}
	ok, err = merged.IsPossibleWorld(badClaim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("error-before-start possible:  %v\n", ok)

	// Pairs of errors across machines: the product operators.
	lex := porder.ProductLex(web, db)
	direct := porder.ProductDirect(web, db)
	lexCount, _ := lex.CountLinearExtensions()
	dirCount, _ := direct.CountLinearExtensions()
	fmt.Printf("\nweb × db: %d pairs; lexicographic order has %s world(s), direct order %s\n",
		lex.N(), lexCount, dirCount)
}

func longLog(machine string, n int) *porder.SP {
	labels := make([]porder.Tuple, n)
	for i := range labels {
		labels[i] = porder.Tuple{machine, "e"}
	}
	return porder.SPChain(labels...)
}
