// Command quickstart shows the core workflow on the paper's running
// example: build a tuple-independent instance, ask the #P-hard query
// ∃xy R(x) S(x,y) T(y), and compute its probability three ways — the
// tractable tree-decomposition engine (Theorem 1), exhaustive possible-
// worlds enumeration, and Monte Carlo sampling — plus possibility,
// certainty, and the lineage circuit.
//
// Tip for parameter sweeps: freeze the prepared plan and use
// core.(*Plan).ProbabilityBatch — on amd64, building with GOAMD64=v3
// enables FMA/AVX code in its lane kernels (internal/core/kernel).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
	"repro/internal/sampling"
)

func main() {
	// An uncertain instance: R(a) and T(b) are fairly sure, the S link and
	// an alternative path through c are not.
	tid := pdb.NewTID()
	tid.AddFact(0.9, "R", "a")
	tid.AddFact(0.5, "S", "a", "b")
	tid.AddFact(0.8, "T", "b")
	tid.AddFact(0.6, "S", "a", "c")
	tid.AddFact(0.3, "T", "c")

	q := rel.HardQuery()
	fmt.Printf("instance (%d uncertain facts, treewidth %d):\n%s\n\n", tid.NumFacts(), tid.Treewidth(), tid.Inst)
	fmt.Printf("query: %s\n\n", q)

	// 1. Exact probability by the structural engine (linear data
	// complexity on bounded treewidth).
	res, err := core.ProbabilityTID(tid, q, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine probability:      %.6f (joint width %d, %d nice nodes)\n",
		res.Probability, res.Width, res.NiceNodes)

	// 2. Exhaustive enumeration over 2^5 worlds (the baseline the engine
	// replaces; exponential in general).
	fmt.Printf("enumeration probability: %.6f\n", tid.QueryProbabilityEnumeration(q))

	// 3. Monte Carlo sampling (the approximation the paper wants to avoid
	// needing).
	est := sampling.QueryTID(tid, q, 100000, 0.99, rand.New(rand.NewSource(1)))
	fmt.Printf("sampled probability:     %s\n\n", est)

	// Possibility and certainty via the monotone lineage fast path.
	possible, err := core.PossibleTID(tid, q)
	if err != nil {
		log.Fatal(err)
	}
	certain, err := core.CertainTID(tid, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("possible: %v   certain: %v\n\n", possible, certain)

	// The lineage as a deterministic, decomposable circuit: probability is
	// recomputable in one linear pass for any fact probabilities.
	c, p := tid.ToCInstance()
	cq := core.NewCQQuery(q, c.Inst, c.Inst.IndexDomain())
	lin, err := core.EvaluatePC(c, p, cq, core.Options{EmitLineage: true})
	if err != nil {
		log.Fatal(err)
	}
	stats := lin.Lineage.Stat()
	fmt.Printf("lineage circuit: %d gates (%d and, %d or, %d var)\n", stats.Gates, stats.Ands, stats.Ors, stats.Vars)
	fmt.Printf("d-DNNF probability pass: %.6f\n\n", lin.Lineage.DDNNFProbability(lin.Root, p))

	// The Prepare/Evaluate split: compile the plan once (decomposition,
	// fact homing, automaton tables), then answer repeated probability
	// requests — here a what-if sweep over the S(a,b) link's reliability —
	// with only the cheap numeric pass. The sweep runs as ONE multi-lane
	// batched evaluation: the row dynamic program executes once and carries
	// a weight lane per sweep value (see also core.Serve for fanning
	// independent requests over a worker pool against the same frozen plan).
	plan, probs, err := core.PrepareTID(tid, q, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sweep := []float64{0.1, 0.5, 0.9}
	lanes := make([]logic.Prob, len(sweep))
	for i, ps := range sweep {
		m := logic.Prob{}
		for e, pr := range probs {
			m[e] = pr
		}
		m["f1"] = ps // fact 1 is S(a,b); its event is f1
		lanes[i] = m
	}
	fmt.Println("prepared plan, sweeping P(S(a,b)) in one batched evaluation:")
	swept, err := plan.ProbabilityBatch(lanes)
	if err != nil {
		log.Fatal(err)
	}
	for i, ps := range sweep {
		fmt.Printf("  P(S(a,b))=%.1f  ->  P(q)=%.6f\n", ps, swept[i])
	}
}
