// Example service: the full pdbd scenario in one process — a query service
// over a live probabilistic database, exercised by three "clients":
//
//  1. two query clients asking the same conjunctive query under different
//     spellings (one Prepare, the second answer is a plan-cache hit),
//  2. a watch client streaming every commit's refreshed probability,
//  3. an update client committing probability changes and inserts,
//
// then the observability surfaces over the same traffic: a Prometheus
// scrape of /metrics and a slow-query log record with its per-stage span
// breakdown (the threshold is set to 1ns here so every request qualifies).
//
// Run with: go run ./examples/service
//
// On amd64, building with GOAMD64=v3 lets the compiler emit FMA/AVX forms
// of the lane kernels behind /batch sweeps (internal/core/kernel):
//
//	GOAMD64=v3 go run ./examples/service
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/pdb"
	"repro/internal/server"
)

func main() {
	// The running example: R(a) S(a,b) T(b), tuple-independent.
	tid := pdb.NewTID()
	tid.AddFact(0.9, "R", "a")
	tid.AddFact(0.5, "S", "a", "b")
	tid.AddFact(0.8, "T", "b")

	// The slow-query log goes to a buffer here so the walkthrough can show
	// one record at the end; pdbd writes the same records to stderr
	// (-log-format text|json, -slow-query DUR).
	var slowLog bytes.Buffer
	s, err := server.New(tid, server.Config{
		Workers:   4,
		SlowQuery: time.Nanosecond, // everything is "slow": demo the record
		Logger:    slog.New(slog.NewJSONHandler(&slowLog, nil)),
	})
	if err != nil {
		log.Fatal(err)
	}
	// In production: http.ListenAndServe(":8080", s). The walkthrough uses
	// an in-process listener so it runs anywhere.
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func(path string, body map[string]any) map[string]any {
		data, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return out
	}

	// Client 1 and 2: the same query shape, spelled differently. The
	// normalized fingerprint routes both to one compiled live view.
	q1 := post("/query", map[string]any{"query": "R(?x) & S(?x,?y) & T(?y)"})
	q2 := post("/query", map[string]any{"query": "T(?b) & S(?a,?b) & R(?a)"})
	fmt.Printf("client 1: P(q) = %.3f (cached: %v)\n", q1["probability"], q1["cached"])
	fmt.Printf("client 2: P(q) = %.3f (cached: %v)  <- same plan, different spelling\n",
		q2["probability"], q2["cached"])

	// Client 3: a watch stream. Events arrive in commit order.
	watchResp, err := http.Get(ts.URL + "/watch")
	if err != nil {
		log.Fatal(err)
	}
	defer watchResp.Body.Close()
	events := bufio.NewScanner(watchResp.Body)
	nextEvent := func() map[string]any {
		for events.Scan() {
			line := strings.TrimSpace(events.Text())
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var ev map[string]any
				json.Unmarshal([]byte(data), &ev)
				return ev
			}
		}
		log.Fatal("watch stream ended")
		return nil
	}
	nextEvent() // the initial snapshot event

	// Client 4: updates. Each commit pushes a refreshed probability to the
	// watch stream; the sweep below raises P(S(a,b)) step by step.
	for _, p := range []float64{0.6, 0.8, 1.0} {
		post("/update", map[string]any{
			"updates": []map[string]any{{"op": "set", "id": 1, "p": p}},
		})
		ev := nextEvent()
		for _, prob := range ev["probabilities"].(map[string]any) {
			fmt.Printf("watch: commit %v -> P(q) = %.3f  (P(S) raised to %.1f)\n", ev["seq"], prob, p)
		}
	}

	// A batched sensitivity sweep over P(R(a)) in one request: 5 lanes, one
	// multi-lane DP pass on a frozen snapshot plan.
	lanes := []map[string]float64{{"0": 0.1}, {"0": 0.3}, {"0": 0.5}, {"0": 0.7}, {"0": 0.9}}
	br := post("/batch", map[string]any{"query": "R(?x) & S(?x,?y) & T(?y)", "assignments": lanes})
	fmt.Print("batch sweep over P(R): ")
	for _, p := range br["probabilities"].([]any) {
		fmt.Printf("%.3f ", p)
	}
	fmt.Println()

	var stats server.Statsz
	resp, _ := http.Get(ts.URL + "/statsz")
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	fmt.Printf("statsz: %d queries, %d prepares, %d cache hits, seq %d\n",
		stats.Queries, stats.Prepares, stats.CacheHits, stats.Seq)
	if lat, ok := stats.Latency["query"]; ok {
		fmt.Printf("statsz: /query latency p50 %.1fus, p99 %.1fus over %d requests\n",
			lat.P50us, lat.P99us, lat.Count)
	}

	// The Prometheus surface: the same histograms and counters, scrapable.
	// (pdbd also mirrors this on -debug-addr next to net/http/pprof.)
	mresp, _ := http.Get(ts.URL + "/metrics")
	exposition, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	fmt.Println("\nselected /metrics series:")
	for _, line := range strings.Split(string(exposition), "\n") {
		if strings.HasPrefix(line, "pdbd_http_requests_total") ||
			strings.HasPrefix(line, `pdbd_plan_cache_events_total{event="hit"}`) ||
			strings.HasPrefix(line, "incr_commits_total") ||
			strings.HasPrefix(line, "pdbd_batch_lanes_sum") {
			fmt.Println("  " + line)
		}
	}

	// One slow-query record: endpoint, total, and the stage breakdown that
	// sums to the end-to-end latency (parse → plan → eval → write).
	fmt.Println("\nfirst slow-query log record:")
	if line, _, ok := strings.Cut(slowLog.String(), "\n"); ok {
		fmt.Println("  " + line)
	}
}
