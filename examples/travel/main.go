// Command travel reproduces Table 1 of the paper: the c-instance of flight
// bookings conditioned on which conferences (PODS in Melbourne, STOC in
// Portland) the researcher will attend. It shows the possible worlds,
// possibility/certainty of queries, probabilities once the events get
// priors, and conditioning when news arrives (Section 4).
package main

import (
	"fmt"
	"log"

	"repro/internal/cond"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

func main() {
	pods := logic.Var("pods")
	stoc := logic.Var("stoc")
	c := pdb.NewCInstance()
	c.AddFact(pods, "Trip", "CDG", "MEL")
	c.AddFact(logic.And(pods, logic.Not(stoc)), "Trip", "MEL", "CDG")
	c.AddFact(logic.And(pods, stoc), "Trip", "MEL", "PDX")
	c.AddFact(logic.And(logic.Not(pods), stoc), "Trip", "CDG", "PDX")
	c.AddFact(stoc, "Trip", "PDX", "CDG")

	fmt.Println("Table 1 c-instance:")
	for i := 0; i < c.NumFacts(); i++ {
		fmt.Printf("  %-22s %s\n", c.Inst.Fact(i), logic.String(c.Ann[i]))
	}

	fmt.Println("\npossible worlds (one per event valuation):")
	c.EnumerateWorlds(func(v logic.Valuation, w *rel.Instance) {
		fmt.Printf("  %s -> %d trips\n", v, w.NumFacts())
	})

	leaveCDG := rel.NewCQ(rel.NewAtom("Trip", rel.C("CDG"), rel.V("x")))
	returnHome := rel.NewCQ(rel.NewAtom("Trip", rel.V("x"), rel.C("CDG")))
	fmt.Printf("\nquery %-38s possible=%v certain=%v\n", leaveCDG,
		c.PossibleEnumeration(leaveCDG), c.CertainEnumeration(leaveCDG))
	fmt.Printf("query %-38s possible=%v certain=%v\n", returnHome,
		c.PossibleEnumeration(returnHome), c.CertainEnumeration(returnHome))

	// Priors: PODS acceptance is likely, STOC less so.
	p := logic.Prob{"pods": 0.8, "stoc": 0.3}
	fmt.Printf("\nwith P(pods)=%.1f, P(stoc)=%.1f:\n", p["pods"], p["stoc"])
	fmt.Printf("  P(some trip leaves CDG)  = %.4f\n", c.QueryProbabilityEnumeration(leaveCDG, p))
	fmt.Printf("  P(some trip returns CDG) = %.4f\n", c.QueryProbabilityEnumeration(returnHome, p))

	// News arrives: the PODS paper is accepted. Condition on the event.
	c2, p2 := cond.ConditionOnEvent(c, p, "pods", true)
	fmt.Println("\nafter conditioning on pods = true:")
	for i := 0; i < c2.NumFacts(); i++ {
		fmt.Printf("  %-22s %s\n", c2.Inst.Fact(i), logic.String(c2.Ann[i]))
	}
	fmt.Printf("  P(some trip returns CDG) = %.4f\n", c2.QueryProbabilityEnumeration(returnHome, p2))

	// Alternatively we observe a FACT: the MEL->PDX leg appears in the
	// booking system. That is harder to express (the paper's point) and is
	// handled intensionally via a constraint.
	cd := cond.NewConditioned(c, p)
	cd2, err := cd.ObserveFact(rel.NewFact("Trip", "MEL", "PDX"), true)
	if err != nil {
		log.Fatal(err)
	}
	post, err := cd2.ProbabilityEnumeration(rel.NewCQ(rel.NewAtom("Trip", rel.C("PDX"), rel.C("CDG"))))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobserved Trip(MEL,PDX): P(Trip(PDX,CDG) | obs) = %.4f (was %.4f)\n",
		post, c.QueryProbabilityEnumeration(rel.NewCQ(rel.NewAtom("Trip", rel.C("PDX"), rel.C("CDG"))), p))
}
