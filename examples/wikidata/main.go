// Command wikidata reproduces Figure 1 of the paper: the PrXML document for
// the Wikidata entry about Chelsea Manning, with local uncertainty (an ind
// node for the occupation, a mux node for the given name) and global
// uncertainty (the trust event eJane correlating the place-of-birth and
// surname facts). It evaluates tree-pattern queries exactly, shows the
// event scopes, and cross-checks through the relational (pcc) encoding.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/prxml"
	"repro/internal/rel"
)

func main() {
	doc := prxml.Figure1()
	if err := doc.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 1 document: %d nodes, events %v, max scope %d\n\n",
		doc.Size(), doc.Events(), doc.MaxScope())

	queries := []*prxml.Pattern{
		prxml.NewPattern("occupation", prxml.NewPattern("musician")),
		prxml.NewPattern("given_name", prxml.NewPattern("Bradley")),
		prxml.NewPattern("given_name", prxml.NewPattern("Chelsea")),
		prxml.NewPattern("place_of_birth", prxml.NewPattern("Crescent")),
		prxml.NewPattern("Q298423",
			prxml.NewPattern("place_of_birth", prxml.NewPattern("Crescent")),
			prxml.NewPattern("surname", prxml.NewPattern("Manning"))),
		prxml.NewPattern("Q298423").WithDescendant(prxml.NewPattern("musician")),
	}
	fmt.Println("tree-pattern probabilities (exact bottom-up DP):")
	for _, q := range queries {
		p, err := doc.MatchProbability(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  P(%-65s) = %.4f\n", q, p)
	}

	// The correlation that local models cannot express: both Jane facts
	// appear together (0.9) — NOT 0.9 × 0.9 = 0.81.
	both := queries[4]
	pBoth, _ := doc.MatchProbability(both)
	pPOB, _ := doc.MatchProbability(queries[3])
	fmt.Printf("\ncorrelation check: P(both Jane facts) = %.2f, product of marginals would be %.4f\n",
		pBoth, pPOB*pPOB)

	// Worlds of the document.
	fmt.Println("\npossible worlds:")
	doc.EnumerateWorlds(func(w *prxml.XNode, p float64) {
		fmt.Printf("  %.4f  %s\n", p, w)
	})

	// Cross-check through the relational encoding and the Theorem 2 engine.
	enc := doc.Encode()
	q := rel.NewCQ(
		rel.NewAtom("node", rel.V("p"), rel.C("given_name")),
		rel.NewAtom("child", rel.V("p"), rel.V("c")),
		rel.NewAtom("node", rel.V("c"), rel.C("Chelsea")),
	)
	res, err := core.ProbabilityPC(enc.C, enc.P, q, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrelational encoding (%d facts) + Theorem 2 engine: P(given_name/Chelsea) = %.4f\n",
		enc.C.NumFacts(), res.Probability)
}
