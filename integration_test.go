package repro

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cond"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/provenance"
	"repro/internal/rel"
	"repro/internal/rules"
	"repro/internal/sampling"
)

// TestIntegrationEngineOnPlantedKTrees drives the full pipeline — generator
// with planted structure, TID, engine — and cross-checks small cases against
// enumeration and larger ones against sampling.
func TestIntegrationEngineOnPlantedKTrees(t *testing.T) {
	q := rel.HardQuery()
	r := rand.New(rand.NewSource(17))
	for _, k := range []int{1, 2} {
		g, planted := gen.PartialKTree(40, k, 0.7, r)
		if err := planted.Validate(g); err != nil {
			t.Fatalf("planted decomposition invalid: %v", err)
		}
		tid := gen.RSTOverGraph(g, 0.1, 0.4, r)
		res, err := core.ProbabilityTID(tid, q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		est := sampling.QueryTID(tid, q, 20000, 0.999, rand.New(rand.NewSource(1)))
		if math.Abs(res.Probability-est.P) > est.Radius {
			t.Errorf("k=%d: engine %v outside sampling interval %s", k, res.Probability, est)
		}
	}
}

// TestIntegrationChaseThenEngine chases soft rules and evaluates a query on
// the chased pc-instance with the tractable engine, against enumeration.
func TestIntegrationChaseThenEngine(t *testing.T) {
	base := pdb.NewCInstance()
	base.AddFact(logic.Var("e0"), "E", "a", "b")
	base.AddFact(logic.Var("e1"), "E", "b", "c")
	prob := logic.Prob{"e0": 0.8, "e1": 0.7}
	prog := rules.NewProgram(
		rules.NewRule(rel.NewAtom("T", rel.V("x"), rel.V("y")), rel.NewAtom("E", rel.V("x"), rel.V("y"))),
		rules.NewSoftRule(0.5, rel.NewAtom("T", rel.V("x"), rel.V("z")),
			rel.NewAtom("T", rel.V("x"), rel.V("y")), rel.NewAtom("T", rel.V("y"), rel.V("z"))),
	)
	res, err := prog.Chase(base, prob, rules.ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := rel.NewCQ(rel.NewAtom("T", rel.C("a"), rel.C("c")))
	engine, err := core.ProbabilityPC(res.C, res.P, q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	enum := res.C.QueryProbabilityEnumeration(q, res.P)
	if math.Abs(engine.Probability-enum) > 1e-9 {
		t.Errorf("engine %v, enumeration %v", engine.Probability, enum)
	}
	// 0.8 * 0.7 * 0.5: both edges and the coin.
	if math.Abs(engine.Probability-0.28) > 1e-12 {
		t.Errorf("P(T(a,c)) = %v, want 0.28", engine.Probability)
	}
}

// TestIntegrationProvenanceAgreesWithProbabilitySupports checks that the
// why-provenance witnesses of a query are exactly the fact sets whose
// presence makes the query hold minimally, tying internal/provenance to the
// possible-worlds semantics.
func TestIntegrationProvenanceAgreesWithProbabilitySupports(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tid := gen.RSTChain(1+r.Intn(3), 0.5)
		q := rel.HardQuery()
		c, root, err := core.CQLineage(tid.Inst, q, core.Options{})
		if err != nil {
			return false
		}
		why := provenance.Why{}
		ws, err := provenance.EvalCircuit[provenance.WhySet](why, c, root,
			func(e logic.Event) provenance.WhySet { return why.Tag(string(e)) })
		if err != nil {
			return false
		}
		// Every witness, materialized as a world, satisfies the query; and
		// removing any single fact from it breaks that witness's own match.
		for _, w := range ws {
			world := rel.NewInstance()
			for _, id := range w {
				var fi int
				if _, err := fmtSscan(id, &fi); err != nil {
					return false
				}
				world.Add(tid.Inst.Fact(fi))
			}
			if !q.Holds(world) {
				t.Logf("seed %d: witness %v does not satisfy the query", seed, w)
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func fmtSscan(id string, fi *int) (int, error) {
	var n int
	for i := 1; i < len(id); i++ {
		n = n*10 + int(id[i]-'0')
	}
	*fi = n
	return 1, nil
}

// TestIntegrationConditioningSharpensTowardsTruth runs the crowd loop on a
// random instance and checks the posterior converges to the ground truth of
// the query.
func TestIntegrationConditioningSharpensTowardsTruth(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := pdb.NewCInstance()
		p := logic.Prob{}
		for u := 0; u < 4; u++ {
			e := logic.Event(string(rune('a' + u)))
			p[e] = 0.2 + 0.6*r.Float64()
			c.AddFact(logic.Var(e), "R", string(rune('a'+u)))
		}
		q := rel.NewCQ(rel.NewAtom("R", rel.C("a")))
		truth := logic.Valuation{}
		for _, e := range c.Events() {
			truth[e] = r.Float64() < p.P(e)
		}
		oracle := &cond.Oracle{Truth: truth}
		res, err := cond.NewConditioned(c, p).ResolveGreedy(q, oracle, 6)
		if err != nil {
			return false
		}
		want := 0.0
		if q.Holds(c.World(truth)) {
			want = 1.0
		}
		return math.Abs(res.Posterior-want) < 1e-9
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestIntegrationLineageRecomputesUnderNewProbabilities emits a d-DNNF
// lineage once and re-evaluates it under fresh probabilities, against a
// fresh engine run — the "specialize without re-evaluating" use case from
// the paper's introduction.
func TestIntegrationLineageRecomputesUnderNewProbabilities(t *testing.T) {
	tid := gen.RSTChain(12, 0.5)
	q := rel.HardQuery()
	c, p := tid.ToCInstance()
	cq := core.NewCQQuery(q, c.Inst, c.Inst.IndexDomain())
	res, err := core.EvaluatePC(c, p, cq, core.Options{EmitLineage: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		p2 := logic.Prob{}
		tid2 := pdb.NewTID()
		for i := 0; i < tid.NumFacts(); i++ {
			pr := r.Float64()
			p2[tid.EventOf(i)] = pr
			tid2.Add(tid.Inst.Fact(i), pr)
		}
		fast := res.Lineage.DDNNFProbability(res.Root, p2)
		slow, err := core.ProbabilityTID(tid2, q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-slow.Probability) > 1e-9 {
			t.Fatalf("trial %d: lineage %v, engine %v", trial, fast, slow.Probability)
		}
	}
}
