// Package automata implements bottom-up tree automata on binary trees.
//
// Tree automata are the query-compilation target of the paper's Section 2.2
// (via Thatcher–Wright / Courcelle): an MSO query over bounded-treewidth
// structures compiles to an automaton that reads tree encodings of the
// structure. This package provides the automaton machinery — nondeterministic
// runs, product, union, determinization, complement — together with a
// probabilistic run over trees whose node labels are drawn independently
// (the binary-tree core of "running tree automata on probabilistic XML").
// The bag automata of internal/core are the same idea specialized to nice
// tree decompositions; here the classical form is available for tests,
// ablations, and MSO queries on trees, such as label-parity, that neither
// CQs nor tree patterns express.
package automata

import (
	"fmt"
	"sort"
	"strings"
)

// Tree is a binary tree with labelled nodes. Leaves have nil children; a
// node must have either zero or two children.
type Tree struct {
	Label       string
	Left, Right *Tree
}

// Leaf returns a leaf node.
func Leaf(label string) *Tree { return &Tree{Label: label} }

// Branch returns an inner node.
func Branch(label string, l, r *Tree) *Tree { return &Tree{Label: label, Left: l, Right: r} }

// Size returns the number of nodes.
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	return 1 + t.Left.Size() + t.Right.Size()
}

// LeafRule maps a leaf label to a possible state.
type LeafRule struct {
	Label string
	State int
}

// BranchRule maps (label, left state, right state) to a possible state.
type BranchRule struct {
	Label       string
	Left, Right int
	State       int
}

// NTA is a nondeterministic bottom-up tree automaton.
type NTA struct {
	NumStates int
	Accepting []bool
	Leaves    []LeafRule
	Branches  []BranchRule
}

// Validate checks that all rules reference valid states.
func (a *NTA) Validate() error {
	if len(a.Accepting) != a.NumStates {
		return fmt.Errorf("automata: accepting vector has %d entries for %d states", len(a.Accepting), a.NumStates)
	}
	for _, r := range a.Leaves {
		if r.State < 0 || r.State >= a.NumStates {
			return fmt.Errorf("automata: leaf rule state %d out of range", r.State)
		}
	}
	for _, r := range a.Branches {
		for _, s := range []int{r.Left, r.Right, r.State} {
			if s < 0 || s >= a.NumStates {
				return fmt.Errorf("automata: branch rule state %d out of range", s)
			}
		}
	}
	return nil
}

// Run returns the set of states reachable at the root of t.
func (a *NTA) Run(t *Tree) map[int]bool {
	if t == nil {
		return nil
	}
	if t.Left == nil {
		out := map[int]bool{}
		for _, r := range a.Leaves {
			if r.Label == t.Label {
				out[r.State] = true
			}
		}
		return out
	}
	left := a.Run(t.Left)
	right := a.Run(t.Right)
	out := map[int]bool{}
	for _, r := range a.Branches {
		if r.Label == t.Label && left[r.Left] && right[r.Right] {
			out[r.State] = true
		}
	}
	return out
}

// Accepts reports whether some run of a on t ends in an accepting state.
func (a *NTA) Accepts(t *Tree) bool {
	for q := range a.Run(t) {
		if a.Accepting[q] {
			return true
		}
	}
	return false
}

// Product returns the synchronous product of a and b, accepting with the
// given combiner of the two acceptance bits (intersection: x && y; union:
// x || y; difference: x && !y). Labels are the union of both alphabets.
func Product(a, b *NTA, accept func(x, y bool) bool) *NTA {
	id := func(qa, qb int) int { return qa*b.NumStates + qb }
	p := &NTA{NumStates: a.NumStates * b.NumStates}
	p.Accepting = make([]bool, p.NumStates)
	for qa := 0; qa < a.NumStates; qa++ {
		for qb := 0; qb < b.NumStates; qb++ {
			p.Accepting[id(qa, qb)] = accept(a.Accepting[qa], b.Accepting[qb])
		}
	}
	for _, ra := range a.Leaves {
		for _, rb := range b.Leaves {
			if ra.Label == rb.Label {
				p.Leaves = append(p.Leaves, LeafRule{ra.Label, id(ra.State, rb.State)})
			}
		}
	}
	for _, ra := range a.Branches {
		for _, rb := range b.Branches {
			if ra.Label == rb.Label {
				p.Branches = append(p.Branches, BranchRule{
					Label: ra.Label,
					Left:  id(ra.Left, rb.Left),
					Right: id(ra.Right, rb.Right),
					State: id(ra.State, rb.State),
				})
			}
		}
	}
	return p
}

// Intersection returns an automaton accepting the trees accepted by both.
func Intersection(a, b *NTA) *NTA { return Product(a, b, func(x, y bool) bool { return x && y }) }

// Union returns an automaton accepting the trees accepted by either.
func Union(a, b *NTA) *NTA { return Product(a, b, func(x, y bool) bool { return x || y }) }

// DTA is a deterministic bottom-up tree automaton: at most one rule applies
// at every node. Determinism is what probability computations need — the
// states of a deterministic automaton partition the possible worlds.
type DTA struct {
	Alphabet []string
	// States are subsets of the source NTA's states, encoded canonically;
	// state 0 is the empty set (rejecting sink).
	NumStates int
	Accepting []bool
	LeafTrans map[string]int
	// BranchTrans[label][left*NumStates+right] = state.
	BranchTrans map[string][]int
}

// Determinize applies the subset construction to a, restricted to reachable
// state sets, over the given alphabet.
func Determinize(a *NTA, alphabet []string) *DTA {
	type setKey = string
	encode := func(set map[int]bool) setKey {
		ids := make([]int, 0, len(set))
		for q := range set {
			ids = append(ids, q)
		}
		sort.Ints(ids)
		parts := make([]string, len(ids))
		for i, q := range ids {
			parts[i] = fmt.Sprint(q)
		}
		return strings.Join(parts, ",")
	}
	// Index leaf and branch rules.
	leafSets := map[string]map[int]bool{}
	for _, lbl := range alphabet {
		leafSets[lbl] = map[int]bool{}
	}
	for _, r := range a.Leaves {
		if _, ok := leafSets[r.Label]; ok {
			leafSets[r.Label][r.State] = true
		}
	}
	branchRules := map[string][]BranchRule{}
	for _, r := range a.Branches {
		branchRules[r.Label] = append(branchRules[r.Label], r)
	}

	stateOf := map[setKey]int{}
	var sets []map[int]bool
	intern := func(set map[int]bool) int {
		k := encode(set)
		if id, ok := stateOf[k]; ok {
			return id
		}
		id := len(sets)
		stateOf[k] = id
		sets = append(sets, set)
		return id
	}
	intern(map[int]bool{}) // state 0: empty set

	d := &DTA{Alphabet: alphabet, LeafTrans: map[string]int{}, BranchTrans: map[string][]int{}}
	for _, lbl := range alphabet {
		d.LeafTrans[lbl] = intern(leafSets[lbl])
	}
	// Fixpoint: repeatedly close the branch transitions over the known
	// reachable sets until no new set appears.
	for {
		n := len(sets)
		for _, lbl := range alphabet {
			for l := 0; l < n; l++ {
				for r := 0; r < n; r++ {
					out := map[int]bool{}
					for _, br := range branchRules[lbl] {
						if sets[l][br.Left] && sets[r][br.Right] {
							out[br.State] = true
						}
					}
					intern(out)
				}
			}
		}
		if len(sets) == n {
			break
		}
	}
	d.NumStates = len(sets)
	d.Accepting = make([]bool, d.NumStates)
	for i, set := range sets {
		for q := range set {
			if a.Accepting[q] {
				d.Accepting[i] = true
			}
		}
	}
	// The fixpoint may have left stale smaller tables; rebuild once at the
	// final size.
	n := d.NumStates
	for _, lbl := range alphabet {
		tbl := make([]int, n*n)
		for l := 0; l < n; l++ {
			for r := 0; r < n; r++ {
				out := map[int]bool{}
				for _, br := range branchRules[lbl] {
					if sets[l][br.Left] && sets[r][br.Right] {
						out[br.State] = true
					}
				}
				k := encode(out)
				tbl[l*n+r] = stateOf[k]
			}
		}
		d.BranchTrans[lbl] = tbl
	}
	return d
}

// Run returns the unique state of the deterministic automaton at the root.
func (d *DTA) Run(t *Tree) int {
	if t.Left == nil {
		return d.LeafTrans[t.Label]
	}
	l := d.Run(t.Left)
	r := d.Run(t.Right)
	return d.BranchTrans[t.Label][l*d.NumStates+r]
}

// Accepts reports acceptance of t.
func (d *DTA) Accepts(t *Tree) bool { return d.Accepting[d.Run(t)] }

// Complement flips acceptance (valid because the automaton is complete).
func (d *DTA) Complement() *DTA {
	out := *d
	out.Accepting = make([]bool, d.NumStates)
	for i, acc := range d.Accepting {
		out.Accepting[i] = !acc
	}
	return &out
}

// LabelDist is a probability distribution over labels at one tree node.
type LabelDist map[string]float64

// ProbTree is a binary tree whose node labels are drawn independently from
// per-node distributions: the binary-tree analogue of a local-uncertainty
// probabilistic document.
type ProbTree struct {
	Dist        LabelDist
	Left, Right *ProbTree
}

// AcceptProbability computes the exact probability that the deterministic
// automaton accepts a random tree drawn from pt, by the bottom-up state-
// distribution DP (linear in the tree for a fixed automaton). Determinism
// makes the per-node state distribution well defined.
func (d *DTA) AcceptProbability(pt *ProbTree) float64 {
	var eval func(n *ProbTree) []float64
	eval = func(n *ProbTree) []float64 {
		out := make([]float64, d.NumStates)
		if n.Left == nil {
			for lbl, p := range n.Dist {
				out[d.LeafTrans[lbl]] += p
			}
			return out
		}
		left := eval(n.Left)
		right := eval(n.Right)
		for lbl, p := range n.Dist {
			tbl := d.BranchTrans[lbl]
			for l, pl := range left {
				if pl == 0 {
					continue
				}
				for r, pr := range right {
					if pr == 0 {
						continue
					}
					out[tbl[l*d.NumStates+r]] += p * pl * pr
				}
			}
		}
		return out
	}
	dist := eval(pt)
	total := 0.0
	for q, p := range dist {
		if d.Accepting[q] {
			total += p
		}
	}
	return total
}

// EnumerateTrees calls fn with every deterministic labelling of pt and its
// probability — the exponential baseline for AcceptProbability.
func (pt *ProbTree) EnumerateTrees(fn func(*Tree, float64)) {
	var rec func(n *ProbTree, k func(*Tree, float64))
	rec = func(n *ProbTree, k func(*Tree, float64)) {
		labels := make([]string, 0, len(n.Dist))
		for lbl := range n.Dist {
			labels = append(labels, lbl)
		}
		sort.Strings(labels)
		for _, lbl := range labels {
			p := n.Dist[lbl]
			if p == 0 {
				continue
			}
			if n.Left == nil {
				k(Leaf(lbl), p)
				continue
			}
			rec(n.Left, func(lt *Tree, pl float64) {
				rec(n.Right, func(rt *Tree, pr float64) {
					k(Branch(lbl, lt, rt), p*pl*pr)
				})
			})
		}
	}
	rec(pt, fn)
}

// EvenAs returns an NTA over the given alphabet accepting trees with an
// even number of nodes labelled "a" — an MSO property that no conjunctive
// query or tree pattern expresses. State 0: even so far; state 1: odd.
func EvenAs(alphabet []string) *NTA {
	a := &NTA{NumStates: 2, Accepting: []bool{true, false}}
	parity := func(lbl string) int {
		if lbl == "a" {
			return 1
		}
		return 0
	}
	for _, lbl := range alphabet {
		a.Leaves = append(a.Leaves, LeafRule{lbl, parity(lbl)})
		for l := 0; l < 2; l++ {
			for r := 0; r < 2; r++ {
				a.Branches = append(a.Branches, BranchRule{lbl, l, r, (l + r + parity(lbl)) % 2})
			}
		}
	}
	return a
}

// SomeLabel returns an NTA accepting trees containing at least one node
// with the given label. State 1: seen.
func SomeLabel(alphabet []string, want string) *NTA {
	a := &NTA{NumStates: 2, Accepting: []bool{false, true}}
	seen := func(lbl string, sub int) int {
		if lbl == want || sub == 1 {
			return 1
		}
		return 0
	}
	for _, lbl := range alphabet {
		a.Leaves = append(a.Leaves, LeafRule{lbl, seen(lbl, 0)})
		for l := 0; l < 2; l++ {
			for r := 0; r < 2; r++ {
				a.Branches = append(a.Branches, BranchRule{lbl, l, r, seen(lbl, l|r)})
			}
		}
	}
	return a
}
