package automata

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var alphabet = []string{"a", "b"}

// countLabel counts nodes labelled lbl.
func countLabel(t *Tree, lbl string) int {
	if t == nil {
		return 0
	}
	n := 0
	if t.Label == lbl {
		n = 1
	}
	return n + countLabel(t.Left, lbl) + countLabel(t.Right, lbl)
}

func randomTree(r *rand.Rand, depth int) *Tree {
	lbl := alphabet[r.Intn(len(alphabet))]
	if depth <= 0 || r.Intn(3) == 0 {
		return Leaf(lbl)
	}
	return Branch(lbl, randomTree(r, depth-1), randomTree(r, depth-1))
}

func TestEvenAsSemantics(t *testing.T) {
	a := EvenAs(alphabet)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		tree := randomTree(r, 4)
		want := countLabel(tree, "a")%2 == 0
		if got := a.Accepts(tree); got != want {
			t.Fatalf("EvenAs on %d a-nodes: got %v", countLabel(tree, "a"), got)
		}
	}
}

func TestSomeLabelSemantics(t *testing.T) {
	a := SomeLabel(alphabet, "b")
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		tree := randomTree(r, 4)
		want := countLabel(tree, "b") > 0
		if got := a.Accepts(tree); got != want {
			t.Fatalf("SomeLabel: got %v, want %v", got, want)
		}
	}
}

func TestBooleanClosure(t *testing.T) {
	even := EvenAs(alphabet)
	someB := SomeLabel(alphabet, "b")
	inter := Intersection(even, someB)
	union := Union(even, someB)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		tree := randomTree(r, 4)
		e, s := even.Accepts(tree), someB.Accepts(tree)
		if inter.Accepts(tree) != (e && s) {
			t.Fatal("intersection mismatch")
		}
		if union.Accepts(tree) != (e || s) {
			t.Fatal("union mismatch")
		}
	}
}

func TestDeterminizepreservesLanguage(t *testing.T) {
	for _, nta := range []*NTA{EvenAs(alphabet), SomeLabel(alphabet, "a"), Intersection(EvenAs(alphabet), SomeLabel(alphabet, "b"))} {
		d := Determinize(nta, alphabet)
		r := rand.New(rand.NewSource(4))
		for i := 0; i < 150; i++ {
			tree := randomTree(r, 4)
			if d.Accepts(tree) != nta.Accepts(tree) {
				t.Fatalf("determinization changed the language")
			}
			if d.Complement().Accepts(tree) == nta.Accepts(tree) {
				t.Fatalf("complement did not flip acceptance")
			}
		}
	}
}

func randomProbTree(r *rand.Rand, depth int) *ProbTree {
	p := r.Float64()
	n := &ProbTree{Dist: LabelDist{"a": p, "b": 1 - p}}
	if depth > 0 && r.Intn(3) != 0 {
		n.Left = randomProbTree(r, depth-1)
		n.Right = randomProbTree(r, depth-1)
	}
	return n
}

func TestPropertyAcceptProbabilityMatchesEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	even := Determinize(EvenAs(alphabet), alphabet)
	someB := Determinize(SomeLabel(alphabet, "b"), alphabet)
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pt := randomProbTree(r, 3)
		for _, d := range []*DTA{even, someB} {
			got := d.AcceptProbability(pt)
			want := 0.0
			total := 0.0
			pt.EnumerateTrees(func(tree *Tree, p float64) {
				total += p
				if d.Accepts(tree) {
					want += p
				}
			})
			if math.Abs(total-1) > 1e-9 || math.Abs(got-want) > 1e-9 {
				t.Logf("seed %d: DP %v, enum %v (mass %v)", seed, got, want, total)
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestAcceptProbabilityLargeTreeLinear(t *testing.T) {
	// A full binary tree of depth 12 (8191 nodes): enumeration would need
	// 2^8191 labellings; the DP answers instantly. For even-parity of "a"
	// with p = 1/2 everywhere, P(even) = 1/2 by symmetry... except the
	// total count parity distribution is exactly uniform when every node
	// flips a fair coin: P(even) = 1/2.
	var build func(d int) *ProbTree
	build = func(d int) *ProbTree {
		n := &ProbTree{Dist: LabelDist{"a": 0.5, "b": 0.5}}
		if d > 0 {
			n.Left = build(d - 1)
			n.Right = build(d - 1)
		}
		return n
	}
	pt := build(12)
	d := Determinize(EvenAs(alphabet), alphabet)
	got := d.AcceptProbability(pt)
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("P(even) = %v, want 0.5", got)
	}
}

func TestProductStateCount(t *testing.T) {
	a := EvenAs(alphabet)
	b := SomeLabel(alphabet, "b")
	p := Intersection(a, b)
	if p.NumStates != 4 {
		t.Errorf("product states = %d, want 4", p.NumStates)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}
