// Package circuit implements Boolean circuits over events and exact
// probability computation on them.
//
// Circuits are the annotation language of pcc-instances (Section 2.2 of the
// paper) and the output language of lineage construction (internal/core):
// running the query "automaton" over a tree-decomposed uncertain instance
// yields a lineage circuit describing which possible worlds satisfy the
// query. When the circuit has a bounded-width tree decomposition, its
// probability is computed exactly by message passing (Lauritzen–Spiegelhalter
// style sum-product over a junction tree), which is this package's
// centrepiece. An exhaustive valuation-enumeration baseline is provided for
// cross-checking and for the experiments' intractable arms.
package circuit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
)

// Gate identifies a gate within a circuit. Gates are created in topological
// order: the inputs of a gate always have smaller identifiers.
type Gate int

// Kind classifies gates.
type Kind int

const (
	// KindConst is a 0-input constant gate.
	KindConst Kind = iota
	// KindVar is a 0-input gate whose value is that of an event.
	KindVar
	// KindNot is a 1-input negation gate.
	KindNot
	// KindAnd is an n-ary conjunction gate (0 inputs = true).
	KindAnd
	// KindOr is an n-ary disjunction gate (0 inputs = false).
	KindOr
)

func (k Kind) String() string {
	switch k {
	case KindConst:
		return "const"
	case KindVar:
		return "var"
	case KindNot:
		return "not"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	}
	return "unknown"
}

type node struct {
	kind   Kind
	value  bool        // for KindConst
	event  logic.Event // for KindVar
	inputs []Gate
}

// Circuit is a Boolean circuit. The zero value is an empty circuit ready for
// use. Gates are appended by the builder methods; each event has at most one
// variable gate (the builder deduplicates), which the probability algorithms
// rely on for independence bookkeeping.
type Circuit struct {
	nodes  []node
	varOf  map[logic.Event]Gate
	truthy Gate // cached constant gates, -1 until created
	falsy  Gate
	init   bool
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{varOf: make(map[logic.Event]Gate), truthy: -1, falsy: -1, init: true}
}

func (c *Circuit) ensureInit() {
	if !c.init {
		c.varOf = make(map[logic.Event]Gate)
		c.truthy, c.falsy = -1, -1
		c.init = true
	}
}

// NumGates returns the number of gates in the circuit.
func (c *Circuit) NumGates() int { return len(c.nodes) }

// KindOf returns the kind of g.
func (c *Circuit) KindOf(g Gate) Kind { return c.nodes[g].kind }

// Inputs returns the inputs of g (aliased; do not modify).
func (c *Circuit) Inputs(g Gate) []Gate { return c.nodes[g].inputs }

// EventOf returns the event of a variable gate.
func (c *Circuit) EventOf(g Gate) logic.Event {
	if c.nodes[g].kind != KindVar {
		panic("circuit: EventOf on non-var gate")
	}
	return c.nodes[g].event
}

// ConstValue returns the value of a constant gate.
func (c *Circuit) ConstValue(g Gate) bool {
	if c.nodes[g].kind != KindConst {
		panic("circuit: ConstValue on non-const gate")
	}
	return c.nodes[g].value
}

func (c *Circuit) add(n node) Gate {
	c.nodes = append(c.nodes, n)
	return Gate(len(c.nodes) - 1)
}

// Const returns the constant gate for b, creating it on first use.
func (c *Circuit) Const(b bool) Gate {
	c.ensureInit()
	if b {
		if c.truthy < 0 {
			c.truthy = c.add(node{kind: KindConst, value: true})
		}
		return c.truthy
	}
	if c.falsy < 0 {
		c.falsy = c.add(node{kind: KindConst, value: false})
	}
	return c.falsy
}

// Var returns the variable gate for event e, creating it on first use. All
// occurrences of the same event share one gate.
func (c *Circuit) Var(e logic.Event) Gate {
	c.ensureInit()
	if g, ok := c.varOf[e]; ok {
		return g
	}
	g := c.add(node{kind: KindVar, event: e})
	c.varOf[e] = g
	return g
}

// Not returns a gate computing the negation of g, folding constants and
// double negation.
func (c *Circuit) Not(g Gate) Gate {
	c.ensureInit()
	switch c.nodes[g].kind {
	case KindConst:
		return c.Const(!c.nodes[g].value)
	case KindNot:
		return c.nodes[g].inputs[0]
	}
	return c.add(node{kind: KindNot, inputs: []Gate{g}})
}

// And returns a gate computing the conjunction of gs, folding constants and
// collapsing the 0- and 1-input cases.
func (c *Circuit) And(gs ...Gate) Gate {
	c.ensureInit()
	inputs := make([]Gate, 0, len(gs))
	for _, g := range gs {
		if c.nodes[g].kind == KindConst {
			if !c.nodes[g].value {
				return c.Const(false)
			}
			continue
		}
		inputs = append(inputs, g)
	}
	switch len(inputs) {
	case 0:
		return c.Const(true)
	case 1:
		return inputs[0]
	}
	return c.add(node{kind: KindAnd, inputs: inputs})
}

// Or returns a gate computing the disjunction of gs, folding constants and
// collapsing the 0- and 1-input cases.
func (c *Circuit) Or(gs ...Gate) Gate {
	c.ensureInit()
	inputs := make([]Gate, 0, len(gs))
	for _, g := range gs {
		if c.nodes[g].kind == KindConst {
			if c.nodes[g].value {
				return c.Const(true)
			}
			continue
		}
		inputs = append(inputs, g)
	}
	switch len(inputs) {
	case 0:
		return c.Const(false)
	case 1:
		return inputs[0]
	}
	return c.add(node{kind: KindOr, inputs: inputs})
}

// Literal returns the gate for the event literal l.
func (c *Circuit) Literal(l logic.Literal) Gate {
	g := c.Var(l.Event)
	if l.Negated {
		return c.Not(g)
	}
	return g
}

// FromFormula builds a gate computing the propositional formula f.
func (c *Circuit) FromFormula(f logic.Formula) Gate {
	return logic.Visit(f, visitor{c}).(Gate)
}

type visitor struct{ c *Circuit }

func (v visitor) Const(b bool) interface{}      { return v.c.Const(b) }
func (v visitor) Var(e logic.Event) interface{} { return v.c.Var(e) }
func (v visitor) Not(sub interface{}) interface{} {
	return v.c.Not(sub.(Gate))
}
func (v visitor) And(subs []interface{}) interface{} {
	gs := make([]Gate, len(subs))
	for i, s := range subs {
		gs[i] = s.(Gate)
	}
	return v.c.And(gs...)
}
func (v visitor) Or(subs []interface{}) interface{} {
	gs := make([]Gate, len(subs))
	for i, s := range subs {
		gs[i] = s.(Gate)
	}
	return v.c.Or(gs...)
}

// Events returns the sorted events used by variable gates in the circuit.
func (c *Circuit) Events() []logic.Event {
	events := make([]logic.Event, 0, len(c.varOf))
	for e := range c.varOf {
		events = append(events, e)
	}
	return logic.SortEvents(events)
}

// Eval evaluates every gate under v and returns the value of root.
func (c *Circuit) Eval(root Gate, v logic.Valuation) bool {
	vals := make([]bool, len(c.nodes))
	for i, n := range c.nodes {
		switch n.kind {
		case KindConst:
			vals[i] = n.value
		case KindVar:
			vals[i] = v.Get(n.event)
		case KindNot:
			vals[i] = !vals[n.inputs[0]]
		case KindAnd:
			vals[i] = true
			for _, in := range n.inputs {
				if !vals[in] {
					vals[i] = false
					break
				}
			}
		case KindOr:
			vals[i] = false
			for _, in := range n.inputs {
				if vals[in] {
					vals[i] = true
					break
				}
			}
		}
	}
	return vals[root]
}

// EnumerationProbability computes P(root) by enumerating every valuation of
// the circuit's events. Exponential: this is the baseline arm of the
// experiments and the cross-check oracle of the tests.
func (c *Circuit) EnumerationProbability(root Gate, p logic.Prob) float64 {
	events := c.Events()
	total := 0.0
	logic.EnumerateValuations(events, func(v logic.Valuation) {
		if c.Eval(root, v) {
			total += p.ProbOfValuation(events, v)
		}
	})
	return total
}

// Monotone reports whether the circuit contains no negation gate (constants
// aside), so that the function of every gate is monotone in the events.
// Lineages of monotone queries on TIDs are monotone, enabling O(gates)
// possibility and certainty checks.
func (c *Circuit) Monotone() bool {
	for _, n := range c.nodes {
		if n.kind == KindNot {
			return false
		}
	}
	return true
}

// Stats summarizes a circuit for reporting.
type Stats struct {
	Gates  int
	Vars   int
	Ands   int
	Ors    int
	Nots   int
	Consts int
	Wires  int
	MaxFan int
}

// Stat computes circuit statistics.
func (c *Circuit) Stat() Stats {
	var s Stats
	s.Gates = len(c.nodes)
	for _, n := range c.nodes {
		switch n.kind {
		case KindConst:
			s.Consts++
		case KindVar:
			s.Vars++
		case KindNot:
			s.Nots++
		case KindAnd:
			s.Ands++
		case KindOr:
			s.Ors++
		}
		s.Wires += len(n.inputs)
		if len(n.inputs) > s.MaxFan {
			s.MaxFan = len(n.inputs)
		}
	}
	return s
}

// String renders gate g as a nested expression (for debugging and tests;
// exponential on shared structure). The whole expression is written into a
// single strings.Builder, so rendering is linear in the output size rather
// than quadratic in it.
func (c *Circuit) String(g Gate) string {
	var sb strings.Builder
	c.writeGate(&sb, g)
	return sb.String()
}

func (c *Circuit) writeGate(sb *strings.Builder, g Gate) {
	n := c.nodes[g]
	switch n.kind {
	case KindConst:
		if n.value {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case KindVar:
		sb.WriteString(string(n.event))
	case KindNot:
		sb.WriteByte('!')
		c.writeGate(sb, n.inputs[0])
	case KindAnd, KindOr:
		op := " & "
		if n.kind == KindOr {
			op = " | "
		}
		sb.WriteByte('(')
		for i, in := range n.inputs {
			if i > 0 {
				sb.WriteString(op)
			}
			c.writeGate(sb, in)
		}
		sb.WriteByte(')')
	default:
		sb.WriteByte('?')
	}
}

// ReachableFrom returns the sorted gates reachable from root (including it).
func (c *Circuit) ReachableFrom(root Gate) []Gate {
	seen := make([]bool, len(c.nodes))
	stack := []Gate{root}
	seen[root] = true
	var out []Gate
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, g)
		for _, in := range c.nodes[g].inputs {
			if !seen[in] {
				seen[in] = true
				stack = append(stack, in)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks internal invariants: topological input order and
// deduplicated variable gates.
func (c *Circuit) Validate() error {
	seenEvent := make(map[logic.Event]bool)
	for i, n := range c.nodes {
		for _, in := range n.inputs {
			if in < 0 || int(in) >= i {
				return fmt.Errorf("circuit: gate %d has non-topological input %d", i, in)
			}
		}
		if n.kind == KindVar {
			if seenEvent[n.event] {
				return fmt.Errorf("circuit: duplicate variable gate for event %q", n.event)
			}
			seenEvent[n.event] = true
		}
	}
	return nil
}
