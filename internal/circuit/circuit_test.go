package circuit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

func TestBuilderFolding(t *testing.T) {
	c := New()
	a := c.Var("a")
	if c.Var("a") != a {
		t.Error("Var must deduplicate")
	}
	if c.And(a, c.Const(true)) != a {
		t.Error("And with true must collapse")
	}
	if g := c.And(a, c.Const(false)); c.KindOf(g) != KindConst || c.ConstValue(g) {
		t.Error("And with false must be const false")
	}
	if c.Or(a, c.Const(false)) != a {
		t.Error("Or with false must collapse")
	}
	if g := c.Or(a, c.Const(true)); c.KindOf(g) != KindConst || !c.ConstValue(g) {
		t.Error("Or with true must be const true")
	}
	if c.Not(c.Not(a)) != a {
		t.Error("double negation must collapse")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestEval(t *testing.T) {
	c := New()
	a, b, d := c.Var("a"), c.Var("b"), c.Var("d")
	root := c.Or(c.And(a, b), c.And(c.Not(a), d))
	cases := []struct {
		v    logic.Valuation
		want bool
	}{
		{logic.Valuation{"a": true, "b": true}, true},
		{logic.Valuation{"a": true, "b": false, "d": true}, false},
		{logic.Valuation{"a": false, "d": true}, true},
		{logic.Valuation{"a": false, "d": false}, false},
	}
	for _, tc := range cases {
		if got := c.Eval(root, tc.v); got != tc.want {
			t.Errorf("Eval(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestFromFormulaAgreesWithFormula(t *testing.T) {
	f := logic.Or(
		logic.And(logic.Var("x"), logic.Not(logic.Var("y"))),
		logic.And(logic.Var("y"), logic.Var("z")),
	)
	c := New()
	root := c.FromFormula(f)
	logic.EnumerateValuations(logic.Vars(f), func(v logic.Valuation) {
		if c.Eval(root, v) != f.Eval(v) {
			t.Errorf("circuit and formula disagree on %v", v)
		}
	})
}

func TestProbabilitySimple(t *testing.T) {
	c := New()
	a, b := c.Var("a"), c.Var("b")
	p := logic.Prob{"a": 0.3, "b": 0.5}
	cases := []struct {
		root Gate
		want float64
	}{
		{a, 0.3},
		{c.Not(a), 0.7},
		{c.And(a, b), 0.15},
		{c.Or(a, b), 0.65},
		{c.Const(true), 1},
		{c.Const(false), 0},
	}
	for _, tc := range cases {
		got, err := c.Probability(tc.root, p, nil)
		if err != nil {
			t.Fatalf("Probability(%s): %v", c.String(tc.root), err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("P(%s) = %v, want %v", c.String(tc.root), got, tc.want)
		}
	}
}

func TestProbabilitySharedSubcircuit(t *testing.T) {
	// root = (a & b) | (a & !b): shared a; P = P(a) = 0.4.
	c := New()
	a, b := c.Var("a"), c.Var("b")
	root := c.Or(c.And(a, b), c.And(a, c.Not(b)))
	got, err := c.Probability(root, logic.Prob{"a": 0.4, "b": 0.9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.4) > 1e-12 {
		t.Errorf("P = %v, want 0.4", got)
	}
}

// randomCircuit builds a random circuit and returns it with a root gate.
func randomCircuit(r *rand.Rand, nVars, nOps int) (*Circuit, Gate) {
	c := New()
	gates := []Gate{c.Const(true), c.Const(false)}
	for i := 0; i < nVars; i++ {
		gates = append(gates, c.Var(logic.Event(string(rune('a'+i)))))
	}
	for i := 0; i < nOps; i++ {
		pick := func() Gate { return gates[r.Intn(len(gates))] }
		var g Gate
		switch r.Intn(3) {
		case 0:
			g = c.Not(pick())
		case 1:
			g = c.And(pick(), pick())
		default:
			g = c.Or(pick(), pick(), pick())
		}
		gates = append(gates, g)
	}
	return c, gates[len(gates)-1]
}

func TestPropertyMessagePassingMatchesEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, root := randomCircuit(r, 2+r.Intn(4), 3+r.Intn(12))
		p := logic.Prob{}
		for _, e := range c.Events() {
			p[e] = r.Float64()
		}
		want := c.EnumerationProbability(root, p)
		got, err := c.Probability(root, p, nil)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if math.Abs(got-want) > 1e-9 {
			t.Logf("seed %d: msgpass %v vs enum %v on %s", seed, got, want, c.String(root))
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyPossibleCertainMatchEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, root := randomCircuit(r, 2+r.Intn(3), 3+r.Intn(8))
		events := c.Events()
		possible, certain := false, true
		logic.EnumerateValuations(events, func(v logic.Valuation) {
			if c.Eval(root, v) {
				possible = true
			} else {
				certain = false
			}
		})
		gotP, err := c.Possible(root, nil)
		if err != nil {
			return false
		}
		gotC, err := c.Certain(root, nil)
		if err != nil {
			return false
		}
		return gotP == possible && gotC == certain
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestMonotonePossibleCertainFastPath(t *testing.T) {
	c := New()
	a, b := c.Var("a"), c.Var("b")
	root := c.Or(c.And(a, b), b)
	if !c.Monotone() {
		t.Fatal("circuit should be monotone")
	}
	possible, err := c.Possible(root, nil)
	if err != nil || !possible {
		t.Errorf("Possible = %v, %v; want true", possible, err)
	}
	certain, err := c.Certain(root, nil)
	if err != nil || certain {
		t.Errorf("Certain = %v, %v; want false", certain, err)
	}
}

func TestLongChainProbability(t *testing.T) {
	// AND-chain over 40 events with p = 0.9: P = 0.9^40. Enumeration would
	// need 2^40 worlds; message passing handles it easily.
	c := New()
	acc := c.Const(true)
	for i := 0; i < 40; i++ {
		acc = c.And(acc, c.Var(logic.Event(fmt_i("e", i))))
	}
	p := logic.Prob{}
	for _, e := range c.Events() {
		p[e] = 0.9
	}
	got, err := c.Probability(acc, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.9, 40)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P = %v, want %v", got, want)
	}
}

func fmt_i(prefix string, i int) logic.Event {
	return logic.Event(prefix + string(rune('0'+i/10)) + string(rune('0'+i%10)))
}

func TestStats(t *testing.T) {
	c := New()
	a, b := c.Var("a"), c.Var("b")
	c.Or(c.And(a, b), c.Not(a))
	s := c.Stat()
	if s.Vars != 2 || s.Ands != 1 || s.Ors != 1 || s.Nots != 1 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestReachableFrom(t *testing.T) {
	c := New()
	a, b := c.Var("a"), c.Var("b")
	g1 := c.And(a, b)
	c.Or(a, b) // unreachable from g1
	reach := c.ReachableFrom(g1)
	if len(reach) != 3 {
		t.Errorf("ReachableFrom = %v, want 3 gates", reach)
	}
}

func TestEnumerationProbabilityMatchesFormula(t *testing.T) {
	f := logic.Or(logic.And(logic.Var("a"), logic.Var("b")), logic.Var("c"))
	p := logic.Prob{"a": 0.2, "b": 0.7, "c": 0.1}
	c := New()
	root := c.FromFormula(f)
	got := c.EnumerationProbability(root, p)
	want := logic.Probability(f, p)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("enum = %v, formula = %v", got, want)
	}
}
