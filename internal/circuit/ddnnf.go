package circuit

import (
	"repro/internal/core/kernel"
	"repro/internal/logic"
)

// DDNNFProbability evaluates the probability of root in a single bottom-up
// pass, assuming the circuit is deterministic (the inputs of every Or gate
// are satisfied by disjoint sets of valuations) and decomposable (the inputs
// of every And gate mention disjoint sets of events).
//
// The lineage circuits emitted by internal/core's determinized automaton run
// satisfy both properties by construction, which is what makes query
// probability linear-time on bounded-treewidth instances (Theorems 1 and 2).
// On circuits violating the properties the result is meaningless; use
// Probability (message passing) or EnumerationProbability instead.
func (c *Circuit) DDNNFProbability(root Gate, p logic.Prob) float64 {
	vals := make([]float64, len(c.nodes))
	for i, n := range c.nodes {
		switch n.kind {
		case KindConst:
			if n.value {
				vals[i] = 1
			}
		case KindVar:
			vals[i] = p.P(n.event)
		case KindNot:
			vals[i] = 1 - vals[n.inputs[0]]
		case KindAnd:
			v := 1.0
			for _, in := range n.inputs {
				v *= vals[in]
			}
			vals[i] = v
		case KindOr:
			v := 0.0
			for _, in := range n.inputs {
				v += vals[in]
			}
			vals[i] = v
		}
	}
	v := vals[root]
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v
}

// DDNNFProbabilityBatch evaluates the probability of root under B = len(ps)
// probability maps in one bottom-up pass, carrying a lane vector per gate:
// the multi-lane counterpart of DDNNFProbability, matching the batched
// dynamic program of internal/core. Sharing the single circuit traversal
// across all B assignments makes lineage-based parameter sweeps pay the
// gate-graph walk once instead of per assignment.
func (c *Circuit) DDNNFProbabilityBatch(root Gate, ps []logic.Prob) []float64 {
	B := len(ps)
	if B == 0 {
		return nil
	}
	vals := make([]float64, len(c.nodes)*B)
	for i, n := range c.nodes {
		lane := vals[i*B : i*B+B]
		switch n.kind {
		case KindConst:
			if n.value {
				kernel.Fill(lane, 1)
			}
		case KindVar:
			for l, p := range ps {
				lane[l] = p.P(n.event)
			}
		case KindNot:
			kernel.OneMinus(lane, vals[int(n.inputs[0])*B:int(n.inputs[0])*B+B])
		case KindAnd:
			kernel.Fill(lane, 1)
			for _, in := range n.inputs {
				kernel.Mul(lane, vals[int(in)*B:int(in)*B+B])
			}
		case KindOr:
			for _, in := range n.inputs {
				kernel.AddTo(lane, vals[int(in)*B:int(in)*B+B])
			}
		}
	}
	out := make([]float64, B)
	copy(out, vals[int(root)*B:int(root)*B+B])
	for l, v := range out {
		if v < 0 {
			out[l] = 0
		}
		if v > 1 {
			out[l] = 1
		}
	}
	return out
}
