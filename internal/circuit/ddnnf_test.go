package circuit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// buildDDNNF constructs a small circuit that is deterministic and
// decomposable by construction: Shannon-expand over a, with b and c confined
// to separate branches of each conjunction.
//
//	(a ∧ b) ∨ (¬a ∧ c)  — probability  P(a)P(b) + (1-P(a))P(c)
func buildDDNNF() (*Circuit, Gate) {
	c := New()
	a := c.Var("a")
	root := c.Or(
		c.And(a, c.Var("b")),
		c.And(c.Not(a), c.Var("c")),
	)
	return c, root
}

func TestDDNNFProbabilityBatchMatchesSerial(t *testing.T) {
	c, root := buildDDNNF()
	r := rand.New(rand.NewSource(41))
	for _, lanes := range []int{1, 3, 16} {
		ps := make([]logic.Prob, lanes)
		for i := range ps {
			ps[i] = logic.Prob{"a": r.Float64(), "b": r.Float64(), "c": r.Float64()}
		}
		got := c.DDNNFProbabilityBatch(root, ps)
		if len(got) != lanes {
			t.Fatalf("%d lanes in, %d out", lanes, len(got))
		}
		for i, p := range ps {
			want := c.DDNNFProbability(root, p)
			if math.Abs(got[i]-want) > 1e-15 {
				t.Errorf("lane %d: batch %v, serial %v", i, got[i], want)
			}
			exact := p.P("a")*p.P("b") + (1-p.P("a"))*p.P("c")
			if math.Abs(got[i]-exact) > 1e-12 {
				t.Errorf("lane %d: batch %v, closed form %v", i, got[i], exact)
			}
		}
	}
	if out := c.DDNNFProbabilityBatch(root, nil); out != nil {
		t.Errorf("empty batch returned %v", out)
	}
}
