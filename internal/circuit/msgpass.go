package circuit

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/logic"
	"repro/internal/treedec"
)

// MoralGraph returns the "moralized" gate graph of the circuit: one vertex
// per gate, with the scope of every gate ({gate} ∪ inputs) turned into a
// clique. A tree decomposition of this graph is exactly what sum-product
// message passing needs: every factor's scope fits in a bag.
func (c *Circuit) MoralGraph() *treedec.Graph {
	g := treedec.NewGraph(len(c.nodes))
	for i, n := range c.nodes {
		scope := make([]int, 0, len(n.inputs)+1)
		scope = append(scope, i)
		for _, in := range n.inputs {
			scope = append(scope, int(in))
		}
		g.AddClique(scope)
	}
	return g
}

// factor is a function over an ordered scope of gates; values indexes
// assignments by bitmask in scope order.
type factor struct {
	scope  []int
	values []float64
}

// Probability computes the exact probability that gate root evaluates to
// true when each event is drawn independently with the probabilities in p.
//
// If d is nil, a tree decomposition of the moralized gate graph is computed
// with the min-fill heuristic; callers that already hold a decomposition
// (e.g. the lineage constructions of internal/core, which emit one as a
// by-product per Theorem 2) should pass it to skip that step. The cost is
// O(#bags · 2^bagsize), i.e. exponential only in the decomposition width.
func (c *Circuit) Probability(root Gate, p logic.Prob, d *treedec.Decomposition) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if c.nodes[root].kind == KindConst {
		if c.nodes[root].value {
			return 1, nil
		}
		return 0, nil
	}
	moral := c.MoralGraph()
	if d == nil {
		d = treedec.Decompose(moral, treedec.MinFill)
	} else if err := d.Validate(moral); err != nil {
		return 0, fmt.Errorf("circuit: supplied decomposition invalid for moral graph: %w", err)
	}

	factors, err := c.buildFactors(root, p)
	if err != nil {
		return 0, err
	}
	total, err := sumProduct(d, len(c.nodes), factors)
	if err != nil {
		return 0, err
	}
	// Clamp floating noise.
	if total < 0 && total > -1e-9 {
		total = 0
	}
	if total > 1 && total < 1+1e-9 {
		total = 1
	}
	if total < 0 || total > 1 || math.IsNaN(total) {
		return 0, fmt.Errorf("circuit: message passing produced invalid probability %v", total)
	}
	return total, nil
}

// buildFactors creates one semantics factor per gate, a Bernoulli factor per
// variable gate, and the root indicator.
func (c *Circuit) buildFactors(root Gate, p logic.Prob) ([]factor, error) {
	var factors []factor
	for i, n := range c.nodes {
		switch n.kind {
		case KindConst:
			val := []float64{1, 0}
			if n.value {
				val = []float64{0, 1}
			}
			factors = append(factors, factor{scope: []int{i}, values: val})
		case KindVar:
			pe := p.P(n.event)
			factors = append(factors, factor{scope: []int{i}, values: []float64{1 - pe, pe}})
		case KindNot, KindAnd, KindOr:
			scope := make([]int, 0, len(n.inputs)+1)
			scope = append(scope, i)
			for _, in := range n.inputs {
				scope = append(scope, int(in))
			}
			if len(scope) > 24 {
				return nil, fmt.Errorf("circuit: gate %d has fan-in %d, too wide for tabulated factors", i, len(n.inputs))
			}
			nAssign := 1 << uint(len(scope))
			values := make([]float64, nAssign)
			for mask := 0; mask < nAssign; mask++ {
				out := mask&1 != 0
				want := c.gateSemantics(n, mask)
				if out == want {
					values[mask] = 1
				}
			}
			factors = append(factors, factor{scope: scope, values: values})
		}
	}
	// Root indicator: root must be true.
	factors = append(factors, factor{scope: []int{int(root)}, values: []float64{0, 1}})
	return factors, nil
}

// gateSemantics computes the intended output of gate n when its inputs take
// the values encoded in mask (bit i+1 is input i; bit 0 is the output).
func (c *Circuit) gateSemantics(n node, mask int) bool {
	inputVal := func(i int) bool { return mask&(1<<uint(i+1)) != 0 }
	switch n.kind {
	case KindNot:
		return !inputVal(0)
	case KindAnd:
		for i := range n.inputs {
			if !inputVal(i) {
				return false
			}
		}
		return true
	case KindOr:
		for i := range n.inputs {
			if inputVal(i) {
				return true
			}
		}
		return false
	}
	panic("circuit: gateSemantics on 0-input gate")
}

// sumProduct runs exact sum-product message passing over the tree
// decomposition d, whose bags range over vertices 0..n-1, and returns the
// total partition sum with every factor included exactly once.
//
// Position lookups use stamped slices instead of one map per bag, the tree
// is walked by an explicit-stack post-order instead of recursion, and
// membership tests binary-search sorted bag copies, so the pass allocates
// O(nodes) small slices rather than O(nodes) hash maps.
func sumProduct(d *treedec.Decomposition, n int, factors []factor) (float64, error) {
	nb := d.NumNodes()
	// pos[v] is the position of v in the bag being inspected, valid when
	// stamp[v] equals the current stamp value (one distinct value per bag, so
	// the arrays are never cleared).
	pos := make([]int, n)
	stamp := make([]int, n)
	for i := range stamp {
		stamp[i] = -1
	}
	sorted := make([][]int, nb) // sorted bag copies for membership tests
	for i, b := range d.Bags {
		if len(b) > 30 {
			return 0, fmt.Errorf("circuit: bag of size %d too large for bitmask enumeration", len(b))
		}
		sb := append([]int(nil), b...)
		sort.Ints(sb)
		sorted[i] = sb
	}
	inBag := func(bi, v int) bool {
		sb := sorted[bi]
		j := sort.SearchInts(sb, v)
		return j < len(sb) && sb[j] == v
	}
	fillPositions := func(bi int) {
		for j, v := range d.Bags[bi] {
			pos[v] = j
			stamp[v] = bi
		}
	}

	// Assign each factor to one bag containing its scope, scanning only the
	// bags of the factor's first scope vertex.
	bagsOf := make([][]int, n)
	for i, b := range d.Bags {
		for _, v := range b {
			bagsOf[v] = append(bagsOf[v], i)
		}
	}
	factorsAt := make([][]int, nb)
	for fi, f := range factors {
		home := -1
		for _, bi := range bagsOf[f.scope[0]] {
			ok := true
			for _, v := range f.scope[1:] {
				if !inBag(bi, v) {
					ok = false
					break
				}
			}
			if ok {
				home = bi
				break
			}
		}
		if home < 0 {
			return 0, fmt.Errorf("circuit: factor scope %v fits in no bag", f.scope)
		}
		factorsAt[home] = append(factorsAt[home], fi)
	}
	// Bernoulli factors of vertices appearing in multiple bags must count
	// once: the assignment above already picks a single home bag.

	children := d.Children()
	roots := d.Roots()

	// Iterative post-order over the forest.
	order := make([]int, 0, nb)
	stack := make([]int, 0, nb)
	for _, r := range roots {
		stack = append(stack, r)
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, t)
			stack = append(stack, children[t]...)
		}
	}
	// Reversing a preorder with children pushed in order gives a valid
	// post-order (children always precede their parent).
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}

	// messages[t] is the message from t to its parent: a table over the
	// separator (bag(t) ∩ bag(parent)), indexed by bitmask in separator
	// order.
	messages := make([][]float64, nb)
	separators := make([][]int, nb)

	type proj struct {
		values []float64
		bits   []int
	}
	var projs, fprojs []proj // reused across nodes
	var sepBits []int

	for _, t := range order {
		bag := d.Bags[t]
		nAssign := 1 << uint(len(bag))
		fillPositions(t)

		// Per-child separator projections: for an assignment mask over this
		// bag, the child message index.
		projs = projs[:0]
		for _, ch := range children[t] {
			sep := separators[ch]
			bits := make([]int, len(sep))
			for i, v := range sep {
				if stamp[v] != t {
					return 0, fmt.Errorf("circuit: separator vertex %d missing from parent bag", v)
				}
				bits[i] = pos[v]
			}
			projs = append(projs, proj{values: messages[ch], bits: bits})
		}
		// Factor projections for factors homed at t.
		fprojs = fprojs[:0]
		for _, fi := range factorsAt[t] {
			f := factors[fi]
			bits := make([]int, len(f.scope))
			for i, v := range f.scope {
				bits[i] = pos[v]
			}
			fprojs = append(fprojs, proj{values: f.values, bits: bits})
		}

		// Separator with the parent.
		parent := d.Parent[t]
		var sep []int
		sepBits = sepBits[:0]
		if parent >= 0 {
			for _, v := range bag {
				if inBag(parent, v) {
					sep = append(sep, v)
					sepBits = append(sepBits, pos[v])
				}
			}
		}
		out := make([]float64, 1<<uint(len(sep)))

		for mask := 0; mask < nAssign; mask++ {
			w := 1.0
			for _, fp := range fprojs {
				idx := 0
				for i, b := range fp.bits {
					if mask&(1<<uint(b)) != 0 {
						idx |= 1 << uint(i)
					}
				}
				w *= fp.values[idx]
				if w == 0 {
					break
				}
			}
			if w != 0 {
				for _, cp := range projs {
					idx := 0
					for i, b := range cp.bits {
						if mask&(1<<uint(b)) != 0 {
							idx |= 1 << uint(i)
						}
					}
					w *= cp.values[idx]
					if w == 0 {
						break
					}
				}
			}
			if w == 0 {
				continue
			}
			sidx := 0
			for i, b := range sepBits {
				if mask&(1<<uint(b)) != 0 {
					sidx |= 1 << uint(i)
				}
			}
			out[sidx] += w
		}
		messages[t] = out
		separators[t] = sep
	}

	total := 1.0
	for _, r := range roots {
		// Root message is over the empty separator: a single number.
		total *= messages[r][0]
	}
	return total, nil
}

// Possible reports whether some valuation makes root true. For monotone
// circuits this is a single evaluation with every event true; otherwise it
// falls back to a probability computation with uniform probabilities.
func (c *Circuit) Possible(root Gate, d *treedec.Decomposition) (bool, error) {
	if c.Monotone() {
		v := logic.Valuation{}
		for _, e := range c.Events() {
			v[e] = true
		}
		return c.Eval(root, v), nil
	}
	pr, err := c.Probability(root, uniformProb(c), d)
	if err != nil {
		return false, err
	}
	return pr > 1e-15, nil
}

// Certain reports whether every valuation makes root true. For monotone
// circuits this is a single evaluation with every event false; otherwise it
// falls back to a probability computation with uniform probabilities.
func (c *Circuit) Certain(root Gate, d *treedec.Decomposition) (bool, error) {
	if c.Monotone() {
		v := logic.Valuation{}
		for _, e := range c.Events() {
			v[e] = false
		}
		return c.Eval(root, v), nil
	}
	pr, err := c.Probability(root, uniformProb(c), d)
	if err != nil {
		return false, err
	}
	return pr > 1-1e-12, nil
}

func uniformProb(c *Circuit) logic.Prob {
	p := logic.Prob{}
	for _, e := range c.Events() {
		p[e] = 0.5
	}
	return p
}
