// Package cond implements conditioning of uncertain data (Section 4):
// revising a pc-instance to force the outcome of probabilistic events or
// the presence of facts after new observations, and choosing which question
// to ask next (e.g. to a crowd) to reduce uncertainty fastest.
//
// Conditioning on an event valuation is cheap and stays inside the
// pc-instance formalism (substitute and renormalize). Conditioning on a
// fact observation is harder — the paper notes that forcing an arbitrary
// annotation is not expressible as a pc-instance — so it is represented
// intensionally by a Conditioned value carrying a global constraint
// formula; probabilities are posteriors P(q ∧ constraint)/P(constraint),
// computed either by enumeration or tractably through internal/core by
// materializing the constraint as an observation fact.
package cond

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// ErrZeroEvidence is returned by every conditioning path — enumeration,
// prepared posterior, batched sweeps, question ranking — when the evidence
// being conditioned on has probability zero: the posterior
// P(q ∧ obs)/P(obs) is undefined. Callers distinguish it with errors.Is;
// batched paths surface it per lane inside a core.LaneErrors so the other
// lanes of a sweep keep their values.
var ErrZeroEvidence = errors.New("cond: conditioning on zero-probability evidence")

// ConditionOnEvent returns the pc-instance conditioned on event e having
// the given value: e is substituted in every annotation and removed from the
// probability map. Facts whose annotation becomes false are dropped; facts
// whose annotation becomes true become certain.
func ConditionOnEvent(c *pdb.CInstance, p logic.Prob, e logic.Event, value bool) (*pdb.CInstance, logic.Prob) {
	out := pdb.NewCInstance()
	for i := 0; i < c.NumFacts(); i++ {
		ann := logic.Restrict(c.Ann[i], e, value)
		if v, isConst := logic.IsConst(ann); isConst && !v {
			continue
		}
		out.Add(c.Inst.Fact(i), ann)
	}
	np := logic.Prob{}
	for ev, pr := range p {
		if ev != e {
			np[ev] = pr
		}
	}
	return out, np
}

// Conditioned is a pc-instance together with a global observation
// constraint: its possible worlds are those of the pc-instance whose
// valuation satisfies the constraint, re-weighted by the posterior.
type Conditioned struct {
	C          *pdb.CInstance
	P          logic.Prob
	Constraint logic.Formula
}

// NewConditioned wraps an unconditioned pc-instance.
func NewConditioned(c *pdb.CInstance, p logic.Prob) *Conditioned {
	return &Conditioned{C: c, P: p, Constraint: logic.True}
}

// ObserveFact returns a new Conditioned with the additional observation
// that fact f is present (or absent): its annotation (or negation) joins
// the constraint. The fact must be a candidate fact of the instance.
func (cd *Conditioned) ObserveFact(f rel.Fact, present bool) (*Conditioned, error) {
	i := cd.C.Inst.IndexOf(f)
	if i < 0 {
		return nil, fmt.Errorf("cond: fact %s is not a candidate fact", f)
	}
	obs := cd.C.Ann[i]
	if !present {
		obs = logic.Not(obs)
	}
	return &Conditioned{C: cd.C, P: cd.P, Constraint: logic.And(cd.Constraint, obs)}, nil
}

// ObserveEvent returns a new Conditioned with event e forced to value.
// Unlike ConditionOnEvent it keeps the instance intact and extends the
// constraint, so it composes with fact observations.
func (cd *Conditioned) ObserveEvent(e logic.Event, value bool) *Conditioned {
	lit := logic.Formula(logic.Var(e))
	if !value {
		lit = logic.Not(lit)
	}
	return &Conditioned{C: cd.C, P: cd.P, Constraint: logic.And(cd.Constraint, lit)}
}

// ConstraintProbability returns P(constraint): the normalizing mass.
func (cd *Conditioned) ConstraintProbability() float64 {
	return logic.Probability(cd.Constraint, cd.P)
}

// ProbabilityEnumeration computes the posterior P(q | constraint) by full
// enumeration (baseline).
func (cd *Conditioned) ProbabilityEnumeration(q rel.CQ) (float64, error) {
	events := logic.SortEvents(append(cd.C.Events(), logic.Vars(cd.Constraint)...))
	events = dedupEvents(events)
	num, den := 0.0, 0.0
	logic.EnumerateValuations(events, func(v logic.Valuation) {
		if !cd.Constraint.Eval(v) {
			return
		}
		pv := cd.P.ProbOfValuation(events, v)
		den += pv
		if q.Holds(cd.C.World(v)) {
			num += pv
		}
	})
	if den == 0 {
		return 0, ErrZeroEvidence
	}
	return num / den, nil
}

// PosteriorPlan is a compiled posterior query: the numerator and
// denominator plans of P(q | constraint) = P(q ∧ obs) / P(obs), prepared
// once and evaluable under any event probability map. Like core.Plan it is
// single-goroutine until Freeze, after which concurrent Probability and
// ProbabilityBatch calls are safe.
type PosteriorPlan struct {
	num *core.Plan
	den *core.Plan
}

// Freeze seals both underlying plans for concurrent use (see
// core.(*Plan).Freeze).
func (pp *PosteriorPlan) Freeze() error {
	if err := pp.num.Freeze(); err != nil {
		return err
	}
	return pp.den.Freeze()
}

// PreparePosterior compiles the posterior P(q | constraint) through the
// tractable engine of internal/core: the constraint is materialized as an
// observation fact obs(w) on a fresh element, so that
// P(q | φ) = P(q ∧ obs) / P(obs), both evaluated by the Theorem 2
// algorithm. The observation fact's annotation mentions all constraint
// events, so conditioning on observations that span the whole instance can
// raise the joint width — the structural price of conditioning the paper
// asks about.
func (cd *Conditioned) PreparePosterior(q rel.CQ, opts core.Options) (*PosteriorPlan, error) {
	withObs := pdb.NewCInstance()
	for i := 0; i < cd.C.NumFacts(); i++ {
		withObs.Add(cd.C.Inst.Fact(i), cd.C.Ann[i])
	}
	withObs.AddFact(cd.Constraint, "obs__", "w")
	obsAtom := rel.NewAtom("obs__", rel.C("w"))
	den, err := core.PrepareCQ(withObs, rel.NewCQ(obsAtom), opts)
	if err != nil {
		return nil, err
	}
	qAndObs := rel.NewCQ(append(append([]rel.Atom{}, q.Atoms...), obsAtom)...)
	num, err := core.PrepareCQ(withObs, qAndObs, opts)
	if err != nil {
		return nil, err
	}
	return &PosteriorPlan{num: num, den: den}, nil
}

// Probability evaluates the posterior under the event probabilities p.
func (pp *PosteriorPlan) Probability(p logic.Prob) (float64, error) {
	den, err := pp.den.Probability(p)
	if err != nil {
		return 0, err
	}
	if den == 0 {
		return 0, ErrZeroEvidence
	}
	num, err := pp.num.Probability(p)
	if err != nil {
		return 0, err
	}
	return num / den, nil
}

// ProbabilityBatch evaluates the posterior under every probability map of ps
// in one pass per plan: the numerator and denominator dynamic programs each
// run once, carrying one weight lane per assignment (see
// core.(*Plan).ProbabilityBatch). This is the fast path for posterior
// sweeps — ranking observations across many parameter settings, or
// sensitivity analysis on a conditioned instance.
//
// Lanes fail independently, mirroring core.(*Plan).ProbabilityBatch: a lane
// whose probability map is invalid comes back NaN under a core.LaneErrors
// (the union of the numerator's and denominator's lane failures) while the
// other lanes of the sweep keep their values. A lane whose parameters give
// the observation zero probability has an undefined posterior: its value is
// 0 (never NaN, so downstream numeric code is not poisoned) and its lane
// error is ErrZeroEvidence — the same typed error the serial Probability
// call returns.
func (pp *PosteriorPlan) ProbabilityBatch(ps []logic.Prob) ([]float64, error) {
	dens, err := pp.den.ProbabilityBatch(ps)
	denErrs, ok := err.(core.LaneErrors)
	if err != nil && !ok {
		return nil, err
	}
	nums, err := pp.num.ProbabilityBatch(ps)
	numErrs, ok := err.(core.LaneErrors)
	if err != nil && !ok {
		return nil, err
	}
	out := make([]float64, len(ps))
	var lerrs []error
	for i, den := range dens {
		var laneErr error
		if denErrs != nil && denErrs[i] != nil {
			laneErr = denErrs[i]
		} else if numErrs != nil && numErrs[i] != nil {
			laneErr = numErrs[i]
		}
		if laneErr != nil {
			if lerrs == nil {
				lerrs = make([]error, len(ps))
			}
			lerrs[i] = laneErr
			out[i] = math.NaN()
			continue
		}
		if den == 0 {
			if lerrs == nil {
				lerrs = make([]error, len(ps))
			}
			lerrs[i] = ErrZeroEvidence
			out[i] = 0
			continue
		}
		out[i] = nums[i] / den
	}
	if lerrs != nil {
		return out, core.LaneErrors(lerrs)
	}
	return out, nil
}

// Probability computes the posterior P(q | constraint) through the
// tractable engine: the one-shot form of PreparePosterior. Callers that ask
// repeatedly (greedy question ranking, crowd loops) should prepare once and
// evaluate per request.
func (cd *Conditioned) Probability(q rel.CQ, opts core.Options) (float64, error) {
	pp, err := cd.PreparePosterior(q, opts)
	if err != nil {
		return 0, err
	}
	return pp.Probability(cd.P)
}

func dedupEvents(events []logic.Event) []logic.Event {
	out := events[:0]
	var prev logic.Event
	for i, e := range events {
		if i == 0 || e != prev {
			out = append(out, e)
		}
		prev = e
	}
	return out
}

// Question is a candidate crowd question: the truth value of one event.
type Question struct {
	Event logic.Event
	// Gain is the expected reduction in the entropy of the query answer if
	// the question is asked (mutual information between answer and event).
	Gain float64
}

// binaryEntropy returns H(p) in bits.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// RankQuestions scores every event by the expected entropy reduction of the
// query answer and returns the candidates sorted by decreasing gain. This
// is the greedy value-of-information policy for choosing what to ask the
// crowd next.
func (cd *Conditioned) RankQuestions(q rel.CQ) ([]Question, error) {
	base, err := cd.ProbabilityEnumeration(q)
	if err != nil {
		return nil, err
	}
	h0 := binaryEntropy(base)
	var out []Question
	for _, e := range cd.C.Events() {
		// P(e | constraint).
		pe := logic.Probability(logic.And(cd.Constraint, logic.Var(e)), cd.P)
		pc := cd.ConstraintProbability()
		if pc == 0 {
			return nil, ErrZeroEvidence
		}
		peCond := pe / pc
		gain := h0
		if peCond > 0 {
			pq, err := cd.ObserveEvent(e, true).ProbabilityEnumeration(q)
			if err != nil {
				return nil, err
			}
			gain -= peCond * binaryEntropy(pq)
		}
		if peCond < 1 {
			pq, err := cd.ObserveEvent(e, false).ProbabilityEnumeration(q)
			if err != nil {
				return nil, err
			}
			gain -= (1 - peCond) * binaryEntropy(pq)
		}
		out = append(out, Question{Event: e, Gain: gain})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gain != out[j].Gain {
			return out[i].Gain > out[j].Gain
		}
		return out[i].Event < out[j].Event
	})
	return out, nil
}

// Oracle answers questions from a hidden ground-truth valuation — the
// simulated crowd worker.
type Oracle struct {
	Truth logic.Valuation
}

// Answer returns the truth value of e.
func (o *Oracle) Answer(e logic.Event) bool { return o.Truth.Get(e) }

// ResolveResult reports one step of the interactive resolution loop.
type ResolveResult struct {
	Questions []logic.Event // events asked, in order
	Posterior float64       // final P(q | answers)
}

// ResolveGreedy repeatedly asks the highest-gain question, integrates the
// oracle's answer by conditioning, and stops when the query answer is
// certain (posterior 0 or 1) or maxQuestions is reached. It returns the
// questions asked and the final posterior — the iterative crowd scenario of
// Section 4.
func (cd *Conditioned) ResolveGreedy(q rel.CQ, oracle *Oracle, maxQuestions int) (*ResolveResult, error) {
	res := &ResolveResult{}
	cur := cd
	for len(res.Questions) < maxQuestions {
		p, err := cur.ProbabilityEnumeration(q)
		if err != nil {
			return nil, err
		}
		res.Posterior = p
		if p < 1e-12 || p > 1-1e-12 {
			return res, nil
		}
		ranked, err := cur.RankQuestions(q)
		if err != nil {
			return nil, err
		}
		if len(ranked) == 0 || ranked[0].Gain <= 1e-12 {
			return res, nil
		}
		e := ranked[0].Event
		cur = cur.ObserveEvent(e, oracle.Answer(e))
		res.Questions = append(res.Questions, e)
	}
	p, err := cur.ProbabilityEnumeration(q)
	if err != nil {
		return nil, err
	}
	res.Posterior = p
	return res, nil
}
