package cond

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// table1 builds the paper's Table 1 c-instance with P(pods), P(stoc).
func table1() (*pdb.CInstance, logic.Prob) {
	pods := logic.Var("pods")
	stoc := logic.Var("stoc")
	c := pdb.NewCInstance()
	c.AddFact(pods, "Trip", "CDG", "MEL")
	c.AddFact(logic.And(pods, logic.Not(stoc)), "Trip", "MEL", "CDG")
	c.AddFact(logic.And(pods, stoc), "Trip", "MEL", "PDX")
	c.AddFact(logic.And(logic.Not(pods), stoc), "Trip", "CDG", "PDX")
	c.AddFact(stoc, "Trip", "PDX", "CDG")
	return c, logic.Prob{"pods": 0.7, "stoc": 0.4}
}

func TestConditionOnEvent(t *testing.T) {
	c, p := table1()
	// Condition on pods = true: the CDG->MEL trip becomes certain, the
	// CDG->PDX trip (needs !pods) disappears.
	c2, p2 := ConditionOnEvent(c, p, "pods", true)
	if c2.NumFacts() != 4 {
		t.Errorf("facts after conditioning = %d, want 4", c2.NumFacts())
	}
	i := c2.Inst.IndexOf(rel.NewFact("Trip", "CDG", "MEL"))
	if i < 0 {
		t.Fatal("CDG->MEL missing")
	}
	if v, isConst := logic.IsConst(c2.Ann[i]); !isConst || !v {
		t.Errorf("CDG->MEL should be certain, ann = %s", logic.String(c2.Ann[i]))
	}
	if _, ok := p2["pods"]; ok {
		t.Error("pods should be dropped from the probability map")
	}
	// Probabilities agree with the posterior semantics.
	q := rel.NewCQ(rel.NewAtom("Trip", rel.C("MEL"), rel.V("x")))
	got := c2.QueryProbabilityEnumeration(q, p2)
	want, err := NewConditioned(c, p).ObserveEvent("pods", true).ProbabilityEnumeration(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("substitution %v vs constraint %v", got, want)
	}
}

func TestObserveFactPosterior(t *testing.T) {
	c, p := table1()
	cd := NewConditioned(c, p)
	// Observe that the MEL->PDX trip is booked: then pods ∧ stoc, so the
	// PDX->CDG return (ann stoc) is certain.
	cd2, err := cd.ObserveFact(rel.NewFact("Trip", "MEL", "PDX"), true)
	if err != nil {
		t.Fatal(err)
	}
	q := rel.NewCQ(rel.NewAtom("Trip", rel.C("PDX"), rel.C("CDG")))
	got, err := cd2.ProbabilityEnumeration(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("P(return | MEL->PDX) = %v, want 1", got)
	}
	// Prior is lower.
	prior, err := cd.ProbabilityEnumeration(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prior-0.4) > 1e-12 {
		t.Errorf("prior = %v, want 0.4", prior)
	}
}

func TestObserveFactAbsent(t *testing.T) {
	c, p := table1()
	cd := NewConditioned(c, p)
	// Observe CDG->MEL NOT booked: pods is false, so P(MEL->CDG) = 0.
	cd2, err := cd.ObserveFact(rel.NewFact("Trip", "CDG", "MEL"), false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cd2.ProbabilityEnumeration(rel.NewCQ(rel.NewAtom("Trip", rel.C("MEL"), rel.C("CDG"))))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("P = %v, want 0", got)
	}
}

func TestObserveUnknownFactErrors(t *testing.T) {
	c, p := table1()
	if _, err := NewConditioned(c, p).ObserveFact(rel.NewFact("Trip", "X", "Y"), true); err == nil {
		t.Error("expected error")
	}
}

func TestZeroProbabilityObservation(t *testing.T) {
	c := pdb.NewCInstance()
	c.AddFact(logic.And(logic.Var("e"), logic.Not(logic.Var("e"))), "R", "a")
	cd := NewConditioned(c, logic.Prob{"e": 0.5})
	cd2, err := cd.ObserveFact(rel.NewFact("R", "a"), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cd2.ProbabilityEnumeration(rel.NewCQ(rel.NewAtom("R", rel.V("x")))); !errors.Is(err, ErrZeroEvidence) {
		t.Errorf("err = %v, want ErrZeroEvidence", err)
	}
}

// TestZeroEvidenceUnified: every conditioning path reports zero-probability
// evidence as the same typed ErrZeroEvidence — enumeration, the prepared
// posterior, and question ranking.
func TestZeroEvidenceUnified(t *testing.T) {
	c, p := table1()
	// Observing MEL->PDX requires pods ∧ stoc; zeroing pods kills it.
	cd, err := NewConditioned(c, p).ObserveFact(rel.NewFact("Trip", "MEL", "PDX"), true)
	if err != nil {
		t.Fatal(err)
	}
	zeroP := logic.Prob{"pods": 0, "stoc": 0.4}
	cdZero := &Conditioned{C: cd.C, P: zeroP, Constraint: cd.Constraint}
	q := rel.NewCQ(rel.NewAtom("Trip", rel.C("PDX"), rel.C("CDG")))

	if _, err := cdZero.ProbabilityEnumeration(q); !errors.Is(err, ErrZeroEvidence) {
		t.Errorf("enumeration err = %v, want ErrZeroEvidence", err)
	}
	pp, err := cd.PreparePosterior(q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Probability(zeroP); !errors.Is(err, ErrZeroEvidence) {
		t.Errorf("posterior err = %v, want ErrZeroEvidence", err)
	}
	if _, err := cdZero.RankQuestions(q); !errors.Is(err, ErrZeroEvidence) {
		t.Errorf("ranked-gain err = %v, want ErrZeroEvidence", err)
	}
	if _, err := cdZero.Probability(q, core.Options{}); !errors.Is(err, ErrZeroEvidence) {
		t.Errorf("one-shot posterior err = %v, want ErrZeroEvidence", err)
	}
}

func TestTractablePosteriorMatchesEnumeration(t *testing.T) {
	c, p := table1()
	cd, err := NewConditioned(c, p).ObserveFact(rel.NewFact("Trip", "PDX", "CDG"), true)
	if err != nil {
		t.Fatal(err)
	}
	q := rel.NewCQ(rel.NewAtom("Trip", rel.V("x"), rel.C("PDX")))
	want, err := cd.ProbabilityEnumeration(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cd.Probability(q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("engine %v, enumeration %v", got, want)
	}
}

// TestPosteriorPlanBatchSweep checks the batched posterior sweep: a frozen
// PosteriorPlan evaluated under many probability maps at once must agree
// with per-map serial evaluation and with the enumeration oracle.
func TestPosteriorPlanBatchSweep(t *testing.T) {
	c, p := table1()
	cd, err := NewConditioned(c, p).ObserveFact(rel.NewFact("Trip", "PDX", "CDG"), true)
	if err != nil {
		t.Fatal(err)
	}
	q := rel.NewCQ(rel.NewAtom("Trip", rel.V("x"), rel.C("PDX")))
	pp, err := cd.PreparePosterior(q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pp.Freeze(); err != nil {
		t.Fatal(err)
	}
	// 64 lanes: a full kernel block through both underlying frozen plans.
	var ps []logic.Prob
	for i := 0; i < 64; i++ {
		ps = append(ps, logic.Prob{"pods": float64(i+1) / 65, "stoc": 0.4})
	}
	got, err := pp.ProbabilityBatch(ps)
	if err != nil {
		t.Fatal(err)
	}
	for i, pi := range ps {
		serial, err := pp.Probability(pi)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[i]-serial) > 1e-12 {
			t.Errorf("lane %d: batch %v, serial %v", i, got[i], serial)
		}
		want, err := (&Conditioned{C: cd.C, P: pi, Constraint: cd.Constraint}).ProbabilityEnumeration(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[i]-want) > 1e-9 {
			t.Errorf("lane %d: batch %v, enumeration %v", i, got[i], want)
		}
	}
}

// TestPosteriorPlanBatchZeroProbabilityLane: a lane that drives the
// observation to probability zero comes back 0 (NaN-free) with an
// ErrZeroEvidence lane error, without poisoning the other lanes of the
// sweep.
func TestPosteriorPlanBatchZeroProbabilityLane(t *testing.T) {
	c, p := table1()
	// Observing Trip(MEL,PDX) requires pods ∧ stoc: pods=0 zeroes it out.
	cd, err := NewConditioned(c, p).ObserveFact(rel.NewFact("Trip", "MEL", "PDX"), true)
	if err != nil {
		t.Fatal(err)
	}
	q := rel.NewCQ(rel.NewAtom("Trip", rel.C("PDX"), rel.C("CDG")))
	pp, err := cd.PreparePosterior(q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pp.ProbabilityBatch([]logic.Prob{
		{"pods": 0.7, "stoc": 0.4},
		{"pods": 0, "stoc": 0.4}, // zero-probability observation
		{"pods": 0.2, "stoc": 0.9},
	})
	le, ok := err.(core.LaneErrors)
	if !ok {
		t.Fatalf("err = %v, want core.LaneErrors", err)
	}
	if !errors.Is(le[1], ErrZeroEvidence) || le[0] != nil || le[2] != nil {
		t.Fatalf("lane errors %v, want ErrZeroEvidence on lane 1 only", []error(le))
	}
	if math.IsNaN(got[1]) || got[1] != 0 {
		t.Errorf("degenerate lane = %v, want NaN-free 0", got[1])
	}
	for _, i := range []int{0, 2} {
		if math.IsNaN(got[i]) || math.Abs(got[i]-1) > 1e-9 {
			t.Errorf("lane %d = %v, want 1 (observation entails the return trip)", i, got[i])
		}
	}
}

func TestRankQuestionsPrefersDecisiveEvent(t *testing.T) {
	// Query depends only on event a; b is irrelevant noise.
	c := pdb.NewCInstance()
	c.AddFact(logic.Var("a"), "R", "x")
	c.AddFact(logic.Var("b"), "S", "y")
	cd := NewConditioned(c, logic.Prob{"a": 0.5, "b": 0.5})
	q := rel.NewCQ(rel.NewAtom("R", rel.V("v")))
	ranked, err := cd.RankQuestions(q)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Event != "a" {
		t.Errorf("best question = %v, want a", ranked[0])
	}
	if ranked[0].Gain < 0.99 { // resolves a fair coin: gain = 1 bit
		t.Errorf("gain = %v, want ~1", ranked[0].Gain)
	}
	// b gains nothing.
	for _, qu := range ranked {
		if qu.Event == "b" && qu.Gain > 1e-9 {
			t.Errorf("irrelevant event has gain %v", qu.Gain)
		}
	}
}

func TestResolveGreedyReachesCertainty(t *testing.T) {
	c, p := table1()
	cd := NewConditioned(c, p)
	q := rel.NewCQ(rel.NewAtom("Trip", rel.C("MEL"), rel.C("PDX")))
	oracle := &Oracle{Truth: logic.Valuation{"pods": true, "stoc": true}}
	res, err := cd.ResolveGreedy(q, oracle, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Posterior-1) > 1e-12 {
		t.Errorf("posterior = %v, want 1", res.Posterior)
	}
	if len(res.Questions) == 0 || len(res.Questions) > 2 {
		t.Errorf("asked %d questions, want 1-2", len(res.Questions))
	}
}

func TestResolveGreedyNegativeCase(t *testing.T) {
	c, p := table1()
	cd := NewConditioned(c, p)
	q := rel.NewCQ(rel.NewAtom("Trip", rel.C("MEL"), rel.C("PDX")))
	oracle := &Oracle{Truth: logic.Valuation{"pods": false, "stoc": true}}
	res, err := cd.ResolveGreedy(q, oracle, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Posterior > 1e-12 {
		t.Errorf("posterior = %v, want 0", res.Posterior)
	}
}

// TestPosteriorPlanBatchLaneErrors: an invalid probability map fails only
// its own lane, surfacing as a core.LaneErrors with NaN in that slot.
func TestPosteriorPlanBatchLaneErrors(t *testing.T) {
	c, p := table1()
	cd, err := NewConditioned(c, p).ObserveFact(rel.NewFact("Trip", "MEL", "PDX"), true)
	if err != nil {
		t.Fatal(err)
	}
	q := rel.NewCQ(rel.NewAtom("Trip", rel.C("PDX"), rel.C("CDG")))
	pp, err := cd.PreparePosterior(q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pp.ProbabilityBatch([]logic.Prob{
		{"pods": 0.7, "stoc": 0.4},
		{"pods": 1.5, "stoc": 0.4}, // invalid lane
	})
	le, ok := err.(core.LaneErrors)
	if !ok {
		t.Fatalf("error %v (%T), want core.LaneErrors", err, err)
	}
	if le[0] != nil || le[1] == nil {
		t.Fatalf("lane errors %v, want only lane 1", []error(le))
	}
	if !math.IsNaN(got[1]) {
		t.Errorf("invalid lane = %v, want NaN", got[1])
	}
	if math.IsNaN(got[0]) || math.Abs(got[0]-1) > 1e-9 {
		t.Errorf("healthy lane poisoned: %v", got[0])
	}
}
