package core

import (
	"fmt"
	"math"

	"repro/internal/core/kernel"
	"repro/internal/logic"
	"repro/internal/treedec"
)

// LaneErrors reports per-lane failures of a batched evaluation: entry i is
// the error of lane i, nil for lanes that evaluated fine. A batch whose
// error is a LaneErrors still carries valid probabilities for the healthy
// lanes (failed lanes hold NaN), so one bad assignment in a sweep does not
// poison the others.
type LaneErrors []error

func (le LaneErrors) Error() string {
	n, first := 0, ""
	for i, err := range le {
		if err == nil {
			continue
		}
		if n == 0 {
			first = fmt.Sprintf("lane %d: %v", i, err)
		}
		n++
	}
	if n <= 1 {
		return "core: " + first
	}
	return fmt.Sprintf("core: %d of %d lanes failed (%s, ...)", n, len(le), first)
}

// Failed reports whether lane i carries an error.
func (le LaneErrors) Failed(i int) bool { return le[i] != nil }

// sanitizeLanes validates every lane of ps. Invalid lanes are recorded in the
// returned error slice (nil when every lane is valid) and replaced by an
// empty map — the default-0.5 weights — so the shared dynamic program stays
// finite; their outputs are overwritten with NaN afterwards.
func sanitizeLanes(ps []logic.Prob) ([]logic.Prob, []error) {
	var errs []error
	clean := ps
	for i, p := range ps {
		if err := p.Validate(); err == nil {
			continue
		} else {
			if errs == nil {
				errs = make([]error, len(ps))
				clean = append([]logic.Prob(nil), ps...)
			}
			errs[i] = err
			clean[i] = logic.Prob{}
		}
	}
	return clean, errs
}

// laneError converts a per-lane error slice into a single error value: nil
// when no lane failed, a LaneErrors otherwise.
func laneError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return LaneErrors(errs)
		}
	}
	return nil
}

// allLanesNaN reports whether every lane failed validation and, if so,
// returns the all-NaN output — the batch paths skip the dynamic program
// entirely when no lane could produce a value.
func allLanesNaN(errs []error) []float64 {
	if errs == nil {
		return nil
	}
	for _, err := range errs {
		if err == nil {
			return nil
		}
	}
	out := make([]float64, len(errs))
	for l := range out {
		out[l] = math.NaN()
	}
	return out
}

// batchTable is the multi-lane form of a row table, used on unfrozen plans
// (frozen plans run the compiled row program instead — see rowprog.go): rows
// are indexed by the same structural keys as the serial DP, but each row
// carries one weight per lane (per probability assignment), stored
// contiguously in vals with lane stride B. Keeping the lanes flat lets the
// inner loops run as kernel calls over adjacent memory.
type batchTable struct {
	idx  map[rowKey]int32
	vals []float64
}

// slot returns the lane vector of row k, creating a zeroed one if absent.
// The returned slice is invalidated by the next slot call that inserts
// (vals may be reallocated), so callers use it immediately.
func (bt *batchTable) slot(k rowKey, lanes int) []float64 {
	if i, ok := bt.idx[k]; ok {
		off := int(i) * lanes
		return bt.vals[off : off+lanes]
	}
	bt.idx[k] = int32(len(bt.idx))
	off := len(bt.vals)
	for j := 0; j < lanes; j++ {
		bt.vals = append(bt.vals, 0)
	}
	return bt.vals[off : off+lanes]
}

func (bt *batchTable) lanesOf(i int32, lanes int) []float64 {
	off := int(i) * lanes
	return bt.vals[off : off+lanes]
}

func (st *evalState) allocBatch(hint int) *batchTable {
	if n := len(st.freeBatch); n > 0 {
		bt := st.freeBatch[n-1]
		st.freeBatch = st.freeBatch[:n-1]
		clear(bt.idx)
		bt.vals = bt.vals[:0]
		return bt
	}
	return &batchTable{idx: make(map[rowKey]int32, hint)}
}

func (st *evalState) releaseBatch(bt *batchTable) {
	st.freeBatch = append(st.freeBatch, bt)
}

// ProbabilityBatch evaluates the plan under B = len(ps) event probability
// maps in one pass and returns the B exact query probabilities, out[i]
// matching what Probability(ps[i]) returns (up to float summation order).
//
// The dynamic program's row structure — table keys, transitions, set
// interning — depends only on the compiled plan, never on the probabilities,
// so the batch path runs it once and carries a weight lane per assignment
// through every row. On a frozen plan the whole pass runs the compiled row
// program: dense lane blocks driven through the kernel primitives, with no
// map traffic at all, so the per-assignment cost of a parameter sweep
// collapses to a handful of float operations per row.
//
// Lanes fail independently: an invalid probability map, or a per-lane mass
// drift, marks only that lane. When any lane fails, the returned error is a
// LaneErrors whose i-th entry explains lane i (nil for healthy lanes), the
// failed lanes' outputs are NaN, and every other lane's probability is still
// valid. The error is non-nil only when at least one lane failed.
//
// Safe for concurrent calls once the plan is frozen (see Freeze).
//
//pdblint:frozenentry
func (pl *Plan) ProbabilityBatch(ps []logic.Prob) ([]float64, error) {
	B := len(ps)
	if B == 0 {
		return nil, nil
	}
	st := pl.getState()
	defer pl.putState(st)
	// Validation is fused into the weight fill: one pass over each lane's
	// map both checks and scatters it.
	pe, lerrs := pl.fillLaneWeightsChecked(st, ps)
	if nan := allLanesNaN(lerrs); nan != nil {
		return nan, LaneErrors(lerrs)
	}
	out := make([]float64, B)
	totals := make([]float64, B)
	if pl.prog != nil {
		root := pl.runBatchProg(st, pe, B)
		for i, set := range pl.prog.rootSets {
			v := root[i*B : i*B+B]
			kernel.AddTo(totals, v)
			if pl.accept[set] {
				kernel.AddTo(out, v)
			}
		}
		st.arena.Put(root)
	} else {
		root := pl.runBatchDP(st, pe, B)
		for k, i := range root.idx {
			v := root.lanesOf(i, B)
			kernel.AddTo(totals, v)
			if pl.accept[k.set] {
				kernel.AddTo(out, v)
			}
		}
		st.releaseBatch(root)
	}
	finishLanes(out, totals, &lerrs)
	return out, laneError(lerrs)
}

// finishLanes applies the shared per-lane epilogue of every batch path: NaN
// for lanes already failed, the massEps drift check (recorded per lane), and
// clamping of floating noise on healthy lanes. lerrs is allocated on first
// failure.
func finishLanes(out, totals []float64, lerrs *[]error) {
	for l, total := range totals {
		if *lerrs != nil && (*lerrs)[l] != nil {
			out[l] = math.NaN()
			continue
		}
		if massDrifted(total) {
			if *lerrs == nil {
				*lerrs = make([]error, len(out))
			}
			(*lerrs)[l] = errMassDrift(total)
			out[l] = math.NaN()
			continue
		}
		// Clamp floating noise.
		if out[l] < 0 {
			out[l] = 0
		}
		if out[l] > 1 {
			out[l] = 1
		}
	}
}

// runBatchDP executes the multi-lane dynamic program over map-keyed tables
// under the lane-major weight matrix pe (as filled by fillLaneWeights; B
// lanes) and returns the root batch table, whose ownership passes to the
// caller (release it back into st). It is the unfrozen fallback of the
// batch path; frozen plans run the compiled row program (runBatchProg)
// instead. Facts are fused into the row keys (factRemap) and joins merge
// bits-sorted runs, mirroring the scalar computeNode.
//
//pdblint:hotpath -maprange
func (pl *Plan) runBatchDP(st *evalState, pe []float64, B int) *batchTable {
	if len(st.btables) < len(pl.nodes) {
		st.btables = make([]*batchTable, len(pl.nodes))
	}
	tables := st.btables

	for _, t := range pl.post {
		nd := &pl.nodes[t]
		var tab *batchTable
		switch nd.kind {
		case treedec.NiceLeaf:
			tab = st.allocBatch(1)
			kernel.Fill(tab.slot(pl.factRemap(nd, rowKey{set: pl.startSet}), B), 1)

		case treedec.NiceIntroduce:
			child := tables[nd.child0]
			tables[nd.child0] = nil
			tab = st.allocBatch(2 * len(child.idx))
			if nd.isEvent {
				pos := nd.pos
				for k, i := range child.idx {
					v := child.lanesOf(i, B)
					kernel.AddTo(tab.slot(pl.factRemap(nd, rowKey{set: k.set, bits: insertBit(k.bits, pos, false)}), B), v)
					kernel.AddTo(tab.slot(pl.factRemap(nd, rowKey{set: k.set, bits: insertBit(k.bits, pos, true)}), B), v)
				}
			} else {
				for k, i := range child.idx {
					kernel.AddTo(tab.slot(pl.factRemap(nd, rowKey{set: pl.introduceSet(k.set, nd.vertex), bits: k.bits}), B), child.lanesOf(i, B))
				}
			}
			st.releaseBatch(child)

		case treedec.NiceForget:
			child := tables[nd.child0]
			tables[nd.child0] = nil
			tab = st.allocBatch(len(child.idx))
			if nd.isEvent {
				pos := nd.pos
				w := pe[nd.eventIdx*B : nd.eventIdx*B+B]
				for k, i := range child.idx {
					v := child.lanesOf(i, B)
					dst := tab.slot(pl.factRemap(nd, rowKey{set: k.set, bits: removeBit(k.bits, pos)}), B)
					if k.bits&(1<<uint(pos)) != 0 {
						kernel.MulAdd(dst, v, w)
					} else {
						kernel.FMAdd1m(dst, v, w)
					}
				}
			} else {
				for k, i := range child.idx {
					kernel.AddTo(tab.slot(pl.factRemap(nd, rowKey{set: pl.forgetSet(k.set, nd.vertex), bits: k.bits}), B), child.lanesOf(i, B))
				}
			}
			st.releaseBatch(child)

		case treedec.NiceJoin:
			left := tables[nd.child0]
			right := tables[nd.child1]
			tables[nd.child0] = nil
			tables[nd.child1] = nil
			tab = st.allocBatch(len(left.idx))
			// Merge bits-sorted runs instead of scanning all pairs; see the
			// scalar join in computeNode.
			ents := st.joinEnts[:0]
			for rk, ri := range right.idx {
				ents = append(ents, joinEnt{k: rk, i: ri})
			}
			sortJoinEnts(ents)
			st.joinEnts = ents
			for lk, li := range left.idx {
				lv := left.lanesOf(li, B)
				lo, hi := joinRun(ents, lk.bits)
				for e := lo; e < hi; e++ {
					rv := right.lanesOf(ents[e].i, B)
					dst := tab.slot(pl.factRemap(nd, rowKey{set: pl.joinSets(lk.set, ents[e].k.set), bits: lk.bits}), B)
					kernel.MulAdd(dst, lv, rv)
				}
			}
			st.releaseBatch(left)
			st.releaseBatch(right)
		}
		tables[t] = tab
	}

	root := tables[pl.root]
	tables[pl.root] = nil
	return root
}
