package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/rel"
)

// randomProbMaps draws B independent probability maps over the events of p.
func randomProbMaps(r *rand.Rand, p logic.Prob, b int) []logic.Prob {
	out := make([]logic.Prob, b)
	for i := range out {
		m := make(logic.Prob, len(p))
		for e := range p {
			m[e] = r.Float64()
		}
		out[i] = m
	}
	return out
}

// TestProbabilityBatchMatchesSerialAndEnumeration is the batch property
// test: every lane of ProbabilityBatch must agree with a serial
// (*Plan).Probability call under the same map (tight tolerance; only float
// summation order differs) and with the possible-worlds enumeration oracle.
func TestProbabilityBatchMatchesSerialAndEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	queries := []rel.CQ{
		rel.HardQuery(),
		rel.NewCQ(rel.NewAtom("R", rel.V("x"))),
		rel.NewCQ(rel.NewAtom("S", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y"), rel.V("z"))),
	}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tid := randomTID(r, 1+r.Intn(8))
		q := queries[r.Intn(len(queries))]
		pl, p, err := PrepareTID(tid, q, Options{})
		if err != nil {
			t.Logf("seed %d: prepare: %v", seed, err)
			return false
		}
		ps := append([]logic.Prob{p}, randomProbMaps(r, p, 1+r.Intn(7))...)
		got, err := pl.ProbabilityBatch(ps)
		if err != nil {
			t.Logf("seed %d: batch: %v", seed, err)
			return false
		}
		if len(got) != len(ps) {
			t.Logf("seed %d: %d lanes in, %d out", seed, len(ps), len(got))
			return false
		}
		for i, p := range ps {
			serial, err := pl.Probability(p)
			if err != nil {
				t.Logf("seed %d: serial lane %d: %v", seed, i, err)
				return false
			}
			if math.Abs(got[i]-serial) > 1e-12 {
				t.Logf("seed %d lane %d: batch %v, serial %v", seed, i, got[i], serial)
				return false
			}
			c, _ := tid.ToCInstance()
			if want := c.QueryProbabilityEnumeration(q, p); math.Abs(got[i]-want) > 1e-9 {
				t.Logf("seed %d lane %d: batch %v, enumeration %v", seed, i, got[i], want)
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestProbabilityBatchCorrelatedPC exercises the batch path on pc-instances
// with shared events across annotations.
func TestProbabilityBatchCorrelatedPC(t *testing.T) {
	q := rel.NewCQ(
		rel.NewAtom("E", rel.V("x"), rel.V("y")),
		rel.NewAtom("E", rel.V("y"), rel.V("z")),
	)
	r := rand.New(rand.NewSource(17))
	c, p := gen.CorrelatedPC(8, 3, r)
	pl, err := PrepareCQ(c, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := append([]logic.Prob{p}, randomProbMaps(r, p, 5)...)
	got, err := pl.ProbabilityBatch(ps)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if want := c.QueryProbabilityEnumeration(q, p); math.Abs(got[i]-want) > 1e-9 {
			t.Errorf("lane %d: batch %v, enumeration %v", i, got[i], want)
		}
	}
}

// TestProbabilityBatchEmpty checks the degenerate lane counts.
func TestProbabilityBatchEmpty(t *testing.T) {
	pl, p, err := PrepareTID(gen.RSTChain(4, 0.5), rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := pl.ProbabilityBatch(nil); err != nil || out != nil {
		t.Errorf("empty batch: %v, %v", out, err)
	}
	one, err := pl.ProbabilityBatch([]logic.Prob{p})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := pl.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one[0]-serial) > 1e-12 {
		t.Errorf("1-lane batch %v, serial %v", one[0], serial)
	}
}

// TestProbabilityBatchLaneErrors checks per-lane failure isolation: an
// invalid lane comes back as NaN under a LaneErrors while every other lane
// still carries its exact probability.
func TestProbabilityBatchLaneErrors(t *testing.T) {
	pl, p, err := PrepareTID(gen.RSTChain(3, 0.5), rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := pl.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	bad := logic.Prob{}
	for e := range p {
		bad[e] = 1.5
	}
	nan := logic.Prob{}
	for e := range p {
		nan[e] = math.NaN()
	}
	out, err := pl.ProbabilityBatch([]logic.Prob{p, bad, p, nan})
	if err == nil {
		t.Fatal("invalid lanes accepted")
	}
	le, ok := err.(LaneErrors)
	if !ok {
		t.Fatalf("error %v (%T), want LaneErrors", err, err)
	}
	if le[0] != nil || le[1] == nil || le[2] != nil || le[3] == nil {
		t.Fatalf("lane errors %v, want lanes 1 and 3 only", []error(le))
	}
	if le.Failed(0) || !le.Failed(1) {
		t.Error("Failed() disagrees with the entries")
	}
	for _, l := range []int{1, 3} {
		if !math.IsNaN(out[l]) {
			t.Errorf("bad lane %d output %v, want NaN", l, out[l])
		}
	}
	for _, l := range []int{0, 2} {
		if math.Abs(out[l]-want) > 1e-12 {
			t.Errorf("healthy lane %d poisoned: %v vs %v", l, out[l], want)
		}
	}
}

// TestServeMixedPlans fans requests over mixed plans and probability maps
// through the worker pool and checks every response against a serial run.
func TestServeMixedPlans(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	q1 := rel.HardQuery()
	q2 := rel.NewCQ(rel.NewAtom("S", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y"), rel.V("z")))
	pl1, p1, err := PrepareTID(gen.RSTChain(20, 0.5), q1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl2, p2, err := PrepareTID(gen.RSTChain(15, 0.4), q2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			reqs = append(reqs, Request{Plan: pl1, P: randomProbMaps(r, p1, 1)[0]})
		} else {
			reqs = append(reqs, Request{Plan: pl2, P: randomProbMaps(r, p2, 1)[0]})
		}
	}
	reqs = append(reqs, Request{Plan: nil, P: p1})
	for _, workers := range []int{0, 1, 4, 8} {
		resp := Serve(reqs, workers)
		if len(resp) != len(reqs) {
			t.Fatalf("workers=%d: %d responses for %d requests", workers, len(resp), len(reqs))
		}
		for i, rq := range reqs {
			if rq.Plan == nil {
				if resp[i].Err == nil {
					t.Errorf("workers=%d: nil-plan request %d did not error", workers, i)
				}
				continue
			}
			if resp[i].Err != nil {
				t.Fatalf("workers=%d request %d: %v", workers, i, resp[i].Err)
			}
			want, err := rq.Plan.Probability(rq.P)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(resp[i].Probability-want) > 1e-12 {
				t.Errorf("workers=%d request %d: served %v, serial %v", workers, i, resp[i].Probability, want)
			}
		}
	}
	if !pl1.Frozen() || !pl2.Frozen() {
		t.Error("Serve must freeze every distinct plan")
	}
}

// TestProbabilityBatchAllLanesInvalid: a batch with no valid lane skips the
// dynamic program and returns all-NaN under a full LaneErrors.
func TestProbabilityBatchAllLanesInvalid(t *testing.T) {
	pl, p, err := PrepareTID(gen.RSTChain(3, 0.5), rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := logic.Prob{}
	for e := range p {
		bad[e] = -1
	}
	out, err := pl.ProbabilityBatch([]logic.Prob{bad, bad})
	le, ok := err.(LaneErrors)
	if !ok || le[0] == nil || le[1] == nil {
		t.Fatalf("error %v (%T), want LaneErrors on both lanes", err, err)
	}
	for l, v := range out {
		if !math.IsNaN(v) {
			t.Errorf("lane %d = %v, want NaN", l, v)
		}
	}
}
