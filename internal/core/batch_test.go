package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/rel"
)

// randomProbMaps draws B independent probability maps over the events of p.
func randomProbMaps(r *rand.Rand, p logic.Prob, b int) []logic.Prob {
	out := make([]logic.Prob, b)
	for i := range out {
		m := make(logic.Prob, len(p))
		for e := range p {
			m[e] = r.Float64()
		}
		out[i] = m
	}
	return out
}

// TestProbabilityBatchMatchesSerialAndEnumeration is the batch property
// test: every lane of ProbabilityBatch must agree with a serial
// (*Plan).Probability call under the same map (tight tolerance; only float
// summation order differs) and with the possible-worlds enumeration oracle.
func TestProbabilityBatchMatchesSerialAndEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	queries := []rel.CQ{
		rel.HardQuery(),
		rel.NewCQ(rel.NewAtom("R", rel.V("x"))),
		rel.NewCQ(rel.NewAtom("S", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y"), rel.V("z"))),
	}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tid := randomTID(r, 1+r.Intn(8))
		q := queries[r.Intn(len(queries))]
		pl, p, err := PrepareTID(tid, q, Options{})
		if err != nil {
			t.Logf("seed %d: prepare: %v", seed, err)
			return false
		}
		ps := append([]logic.Prob{p}, randomProbMaps(r, p, 1+r.Intn(7))...)
		got, err := pl.ProbabilityBatch(ps)
		if err != nil {
			t.Logf("seed %d: batch: %v", seed, err)
			return false
		}
		if len(got) != len(ps) {
			t.Logf("seed %d: %d lanes in, %d out", seed, len(ps), len(got))
			return false
		}
		for i, p := range ps {
			serial, err := pl.Probability(p)
			if err != nil {
				t.Logf("seed %d: serial lane %d: %v", seed, i, err)
				return false
			}
			if math.Abs(got[i]-serial) > 1e-12 {
				t.Logf("seed %d lane %d: batch %v, serial %v", seed, i, got[i], serial)
				return false
			}
			c, _ := tid.ToCInstance()
			if want := c.QueryProbabilityEnumeration(q, p); math.Abs(got[i]-want) > 1e-9 {
				t.Logf("seed %d lane %d: batch %v, enumeration %v", seed, i, got[i], want)
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestProbabilityBatchCorrelatedPC exercises the batch path on pc-instances
// with shared events across annotations.
func TestProbabilityBatchCorrelatedPC(t *testing.T) {
	q := rel.NewCQ(
		rel.NewAtom("E", rel.V("x"), rel.V("y")),
		rel.NewAtom("E", rel.V("y"), rel.V("z")),
	)
	r := rand.New(rand.NewSource(17))
	c, p := gen.CorrelatedPC(8, 3, r)
	pl, err := PrepareCQ(c, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := append([]logic.Prob{p}, randomProbMaps(r, p, 5)...)
	got, err := pl.ProbabilityBatch(ps)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if want := c.QueryProbabilityEnumeration(q, p); math.Abs(got[i]-want) > 1e-9 {
			t.Errorf("lane %d: batch %v, enumeration %v", i, got[i], want)
		}
	}
}

// TestProbabilityBatchEmpty checks the degenerate lane counts.
func TestProbabilityBatchEmpty(t *testing.T) {
	pl, p, err := PrepareTID(gen.RSTChain(4, 0.5), rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := pl.ProbabilityBatch(nil); err != nil || out != nil {
		t.Errorf("empty batch: %v, %v", out, err)
	}
	one, err := pl.ProbabilityBatch([]logic.Prob{p})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := pl.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one[0]-serial) > 1e-12 {
		t.Errorf("1-lane batch %v, serial %v", one[0], serial)
	}
}

// TestProbabilityBatchLaneErrors checks per-lane failure isolation: an
// invalid lane comes back as NaN under a LaneErrors while every other lane
// still carries its exact probability.
func TestProbabilityBatchLaneErrors(t *testing.T) {
	pl, p, err := PrepareTID(gen.RSTChain(3, 0.5), rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := pl.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	bad := logic.Prob{}
	for e := range p {
		bad[e] = 1.5
	}
	nan := logic.Prob{}
	for e := range p {
		nan[e] = math.NaN()
	}
	out, err := pl.ProbabilityBatch([]logic.Prob{p, bad, p, nan})
	if err == nil {
		t.Fatal("invalid lanes accepted")
	}
	le, ok := err.(LaneErrors)
	if !ok {
		t.Fatalf("error %v (%T), want LaneErrors", err, err)
	}
	if le[0] != nil || le[1] == nil || le[2] != nil || le[3] == nil {
		t.Fatalf("lane errors %v, want lanes 1 and 3 only", []error(le))
	}
	if le.Failed(0) || !le.Failed(1) {
		t.Error("Failed() disagrees with the entries")
	}
	for _, l := range []int{1, 3} {
		if !math.IsNaN(out[l]) {
			t.Errorf("bad lane %d output %v, want NaN", l, out[l])
		}
	}
	for _, l := range []int{0, 2} {
		if math.Abs(out[l]-want) > 1e-12 {
			t.Errorf("healthy lane %d poisoned: %v vs %v", l, out[l], want)
		}
	}
}

// TestServeMixedPlans fans requests over mixed plans and probability maps
// through the worker pool and checks every response against a serial run.
func TestServeMixedPlans(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	q1 := rel.HardQuery()
	q2 := rel.NewCQ(rel.NewAtom("S", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y"), rel.V("z")))
	pl1, p1, err := PrepareTID(gen.RSTChain(20, 0.5), q1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl2, p2, err := PrepareTID(gen.RSTChain(15, 0.4), q2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			reqs = append(reqs, Request{Plan: pl1, P: randomProbMaps(r, p1, 1)[0]})
		} else {
			reqs = append(reqs, Request{Plan: pl2, P: randomProbMaps(r, p2, 1)[0]})
		}
	}
	reqs = append(reqs, Request{Plan: nil, P: p1})
	for _, workers := range []int{0, 1, 4, 8} {
		resp := Serve(reqs, workers)
		if len(resp) != len(reqs) {
			t.Fatalf("workers=%d: %d responses for %d requests", workers, len(resp), len(reqs))
		}
		for i, rq := range reqs {
			if rq.Plan == nil {
				if resp[i].Err == nil {
					t.Errorf("workers=%d: nil-plan request %d did not error", workers, i)
				}
				continue
			}
			if resp[i].Err != nil {
				t.Fatalf("workers=%d request %d: %v", workers, i, resp[i].Err)
			}
			want, err := rq.Plan.Probability(rq.P)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(resp[i].Probability-want) > 1e-12 {
				t.Errorf("workers=%d request %d: served %v, serial %v", workers, i, resp[i].Probability, want)
			}
		}
	}
	if !pl1.Frozen() || !pl2.Frozen() {
		t.Error("Serve must freeze every distinct plan")
	}
}

// TestProbabilityBatchAllLanesInvalid: a batch with no valid lane skips the
// dynamic program and returns all-NaN under a full LaneErrors.
func TestProbabilityBatchAllLanesInvalid(t *testing.T) {
	pl, p, err := PrepareTID(gen.RSTChain(3, 0.5), rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := logic.Prob{}
	for e := range p {
		bad[e] = -1
	}
	out, err := pl.ProbabilityBatch([]logic.Prob{bad, bad})
	le, ok := err.(LaneErrors)
	if !ok || le[0] == nil || le[1] == nil {
		t.Fatalf("error %v (%T), want LaneErrors on both lanes", err, err)
	}
	for l, v := range out {
		if !math.IsNaN(v) {
			t.Errorf("lane %d = %v, want NaN", l, v)
		}
	}
}

// TestProbabilityBatchLaneWidths is the lane-width property test of the
// kernel layer: for every block width the arena classes and fused sweeps care
// about — 1, 3, one under/at/over the 64-lane register sweet spot, and a wide
// 256 — every healthy lane of ProbabilityBatch must equal the scalar
// Probability under the same map to 1e-12, failed lanes must come back as NaN
// at exactly their positions, and the whole contract must hold on the frozen
// (compiled row program) and unfrozen (map DP) paths alike.
func TestProbabilityBatchLaneWidths(t *testing.T) {
	for _, frozen := range []bool{false, true} {
		pl, p, err := PrepareTID(gen.RSTChain(5, 0.5), rel.HardQuery(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if frozen {
			if err := pl.Freeze(); err != nil {
				t.Fatal(err)
			}
		}
		var poisonEvent logic.Event
		for e := range p {
			poisonEvent = e
			break
		}
		r := rand.New(rand.NewSource(7))
		for _, B := range []int{1, 3, 63, 64, 65, 256} {
			ps := randomProbMaps(r, p, B)
			bad := map[int]bool{}
			if B >= 3 {
				// Poison a spread of lanes, including the block edges.
				for _, i := range []int{1, B / 2, B - 1} {
					ps[i][poisonEvent] = 1.5
					bad[i] = true
				}
			}
			got, err := pl.ProbabilityBatch(ps)
			if len(bad) == 0 && err != nil {
				t.Fatalf("frozen=%v B=%d: %v", frozen, B, err)
			}
			le, _ := err.(LaneErrors)
			if len(bad) > 0 && le == nil {
				t.Fatalf("frozen=%v B=%d: no LaneErrors for %d poisoned lanes (err %v)", frozen, B, len(bad), err)
			}
			for i := 0; i < B; i++ {
				if bad[i] {
					if !math.IsNaN(got[i]) {
						t.Errorf("frozen=%v B=%d lane %d: poisoned lane = %v, want NaN", frozen, B, i, got[i])
					}
					if le[i] == nil {
						t.Errorf("frozen=%v B=%d lane %d: poisoned lane has no error", frozen, B, i)
					}
					continue
				}
				if le != nil && le[i] != nil {
					t.Errorf("frozen=%v B=%d lane %d: healthy lane failed: %v", frozen, B, i, le[i])
					continue
				}
				serial, err := pl.Probability(ps[i])
				if err != nil {
					t.Fatalf("frozen=%v B=%d lane %d: serial: %v", frozen, B, i, err)
				}
				if math.Abs(got[i]-serial) > 1e-12 {
					t.Errorf("frozen=%v B=%d lane %d: batch %v, serial %v", frozen, B, i, got[i], serial)
				}
			}
		}
	}
}

// TestMassEpsRejectsIdentically pins the shared mass-conservation window:
// massDrifted is the single predicate both the scalar evaluation and the
// batch epilogue consult, its boundary sits at massEps, and a drifting root
// mass is rejected by Probability and ProbabilityBatch with the same error.
func TestMassEpsRejectsIdentically(t *testing.T) {
	for _, tc := range []struct {
		total float64
		drift bool
	}{
		{1, false},
		{1 - massEps/2, false},
		{1 + massEps/2, false},
		{1 - 2*massEps, true},
		{1 + 2*massEps, true},
		{0, true},
	} {
		if got := massDrifted(tc.total); got != tc.drift {
			t.Errorf("massDrifted(%v) = %v, want %v", tc.total, got, tc.drift)
		}
	}

	// Skew a frozen plan's compiled root layout so its mass genuinely drifts,
	// then check the scalar and batch paths reject with the identical error.
	pl, p, err := PrepareTID(gen.RSTChain(3, 0.5), rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Freeze(); err != nil {
		t.Fatal(err)
	}
	pl.prog.rootSets = nil // no root rows: total mass 0, far outside the window
	_, serialErr := pl.Probability(p)
	if serialErr == nil {
		t.Fatal("scalar evaluation accepted a drifting mass")
	}
	_, batchErr := pl.ProbabilityBatch([]logic.Prob{p, p})
	le, ok := batchErr.(LaneErrors)
	if !ok {
		t.Fatalf("batch evaluation: %v, want LaneErrors", batchErr)
	}
	for i, lerr := range le {
		if lerr == nil {
			t.Fatalf("lane %d accepted a drifting mass", i)
		}
		if lerr.Error() != serialErr.Error() {
			t.Errorf("lane %d rejects with %q, scalar with %q", i, lerr, serialErr)
		}
	}
}
