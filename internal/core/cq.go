package core

import (
	"fmt"
	"slices"
	"strconv"
	"strings"

	"repro/internal/rel"
)

// CQQuery compiles a Boolean conjunctive query into a bag automaton
// (the Query interface). A state records, for every query variable, whether
// it is unassigned, assigned to a domain element currently in the bag, or
// assigned to an element already forgotten; plus the set of atoms already
// witnessed by a fact. This is the "query type" state space: its size
// depends only on the query and the bag size, never on the instance, which
// is what makes the evaluation linear in the data (Theorem 1).
type CQQuery struct {
	Q      rel.CQ
	vars   []string
	varIdx map[string]int
	atoms  []rel.Atom
	inst   *rel.Instance
	di     *rel.DomainIndex
	// factAtoms[fi] lists the atoms whose relation and constants are
	// compatible with fact fi, with the variable positions to check.
	factAtoms [][]factAtomMatch
	// decoded caches key -> state: the engine revisits the same few states
	// at every node, and parsing dominated profiles without it.
	decoded map[string]cqState
	// joined caches Join results by the concatenated pair key, for the
	// same reason.
	joined map[string]joinResult
	// pruneBuf is PruneSet's reusable decoded-state scratch.
	pruneBuf []cqState
}

type joinResult struct {
	merged string
	ok     bool
}

type factAtomMatch struct {
	atom int
	// varElem[v] = the element id the query variable with index v must be
	// assigned to, or -1 when the variable does not occur in the atom.
	varElem []int
}

const (
	cqUnassigned = -1
	cqForgotten  = -2
)

// cqDone is the absorbing accepting state: once every atom is witnessed,
// the run's assignments no longer matter. Collapsing to it keeps the
// determinized state sets small.
const cqDone = "D"

// NewCQQuery compiles q for evaluation over the given instance (the
// candidate facts of the uncertain database) and its domain index.
func NewCQQuery(q rel.CQ, inst *rel.Instance, di *rel.DomainIndex) *CQQuery {
	if len(q.Atoms) > 30 {
		panic("core: CQ has too many atoms for a bitmask")
	}
	c := &CQQuery{
		Q: q, vars: q.Vars(), atoms: q.Atoms, inst: inst, di: di,
		decoded: map[string]cqState{},
		joined:  map[string]joinResult{},
	}
	c.varIdx = make(map[string]int, len(c.vars))
	for i, v := range c.vars {
		c.varIdx[v] = i
	}
	c.factAtoms = make([][]factAtomMatch, 0, inst.NumFacts())
	if err := c.ExtendFacts(inst.NumFacts()); err != nil {
		// The instance was indexed by di at compile time, so every constant
		// resolves; a failure here is a caller bug.
		panic("core: " + err.Error())
	}
	return c
}

// ExtendFacts implements FactExtender: it compiles the atom matches of every
// fact appended to the instance since the query was built (or last extended),
// so live stores can insert facts without recompiling the query. An appended
// fact whose constants are missing from the compiled domain index is
// rejected — such a fact cannot be homed in the existing decomposition
// either, so the caller must fall back to a full re-Prepare.
func (c *CQQuery) ExtendFacts(n int) error {
	if n > c.inst.NumFacts() {
		return fmt.Errorf("core: ExtendFacts(%d) beyond the instance's %d facts", n, c.inst.NumFacts())
	}
	for fi := len(c.factAtoms); fi < n; fi++ {
		f := c.inst.Fact(fi)
		var matches []factAtomMatch
		for ai, atom := range c.atoms {
			if atom.Rel != f.Rel || len(atom.Terms) != len(f.Args) {
				continue
			}
			match := factAtomMatch{atom: ai, varElem: make([]int, len(c.vars))}
			for i := range match.varElem {
				match.varElem[i] = -1
			}
			ok := true
			for pos, t := range atom.Terms {
				arg := f.Args[pos]
				if !t.IsVar {
					if t.Name != arg {
						ok = false
						break
					}
					continue
				}
				vi := c.varIdx[t.Name]
				elem, known := c.di.ByName[arg]
				if !known {
					return fmt.Errorf("core: fact %s uses constant %q outside the compiled domain", f, arg)
				}
				if match.varElem[vi] >= 0 && match.varElem[vi] != elem {
					ok = false // repeated variable bound to two distinct args
					break
				}
				match.varElem[vi] = elem
			}
			if ok {
				matches = append(matches, match)
			}
		}
		c.factAtoms = append(c.factAtoms, matches)
	}
	return nil
}

// cqState is the decoded form of a state key.
type cqState struct {
	assign []int // per variable: cqUnassigned, cqForgotten, or element id
	mask   uint32
}

func (c *CQQuery) encode(s cqState) string {
	var sb strings.Builder
	for i, a := range s.assign {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(a))
	}
	sb.WriteByte('#')
	sb.WriteString(strconv.FormatUint(uint64(s.mask), 16))
	return sb.String()
}

func (c *CQQuery) decode(key string) cqState {
	if s, ok := c.decoded[key]; ok {
		return s
	}
	s := c.decodeSlow(key)
	c.decoded[key] = s
	return s
}

func (c *CQQuery) decodeSlow(key string) cqState {
	hash := strings.IndexByte(key, '#')
	mask, err := strconv.ParseUint(key[hash+1:], 16, 32)
	if err != nil {
		panic("core: bad cq state key: " + key)
	}
	s := cqState{assign: make([]int, len(c.vars)), mask: uint32(mask)}
	if len(c.vars) > 0 {
		part := key[:hash]
		for i := 0; i < len(s.assign); i++ {
			end := strings.IndexByte(part, ',')
			tok := part
			if end >= 0 {
				tok = part[:end]
				part = part[end+1:]
			} else {
				part = ""
			}
			v, err := strconv.Atoi(tok)
			if err != nil {
				panic("core: bad cq state key: " + key)
			}
			s.assign[i] = v
		}
	}
	return s
}

func (c *CQQuery) fullMask() uint32 { return (1 << uint(len(c.atoms))) - 1 }

// Start returns the single initial state: nothing assigned, no atom
// witnessed.
func (c *CQQuery) Start() []string {
	s := cqState{assign: make([]int, len(c.vars))}
	for i := range s.assign {
		s.assign[i] = cqUnassigned
	}
	return []string{c.encode(s)}
}

// Introduce guesses, for every subset of the currently unassigned
// variables, that they map to the introduced element v.
func (c *CQQuery) Introduce(key string, v int) []string {
	if key == cqDone {
		return []string{cqDone}
	}
	s := c.decode(key)
	var free []int
	for i, a := range s.assign {
		if a == cqUnassigned {
			free = append(free, i)
		}
	}
	out := make([]string, 0, 1<<uint(len(free)))
	for sub := 0; sub < 1<<uint(len(free)); sub++ {
		ns := cqState{assign: append([]int(nil), s.assign...), mask: s.mask}
		for bit, vi := range free {
			if sub&(1<<uint(bit)) != 0 {
				ns.assign[vi] = v
			}
		}
		out = append(out, c.encode(ns))
	}
	return out
}

// Forget marks variables assigned to v as forgotten. The run dies if an
// atom mentioning such a variable is still unwitnessed: any witnessing fact
// has v among its arguments, so its bag (which must contain v) can only lie
// below this forget node, and the chance has passed.
func (c *CQQuery) Forget(key string, v int) []string {
	if key == cqDone {
		return []string{cqDone}
	}
	s := c.decode(key)
	var out []int // lazily copied assignment (decode results are cached)
	for vi, a := range s.assign {
		if a != v {
			continue
		}
		for ai, atom := range c.atoms {
			if s.mask&(1<<uint(ai)) != 0 {
				continue
			}
			if atomUsesVar(atom, c.vars[vi]) {
				return nil // dead run
			}
		}
		if out == nil {
			out = append([]int(nil), s.assign...)
		}
		out[vi] = cqForgotten
	}
	if out == nil {
		return []string{key}
	}
	return []string{c.encode(cqState{assign: out, mask: s.mask})}
}

func atomUsesVar(a rel.Atom, name string) bool {
	for _, t := range a.Terms {
		if t.IsVar && t.Name == name {
			return true
		}
	}
	return false
}

// Join merges sibling runs. Two assignments are compatible when they agree
// wherever both are committed; "forgotten" clashes with any other
// commitment because the two elements are necessarily distinct (a forgotten
// element never reappears in the sibling branch, by the connectivity of
// occurrences in a tree decomposition).
func (c *CQQuery) Join(ka, kb string) (string, bool) {
	pair := ka + "\x00" + kb
	if r, ok := c.joined[pair]; ok {
		return r.merged, r.ok
	}
	merged, ok := c.joinSlow(ka, kb)
	c.joined[pair] = joinResult{merged, ok}
	return merged, ok
}

// JoinDirect is Join without the internal memo. Compiled plans
// (internal/core Plan) cache join results per interned state pair
// themselves, so each pair reaches the query at most once and the memo's
// key concatenation and map insert are pure overhead on that path.
func (c *CQQuery) JoinDirect(ka, kb string) (string, bool) {
	return c.joinSlow(ka, kb)
}

func (c *CQQuery) joinSlow(ka, kb string) (string, bool) {
	if ka == cqDone || kb == cqDone {
		return cqDone, true
	}
	a, b := c.decode(ka), c.decode(kb)
	m := cqState{assign: make([]int, len(c.vars)), mask: a.mask | b.mask}
	for i := range m.assign {
		x, y := a.assign[i], b.assign[i]
		switch {
		case x == y:
			m.assign[i] = x
			if x == cqForgotten {
				return "", false // two distinct forgotten elements
			}
		case x == cqUnassigned:
			m.assign[i] = y
		case y == cqUnassigned:
			m.assign[i] = x
		default:
			return "", false // two distinct commitments
		}
	}
	return c.encode(m), true
}

// FactTransitions witnesses with fact fi every atom whose variables are all
// assigned consistently with the fact's arguments. Witnessing all matching
// atoms at once is sound and complete for monotone conjunctive queries.
func (c *CQQuery) FactTransitions(key string, fi int) []string {
	if key == cqDone {
		return nil
	}
	matches := c.factAtoms[fi]
	if len(matches) == 0 {
		return nil
	}
	s := c.decode(key)
	newMask := s.mask
	for _, m := range matches {
		if newMask&(1<<uint(m.atom)) != 0 {
			continue
		}
		ok := true
		for vi, elem := range m.varElem {
			if elem >= 0 && s.assign[vi] != elem {
				ok = false
				break
			}
		}
		if ok {
			newMask |= 1 << uint(m.atom)
		}
	}
	if newMask == s.mask {
		return nil
	}
	if newMask == c.fullMask() {
		return []string{cqDone}
	}
	return []string{c.encode(cqState{assign: s.assign, mask: newMask})}
}

// Accept holds when every atom has been witnessed. (A full mask implies
// every variable was assigned, since each variable occurs in some atom.)
func (c *CQQuery) Accept(key string) bool {
	if key == cqDone {
		return true
	}
	return c.decode(key).mask == c.fullMask()
}

// PruneSet keeps the determinized state sets small without changing which
// worlds are accepted:
//
//   - if some state has witnessed every atom, the whole set collapses to
//     the absorbing accepting state;
//   - among states with identical assignments, only the maximal witness
//     masks are kept (a subset mask is dominated: any continuation that
//     accepts from it also accepts from the dominating state, and
//     domination is preserved by every transition).
//
// The pairwise domination check works on decoded states held in a reusable
// scratch buffer, so a call allocates only the pruned output slice.
func (c *CQQuery) PruneSet(set []string) []string {
	full := c.fullMask()
	states := c.pruneBuf[:0]
	for _, key := range set {
		if key == cqDone {
			return []string{cqDone}
		}
		s := c.decode(key)
		if s.mask == full {
			return []string{cqDone}
		}
		states = append(states, s)
	}
	c.pruneBuf = states
	out := make([]string, 0, len(set))
	for i, si := range states {
		dominated := false
		for j, sj := range states {
			if i == j || si.mask&sj.mask != si.mask {
				continue
			}
			if si.mask == sj.mask && j > i {
				continue
			}
			if slices.Equal(si.assign, sj.assign) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, set[i])
		}
	}
	sortStrings(out)
	return out
}
