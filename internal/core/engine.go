package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
	"repro/internal/treedec"
)

// Options configures the engine.
type Options struct {
	// Heuristic selects the decomposition heuristic when no decomposition
	// is supplied. MinFill (default) gives tighter widths; MinDegree is
	// faster on large inputs.
	Heuristic treedec.Heuristic
	// Joint optionally supplies a precomputed tree decomposition of the
	// joint instance+event graph (see JointEventGraph). Generators that
	// plant a known decomposition pass it here so that evaluation time is
	// not dominated by the decomposition heuristic.
	Joint *treedec.Decomposition
	// EmitLineage additionally builds the lineage as a deterministic,
	// decomposable circuit over the events (d-DNNF style).
	EmitLineage bool
}

// Result is the outcome of an engine run.
type Result struct {
	// Probability is the exact probability that the query holds.
	Probability float64
	// TotalMass is the total probability processed; it equals 1 up to
	// floating error and is exposed as a self-check.
	TotalMass float64
	// Width is the width of the joint decomposition actually used.
	Width int
	// NiceNodes is the size of the nice decomposition traversed.
	NiceNodes int
	// Lineage and Root hold the emitted d-DNNF lineage when requested.
	// Probability equals Lineage.DDNNFProbability(Root, p).
	Lineage *circuit.Circuit
	Root    circuit.Gate
}

// JointEventGraph builds the graph whose treewidth is the structural
// parameter of Theorem 2, in event form: vertices are the instance's domain
// elements followed by the annotation events; every fact contributes a
// clique over its arguments together with the events of its annotation.
//
// For a TID translated via ToCInstance this adds one pendant event per fact,
// so the joint width is at most the instance treewidth plus one — Theorem 1
// is the special case.
func JointEventGraph(c *pdb.CInstance, di *rel.DomainIndex) (g *treedec.Graph, events []logic.Event, eventVertex map[logic.Event]int) {
	if di == nil {
		di = c.Inst.IndexDomain()
	}
	events = c.Events()
	nDom := len(di.Names)
	g = treedec.NewGraph(nDom + len(events))
	eventVertex = make(map[logic.Event]int, len(events))
	for i, e := range events {
		eventVertex[e] = nDom + i
	}
	scopes := c.Inst.FactScopes(di)
	for fi, scope := range scopes {
		full := append([]int(nil), scope...)
		for _, e := range logic.Vars(c.Ann[fi]) {
			full = append(full, eventVertex[e])
		}
		g.AddClique(full)
	}
	return g, events, eventVertex
}

// engine carries the immutable run context.
type engine struct {
	q       Query
	c       *pdb.CInstance
	p       logic.Prob
	di      *rel.DomainIndex
	nDom    int
	events  []logic.Event // events indexed by vertex id - nDom
	nice    *treedec.Nice
	factsAt [][]int // facts homed at each nice node
	annVars [][]logic.Event

	emit *circuit.Circuit
}

// entry is one determinized table row: a set of automaton states together
// with a valuation of the in-bag events, carrying the probability mass of
// the already-forgotten events below, and optionally a lineage gate.
type entry struct {
	set  []string
	bits uint64 // valuation of in-bag events, in bagEvents order
	prob float64
	gate circuit.Gate
}

// table maps composite keys to entries.
type table struct {
	rows map[string]*entry
}

func newTable() *table { return &table{rows: map[string]*entry{}} }

func rowKey(set []string, bits uint64) string {
	return strings.Join(set, ";") + "|" + fmt.Sprintf("%x", bits)
}

func (t *table) put(e *entry, emit *circuit.Circuit) {
	k := rowKey(e.set, e.bits)
	if prev, ok := t.rows[k]; ok {
		prev.prob += e.prob
		if emit != nil {
			prev.gate = emit.Or(prev.gate, e.gate)
		}
		return
	}
	t.rows[k] = e
}

// EvaluatePC runs the determinized automaton q over the pc-instance (c, p)
// and returns the exact query probability (Theorem 2; Theorem 1 via the TID
// translation). Linear in the instance for a fixed query and joint width;
// exponential in the query size and in the joint width.
func EvaluatePC(c *pdb.CInstance, p logic.Prob, q Query, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	di := c.Inst.IndexDomain()
	joint, events, _ := JointEventGraph(c, di)
	d := opts.Joint
	if d == nil {
		d = treedec.Decompose(joint, opts.Heuristic)
	} else if err := d.Validate(joint); err != nil {
		return nil, fmt.Errorf("core: supplied joint decomposition invalid: %w", err)
	}
	nice := treedec.MakeNice(d)
	// Event valuations are tracked in a 64-bit mask per table row.
	for _, nd := range nice.Nodes {
		evs := 0
		for _, v := range nd.Bag {
			if v >= len(di.Names) {
				evs++
			}
		}
		if evs > 60 {
			return nil, fmt.Errorf("core: a bag holds %d events; the joint width is too large for exact evaluation", evs)
		}
	}

	eng := &engine{
		q:      q,
		c:      c,
		p:      p,
		di:     di,
		nDom:   len(di.Names),
		events: events,
		nice:   nice,
	}
	if opts.EmitLineage {
		eng.emit = circuit.New()
	}
	// Home every fact at a nice node covering its args and events.
	eventVertex := make(map[logic.Event]int, len(events))
	for i, e := range events {
		eventVertex[e] = eng.nDom + i
	}
	scopes := c.Inst.FactScopes(di)
	fullScopes := make([][]int, len(scopes))
	eng.annVars = make([][]logic.Event, c.NumFacts())
	for fi, scope := range scopes {
		vars := logic.Vars(c.Ann[fi])
		eng.annVars[fi] = vars
		full := append([]int(nil), scope...)
		for _, e := range vars {
			full = append(full, eventVertex[e])
		}
		fullScopes[fi] = full
	}
	assign, err := nice.AssignScopes(fullScopes)
	if err != nil {
		return nil, fmt.Errorf("core: cannot home facts in decomposition: %w", err)
	}
	eng.factsAt = make([][]int, nice.NumNodes())
	for fi, node := range assign {
		eng.factsAt[node] = append(eng.factsAt[node], fi)
	}

	res, err := eng.run()
	if err != nil {
		return nil, err
	}
	res.Width = d.Width()
	res.NiceNodes = nice.NumNodes()
	return res, nil
}

// bagEvents returns the sorted event vertex ids present in a bag.
func (e *engine) bagEvents(bag []int) []int {
	var evs []int
	for _, v := range bag {
		if v >= e.nDom {
			evs = append(evs, v)
		}
	}
	return evs
}

func (e *engine) run() (*Result, error) {
	tables := make([]*table, e.nice.NumNodes())
	for _, t := range e.nice.PostOrder() {
		nd := e.nice.Nodes[t]
		var tab *table
		switch nd.Kind {
		case treedec.NiceLeaf:
			tab = newTable()
			set := detStep(e.q, e.q.Start(), func(s string) []string { return []string{s} })
			row := &entry{set: set, prob: 1}
			if e.emit != nil {
				row.gate = e.emit.Const(true)
			}
			tab.put(row, e.emit)
		case treedec.NiceIntroduce:
			child := tables[nd.Children[0]]
			tables[nd.Children[0]] = nil
			if nd.Vertex < e.nDom {
				tab = e.introduceDomain(child, nd.Vertex)
			} else {
				tab = e.introduceEvent(child, nd.Vertex, e.nice.Nodes[nd.Children[0]].Bag)
			}
		case treedec.NiceForget:
			child := tables[nd.Children[0]]
			tables[nd.Children[0]] = nil
			if nd.Vertex < e.nDom {
				tab = e.forgetDomain(child, nd.Vertex)
			} else {
				tab = e.forgetEvent(child, nd.Vertex, e.nice.Nodes[nd.Children[0]].Bag)
			}
		case treedec.NiceJoin:
			left := tables[nd.Children[0]]
			right := tables[nd.Children[1]]
			tables[nd.Children[0]] = nil
			tables[nd.Children[1]] = nil
			tab = e.join(left, right)
		}
		// Apply the facts homed here.
		for _, fi := range e.factsAt[t] {
			tab = e.applyFact(tab, fi, nd.Bag)
		}
		tables[t] = tab
	}

	root := tables[e.nice.Root]
	res := &Result{}
	var acceptGates []circuit.Gate
	for _, row := range root.rows {
		res.TotalMass += row.prob
		if acceptsAny(row.set, e.q) {
			res.Probability += row.prob
			if e.emit != nil {
				acceptGates = append(acceptGates, row.gate)
			}
		}
	}
	if res.TotalMass < 0.999999 || res.TotalMass > 1.000001 {
		return nil, fmt.Errorf("core: probability mass %v drifted from 1", res.TotalMass)
	}
	if e.emit != nil {
		res.Lineage = e.emit
		res.Root = e.emit.Or(acceptGates...)
	}
	// Clamp floating noise.
	if res.Probability < 0 {
		res.Probability = 0
	}
	if res.Probability > 1 {
		res.Probability = 1
	}
	return res, nil
}

func (e *engine) introduceDomain(child *table, v int) *table {
	out := newTable()
	for _, row := range child.rows {
		set := detStep(e.q, row.set, func(s string) []string { return e.q.Introduce(s, v) })
		out.put(&entry{set: set, bits: row.bits, prob: row.prob, gate: row.gate}, e.emit)
	}
	return out
}

func (e *engine) forgetDomain(child *table, v int) *table {
	out := newTable()
	for _, row := range child.rows {
		set := detStep(e.q, row.set, func(s string) []string { return e.q.Forget(s, v) })
		out.put(&entry{set: set, bits: row.bits, prob: row.prob, gate: row.gate}, e.emit)
	}
	return out
}

// introduceEvent splits every row on the value of the new event. The
// Bernoulli weight is applied later, at the event's unique forget node, so
// no mass is double-counted across join branches.
func (e *engine) introduceEvent(child *table, v int, childBag []int) *table {
	pos := eventPosition(e.bagEvents(childBag), v, true)
	out := newTable()
	for _, row := range child.rows {
		b0 := insertBit(row.bits, pos, false)
		b1 := insertBit(row.bits, pos, true)
		out.put(&entry{set: row.set, bits: b0, prob: row.prob, gate: row.gate}, e.emit)
		out.put(&entry{set: append([]string(nil), row.set...), bits: b1, prob: row.prob, gate: row.gate}, e.emit)
	}
	return out
}

// forgetEvent applies the event's Bernoulli weight to each row according to
// its recorded value, conjoins the matching literal onto the lineage, and
// marginalizes the bit out of the key (rows differing only in it merge by
// summing — a deterministic OR in the emitted circuit).
func (e *engine) forgetEvent(child *table, v int, childBag []int) *table {
	pos := eventPosition(e.bagEvents(childBag), v, false)
	ev := e.events[v-e.nDom]
	pe := e.p.P(ev)
	out := newTable()
	for _, row := range child.rows {
		value := row.bits&(1<<uint(pos)) != 0
		w := pe
		if !value {
			w = 1 - pe
		}
		ne := &entry{set: row.set, bits: removeBit(row.bits, pos), prob: row.prob * w}
		if e.emit != nil {
			lit := e.emit.Var(ev)
			if !value {
				lit = e.emit.Not(lit)
			}
			ne.gate = e.emit.And(row.gate, lit)
		}
		out.put(ne, e.emit)
	}
	return out
}

func (e *engine) join(left, right *table) *table {
	out := newTable()
	for _, la := range left.rows {
		for _, rb := range right.rows {
			if la.bits != rb.bits {
				continue // in-bag events are shared: values must agree
			}
			set := detJoin(la.set, rb.set, e.q)
			ne := &entry{set: set, bits: la.bits, prob: la.prob * rb.prob}
			if e.emit != nil {
				ne.gate = e.emit.And(la.gate, rb.gate)
			}
			out.put(ne, e.emit)
		}
	}
	return out
}

// applyFact resolves the fact's annotation under each row's event valuation
// (all annotation events are in the bag by the homing invariant) and, when
// present, closes the state set under the fact's transitions.
func (e *engine) applyFact(tab *table, fi int, bag []int) *table {
	evs := e.bagEvents(bag)
	evIndex := make(map[logic.Event]int, len(evs))
	for i, v := range evs {
		evIndex[e.events[v-e.nDom]] = i
	}
	ann := e.c.Ann[fi]
	out := newTable()
	val := logic.Valuation{}
	for _, row := range tab.rows {
		for ev := range val {
			delete(val, ev)
		}
		for _, ev := range e.annVars[fi] {
			val[ev] = row.bits&(1<<uint(evIndex[ev])) != 0
		}
		ne := &entry{set: row.set, bits: row.bits, prob: row.prob, gate: row.gate}
		if ann.Eval(val) {
			ne.set = detFact(row.set, e.q, fi)
		}
		out.put(ne, e.emit)
	}
	return out
}

// eventPosition locates the bit position of event vertex v in the bag event
// list; when inserting, it returns the position the bit will occupy.
func eventPosition(bagEvs []int, v int, inserting bool) int {
	i := sort.SearchInts(bagEvs, v)
	if !inserting && (i >= len(bagEvs) || bagEvs[i] != v) {
		panic("core: event vertex not in bag")
	}
	return i
}

func insertBit(bits uint64, pos int, value bool) uint64 {
	low := bits & ((1 << uint(pos)) - 1)
	high := bits >> uint(pos)
	out := low | high<<uint(pos+1)
	if value {
		out |= 1 << uint(pos)
	}
	return out
}

func removeBit(bits uint64, pos int) uint64 {
	low := bits & ((1 << uint(pos)) - 1)
	high := bits >> uint(pos+1)
	return low | high<<uint(pos)
}

// ProbabilityTID evaluates q on a TID instance by the Theorem 1 algorithm:
// translate to a pc-instance (one fresh event per fact, a pendant vertex in
// the joint graph) and run the determinized automaton.
func ProbabilityTID(t *pdb.TID, q rel.CQ, opts Options) (*Result, error) {
	c, p := t.ToCInstance()
	cq := NewCQQuery(q, c.Inst, c.Inst.IndexDomain())
	return EvaluatePC(c, p, cq, opts)
}

// ProbabilityPC evaluates the conjunctive query q on a pc-instance.
func ProbabilityPC(c *pdb.CInstance, p logic.Prob, q rel.CQ, opts Options) (*Result, error) {
	cq := NewCQQuery(q, c.Inst, c.Inst.IndexDomain())
	return EvaluatePC(c, p, cq, opts)
}

// RunOnWorld replays the determinized automaton over a single certain world
// (a subset of the instance's facts) and reports acceptance. It exists to
// validate Query implementations against reference algorithms; it uses the
// instance decomposition only (no events).
func RunOnWorld(inst *rel.Instance, present []bool, q Query) (bool, error) {
	di := inst.IndexDomain()
	g := inst.GaifmanGraph(di)
	nice := treedec.MakeNice(treedec.Decompose(g, treedec.MinFill))
	scopes := inst.FactScopes(di)
	assign, err := nice.AssignScopes(scopes)
	if err != nil {
		return false, err
	}
	factsAt := make([][]int, nice.NumNodes())
	for fi, node := range assign {
		factsAt[node] = append(factsAt[node], fi)
	}
	sets := make([][]string, nice.NumNodes())
	for _, t := range nice.PostOrder() {
		nd := nice.Nodes[t]
		var set []string
		switch nd.Kind {
		case treedec.NiceLeaf:
			set = detStep(q, q.Start(), func(s string) []string { return []string{s} })
		case treedec.NiceIntroduce:
			set = detStep(q, sets[nd.Children[0]], func(s string) []string { return q.Introduce(s, nd.Vertex) })
		case treedec.NiceForget:
			set = detStep(q, sets[nd.Children[0]], func(s string) []string { return q.Forget(s, nd.Vertex) })
		case treedec.NiceJoin:
			set = detJoin(sets[nd.Children[0]], sets[nd.Children[1]], q)
		}
		for _, fi := range factsAt[t] {
			if present[fi] {
				set = detFact(set, q, fi)
			}
		}
		sets[t] = set
	}
	return acceptsAny(sets[nice.Root], q), nil
}
