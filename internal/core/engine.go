package core

import (
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
	"repro/internal/treedec"
)

// Options configures the engine.
type Options struct {
	// Heuristic selects the decomposition heuristic when no decomposition
	// is supplied. MinDegree (default) is fast on large inputs; MinFill
	// usually gives tighter widths.
	Heuristic treedec.Heuristic
	// Joint optionally supplies a precomputed tree decomposition of the
	// joint instance+event graph (see JointEventGraph). Generators that
	// plant a known decomposition pass it here so that evaluation time is
	// not dominated by the decomposition heuristic.
	Joint *treedec.Decomposition
	// EmitLineage additionally builds the lineage as a deterministic,
	// decomposable circuit over the events (d-DNNF style).
	EmitLineage bool
}

// Result is the outcome of an engine run.
type Result struct {
	// Probability is the exact probability that the query holds.
	Probability float64
	// TotalMass is the total probability processed; it equals 1 up to
	// floating error and is exposed as a self-check.
	TotalMass float64
	// Width is the width of the joint decomposition actually used.
	Width int
	// NiceNodes is the size of the nice decomposition traversed.
	NiceNodes int
	// Lineage and Root hold the emitted d-DNNF lineage when requested.
	// Probability equals Lineage.DDNNFProbability(Root, p).
	Lineage *circuit.Circuit
	Root    circuit.Gate
}

// JointEventGraph builds the graph whose treewidth is the structural
// parameter of Theorem 2, in event form: vertices are the instance's domain
// elements followed by the annotation events; every fact contributes a
// clique over its arguments together with the events of its annotation.
//
// For a TID translated via ToCInstance this adds one pendant event per fact,
// so the joint width is at most the instance treewidth plus one — Theorem 1
// is the special case.
func JointEventGraph(c *pdb.CInstance, di *rel.DomainIndex) (g *treedec.Graph, events []logic.Event, eventVertex map[logic.Event]int) {
	if di == nil {
		di = c.Inst.IndexDomain()
	}
	events = c.Events()
	nDom := len(di.Names)
	g = treedec.NewGraph(nDom + len(events))
	eventVertex = make(map[logic.Event]int, len(events))
	for i, e := range events {
		eventVertex[e] = nDom + i
	}
	scopes := c.Inst.FactScopes(di)
	for fi, scope := range scopes {
		full := append([]int(nil), scope...)
		for _, e := range logic.Vars(c.Ann[fi]) {
			full = append(full, eventVertex[e])
		}
		g.AddClique(full)
	}
	return g, events, eventVertex
}

// EvaluatePC runs the determinized automaton q over the pc-instance (c, p)
// and returns the exact query probability (Theorem 2; Theorem 1 via the TID
// translation). Linear in the instance for a fixed query and joint width;
// exponential in the query size and in the joint width.
//
// EvaluatePC is the one-shot form of the Prepare/Evaluate split: it compiles
// a Plan and evaluates it once. Callers issuing repeated probability
// requests against the same structure should Prepare once and call
// (*Plan).Probability per request instead.
func EvaluatePC(c *pdb.CInstance, p logic.Prob, q Query, opts Options) (*Result, error) {
	pl, err := Prepare(c, q, opts)
	if err != nil {
		return nil, err
	}
	return pl.Result(p)
}

// ProbabilityTID evaluates q on a TID instance by the Theorem 1 algorithm:
// translate to a pc-instance (one fresh event per fact, a pendant vertex in
// the joint graph) and run the determinized automaton.
func ProbabilityTID(t *pdb.TID, q rel.CQ, opts Options) (*Result, error) {
	pl, p, err := PrepareTID(t, q, opts)
	if err != nil {
		return nil, err
	}
	return pl.Result(p)
}

// ProbabilityPC evaluates the conjunctive query q on a pc-instance.
func ProbabilityPC(c *pdb.CInstance, p logic.Prob, q rel.CQ, opts Options) (*Result, error) {
	pl, err := PrepareCQ(c, q, opts)
	if err != nil {
		return nil, err
	}
	return pl.Result(p)
}

// RunOnWorld replays the determinized automaton over a single certain world
// (a subset of the instance's facts) and reports acceptance. It exists to
// validate Query implementations against reference algorithms; it uses the
// instance decomposition only (no events).
func RunOnWorld(inst *rel.Instance, present []bool, q Query) (bool, error) {
	di := inst.IndexDomain()
	g := inst.GaifmanGraph(di)
	nice := treedec.MakeNice(treedec.Decompose(g, treedec.MinFill))
	scopes := inst.FactScopes(di)
	assign, err := nice.AssignScopes(scopes)
	if err != nil {
		return false, err
	}
	factsAt := make([][]int, nice.NumNodes())
	for fi, node := range assign {
		factsAt[node] = append(factsAt[node], fi)
	}
	sets := make([][]string, nice.NumNodes())
	for _, t := range nice.PostOrder() {
		nd := nice.Nodes[t]
		var set []string
		switch nd.Kind {
		case treedec.NiceLeaf:
			set = detStep(q, q.Start(), func(s string) []string { return []string{s} })
		case treedec.NiceIntroduce:
			set = detStep(q, sets[nd.Children[0]], func(s string) []string { return q.Introduce(s, nd.Vertex) })
		case treedec.NiceForget:
			set = detStep(q, sets[nd.Children[0]], func(s string) []string { return q.Forget(s, nd.Vertex) })
		case treedec.NiceJoin:
			set = detJoin(sets[nd.Children[0]], sets[nd.Children[1]], q)
		}
		for _, fi := range factsAt[t] {
			if present[fi] {
				set = detFact(set, q, fi)
			}
		}
		sets[t] = set
	}
	return acceptsAny(sets[nice.Root], q), nil
}
