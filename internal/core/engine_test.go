package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// randomTID builds a small random TID over a few relations with low
// treewidth-ish shape (chains plus noise) for oracle cross-checks.
func randomTID(r *rand.Rand, n int) *pdb.TID {
	t := pdb.NewTID()
	names := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		p := float64(r.Intn(11)) / 10
		switch r.Intn(3) {
		case 0:
			t.AddFact(p, "R", names[r.Intn(len(names))])
		case 1:
			t.AddFact(p, "S", names[r.Intn(len(names))], names[r.Intn(len(names))])
		default:
			t.AddFact(p, "T", names[r.Intn(len(names))])
		}
	}
	return t
}

func TestProbabilityTIDHardQuerySmall(t *testing.T) {
	tid := pdb.NewTID()
	tid.AddFact(0.5, "R", "a")
	tid.AddFact(0.5, "S", "a", "b")
	tid.AddFact(0.5, "T", "b")
	res, err := ProbabilityTID(tid, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Probability-0.125) > 1e-12 {
		t.Errorf("P = %v, want 0.125", res.Probability)
	}
	if math.Abs(res.TotalMass-1) > 1e-9 {
		t.Errorf("total mass = %v", res.TotalMass)
	}
}

func TestProbabilityTIDMatchesEnumerationOnBipartite(t *testing.T) {
	// The 2x2 bipartite instance from the intro's hardness discussion.
	tid := pdb.NewTID()
	tid.AddFact(0.5, "R", "x1")
	tid.AddFact(0.3, "R", "x2")
	tid.AddFact(0.8, "S", "x1", "y1")
	tid.AddFact(0.2, "S", "x1", "y2")
	tid.AddFact(0.9, "S", "x2", "y1")
	tid.AddFact(0.4, "S", "x2", "y2")
	tid.AddFact(0.6, "T", "y1")
	tid.AddFact(0.7, "T", "y2")
	q := rel.HardQuery()
	want := tid.QueryProbabilityEnumeration(q)
	res, err := ProbabilityTID(tid, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Probability-want) > 1e-9 {
		t.Errorf("engine %v, enumeration %v", res.Probability, want)
	}
}

func TestPropertyProbabilityTIDMatchesEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120}
	queries := []rel.CQ{
		rel.HardQuery(),
		rel.NewCQ(rel.NewAtom("R", rel.V("x"))),
		rel.NewCQ(rel.NewAtom("S", rel.V("x"), rel.V("x"))),
		rel.NewCQ(rel.NewAtom("S", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y"), rel.V("z"))),
		rel.NewCQ(rel.NewAtom("R", rel.C("a"))),
		rel.NewCQ(rel.NewAtom("S", rel.C("a"), rel.V("y")), rel.NewAtom("T", rel.V("y"))),
	}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tid := randomTID(r, 1+r.Intn(8))
		q := queries[r.Intn(len(queries))]
		want := tid.QueryProbabilityEnumeration(q)
		res, err := ProbabilityTID(tid, q, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if math.Abs(res.Probability-want) > 1e-9 {
			t.Logf("seed %d: engine %v, enum %v (query %s on %s)", seed, res.Probability, want, q, tid.Inst)
			return false
		}
		return math.Abs(res.TotalMass-1) < 1e-6
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyEmittedLineageIsExactDDNNF(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tid := randomTID(r, 1+r.Intn(7))
		q := rel.HardQuery()
		c, p := tid.ToCInstance()
		cq := NewCQQuery(q, c.Inst, c.Inst.IndexDomain())
		res, err := EvaluatePC(c, p, cq, Options{EmitLineage: true})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// (1) d-DNNF pass reproduces the engine probability.
		got := res.Lineage.DDNNFProbability(res.Root, p)
		if math.Abs(got-res.Probability) > 1e-9 {
			t.Logf("seed %d: ddnnf %v vs engine %v", seed, got, res.Probability)
			return false
		}
		// (2) The lineage is semantically correct on every valuation.
		ok := true
		logic.EnumerateValuations(c.Events(), func(v logic.Valuation) {
			world := c.World(v)
			if res.Lineage.Eval(res.Root, v) != q.Holds(world) {
				ok = false
			}
		})
		if !ok {
			t.Logf("seed %d: lineage disagrees with possible-worlds semantics", seed)
		}
		return ok
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestProbabilityPCCorrelatedAnnotations(t *testing.T) {
	// Two facts sharing one event (the eJane pattern of Figure 1): either
	// both present or both absent.
	c := pdb.NewCInstance()
	c.AddFact(logic.Var("jane"), "R", "a")
	c.AddFact(logic.Var("jane"), "S", "a", "b")
	c.AddFact(logic.Var("t"), "T", "b")
	p := logic.Prob{"jane": 0.9, "t": 0.4}
	q := rel.HardQuery()
	want := c.QueryProbabilityEnumeration(q, p) // 0.9 * 0.4
	res, err := ProbabilityPC(c, p, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Probability-want) > 1e-12 {
		t.Errorf("engine %v, enum %v", res.Probability, want)
	}
	if math.Abs(res.Probability-0.36) > 1e-12 {
		t.Errorf("P = %v, want 0.36", res.Probability)
	}
}

func TestProbabilityPCNegatedAndMutexAnnotations(t *testing.T) {
	// Mutually exclusive facts via e and !e (the mux pattern).
	c := pdb.NewCInstance()
	c.AddFact(logic.Var("e"), "Name", "p", "Bradley")
	c.AddFact(logic.Not(logic.Var("e")), "Name", "p", "Chelsea")
	p := logic.Prob{"e": 0.6}
	qB := rel.NewCQ(rel.NewAtom("Name", rel.V("x"), rel.C("Bradley")))
	qC := rel.NewCQ(rel.NewAtom("Name", rel.V("x"), rel.C("Chelsea")))
	resB, err := ProbabilityPC(c, p, qB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resC, err := ProbabilityPC(c, p, qC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resB.Probability-0.6) > 1e-12 || math.Abs(resC.Probability-0.4) > 1e-12 {
		t.Errorf("P(Bradley) = %v, P(Chelsea) = %v", resB.Probability, resC.Probability)
	}
}

func TestPropertyProbabilityPCMatchesEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	events := []logic.Event{"u", "v", "w"}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := pdb.NewCInstance()
		names := []string{"a", "b", "c"}
		n := 1 + r.Intn(6)
		for i := 0; i < n; i++ {
			e := events[r.Intn(len(events))]
			var ann logic.Formula = logic.Var(e)
			switch r.Intn(4) {
			case 0:
				ann = logic.Not(ann)
			case 1:
				ann = logic.And(ann, logic.Var(events[r.Intn(len(events))]))
			case 2:
				ann = logic.Or(ann, logic.Not(logic.Var(events[r.Intn(len(events))])))
			}
			switch r.Intn(3) {
			case 0:
				c.AddFact(ann, "R", names[r.Intn(3)])
			case 1:
				c.AddFact(ann, "S", names[r.Intn(3)], names[r.Intn(3)])
			default:
				c.AddFact(ann, "T", names[r.Intn(3)])
			}
		}
		p := logic.Prob{}
		for _, e := range events {
			p[e] = r.Float64()
		}
		q := rel.HardQuery()
		want := c.QueryProbabilityEnumeration(q, p)
		res, err := ProbabilityPC(c, p, q, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if math.Abs(res.Probability-want) > 1e-9 {
			t.Logf("seed %d: engine %v, enum %v", seed, res.Probability, want)
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestChainTIDLongPathQuery(t *testing.T) {
	// 60-fact chain with a 3-step path query: enumeration would need 2^60
	// worlds; the engine answers exactly.
	tid := pdb.NewTID()
	for i := 0; i < 60; i++ {
		tid.AddFact(0.9, "E", nodeName(i), nodeName(i+1))
	}
	q := rel.NewCQ(
		rel.NewAtom("E", rel.V("x"), rel.V("y")),
		rel.NewAtom("E", rel.V("y"), rel.V("z")),
		rel.NewAtom("E", rel.V("z"), rel.V("w")),
	)
	res, err := ProbabilityTID(tid, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// P(no 3 consecutive edges all present) via a small Markov chain,
	// computed here by direct DP over the chain.
	want := 1 - probNoRun(60, 0.9, 3)
	_ = want
	// probNoRun returns P(no run of 3 successes): P(q) = 1 - that.
	if math.Abs(res.Probability-(1-probNoRun(60, 0.9, 3))) > 1e-9 {
		t.Errorf("P = %v, want %v", res.Probability, 1-probNoRun(60, 0.9, 3))
	}
}

// probNoRun computes the probability that n independent Bernoulli(p) trials
// contain no run of k consecutive successes.
func probNoRun(n int, p float64, k int) float64 {
	// state = current success streak length (0..k-1); absorbing at k.
	dp := make([]float64, k)
	dp[0] = 1
	for i := 0; i < n; i++ {
		next := make([]float64, k)
		for s, w := range dp {
			if w == 0 {
				continue
			}
			next[0] += w * (1 - p)
			if s+1 < k {
				next[s+1] += w * p
			}
		}
		dp = next
	}
	total := 0.0
	for _, w := range dp {
		total += w
	}
	return total
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/10%10)) + string(rune('0'+i%10)) + string(rune('a'+i/100))
}

func TestPossibleCertainTID(t *testing.T) {
	tid := pdb.NewTID()
	tid.AddFact(1.0, "R", "a")
	tid.AddFact(0.5, "S", "a", "b")
	tid.AddFact(1.0, "T", "b")
	q := rel.HardQuery()
	possible, err := PossibleTID(tid, q)
	if err != nil || !possible {
		t.Errorf("Possible = %v, %v; want true", possible, err)
	}
	certain, err := CertainTID(tid, q)
	if err != nil || certain {
		t.Errorf("Certain = %v, %v; want false (S fact uncertain)", certain, err)
	}
	// Make S certain too.
	tid2 := pdb.NewTID()
	tid2.AddFact(1.0, "R", "a")
	tid2.AddFact(1.0, "S", "a", "b")
	tid2.AddFact(1.0, "T", "b")
	certain, err = CertainTID(tid2, q)
	if err != nil || !certain {
		t.Errorf("Certain = %v, %v; want true", certain, err)
	}
	// Impossible query: no T fact can ever match.
	tid3 := pdb.NewTID()
	tid3.AddFact(0.5, "R", "a")
	possible, err = PossibleTID(tid3, q)
	if err != nil || possible {
		t.Errorf("Possible = %v, %v; want false", possible, err)
	}
}

func TestPropertyMonotoneLineageMatchesSemantics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tid := randomTID(r, 1+r.Intn(7))
		q := rel.HardQuery()
		c, root, err := CQLineage(tid.Inst, q, Options{})
		if err != nil {
			return false
		}
		if !c.Monotone() {
			t.Logf("seed %d: lineage not monotone", seed)
			return false
		}
		n := tid.NumFacts()
		ok := true
		for mask := 0; mask < 1<<uint(n); mask++ {
			v := logic.Valuation{}
			present := make([]bool, n)
			for i := 0; i < n; i++ {
				present[i] = mask&(1<<uint(i)) != 0
				v[FactEvent(i)] = present[i]
			}
			if c.Eval(root, v) != q.Holds(tid.World(present)) {
				ok = false
				break
			}
		}
		return ok
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestRunOnWorldMatchesCQHolds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		tid := randomTID(r, 1+r.Intn(8))
		inst := tid.Inst
		q := rel.HardQuery()
		cq := NewCQQuery(q, inst, inst.IndexDomain())
		n := inst.NumFacts()
		for rep := 0; rep < 8; rep++ {
			present := make([]bool, n)
			for i := range present {
				present[i] = r.Intn(2) == 0
			}
			got, err := RunOnWorld(inst, present, cq)
			if err != nil {
				t.Fatal(err)
			}
			world := rel.NewInstance()
			for i, keep := range present {
				if keep {
					world.Add(inst.Fact(i))
				}
			}
			if got != q.Holds(world) {
				t.Fatalf("trial %d: automaton %v, reference %v on world %s", trial, got, q.Holds(world), world)
			}
		}
	}
}

func TestEmptyInstanceAndEmptyQuery(t *testing.T) {
	tid := pdb.NewTID()
	res, err := ProbabilityTID(tid, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probability != 0 {
		t.Errorf("P on empty instance = %v, want 0", res.Probability)
	}
	res, err = ProbabilityTID(tid, rel.NewCQ(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probability != 1 {
		t.Errorf("P of empty query = %v, want 1", res.Probability)
	}
}

func TestDeterministicFactProbabilities(t *testing.T) {
	tid := pdb.NewTID()
	tid.AddFact(1.0, "R", "a")
	tid.AddFact(1.0, "S", "a", "b")
	tid.AddFact(0.0, "T", "b")
	res, err := ProbabilityTID(tid, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probability != 0 {
		t.Errorf("P = %v, want 0 (T impossible)", res.Probability)
	}
}
