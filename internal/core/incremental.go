package core

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// Materialized is a live evaluation of a compiled plan: where the one-shot
// eval discards each node's row table as soon as its parent is built, a
// Materialized view persists every table. A change to one event's probability
// then only invalidates the forget node that applies that event's Bernoulli
// weight — every other node's table is independent of it — so refreshing the
// query probability recomputes just the dirty root-path spine: O(depth) bag
// tables instead of a full bottom-up pass. This is the evaluation-state
// materialization behind internal/incr's live views (the production shape of
// dynamic query evaluation: maintain, don't recompute).
//
// Tables are dense: each node persists its row layout (layouts[t], the
// probability-independent row keys) and a flat value vector (vals[t]),
// recomputed through the node's compiled row program (progs[t], see
// rowprog.go) — so a spine recompute is pure kernel arithmetic over
// contiguous memory, with no map traffic. Programs compile lazily on first
// use and survive until a structure splice invalidates them.
//
// Updates are staged (Stage, StageAttach) and applied by Commit, which
// recomputes the union of the dirty spines in a single bottom-up sweep, so a
// batch of updates pays for each dirty node once no matter how many updates
// touched it.
//
// A Materialized view is single-writer: it must be confined to one goroutine
// (or externally locked, as incr.Store does). It may share its plan with
// ordinary Probability/Result calls — those use their own pooled state — but
// StageAttach mutates the plan's structure, after which any *other*
// Materialized view of the same plan becomes stale and refuses further
// operations. One live-updated plan therefore carries exactly one view.
type Materialized struct {
	pl        *Plan
	pe        []float64   // current per-event weights
	layouts   [][]rowKey  // persisted per-node row layouts
	vals      [][]float64 // persisted per-node row values, same order
	progs     []*nodeProg // lazily compiled per-node row programs
	dirty     []bool      // nodes whose table must be recomputed
	anyDirty  bool
	prob      float64
	recomp    int    // cumulative node recomputations, for cost accounting
	structGen uint64 // plan structure generation this view tracks
	commitGen uint64 // bumped by every Commit that recomputed something;
	// lets a ShardCombiner skip shards whose tables are unchanged
}

// Materialize runs one full evaluation of the plan under p and keeps every
// node table, returning the live view. The plan may be frozen if only event
// probabilities will change (the freeze pass visited every transition the
// recomputations can need); StageAttach additionally requires it unfrozen.
func (pl *Plan) Materialize(p logic.Prob) (*Materialized, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Materialized{
		pl:        pl,
		pe:        make([]float64, len(pl.events)),
		layouts:   make([][]rowKey, len(pl.nodes)),
		vals:      make([][]float64, len(pl.nodes)),
		progs:     make([]*nodeProg, len(pl.nodes)),
		dirty:     make([]bool, len(pl.nodes)),
		structGen: pl.structGen,
	}
	for i, e := range pl.events {
		m.pe[i] = p.P(e)
	}
	for t := range m.dirty {
		m.dirty[t] = true
	}
	m.anyDirty = true
	if _, err := m.Commit(); err != nil {
		return nil, err
	}
	m.recomp = 0 // the initial build is not an update cost
	return m, nil
}

// Probability returns the query probability under the view's current event
// weights, as of the last Commit.
func (m *Materialized) Probability() float64 { return m.prob }

// Recomputed returns the cumulative number of node tables recomputed by
// Commit since Materialize — the incremental work actually paid, which tests
// and stats compare against the full table count.
func (m *Materialized) Recomputed() int { return m.recomp }

// NumNodes returns the current number of nice nodes (and persisted tables).
func (m *Materialized) NumNodes() int { return len(m.pl.nodes) }

func (m *Materialized) check() error {
	if m.structGen != m.pl.structGen {
		return fmt.Errorf("core: the plan's structure changed under this Materialized view")
	}
	return nil
}

// Stage records a new probability for event e without recomputing anything:
// it updates the weight and marks the event's forget node dirty. Commit
// applies all staged changes at once.
func (m *Materialized) Stage(e logic.Event, pr float64) error {
	if err := m.check(); err != nil {
		return err
	}
	if err := pdb.ValidateProb(pr); err != nil {
		return fmt.Errorf("core: event %q: %w", e, err)
	}
	idx, ok := m.pl.eventIdx[e]
	if !ok {
		return fmt.Errorf("core: event %q is not an event of the plan", e)
	}
	if m.pe[idx] == pr {
		return nil
	}
	m.pe[idx] = pr
	t := m.pl.forgetAt[idx]
	if t < 0 {
		return fmt.Errorf("core: event %q has no forget node (internal invariant violated)", e)
	}
	m.dirty[t] = true
	m.anyDirty = true
	return nil
}

// StageAttach absorbs a brand-new fact into the live view: fact fi, already
// appended to the instance the plan was prepared on, is spliced into the
// compiled structure under the fresh event e with probability pr (see
// Plan.attachFact), and the new nodes are marked dirty for the next Commit.
// The plan's query must implement FactExtender, and f must not have been a
// fact of the instance before (re-adding an existing fact merges annotations
// in the instance but would home the fact twice in the plan; callers revive
// existing facts by raising their event probability instead). On any error
// the view is unchanged.
func (m *Materialized) StageAttach(f rel.Fact, fi int, e logic.Event, pr float64) error {
	if err := m.check(); err != nil {
		return err
	}
	if err := pdb.ValidateProb(pr); err != nil {
		return fmt.Errorf("core: event %q: %w", e, err)
	}
	fe, ok := m.pl.q.(FactExtender)
	if !ok {
		return fmt.Errorf("core: the plan's query does not support appended facts")
	}
	if err := fe.ExtendFacts(fi + 1); err != nil {
		return err
	}
	_, forget, err := m.pl.attachFact(f, fi, e)
	if err != nil {
		return err
	}
	m.structGen = m.pl.structGen
	// The spliced introduce/forget pair holds the last two node indices;
	// their nil programs and tables are compiled and built by the next
	// Commit.
	m.pe = append(m.pe, pr)
	m.layouts = append(m.layouts, nil, nil)
	m.vals = append(m.vals, nil, nil)
	m.progs = append(m.progs, nil, nil)
	m.dirty = append(m.dirty, true, true)
	// The splice changes the row layout flowing up from the attach point
	// (the fact transition can mint new state sets), so every ancestor's
	// compiled program — wired against the old child layouts — is stale:
	// drop them for lazy recompilation during the commit sweep.
	for a := m.pl.parents[forget]; a >= 0; a = m.pl.parents[a] {
		m.progs[a] = nil
		m.dirty[a] = true
	}
	m.anyDirty = true
	return nil
}

// Commit recomputes every table invalidated by the staged changes in one
// bottom-up sweep — dirtiness propagates from each staged node along its root
// path, and spines shared between staged updates are recomputed once — then
// refreshes Probability. Each dirty node reruns its compiled row program
// (recompiling it first when a structure splice invalidated it) over the
// persisted dense tables. It returns the number of node tables recomputed.
func (m *Materialized) Commit() (int, error) {
	if err := m.check(); err != nil {
		return 0, err
	}
	if !m.anyDirty {
		return 0, nil
	}
	n := 0
	for _, t := range m.pl.post {
		if !m.dirty[t] {
			continue
		}
		m.dirty[t] = false
		nd := &m.pl.nodes[t]
		np := m.progs[t]
		if np == nil {
			m.layouts[t], np = m.pl.compileNodeProg(t, m.layouts)
			m.progs[t] = np
		}
		if len(m.vals[t]) != np.rows {
			m.vals[t] = make([]float64, np.rows)
		} else {
			clear(m.vals[t])
		}
		var c0, c1 []float64
		if nd.child0 >= 0 {
			c0 = m.vals[nd.child0]
		}
		if nd.child1 >= 0 {
			c1 = m.vals[nd.child1]
		}
		var w float64
		if np.kind == pkForgetEvent {
			w = m.pe[np.eventIdx]
		}
		runNodeProg1(np, m.vals[t], c0, c1, w)
		n++
		if p := m.pl.parents[t]; p >= 0 {
			m.dirty[p] = true
		}
	}
	m.anyDirty = false
	m.recomp += n
	m.commitGen++
	var prob, mass float64
	rootVals := m.vals[m.pl.root]
	for i, k := range m.layouts[m.pl.root] {
		mass += rootVals[i]
		if m.pl.accept[k.set] {
			prob += rootVals[i]
		}
	}
	if massDrifted(mass) {
		return n, errMassDrift(mass)
	}
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	m.prob = prob
	return n, nil
}

// SetEventProb stages a single event-probability change and commits it,
// returning the number of node tables recomputed (at most depth+1).
func (m *Materialized) SetEventProb(e logic.Event, pr float64) (int, error) {
	if err := m.Stage(e, pr); err != nil {
		return 0, err
	}
	return m.Commit()
}

// AttachFact stages the absorption of a new fact and commits it. See
// StageAttach for the contract.
func (m *Materialized) AttachFact(f rel.Fact, fi int, e logic.Event, pr float64) (int, error) {
	if err := m.StageAttach(f, fi, e, pr); err != nil {
		return 0, err
	}
	return m.Commit()
}
