package core

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// Materialized is a live evaluation of a compiled plan: where the one-shot
// eval discards each node's row table as soon as its parent is built, a
// Materialized view persists every table. A change to one event's probability
// then only invalidates the forget node that applies that event's Bernoulli
// weight — every other node's table is independent of it — so refreshing the
// query probability recomputes just the dirty root-path spine: O(depth) bag
// tables instead of a full bottom-up pass. This is the evaluation-state
// materialization behind internal/incr's live views (the production shape of
// dynamic query evaluation: maintain, don't recompute).
//
// Tables are dense: each node persists its row layout (layouts[t], the
// probability-independent row keys) and a flat value vector (vals[t]),
// recomputed through the node's compiled row program (progs[t], see
// rowprog.go) — so a spine recompute is pure kernel arithmetic over
// contiguous memory, with no map traffic. Programs compile lazily on first
// use and survive until a structure splice invalidates them.
//
// Updates are staged (Stage, StageAttach) and applied by Commit/CommitDelta,
// which propagate *changes* in a single bottom-up sweep: a staged node is
// recomputed in full and diffed against its persisted table, and from there
// on each ancestor recomputes only the rows its child's changed rows feed
// (the compiled edge lists make the affected-row indexing free). Propagation
// stops at the first node whose recomputed table comes out identical — the
// short-circuit that makes low-impact updates and churny batches (set then
// set back, delete then revive) cost a truncated spine instead of a full
// root path. A batch of updates still pays for each dirty node at most once
// no matter how many updates touched it.
//
// The diff is exact (==, not epsilon): an ancestor's recomputed rows
// accumulate their contributions in the same program order as a full
// recompute, so a delta pass is bit-identical to recomputing every table
// from scratch and the comparison never confuses float noise for change.
//
// A Materialized view is single-writer: it must be confined to one goroutine
// (or externally locked, as incr.Store does). It may share its plan with
// ordinary Probability/Result calls — those use their own pooled state — but
// StageAttach mutates the plan's structure, after which any *other*
// Materialized view of the same plan becomes stale and refuses further
// operations. One live-updated plan therefore carries exactly one view.
type Materialized struct {
	pl        *Plan
	pe        []float64   // current per-event weights
	layouts   [][]rowKey  // persisted per-node row layouts
	vals      [][]float64 // persisted per-node row values, same order
	progs     []*nodeProg // lazily compiled per-node row programs
	dirty     []uint8     // per-node sweep flag: dirtyNone/dirtyDelta/dirtyFull
	anyDirty  bool
	prob      float64
	recomp    int    // cumulative node recomputations, for cost accounting
	structGen uint64 // plan structure generation this view tracks
	commitGen uint64 // bumped by every Commit that changed the root table;
	// lets a ShardCombiner skip shards whose tables are unchanged

	// Delta-pass state: per-node changed-row sets, valid for one CommitDelta
	// generation, plus the reusable scratch the pass runs in.
	changedRows [][]int32 // rows of node t whose value changed this pass
	changedGen  []uint64  // deltaGen changedRows[t] belongs to
	deltaGen    uint64    // bumped once per CommitDelta
	valScratch  []float64 // full-recompute target, swapped with the table on change
	oldScratch  []float64 // saved pre-values of the affected rows of a partial recompute
	affList     []int32   // affected dst rows of the node being recomputed
	dstMark     []uint64  // stamp array: affected dsts of a partial recompute
	markGen     uint64
}

// The commit sweep visits every node in postorder, so skipping the untouched
// majority must cost a single byte load — and the byte carries the whole
// propagation signal, so a node recomputed on a dense spine never touches
// the per-node changed-row arrays at all. Levels, in escalation order:
// dirtyDelta marks nodes reached by a child's sparse changed rows (recompute
// just the rows those feed); dirtyDense marks nodes reached by a child whose
// table changed wholesale (recompute in full, no diff, propagate dense);
// dirtyFull marks staged nodes (new weight, fresh splice, stale program),
// which recompute in full and diff, because that is where net-zero churn is
// caught. A node is never downgraded: a dense child overrides a sparse
// sibling, a staged node ignores both.
const (
	dirtyNone uint8 = iota
	dirtyDelta
	dirtyDense
	dirtyFull
)

// Materialize runs one full evaluation of the plan under p and keeps every
// node table, returning the live view. The plan may be frozen if only event
// probabilities will change (the freeze pass visited every transition the
// recomputations can need); StageAttach additionally requires it unfrozen.
func (pl *Plan) Materialize(p logic.Prob) (*Materialized, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Materialized{
		pl:        pl,
		pe:        make([]float64, len(pl.events)),
		layouts:   make([][]rowKey, len(pl.nodes)),
		vals:      make([][]float64, len(pl.nodes)),
		progs:     make([]*nodeProg, len(pl.nodes)),
		dirty:     make([]uint8, len(pl.nodes)),
		structGen: pl.structGen,
	}
	for i, e := range pl.events {
		m.pe[i] = p.P(e)
	}
	for t := range m.dirty {
		m.dirty[t] = dirtyFull
	}
	m.anyDirty = true
	if _, err := m.Commit(); err != nil {
		return nil, err
	}
	m.recomp = 0 // the initial build is not an update cost
	return m, nil
}

// Probability returns the query probability under the view's current event
// weights, as of the last Commit.
func (m *Materialized) Probability() float64 { return m.prob }

// Recomputed returns the cumulative number of node tables recomputed by
// Commit since Materialize — the incremental work actually paid, which tests
// and stats compare against the full table count.
func (m *Materialized) Recomputed() int { return m.recomp }

// NumNodes returns the current number of nice nodes (and persisted tables).
func (m *Materialized) NumNodes() int { return len(m.pl.nodes) }

func (m *Materialized) check() error {
	if m.structGen != m.pl.structGen {
		return fmt.Errorf("core: the plan's structure changed under this Materialized view")
	}
	return nil
}

// Stage records a new probability for event e without recomputing anything:
// it updates the weight and marks the event's forget node dirty. Commit
// applies all staged changes at once.
func (m *Materialized) Stage(e logic.Event, pr float64) error {
	if err := m.check(); err != nil {
		return err
	}
	if err := pdb.ValidateProb(pr); err != nil {
		return fmt.Errorf("core: event %q: %w", e, err)
	}
	idx, ok := m.pl.eventIdx[e]
	if !ok {
		return fmt.Errorf("core: event %q is not an event of the plan", e)
	}
	if m.pe[idx] == pr {
		return nil
	}
	m.pe[idx] = pr
	t := m.pl.forgetAt[idx]
	if t < 0 {
		return fmt.Errorf("core: event %q has no forget node (internal invariant violated)", e)
	}
	m.dirty[t] = dirtyFull
	m.anyDirty = true
	return nil
}

// StageAttach absorbs a brand-new fact into the live view: fact fi, already
// appended to the instance the plan was prepared on, is spliced into the
// compiled structure under the fresh event e with probability pr (see
// Plan.attachFact), and the new nodes are marked dirty for the next Commit.
// The plan's query must implement FactExtender, and f must not have been a
// fact of the instance before (re-adding an existing fact merges annotations
// in the instance but would home the fact twice in the plan; callers revive
// existing facts by raising their event probability instead). On any error
// the view is unchanged.
func (m *Materialized) StageAttach(f rel.Fact, fi int, e logic.Event, pr float64) error {
	if err := m.check(); err != nil {
		return err
	}
	if err := pdb.ValidateProb(pr); err != nil {
		return fmt.Errorf("core: event %q: %w", e, err)
	}
	fe, ok := m.pl.q.(FactExtender)
	if !ok {
		return fmt.Errorf("core: the plan's query does not support appended facts")
	}
	if err := fe.ExtendFacts(fi + 1); err != nil {
		return err
	}
	_, forget, err := m.pl.attachFact(f, fi, e)
	if err != nil {
		return err
	}
	m.structGen = m.pl.structGen
	// The spliced introduce/forget pair holds the last two node indices;
	// their nil programs and tables are compiled and built by the next
	// Commit.
	m.pe = append(m.pe, pr)
	m.layouts = append(m.layouts, nil, nil)
	m.vals = append(m.vals, nil, nil)
	m.progs = append(m.progs, nil, nil)
	m.dirty = append(m.dirty, dirtyFull, dirtyFull)
	// The splice changes the row layout flowing up from the attach point
	// (the fact transition can mint new state sets), so every ancestor's
	// compiled program — wired against the old child layouts — is stale:
	// drop them for lazy recompilation during the commit sweep.
	for a := m.pl.parents[forget]; a >= 0; a = m.pl.parents[a] {
		m.progs[a] = nil
		m.dirty[a] = dirtyFull
	}
	m.anyDirty = true
	return nil
}

// CommitStats reports what one CommitDelta actually did: how many node
// tables were touched, how many of their rows were recomputed (the delta
// pass recomputes only the rows a child's changes feed), how many recomputed
// tables came out identical and cut their spine short, and whether the root
// table — and with it Probability — changed at all.
type CommitStats struct {
	Nodes         int  // node tables recomputed, in full or partially
	Rows          int  // table rows recomputed across those nodes
	ShortCircuits int  // recomputed non-root tables that came out unchanged, stopping propagation
	Changed       bool // the root table (and so Probability) changed
}

// Commit applies the staged changes and returns the number of node tables
// recomputed. It is CommitDelta for callers that only track node counts.
func (m *Materialized) Commit() (int, error) {
	cs, err := m.CommitDelta()
	return cs.Nodes, err
}

// CommitDelta applies every staged change as one bottom-up change
// propagation. A staged node (new weight, fresh splice) is recomputed in
// full and diffed against its persisted table; an ancestor reached only
// through a child's changed rows recomputes just the rows those changes
// feed, accumulating contributions in program order so the result is
// bit-identical to a full recompute. A node whose recomputed table is
// unchanged propagates nothing — the walk stops there instead of running to
// the root — and when the root table itself is untouched the commit leaves
// Probability (and the commit generation a ShardCombiner caches on) alone.
// Spines shared between staged updates are recomputed once.
func (m *Materialized) CommitDelta() (CommitStats, error) {
	var cs CommitStats
	if err := m.check(); err != nil {
		return cs, err
	}
	if !m.anyDirty {
		return cs, nil
	}
	if n := len(m.pl.nodes); len(m.changedGen) < n {
		m.changedRows = append(m.changedRows, make([][]int32, n-len(m.changedRows))...)
		m.changedGen = append(m.changedGen, make([]uint64, n-len(m.changedGen))...)
	}
	m.deltaGen++
	gen := m.deltaGen
	root := m.pl.root
	rootChanged := false
	for _, t := range m.pl.post {
		d := m.dirty[t]
		if d == dirtyNone {
			continue
		}
		m.dirty[t] = dirtyNone
		nd := &m.pl.nodes[t]
		staged := d == dirtyFull
		full := staged || d == dirtyDense || m.progs[t] == nil
		var ch0, ch1 []int32
		if !full {
			// Only a sparse (dirtyDelta) node consults the children's
			// changed-row lists; dense propagation travels in the dirty
			// byte alone.
			if nd.child0 >= 0 && m.changedGen[nd.child0] == gen {
				ch0 = m.changedRows[nd.child0]
			}
			if nd.child1 >= 0 && m.changedGen[nd.child1] == gen {
				ch1 = m.changedRows[nd.child1]
			}
			if ch0 == nil && ch1 == nil {
				continue // reached, but every child short-circuited
			}
		}
		np := m.progs[t]
		recompiled := false
		if np == nil {
			m.layouts[t], np = m.pl.compileNodeProg(t, m.layouts)
			m.progs[t] = np
			recompiled = true
		}
		var c0, c1 []float64
		if nd.child0 >= 0 {
			c0 = m.vals[nd.child0]
		}
		if nd.child1 >= 0 {
			c1 = m.vals[nd.child1]
		}
		var w float64
		if np.kind == pkForgetEvent {
			w = m.pe[np.eventIdx]
		}
		// Density cutover: the partial pass pays two conditional edge scans
		// plus per-row bookkeeping, so once half a child's rows changed a
		// straight full recompute (one unconditional scan, then diff) is
		// cheaper — and on small tables the diff is nearly free.
		if !full {
			dense0 := nd.child0 >= 0 && 2*len(ch0) >= len(c0)
			dense1 := nd.child1 >= 0 && 2*len(ch1) >= len(c1)
			full = dense0 || dense1
		}
		var changed []int32
		dense := false
		switch {
		case full && !staged:
			// Reached through a dense child (or a >half-changed sparse
			// list): the table is recomputed in place with no diff, exactly
			// like a plain full sweep, and propagates dense. The diff is
			// reserved for where change originates — staged nodes, whose
			// tables often come out unchanged (net-zero churn), and sparse
			// partial recomputes — so the propagation spine pays nothing
			// over the pre-delta walk.
			m.commitTrusted(t, np, c0, c1, w, &cs)
			dense = true
		case full:
			changed, dense = m.commitFull(t, np, c0, c1, w, recompiled, m.changedRows[t][:0], &cs)
		default:
			changed = m.commitPartial(np, m.vals[t], c0, c1, w, ch0, ch1, m.changedRows[t][:0], &cs)
		}
		cs.Nodes++
		switch {
		case dense:
			if p := m.pl.parents[t]; p >= 0 && m.dirty[p] < dirtyDense {
				m.dirty[p] = dirtyDense
			}
			if t == root {
				rootChanged = true
			}
		case len(changed) > 0:
			m.changedRows[t] = changed
			m.changedGen[t] = gen
			if p := m.pl.parents[t]; p >= 0 && m.dirty[p] == dirtyNone {
				m.dirty[p] = dirtyDelta
			}
			if t == root {
				rootChanged = true
			}
		default:
			if changed != nil {
				m.changedRows[t] = changed // keep the (possibly regrown) buffer
			}
			if m.pl.parents[t] >= 0 {
				cs.ShortCircuits++
			}
		}
	}
	m.anyDirty = false
	m.recomp += cs.Nodes
	if !rootChanged {
		return cs, nil // the root table is untouched; Probability stands
	}
	cs.Changed = true
	m.commitGen++
	var prob, mass float64
	rootVals := m.vals[root]
	for i, k := range m.layouts[root] {
		mass += rootVals[i]
		if m.pl.accept[k.set] {
			prob += rootVals[i]
		}
	}
	if massDrifted(mass) {
		return cs, errMassDrift(mass)
	}
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	m.prob = prob
	return cs, nil
}

// commitFull recomputes node t's whole table into scratch and diffs it
// against the persisted one, copying the moved rows back so the persisted
// array keeps its identity (and the scratch buffer is reused commit after
// commit). The diff stops listing rows once more than half of them changed —
// at that density the parent recomputes in full anyway (the density
// cutover), so the exact set is dead weight — and reports dense=true
// instead. A recompiled program's rows are laid out against the (possibly
// new) child layouts, so its old table is not comparable row by row and
// counts as dense outright.
func (m *Materialized) commitFull(t int, np *nodeProg, c0, c1 []float64, w float64, recompiled bool, changed []int32, cs *CommitStats) ([]int32, bool) {
	if cap(m.valScratch) < np.rows {
		m.valScratch = make([]float64, np.rows)
	}
	scratch := m.valScratch[:np.rows]
	clear(scratch)
	runNodeProg1(np, scratch, c0, c1, w)
	cs.Rows += np.rows
	old := m.vals[t]
	if recompiled || len(old) != np.rows {
		m.vals[t] = append(old[:0], scratch...)
		return changed, true
	}
	dense := false
	half := len(old) / 2
	for i, v := range scratch {
		if v != old[i] {
			if len(changed) > half {
				dense = true
				break
			}
			changed = append(changed, int32(i))
		}
	}
	if dense {
		copy(old, scratch)
	} else {
		for _, i := range changed {
			old[i] = scratch[i]
		}
	}
	return changed, dense
}

// commitTrusted recomputes node t's whole table in place with no diff: the
// caller already knows the change is dense enough that checking for an
// unchanged result is not worth a scan, so the node is simply treated as
// fully changed. This is bit-identical to commitFull's recompute — only the
// bookkeeping differs.
func (m *Materialized) commitTrusted(t int, np *nodeProg, c0, c1 []float64, w float64, cs *CommitStats) {
	v := m.vals[t]
	if len(v) != np.rows {
		if cap(v) < np.rows {
			v = make([]float64, np.rows)
		} else {
			v = v[:np.rows]
		}
		m.vals[t] = v
	}
	clear(v)
	runNodeProg1(np, v, c0, c1, w)
	cs.Rows += np.rows
}

// deltaIdx is the lazily built adjacency of one compiled row program, used
// by the partial commit pass. The forward index (srcN*) maps a child row to
// the rows it feeds, for marking; the inverse index (dst*) maps a row to its
// contributions in program order, for re-accumulation. Both passes therefore
// touch only edges incident to the change, instead of scanning the whole
// program twice behind a per-edge condition.
type deltaIdx struct {
	src0Start []int32 // CSR over child0 rows: dst rows each feeds
	src0Dst   []int32
	src1Start []int32 // CSR over child1 rows (joins only)
	src1Dst   []int32
	dstStart  []int32 // CSR over this node's rows: contributions, program order
	dstSrc    []int32 // pkUnary: src row; pkForgetEvent: src<<1 | (0 for e1, 1 for e0)
	dstL      []int32 // pkJoin: left source rows
	dstR      []int32 // pkJoin: right source rows
}

// csr32 builds a stable CSR over n buckets from m entries: key(i) gives
// entry i's bucket, and fill is called with each entry's slot in key order
// (entries of one bucket keep their original relative order, which is what
// makes per-row re-accumulation bit-identical to the full program run).
func csr32(n, m int, key func(int) int32, fill func(entry, slot int)) []int32 {
	start := make([]int32, n+1)
	for i := 0; i < m; i++ {
		start[key(i)+1]++
	}
	for b := 0; b < n; b++ {
		start[b+1] += start[b]
	}
	next := make([]int32, n)
	copy(next, start[:n])
	for i := 0; i < m; i++ {
		b := key(i)
		fill(i, int(next[b]))
		next[b]++
	}
	return start
}

// buildDeltaIdx compiles the program's delta adjacency. nc0/nc1 are the
// child table sizes the forward indexes span.
func (np *nodeProg) buildDeltaIdx(nc0, nc1 int) *deltaIdx {
	di := &deltaIdx{}
	switch np.kind {
	case pkUnary:
		di.src0Dst = make([]int32, len(np.edges))
		di.src0Start = csr32(nc0, len(np.edges),
			func(i int) int32 { return np.edges[i].src },
			func(i, s int) { di.src0Dst[s] = np.edges[i].dst })
		di.dstSrc = make([]int32, len(np.edges))
		di.dstStart = csr32(np.rows, len(np.edges),
			func(i int) int32 { return np.edges[i].dst },
			func(i, s int) { di.dstSrc[s] = np.edges[i].src })
	case pkForgetEvent:
		// One merged edge list in program order — all e1 (weight w), then
		// all e0 (weight 1-w) — with the branch encoded in the low bit.
		n1 := len(np.e1)
		n := n1 + len(np.e0)
		at := func(i int) (rpEdge, int32) {
			if i < n1 {
				return np.e1[i], 0
			}
			return np.e0[i-n1], 1
		}
		di.src0Dst = make([]int32, n)
		di.src0Start = csr32(nc0, n,
			func(i int) int32 { e, _ := at(i); return e.src },
			func(i, s int) { e, _ := at(i); di.src0Dst[s] = e.dst })
		di.dstSrc = make([]int32, n)
		di.dstStart = csr32(np.rows, n,
			func(i int) int32 { e, _ := at(i); return e.dst },
			func(i, s int) { e, k := at(i); di.dstSrc[s] = e.src<<1 | k })
	case pkJoin:
		di.src0Dst = make([]int32, len(np.joins))
		di.src0Start = csr32(nc0, len(np.joins),
			func(i int) int32 { return np.joins[i].l },
			func(i, s int) { di.src0Dst[s] = np.joins[i].dst })
		di.src1Dst = make([]int32, len(np.joins))
		di.src1Start = csr32(nc1, len(np.joins),
			func(i int) int32 { return np.joins[i].r },
			func(i, s int) { di.src1Dst[s] = np.joins[i].dst })
		di.dstL = make([]int32, len(np.joins))
		di.dstR = make([]int32, len(np.joins))
		di.dstStart = csr32(np.rows, len(np.joins),
			func(i int) int32 { return np.joins[i].dst },
			func(i, s int) { di.dstL[s], di.dstR[s] = np.joins[i].l, np.joins[i].r })
	}
	np.delta = di
	return di
}

// commitPartial recomputes, in place, only the rows of vals that the
// children's changed rows feed: it marks the dst rows reachable from ch0/ch1
// through the program's delta adjacency, zeroes them, and re-accumulates
// every contribution into those rows in program order — so a recomputed row
// is bit-identical to what a full recompute would produce, and the
// unaffected rows (whose inputs are untouched) already are. Work is
// proportional to the edges incident to the changed and affected rows, not
// to the program size.
func (m *Materialized) commitPartial(np *nodeProg, vals, c0, c1 []float64, w float64, ch0, ch1 []int32, changed []int32, cs *CommitStats) []int32 {
	di := np.delta
	if di == nil {
		di = np.buildDeltaIdx(len(c0), len(c1))
	}
	m.markGen++
	mg := m.markGen
	dst := ensureMark(&m.dstMark, np.rows)
	aff := m.affList[:0]
	for _, r := range ch0 {
		for _, d := range di.src0Dst[di.src0Start[r]:di.src0Start[r+1]] {
			if dst[d] != mg {
				dst[d] = mg
				aff = append(aff, d)
			}
		}
	}
	for _, r := range ch1 {
		for _, d := range di.src1Dst[di.src1Start[r]:di.src1Start[r+1]] {
			if dst[d] != mg {
				dst[d] = mg
				aff = append(aff, d)
			}
		}
	}
	if cap(m.oldScratch) < len(aff) {
		m.oldScratch = make([]float64, len(aff))
	}
	oldv := m.oldScratch[:len(aff)]
	for i, d := range aff {
		oldv[i] = vals[d]
		vals[d] = 0
	}
	switch np.kind {
	case pkUnary:
		for _, d := range aff {
			v := vals[d]
			for _, s := range di.dstSrc[di.dstStart[d]:di.dstStart[d+1]] {
				v += c0[s]
			}
			vals[d] = v
		}
	case pkForgetEvent:
		w1m := 1 - w
		for _, d := range aff {
			v := vals[d]
			for _, s := range di.dstSrc[di.dstStart[d]:di.dstStart[d+1]] {
				if s&1 == 0 {
					v += c0[s>>1] * w
				} else {
					v += c0[s>>1] * w1m
				}
			}
			vals[d] = v
		}
	case pkJoin:
		for _, d := range aff {
			v := vals[d]
			for i := di.dstStart[d]; i < di.dstStart[d+1]; i++ {
				v += c0[di.dstL[i]] * c1[di.dstR[i]]
			}
			vals[d] = v
		}
	}
	cs.Rows += len(aff)
	for i, d := range aff {
		if vals[d] != oldv[i] {
			changed = append(changed, d)
		}
	}
	m.affList = aff[:0]
	return changed
}

// ensureMark resizes a stamp array to n entries; stale stamps from earlier
// generations never match the current one, so no clearing is needed.
func ensureMark(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	return (*buf)[:n]
}

// SetEventProb stages a single event-probability change and commits it,
// returning the number of node tables recomputed (at most depth+1).
func (m *Materialized) SetEventProb(e logic.Event, pr float64) (int, error) {
	if err := m.Stage(e, pr); err != nil {
		return 0, err
	}
	return m.Commit()
}

// AttachFact stages the absorption of a new fact and commits it. See
// StageAttach for the contract.
func (m *Materialized) AttachFact(f rel.Fact, fi int, e logic.Event, pr float64) (int, error) {
	if err := m.StageAttach(f, fi, e, pr); err != nil {
		return 0, err
	}
	return m.Commit()
}
