package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// TestMaterializedMatchesEval drives random single-event probability changes
// through a Materialized view and checks every refreshed probability against
// a fresh full evaluation of the same plan — including on a correlated
// pc-instance, where one event annotates several facts.
func TestMaterializedMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	type instance struct {
		name string
		c    *pdb.CInstance
		p    logic.Prob
		q    rel.CQ
	}
	corrC, corrP := gen.CorrelatedPC(24, 4, r)
	chain := gen.RSTChain(20, 0.5)
	chainC, chainP := chain.ToCInstance()
	cases := []instance{
		{"chain", chainC, chainP, rel.HardQuery()},
		{"correlated", corrC, corrP, rel.NewCQ(
			rel.NewAtom("E", rel.V("x"), rel.V("y")),
			rel.NewAtom("E", rel.V("y"), rel.V("z")),
		)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl, err := PrepareCQ(tc.c, tc.q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			p := logic.Prob{}
			for e, pr := range tc.p {
				p[e] = pr
			}
			m, err := pl.Materialize(p)
			if err != nil {
				t.Fatal(err)
			}
			events := tc.c.Events()
			for step := 0; step < 40; step++ {
				e := events[r.Intn(len(events))]
				pr := float64(r.Intn(11)) / 10
				p[e] = pr
				n, err := m.SetEventProb(e, pr)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if n > m.NumNodes() {
					t.Fatalf("step %d: recomputed %d of %d nodes", step, n, m.NumNodes())
				}
				want, err := pl.Probability(p)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(m.Probability()-want) > 1e-12 {
					t.Fatalf("step %d: materialized %v, eval %v", step, m.Probability(), want)
				}
			}
		})
	}
}

// TestMaterializedSpineIsSublinear checks the dirty-spine invariant that the
// incremental layer's cost model rests on: a single event change recomputes
// at most depth+1 tables, and on average far fewer than the full node count.
func TestMaterializedSpineIsSublinear(t *testing.T) {
	tid := gen.RSTChain(60, 0.5)
	pl, p, err := PrepareTID(tid, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := pl.Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	depth := pl.Shape().Depth
	updates := 0
	for i := 0; i < tid.NumFacts(); i += 7 {
		n, err := m.SetEventProb(tid.EventOf(i), 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if n > depth+1 {
			t.Fatalf("fact %d: recomputed %d nodes, depth is %d", i, n, depth)
		}
		updates++
	}
	if avg := m.Recomputed() / updates; avg >= m.NumNodes()/2 {
		t.Fatalf("average recomputation %d of %d nodes is not sublinear", avg, m.NumNodes())
	}
}

// TestMaterializedBatchSharesSpines stages several event changes and commits
// once: shared spine segments must be recomputed a single time, so the batch
// costs less than the same changes committed one by one.
func TestMaterializedBatchSharesSpines(t *testing.T) {
	tid := gen.RSTChain(40, 0.5)
	q := rel.HardQuery()
	mk := func() *Materialized {
		pl, p, err := PrepareTID(tid, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := pl.Materialize(p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	batched, serial := mk(), mk()
	ids := []int{3, 17, 31, 45, 59}
	for _, i := range ids {
		if err := batched.Stage(tid.EventOf(i), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	nBatch, err := batched.Commit()
	if err != nil {
		t.Fatal(err)
	}
	nSerial := 0
	for _, i := range ids {
		n, err := serial.SetEventProb(tid.EventOf(i), 0.1)
		if err != nil {
			t.Fatal(err)
		}
		nSerial += n
	}
	if nBatch >= nSerial {
		t.Errorf("batched commit recomputed %d nodes, serial %d", nBatch, nSerial)
	}
	if math.Abs(batched.Probability()-serial.Probability()) > 1e-12 {
		t.Errorf("batched %v, serial %v", batched.Probability(), serial.Probability())
	}
}

// TestMaterializedDeltaShortCircuit: a batch that nets out to no change —
// an event staged away from and back to its committed weight — recomputes
// the staged leaf, finds the table identical, and stops there: no spine
// walk, no root recompute, and Probability is bit-identical (the table was
// never touched, so not even float noise moves).
func TestMaterializedDeltaShortCircuit(t *testing.T) {
	tid := gen.RSTChain(30, 0.5)
	pl, p, err := PrepareTID(tid, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := pl.Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Probability()
	e := tid.EventOf(7)
	orig := p[e]
	if err := m.Stage(e, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := m.Stage(e, orig); err != nil {
		t.Fatal(err)
	}
	cs, err := m.CommitDelta()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Changed {
		t.Fatalf("net-zero churn reported a changed root: %+v", cs)
	}
	if cs.Nodes == 0 || cs.Rows == 0 {
		t.Fatalf("churn staged nothing: %+v", cs)
	}
	if cs.ShortCircuits == 0 {
		t.Fatalf("unchanged table did not cut the spine: %+v", cs)
	}
	if cs.Nodes > 2 {
		t.Fatalf("short-circuited churn still walked %d nodes", cs.Nodes)
	}
	if got := m.Probability(); got != before {
		t.Fatalf("probability moved on a no-op commit: %v -> %v", before, got)
	}

	// A genuine change afterwards still propagates and matches the oracle.
	if err := m.Stage(e, 0.9); err != nil {
		t.Fatal(err)
	}
	cs, err = m.CommitDelta()
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Changed || cs.ShortCircuits != 0 {
		t.Fatalf("real change did not propagate to the root: %+v", cs)
	}
	p[e] = 0.9
	want, err := pl.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Probability()-want) > 1e-12 {
		t.Fatalf("after churn + change: materialized %v, eval %v", m.Probability(), want)
	}
}

// TestMaterializedDeltaMatchesOracle drives random staged batches through
// CommitDelta and checks every refreshed probability against a full
// evaluation, while asserting the delta pass recomputes a strict subset of
// the view's rows for small batches on a long chain.
func TestMaterializedDeltaMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	tid := gen.RSTChain(50, 0.5)
	pl, p, err := PrepareTID(tid, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := pl.Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	events := tid.NumFacts()
	depth := pl.Shape().Depth
	for round := 0; round < 25; round++ {
		k := 1 + r.Intn(3)
		for j := 0; j < k; j++ {
			e := tid.EventOf(r.Intn(events))
			pr := float64(r.Intn(11)) / 10
			p[e] = pr
			if err := m.Stage(e, pr); err != nil {
				t.Fatal(err)
			}
		}
		cs, err := m.CommitDelta()
		if err != nil {
			t.Fatal(err)
		}
		want, err := pl.Probability(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Probability()-want) > 1e-12 {
			t.Fatalf("round %d: materialized %v, eval %v", round, m.Probability(), want)
		}
		// A ≤3-event batch walks at most 3 spines (shared segments counted
		// once), never the whole plan.
		if cs.Nodes > k*(depth+1) {
			t.Fatalf("round %d: %d staged events recomputed %d nodes (depth %d)", round, k, cs.Nodes, depth)
		}
	}
}

// TestMaterializedAttach grows a live view fact by fact and checks each
// refreshed probability against a plan freshly prepared on the grown
// instance.
func TestMaterializedAttach(t *testing.T) {
	c := pdb.NewCInstance()
	p := logic.Prob{}
	add := func(e logic.Event, pr float64, rl string, args ...string) {
		c.AddFact(logic.Var(e), rl, args...)
		p[e] = pr
	}
	add("e0", 0.9, "R", "a")
	add("e1", 0.5, "S", "a", "b")
	add("e2", 0.8, "T", "b")
	add("e3", 0.7, "S", "a", "c")
	q := rel.HardQuery()
	pl, err := PrepareCQ(c, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := pl.Materialize(p)
	if err != nil {
		t.Fatal(err)
	}

	attach := func(e logic.Event, pr float64, rl string, args ...string) {
		t.Helper()
		f := rel.NewFact(rl, args...)
		if !pl.CanAttach(f) {
			t.Fatalf("cannot attach %s", f)
		}
		fi := c.Add(f, logic.Var(e))
		p[e] = pr
		if _, err := m.AttachFact(f, fi, e, pr); err != nil {
			t.Fatal(err)
		}
		// Oracle: a fresh plan over the grown instance.
		fresh, err := PrepareCQ(c, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Probability(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Probability()-want) > 1e-12 {
			t.Fatalf("after attaching %s: materialized %v, fresh %v", f, m.Probability(), want)
		}
	}
	attach("e4", 0.4, "T", "c") // completes the a-c path
	attach("e5", 0.6, "R", "b") // new R witness
	attach("e6", 0.3, "T", "a") // unary fact on an existing element
	attach("e7", 0.2, "R", "c") // another unary witness

	// Probability changes on attached facts ride the same dirty-spine path.
	if _, err := m.SetEventProb("e6", 0.9); err != nil {
		t.Fatal(err)
	}
	fresh, err := PrepareCQ(c, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p["e6"] = 0.9
	want, err := fresh.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Probability()-want) > 1e-12 {
		t.Fatalf("after SetEventProb on attached fact: %v vs %v", m.Probability(), want)
	}

	// A fact with an unknown constant cannot be absorbed.
	if pl.CanAttach(rel.NewFact("T", "zzz")) {
		t.Error("CanAttach accepted a fact outside the domain")
	}
}

// TestMaterializedAttachOnChainFallbackCase checks that CanAttach refuses a
// fact whose argument vertices share no bag of the decomposition.
func TestMaterializedAttachOnChainFallbackCase(t *testing.T) {
	tid := gen.RSTChain(30, 0.5)
	pl, _, err := PrepareTID(tid, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// v0 and v25 are far apart on the chain: no bag holds both.
	if pl.CanAttach(rel.NewFact("S", "v0", "v25")) {
		t.Error("CanAttach accepted a scope no bag covers")
	}
	if !pl.CanAttach(rel.NewFact("S", "v3", "v4")) {
		t.Error("CanAttach refused an in-bag scope")
	}
}

// TestMaterializedFrozenAndStale covers the guard rails: attach on a frozen
// plan fails, a second view goes stale once the first one attaches, and
// staging validates its inputs.
func TestMaterializedFrozenAndStale(t *testing.T) {
	tid := gen.RSTChain(4, 0.5)
	pl, p, err := PrepareTID(tid, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := pl.Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Stage("nosuch", 0.5); err == nil {
		t.Error("Stage accepted an unknown event")
	}
	if err := m.Stage(tid.EventOf(0), math.NaN()); err == nil {
		t.Error("Stage accepted NaN")
	}
	if err := m.Stage(tid.EventOf(0), 1.5); err == nil {
		t.Error("Stage accepted 1.5")
	}

	// Frozen plans still serve SetEventProb but refuse attach.
	fp, fpP, err := PrepareTID(tid, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.Freeze(); err != nil {
		t.Fatal(err)
	}
	fm, err := fp.Materialize(fpP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fm.SetEventProb(tid.EventOf(1), 0.2); err != nil {
		t.Errorf("SetEventProb on frozen plan: %v", err)
	}
	if fp.CanAttach(rel.NewFact("R", "v0")) {
		t.Error("CanAttach on a frozen plan")
	}

	// A second view of the same plan goes stale after the first attaches.
	c, cp := tid.ToCInstance()
	spl, err := PrepareCQ(c, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := spl.Materialize(cp)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := spl.Materialize(cp)
	if err != nil {
		t.Fatal(err)
	}
	f := rel.NewFact("R", "v1")
	fi := c.Add(f, logic.Var("fresh"))
	if _, err := v1.AttachFact(f, fi, "fresh", 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := v2.SetEventProb(tid.EventOf(0), 0.1); err == nil {
		t.Error("stale view accepted an update after a foreign attach")
	}
}

// TestMaterializedManyAttachesMatchOracle interleaves attaches and
// probability changes on a mid-size chain, comparing against fresh plans.
func TestMaterializedManyAttachesMatchOracle(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tid := gen.RSTChain(12, 0.5)
	c, p := tid.ToCInstance()
	q := rel.HardQuery()
	pl, err := PrepareCQ(c, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := pl.Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for step := 0; step < 30; step++ {
		if r.Intn(2) == 0 {
			// Random S edge between adjacent chain elements (covered bags).
			i := r.Intn(12)
			f := rel.NewFact("S", fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1))
			if c.Inst.IndexOf(f) >= 0 || !pl.CanAttach(f) {
				continue
			}
			e := logic.Event(fmt.Sprintf("new%d", next))
			next++
			pr := float64(1+r.Intn(9)) / 10
			fi := c.Add(f, logic.Var(e))
			p[e] = pr
			if _, err := m.AttachFact(f, fi, e, pr); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		} else {
			events := c.Events()
			e := events[r.Intn(len(events))]
			pr := float64(r.Intn(11)) / 10
			p[e] = pr
			if _, err := m.SetEventProb(e, pr); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		fresh, err := PrepareCQ(c, q, Options{})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, err := fresh.Probability(p)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if math.Abs(m.Probability()-want) > 1e-12 {
			t.Fatalf("step %d: materialized %v, fresh %v", step, m.Probability(), want)
		}
	}
}
