// Package kernel provides the lane-block primitives of the multi-lane
// dynamic program: tight loops over contiguous []float64 blocks (one weight
// lane per probability assignment), written so the Go compiler eliminates
// bounds checks and keeps the loop bodies branch-free. Every DP row operation
// — accumulate, weighted accumulate, complement-weighted accumulate,
// pairwise multiply-accumulate — reduces to one of these, so the entire
// per-row cost of a batched evaluation is a handful of sequential float
// operations over adjacent memory.
//
// The loops are plain stride-1 Go: on amd64 the compiler emits unrolled
// scalar SSE2 by default and contracts the multiply-adds to FMA under
// GOAMD64=v3 (see BenchmarkKernels for the measured effect). Hand-written
// assembly would vectorize further but is deliberately avoided: the blocks
// are short (one per table row) and the portable form keeps every build —
// including -race and fuzzing — on the same code path.
//
// An Arena recycles the blocks between evaluations so the steady-state
// allocation-free property of the evaluation path survives the kernel layer.
package kernel

// AddTo accumulates src into dst: dst[i] += src[i]. The blocks must have
// equal length.
//
//pdblint:hotpath boundshint
func AddTo(dst, src []float64) {
	_ = src[len(dst)-1] // one bounds check for both blocks
	for i := range dst {
		dst[i] += src[i]
	}
}

// MulAdd accumulates v weighted by w into dst: dst[i] += v[i] * w[i]. It is
// both the forget-event kernel (w = the event's Bernoulli lane weights, for
// rows that recorded the event true) and the join kernel (w = the right
// child's row block). The blocks must have equal length.
//
//pdblint:hotpath boundshint
func MulAdd(dst, v, w []float64) {
	n := len(dst)
	_ = v[n-1]
	_ = w[n-1]
	for i := 0; i < n; i++ {
		dst[i] += v[i] * w[i]
	}
}

// FMAdd1m accumulates v weighted by the complement of w into dst:
// dst[i] += v[i] * (1 - w[i]) — the forget-event kernel for rows that
// recorded the event false. The blocks must have equal length.
//
//pdblint:hotpath boundshint
func FMAdd1m(dst, v, w []float64) {
	n := len(dst)
	_ = v[n-1]
	_ = w[n-1]
	for i := 0; i < n; i++ {
		dst[i] += v[i] * (1 - w[i])
	}
}

// ScaleAdd accumulates v scaled by the single weight c into dst:
// dst[i] += v[i] * c — the scalar-weight form used by the cross-shard fold
// and single-lane spine recomputation. The blocks must have equal length.
//
//pdblint:hotpath boundshint
func ScaleAdd(dst, v []float64, c float64) {
	_ = v[len(dst)-1]
	for i := range dst {
		dst[i] += v[i] * c
	}
}

// Mul multiplies dst pointwise by v: dst[i] *= v[i] (the decomposable-And
// kernel of the d-DNNF batch pass). The blocks must have equal length.
//
//pdblint:hotpath boundshint
func Mul(dst, v []float64) {
	_ = v[len(dst)-1]
	for i := range dst {
		dst[i] *= v[i]
	}
}

// OneMinus writes the complement of src into dst: dst[i] = 1 - src[i]. The
// blocks must have equal length.
//
//pdblint:hotpath boundshint
func OneMinus(dst, src []float64) {
	_ = src[len(dst)-1]
	for i := range dst {
		dst[i] = 1 - src[i]
	}
}

// Fill sets every element of dst to v.
//
//pdblint:hotpath
func Fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// Arena recycles lane blocks by power-of-two size class. Get returns a
// zeroed block; Put recycles one. A single evaluation acquires one block per
// DP node and releases it as soon as its parent has consumed it, so the
// arena's working set stays proportional to the live frontier of the
// bottom-up sweep, and repeated evaluations through a pooled evaluation
// state allocate nothing at steady state.
//
// An Arena is single-writer, like the evaluation state embedding it.
type Arena struct {
	free [33][][]float64
}

// class returns the smallest power-of-two class index holding n elements.
func class(n int) int {
	c := 0
	for 1<<c < n {
		c++
	}
	return c
}

// Get returns a zeroed block of length n, recycling a previously Put block
// of the same size class when one is free.
//
//pdblint:hotpath
func (a *Arena) Get(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := class(n)
	if l := len(a.free[c]); l > 0 {
		b := a.free[c][l-1]
		a.free[c] = a.free[c][:l-1]
		b = b[:n]
		clear(b)
		return b
	}
	return make([]float64, n, 1<<c)
}

// Put recycles a block obtained from Get. The caller must not use the block
// afterwards.
//
//pdblint:hotpath
func (a *Arena) Put(b []float64) {
	if cap(b) == 0 {
		return
	}
	c := class(cap(b))
	if 1<<c != cap(b) {
		c-- // capacity between classes: file under the class it can serve
	}
	a.free[c] = append(a.free[c], b[:cap(b)])
}
