package kernel

import (
	"fmt"
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestPrimitives(t *testing.T) {
	for _, n := range []int{1, 3, 8, 64, 257} {
		dst := make([]float64, n)
		v := make([]float64, n)
		w := make([]float64, n)
		for i := range v {
			dst[i] = float64(i)
			v[i] = 0.5 + float64(i%7)/10
			w[i] = float64(i%11) / 10
		}
		ref := append([]float64(nil), dst...)

		AddTo(dst, v)
		for i := range dst {
			if !almost(dst[i], ref[i]+v[i]) {
				t.Fatalf("AddTo n=%d i=%d: %v", n, i, dst[i])
			}
		}
		copy(ref, dst)
		MulAdd(dst, v, w)
		for i := range dst {
			if !almost(dst[i], ref[i]+v[i]*w[i]) {
				t.Fatalf("MulAdd n=%d i=%d: %v", n, i, dst[i])
			}
		}
		copy(ref, dst)
		FMAdd1m(dst, v, w)
		for i := range dst {
			if !almost(dst[i], ref[i]+v[i]*(1-w[i])) {
				t.Fatalf("FMAdd1m n=%d i=%d: %v", n, i, dst[i])
			}
		}
		copy(ref, dst)
		ScaleAdd(dst, v, 0.25)
		for i := range dst {
			if !almost(dst[i], ref[i]+0.25*v[i]) {
				t.Fatalf("ScaleAdd n=%d i=%d: %v", n, i, dst[i])
			}
		}
		copy(ref, dst)
		Mul(dst, v)
		for i := range dst {
			if !almost(dst[i], ref[i]*v[i]) {
				t.Fatalf("Mul n=%d i=%d: %v", n, i, dst[i])
			}
		}
		OneMinus(dst, v)
		for i := range dst {
			if !almost(dst[i], 1-v[i]) {
				t.Fatalf("OneMinus n=%d i=%d: %v", n, i, dst[i])
			}
		}
		Fill(dst, 0.75)
		for i := range dst {
			if dst[i] != 0.75 {
				t.Fatalf("Fill n=%d i=%d: %v", n, i, dst[i])
			}
		}
	}
}

func TestArenaRecyclesAndZeroes(t *testing.T) {
	var a Arena
	b := a.Get(48)
	if len(b) != 48 || cap(b) != 64 {
		t.Fatalf("Get(48): len=%d cap=%d, want 48/64", len(b), cap(b))
	}
	for i := range b {
		b[i] = 1
	}
	a.Put(b)
	c := a.Get(50) // same class: must reuse and come back zeroed
	if cap(c) != 64 {
		t.Fatalf("Get(50) after Put: cap=%d, want recycled 64", cap(c))
	}
	for i, x := range c {
		if x != 0 {
			t.Fatalf("recycled block not zeroed at %d: %v", i, x)
		}
	}
	if got := a.Get(0); got != nil {
		t.Fatalf("Get(0) = %v, want nil", got)
	}
	a.Put(nil) // must not panic
}

// BenchmarkKernels measures the primitives at the block sizes the DP uses
// (the lane counts of a batch). Run with GOAMD64=v3 to see the FMA effect.
func BenchmarkKernels(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		dst := make([]float64, n)
		v := make([]float64, n)
		w := make([]float64, n)
		for i := range v {
			v[i] = 0.5
			w[i] = 0.25
		}
		b.Run(fmt.Sprintf("MulAdd/lanes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulAdd(dst, v, w)
			}
		})
		b.Run(fmt.Sprintf("AddTo/lanes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AddTo(dst, v)
			}
		})
	}
}
