package core

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
	"repro/internal/treedec"
)

// FactEvent is the canonical event name standing for the presence of fact
// fi in lineage circuits over fact variables.
func FactEvent(fi int) logic.Event {
	return logic.Event(fmt.Sprintf("f%d", fi))
}

// MonotoneLineage runs the nondeterministic bag automaton q over a nice
// tree decomposition of the instance's Gaifman graph and returns a monotone
// lineage circuit over the per-fact variables f0, f1, ...: the circuit is
// true under a valuation exactly when the query holds on the world
// containing the facts whose variable is true.
//
// For monotone queries this circuit is a provenance circuit: evaluating it
// in any absorptive commutative semiring (internal/provenance) yields the
// query's semiring provenance, the Section 2.2 connection. Possibility and
// certainty of the query on a TID follow in O(gates) by the monotone fast
// path of circuit.Possible and circuit.Certain.
//
// The circuit may contain redundant derivations (the automaton is not
// determinized), so its probability must be computed by enumeration or
// message passing, not by the d-DNNF pass; use EvaluatePC for tractable
// probabilities.
func MonotoneLineage(inst *rel.Instance, q Query, opts Options) (*circuit.Circuit, circuit.Gate, error) {
	di := inst.IndexDomain()
	g := inst.GaifmanGraph(di)
	d := opts.Joint
	if d == nil {
		d = treedec.Decompose(g, opts.Heuristic)
	} else if err := d.Validate(g); err != nil {
		return nil, 0, fmt.Errorf("core: supplied decomposition invalid: %w", err)
	}
	nice := treedec.MakeNice(d)
	assign, err := nice.AssignScopes(inst.FactScopes(di))
	if err != nil {
		return nil, 0, err
	}
	factsAt := make([][]int, nice.NumNodes())
	for fi, node := range assign {
		factsAt[node] = append(factsAt[node], fi)
	}

	c := circuit.New()
	tables := make([]map[string]circuit.Gate, nice.NumNodes())
	orInto := func(tab map[string]circuit.Gate, st string, g circuit.Gate) {
		if prev, ok := tab[st]; ok {
			tab[st] = c.Or(prev, g)
		} else {
			tab[st] = g
		}
	}
	for _, t := range nice.PostOrder() {
		nd := nice.Nodes[t]
		tab := map[string]circuit.Gate{}
		switch nd.Kind {
		case treedec.NiceLeaf:
			for _, st := range q.Start() {
				tab[st] = c.Const(true)
			}
		case treedec.NiceIntroduce, treedec.NiceForget:
			child := tables[nd.Children[0]]
			tables[nd.Children[0]] = nil
			for st, g := range child {
				var succs []string
				if nd.Kind == treedec.NiceIntroduce {
					succs = q.Introduce(st, nd.Vertex)
				} else {
					succs = q.Forget(st, nd.Vertex)
				}
				for _, s := range succs {
					orInto(tab, s, g)
				}
			}
		case treedec.NiceJoin:
			left := tables[nd.Children[0]]
			right := tables[nd.Children[1]]
			tables[nd.Children[0]] = nil
			tables[nd.Children[1]] = nil
			for sa, ga := range left {
				for sb, gb := range right {
					if m, ok := q.Join(sa, sb); ok {
						orInto(tab, m, c.And(ga, gb))
					}
				}
			}
		}
		for _, fi := range factsAt[t] {
			lit := c.Var(FactEvent(fi))
			next := make(map[string]circuit.Gate, len(tab))
			for st, g := range tab {
				next[st] = g
			}
			for st, g := range tab {
				for _, s := range q.FactTransitions(st, fi) {
					orInto(next, s, c.And(g, lit))
				}
			}
			tab = next
		}
		tables[t] = tab
	}

	var accept []circuit.Gate
	for st, g := range tables[nice.Root] {
		if q.Accept(st) {
			accept = append(accept, g)
		}
	}
	// Deterministic OR order for reproducible circuits.
	sortGates(accept)
	return c, c.Or(accept...), nil
}

func sortGates(gs []circuit.Gate) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gs[j] < gs[j-1]; j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}

// CQLineage builds the monotone lineage circuit of a conjunctive query over
// the candidate facts of an instance.
func CQLineage(inst *rel.Instance, q rel.CQ, opts Options) (*circuit.Circuit, circuit.Gate, error) {
	cq := NewCQQuery(q, inst, inst.IndexDomain())
	return MonotoneLineage(inst, cq, opts)
}

// PossibleTID reports whether q holds in some possible world of the TID with
// positive probability, via the monotone lineage fast path: facts with
// probability 0 are fixed absent, facts with probability 1 present.
func PossibleTID(t *pdb.TID, q rel.CQ) (bool, error) {
	c, root, err := CQLineage(t.Inst, q, Options{})
	if err != nil {
		return false, err
	}
	v := logic.Valuation{}
	for i := 0; i < t.NumFacts(); i++ {
		v[FactEvent(i)] = t.Probs[i] > 0
	}
	return c.Eval(root, v), nil
}

// CertainTID reports whether q holds in every positive-probability world of
// the TID: by monotonicity it suffices to test the minimal world, which
// keeps exactly the probability-1 facts.
func CertainTID(t *pdb.TID, q rel.CQ) (bool, error) {
	c, root, err := CQLineage(t.Inst, q, Options{})
	if err != nil {
		return false, err
	}
	v := logic.Valuation{}
	for i := 0; i < t.NumFacts(); i++ {
		v[FactEvent(i)] = t.Probs[i] >= 1
	}
	return c.Eval(root, v), nil
}
