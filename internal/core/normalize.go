package core

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/rel"
)

// NormalizeCQ returns a canonical form of q: atoms reordered
// deterministically and variables renamed to x0, x1, ... in order of first
// use by the reordered atoms. Normalization preserves the query's semantics
// exactly — reordering a conjunction and renaming bound variables never
// changes the Boolean query — so a plan prepared for the normalized query
// answers the original, and two queries that differ only in atom order,
// variable names or whitespace normalize to the same value.
//
// The renaming is greedy, not a full canonical labeling (graph
// canonization is not worth its cost for a cache key): two queries related
// by an exotic variable automorphism may still normalize differently. That
// is sound for caching — distinct normal forms only cost a duplicate plan,
// never a wrong answer.
func NormalizeCQ(q rel.CQ) rel.CQ {
	n := len(q.Atoms)
	rename := make(map[string]string, 8)
	placed := make([]bool, n)
	out := make([]rel.Atom, 0, n)
	for len(out) < n {
		// Pick the unplaced atom minimal under the current partial renaming:
		// named variables compare by their assigned canonical name,
		// still-unnamed ones by their first-occurrence pattern within the
		// candidate atom, so the choice is independent of the input names.
		best, bestKey := -1, ""
		for i := range q.Atoms {
			if placed[i] {
				continue
			}
			key := atomSortKey(q.Atoms[i], rename)
			if best < 0 || key < bestKey {
				best, bestKey = i, key
			}
		}
		a := q.Atoms[best]
		placed[best] = true
		terms := make([]rel.Term, len(a.Terms))
		for j, t := range a.Terms {
			if !t.IsVar {
				terms[j] = t
				continue
			}
			name, ok := rename[t.Name]
			if !ok {
				name = "x" + strconv.Itoa(len(rename))
				rename[t.Name] = name
			}
			terms[j] = rel.V(name)
		}
		out = append(out, rel.NewAtom(a.Rel, terms...))
	}
	return rel.NewCQ(out...)
}

// atomSortKey renders an atom for the normalization ordering: relation name,
// arity, then per term either the constant, the already-assigned canonical
// variable name, or a name-independent placeholder describing where an
// unnamed variable first occurred within this atom (so repeated variables
// compare equal across renamings).
func atomSortKey(a rel.Atom, rename map[string]string) string {
	var b strings.Builder
	b.WriteString(a.Rel)
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(len(a.Terms)))
	local := map[string]int{}
	for _, t := range a.Terms {
		b.WriteByte('\x1f')
		switch {
		case !t.IsVar:
			b.WriteString("c:")
			b.WriteString(t.Name)
		default:
			if name, ok := rename[t.Name]; ok {
				b.WriteString("v:")
				b.WriteString(name)
			} else {
				j, ok := local[t.Name]
				if !ok {
					j = len(local)
					local[t.Name] = j
				}
				b.WriteString("n:")
				b.WriteString(strconv.Itoa(j))
			}
		}
	}
	return b.String()
}

// FingerprintCQ returns a canonical string identifying q's normalized shape,
// usable as a map key: two conjunctive queries that differ only in atom
// order or variable naming fingerprint identically, so they can share one
// compiled plan (the plan-cache key of the query service).
func FingerprintCQ(q rel.CQ) string {
	return FingerprintNormalized(NormalizeCQ(q))
}

// FingerprintNormalized renders the fingerprint of an already-normalized
// query (a NormalizeCQ result), skipping the re-normalization FingerprintCQ
// would pay — the hot-path form for callers that need both the normal form
// and its key.
func FingerprintNormalized(nq rel.CQ) string {
	parts := make([]string, len(nq.Atoms))
	for i, a := range nq.Atoms {
		parts[i] = a.String()
	}
	// Atom multiset semantics: duplicate atoms are harmless to keep, but
	// sorting the rendered atoms once more guards against pathological
	// orderings of equal keys.
	sort.Strings(parts)
	return strings.Join(parts, "&")
}
