package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/rel"
)

func TestNormalizeCQRenamesAndReorders(t *testing.T) {
	a := rel.NewCQ(
		rel.NewAtom("R", rel.V("x")),
		rel.NewAtom("S", rel.V("x"), rel.V("y")),
		rel.NewAtom("T", rel.V("y")),
	)
	b := rel.NewCQ(
		rel.NewAtom("T", rel.V("q")),
		rel.NewAtom("S", rel.V("p"), rel.V("q")),
		rel.NewAtom("R", rel.V("p")),
	)
	if FingerprintCQ(a) != FingerprintCQ(b) {
		t.Fatalf("isomorphic queries fingerprint differently:\n  %s\n  %s", FingerprintCQ(a), FingerprintCQ(b))
	}
	if got, want := NormalizeCQ(a).String(), NormalizeCQ(b).String(); got != want {
		t.Fatalf("normal forms differ: %s vs %s", got, want)
	}
}

func TestNormalizeCQDistinguishesShapes(t *testing.T) {
	// Same atoms, different join structure: must not collide.
	joined := rel.NewCQ(
		rel.NewAtom("S", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
	)
	split := rel.NewCQ(
		rel.NewAtom("S", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("u"), rel.V("v")),
	)
	if FingerprintCQ(joined) == FingerprintCQ(split) {
		t.Fatalf("join structure lost: both fingerprint to %s", FingerprintCQ(joined))
	}
	// Constants are preserved verbatim.
	c1 := rel.NewCQ(rel.NewAtom("R", rel.C("a")))
	c2 := rel.NewCQ(rel.NewAtom("R", rel.C("b")))
	if FingerprintCQ(c1) == FingerprintCQ(c2) {
		t.Fatal("constants collapsed by normalization")
	}
}

func TestNormalizeCQRepeatedVariables(t *testing.T) {
	// R(x,x) vs R(x,y): the repeated-variable pattern must survive renaming.
	diag := rel.NewCQ(rel.NewAtom("R", rel.V("x"), rel.V("x")))
	free := rel.NewCQ(rel.NewAtom("R", rel.V("x"), rel.V("y")))
	if FingerprintCQ(diag) == FingerprintCQ(free) {
		t.Fatal("repeated-variable pattern lost")
	}
	if FingerprintCQ(diag) != FingerprintCQ(rel.NewCQ(rel.NewAtom("R", rel.V("w"), rel.V("w")))) {
		t.Fatal("renamed diagonal query fingerprints differently")
	}
}

// TestNormalizeCQPreservesSemantics checks the load-bearing property of the
// plan cache: a plan prepared for the normalized query answers the original
// query — the normalized CQ has the same probability on random instances.
func TestNormalizeCQPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	queries := []rel.CQ{
		rel.HardQuery(),
		rel.NewCQ(
			rel.NewAtom("S", rel.V("b"), rel.V("a")),
			rel.NewAtom("R", rel.V("b")),
		),
		rel.NewCQ(
			rel.NewAtom("T", rel.V("z")),
			rel.NewAtom("S", rel.V("x"), rel.V("z")),
			rel.NewAtom("S", rel.V("x"), rel.V("x")),
		),
	}
	for _, q := range queries {
		nq := NormalizeCQ(q)
		for trial := 0; trial < 5; trial++ {
			tid := gen.RSTChain(3+r.Intn(5), 0.3+0.4*r.Float64())
			pl, p, err := PrepareTID(tid, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := pl.Probability(p)
			if err != nil {
				t.Fatal(err)
			}
			npl, np, err := PrepareTID(tid, nq, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := npl.Probability(np)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("query %s normalized to %s: probability %v vs %v", q, nq, want, got)
			}
		}
	}
}

// TestNormalizeCQShuffleInvariance: the fingerprint of a query is invariant
// under random atom shuffles and variable renamings.
func TestNormalizeCQShuffleInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	base := rel.NewCQ(
		rel.NewAtom("R", rel.V("a")),
		rel.NewAtom("S", rel.V("a"), rel.V("b")),
		rel.NewAtom("S", rel.V("b"), rel.V("c")),
		rel.NewAtom("T", rel.V("c"), rel.C("k")),
	)
	want := FingerprintCQ(base)
	names := []string{"u", "v", "w", "z", "a", "b", "c", "q0", "q1", "zz"}
	for trial := 0; trial < 50; trial++ {
		perm := r.Perm(len(base.Atoms))
		ren := map[string]string{}
		used := map[string]bool{}
		for _, v := range base.Vars() {
			for {
				cand := names[r.Intn(len(names))]
				if !used[cand] {
					used[cand] = true
					ren[v] = cand
					break
				}
			}
		}
		atoms := make([]rel.Atom, len(base.Atoms))
		for i, pi := range perm {
			a := base.Atoms[pi]
			terms := make([]rel.Term, len(a.Terms))
			for j, tm := range a.Terms {
				if tm.IsVar {
					terms[j] = rel.V(ren[tm.Name])
				} else {
					terms[j] = tm
				}
			}
			atoms[i] = rel.NewAtom(a.Rel, terms...)
		}
		if got := FingerprintCQ(rel.NewCQ(atoms...)); got != want {
			t.Fatalf("trial %d: fingerprint %s != %s", trial, got, want)
		}
	}
}
