package core

import (
	"math"
	"testing"

	"repro/internal/pdb"
	"repro/internal/rel"
	"repro/internal/treedec"
)

func TestSuppliedJointDecomposition(t *testing.T) {
	tid := pdb.NewTID()
	for i := 0; i < 10; i++ {
		tid.AddFact(0.5, "E", nodeName(i), nodeName(i+1))
	}
	c, p := tid.ToCInstance()
	joint, _, _ := JointEventGraph(c, nil)
	d := treedec.Decompose(joint, treedec.MinFill)
	q := rel.NewCQ(rel.NewAtom("E", rel.V("x"), rel.V("y")), rel.NewAtom("E", rel.V("y"), rel.V("z")))
	cq := NewCQQuery(q, c.Inst, c.Inst.IndexDomain())
	withPlanted, err := EvaluatePC(c, p, cq, Options{Joint: d})
	if err != nil {
		t.Fatal(err)
	}
	without, err := EvaluatePC(c, p, cq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withPlanted.Probability-without.Probability) > 1e-12 {
		t.Errorf("planted %v vs heuristic %v", withPlanted.Probability, without.Probability)
	}
	if withPlanted.Width != d.Width() {
		t.Errorf("reported width %d, supplied %d", withPlanted.Width, d.Width())
	}
}

func TestSuppliedJointDecompositionRejectedWhenInvalid(t *testing.T) {
	tid := pdb.NewTID()
	tid.AddFact(0.5, "E", "a", "b")
	c, p := tid.ToCInstance()
	// A decomposition of the wrong graph: single empty bag.
	bad := &treedec.Decomposition{Bags: [][]int{{}}, Parent: []int{-1}}
	cq := NewCQQuery(rel.NewCQ(rel.NewAtom("E", rel.V("x"), rel.V("y"))), c.Inst, c.Inst.IndexDomain())
	if _, err := EvaluatePC(c, p, cq, Options{Joint: bad}); err == nil {
		t.Error("expected validation error for a bad supplied decomposition")
	}
}

func TestMinFillOptionAgrees(t *testing.T) {
	tid := pdb.NewTID()
	tid.AddFact(0.3, "R", "a")
	tid.AddFact(0.6, "S", "a", "b")
	tid.AddFact(0.9, "T", "b")
	q := rel.HardQuery()
	a, err := ProbabilityTID(tid, q, Options{Heuristic: treedec.MinDegree})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProbabilityTID(tid, q, Options{Heuristic: treedec.MinFill})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Probability-b.Probability) > 1e-12 {
		t.Errorf("heuristics disagree: %v vs %v", a.Probability, b.Probability)
	}
}
