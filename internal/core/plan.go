package core

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/circuit"
	"repro/internal/core/kernel"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
	"repro/internal/treedec"
)

// massEps bounds the tolerated floating-point drift of a root distribution's
// total probability mass from 1. Every summary path — scalar, batch, sharded
// fold, materialized commit — rejects through the same massDrifted check, so
// an instance that trips the guard fails identically everywhere.
const massEps = 1e-6

// massDrifted reports whether a total probability mass violates the shared
// drift tolerance.
func massDrifted(total float64) bool { return total < 1-massEps || total > 1+massEps }

func errMassDrift(total float64) error {
	return fmt.Errorf("core: probability mass %v drifted from 1", total)
}

// Plan is a compiled query plan: the Prepare/Evaluate split of the Theorem
// 1/2 engine. Prepare hoists every probability-independent stage out of the
// per-call path — domain indexing, the joint instance+event graph, its tree
// decomposition, the nice decomposition, fact homing, compiled annotation
// evaluators and the determinized automaton's state-set transition tables —
// so that (*Plan).Probability and (*Plan).Result only run the numeric
// dynamic program: row tables keyed by interned state-set ids and event
// bitmasks, with no string keys and no per-row allocations.
//
// Transition tables are filled lazily on first use and shared by every
// subsequent evaluation (and by repeated rows within one evaluation), which
// is why even the first call through a Plan is much faster than the
// pre-split engine.
//
// # Concurrency
//
// All per-evaluation state (row tables, weight buffers) lives in pooled
// evaluation states, so the only mutable shared state is the lazily-filled
// determinized-transition caches. (*Plan).Freeze eagerly completes and seals
// them: a frozen plan is immutable and safe for any number of concurrent
// Probability / ProbabilityBatch / Result calls (see also Serve). An
// unfrozen plan must be confined to one goroutine at a time, as before.
//
//pdblint:frozen
type Plan struct {
	q           Query
	emitLineage bool

	events []logic.Event
	nDom   int
	width  int
	nodes  []planNode
	post   []int
	root   int

	// Structure retained for the incremental layer (Materialize, attachFact)
	// and for shape reporting: the nice decomposition the nodes were compiled
	// from, the domain index of the prepared instance, per-node parents, the
	// forget node applying each event's weight, and the event→index map.
	nice      *treedec.Nice
	di        *rel.DomainIndex
	parents   []int
	forgetAt  []int
	eventIdx  map[logic.Event]int
	structGen uint64 // bumped by attachFact; Materialized views check it

	startSet int32

	states stateInterner
	sets   setInterner
	accept []bool // accept[setID]: does the set contain an accepting state?

	// Determinized transition caches, filled lazily; hits are the common
	// case. All hot-path keys are integers: the query's string states are
	// touched only on the first encounter of a state, state pair, or set.
	// After Freeze the caches are complete for every row the DP can reach
	// and are never written again.
	setTrans   map[setTransKey]int32 // (op, operand, set) -> successor set
	joinCache  map[uint64]int32      // (left set, right set) -> joined set
	stepCache  map[stepKey][]int32   // (op, operand, state) -> successor states
	pairCache  map[uint64]int32      // (state, state) -> merged state, -1 dead
	pruneCache map[int32]int32       // unpruned set -> pruned set

	// frozen marks the transition caches as complete and sealed; set by
	// Freeze before the plan is shared across goroutines.
	frozen bool

	// prog is the compiled row program (see rowprog.go), built by Freeze:
	// with the transition caches complete, the entire dynamic program
	// compiles into dense per-node edge lists, and frozen evaluations run
	// pure kernel arithmetic with no map traffic. nil until Freeze;
	// read-only afterwards.
	prog *rowProgram

	// Structural scratch, touched only on cache misses (never once frozen).
	strBuf []string
	idBuf  []int32

	// evalPool recycles per-evaluation state (weight buffers, row tables);
	// each Probability/ProbabilityBatch/Result call checks one out, so
	// concurrent evaluations never share scratch.
	evalPool sync.Pool
}

// evalState is the per-evaluation mutable state of a Plan: everything the
// dynamic program writes to. It is pooled per plan, so steady-state serial
// evaluation reuses one state with no allocation, while concurrent
// evaluations each get their own.
type evalState struct {
	peBuf    []float64
	freeTabs []map[rowKey]rowVal
	tables   []map[rowKey]rowVal

	// Multi-lane counterparts used by the unfrozen ProbabilityBatch path.
	freeBatch []*batchTable
	btables   []*batchTable

	// Row-program state: the lane-block arena and the per-node block
	// pointers of runBatchProg (see rowprog.go).
	arena  kernel.Arena
	blocks [][]float64

	// one adapts a single probability map to the lane-major weight fill.
	one [1]logic.Prob

	// joinEnts stages a join node's right table sorted by bits, so the scalar
	// and batch fallback paths merge matching runs instead of scanning all
	// pairs.
	joinEnts []joinEnt
}

// joinEnt is one right-table row staged for a bits-grouped join: the row key
// plus either its scalar value (map path) or its batch row index.
type joinEnt struct {
	k rowKey
	v rowVal
	i int32
}

// sortJoinEnts orders staged join entries by their event-valuation bits so
// equal-bits rows form contiguous runs.
func sortJoinEnts(ents []joinEnt) {
	slices.SortFunc(ents, func(a, b joinEnt) int {
		switch {
		case a.k.bits < b.k.bits:
			return -1
		case a.k.bits > b.k.bits:
			return 1
		default:
			return 0
		}
	})
}

// joinRun locates the contiguous run of entries whose bits equal target.
func joinRun(ents []joinEnt, target uint64) (lo, hi int) {
	lo = sort.Search(len(ents), func(i int) bool { return ents[i].k.bits >= target })
	hi = lo
	for hi < len(ents) && ents[hi].k.bits == target {
		hi++
	}
	return lo, hi
}

func (pl *Plan) getState() *evalState {
	if st, ok := pl.evalPool.Get().(*evalState); ok {
		return st
	}
	return &evalState{}
}

func (pl *Plan) putState(st *evalState) { pl.evalPool.Put(st) }

// planNode is the compiled form of one nice-decomposition node.
type planNode struct {
	kind     treedec.NiceKind
	vertex   int  // introduced/forgotten vertex, -1 otherwise
	child0   int  // first child, -1 if none
	child1   int  // second child, -1 if none
	isEvent  bool // the vertex is an event vertex
	pos      int  // bit position of the event within the child bag's events
	eventIdx int  // index into events for forget-event nodes
	facts    []planFact
}

// planFact is a fact homed at a node, with its annotation compiled against
// the bag's event bit layout: the annotation evaluates directly over a row's
// bits word.
type planFact struct {
	fi int
	cf *logic.CompiledFormula
}

// rowKey is one determinized table row key: an interned automaton state set
// and the valuation of the in-bag events.
type rowKey struct {
	set  int32
	bits uint64
}

// rowVal carries the probability mass of a row and, when lineage emission is
// on, its gate.
type rowVal struct {
	prob float64
	gate circuit.Gate
}

// Transition operations, the op field of setTransKey and stepKey.
const (
	opIntroduce uint8 = iota
	opForget
	opFact
)

// setTransKey addresses a cached determinized set transition: the interned
// state set plus the vertex (introduce/forget) or fact index (fact
// application).
type setTransKey struct {
	op  uint8
	arg int32
	set int32
}

// stepKey addresses a cached single-state transition.
type stepKey struct {
	op    uint8
	arg   int32
	state int32
}

// stateInterner assigns dense int32 ids to automaton state strings.
type stateInterner struct {
	ids  map[string]int32
	strs []string
}

func (si *stateInterner) id(s string) int32 {
	if id, ok := si.ids[s]; ok {
		return id
	}
	id := int32(len(si.strs))
	si.strs = append(si.strs, s)
	si.ids[s] = id
	return id
}

// setInterner assigns dense int32 ids to sets of state ids. The key is the
// little-endian byte image of the sorted member ids, looked up without
// allocating via the map[string] index-expression optimization.
type setInterner struct {
	ids     map[string]int32
	members [][]int32
	buf     []byte
	idBuf   []int32
}

// Prepare compiles a query plan for the pc-instance structure c and the
// query automaton q. Everything that does not depend on the event
// probabilities is computed here; the returned plan answers repeated
// probability requests via (*Plan).Probability or (*Plan).Result.
//
// Options are honoured as in EvaluatePC: a supplied joint decomposition is
// validated and used, the heuristic picks the decomposition otherwise, and
// EmitLineage makes (*Plan).Result build the d-DNNF lineage on every call.
func Prepare(c *pdb.CInstance, q Query, opts Options) (*Plan, error) {
	di := c.Inst.IndexDomain()
	joint, events, eventVertex := JointEventGraph(c, di)
	d := opts.Joint
	if d == nil {
		d = treedec.Decompose(joint, opts.Heuristic)
	} else if err := d.Validate(joint); err != nil {
		return nil, fmt.Errorf("core: supplied joint decomposition invalid: %w", err)
	}
	nice := treedec.MakeNice(d)
	nDom := len(di.Names)

	// Event valuations are tracked in a 64-bit mask per table row.
	for _, nd := range nice.Nodes {
		evs := 0
		for _, v := range nd.Bag {
			if v >= nDom {
				evs++
			}
		}
		if evs > 60 {
			return nil, fmt.Errorf("core: a bag holds %d events; the joint width is too large for exact evaluation", evs)
		}
	}

	pl := &Plan{
		q:           q,
		emitLineage: opts.EmitLineage,
		events:      events,
		nDom:        nDom,
		width:       d.Width(),
		post:        nice.PostOrder(),
		root:        nice.Root,
		states:      stateInterner{ids: map[string]int32{}},
		sets:        setInterner{ids: map[string]int32{}},
		setTrans:    map[setTransKey]int32{},
		joinCache:   map[uint64]int32{},
		stepCache:   map[stepKey][]int32{},
		pairCache:   map[uint64]int32{},
		pruneCache:  map[int32]int32{},
	}

	// Home every fact at a nice node covering its args and events.
	scopes := c.Inst.FactScopes(di)
	fullScopes := make([][]int, len(scopes))
	annVars := make([][]logic.Event, c.NumFacts())
	for fi, scope := range scopes {
		vars := logic.Vars(c.Ann[fi])
		annVars[fi] = vars
		full := append([]int(nil), scope...)
		for _, e := range vars {
			full = append(full, eventVertex[e])
		}
		fullScopes[fi] = full
	}
	assign, err := nice.AssignScopes(fullScopes)
	if err != nil {
		return nil, fmt.Errorf("core: cannot home facts in decomposition: %w", err)
	}

	// Compile the nodes: event bit positions, homed facts with annotation
	// evaluators over the bag's event bit layout.
	pl.nodes = make([]planNode, nice.NumNodes())
	for t := range nice.Nodes {
		nd := &nice.Nodes[t]
		pn := planNode{kind: nd.Kind, vertex: nd.Vertex, child0: -1, child1: -1, eventIdx: -1}
		if len(nd.Children) > 0 {
			pn.child0 = nd.Children[0]
		}
		if len(nd.Children) > 1 {
			pn.child1 = nd.Children[1]
		}
		switch nd.Kind {
		case treedec.NiceIntroduce, treedec.NiceForget:
			if nd.Vertex >= nDom {
				pn.isEvent = true
				childEvs := bagEventVertices(nice.Nodes[nd.Children[0]].Bag, nDom)
				pn.pos = eventPosition(childEvs, nd.Vertex, nd.Kind == treedec.NiceIntroduce)
				if nd.Kind == treedec.NiceForget {
					pn.eventIdx = nd.Vertex - nDom
				}
			}
		}
		pl.nodes[t] = pn
	}
	for fi, t := range assign {
		bagEvs := bagEventVertices(nice.Nodes[t].Bag, nDom)
		varBit := make(map[logic.Event]int, len(annVars[fi]))
		for _, e := range annVars[fi] {
			// All annotation events are in the bag by the homing invariant.
			varBit[e] = eventPosition(bagEvs, eventVertex[e], false)
		}
		pl.nodes[t].facts = append(pl.nodes[t].facts, planFact{
			fi: fi,
			cf: logic.CompileMask(c.Ann[fi], varBit),
		})
	}

	pl.startSet = pl.internStrings(detStep(q, q.Start(), func(s string) []string { return []string{s} }))
	pl.nice = nice
	pl.di = di
	pl.eventIdx = make(map[logic.Event]int, len(events))
	for i, e := range events {
		pl.eventIdx[e] = i
	}
	pl.rebuildTopology()
	return pl, nil
}

// rebuildTopology derives the parent pointers and the per-event forget-node
// index from the compiled nodes. Called by Prepare and again after attachFact
// splices new nodes in.
func (pl *Plan) rebuildTopology() {
	pl.parents = make([]int, len(pl.nodes))
	for i := range pl.parents {
		pl.parents[i] = -1
	}
	pl.forgetAt = make([]int, len(pl.events))
	for i := range pl.forgetAt {
		pl.forgetAt[i] = -1
	}
	for t := range pl.nodes {
		nd := &pl.nodes[t]
		if nd.child0 >= 0 {
			pl.parents[nd.child0] = t
		}
		if nd.child1 >= 0 {
			pl.parents[nd.child1] = t
		}
		if nd.kind == treedec.NiceForget && nd.isEvent {
			pl.forgetAt[nd.eventIdx] = t
		}
	}
}

// PrepareCQ compiles a plan for a Boolean conjunctive query on the
// pc-instance structure c.
func PrepareCQ(c *pdb.CInstance, q rel.CQ, opts Options) (*Plan, error) {
	return Prepare(c, NewCQQuery(q, c.Inst, c.Inst.IndexDomain()), opts)
}

// PrepareTID compiles a plan for a conjunctive query on a TID instance via
// the Theorem 1 translation, returning the plan together with the event
// probability map of the translation (pass it to Probability, or substitute
// any other map over the same events).
func PrepareTID(t *pdb.TID, q rel.CQ, opts Options) (*Plan, logic.Prob, error) {
	c, p := t.ToCInstance()
	pl, err := PrepareCQ(c, q, opts)
	if err != nil {
		return nil, nil, err
	}
	return pl, p, nil
}

// Width returns the width of the joint decomposition the plan was compiled
// against.
func (pl *Plan) Width() int { return pl.width }

// NumNiceNodes returns the size of the compiled nice decomposition.
func (pl *Plan) NumNiceNodes() int { return len(pl.nodes) }

// Shape returns the structural statistics of the plan's nice decomposition.
// Depth bounds the per-update cost of a Materialized view: a single event
// change recomputes at most depth+1 node tables.
func (pl *Plan) Shape() treedec.Stats { return pl.nice.Stats() }

// Query returns the compiled query the plan runs. Callers use it to reach
// optional extensions such as FactExtender.
func (pl *Plan) Query() Query { return pl.q }

// Probability evaluates the plan under the event probabilities p and
// returns the exact query probability. Only the numeric dynamic program
// runs; all structural work was done by Prepare. Safe for concurrent calls
// once the plan is frozen (see Freeze).
//
//pdblint:frozenentry
func (pl *Plan) Probability(p logic.Prob) (float64, error) {
	res, err := pl.eval(p, false)
	if err != nil {
		return 0, err
	}
	return res.Probability, nil
}

// Result evaluates the plan under the event probabilities p and returns the
// full Result, including the d-DNNF lineage when the plan was prepared with
// EmitLineage.
//
// The returned Result — in particular its lineage circuit — is owned by the
// caller: every call builds a fresh circuit, and later evaluations on the
// same plan (under any probability map) never mutate a previously returned
// Result. Safe for concurrent calls once the plan is frozen (see Freeze).
//
//pdblint:frozenentry
func (pl *Plan) Result(p logic.Prob) (*Result, error) {
	return pl.eval(p, pl.emitLineage)
}

// Freeze eagerly completes the plan's lazily-filled determinized-transition
// caches and seals them, making the plan immutable and therefore safe for
// concurrent Probability / ProbabilityBatch / Result calls from any number
// of goroutines.
//
// The row keys of the dynamic program depend only on the compiled structure,
// never on the event probabilities, so one structural pass visits every
// transition any future evaluation can need; after Freeze the caches are
// read-only. Freeze is idempotent but must itself be called from a single
// goroutine, before the plan is shared.
func (pl *Plan) Freeze() error {
	if pl.frozen {
		return nil
	}
	// A full evaluation under the default-0.5 weights touches exactly the
	// introduce/forget/fact/join transitions reachable from the query.
	if _, err := pl.eval(logic.Prob{}, false); err != nil {
		return fmt.Errorf("core: freeze pass failed: %w", err)
	}
	// With the caches complete, compile the dense row program (every
	// transition it replays is now a cache hit) and seal the plan.
	pl.prog = pl.compileProgram()
	pl.frozen = true
	return nil
}

// Frozen reports whether the plan's transition caches have been sealed for
// concurrent use.
func (pl *Plan) Frozen() bool { return pl.frozen }

// --- interning and cached transitions ---

// internStrings interns a deduplicated state-string set (as produced by
// detStep or a SetPruner) and returns its set id. Sets are canonicalized by
// sorting their interned state ids, so any permutation of the same strings
// interns to the same id.
//
//pdblint:mutates set interning is guarded: frozen plans never see a new set (missUnlessUnfrozen)
func (pl *Plan) internStrings(states []string) int32 {
	ids := pl.sets.idBuf[:0]
	for _, s := range states {
		ids = append(ids, pl.states.id(s))
	}
	pl.sets.idBuf = ids
	sortInt32(ids)
	return pl.internIDs(ids)
}

// internIDs interns a sorted, deduplicated state-id set directly.
//
//pdblint:mutates set interning is guarded: frozen plans never see a new set (missUnlessUnfrozen)
func (pl *Plan) internIDs(ids []int32) int32 {
	buf := pl.sets.buf[:0]
	for _, id := range ids {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	pl.sets.buf = buf
	if id, ok := pl.sets.ids[string(buf)]; ok {
		return id
	}
	id := int32(len(pl.sets.members))
	pl.sets.members = append(pl.sets.members, append([]int32(nil), ids...))
	pl.sets.ids[string(buf)] = id
	acc := false
	for _, sid := range ids {
		if pl.q.Accept(pl.states.strs[sid]) {
			acc = true
			break
		}
	}
	pl.accept = append(pl.accept, acc)
	return id
}

// setStrings materializes a set's member state strings into the given
// scratch buffer.
func (pl *Plan) setStrings(set int32, buf []string) []string {
	out := buf[:0]
	for _, id := range pl.sets.members[set] {
		out = append(out, pl.states.strs[id])
	}
	return out
}

// pruned applies the query's SetPruner (if any) to an interned set, caching
// the result so each distinct set is pruned at most once.
//
//pdblint:mutates cache fill on miss; misses panic on frozen plans (missUnlessUnfrozen)
func (pl *Plan) pruned(raw int32) int32 {
	if _, isPruner := pl.q.(SetPruner); !isPruner {
		return raw
	}
	if r, ok := pl.pruneCache[raw]; ok {
		return r
	}
	pl.missUnlessUnfrozen()
	pl.strBuf = pl.setStrings(raw, pl.strBuf)
	r := pl.internStrings(prune(pl.q, pl.strBuf))
	pl.pruneCache[raw] = r
	return r
}

// stepStates returns the successor state ids of a single state under the
// given operation, computing them from the string-level Query interface on
// first use only. Fact steps include the implicit identity transition.
//
//pdblint:mutates cache fill on miss; misses panic on frozen plans (missUnlessUnfrozen)
func (pl *Plan) stepStates(op uint8, arg int, state int32) []int32 {
	k := stepKey{op: op, arg: int32(arg), state: state}
	if succs, ok := pl.stepCache[k]; ok {
		return succs
	}
	pl.missUnlessUnfrozen()
	st := pl.states.strs[state]
	var out []string
	switch op {
	case opIntroduce:
		out = pl.q.Introduce(st, arg)
	case opForget:
		out = pl.q.Forget(st, arg)
	case opFact:
		out = append(pl.q.FactTransitions(st, arg), st)
	}
	succs := make([]int32, 0, len(out))
	for _, s := range out {
		succs = append(succs, pl.states.id(s))
	}
	pl.stepCache[k] = succs
	return succs
}

// stepSet is the subset construction over interned sets: the successor of a
// set is the pruned union of its members' successors. Results are cached per
// (operation, operand, set).
//
//pdblint:mutates cache fill on miss; misses panic on frozen plans (missUnlessUnfrozen)
func (pl *Plan) stepSet(op uint8, arg int, set int32) int32 {
	k := setTransKey{op: op, arg: int32(arg), set: set}
	if r, ok := pl.setTrans[k]; ok {
		return r
	}
	pl.missUnlessUnfrozen()
	ids := pl.idBuf[:0]
	for _, sid := range pl.sets.members[set] {
		ids = append(ids, pl.stepStates(op, arg, sid)...)
	}
	pl.idBuf = ids
	r := pl.pruned(pl.internIDs(sortDedupInt32(ids)))
	pl.setTrans[k] = r
	return r
}

func (pl *Plan) introduceSet(set int32, v int) int32 { return pl.stepSet(opIntroduce, v, set) }
func (pl *Plan) forgetSet(set int32, v int) int32    { return pl.stepSet(opForget, v, set) }
func (pl *Plan) factSet(set int32, fi int) int32     { return pl.stepSet(opFact, fi, set) }

// directJoiner is an optional Query extension: a Join entry point without
// internal memoization, for engines (like Plan) that already cache join
// results per state pair and would only churn the query's own memo.
type directJoiner interface {
	JoinDirect(a, b string) (merged string, ok bool)
}

// joinSets merges two interned sets across a join node: every pair of
// member states is merged through the query's Join, with a per-pair cache
// so each state pair is merged through the string interface at most once.
//
//pdblint:mutates cache fill on miss; misses panic on frozen plans (missUnlessUnfrozen)
func (pl *Plan) joinSets(a, b int32) int32 {
	k := uint64(uint32(a))<<32 | uint64(uint32(b))
	if r, ok := pl.joinCache[k]; ok {
		return r
	}
	pl.missUnlessUnfrozen()
	join := pl.q.Join
	if dj, ok := pl.q.(directJoiner); ok {
		join = dj.JoinDirect
	}
	ids := pl.idBuf[:0]
	for _, ia := range pl.sets.members[a] {
		for _, ib := range pl.sets.members[b] {
			pk := uint64(uint32(ia))<<32 | uint64(uint32(ib))
			m, ok := pl.pairCache[pk]
			if !ok {
				if merged, okJoin := join(pl.states.strs[ia], pl.states.strs[ib]); okJoin {
					m = pl.states.id(merged)
				} else {
					m = -1
				}
				pl.pairCache[pk] = m
			}
			if m >= 0 {
				ids = append(ids, m)
			}
		}
	}
	pl.idBuf = ids
	r := pl.pruned(pl.internIDs(sortDedupInt32(ids)))
	pl.joinCache[k] = r
	return r
}

// missUnlessUnfrozen asserts that a transition-cache miss is legal: misses
// cannot occur on a frozen plan (the freeze pass visited every reachable
// transition), so hitting one means the plan was mutated or an internal
// invariant broke — panic rather than race on the sealed caches.
func (pl *Plan) missUnlessUnfrozen() {
	if pl.frozen {
		panic("core: transition cache miss on a frozen Plan (internal invariant violated)")
	}
}

// --- table management ---

func (st *evalState) allocTable(hint int) map[rowKey]rowVal {
	if n := len(st.freeTabs); n > 0 {
		tab := st.freeTabs[n-1]
		st.freeTabs = st.freeTabs[:n-1]
		clear(tab)
		return tab
	}
	return make(map[rowKey]rowVal, hint)
}

func (st *evalState) releaseTable(tab map[rowKey]rowVal) {
	st.freeTabs = append(st.freeTabs, tab)
}

// put merges a row into tab: equal keys sum their mass (a deterministic OR
// on the emitted lineage).
func put(tab map[rowKey]rowVal, k rowKey, v rowVal, emit *circuit.Circuit) {
	if prev, ok := tab[k]; ok {
		prev.prob += v.prob
		if emit != nil {
			prev.gate = emit.Or(prev.gate, v.gate)
		}
		tab[k] = prev
		return
	}
	tab[k] = v
}

// --- evaluation ---

// runDP executes the numeric dynamic program bottom-up under the event
// probabilities p and returns the root table, whose ownership passes to the
// caller (release it back into st). It is the shared core of eval (which
// summarizes acceptance) and rootVec (which hands per-row probabilities to
// the cross-shard combiner of ShardedPlan).
func (pl *Plan) runDP(st *evalState, p logic.Prob, emit *circuit.Circuit) map[rowKey]rowVal {
	// Per-event Bernoulli weights, resolved once per evaluation.
	st.one[0] = p
	pe := pl.fillLaneWeights(st, st.one[:])
	st.one[0] = nil

	if len(st.tables) < len(pl.nodes) {
		st.tables = make([]map[rowKey]rowVal, len(pl.nodes))
	}
	tables := st.tables

	for _, t := range pl.post {
		tables[t] = pl.computeNode(st, tables, pe, t, emit, true)
	}
	root := tables[pl.root]
	tables[pl.root] = nil
	return root
}

// rootKeys discovers the root table's row keys with one structural pass: the
// keys depend only on the compiled structure, never on the probabilities, so
// any one evaluation visits them all. Root bags are empty, so every key is a
// bare state-set id; the ids are returned sorted.
func (pl *Plan) rootKeys() []int32 {
	st := pl.getState()
	defer pl.putState(st)
	root := pl.runDP(st, logic.Prob{}, nil)
	keys := make([]int32, 0, len(root))
	for k := range root {
		keys = append(keys, k.set)
	}
	st.releaseTable(root)
	sortInt32(keys)
	return keys
}

// rootVec evaluates the plan under p and extracts the root-table probability
// of every key in keys (as discovered by rootKeys) into out. Safe for
// concurrent calls once the plan is frozen, like Probability.
func (pl *Plan) rootVec(p logic.Prob, keys []int32, out []float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	st := pl.getState()
	defer pl.putState(st)
	if pl.prog != nil {
		st.one[0] = p
		pe := pl.fillLaneWeights(st, st.one[:])
		st.one[0] = nil
		root := pl.runBatchProg(st, pe, 1)
		for i, set := range keys {
			if r, ok := pl.prog.rootRow[set]; ok {
				out[i] = root[r]
			} else {
				out[i] = 0
			}
		}
		st.arena.Put(root)
		return nil
	}
	root := pl.runDP(st, p, nil)
	for i, set := range keys {
		out[i] = root[rowKey{set: set}].prob
	}
	st.releaseTable(root)
	return nil
}

func (pl *Plan) eval(p logic.Prob, emitLineage bool) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var emit *circuit.Circuit
	if emitLineage {
		emit = circuit.New()
	}

	st := pl.getState()
	defer pl.putState(st)

	res := &Result{Width: pl.width, NiceNodes: len(pl.nodes)}
	var acceptGates []circuit.Gate
	if emit == nil && pl.prog != nil {
		// Frozen non-lineage path: run the compiled row program at one lane.
		st.one[0] = p
		pe := pl.fillLaneWeights(st, st.one[:])
		st.one[0] = nil
		root := pl.runBatchProg(st, pe, 1)
		for i, set := range pl.prog.rootSets {
			res.TotalMass += root[i]
			if pl.accept[set] {
				res.Probability += root[i]
			}
		}
		st.arena.Put(root)
	} else {
		root := pl.runDP(st, p, emit)
		for k, v := range root {
			res.TotalMass += v.prob
			if pl.accept[k.set] {
				res.Probability += v.prob
				if emit != nil {
					acceptGates = append(acceptGates, v.gate)
				}
			}
		}
		st.releaseTable(root)
	}
	if massDrifted(res.TotalMass) {
		return nil, errMassDrift(res.TotalMass)
	}
	if emit != nil {
		sortGates(acceptGates)
		res.Lineage = emit
		res.Root = emit.Or(acceptGates...)
	}
	// Clamp floating noise.
	if res.Probability < 0 {
		res.Probability = 0
	}
	if res.Probability > 1 {
		res.Probability = 1
	}
	return res, nil
}

// computeNode builds the row table of nice node t from the tables of its
// children under the per-event weights pe. The facts homed at t are fused
// into the row keys as they are produced — a fact's annotation reads only a
// row's bits, which no fact changes, so the whole fact chain composes into
// one set remap per row (factRemap) and no staging tables are needed. With
// consumeChildren (the one-shot eval path) the child tables are released
// into st's free list — and cleared from tables — as soon as the switch has
// read them. The returned table is allocated from st's free list and owned
// by the caller.
func (pl *Plan) computeNode(st *evalState, tables []map[rowKey]rowVal, pe []float64, t int, emit *circuit.Circuit, consumeChildren bool) map[rowKey]rowVal {
	nd := &pl.nodes[t]
	release := func(child int) {
		if consumeChildren {
			st.releaseTable(tables[child])
			tables[child] = nil
		}
	}
	var tab map[rowKey]rowVal
	switch nd.kind {
	case treedec.NiceLeaf:
		tab = st.allocTable(1)
		v := rowVal{prob: 1}
		if emit != nil {
			v.gate = emit.Const(true)
		}
		tab[pl.factRemap(nd, rowKey{set: pl.startSet})] = v

	case treedec.NiceIntroduce:
		child := tables[nd.child0]
		tab = st.allocTable(2 * len(child))
		if nd.isEvent {
			// Split every row on the value of the new event; the
			// Bernoulli weight is applied at the event's forget node.
			pos := nd.pos
			for k, v := range child {
				put(tab, pl.factRemap(nd, rowKey{set: k.set, bits: insertBit(k.bits, pos, false)}), v, emit)
				put(tab, pl.factRemap(nd, rowKey{set: k.set, bits: insertBit(k.bits, pos, true)}), v, emit)
			}
		} else {
			for k, v := range child {
				put(tab, pl.factRemap(nd, rowKey{set: pl.introduceSet(k.set, nd.vertex), bits: k.bits}), v, emit)
			}
		}
		release(nd.child0)

	case treedec.NiceForget:
		child := tables[nd.child0]
		tab = st.allocTable(len(child))
		if nd.isEvent {
			// Apply the event's Bernoulli weight according to the row's
			// recorded value, conjoin the literal onto the lineage, and
			// marginalize the bit out of the key.
			pos := nd.pos
			w1 := pe[nd.eventIdx]
			w0 := 1 - w1
			var lit0, lit1 circuit.Gate
			if emit != nil {
				lit1 = emit.Var(pl.events[nd.eventIdx])
				lit0 = emit.Not(lit1)
			}
			for k, v := range child {
				nv := rowVal{prob: v.prob}
				if k.bits&(1<<uint(pos)) != 0 {
					nv.prob *= w1
					if emit != nil {
						nv.gate = emit.And(v.gate, lit1)
					}
				} else {
					nv.prob *= w0
					if emit != nil {
						nv.gate = emit.And(v.gate, lit0)
					}
				}
				put(tab, pl.factRemap(nd, rowKey{set: k.set, bits: removeBit(k.bits, pos)}), nv, emit)
			}
		} else {
			for k, v := range child {
				put(tab, pl.factRemap(nd, rowKey{set: pl.forgetSet(k.set, nd.vertex), bits: k.bits}), v, emit)
			}
		}
		release(nd.child0)

	case treedec.NiceJoin:
		left := tables[nd.child0]
		right := tables[nd.child1]
		tab = st.allocTable(len(left))
		// In-bag events are shared between the children, so only rows with
		// equal bits combine: stage the right table sorted by bits, then
		// each left row multiplies against its matching run — a linear merge
		// instead of the quadratic all-pairs scan with a mismatch skip.
		ents := st.joinEnts[:0]
		for rk, rv := range right {
			ents = append(ents, joinEnt{k: rk, v: rv})
		}
		sortJoinEnts(ents)
		st.joinEnts = ents
		for lk, lv := range left {
			lo, hi := joinRun(ents, lk.bits)
			for _, re := range ents[lo:hi] {
				nv := rowVal{prob: lv.prob * re.v.prob}
				if emit != nil {
					nv.gate = emit.And(lv.gate, re.v.gate)
				}
				put(tab, pl.factRemap(nd, rowKey{set: pl.joinSets(lk.set, re.k.set), bits: lk.bits}), nv, emit)
			}
		}
		release(nd.child0)
		release(nd.child1)
	}
	return tab
}

// --- bit and position helpers ---

// bagEventVertices returns the sorted event vertex ids present in a bag.
func bagEventVertices(bag []int, nDom int) []int {
	var evs []int
	for _, v := range bag {
		if v >= nDom {
			evs = append(evs, v)
		}
	}
	return evs
}

// eventPosition locates the bit position of event vertex v in the bag event
// list; when inserting, it returns the position the bit will occupy.
func eventPosition(bagEvs []int, v int, inserting bool) int {
	i := sort.SearchInts(bagEvs, v)
	if !inserting && (i >= len(bagEvs) || bagEvs[i] != v) {
		panic("core: event vertex not in bag")
	}
	return i
}

func insertBit(bits uint64, pos int, value bool) uint64 {
	low := bits & ((1 << uint(pos)) - 1)
	high := bits >> uint(pos)
	out := low | high<<uint(pos+1)
	if value {
		out |= 1 << uint(pos)
	}
	return out
}

func removeBit(bits uint64, pos int) uint64 {
	low := bits & ((1 << uint(pos)) - 1)
	high := bits >> uint(pos+1)
	return low | high<<uint(pos)
}

// sortInt32 sorts small id slices in place; insertion sort beats the
// allocation and indirection of sort.Slice at these sizes.
func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// --- incremental structure growth ---

// findAttach locates the node a new fact with the given arguments can be
// absorbed at: the shallowest nice node whose bag contains every argument
// vertex. It reports an error when the fact cannot be absorbed — an argument
// outside the prepared domain, no covering bag, or a bag already at the
// event-bit budget.
func (pl *Plan) findAttach(f rel.Fact) (node int, err error) {
	scope := make([]int, 0, len(f.Args))
	seen := make(map[int]struct{}, len(f.Args))
	for _, a := range f.Args {
		v, ok := pl.di.ByName[a]
		if !ok {
			return -1, fmt.Errorf("core: constant %q of fact %s is outside the prepared domain", a, f)
		}
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			scope = append(scope, v)
		}
	}
	t := pl.nice.AttachPoint(scope)
	if t < 0 {
		return -1, fmt.Errorf("core: no bag of the decomposition covers the arguments of %s", f)
	}
	if len(bagEventVertices(pl.nice.Nodes[t].Bag, pl.nDom)) >= 60 {
		return -1, fmt.Errorf("core: the covering bag of %s is at the event-bit budget", f)
	}
	return t, nil
}

// CanAttach reports whether attachFact would succeed for a fact with the
// given arguments: the plan is unfrozen, its query accepts appended facts,
// and some bag covers the arguments. The pre-flight check incr.Store runs
// before committing to the in-place insertion path.
func (pl *Plan) CanAttach(f rel.Fact) bool {
	if pl.frozen {
		return false
	}
	if _, ok := pl.q.(FactExtender); !ok {
		return false
	}
	_, err := pl.findAttach(f)
	return err == nil
}

// attachFact splices fact fi of the plan's instance — newly appended there by
// the caller — into the compiled structure: a fresh event e is introduced and
// immediately forgotten above the shallowest bag covering the fact's
// arguments, and the fact is homed at the introduce node with annotation e.
// Because the event pair is local, every other node's bag, bit layout and
// table are untouched; only the spliced nodes and their root path need
// recomputation (the caller — Materialized.StageAttach — marks them dirty).
//
// The plan's query must already cover fact fi (see FactExtender). Attaching
// to a frozen plan is an error: it would grow the sealed transition caches.
func (pl *Plan) attachFact(f rel.Fact, fi int, e logic.Event) (intro, forget int, err error) {
	if pl.frozen {
		return 0, 0, fmt.Errorf("core: cannot attach a fact to a frozen plan")
	}
	if _, dup := pl.eventIdx[e]; dup {
		return 0, 0, fmt.Errorf("core: event %q is already an event of the plan", e)
	}
	t, err := pl.findAttach(f)
	if err != nil {
		return 0, 0, err
	}

	bag := pl.nice.Nodes[t].Bag
	eventIdx := len(pl.events)
	v := pl.nDom + eventIdx // beyond every existing vertex: domain, then events in order
	pos := len(bagEventVertices(bag, pl.nDom))
	pl.events = append(pl.events, e)
	pl.eventIdx[e] = eventIdx

	// Splice introduce(v)+forget(v) between t and its parent. The new vertex
	// is the largest, so the introduce bag stays sorted by appending.
	intro = len(pl.nodes)
	forget = intro + 1
	introBag := append(append(make([]int, 0, len(bag)+1), bag...), v)
	pl.nice.Nodes = append(pl.nice.Nodes,
		treedec.NiceNode{Kind: treedec.NiceIntroduce, Vertex: v, Bag: introBag, Children: []int{t}},
		treedec.NiceNode{Kind: treedec.NiceForget, Vertex: v, Bag: append([]int(nil), bag...), Children: []int{intro}},
	)
	pl.nodes = append(pl.nodes,
		planNode{
			kind: treedec.NiceIntroduce, vertex: v, child0: t, child1: -1,
			isEvent: true, pos: pos, eventIdx: -1,
			facts: []planFact{{fi: fi, cf: logic.CompileMask(logic.Var(e), map[logic.Event]int{e: pos})}},
		},
		planNode{
			kind: treedec.NiceForget, vertex: v, child0: intro, child1: -1,
			isEvent: true, pos: pos, eventIdx: eventIdx,
		},
	)
	if parent := pl.parents[t]; parent < 0 {
		pl.nice.Root = forget
		pl.root = forget
	} else {
		pn := &pl.nodes[parent]
		if pn.child0 == t {
			pn.child0 = forget
		} else {
			pn.child1 = forget
		}
		nn := &pl.nice.Nodes[parent]
		for i, c := range nn.Children {
			if c == t {
				nn.Children[i] = forget
			}
		}
	}
	if w := len(introBag) - 1; w > pl.width {
		pl.width = w
	}
	pl.post = pl.nice.PostOrder()
	pl.rebuildTopology()
	pl.structGen++
	return intro, forget, nil
}

// sortDedupInt32 sorts xs and removes duplicates in place.
func sortDedupInt32(xs []int32) []int32 {
	sortInt32(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
