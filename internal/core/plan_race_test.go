package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/rel"
)

// TestPlanConcurrentMixedEvaluations hammers one frozen Plan from 8
// goroutines with interleaved Probability and ProbabilityBatch calls and
// checks every answer against serial references. Run under -race (CI does)
// this is the proof that a frozen plan's transition caches, interners and
// pooled evaluation states are safe for parallel readers.
func TestPlanConcurrentMixedEvaluations(t *testing.T) {
	tid := gen.RSTChain(40, 0.5)
	q := rel.HardQuery()
	pl, p, err := PrepareTID(tid, q, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Serial references, computed before the plan is shared.
	r := rand.New(rand.NewSource(31))
	maps := append([]logic.Prob{p}, randomProbMaps(r, p, 3)...)
	want := make([]float64, len(maps))
	for i, m := range maps {
		if want[i], err = pl.Probability(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := pl.Freeze(); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			check := func(got, want float64) bool {
				// Row tables are hash maps, so only the float summation
				// order — the last ulp — may differ between runs.
				return math.Abs(got-want) <= 1e-12
			}
			for it := 0; it < iters; it++ {
				if (g+it)%2 == 0 {
					i := (g + it) % len(maps)
					got, err := pl.Probability(maps[i])
					if err != nil {
						errs <- err
						return
					}
					if !check(got, want[i]) {
						t.Errorf("goroutine %d: serial %v, want %v", g, got, want[i])
						return
					}
				} else {
					got, err := pl.ProbabilityBatch(maps)
					if err != nil {
						errs <- err
						return
					}
					for i := range maps {
						if !check(got[i], want[i]) {
							t.Errorf("goroutine %d lane %d: batch %v, want %v", g, i, got[i], want[i])
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFreezeIsIdempotent freezes twice and keeps evaluating.
func TestFreezeIsIdempotent(t *testing.T) {
	pl, p, err := PrepareTID(gen.RSTChain(6, 0.5), rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := pl.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Frozen() {
		t.Fatal("plan frozen before Freeze")
	}
	if err := pl.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := pl.Freeze(); err != nil {
		t.Fatal(err)
	}
	if !pl.Frozen() {
		t.Fatal("plan not frozen after Freeze")
	}
	after, err := pl.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before-after) > 1e-12 {
		t.Errorf("freeze changed the answer: %v vs %v", before, after)
	}
}
