package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// TestPlanMatchesOneShotAndEnumeration checks the Prepare/Evaluate split
// against both the one-shot entry point and the possible-worlds oracle on
// random TIDs.
func TestPlanMatchesOneShotAndEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	queries := []rel.CQ{
		rel.HardQuery(),
		rel.NewCQ(rel.NewAtom("R", rel.V("x"))),
		rel.NewCQ(rel.NewAtom("S", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y"), rel.V("z"))),
		rel.NewCQ(rel.NewAtom("S", rel.C("a"), rel.V("y")), rel.NewAtom("T", rel.V("y"))),
	}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tid := randomTID(r, 1+r.Intn(8))
		q := queries[r.Intn(len(queries))]
		pl, p, err := PrepareTID(tid, q, Options{})
		if err != nil {
			t.Logf("seed %d: prepare: %v", seed, err)
			return false
		}
		got, err := pl.Probability(p)
		if err != nil {
			t.Logf("seed %d: evaluate: %v", seed, err)
			return false
		}
		oneShot, err := ProbabilityTID(tid, q, Options{})
		if err != nil {
			t.Logf("seed %d: one-shot: %v", seed, err)
			return false
		}
		want := tid.QueryProbabilityEnumeration(q)
		if math.Abs(got-want) > 1e-9 || math.Abs(got-oneShot.Probability) > 1e-12 {
			t.Logf("seed %d: plan %v, one-shot %v, enum %v", seed, got, oneShot.Probability, want)
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestPlanRepeatedEvaluationsAreStable evaluates the same plan many times:
// answers must agree up to floating noise (row tables are hash maps, so the
// summation order — and hence the last ulp — may differ between runs, as it
// always has in the one-shot engine).
func TestPlanRepeatedEvaluationsAreStable(t *testing.T) {
	tid := gen.RSTChain(30, 0.5)
	q := rel.HardQuery()
	pl, p, err := PrepareTID(tid, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := pl.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := pl.Probability(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-first) > 1e-12 {
			t.Fatalf("evaluation %d: %v differs from first %v", i, got, first)
		}
	}
}

// TestPlanTwoProbMapsMatchFreshRuns evaluates a single plan under two
// different probability maps and checks both answers against fresh one-shot
// runs — the structure cache must be probability-independent.
func TestPlanTwoProbMapsMatchFreshRuns(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		tid := randomTID(r, 1+r.Intn(8))
		q := rel.HardQuery()
		c, p1 := tid.ToCInstance()
		pl, err := PrepareCQ(c, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		p2 := logic.Prob{}
		for e := range p1 {
			p2[e] = r.Float64()
		}
		// Interleave the two maps to exercise cache reuse across maps.
		for _, p := range []logic.Prob{p1, p2, p1, p2} {
			got, err := pl.Probability(p)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := ProbabilityPC(c, p, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-fresh.Probability) > 1e-12 {
				t.Fatalf("trial %d: plan %v, fresh run %v", trial, got, fresh.Probability)
			}
		}
	}
}

// TestPlanCorrelatedPCMatchesEnumeration checks the plan on pc-instances
// with shared events (correlated annotations) against enumeration.
func TestPlanCorrelatedPCMatchesEnumeration(t *testing.T) {
	q := rel.NewCQ(
		rel.NewAtom("E", rel.V("x"), rel.V("y")),
		rel.NewAtom("E", rel.V("y"), rel.V("z")),
	)
	for _, n := range []int{4, 6, 8} {
		r := rand.New(rand.NewSource(int64(n)))
		c, p := gen.CorrelatedPC(n, 3, r)
		pl, err := PrepareCQ(c, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := pl.Probability(p)
		if err != nil {
			t.Fatal(err)
		}
		want := c.QueryProbabilityEnumeration(q, p)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d: plan %v, enumeration %v", n, got, want)
		}
	}
}

// TestPlanLineageAcrossEvaluations checks that a plan prepared with
// EmitLineage produces a correct d-DNNF on every Result call, including
// under a changed probability map.
func TestPlanLineageAcrossEvaluations(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tid := randomTID(r, 6)
	q := rel.HardQuery()
	c, p1 := tid.ToCInstance()
	pl, err := PrepareCQ(c, q, Options{EmitLineage: true})
	if err != nil {
		t.Fatal(err)
	}
	p2 := logic.Prob{}
	for e := range p1 {
		p2[e] = r.Float64()
	}
	for _, p := range []logic.Prob{p1, p2} {
		res, err := pl.Result(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Lineage == nil {
			t.Fatal("no lineage emitted")
		}
		if got := res.Lineage.DDNNFProbability(res.Root, p); math.Abs(got-res.Probability) > 1e-9 {
			t.Errorf("d-DNNF pass %v vs engine %v", got, res.Probability)
		}
	}
}

// TestPlanResultLineageOwnedByCaller checks the documented ownership
// contract of (*Plan).Result: the returned lineage circuit belongs to the
// caller and is unaffected by any later evaluation of the same plan.
func TestPlanResultLineageOwnedByCaller(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	tid := randomTID(r, 6)
	q := rel.HardQuery()
	c, p1 := tid.ToCInstance()
	pl, err := PrepareCQ(c, q, Options{EmitLineage: true})
	if err != nil {
		t.Fatal(err)
	}
	first, err := pl.Result(p1)
	if err != nil {
		t.Fatal(err)
	}
	wantGates := first.Lineage.Stat().Gates
	want := first.Lineage.DDNNFProbability(first.Root, p1)
	if math.Abs(want-first.Probability) > 1e-9 {
		t.Fatalf("d-DNNF pass %v vs engine %v", want, first.Probability)
	}
	// Keep evaluating the plan under other maps, batched and serial.
	for i := 0; i < 5; i++ {
		p2 := logic.Prob{}
		for e := range p1 {
			p2[e] = r.Float64()
		}
		second, err := pl.Result(p2)
		if err != nil {
			t.Fatal(err)
		}
		if second.Lineage == first.Lineage {
			t.Fatal("Result returned a shared lineage circuit")
		}
		if _, err := pl.ProbabilityBatch([]logic.Prob{p1, p2}); err != nil {
			t.Fatal(err)
		}
	}
	// The first circuit must be byte-for-byte untouched.
	if got := first.Lineage.Stat().Gates; got != wantGates {
		t.Errorf("first lineage grew from %d to %d gates", wantGates, got)
	}
	if got := first.Lineage.DDNNFProbability(first.Root, p1); got != want {
		t.Errorf("first lineage now evaluates to %v, was %v", got, want)
	}
}

// TestPlanReachQuery checks the plan path with a non-CQ automaton
// (s-t connectivity) against a fresh one-shot run.
func TestPlanReachQuery(t *testing.T) {
	tid := pdb.NewTID()
	for i := 0; i < 6; i++ {
		tid.AddFact(0.5, "E", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	c, p := tid.ToCInstance()
	q := NewReachQuery("E", "n0", "n6", c.Inst, c.Inst.IndexDomain())
	pl, err := Prepare(c, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReachProbabilityTID(tid, "E", "n0", "n6", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want.Probability) > 1e-12 {
		t.Errorf("plan %v, one-shot %v", got, want.Probability)
	}
	// Chain of 7 nodes, 6 independent edges at 0.5: P = 0.5^6.
	if exact := math.Pow(0.5, 6); math.Abs(got-exact) > 1e-12 {
		t.Errorf("P = %v, want %v", got, exact)
	}
}
