// Package core implements the paper's primary contribution: exact query
// evaluation on tree-decomposed uncertain instances.
//
// Queries are presented to the engine as nondeterministic bag automata over
// nice tree decompositions (the Query interface below). This mirrors the
// paper's approach of compiling queries to tree automata that read tree
// encodings of bounded-treewidth instances: we implement the automaton *run*
// generically and compile conjunctive queries (CQQuery) and an MSO query
// beyond CQs, s-t connectivity (ReachQuery), to it.
//
// Two engines consume a Query:
//
//   - Probability (engine.go) runs the determinized automaton over a nice
//     decomposition of the joint instance+event graph, propagating exact
//     probabilities. This is the algorithm of Theorems 1 and 2: linear in
//     the instance for fixed query and width. It can simultaneously emit the
//     lineage as a deterministic, decomposable circuit (d-DNNF style), whose
//     probability is recomputable in linear time.
//
//   - MonotoneLineage (lineage.go) runs the nondeterministic automaton and
//     emits a monotone lineage circuit over per-fact variables — the
//     provenance circuit of the Section 2.2 semiring-provenance connection,
//     evaluable in any absorptive commutative semiring (internal/provenance)
//     and supporting O(gates) possibility and certainty checks.
package core

import "sort"

func sortStrings(ss []string) { sort.Strings(ss) }

// Query is a nondeterministic bag automaton: the compiled form of a Boolean
// query, run bottom-up over a nice tree decomposition of the instance's
// Gaifman graph. States are opaque strings managed by the implementation.
//
// Runs are existential: the query holds on a possible world iff some run
// over that world reaches an accepting state at the (empty-bag) root. The
// engine applies the subset construction to determinize, so implementations
// only describe single-run transitions.
//
// The engine assumes monotone queries: processing a fact offers the
// transitions of FactTransitions when the fact is present, and only the
// implicit identity transition when it is absent. (All queries in the paper
// — CQs, tree patterns, guarded fragments — are preserved under adding
// facts; extending the interface with absence-transitions would support
// non-monotone MSO at no change to the engines.)
type Query interface {
	// Start returns the states at an empty leaf bag.
	Start() []string

	// Introduce returns all successor states when domain element v joins
	// the bag. Implementations must include the "no change" successor
	// explicitly if the state survives (it almost always does).
	Introduce(st string, v int) []string

	// Forget returns the successor states when domain element v leaves the
	// bag, or nil if the run dies (e.g. a pending obligation on v can no
	// longer be met).
	Forget(st string, v int) []string

	// Join merges the states of two runs from sibling subtrees whose bags
	// are equal. ok is false when the runs are inconsistent.
	Join(a, b string) (merged string, ok bool)

	// FactTransitions returns the extra successor states available when
	// fact fi of the instance is present in the world. The identity
	// transition is implicit.
	FactTransitions(st string, fi int) []string

	// Accept reports whether a state at the empty-bag root is accepting.
	Accept(st string) bool
}

// SetPruner is an optional Query extension: PruneSet may drop states from a
// determinized state set when their presence can never change acceptance —
// typically states dominated by another state in the set, or everything
// else once an absorbing accepting state is present. Pruning keeps the
// probability computation exact (worlds whose pruned sets coincide are
// accepted identically) while collapsing the table sizes that drive the
// engine's constant factor.
type SetPruner interface {
	PruneSet(set []string) []string
}

// FactExtender is an optional Query extension for live-updated instances: a
// query compiled against an instance that later grows must learn about the
// appended facts before the engine applies their FactTransitions.
// ExtendFacts(n) declares that the instance now holds n facts, all appended
// at the end; it returns an error when an appended fact cannot be handled
// (e.g. its constants are outside the compiled domain index).
type FactExtender interface {
	ExtendFacts(n int) error
}

func prune(q Query, set []string) []string {
	if p, ok := q.(SetPruner); ok {
		return p.PruneSet(set)
	}
	return set
}

// detStep applies the subset construction for a single-state transition
// function: the deterministic successor of a state set is the union of the
// successors of its members.
func detStep(q Query, set []string, step func(string) []string) []string {
	out := make(map[string]struct{})
	for _, st := range set {
		for _, succ := range step(st) {
			out[succ] = struct{}{}
		}
	}
	return prune(q, sortedKeys(out))
}

// detFact applies a fact to a state set: every state survives (identity) and
// contributes its fact transitions.
func detFact(set []string, q Query, fi int) []string {
	out := make(map[string]struct{}, len(set))
	for _, st := range set {
		out[st] = struct{}{}
		for _, succ := range q.FactTransitions(st, fi) {
			out[succ] = struct{}{}
		}
	}
	return prune(q, sortedKeys(out))
}

// detJoin merges two state sets across a join node.
func detJoin(a, b []string, q Query) []string {
	out := make(map[string]struct{})
	for _, sa := range a {
		for _, sb := range b {
			if m, ok := q.Join(sa, sb); ok {
				out[m] = struct{}{}
			}
		}
	}
	return prune(q, sortedKeys(out))
}

// acceptsAny reports whether the set contains an accepting state.
func acceptsAny(set []string, q Query) bool {
	for _, st := range set {
		if q.Accept(st) {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}
