package core

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/pdb"
	"repro/internal/rel"
)

// ReachQuery compiles the Boolean query "constants Source and Target are
// connected by a path of Edge facts (undirected)" into a bag automaton.
// Connectivity is MSO-expressible but not a conjunctive query (paths are
// unbounded), so this query exercises the part of Theorems 1 and 2 that
// goes beyond CQs: any query compiled to an automaton is tractable on
// bounded-treewidth uncertain instances.
//
// States track a partition of some "active" bag elements into blocks —
// connected components of the edges the run has committed to — with two
// persistent flags per block recording whether the component has absorbed
// Source or Target. A run dies when a block loses its last bag element
// before connecting Source to Target; it reaches the absorbing accepting
// state the moment a block holds both flags.
type ReachQuery struct {
	Edge           string // edge relation name, e.g. "E"
	Source, Target string // constants
	inst           *rel.Instance
	di             *rel.DomainIndex
	sElem, tElem   int // element ids, -1 when absent from the domain
}

// NewReachQuery compiles the connectivity query for an instance.
func NewReachQuery(edge, source, target string, inst *rel.Instance, di *rel.DomainIndex) *ReachQuery {
	q := &ReachQuery{Edge: edge, Source: source, Target: target, inst: inst, di: di, sElem: -1, tElem: -1}
	if v, ok := di.ByName[source]; ok {
		q.sElem = v
	}
	if v, ok := di.ByName[target]; ok {
		q.tElem = v
	}
	return q
}

const reachDone = "D"

type reachState struct {
	elems []int // sorted active elements
	block []int // block[i] = canonical block id of elems[i]
	hasS  []bool
	hasT  []bool // indexed by block id
}

func (q *ReachQuery) encode(s reachState) string {
	// Canonicalize block ids by first appearance over sorted elements.
	remap := map[int]int{}
	next := 0
	var sb strings.Builder
	for i, e := range s.elems {
		b := s.block[i]
		if _, ok := remap[b]; !ok {
			remap[b] = next
			next++
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(e))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(remap[b]))
	}
	sb.WriteByte('#')
	flags := make([]byte, 2*next)
	for old, id := range remap {
		flags[2*id] = '0'
		flags[2*id+1] = '0'
		if s.hasS[old] {
			flags[2*id] = '1'
		}
		if s.hasT[old] {
			flags[2*id+1] = '1'
		}
	}
	sb.Write(flags)
	return sb.String()
}

func (q *ReachQuery) decode(key string) reachState {
	hash := strings.IndexByte(key, '#')
	var s reachState
	if hash > 0 {
		for _, part := range strings.Split(key[:hash], ",") {
			colon := strings.IndexByte(part, ':')
			e, _ := strconv.Atoi(part[:colon])
			b, _ := strconv.Atoi(part[colon+1:])
			s.elems = append(s.elems, e)
			s.block = append(s.block, b)
		}
	}
	flags := key[hash+1:]
	nb := len(flags) / 2
	s.hasS = make([]bool, nb)
	s.hasT = make([]bool, nb)
	for b := 0; b < nb; b++ {
		s.hasS[b] = flags[2*b] == '1'
		s.hasT[b] = flags[2*b+1] == '1'
	}
	return s
}

// Start returns the empty-partition state, or the accepting state when the
// source and target constants coincide (the empty path connects them).
func (q *ReachQuery) Start() []string {
	if q.Source == q.Target {
		return []string{reachDone}
	}
	return []string{q.encode(reachState{})}
}

// Introduce keeps the state unchanged: blocks are only created by edges.
func (q *ReachQuery) Introduce(st string, v int) []string {
	return []string{st}
}

// Forget removes v from its block if active. A block that loses its last
// bag element can never grow again (every future edge touches only current
// or future bag elements), so the run dies: either the component was sealed
// without connecting Source to Target, or the guess was useless.
func (q *ReachQuery) Forget(st string, v int) []string {
	if st == reachDone {
		return []string{reachDone}
	}
	s := q.decode(st)
	idx := -1
	for i, e := range s.elems {
		if e == v {
			idx = i
			break
		}
	}
	if idx < 0 {
		return []string{st}
	}
	b := s.block[idx]
	survivors := 0
	for i, bb := range s.block {
		if i != idx && bb == b {
			survivors++
		}
	}
	if survivors == 0 {
		return nil // sealed block: dead run
	}
	ns := reachState{hasS: s.hasS, hasT: s.hasT}
	for i := range s.elems {
		if i == idx {
			continue
		}
		ns.elems = append(ns.elems, s.elems[i])
		ns.block = append(ns.block, s.block[i])
	}
	return []string{q.encode(ns)}
}

// Join merges the component structures of two sibling runs by unioning
// blocks that share an active element.
func (q *ReachQuery) Join(a, b string) (string, bool) {
	if a == reachDone || b == reachDone {
		return reachDone, true
	}
	sa, sb := q.decode(a), q.decode(b)
	nl := len(sa.hasS)
	// Union-find over left blocks (0..nl-1) and right blocks (nl..).
	parent := make([]int, nl+len(sb.hasS))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) { parent[find(x)] = find(y) }

	leftBlockOf := map[int]int{}
	for i, e := range sa.elems {
		leftBlockOf[e] = sa.block[i]
	}
	rightBlockOf := map[int]int{}
	for i, e := range sb.elems {
		rightBlockOf[e] = sb.block[i]
	}
	for e, lb := range leftBlockOf {
		if rb, ok := rightBlockOf[e]; ok {
			union(lb, nl+rb)
		}
	}
	// Collect merged blocks and flags.
	rootID := map[int]int{}
	var hasS, hasT []bool
	blockID := func(node int) int {
		r := find(node)
		if id, ok := rootID[r]; ok {
			return id
		}
		id := len(hasS)
		rootID[r] = id
		hasS = append(hasS, false)
		hasT = append(hasT, false)
		return id
	}
	for b := 0; b < nl; b++ {
		id := blockID(b)
		hasS[id] = hasS[id] || sa.hasS[b]
		hasT[id] = hasT[id] || sa.hasT[b]
	}
	for b := range sb.hasS {
		id := blockID(nl + b)
		hasS[id] = hasS[id] || sb.hasS[b]
		hasT[id] = hasT[id] || sb.hasT[b]
	}
	elemSet := map[int]int{}
	for e, lb := range leftBlockOf {
		elemSet[e] = blockID(lb)
	}
	for e, rb := range rightBlockOf {
		elemSet[e] = blockID(nl + rb)
	}
	ns := reachState{hasS: hasS, hasT: hasT}
	for _, e := range sortedIntKeys(elemSet) {
		ns.elems = append(ns.elems, e)
		ns.block = append(ns.block, elemSet[e])
	}
	for b := range hasS {
		if hasS[b] && hasT[b] {
			return reachDone, true
		}
	}
	return q.encode(ns), true
}

// FactTransitions commits to an edge: it activates or merges the blocks of
// its endpoints. At most one successor exists per state.
func (q *ReachQuery) FactTransitions(st string, fi int) []string {
	if st == reachDone {
		return nil
	}
	f := q.inst.Fact(fi)
	if f.Rel != q.Edge || len(f.Args) != 2 {
		return nil
	}
	a := q.di.ByName[f.Args[0]]
	b := q.di.ByName[f.Args[1]]
	s := q.decode(st)
	blockOf := map[int]int{}
	for i, e := range s.elems {
		blockOf[e] = s.block[i]
	}
	ba, aActive := blockOf[a]
	bb, bActive := blockOf[b]
	ns := reachState{
		elems: append([]int(nil), s.elems...),
		block: append([]int(nil), s.block...),
		hasS:  append([]bool(nil), s.hasS...),
		hasT:  append([]bool(nil), s.hasT...),
	}
	var target int
	switch {
	case aActive && bActive:
		if ba == bb {
			return nil // already together: identity suffices
		}
		// Merge bb into ba.
		for i := range ns.block {
			if ns.block[i] == bb {
				ns.block[i] = ba
			}
		}
		ns.hasS[ba] = ns.hasS[ba] || ns.hasS[bb]
		ns.hasT[ba] = ns.hasT[ba] || ns.hasT[bb]
		target = ba
	case aActive:
		ns.elems, ns.block = insertElem(ns.elems, ns.block, b, ba)
		target = ba
	case bActive:
		ns.elems, ns.block = insertElem(ns.elems, ns.block, a, bb)
		target = bb
	default:
		id := len(ns.hasS)
		ns.hasS = append(ns.hasS, false)
		ns.hasT = append(ns.hasT, false)
		ns.elems, ns.block = insertElem(ns.elems, ns.block, a, id)
		if b != a {
			ns.elems, ns.block = insertElem(ns.elems, ns.block, b, id)
		}
		target = id
	}
	// Absorb the source/target flags carried by the endpoints themselves.
	if a == q.sElem || b == q.sElem {
		ns.hasS[target] = true
	}
	if a == q.tElem || b == q.tElem {
		ns.hasT[target] = true
	}
	if ns.hasS[target] && ns.hasT[target] {
		return []string{reachDone}
	}
	return []string{q.encode(ns)}
}

// Accept holds only in the absorbing connected state.
func (q *ReachQuery) Accept(st string) bool { return st == reachDone }

// PruneSet collapses any set containing the absorbing connected state: once
// some run has connected Source and Target, the remaining runs cannot change
// acceptance.
func (q *ReachQuery) PruneSet(set []string) []string {
	for _, st := range set {
		if st == reachDone {
			return []string{reachDone}
		}
	}
	return set
}

func insertElem(elems, block []int, e, b int) ([]int, []int) {
	i := sort.SearchInts(elems, e)
	elems = append(elems, 0)
	copy(elems[i+1:], elems[i:])
	elems[i] = e
	block = append(block, 0)
	copy(block[i+1:], block[i:])
	block[i] = b
	return elems, block
}

func sortedIntKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ReachProbabilityTID computes the probability that source and target are
// connected in a TID of Edge facts — an MSO query evaluated by the
// Theorem 1 algorithm.
func ReachProbabilityTID(t *pdb.TID, edge, source, target string, opts Options) (*Result, error) {
	c, p := t.ToCInstance()
	q := NewReachQuery(edge, source, target, c.Inst, c.Inst.IndexDomain())
	return EvaluatePC(c, p, q, opts)
}
