package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pdb"
	"repro/internal/rel"
)

// connectedBF reports s-t connectivity in a certain world by breadth-first
// search: the reference semantics for ReachQuery.
func connectedBF(world *rel.Instance, edge, s, t string) bool {
	if s == t {
		return true
	}
	adj := map[string][]string{}
	for _, f := range world.Facts() {
		if f.Rel != edge || len(f.Args) != 2 {
			continue
		}
		adj[f.Args[0]] = append(adj[f.Args[0]], f.Args[1])
		adj[f.Args[1]] = append(adj[f.Args[1]], f.Args[0])
	}
	seen := map[string]bool{s: true}
	queue := []string{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == t {
			return true
		}
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return false
}

func randomEdgeTID(r *rand.Rand, n int, names []string) *pdb.TID {
	t := pdb.NewTID()
	for i := 0; i < n; i++ {
		a := names[r.Intn(len(names))]
		b := names[r.Intn(len(names))]
		t.AddFact(float64(r.Intn(11))/10, "E", a, b)
	}
	return t
}

func TestReachChainExact(t *testing.T) {
	// s - m - t chain, each edge present with probability 0.5 and a direct
	// edge s-t with probability 0.5: P(connected) = P(direct) +
	// P(!direct) * P(both chain edges) = 0.5 + 0.5*0.25 = 0.625.
	tid := pdb.NewTID()
	tid.AddFact(0.5, "E", "s", "m")
	tid.AddFact(0.5, "E", "m", "t")
	tid.AddFact(0.5, "E", "s", "t")
	res, err := ReachProbabilityTID(tid, "E", "s", "t", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Probability-0.625) > 1e-12 {
		t.Errorf("P = %v, want 0.625", res.Probability)
	}
}

func TestReachSourceEqualsTarget(t *testing.T) {
	tid := pdb.NewTID()
	tid.AddFact(0.5, "E", "a", "b")
	res, err := ReachProbabilityTID(tid, "E", "a", "a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probability != 1 {
		t.Errorf("P(a~a) = %v, want 1", res.Probability)
	}
}

func TestReachDisconnected(t *testing.T) {
	tid := pdb.NewTID()
	tid.AddFact(0.9, "E", "a", "b")
	tid.AddFact(0.9, "E", "c", "d")
	res, err := ReachProbabilityTID(tid, "E", "a", "d", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probability != 0 {
		t.Errorf("P = %v, want 0", res.Probability)
	}
}

func TestPropertyReachMatchesEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	names := []string{"s", "a", "b", "t"}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tid := randomEdgeTID(r, 1+r.Intn(7), names)
		want := 0.0
		tid.EnumerateWorlds(func(w *rel.Instance, p float64) {
			if connectedBF(w, "E", "s", "t") {
				want += p
			}
		})
		res, err := ReachProbabilityTID(tid, "E", "s", "t", Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if math.Abs(res.Probability-want) > 1e-9 {
			t.Logf("seed %d: engine %v, enum %v on %s", seed, res.Probability, want, tid.Inst)
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyReachRunOnWorldMatchesBFS(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	names := []string{"s", "a", "b", "c", "t"}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tid := randomEdgeTID(r, 1+r.Intn(9), names)
		inst := tid.Inst
		q := NewReachQuery("E", "s", "t", inst, inst.IndexDomain())
		present := make([]bool, inst.NumFacts())
		for i := range present {
			present[i] = r.Intn(2) == 0
		}
		got, err := RunOnWorld(inst, present, q)
		if err != nil {
			return false
		}
		world := rel.NewInstance()
		for i, keep := range present {
			if keep {
				world.Add(inst.Fact(i))
			}
		}
		want := connectedBF(world, "E", "s", "t")
		if got != want {
			t.Logf("seed %d: automaton %v, BFS %v on %s", seed, got, want, world)
		}
		return got == want
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestReachLongPathLinearScale(t *testing.T) {
	// A 50-edge path: connectivity probability is the product of the edge
	// probabilities; enumeration would need 2^50 worlds.
	tid := pdb.NewTID()
	for i := 0; i < 50; i++ {
		tid.AddFact(0.95, "E", nodeName(i), nodeName(i+1))
	}
	res, err := ReachProbabilityTID(tid, "E", nodeName(0), nodeName(50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.95, 50)
	if math.Abs(res.Probability-want) > 1e-9 {
		t.Errorf("P = %v, want %v", res.Probability, want)
	}
}

func TestReachMissingEndpoints(t *testing.T) {
	tid := pdb.NewTID()
	tid.AddFact(0.5, "E", "a", "b")
	res, err := ReachProbabilityTID(tid, "E", "a", "zzz", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probability != 0 {
		t.Errorf("P to absent vertex = %v, want 0", res.Probability)
	}
}

func TestReachCycleRedundantPaths(t *testing.T) {
	// 4-cycle s-a-t-b-s with all edges p=0.5: s~t iff a path survives.
	tid := pdb.NewTID()
	tid.AddFact(0.5, "E", "s", "a")
	tid.AddFact(0.5, "E", "a", "t")
	tid.AddFact(0.5, "E", "t", "b")
	tid.AddFact(0.5, "E", "b", "s")
	want := 0.0
	tid.EnumerateWorlds(func(w *rel.Instance, p float64) {
		if connectedBF(w, "E", "s", "t") {
			want += p
		}
	})
	res, err := ReachProbabilityTID(tid, "E", "s", "t", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Probability-want) > 1e-12 {
		t.Errorf("P = %v, want %v", res.Probability, want)
	}
}
