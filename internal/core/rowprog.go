package core

import (
	"fmt"

	"repro/internal/core/kernel"
	"repro/internal/logic"
	"repro/internal/treedec"
)

// This file compiles the dynamic program's row structure into dense row
// programs. The row keys of every node table — and therefore the complete
// src→dst wiring of the bottom-up sweep — depend only on the compiled plan,
// never on the event probabilities (the same invariant Freeze relies on to
// seal the transition caches). A row program exploits that invariant to the
// end: each node's table becomes a contiguous block of lane vectors in a
// fixed row layout, and the node's work becomes a precompiled edge list
// driven through the kernel primitives (internal/core/kernel). Evaluation
// then runs with no map lookups, no interning and no key hashing at all —
// pure gather/accumulate float arithmetic over adjacent memory.
//
// Fact application is fused into the wiring: a fact homed at a node only
// remaps a row's state set (its annotation reads the row's bits, which no
// fact changes), so the compiler composes all fact transitions into the
// node's dst indices and every row is touched exactly once per node.
//
// Two consumers share the compiler:
//
//   - (*Plan).Freeze compiles the whole plan (compileProgram); frozen-plan
//     evaluations — Probability, ProbabilityBatch, rootVec — run the program
//     instead of the map DP.
//   - core.Materialized compiles per node, lazily, against its persisted
//     dense tables (compileNodeProg), so live-view spine recomputation runs
//     the same kernels; a structure splice (StageAttach) just drops the
//     affected nodes' programs for recompilation during the next commit.

// nodeProg kinds.
const (
	pkLeaf uint8 = iota
	pkUnary
	pkForgetEvent
	pkJoin
)

// rpEdge wires child row src into this node's row dst.
type rpEdge struct{ src, dst int32 }

// rpJoin wires the product of left row l and right row r into row dst.
type rpJoin struct{ l, r, dst int32 }

// nodeProg is the compiled row wiring of one nice node: everything the
// node's table computation does, with row keys resolved to dense indices and
// fact transitions folded in.
//
// in0/in1 name the nodes whose blocks feed this program. They start as the
// nice children, but the whole-plan fusion pass (fuseUnaryChains) re-sources
// them past folded unary nodes, so a fused program gathers directly from a
// deeper ancestor's block.
type nodeProg struct {
	kind     uint8
	dead     bool  // folded into its consumer; the sweep skips it entirely
	in0, in1 int32 // source nodes of c0/c1 (-1 when absent)
	rows     int
	eventIdx int      // pkForgetEvent: index of the weight lane applied here
	edges    []rpEdge // pkUnary: plain gather-add edges
	e0, e1   []rpEdge // pkForgetEvent: edges for rows with the event false / true
	joins    []rpJoin // pkJoin

	// delta is the lazily built edge adjacency used by the partial commit
	// pass (see buildDeltaIdx); nil until a partial recompute first touches
	// this program, dropped with the program on recompilation.
	delta *deltaIdx
}

// rowProgram is the whole-plan compile: one nodeProg per nice node plus the
// root layout, attached to a Plan by Freeze.
type rowProgram struct {
	nodes    []*nodeProg
	rootSets []int32         // interned set id of each root row, in row order
	rootRow  map[int32]int32 // set id -> root row, for keyed extraction
}

// factRemap composes the transitions of the facts homed at nd onto row key
// k: each annotation is a compiled mask over k.bits (which no fact changes),
// so the whole fact chain folds into one set remap per row.
func (pl *Plan) factRemap(nd *planNode, k rowKey) rowKey {
	for i := range nd.facts {
		pf := &nd.facts[i]
		if pf.cf.Eval(k.bits) {
			k.set = pl.factSet(k.set, pf.fi)
		}
	}
	return k
}

// compileNodeProg compiles the row program of node t against the given
// child row layouts (layouts[c] is the key of child c's row i at index i)
// and returns t's own layout alongside the program. Rows are laid out in
// first-encounter order over the deterministic child-layout iteration, so
// recompiling a node whose children kept their layouts reproduces the same
// layout. Transition-cache misses fill the caches as usual; on a frozen
// plan every lookup hits (Freeze's structural pass visited them all).
func (pl *Plan) compileNodeProg(t int, layouts [][]rowKey) ([]rowKey, *nodeProg) {
	nd := &pl.nodes[t]
	np := &nodeProg{eventIdx: -1, in0: int32(nd.child0), in1: int32(nd.child1)}
	var keys []rowKey
	idx := make(map[rowKey]int32)
	slot := func(k rowKey) int32 {
		if i, ok := idx[k]; ok {
			return i
		}
		i := int32(len(keys))
		idx[k] = i
		keys = append(keys, k)
		return i
	}

	switch nd.kind {
	case treedec.NiceLeaf:
		np.kind = pkLeaf
		slot(pl.factRemap(nd, rowKey{set: pl.startSet}))

	case treedec.NiceIntroduce:
		np.kind = pkUnary
		child := layouts[nd.child0]
		if nd.isEvent {
			pos := nd.pos
			for si, k := range child {
				np.edges = append(np.edges,
					rpEdge{src: int32(si), dst: slot(pl.factRemap(nd, rowKey{set: k.set, bits: insertBit(k.bits, pos, false)}))},
					rpEdge{src: int32(si), dst: slot(pl.factRemap(nd, rowKey{set: k.set, bits: insertBit(k.bits, pos, true)}))})
			}
		} else {
			for si, k := range child {
				np.edges = append(np.edges,
					rpEdge{src: int32(si), dst: slot(pl.factRemap(nd, rowKey{set: pl.introduceSet(k.set, nd.vertex), bits: k.bits}))})
			}
		}

	case treedec.NiceForget:
		child := layouts[nd.child0]
		if nd.isEvent {
			np.kind = pkForgetEvent
			np.eventIdx = nd.eventIdx
			pos := nd.pos
			for si, k := range child {
				e := rpEdge{src: int32(si), dst: slot(pl.factRemap(nd, rowKey{set: k.set, bits: removeBit(k.bits, pos)}))}
				if k.bits&(1<<uint(pos)) != 0 {
					np.e1 = append(np.e1, e)
				} else {
					np.e0 = append(np.e0, e)
				}
			}
		} else {
			np.kind = pkUnary
			for si, k := range child {
				np.edges = append(np.edges,
					rpEdge{src: int32(si), dst: slot(pl.factRemap(nd, rowKey{set: pl.forgetSet(k.set, nd.vertex), bits: k.bits}))})
			}
		}

	case treedec.NiceJoin:
		np.kind = pkJoin
		left, right := layouts[nd.child0], layouts[nd.child1]
		// In-bag events are shared between the children, so only rows with
		// equal bits combine: index the right layout by bits once, then each
		// left row joins against its (usually tiny) matching run — a linear
		// merge instead of the quadratic all-pairs scan.
		byBits := make(map[uint64][]int32, len(right))
		for ri, k := range right {
			byBits[k.bits] = append(byBits[k.bits], int32(ri))
		}
		for li, lk := range left {
			for _, ri := range byBits[lk.bits] {
				np.joins = append(np.joins, rpJoin{
					l: int32(li), r: ri,
					dst: slot(pl.factRemap(nd, rowKey{set: pl.joinSets(lk.set, right[ri].set), bits: lk.bits})),
				})
			}
		}
	}
	np.rows = len(keys)
	return keys, np
}

// compileProgram compiles every node of the plan in one structural pass and
// fuses away the plain-unary copy chains. Called by Freeze, after the freeze
// evaluation has completed the transition caches and before the plan is
// marked frozen.
func (pl *Plan) compileProgram() *rowProgram {
	layouts := make([][]rowKey, len(pl.nodes))
	prog := &rowProgram{nodes: make([]*nodeProg, len(pl.nodes))}
	for _, t := range pl.post {
		layouts[t], prog.nodes[t] = pl.compileNodeProg(t, layouts)
	}
	prog.fuseUnaryChains(pl.post, pl.root)
	rootKeys := layouts[pl.root]
	prog.rootSets = make([]int32, len(rootKeys))
	prog.rootRow = make(map[int32]int32, len(rootKeys))
	for i, k := range rootKeys {
		prog.rootSets[i] = k.set
		prog.rootRow[k.set] = int32(i)
	}
	return prog
}

// fuseUnaryChains folds pkUnary programs into their consumers: a plain
// gather-add node is a 0/1 linear map, so composing its edge list into the
// parent's source indices yields the same block without ever materializing
// the intermediate one. Nice decompositions are dominated by such nodes
// (introduce/forget of domain vertices, event introductions), so after
// fusion the sweep only materializes leaf, forget-event and join blocks —
// each surviving kernel gathers straight from the previous surviving block.
//
// Nodes are visited in post order; chains collapse one link per visit since
// a folded child's sources were already re-sourced at its own visit. Every
// node has exactly one consumer (the decomposition is a tree), so folding a
// child never duplicates its work. Composition through a merging node
// multiplies edge lists; a fold that would blow the parent's edge count past
// a small multiple is skipped (the node then simply stays materialized).
func (rp *rowProgram) fuseUnaryChains(post []int, root int) {
	for _, t := range post {
		if t == root {
			continue // the root block is the program's output
		}
		np := rp.nodes[t]
		if np.dead {
			continue
		}
		rp.fuseInput(np, &np.in0, true)
		if np.kind == pkJoin {
			rp.fuseInput(np, &np.in1, false)
		}
	}
}

// fuseInput folds the pkUnary chain feeding one input of np (left when
// isLeft, the join's right otherwise), rewriting the matching source-index
// lists in place.
func (rp *rowProgram) fuseInput(np *nodeProg, in *int32, isLeft bool) {
	for *in >= 0 {
		child := rp.nodes[*in]
		if child.kind != pkUnary || child.dead {
			return
		}
		// Invert the child's edges: inv[dst] = the child-input rows feeding it.
		inv := make([][]int32, child.rows)
		for _, e := range child.edges {
			inv[e.dst] = append(inv[e.dst], e.src)
		}
		project := func(edges []rpEdge) (int, bool) {
			n := 0
			for _, e := range edges {
				n += len(inv[e.src])
			}
			return n, n <= 2*len(edges)+16
		}
		substEdges := func(edges []rpEdge) []rpEdge {
			out := make([]rpEdge, 0, len(edges))
			for _, e := range edges {
				for _, cs := range inv[e.src] {
					out = append(out, rpEdge{src: cs, dst: e.dst})
				}
			}
			return out
		}
		switch np.kind {
		case pkUnary:
			if _, ok := project(np.edges); !ok {
				return
			}
			np.edges = substEdges(np.edges)
		case pkForgetEvent:
			n0, ok0 := project(np.e0)
			n1, ok1 := project(np.e1)
			if !ok0 || !ok1 || n0+n1 > 2*(len(np.e0)+len(np.e1))+16 {
				return
			}
			np.e0 = substEdges(np.e0)
			np.e1 = substEdges(np.e1)
		case pkJoin:
			n := 0
			for _, j := range np.joins {
				if isLeft {
					n += len(inv[j.l])
				} else {
					n += len(inv[j.r])
				}
			}
			if n > 2*len(np.joins)+16 {
				return
			}
			out := make([]rpJoin, 0, len(np.joins))
			for _, j := range np.joins {
				if isLeft {
					for _, cs := range inv[j.l] {
						out = append(out, rpJoin{l: cs, r: j.r, dst: j.dst})
					}
				} else {
					for _, cs := range inv[j.r] {
						out = append(out, rpJoin{l: j.l, r: cs, dst: j.dst})
					}
				}
			}
			np.joins = out
		default:
			return
		}
		child.dead = true
		*in = child.in0
	}
}

// runNodeProg executes one node's program over B-lane row blocks: dst is the
// node's zeroed rows*B block, c0/c1 the children's blocks, w the node's
// weight lane block (pkForgetEvent only).
//
//pdblint:hotpath
func runNodeProg(np *nodeProg, B int, dst, c0, c1, w []float64) {
	switch np.kind {
	case pkLeaf:
		kernel.Fill(dst[:B], 1)
	case pkUnary:
		for _, e := range np.edges {
			kernel.AddTo(dst[int(e.dst)*B:int(e.dst)*B+B], c0[int(e.src)*B:int(e.src)*B+B])
		}
	case pkForgetEvent:
		for _, e := range np.e1 {
			kernel.MulAdd(dst[int(e.dst)*B:int(e.dst)*B+B], c0[int(e.src)*B:int(e.src)*B+B], w)
		}
		for _, e := range np.e0 {
			kernel.FMAdd1m(dst[int(e.dst)*B:int(e.dst)*B+B], c0[int(e.src)*B:int(e.src)*B+B], w)
		}
	case pkJoin:
		for _, j := range np.joins {
			kernel.MulAdd(dst[int(j.dst)*B:int(j.dst)*B+B], c0[int(j.l)*B:int(j.l)*B+B], c1[int(j.r)*B:int(j.r)*B+B])
		}
	}
}

// runNodeProg1 is the single-lane (B = 1) specialization used by
// Materialized spine recomputation, where per-edge kernel-call overhead
// would dominate one-element blocks.
//
//pdblint:hotpath
func runNodeProg1(np *nodeProg, dst, c0, c1 []float64, w float64) {
	switch np.kind {
	case pkLeaf:
		dst[0] = 1
	case pkUnary:
		for _, e := range np.edges {
			dst[e.dst] += c0[e.src]
		}
	case pkForgetEvent:
		for _, e := range np.e1 {
			dst[e.dst] += c0[e.src] * w
		}
		w1m := 1 - w
		for _, e := range np.e0 {
			dst[e.dst] += c0[e.src] * w1m
		}
	case pkJoin:
		for _, j := range np.joins {
			dst[j.dst] += c0[j.l] * c1[j.r]
		}
	}
}

// runBatchProg executes the compiled row program bottom-up under the
// lane-major weight matrix pe and returns the root block (rows × B,
// lane-major), whose ownership passes to the caller (Put it back into st's
// arena). Blocks are recycled through the arena as soon as each parent has
// consumed them, so the live memory tracks the frontier of the sweep and
// steady-state calls through a pooled state allocate nothing.
//
//pdblint:hotpath
func (pl *Plan) runBatchProg(st *evalState, pe []float64, B int) []float64 {
	if len(st.blocks) < len(pl.nodes) {
		st.blocks = make([][]float64, len(pl.nodes))
	}
	blocks := st.blocks
	for _, t := range pl.post {
		np := pl.prog.nodes[t]
		if np.dead {
			continue // folded into its consumer by fuseUnaryChains
		}
		dst := st.arena.Get(np.rows * B)
		var c0, c1 []float64
		if np.in0 >= 0 {
			c0 = blocks[np.in0]
		}
		if np.in1 >= 0 {
			c1 = blocks[np.in1]
		}
		var w []float64
		if np.kind == pkForgetEvent {
			w = pe[np.eventIdx*B : np.eventIdx*B+B]
		}
		runNodeProg(np, B, dst, c0, c1, w)
		if c0 != nil {
			st.arena.Put(c0)
			blocks[np.in0] = nil
		}
		if c1 != nil {
			st.arena.Put(c1)
			blocks[np.in1] = nil
		}
		blocks[t] = dst
	}
	root := blocks[pl.root]
	blocks[pl.root] = nil
	return root
}

// fillLaneWeights writes the lane-major Bernoulli weight matrix of ps into
// the state's weight buffer: pe[i*B+l] = ps[l].P(events[i]). Instead of one
// hashed string lookup per (event, lane) pair, it fills the 0.5 default
// (logic.Prob's convention for unlisted events) and scatters each lane's map
// entries through the plan's single event index, so every string key hashes
// into one cache-resident map exactly once per lane.
//
//pdblint:hotpath -maprange
func (pl *Plan) fillLaneWeights(st *evalState, ps []logic.Prob) []float64 {
	B := len(ps)
	need := len(pl.events) * B
	if cap(st.peBuf) < need {
		st.peBuf = make([]float64, need)
	}
	pe := st.peBuf[:need]
	kernel.Fill(pe, 0.5)
	for l, p := range ps {
		for e, v := range p {
			if i, ok := pl.eventIdx[e]; ok {
				pe[i*B+l] = v
			}
		}
	}
	return pe
}

// fillLaneWeightsChecked is fillLaneWeights with per-lane validation fused
// into the scatter, so each lane's map is iterated exactly once per batch
// call instead of once for Validate and once for the fill. A lane with an
// out-of-range or NaN probability is recorded in the returned error slice
// (nil when every lane is valid, matching sanitizeLanes) and its weight
// column is reset to the 0.5 defaults so the shared program stays finite;
// the caller overwrites its output with NaN.
func (pl *Plan) fillLaneWeightsChecked(st *evalState, ps []logic.Prob) ([]float64, []error) {
	B := len(ps)
	need := len(pl.events) * B
	if cap(st.peBuf) < need {
		st.peBuf = make([]float64, need)
	}
	pe := st.peBuf[:need]
	kernel.Fill(pe, 0.5)
	var errs []error
	for l, p := range ps {
		bad := false
		for e, v := range p {
			if !(v >= 0 && v <= 1) { // negated comparison catches NaN
				if errs == nil {
					errs = make([]error, B)
				}
				errs[l] = fmt.Errorf("logic: probability of event %q is %v, outside [0,1]", e, v)
				bad = true
				break
			}
			if i, ok := pl.eventIdx[e]; ok {
				pe[i*B+l] = v
			}
		}
		if bad {
			// Reset whatever the lane wrote before the invalid entry.
			for i := 0; i < len(pl.events); i++ {
				pe[i*B+l] = 0.5
			}
		}
	}
	return pe, errs
}
