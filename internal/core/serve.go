package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/logic"
)

// Request names one independent evaluation for Serve: a compiled plan and
// the event probability map to evaluate it under. Requests may mix plans
// freely — many requests sharing one plan (a parameter sweep), or each
// carrying its own (mixed queries). Exactly one of Plan and Sharded must be
// set; component-sharded plans additionally fan their own shards over the
// pool once frozen.
type Request struct {
	Plan    *Plan
	Sharded *ShardedPlan
	P       logic.Prob
}

// Response is the outcome of one Request.
type Response struct {
	Probability float64
	Err         error
}

// Serve evaluates the requests concurrently over a worker pool and returns
// one Response per request, in request order. workers <= 0 uses
// runtime.GOMAXPROCS(0).
//
// Every distinct plan is frozen (Freeze) before the fan-out, so a single
// compiled plan can be shared by any number of concurrent requests; the
// per-request work is only the numeric dynamic program. Requests whose plan
// fails to freeze (or is nil) get the error in their Response rather than
// failing the whole batch.
func Serve(reqs []Request, workers int) []Response {
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}

	// Freeze each distinct plan once, serially, before sharing it.
	freezeErr := map[*Plan]error{}
	shardedErr := map[*ShardedPlan]error{}
	for _, r := range reqs {
		if r.Plan != nil {
			if _, seen := freezeErr[r.Plan]; !seen {
				freezeErr[r.Plan] = r.Plan.Freeze()
			}
		}
		if r.Sharded != nil {
			if _, seen := shardedErr[r.Sharded]; !seen {
				shardedErr[r.Sharded] = r.Sharded.Freeze()
			}
		}
	}

	runPool(len(reqs), workers, func(i int) {
		req := reqs[i]
		switch {
		case req.Plan != nil && req.Sharded != nil:
			out[i].Err = fmt.Errorf("core: request %d sets both Plan and Sharded", i)
		case req.Plan != nil:
			if err := freezeErr[req.Plan]; err != nil {
				out[i].Err = err
				return
			}
			out[i].Probability, out[i].Err = req.Plan.Probability(req.P)
		case req.Sharded != nil:
			if err := shardedErr[req.Sharded]; err != nil {
				out[i].Err = err
				return
			}
			out[i].Probability, out[i].Err = req.Sharded.Probability(req.P)
		default:
			out[i].Err = fmt.Errorf("core: request %d has a nil plan", i)
		}
	})
	return out
}

// runPool fans fn(0..n-1) over a pool of worker goroutines pulling indices
// from a shared counter — the serving machinery behind Serve, reused by
// ShardedPlan to evaluate shards concurrently. workers <= 0 uses
// runtime.GOMAXPROCS(0); a single worker (or n <= 1) runs inline.
func runPool(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
