package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core/kernel"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
	"repro/internal/treedec"
)

// ShardedPlan is a compiled query plan split along the connected components
// of the joint instance+event graph. The dynamic program over a disconnected
// graph factors into one independent program per component, so Prepare-ing a
// sub-plan per component gives the same answers as the monolithic Prepare
// while unlocking locality: each shard's tables depend only on its own
// events, shards evaluate in parallel over a worker pool (the Serve
// machinery), and — through internal/incr — an update to one fact touches
// one shard's spine instead of the whole structure.
//
// The per-shard results are combined at the empty root bag: each shard
// contributes a small distribution over determinized automaton state sets,
// and the fold multiplies row probabilities across shards while joining
// their state sets through the query — exactly the join chain the monolithic
// plan runs over its decomposition forest, so disconnected queries (whose
// matches span components) are still answered exactly. The fold's transition
// structure depends only on the compiled shards, never on the probabilities,
// so it is compiled once at Prepare time and evaluations run it as pure
// float arithmetic.
//
// Probability, ProbabilityBatch, Result and Freeze mirror *Plan: an unfrozen
// ShardedPlan must be confined to one goroutine; after Freeze any number of
// goroutines may evaluate concurrently, and each call fans its shards over a
// worker pool.
//
//pdblint:frozen
type ShardedPlan struct {
	q     rel.CQ
	combQ Query // join/accept oracle for the cross-shard fold

	shards     []*Plan
	subC       []*pdb.CInstance
	factShard  []int // instance fact index -> shard
	eventShard map[logic.Event]int
	width      int
	nodes      int

	// The precompiled fold over the shards' root distributions.
	prog foldProgram

	frozen bool

	// onShardEval, when set, receives the wall time of every per-shard DP
	// evaluation (see SetEvalObserver).
	onShardEval func(shard int, d time.Duration)
}

// foldProgram is a compiled cross-shard combine: keys[s] lays out shard s's
// root state sets as a vector, steps[s] multiplies the running distribution
// with shard s's vector, and accepts flags the final rows containing an
// accepting state. The program depends only on the shards' compiled
// structure — row keys are probability-independent — so it is compiled once
// and every evaluation runs it as pure float arithmetic.
type foldProgram struct {
	keys    [][]int32
	steps   []foldStep
	accepts []bool
	final   int
}

// foldStep combines the running cross-shard distribution with one shard's
// root vector: every edge multiplies running row a with shard row b into
// output row out (rows whose joined state sets coincide share an output row).
type foldStep struct {
	edges []foldEdge
	rows  int
}

type foldEdge struct{ a, b, out int32 }

// shardRoots is one shard's root distribution layout handed to the fold
// compiler: the interned set ids (the vector order) and their member state
// strings.
type shardRoots struct {
	keys []int32
	sets [][]string
}

// compileFold builds the fold program over the given shard root layouts:
// the fold starts from the query's start set (the join identity for CQ
// automata) and absorbs one shard per step, joining state sets through q.
// Because root bags are empty, the state sets carry no live domain
// elements, so joining them through any one CQQuery instance is sound even
// when every shard compiled its own.
func compileFold(q Query, shards []shardRoots) foldProgram {
	prog := foldProgram{
		keys:  make([][]int32, len(shards)),
		steps: make([]foldStep, len(shards)),
	}
	cur := [][]string{append([]string(nil), q.Start()...)}
	for si, sh := range shards {
		prog.keys[si] = sh.keys
		var outSets [][]string
		outIdx := map[string]int32{}
		step := foldStep{}
		for a, A := range cur {
			for b, B := range sh.sets {
				m := detJoin(A, B, q)
				key := strings.Join(m, "\x1f")
				o, ok := outIdx[key]
				if !ok {
					o = int32(len(outSets))
					outIdx[key] = o
					outSets = append(outSets, m)
				}
				step.edges = append(step.edges, foldEdge{a: int32(a), b: int32(b), out: o})
			}
		}
		step.rows = len(outSets)
		prog.steps[si] = step
		cur = outSets
	}
	prog.final = len(cur)
	prog.accepts = make([]bool, len(cur))
	for i, set := range cur {
		prog.accepts[i] = acceptsAny(set, q)
	}
	return prog
}

// newScratch returns per-step output buffers sized for fold, so a
// single-writer caller (ShardCombiner) folds with zero allocations.
func (fp *foldProgram) newScratch() [][]float64 {
	out := make([][]float64, len(fp.steps))
	for i := range fp.steps {
		out[i] = make([]float64, fp.steps[i].rows)
	}
	return out
}

// fold runs the program over the per-shard root vectors and returns the
// accepting and total probability mass. Pure float arithmetic; with a nil
// scratch it allocates its stage buffers (safe for concurrent callers),
// with a newScratch buffer set it is allocation-free (single-writer).
func (fp *foldProgram) fold(vecs, scratch [][]float64) (prob, mass float64) {
	var one [1]float64
	one[0] = 1
	cur := one[:]
	for si := range fp.steps {
		step := &fp.steps[si]
		var next []float64
		if scratch != nil {
			next = scratch[si]
			clear(next)
		} else {
			next = make([]float64, step.rows)
		}
		sv := vecs[si]
		for _, e := range step.edges {
			next[e.out] += cur[e.a] * sv[e.b]
		}
		cur = next
	}
	for i, w := range cur {
		mass += w
		if fp.accepts[i] {
			prob += w
		}
	}
	return prob, mass
}

// PrepareSharded compiles one plan per connected component of the joint
// instance+event graph of c and returns the sharded plan answering q over
// their combination. Options are honoured as in PrepareCQ, except that a
// pinned Joint decomposition is rejected (it describes the union graph, not
// the shards) and EmitLineage is unsupported.
func PrepareSharded(c *pdb.CInstance, q rel.CQ, opts Options) (*ShardedPlan, error) {
	if opts.Joint != nil {
		return nil, fmt.Errorf("core: a sharded plan cannot pin a joint decomposition")
	}
	if opts.EmitLineage {
		return nil, fmt.Errorf("core: sharded plans do not emit lineage")
	}

	di := c.Inst.IndexDomain()
	joint, _, eventVertex := JointEventGraph(c, di)
	part := treedec.Components(joint)

	// Assign every fact to the component of its full scope (arguments plus
	// annotation events — one clique, hence one component). Facts with an
	// empty scope (0-ary, event-free) anchor to no vertex; they share one
	// extra shard of their own.
	scopes := c.Inst.FactScopes(di)
	factComp := make([]int, c.NumFacts())
	floating := false
	for fi, scope := range scopes {
		comp := -1
		if len(scope) > 0 {
			comp = part.Comp[scope[0]]
		} else if vars := logic.Vars(c.Ann[fi]); len(vars) > 0 {
			comp = part.Comp[eventVertex[vars[0]]]
		} else {
			floating = true
		}
		factComp[fi] = comp
	}

	// Renumber the components actually carrying facts densely, in order of
	// their first fact, and build the per-shard sub-instances.
	shardOf := map[int]int{}
	sp := &ShardedPlan{q: q, eventShard: map[logic.Event]int{}, factShard: make([]int, c.NumFacts())}
	for fi := range factComp {
		comp := factComp[fi]
		if comp < 0 {
			continue
		}
		k, ok := shardOf[comp]
		if !ok {
			k = len(sp.subC)
			shardOf[comp] = k
			sp.subC = append(sp.subC, pdb.NewCInstance())
		}
		sp.subC[k].Add(c.Inst.Fact(fi), c.Ann[fi])
		sp.factShard[fi] = k
		for _, e := range logic.Vars(c.Ann[fi]) {
			sp.eventShard[e] = k
		}
	}
	if floating {
		k := len(sp.subC)
		sp.subC = append(sp.subC, pdb.NewCInstance())
		for fi := range factComp {
			if factComp[fi] < 0 {
				sp.subC[k].Add(c.Inst.Fact(fi), c.Ann[fi])
				sp.factShard[fi] = k
			}
		}
	}

	// An instance where no component carries facts (empty, or every fact
	// tombstoned away upstream) compiles to zero shards; the fold below then
	// starts from the query's start set and folds nothing, which is exactly
	// the query-on-the-empty-instance distribution. Width keeps the
	// empty-decomposition convention of the monolithic path (-1).
	sp.width = -1
	for _, sub := range sp.subC {
		pl, err := PrepareCQ(sub, q, opts)
		if err != nil {
			return nil, err
		}
		sp.shards = append(sp.shards, pl)
		if pl.width > sp.width {
			sp.width = pl.width
		}
		sp.nodes += len(pl.nodes)
	}

	sp.combQ = NewCQQuery(q, c.Inst, di)
	roots := make([]shardRoots, len(sp.shards))
	for si, pl := range sp.shards {
		keys := pl.rootKeys()
		sets := make([][]string, len(keys))
		for j, set := range keys {
			sets[j] = append([]string(nil), pl.setStrings(set, nil)...)
		}
		roots[si] = shardRoots{keys: keys, sets: sets}
	}
	sp.prog = compileFold(sp.combQ, roots)
	return sp, nil
}

// PrepareShardedTID compiles a sharded plan for a conjunctive query on a TID
// instance via the Theorem 1 translation, returning the plan together with
// the event probability map of the translation.
func PrepareShardedTID(t *pdb.TID, q rel.CQ, opts Options) (*ShardedPlan, logic.Prob, error) {
	c, p := t.ToCInstance()
	sp, err := PrepareSharded(c, q, opts)
	if err != nil {
		return nil, nil, err
	}
	return sp, p, nil
}

// NumShards returns the number of connected components the plan was split
// into.
func (sp *ShardedPlan) NumShards() int { return len(sp.shards) }

// Width returns the largest joint width across the shards — the structural
// parameter that bounds every shard's table sizes. It never exceeds the
// monolithic plan's width.
func (sp *ShardedPlan) Width() int { return sp.width }

// NumNiceNodes returns the total nice-node count across the shards.
func (sp *ShardedPlan) NumNiceNodes() int { return sp.nodes }

// ShardStats returns the shape statistics of every shard's decomposition.
func (sp *ShardedPlan) ShardStats() []treedec.Stats {
	out := make([]treedec.Stats, len(sp.shards))
	for i, pl := range sp.shards {
		out[i] = pl.Shape()
	}
	return out
}

// ShardOfFact returns the shard holding fact fi of the prepared instance.
func (sp *ShardedPlan) ShardOfFact(fi int) int { return sp.factShard[fi] }

// ShardOfEvent returns the shard whose tables depend on event e, and whether
// the event belongs to the plan at all. It is the routing map of the update
// path: a probability change to e dirties exactly this shard.
func (sp *ShardedPlan) ShardOfEvent(e logic.Event) (int, bool) {
	k, ok := sp.eventShard[e]
	return k, ok
}

// Freeze seals every shard for concurrent use (see (*Plan).Freeze). After
// Freeze, Probability / ProbabilityBatch / Result are safe for any number of
// concurrent callers and fan the per-shard evaluations over a worker pool.
func (sp *ShardedPlan) Freeze() error {
	if sp.frozen {
		return nil
	}
	for i, pl := range sp.shards {
		if err := pl.Freeze(); err != nil {
			return fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	sp.frozen = true
	return nil
}

// Frozen reports whether the sharded plan has been sealed for concurrent
// use.
func (sp *ShardedPlan) Frozen() bool { return sp.frozen }

// SetEvalObserver installs fn to receive the wall time of every per-shard
// DP evaluation this plan runs — the per-shard breakdown behind a request's
// eval stage. fn must be safe for concurrent calls (frozen plans fan shards
// over a pool and serve many requests at once; an atomic histogram is the
// intended sink). Set it once, after Freeze and before the plan starts
// serving; nil disables. The cost when set is two clock reads per shard per
// evaluation.
func (sp *ShardedPlan) SetEvalObserver(fn func(shard int, d time.Duration)) {
	sp.onShardEval = fn
}

// evalShards computes every shard's root probability vector under p,
// fanning the shards over a worker pool when the plan is frozen.
func (sp *ShardedPlan) evalShards(p logic.Prob) ([][]float64, error) {
	vecs := make([][]float64, len(sp.shards))
	errs := make([]error, len(sp.shards))
	eval := func(i int) {
		vecs[i] = make([]float64, len(sp.prog.keys[i]))
		errs[i] = sp.shards[i].rootVec(p, sp.prog.keys[i], vecs[i])
	}
	if sp.onShardEval != nil {
		inner := eval
		eval = func(i int) {
			t0 := time.Now()
			inner(i)
			sp.onShardEval(i, time.Since(t0))
		}
	}
	if sp.frozen && len(sp.shards) > 1 {
		runPool(len(sp.shards), 0, eval)
	} else {
		for i := range sp.shards {
			eval(i)
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	return vecs, nil
}

// Probability evaluates every shard under p and combines the per-shard root
// distributions into the exact query probability, matching what the
// monolithic Prepare path returns. Safe for concurrent calls once the plan
// is frozen (see Freeze).
//
//pdblint:frozenentry
func (sp *ShardedPlan) Probability(p logic.Prob) (float64, error) {
	res, err := sp.Result(p)
	if err != nil {
		return 0, err
	}
	return res.Probability, nil
}

// Result evaluates the sharded plan under p. Width is the largest shard
// width, NiceNodes the total across shards; sharded plans do not emit
// lineage. Safe for concurrent calls once the plan is frozen (see Freeze).
//
//pdblint:frozenentry
func (sp *ShardedPlan) Result(p logic.Prob) (*Result, error) {
	vecs, err := sp.evalShards(p)
	if err != nil {
		return nil, err
	}
	prob, mass := sp.prog.fold(vecs, nil)
	if massDrifted(mass) {
		return nil, errMassDrift(mass)
	}
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	return &Result{Probability: prob, TotalMass: mass, Width: sp.width, NiceNodes: sp.nodes}, nil
}

// ProbabilityBatch evaluates the sharded plan under B = len(ps) probability
// maps: every shard runs its multi-lane dynamic program once, and the fold
// carries one weight lane per assignment. Lane failures are independent, as
// in (*Plan).ProbabilityBatch: bad lanes come back NaN under a LaneErrors
// while healthy lanes keep their values. Safe for concurrent calls once the
// plan is frozen.
//
//pdblint:frozenentry
func (sp *ShardedPlan) ProbabilityBatch(ps []logic.Prob) ([]float64, error) {
	B := len(ps)
	if B == 0 {
		return nil, nil
	}
	clean, lerrs := sanitizeLanes(ps)
	if nan := allLanesNaN(lerrs); nan != nil {
		return nan, LaneErrors(lerrs)
	}

	vecs := make([][]float64, len(sp.shards))
	eval := func(i int) {
		pl := sp.shards[i]
		st := pl.getState()
		pe := pl.fillLaneWeights(st, clean)
		vec := make([]float64, len(sp.prog.keys[i])*B)
		if pl.prog != nil {
			root := pl.runBatchProg(st, pe, B)
			for j, set := range sp.prog.keys[i] {
				if r, ok := pl.prog.rootRow[set]; ok {
					copy(vec[j*B:(j+1)*B], root[int(r)*B:int(r)*B+B])
				}
			}
			st.arena.Put(root)
		} else {
			root := pl.runBatchDP(st, pe, B)
			for j, set := range sp.prog.keys[i] {
				if ri, ok := root.idx[rowKey{set: set}]; ok {
					copy(vec[j*B:(j+1)*B], root.lanesOf(ri, B))
				}
			}
			st.releaseBatch(root)
		}
		pl.putState(st)
		vecs[i] = vec
	}
	if sp.frozen && len(sp.shards) > 1 {
		runPool(len(sp.shards), 0, eval)
	} else {
		for i := range sp.shards {
			eval(i)
		}
	}

	cur := make([]float64, B)
	for l := range cur {
		cur[l] = 1
	}
	rows := 1
	for si := range sp.prog.steps {
		step := &sp.prog.steps[si]
		next := make([]float64, step.rows*B)
		sv := vecs[si]
		for _, e := range step.edges {
			kernel.MulAdd(next[int(e.out)*B:int(e.out)*B+B], cur[int(e.a)*B:int(e.a)*B+B], sv[int(e.b)*B:int(e.b)*B+B])
		}
		cur = next
		rows = step.rows
	}

	out := make([]float64, B)
	totals := make([]float64, B)
	for r := 0; r < rows; r++ {
		row := cur[r*B : r*B+B]
		kernel.AddTo(totals, row)
		if sp.prog.accepts[r] {
			kernel.AddTo(out, row)
		}
	}
	finishLanes(out, totals, &lerrs)
	return out, laneError(lerrs)
}

// ShardCombiner is the commit-time recombination step of sharded live
// stores (internal/incr): it folds the root tables of per-shard
// Materialized views into the combined query probability. The fold program
// is compiled once from the shards' (probability-independent) root row
// structure and rerun as pure float arithmetic on every call, so a commit
// that dirtied one shard pays only a few multiplies per shard to refresh
// the combined answer; the combiner recompiles itself automatically when a
// shard's plan structure changes (StageAttach bumps the generation).
//
// Every view must be a Materialized of a shard plan compiled for the same
// conjunctive query; q supplies the (instance-independent) join of root
// state sets, e.g. a CQQuery of that query over any instance. A
// ShardCombiner is single-writer, like the Materialized views it reads: the
// caller serializes, as incr.Store does under its write lock.
type ShardCombiner struct {
	q       Query
	ms      []*Materialized
	gens    []uint64  // structure generations: a mismatch forces a recompile
	seen    []uint64  // commit generations: a match skips re-extraction
	extract [][]int32 // per shard: root-table row index of each fold key
	prog    foldProgram
	vecs    [][]float64
	scratch [][]float64
}

// NewShardCombiner compiles the fold over the given shard views. Every view
// must have been committed at least once (Materialize does this).
func NewShardCombiner(q Query, ms []*Materialized) *ShardCombiner {
	sc := &ShardCombiner{q: q, ms: ms}
	sc.compile()
	return sc
}

func (sc *ShardCombiner) compile() {
	sc.gens = make([]uint64, len(sc.ms))
	sc.seen = make([]uint64, len(sc.ms))
	sc.vecs = make([][]float64, len(sc.ms))
	sc.extract = make([][]int32, len(sc.ms))
	roots := make([]shardRoots, len(sc.ms))
	var buf []string
	for i, m := range sc.ms {
		sc.gens[i] = m.structGen
		layout := m.layouts[m.pl.root]
		keys := make([]int32, 0, len(layout))
		rowOf := make(map[int32]int32, len(layout))
		for j, k := range layout {
			keys = append(keys, k.set)
			rowOf[k.set] = int32(j)
		}
		sortInt32(keys)
		sets := make([][]string, len(keys))
		ext := make([]int32, len(keys))
		for j, set := range keys {
			buf = m.pl.setStrings(set, buf)
			sets[j] = append([]string(nil), buf...)
			ext[j] = rowOf[set]
		}
		roots[i] = shardRoots{keys: keys, sets: sets}
		sc.extract[i] = ext
		sc.vecs[i] = make([]float64, len(keys))
	}
	sc.prog = compileFold(sc.q, roots)
	sc.scratch = sc.prog.newScratch()
}

// Probability extracts the root probabilities of every shard whose tables
// changed since the last call and folds the shards into the combined query
// probability — O(dirty shards) table reads plus a few float operations per
// shard. Call after the shards' Materialized views have committed.
func (sc *ShardCombiner) Probability() (float64, error) {
	for i, m := range sc.ms {
		if m.structGen != sc.gens[i] {
			sc.compile()
			break
		}
	}
	for i, m := range sc.ms {
		if m.commitGen == sc.seen[i] {
			continue // unchanged since the last fold
		}
		sc.seen[i] = m.commitGen
		rootVals := m.vals[m.pl.root]
		vec := sc.vecs[i]
		for j, r := range sc.extract[i] {
			vec[j] = rootVals[r]
		}
	}
	prob, mass := sc.prog.fold(sc.vecs, sc.scratch)
	if massDrifted(mass) {
		return 0, fmt.Errorf("core: combined probability mass %v drifted from 1", mass)
	}
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	return prob, nil
}
