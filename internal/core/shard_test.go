package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
	"repro/internal/treedec"
)

// randomMultiComponent builds a TID of k disjoint components with random
// shapes and probabilities: RST chains of random length, plus occasional
// lone R or T facts (components that can only contribute partial witnesses,
// exercising the cross-shard join).
func randomMultiComponent(k int, r *rand.Rand) *pdb.TID {
	t := pdb.NewTID()
	for j := 0; j < k; j++ {
		pfx := func(i int) string { return fmt.Sprintf("c%dv%d", j, i) }
		switch r.Intn(4) {
		case 0: // a lone R fact
			t.AddFact(0.1+0.8*r.Float64(), "R", pfx(0))
		case 1: // a lone T fact
			t.AddFact(0.1+0.8*r.Float64(), "T", pfx(0))
		default: // a chain of 1-3 links
			n := 1 + r.Intn(3)
			for i := 0; i < n; i++ {
				t.AddFact(0.1+0.8*r.Float64(), "R", pfx(i))
				t.AddFact(0.1+0.8*r.Float64(), "S", pfx(i), pfx(i+1))
				t.AddFact(0.1+0.8*r.Float64(), "T", pfx(i+1))
			}
		}
	}
	return t
}

// TestShardedMatchesMonolithic is the acceptance property of the sharded
// layer: on randomized multi-component instances, ShardedPlan agrees with
// the monolithic Prepare path to 1e-12 — for the connected hard query, and
// for a disconnected query whose matches span components (where a naive
// per-shard product would be wrong). Small instances are additionally
// cross-checked against world enumeration.
func TestShardedMatchesMonolithic(t *testing.T) {
	queries := []rel.CQ{
		rel.HardQuery(),
		rel.NewCQ(rel.NewAtom("R", rel.V("x")), rel.NewAtom("T", rel.V("y"))),
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		k := 1 + r.Intn(5)
		tid := randomMultiComponent(k, r)
		for qi, q := range queries {
			ctx := fmt.Sprintf("trial %d q%d (%d comps, %d facts)", trial, qi, k, tid.NumFacts())
			sp, p, err := PrepareShardedTID(tid, q, Options{})
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			pl, _, err := PrepareTID(tid, q, Options{})
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			want, err := pl.Probability(p)
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			got, err := sp.Probability(p)
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("%s: sharded %v, monolithic %v (|Δ|=%.3g)", ctx, got, want, math.Abs(got-want))
			}
			if sp.NumShards() != k {
				t.Fatalf("%s: %d shards, want %d", ctx, sp.NumShards(), k)
			}
			if sp.Width() > pl.Width() {
				t.Errorf("%s: sharded width %d exceeds monolithic %d", ctx, sp.Width(), pl.Width())
			}
			if tid.NumFacts() <= 10 {
				enum := tid.QueryProbabilityEnumeration(q)
				if math.Abs(got-enum) > 1e-9 {
					t.Fatalf("%s: sharded %v, enumeration %v", ctx, got, enum)
				}
			}

			// The batch path: lanes perturb every event independently and
			// must match the monolithic batch lane for lane.
			ps := make([]logic.Prob, 5)
			for l := range ps {
				m := make(logic.Prob, len(p))
				for e := range p {
					m[e] = math.Mod(p.P(e)+0.13*float64(l+1), 1)
				}
				ps[l] = m
			}
			wantB, err := pl.ProbabilityBatch(ps)
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			gotB, err := sp.ProbabilityBatch(ps)
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			for l := range ps {
				if math.Abs(gotB[l]-wantB[l]) > 1e-12 {
					t.Fatalf("%s lane %d: sharded %v, monolithic %v", ctx, l, gotB[l], wantB[l])
				}
			}
		}
	}
}

// TestShardedRouting checks the fact/event → shard maps that the update
// path routes through.
func TestShardedRouting(t *testing.T) {
	tid := gen.RSTChains(3, 2, 0.5)
	sp, _, err := PrepareShardedTID(tid, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumShards() != 3 {
		t.Fatalf("%d shards, want 3", sp.NumShards())
	}
	for fi := 0; fi < tid.NumFacts(); fi++ {
		k, ok := sp.ShardOfEvent(tid.EventOf(fi))
		if !ok {
			t.Fatalf("event of fact %d not mapped", fi)
		}
		if k != sp.ShardOfFact(fi) {
			t.Fatalf("fact %d in shard %d but its event in shard %d", fi, sp.ShardOfFact(fi), k)
		}
	}
	if _, ok := sp.ShardOfEvent("nosuch"); ok {
		t.Error("unknown event mapped to a shard")
	}
	if got := len(sp.ShardStats()); got != 3 {
		t.Fatalf("ShardStats has %d entries", got)
	}
}

// TestShardedFrozenConcurrent hammers a frozen sharded plan from many
// goroutines with mixed Probability and ProbabilityBatch calls; run with
// -race in CI.
func TestShardedFrozenConcurrent(t *testing.T) {
	tid := gen.RSTChains(4, 10, 0.5)
	sp, p, err := PrepareShardedTID(tid, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sp.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Freeze(); err != nil {
		t.Fatal(err)
	}
	if !sp.Frozen() {
		t.Fatal("plan not frozen")
	}
	ps := []logic.Prob{p, p}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := sp.Probability(p)
				if err != nil || math.Abs(got-want) > 1e-12 {
					t.Errorf("concurrent Probability = %v, %v", got, err)
					return
				}
				outs, err := sp.ProbabilityBatch(ps)
				if err != nil || math.Abs(outs[0]-want) > 1e-12 || math.Abs(outs[1]-want) > 1e-12 {
					t.Errorf("concurrent batch = %v, %v", outs, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestShardedLaneErrors checks that a bad lane fails alone on the sharded
// batch path, mirroring (*Plan).ProbabilityBatch.
func TestShardedLaneErrors(t *testing.T) {
	tid := gen.RSTChains(2, 3, 0.5)
	sp, p, err := PrepareShardedTID(tid, rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sp.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	bad := logic.Prob{tid.EventOf(0): math.NaN()}
	out, err := sp.ProbabilityBatch([]logic.Prob{p, bad, p})
	le, ok := err.(LaneErrors)
	if !ok {
		t.Fatalf("error %v (%T), want LaneErrors", err, err)
	}
	if le[0] != nil || le[1] == nil || le[2] != nil {
		t.Fatalf("lane errors %v, want only lane 1", []error(le))
	}
	if !math.IsNaN(out[1]) {
		t.Errorf("bad lane output %v, want NaN", out[1])
	}
	for _, l := range []int{0, 2} {
		if math.Abs(out[l]-want) > 1e-12 {
			t.Errorf("healthy lane %d poisoned: %v vs %v", l, out[l], want)
		}
	}
}

// TestShardedOptionValidation: sharded plans reject pinned decompositions
// and lineage emission.
func TestShardedOptionValidation(t *testing.T) {
	tid := gen.RSTChain(2, 0.5)
	c, _ := tid.ToCInstance()
	if _, _, err := PrepareShardedTID(tid, rel.HardQuery(), Options{EmitLineage: true}); err == nil {
		t.Error("EmitLineage accepted")
	}
	joint, _, _ := JointEventGraph(c, c.Inst.IndexDomain())
	d := treedec.Decompose(joint, treedec.MinFill)
	if _, err := PrepareSharded(c, rel.HardQuery(), Options{Joint: d}); err == nil {
		t.Error("pinned joint decomposition accepted")
	}
}

// TestShardedEmptyInstance: a sharded plan over no facts answers 0 for any
// satisfiable CQ with atoms, with mass intact.
func TestShardedEmptyInstance(t *testing.T) {
	sp, err := PrepareSharded(pdb.NewCInstance(), rel.HardQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumShards() != 0 {
		t.Fatalf("%d shards, want 0", sp.NumShards())
	}
	res, err := sp.Result(logic.Prob{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probability != 0 {
		t.Errorf("P(q) over the empty instance = %v", res.Probability)
	}
}

// TestShardedDegenerateMatchesMonolithic is the regression property for
// instances where no component carries facts (empty, or nothing but
// zero-weight tombstones): the sharded fold must land on the exact
// query-on-empty-instance probability the monolithic Prepare computes — 1
// for a trivially-true query, 0 for a CQ with atoms — through Probability,
// Result, the batch path and a frozen plan alike, with matching metadata.
func TestShardedDegenerateMatchesMonolithic(t *testing.T) {
	trivial := rel.NewCQ() // zero atoms: holds on every world
	type tc struct {
		name  string
		build func() (*pdb.CInstance, logic.Prob)
	}
	cases := []tc{
		{"empty", func() (*pdb.CInstance, logic.Prob) {
			return pdb.NewCInstance(), logic.Prob{}
		}},
		{"all-zero-weights", func() (*pdb.CInstance, logic.Prob) {
			tid := pdb.NewTID()
			tid.AddFact(0, "R", "a")
			tid.AddFact(0, "S", "a", "b")
			tid.AddFact(0, "T", "b")
			c, p := tid.ToCInstance()
			return c, p
		}},
		{"floating-only", func() (*pdb.CInstance, logic.Prob) {
			c := pdb.NewCInstance()
			c.AddFact(logic.False, "Z") // 0-ary, never present
			return c, logic.Prob{}
		}},
	}
	for _, c := range cases {
		for qi, q := range []rel.CQ{rel.HardQuery(), trivial, rel.NewCQ(rel.NewAtom("Z"))} {
			ctx := fmt.Sprintf("%s q%d", c.name, qi)
			inst, p := c.build()
			pl, err := PrepareCQ(inst, q, Options{})
			if err != nil {
				t.Fatalf("%s: monolithic: %v", ctx, err)
			}
			want, err := pl.Result(p)
			if err != nil {
				t.Fatalf("%s: monolithic: %v", ctx, err)
			}
			sp, err := PrepareSharded(inst, q, Options{})
			if err != nil {
				t.Fatalf("%s: sharded: %v", ctx, err)
			}
			got, err := sp.Result(p)
			if err != nil {
				t.Fatalf("%s: sharded: %v", ctx, err)
			}
			if math.Abs(got.Probability-want.Probability) > 1e-12 {
				t.Fatalf("%s: sharded %v, monolithic %v", ctx, got.Probability, want.Probability)
			}
			if math.Abs(got.TotalMass-1) > 1e-6 {
				t.Fatalf("%s: mass %v drifted", ctx, got.TotalMass)
			}
			if sp.NumShards() == 0 && sp.Width() != pl.Width() {
				t.Errorf("%s: zero-shard width %d, monolithic %d", ctx, sp.Width(), pl.Width())
			}
			outs, err := sp.ProbabilityBatch([]logic.Prob{p, p})
			if err != nil {
				t.Fatalf("%s: batch: %v", ctx, err)
			}
			for l, o := range outs {
				if math.Abs(o-want.Probability) > 1e-12 {
					t.Fatalf("%s: batch lane %d = %v, want %v", ctx, l, o, want.Probability)
				}
			}
			if err := sp.Freeze(); err != nil {
				t.Fatalf("%s: freeze: %v", ctx, err)
			}
			pr, err := sp.Probability(p)
			if err != nil || math.Abs(pr-want.Probability) > 1e-12 {
				t.Fatalf("%s: frozen eval %v, %v", ctx, pr, err)
			}
		}
	}
}

// TestShardedTombstonedToEmpty drives an instance to the all-tombstone state
// through the live store path (every fact weight dropped to zero one by one)
// and checks sharded vs monolithic agreement at every step, including the
// final facts-but-no-mass state.
func TestShardedTombstonedToEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		tid := randomMultiComponent(1+r.Intn(4), r)
		q := rel.HardQuery()
		order := r.Perm(tid.NumFacts())
		for _, fi := range order {
			tid.Probs[fi] = 0
			sp, p, err := PrepareShardedTID(tid, q, Options{})
			if err != nil {
				t.Fatalf("trial %d: sharded: %v", trial, err)
			}
			pl, _, err := PrepareTID(tid, q, Options{})
			if err != nil {
				t.Fatalf("trial %d: monolithic: %v", trial, err)
			}
			want, err := pl.Probability(p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sp.Probability(p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d after zeroing %d: sharded %v, monolithic %v", trial, fi, got, want)
			}
		}
	}
}
