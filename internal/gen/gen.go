// Package gen provides deterministic (seeded) workload generators for the
// experiments: bounded-treewidth TID instances (chains, grids, partial
// k-trees), the bipartite hard-query instances of the intro's #P-hardness
// discussion, PrXML documents (local and event-annotated with planted scope
// bounds), Wikidata-like documents, and labeled partial orders (interleaved
// logs, random DAGs, series-parallel structures).
//
// These stand in for the paper's motivating data sources (Wikidata dumps,
// crowd answers, machine logs), which are not available offline; the
// generators control exactly the structural parameters — treewidth, scope
// bound, poset shape — that the paper's tractability results depend on.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/porder"
	"repro/internal/prxml"
	"repro/internal/treedec"
)

func elem(i int) string { return fmt.Sprintf("v%d", i) }

// RSTChain builds the TID instance for the intro's query
// ∃xy R(x) S(x,y) T(y) over an n-element chain: R(v_i), S(v_i, v_{i+1}),
// T(v_{i+1}) with independent probability p each. Treewidth 1: the
// tractable arm of experiment E1/E5.
func RSTChain(n int, p float64) *pdb.TID {
	t := pdb.NewTID()
	for i := 0; i < n; i++ {
		t.AddFact(p, "R", elem(i))
		t.AddFact(p, "S", elem(i), elem(i+1))
		t.AddFact(p, "T", elem(i+1))
	}
	return t
}

// RSTChains builds the TID instance of k disjoint RSTChain copies of n
// elements each, over pairwise-disjoint constants ("g<j>v<i>"). The
// co-occurrence graph has exactly k connected components, making it the
// canonical workload of the sharded plan layer: per-shard widths stay 1, and
// an update to one chain leaves the other k-1 shards untouched.
func RSTChains(k, n int, p float64) *pdb.TID {
	t := pdb.NewTID()
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			a, b := fmt.Sprintf("g%dv%d", j, i), fmt.Sprintf("g%dv%d", j, i+1)
			t.AddFact(p, "R", a)
			t.AddFact(p, "S", a, b)
			t.AddFact(p, "T", b)
		}
	}
	return t
}

// RSTBipartite builds the TID instance for the same query over a complete
// bipartite S relation between nl left and nr right elements: the
// high-treewidth shape behind the #P-hardness reduction (the hard arm of
// experiment E5).
func RSTBipartite(nl, nr int, p float64) *pdb.TID {
	t := pdb.NewTID()
	for i := 0; i < nl; i++ {
		t.AddFact(p, "R", fmt.Sprintf("l%d", i))
	}
	for j := 0; j < nr; j++ {
		t.AddFact(p, "T", fmt.Sprintf("r%d", j))
	}
	for i := 0; i < nl; i++ {
		for j := 0; j < nr; j++ {
			t.AddFact(p, "S", fmt.Sprintf("l%d", i), fmt.Sprintf("r%d", j))
		}
	}
	return t
}

// EdgeChain builds an n-edge path TID of E facts (for reachability).
func EdgeChain(n int, p float64) *pdb.TID {
	t := pdb.NewTID()
	for i := 0; i < n; i++ {
		t.AddFact(p, "E", elem(i), elem(i+1))
	}
	return t
}

// PartialKTree returns a random connected partial k-tree on n vertices: a
// k-tree built by attaching each new vertex to a random existing k-clique,
// with each non-backbone edge kept with probability keepEdge. Its treewidth
// is at most k by construction. The second return value is a tree
// decomposition witnessing width ≤ k (the planted decomposition), so
// benchmarks can skip the heuristic.
func PartialKTree(n, k int, keepEdge float64, r *rand.Rand) (*treedec.Graph, *treedec.Decomposition) {
	if n < k+1 {
		n = k + 1
	}
	g := treedec.NewGraph(n)
	// Seed clique.
	var cliques [][]int
	seed := make([]int, k+1)
	for i := range seed {
		seed[i] = i
	}
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			g.AddEdge(i, j)
		}
	}
	// Bags of the planted decomposition; bag 0 is the seed clique.
	bags := [][]int{append([]int(nil), seed...)}
	parent := []int{-1}
	// All k-subsets of the seed clique are attachable.
	subsets := kSubsets(seed, k)
	for _, s := range subsets {
		cliques = append(cliques, s)
	}
	cliqueBag := make([]int, len(cliques)) // bag index covering each clique
	for v := k + 1; v < n; v++ {
		ci := r.Intn(len(cliques))
		base := cliques[ci]
		for _, u := range base {
			if r.Float64() < keepEdge {
				g.AddEdge(v, u)
			}
		}
		// Planted bag: {v} ∪ base, child of the bag covering base.
		bag := append([]int{v}, base...)
		bags = append(bags, bag)
		parent = append(parent, cliqueBag[ci])
		newBagIdx := len(bags) - 1
		// New attachable cliques: v with every (k-1)-subset of base.
		for _, s := range kSubsets(base, k-1) {
			cliques = append(cliques, append([]int{v}, s...))
			cliqueBag = append(cliqueBag, newBagIdx)
		}
	}
	d := &treedec.Decomposition{Bags: sortBags(bags), Parent: parent}
	return g, d
}

func kSubsets(set []int, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < len(set); i++ {
			rec(i+1, append(cur, set[i]))
		}
	}
	rec(0, nil)
	return out
}

func sortBags(bags [][]int) [][]int {
	for _, b := range bags {
		for i := 1; i < len(b); i++ {
			for j := i; j > 0 && b[j] < b[j-1]; j-- {
				b[j], b[j-1] = b[j-1], b[j]
			}
		}
	}
	return bags
}

// RSTOverGraph plants the intro's hard query's relations over a graph:
// R(v) and T(v) on every vertex, S(u,v) on every edge, all with probability
// drawn uniformly from [lo, hi]. The instance's treewidth is the graph's.
func RSTOverGraph(g *treedec.Graph, lo, hi float64, r *rand.Rand) *pdb.TID {
	t := pdb.NewTID()
	draw := func() float64 { return lo + (hi-lo)*r.Float64() }
	for v := 0; v < g.N(); v++ {
		t.AddFact(draw(), "R", elem(v))
		t.AddFact(draw(), "T", elem(v))
	}
	for _, e := range g.Edges() {
		t.AddFact(draw(), "S", elem(e[0]), elem(e[1]))
	}
	return t
}

// TIDFromGraph builds a TID of E facts from the edges of a graph, with a
// probability drawn uniformly from [lo, hi] per fact.
func TIDFromGraph(g *treedec.Graph, lo, hi float64, r *rand.Rand) *pdb.TID {
	t := pdb.NewTID()
	for _, e := range g.Edges() {
		t.AddFact(lo+(hi-lo)*r.Float64(), "E", elem(e[0]), elem(e[1]))
	}
	return t
}

// CorrelatedPC builds a pc-instance over a chain where consecutive facts
// share events (blocks of blockSize facts controlled by one event, plus a
// per-fact private event) — bounded-joint-width correlation for E2.
func CorrelatedPC(n, blockSize int, r *rand.Rand) (*pdb.CInstance, logic.Prob) {
	c := pdb.NewCInstance()
	p := logic.Prob{}
	for i := 0; i < n; i++ {
		block := logic.Event(fmt.Sprintf("blk%d", i/blockSize))
		private := logic.Event(fmt.Sprintf("pv%d", i))
		p[block] = 0.5 + r.Float64()/2
		p[private] = r.Float64()
		ann := logic.And(logic.Var(block), logic.Var(private))
		c.AddFact(ann, "E", elem(i), elem(i+1))
	}
	return c, p
}

// LocalDoc builds a PrXML document with ~n nodes using only local
// distribution nodes (ind/mux): the E3 workload. Shape: a spine of depth
// ~n/fanout with ind/mux children.
func LocalDoc(n, fanout int, r *rand.Rand) *prxml.Document {
	labels := []string{"item", "name", "value", "tag"}
	var build func(budget int) *prxml.Node
	build = func(budget int) *prxml.Node {
		label := labels[r.Intn(len(labels))]
		if budget <= 1 {
			return prxml.NewTag(label)
		}
		k := 1 + r.Intn(fanout)
		var children []*prxml.Node
		for i := 0; i < k; i++ {
			children = append(children, build((budget-1)/k))
		}
		switch r.Intn(3) {
		case 0:
			probs := make([]float64, len(children))
			for i := range probs {
				probs[i] = 0.3 + 0.7*r.Float64()
			}
			return prxml.NewTag(label, prxml.NewInd(probs, children...))
		case 1:
			probs := make([]float64, len(children))
			rest := 1.0
			for i := range probs {
				probs[i] = rest / float64(len(probs)+1)
				rest -= probs[i]
			}
			return prxml.NewTag(label, prxml.NewMux(probs, children...))
		default:
			return prxml.NewTag(label, children...)
		}
	}
	return prxml.NewDocument(prxml.NewTag("root", build(n-1)), nil)
}

// ScopedEventDoc builds a PrXML document of `sections` independent
// sections, each owning a pool of `scope` section-local events used by two
// sibling cie groups of `scope` leaves each: every pool event occurs in
// both groups, so it is live exactly across the section subtree and the
// document's maximal scope equals `scope` (while the size grows only
// linearly in sections·scope). Leaf conditions are two-literal conjunctions
// so that match probabilities stay away from 0 and 1. The E4 workload:
// sweep `scope` to watch the exponential-in-scope cost.
func ScopedEventDoc(sections, scope int, r *rand.Rand) *prxml.Document {
	prob := logic.Prob{}
	var secs []*prxml.Node
	for s := 0; s < sections; s++ {
		pool := make([]logic.Event, scope)
		for i := range pool {
			pool[i] = logic.Event(fmt.Sprintf("s%de%d", s, i))
			prob[pool[i]] = 0.2 + 0.3*r.Float64()
		}
		group := func(negate bool) *prxml.Node {
			var leaves []*prxml.Node
			var conds [][]logic.Literal
			for j := 0; j < scope; j++ {
				leaves = append(leaves, prxml.NewTag("entry", prxml.NewTag("payload")))
				cond := []logic.Literal{{Event: pool[j]}}
				if scope > 1 {
					cond = append(cond, logic.Literal{Event: pool[(j+1)%scope], Negated: negate})
				}
				conds = append(conds, cond)
			}
			return prxml.NewCie(conds, leaves...)
		}
		secs = append(secs, prxml.NewTag("section", group(false), group(true)))
	}
	return prxml.NewDocument(prxml.NewTag("root", secs...), prob)
}

// WikidataDoc builds a Wikidata-like document: entities with attribute
// subtrees, per-contributor trust events shared across the facts each
// contributor added (the Figure 1 pattern at scale).
func WikidataDoc(entities, attrsPerEntity, contributors int, r *rand.Rand) *prxml.Document {
	prob := logic.Prob{}
	for u := 0; u < contributors; u++ {
		prob[logic.Event(fmt.Sprintf("user%d", u))] = 0.5 + 0.5*r.Float64()
	}
	attrs := []string{"occupation", "birthplace", "name", "award", "spouse"}
	var ents []*prxml.Node
	for e := 0; e < entities; e++ {
		var children []*prxml.Node
		for a := 0; a < attrsPerEntity; a++ {
			attr := attrs[r.Intn(len(attrs))]
			value := prxml.NewTag(fmt.Sprintf("val%d", r.Intn(50)))
			// Each attribute was contributed by one contributor, or is
			// intrinsically uncertain (ind).
			if r.Intn(2) == 0 {
				u := logic.Event(fmt.Sprintf("user%d", r.Intn(contributors)))
				children = append(children, prxml.NewTag(attr,
					prxml.NewCie([][]logic.Literal{{{Event: u}}}, value)))
			} else {
				children = append(children, prxml.NewTag(attr,
					prxml.NewInd([]float64{0.3 + 0.7*r.Float64()}, value)))
			}
		}
		ents = append(ents, prxml.NewTag(fmt.Sprintf("Q%d", e), children...))
	}
	return prxml.NewDocument(prxml.NewTag("wikidata", ents...), prob)
}

// InterleavedLogs builds the LPO of k merged logs (parallel union of
// chains), each of the given length: the log-merge workload of E6/E7.
func InterleavedLogs(k, length int) *porder.LPO {
	out := porder.NewLPO()
	for m := 0; m < k; m++ {
		prev := -1
		for i := 0; i < length; i++ {
			id := out.Add(porder.Tuple{fmt.Sprintf("m%d", m), fmt.Sprintf("evt%d", i)})
			if prev >= 0 {
				out.Order(prev, id)
			}
			prev = id
		}
	}
	return out
}

// RandomDAGPoset builds an n-element LPO whose order is a random DAG: each
// pair (i, j) with i < j is ordered with probability p.
func RandomDAGPoset(n int, p float64, labels int, r *rand.Rand) *porder.LPO {
	out := porder.NewLPO()
	for i := 0; i < n; i++ {
		out.Add(porder.Tuple{fmt.Sprintf("lab%d", r.Intn(labels))})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				out.Order(i, j)
			}
		}
	}
	return out
}

// RandomSP builds a random series-parallel LPO with n elements.
func RandomSP(n int, r *rand.Rand) *porder.SP {
	if n <= 1 {
		return porder.Elem(porder.Tuple{fmt.Sprintf("e%d", r.Intn(1000))})
	}
	k := 2 + r.Intn(2)
	if k > n {
		k = n
	}
	var parts []*porder.SP
	left := n
	for i := 0; i < k; i++ {
		size := left / (k - i)
		if size < 1 {
			size = 1
		}
		parts = append(parts, RandomSP(size, r))
		left -= size
	}
	if r.Intn(2) == 0 {
		return porder.Series(parts...)
	}
	return porder.Parallel(parts...)
}
