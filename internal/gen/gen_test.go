package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rel"
	"repro/internal/treedec"
)

func TestRSTChainShape(t *testing.T) {
	tid := RSTChain(10, 0.5)
	if tid.NumFacts() != 30 {
		t.Errorf("facts = %d, want 30", tid.NumFacts())
	}
	if w := tid.Treewidth(); w != 1 {
		t.Errorf("treewidth = %d, want 1", w)
	}
	if !rel.HardQuery().Holds(tid.Inst) {
		t.Error("hard query must hold on the full instance")
	}
}

func TestRSTBipartiteHighTreewidth(t *testing.T) {
	tid := RSTBipartite(5, 5, 0.5)
	if w := tid.Treewidth(); w < 4 {
		t.Errorf("bipartite treewidth = %d, want >= 4", w)
	}
}

func TestPropertyPartialKTreePlantedDecompositionValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(3)
		n := k + 2 + r.Intn(30)
		g, d := PartialKTree(n, k, 0.3+0.7*r.Float64(), r)
		if err := d.Validate(g); err != nil {
			t.Logf("seed %d: invalid planted decomposition: %v", seed, err)
			return false
		}
		if d.Width() > k {
			t.Logf("seed %d: planted width %d > k=%d", seed, d.Width(), k)
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPartialKTreeTreewidthBound(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g, _ := PartialKTree(60, 2, 1.0, r)
	if w := treedec.Treewidth(g); w > 2 {
		t.Errorf("heuristic width = %d on a 2-tree", w)
	}
}

func TestCorrelatedPC(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	c, p := CorrelatedPC(12, 3, r)
	if c.NumFacts() != 12 {
		t.Errorf("facts = %d", c.NumFacts())
	}
	// 4 block events + 12 private ones.
	if len(c.Events()) != 16 {
		t.Errorf("events = %d, want 16", len(c.Events()))
	}
	for _, e := range c.Events() {
		if _, ok := p[e]; !ok {
			t.Errorf("event %s has no probability", e)
		}
	}
}

func TestLocalDocValid(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	doc := LocalDoc(200, 3, r)
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if doc.Size() < 50 {
		t.Errorf("doc suspiciously small: %d nodes", doc.Size())
	}
	if doc.MaxScope() != 0 {
		t.Errorf("local doc must have scope 0, got %d", doc.MaxScope())
	}
}

func TestScopedEventDocScopeBounded(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, scope := range []int{1, 2, 4} {
		doc := ScopedEventDoc(6, scope, r)
		if err := doc.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := doc.MaxScope(); got > scope {
			t.Errorf("max scope = %d, want <= %d", got, scope)
		}
	}
}

func TestWikidataDocValid(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	doc := WikidataDoc(20, 4, 5, r)
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Trust events are shared across entities, so scopes can exceed 0 but
	// stay bounded by the contributor count.
	if got := doc.MaxScope(); got > 5 {
		t.Errorf("max scope = %d, want <= contributors", got)
	}
}

func TestInterleavedLogs(t *testing.T) {
	l := InterleavedLogs(3, 4)
	if l.N() != 12 {
		t.Errorf("N = %d", l.N())
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Within a log: ordered; across logs: not.
	if !l.Less(0, 3) {
		t.Error("within-log order missing")
	}
	if l.Comparable(0, 4) {
		t.Error("cross-log order must be absent")
	}
}

func TestRandomDAGPosetAcyclic(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		l := RandomDAGPoset(10, r.Float64(), 3, r)
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomSPSize(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 5, 20, 100} {
		sp := RandomSP(n, r)
		if sp.Size() != n {
			t.Errorf("size = %d, want %d", sp.Size(), n)
		}
		if sp.CountLinearExtensions().Sign() <= 0 {
			t.Error("count must be positive")
		}
	}
}

func TestEdgeChain(t *testing.T) {
	tid := EdgeChain(5, 0.9)
	if tid.NumFacts() != 5 {
		t.Errorf("facts = %d", tid.NumFacts())
	}
	if w := tid.Treewidth(); w != 1 {
		t.Errorf("treewidth = %d", w)
	}
}

func TestTIDFromGraph(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	g, _ := PartialKTree(20, 2, 1, r)
	tid := TIDFromGraph(g, 0.4, 0.9, r)
	if tid.NumFacts() != g.NumEdges() {
		t.Errorf("facts = %d, edges = %d", tid.NumFacts(), g.NumEdges())
	}
	for _, p := range tid.Probs {
		if p < 0.4 || p > 0.9 {
			t.Errorf("probability %v outside [0.4, 0.9]", p)
		}
	}
}
