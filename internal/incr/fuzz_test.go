package incr

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rel"
)

// FuzzIncrementalUpdates interprets the fuzz input as a sequence of
// SetProb / Insert / Delete / ApplyBatch operations on a small sharded chain
// store and asserts, after every commit, that each live view equals the full
// re-Prepare oracle to 1e-12 — including after tombstones, revivals,
// singleton-shard opens, component merges, fallback re-shards and net-zero
// churn batches that the delta pass short-circuits. Three bytes drive one
// operation: opcode, argument, probability.
func FuzzIncrementalUpdates(f *testing.F) {
	f.Add([]byte{0, 3, 128, 2, 1, 200, 4, 5, 0, 3, 9, 64})
	f.Add([]byte{2, 0, 255, 2, 0, 10, 5, 0, 77, 1, 2, 30})
	f.Add([]byte{6, 1, 50, 6, 2, 60, 0, 0, 0, 4, 1, 1})
	f.Add([]byte{7, 2, 90, 2, 1, 40, 7, 2, 10, 2, 3, 200})
	f.Add([]byte{9, 2, 100, 0, 1, 30, 9, 0, 5, 6, 4, 90})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewStore(gen.RSTChain(3, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		v1, err := s.RegisterView(rel.HardQuery(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		v2, err := s.RegisterView(rel.NewCQ(rel.NewAtom("R", rel.V("x"))), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		v3, err := s.RegisterView(rel.NewCQ(rel.NewAtom("T", rel.V("x"))), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		views := []*View{v1, v2, v3}

		step := func(op, arg byte, pr float64) {
			switch op % 10 {
			case 0: // probability tweak
				id := int(arg) % s.Len()
				if s.Live(id) {
					if err := s.SetProb(id, pr); err != nil {
						t.Fatal(err)
					}
				}
			case 1: // insert an S edge between adjacent chain elements
				i := int(arg) % 3
				f := rel.NewFact("S", fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1))
				if _, err := s.Insert(f, pr); err != nil {
					t.Fatal(err)
				}
			case 2: // fresh constant (opens a singleton shard) or a link onto
				// the main component (merging shards: the re-shard path)
				var f rel.Fact
				if arg%2 == 0 {
					f = rel.NewFact("R", fmt.Sprintf("w%d", int(arg)%3))
				} else {
					f = rel.NewFact("S", fmt.Sprintf("w%d", int(arg)%3), fmt.Sprintf("v%d", int(arg)%4))
				}
				if _, err := s.Insert(f, pr); err != nil {
					t.Fatal(err)
				}
			case 3: // unary fact on an existing element
				f := rel.NewFact("T", fmt.Sprintf("v%d", int(arg)%4))
				if _, err := s.Insert(f, pr); err != nil {
					t.Fatal(err)
				}
			case 4: // delete
				id := int(arg) % s.Len()
				if s.Live(id) {
					if err := s.Delete(id); err != nil {
						t.Fatal(err)
					}
				}
			case 5: // revive / re-weight a known fact
				id := int(arg) % s.Len()
				fact, err := s.Fact(id)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Insert(fact, pr); err != nil {
					t.Fatal(err)
				}
			case 6: // a small batch mixing set, insert and delete
				us := []Update{{Op: OpInsert, Fact: rel.NewFact("T", fmt.Sprintf("v%d", int(arg)%4)), P: pr}}
				if id := int(arg+1) % s.Len(); s.Live(id) {
					us = append(us, Update{Op: OpSet, ID: id, P: 1 - pr})
				}
				if id := int(arg+2) % s.Len(); s.Live(id) {
					us = append(us, Update{Op: OpDelete, ID: id})
				}
				if err := s.ApplyBatch(us); err != nil {
					t.Fatal(err)
				}
			case 7: // same-key churn: delete+insert (or insert+delete) of one
				// fact inside a single batch
				id := int(arg) % s.Len()
				fact, err := s.Fact(id)
				if err != nil {
					t.Fatal(err)
				}
				var us []Update
				if s.Live(id) && arg%2 == 0 {
					us = []Update{{Op: OpDelete, ID: id}, {Op: OpInsert, Fact: fact, P: pr}}
				} else {
					us = []Update{{Op: OpInsert, Fact: fact, P: pr}, {Op: OpDelete, ID: id}}
				}
				if err := s.ApplyBatch(us); err != nil {
					t.Fatal(err)
				}
			case 8: // multi-spine batch: re-weight several facts in one commit,
				// so every view's dirty shards recompute in the single
				// shard-major sweep of commitLocked
				var us []Update
				for d := 0; d < 3; d++ {
					id := int(arg+byte(d)) % s.Len()
					if cur, err := s.Prob(id); err == nil && s.Live(id) && cur != pr {
						us = append(us, Update{Op: OpSet, ID: id, P: pr})
					}
				}
				before := s.Stats().NodesRecomputed
				if err := s.ApplyBatch(us); err != nil {
					t.Fatal(err)
				}
				if len(us) > 0 && s.Stats().NodesRecomputed == before && s.Stats().Rebuilds == 0 {
					t.Fatalf("batched set of %d facts recomputed no node tables", len(us))
				}
			case 9: // net-zero churn: tombstone + revive at the identical weight
				// in one batch — the delta pass recomputes the staged leaves,
				// finds every table unchanged, and short-circuits, so the view
				// probabilities must come out bit-identical, not just within
				// tolerance
				id := int(arg) % s.Len()
				if !s.Live(id) {
					return
				}
				cur, err := s.Prob(id)
				if err != nil {
					t.Fatal(err)
				}
				fact, err := s.Fact(id)
				if err != nil {
					t.Fatal(err)
				}
				before := make([]float64, len(views))
				for i, v := range views {
					before[i] = v.Probability()
				}
				if err := s.ApplyBatch([]Update{
					{Op: OpDelete, ID: id},
					{Op: OpInsert, Fact: fact, P: cur},
				}); err != nil {
					t.Fatal(err)
				}
				for i, v := range views {
					if got := v.Probability(); got != before[i] {
						t.Fatalf("net-zero churn moved view %d: %v -> %v", i, before[i], got)
					}
				}
			}
		}

		ops := 0
		for i := 0; i+2 < len(data) && ops < 20; i += 3 {
			step(data[i], data[i+1], float64(data[i+2])/255)
			ops++
			for vi, v := range views {
				want, err := s.Oracle(v.Query())
				if err != nil {
					t.Fatal(err)
				}
				if got := v.Probability(); math.Abs(got-want) > 1e-12 {
					t.Fatalf("op %d view %d: incremental %v, oracle %v", ops, vi, got, want)
				}
			}
		}
	})
}
