package incr

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/rel"
)

// TestCommitHookSeesAppliedPrefix pins the partial-batch durability
// contract: when ApplyBatchN stops at an invalid update, the hook receives
// exactly the staged prefix — never the rejected suffix — at the sequence
// the partial commit got.
func TestCommitHookSeesAppliedPrefix(t *testing.T) {
	s, _ := chainStore(t, 6)
	type call struct {
		seq uint64
		us  []Update
	}
	var calls []call
	s.SetCommitHook(func(seq uint64, us []Update) func() error {
		cp := make([]Update, len(us))
		copy(cp, us)
		calls = append(calls, call{seq, cp})
		return nil
	})

	applied, seq, err := s.ApplyBatchN([]Update{
		{Op: OpSet, ID: 0, P: 0.4},
		{Op: OpSet, ID: 1, P: 0.6},
		{Op: OpSet, ID: 9999, P: 0.5}, // invalid: stops the batch
		{Op: OpSet, ID: 2, P: 0.8},
	})
	if err == nil {
		t.Fatal("batch with an invalid update committed fully")
	}
	if applied != 2 {
		t.Fatalf("applied %d, want 2", applied)
	}
	if len(calls) != 1 {
		t.Fatalf("hook called %d times, want 1", len(calls))
	}
	if calls[0].seq != seq {
		t.Fatalf("hook saw seq %d, commit reported %d", calls[0].seq, seq)
	}
	if len(calls[0].us) != 2 {
		t.Fatalf("hook saw %d updates, want the 2 applied", len(calls[0].us))
	}
	if calls[0].us[0].ID != 0 || calls[0].us[1].ID != 1 {
		t.Fatalf("hook saw wrong prefix: %+v", calls[0].us)
	}

	// A fully valid commit reaches the hook whole.
	if err := s.SetProb(3, 0.9); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || len(calls[1].us) != 1 || calls[1].us[0].ID != 3 {
		t.Fatalf("hook calls after SetProb: %+v", calls)
	}
}

// TestCommitHookWaitErrorBreaksStore: a failed durability barrier must fail
// the mutating call and leave the store refusing all further work — its
// in-memory state is ahead of the durable history.
func TestCommitHookWaitErrorBreaksStore(t *testing.T) {
	s, _ := chainStore(t, 6)
	sentinel := errors.New("disk on fire")
	fail := false
	s.SetCommitHook(func(seq uint64, us []Update) func() error {
		if fail {
			return func() error { return sentinel }
		}
		return nil
	})
	if err := s.SetProb(0, 0.5); err != nil {
		t.Fatalf("healthy hook: %v", err)
	}
	fail = true
	if err := s.SetProb(0, 0.6); !errors.Is(err, sentinel) {
		t.Fatalf("failing barrier returned %v, want the sentinel", err)
	}
	fail = false
	if err := s.SetProb(0, 0.7); err == nil {
		t.Fatal("store accepted a commit after a durability failure")
	}
	if _, err := s.Insert(rel.NewFact("R", "zz"), 0.5); err == nil {
		t.Fatal("broken store accepted an insert")
	}
	if _, _, err := s.ApplyBatchN([]Update{{Op: OpSet, ID: 0, P: 0.1}}); err == nil {
		t.Fatal("broken store accepted a batch")
	}
}

// TestStateRoundtrip: NewStoreFromState(State()) reproduces the store
// exactly — same sequence, same fact ids including tombstone positions,
// same weights — and its views agree with the original to 1e-12.
func TestStateRoundtrip(t *testing.T) {
	s, views := chainStore(t, 8)
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		switch r.Intn(4) {
		case 0, 1:
			id := r.Intn(s.Len())
			if s.Live(id) {
				if err := s.SetProb(id, float64(r.Intn(11))/10); err != nil {
					t.Fatal(err)
				}
			}
		case 2:
			if _, err := s.Insert(rel.NewFact("R", fmt.Sprintf("n%d", i)), 0.3); err != nil {
				t.Fatal(err)
			}
		default:
			id := r.Intn(s.Len())
			if s.Live(id) && s.NumLive() > 2 {
				if err := s.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	st := s.State()
	s2, err := NewStoreFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Seq() != s.Seq() {
		t.Fatalf("rebuilt seq %d, want %d", s2.Seq(), s.Seq())
	}
	if s2.Len() != s.Len() || s2.NumLive() != s.NumLive() {
		t.Fatalf("rebuilt %d slots / %d live, want %d / %d", s2.Len(), s2.NumLive(), s.Len(), s.NumLive())
	}
	for id := 0; id < s.Len(); id++ {
		if s.Live(id) != s2.Live(id) {
			t.Fatalf("fact %d live=%v in rebuild, want %v", id, s2.Live(id), s.Live(id))
		}
		f1, _ := s.Fact(id)
		f2, err := s2.Fact(id)
		if err != nil || f1.Key() != f2.Key() {
			t.Fatalf("fact id %d is %v in rebuild, want %v (%v)", id, f2, f1, err)
		}
		if s.Live(id) {
			p1, _ := s.Prob(id)
			p2, _ := s2.Prob(id)
			if p1 != p2 {
				t.Fatalf("fact %d weight %v in rebuild, want %v", id, p2, p1)
			}
		}
	}
	for _, v := range views {
		v2, err := s2.RegisterView(v.Query(), core.Options{})
		if err != nil {
			t.Fatalf("register %v on rebuild: %v", v.Query(), err)
		}
		if d := math.Abs(v.Probability() - v2.Probability()); d > tol {
			t.Fatalf("view %v: rebuild %v, original %v (|Δ|=%.3g)", v.Query(), v2.Probability(), v.Probability(), d)
		}
	}

	// Mutations behave identically post-rebuild: revive a tombstone.
	for id := 0; id < s.Len(); id++ {
		if !s.Live(id) {
			f, _ := s.Fact(id)
			i1, e1 := s.Insert(f, 0.5)
			i2, e2 := s2.Insert(f, 0.5)
			if (e1 == nil) != (e2 == nil) || i1 != i2 {
				t.Fatalf("reviving %v: original (%d, %v), rebuild (%d, %v)", f, i1, e1, i2, e2)
			}
			break
		}
	}
}

// TestNewStoreFromStateValidates rejects malformed states instead of
// building a store that diverges from its log.
func TestNewStoreFromStateValidates(t *testing.T) {
	bad := []State{
		{Facts: []rel.Fact{rel.NewFact("R", "a")}, Probs: []float64{0.5}, Deleted: []bool{false, true}},
		{Facts: []rel.Fact{rel.NewFact("R", "a")}, Probs: nil, Deleted: []bool{false}},
		{Facts: []rel.Fact{rel.NewFact("R", "a")}, Probs: []float64{1.5}, Deleted: []bool{false}},
		{Facts: []rel.Fact{rel.NewFact("R", "a"), rel.NewFact("R", "a")}, Probs: []float64{0.5, 0.5}, Deleted: []bool{false, false}},
	}
	for i, st := range bad {
		if _, err := NewStoreFromState(st); err == nil {
			t.Errorf("bad state %d built a store", i)
		}
	}
}

// TestCommitEmpty advances the sequence with no updates — the replay
// primitive for logged commits whose batch staged nothing.
func TestCommitEmpty(t *testing.T) {
	s, views := chainStore(t, 4)
	var hookSeqs []uint64
	s.SetCommitHook(func(seq uint64, us []Update) func() error {
		if len(us) != 0 {
			t.Errorf("empty commit carried %d updates", len(us))
		}
		hookSeqs = append(hookSeqs, seq)
		return nil
	})
	before := s.Seq()
	if err := s.CommitEmpty(); err != nil {
		t.Fatal(err)
	}
	if s.Seq() != before+1 {
		t.Fatalf("seq %d after empty commit, want %d", s.Seq(), before+1)
	}
	if len(hookSeqs) != 1 || hookSeqs[0] != before+1 {
		t.Fatalf("hook seqs %v", hookSeqs)
	}
	checkViews(t, s, views, "after empty commit")
}
