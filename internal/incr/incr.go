// Package incr maintains live materialized views over prepared query plans:
// the incremental-maintenance layer of the serving stack.
//
// The frozen-plan path of internal/core answers repeated probability requests
// fast, but treats the database as a snapshot — any change to a probability
// or to the fact set throws the plan away and pays a full Prepare plus a full
// dynamic-programming pass. Following the shape of dynamic query evaluation
// (answering queries under updates by maintaining evaluation state), a Store
// keeps the per-node DP tables of each registered view materialized
// (core.Materialized) and maintains them under updates.
//
// The store is sharded by connected component: facts whose constants never
// co-occur live in independent probability spaces, so each component gets
// its own sub-instance, and every view compiles one plan and materializes
// one table set per component (combined at commit time by the compiled fold
// of core.ShardCombiner). Updates route to the single owning shard:
//
//   - SetProb touches one event weight, which is applied at a single forget
//     node of the owning shard's nice decomposition, so only that shard's
//     root-path spine is recomputed: O(depth of the dirty shard) bag tables,
//     not O(instance).
//   - Insert routes to the shard owning the fact's constants: it is absorbed
//     in place when some bag of that shard covers the arguments (treedec
//     attach-point search), and a fact whose constants are all new opens a
//     fresh singleton shard — no other shard is touched either way. Only an
//     insert that spans shards (merging components) or defeats the attach
//     search falls back to one counted re-shard of every view.
//   - Delete tombstones the fact in its shard: the event weight drops to 0,
//     which is exactly the distribution without the fact, at dirty-spine
//     cost. Tombstones are compacted away by the next fallback rebuild.
//   - ApplyBatch stages a whole batch and commits once, so update spines
//     that overlap are recomputed a single time, and a batch containing any
//     non-absorbable insert costs one rebuild total.
//
// Readers (View.Probability, Stats) take a shared lock and may run
// concurrently with each other and between commits. Subscribe delivers the
// refreshed probabilities of every view after each commit; callbacks run
// after the commit's lock is released (so they may call back into the
// store), serialized in commit order.
package incr

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
	"repro/internal/treedec"
)

// Op selects the kind of an Update.
type Op uint8

const (
	// OpSet overwrites the probability of fact ID.
	OpSet Op = iota
	// OpInsert adds Fact with probability P (or revives/overwrites it if the
	// fact is already known).
	OpInsert
	// OpDelete tombstones fact ID.
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpSet:
		return "set"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return "unknown"
}

// Update is one mutation of an update batch.
type Update struct {
	Op   Op
	ID   int      // fact id for OpSet / OpDelete
	Fact rel.Fact // inserted fact for OpInsert
	P    float64  // probability for OpSet / OpInsert
}

// Commit describes one applied commit to subscribers.
type Commit struct {
	// Seq numbers commits from 1, in order.
	Seq uint64
	// Probabilities holds the refreshed query probability of every
	// registered view, in registration order at commit time.
	Probabilities []float64
	// Views identifies the view behind each probability: Probabilities[i]
	// is Views[i]'s refreshed answer. Registration order can shift when
	// views are unregistered, so consumers that outlive a single commit
	// (e.g. network watch streams) should key on the view, not the index.
	Views []*View
	// Changed flags the views this commit actually moved: Changed[i] is
	// false when the delta pass proved Views[i]'s probability identical to
	// the previous commit's (every spine short-circuited before its root, or
	// no shard of the view was touched). Consumers streaming deltas forward
	// only the changed entries; the full Probabilities slice stays available
	// for full-state consumers.
	Changed []bool
	// RowsRecomputed and SpinesShortCircuited are this commit's delta-pass
	// work counters, summed over every (shard, view) table set: rows
	// actually recomputed, and recomputed tables that came out unchanged and
	// cut their spine short.
	RowsRecomputed       uint64
	SpinesShortCircuited uint64
}

// AnyChanged reports whether the commit moved at least one view.
func (c Commit) AnyChanged() bool {
	for _, ch := range c.Changed {
		if ch {
			return true
		}
	}
	return false
}

// CommitHook observes every commit at acknowledgement time: it is invoked
// under the store's write lock with the commit's sequence number and the
// updates that actually landed (for a partial batch, only the applied
// prefix — the rejected suffix never reaches the hook, so a write-ahead log
// records exactly what committed). The hook must be fast and must not call
// back into the store; it typically encodes and enqueues a log record. The
// returned wait function (nil when the hook has nothing to wait for) is
// invoked after the write lock is released and before the mutating call
// returns: the commit is acknowledged to the caller only once wait returns
// nil. A non-nil wait error fails the mutating call and marks the store
// broken — the in-memory state has advanced past what the hook accepted, so
// serving further commits would silently diverge from the durable history.
type CommitHook func(seq uint64, us []Update) (wait func() error)

// subscriber is one Subscribe registration: the callback plus the state that
// makes cancellation a barrier (see Subscribe).
type subscriber struct {
	fn        func(Commit)
	cancelled atomic.Bool
	// delivering holds the id of the goroutine currently running fn, 0 when
	// idle. Deliveries are serialized (notifyMu), so one slot suffices; it
	// lets a cancel from inside the callback itself recognize the
	// re-entrancy and skip waiting for its own return.
	delivering atomic.Int64
}

// notification is one commit queued for subscriber delivery: the commit and
// the subscriber snapshot taken while its lock was still held.
type notification struct {
	subs []*subscriber
	c    Commit
}

// goid returns the current goroutine's id (parsed from the runtime's stack
// header — there is no public accessor). Used only to detect a subscriber
// cancelling itself from inside its own callback.
func goid() int64 {
	var buf [64]byte
	b := buf[:runtime.Stack(buf[:], false)]
	b = b[len("goroutine "):]
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		b = b[:i]
	}
	id, _ := strconv.ParseInt(string(b), 10, 64)
	return id
}

// Stats counts the work the store has done, splitting the incremental paths
// from the re-Prepare fallbacks so the absorption rate is observable.
type Stats struct {
	Commits         uint64 // commits applied (one per mutating call)
	Updates         uint64 // individual updates inside those commits
	SetProbs        uint64
	Inserts         uint64
	Deletes         uint64
	Attached        uint64 // inserts absorbed in place by the owning shard
	NewShards       uint64 // inserts that opened a fresh singleton shard
	Rebuilds        uint64 // full re-shard fallbacks
	NodesRecomputed uint64 // DP tables recomputed incrementally, all views
	// RowsRecomputed counts the table rows those recomputations actually
	// touched (the delta pass recomputes only the rows a change feeds), and
	// SpinesShortCircuited the recomputed tables that came out unchanged and
	// stopped their spine's propagation early.
	RowsRecomputed       uint64
	SpinesShortCircuited uint64
	Tombstones           int // deleted facts still occupying plan events
	Shards               int // current connected-component shards
}

// Store is a mutable tuple-independent probabilistic database serving live
// materialized views, sharded by the connected components of its fact
// co-occurrence graph. Fact ids are stable handles: they survive deletes,
// revivals and the internal rebuilds that compact tombstones away.
type Store struct {
	mu      sync.RWMutex
	facts   []rel.Fact
	probs   []float64
	deleted []bool
	byKey   map[string]int // fact key -> id, live or tombstoned

	shards     []*pdb.CInstance // per-component sub-instances the shard plans are prepared on
	shardOf    []int            // id -> owning shard, -1 when compacted away
	cIdx       []int            // id -> fact index within its shard's instance, -1 when compacted away
	constShard map[string]int   // constant -> owning shard
	pm         logic.Prob       // event probabilities for every event of every shard

	views       []*View
	needRebuild bool // set while staging when some insert cannot be absorbed
	broken      error
	hook        CommitHook
	metrics     *Metrics // nil when the store runs unobserved

	subs      []*subscriber  // live subscriptions
	pending   []notification // commits awaiting subscriber delivery
	notifyMu  sync.Mutex     // serializes deliveries, preserving commit order
	deliverMu sync.Mutex     // guards deliverCond: cancel waits out in-flight callbacks
	deliver   *sync.Cond
	seq       uint64
	stats     Stats
}

// View is a live materialized view: one query kept continuously answered
// over the store's current facts and probabilities, as one plan plus one
// materialized table set per shard.
type View struct {
	store  *Store
	q      rel.CQ
	opts   core.Options
	combQ  core.Query          // instance-independent join/accept oracle for recombination
	comb   *core.ShardCombiner // compiled cross-shard fold over the shard views
	shards []viewShard         // aligned with store.shards
	prob   float64             // combined probability, refreshed at every commit
}

type viewShard struct {
	plan *core.Plan
	mat  *core.Materialized
}

// NewStore builds a store over a snapshot of the TID instance t (later
// changes to t are not observed; the store is the mutable handle from here
// on). Probabilities are validated fact by fact.
func NewStore(t *pdb.TID) (*Store, error) {
	s := &Store{byKey: map[string]int{}}
	s.deliver = sync.NewCond(&s.deliverMu)
	for i := 0; i < t.NumFacts(); i++ {
		f := t.Fact(i)
		if err := pdb.ValidateProb(t.Prob(i)); err != nil {
			return nil, fmt.Errorf("incr: fact %s: %w", f, err)
		}
		if _, dup := s.byKey[f.Key()]; dup {
			return nil, fmt.Errorf("incr: duplicate fact %s", f)
		}
		s.byKey[f.Key()] = len(s.facts)
		s.facts = append(s.facts, f)
		s.probs = append(s.probs, t.Prob(i))
		s.deleted = append(s.deleted, false)
	}
	s.rebuildShards()
	return s, nil
}

// State is the full logical state of a Store: every fact ever issued an id
// (tombstones included, so ids keep their positions), the current
// probabilities, the deleted flags, and the commit sequence. It is what a
// durable snapshot must persist for a later NewStoreFromState to resume the
// exact update history — the live TID of Snapshot is not enough, because it
// drops tombstones and with them the id ↦ fact alignment that logged updates
// reference.
type State struct {
	Facts   []rel.Fact
	Probs   []float64
	Deleted []bool
	Seq     uint64
}

// State returns a deep snapshot of the store's logical state, read in one
// critical section. Derived structures (shards, plans, views, counters) are
// not part of the logical state: they are recomputed from it.
func (s *Store) State() State {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return State{
		Facts:   append([]rel.Fact(nil), s.facts...),
		Probs:   append([]float64(nil), s.probs...),
		Deleted: append([]bool(nil), s.deleted...),
		Seq:     s.seq,
	}
}

// NewStoreFromState rebuilds a store from a State snapshot: fact ids, probs,
// tombstones and the commit sequence resume exactly where the snapshot was
// taken, so a write-ahead log tail recorded after it replays against the
// same ids. Tombstoned slots keep their positions but are compacted out of
// the shard plans (equivalent to a post-crash rebuild; an Insert revives
// them through the usual re-attach path). No views are registered — warm
// restart re-registers them after replay.
func NewStoreFromState(st State) (*Store, error) {
	if len(st.Probs) != len(st.Facts) || len(st.Deleted) != len(st.Facts) {
		return nil, fmt.Errorf("incr: state is inconsistent: %d facts, %d probs, %d deleted flags",
			len(st.Facts), len(st.Probs), len(st.Deleted))
	}
	s := &Store{byKey: map[string]int{}}
	s.deliver = sync.NewCond(&s.deliverMu)
	for i, f := range st.Facts {
		p := st.Probs[i]
		if st.Deleted[i] {
			p = 0 // a tombstone's weight is zero by construction
		} else if err := pdb.ValidateProb(p); err != nil {
			return nil, fmt.Errorf("incr: fact %s: %w", f, err)
		}
		if _, dup := s.byKey[f.Key()]; dup {
			return nil, fmt.Errorf("incr: duplicate fact %s", f)
		}
		s.byKey[f.Key()] = i
		s.facts = append(s.facts, f)
		s.probs = append(s.probs, p)
		s.deleted = append(s.deleted, st.Deleted[i])
	}
	s.seq = st.Seq
	s.rebuildShards()
	return s, nil
}

// SetCommitHook installs (or, with nil, removes) the store's commit hook.
// Install it before the store serves traffic: commits applied earlier were
// never offered to the hook and a log built from later ones alone replays
// against the wrong base state.
func (s *Store) SetCommitHook(h CommitHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// eventOf names the private event of fact id; ids are stable, so the event
// name survives rebuilds (and matches pdb.TID.EventOf for the seed facts).
func (s *Store) eventOf(id int) logic.Event {
	return logic.Event(fmt.Sprintf("f%d", id))
}

// rebuildShards recomputes the connected-component partition of the live
// facts and rebuilds the per-shard instances and probability map, dropping
// tombstones. Two facts share a shard iff they are linked by a chain of
// co-occurring constants; facts with no arguments are their own components.
func (s *Store) rebuildShards() {
	// Union-find over the constants of the live facts (kept map-based and
	// iterative: unlike treedec.Components it needs no materialized graph or
	// dense vertex index, and the flat find loop is safe on arbitrarily long
	// constant chains).
	parent := map[string]string{}
	find := func(x string) string {
		r := x
		for {
			p, ok := parent[r]
			if !ok || p == r {
				break
			}
			r = p
		}
		for x != r { // path compression
			parent[x], x = r, parent[x]
		}
		parent[r] = r
		return r
	}
	for id, f := range s.facts {
		if s.deleted[id] {
			continue
		}
		for _, a := range f.Args[1:] {
			parent[find(a)] = find(f.Args[0])
		}
		if len(f.Args) > 0 {
			find(f.Args[0])
		}
	}

	s.shards = nil
	s.shardOf = make([]int, len(s.facts))
	s.cIdx = make([]int, len(s.facts))
	s.constShard = map[string]int{}
	s.pm = logic.Prob{}
	compShard := map[string]int{}
	for id, f := range s.facts {
		s.shardOf[id], s.cIdx[id] = -1, -1
		if s.deleted[id] {
			continue
		}
		var k int
		if len(f.Args) == 0 {
			k = len(s.shards)
			s.shards = append(s.shards, pdb.NewCInstance())
		} else if kk, ok := compShard[find(f.Args[0])]; ok {
			k = kk
		} else {
			k = len(s.shards)
			compShard[find(f.Args[0])] = k
			s.shards = append(s.shards, pdb.NewCInstance())
		}
		e := s.eventOf(id)
		s.cIdx[id] = s.shards[k].Add(f, logic.Var(e))
		s.shardOf[id] = k
		s.pm[e] = s.probs[id]
		for _, a := range f.Args {
			s.constShard[a] = k
		}
	}
	s.stats.Tombstones = 0
}

// RegisterView compiles one plan per shard for q over the store's current
// instance, materializes their DP tables, and keeps everything maintained
// under every later update. Options are honoured as in core.PrepareCQ,
// except that a pinned Joint decomposition is rejected (the live instance
// outgrows it) and EmitLineage is ignored (live views answer probabilities,
// not lineages).
func (s *Store) RegisterView(q rel.CQ, opts core.Options) (*View, error) {
	if opts.Joint != nil {
		return nil, fmt.Errorf("incr: a live view cannot pin a precomputed decomposition")
	}
	opts.EmitLineage = false
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return nil, s.broken
	}
	empty := rel.NewInstance()
	v := &View{store: s, q: q, opts: opts, combQ: core.NewCQQuery(q, empty, empty.IndexDomain())}
	if err := v.build(); err != nil {
		return nil, err
	}
	s.views = append(s.views, v)
	return v, nil
}

// build (re)compiles the view's shard plans on the store's current shard
// instances, materializes them, and refreshes the combined probability.
// Called under the store's write lock.
func (v *View) build() error {
	v.shards = make([]viewShard, len(v.store.shards))
	for k, c := range v.store.shards {
		pl, err := core.PrepareCQ(c, v.q, v.opts)
		if err != nil {
			return fmt.Errorf("incr: prepare %s shard %d: %w", v.q, k, err)
		}
		mat, err := pl.Materialize(v.store.pm)
		if err != nil {
			return fmt.Errorf("incr: materialize %s shard %d: %w", v.q, k, err)
		}
		v.shards[k] = viewShard{plan: pl, mat: mat}
	}
	v.comb = nil // recombine compiles a fresh fold over the new shard set
	return v.recombine()
}

// mats lists the view's per-shard materialized tables, in shard order.
func (v *View) mats() []*core.Materialized {
	ms := make([]*core.Materialized, len(v.shards))
	for i := range v.shards {
		ms[i] = v.shards[i].mat
	}
	return ms
}

// recombine folds the shard root tables into the view's combined
// probability through the compiled fold. Called under the store's write
// lock, after the dirty shards have committed — never earlier: the combiner
// compiles its fold from the shards' current root tables, which are only
// consistent with their structure generations post-commit (a combiner built
// while another shard held a staged-but-uncommitted attach would memorize
// stale root keys under the new generation and never recover).
func (v *View) recombine() error {
	if v.comb == nil {
		v.comb = core.NewShardCombiner(v.combQ, v.mats())
	}
	p, err := v.comb.Probability()
	if err != nil {
		return fmt.Errorf("incr: combine %s: %w", v.q, err)
	}
	v.prob = p
	return nil
}

// Probability returns the view's current query probability, as of the last
// commit. Safe for any number of concurrent callers, including while other
// goroutines commit.
func (v *View) Probability() float64 {
	p, _ := v.ProbabilitySeq()
	return p
}

// ProbabilitySeq returns the view's current query probability together with
// the commit sequence it reflects, read in one critical section — the form
// for consumers that label answers with their sequence (a query service
// reconciling responses against a commit-ordered watch stream).
func (v *View) ProbabilitySeq() (float64, uint64) {
	v.store.mu.RLock()
	defer v.store.mu.RUnlock()
	return v.prob, v.store.seq
}

// Shape returns the aggregate structural statistics of the view's shard
// plans: total nice nodes, and the maximum width, bag size and depth across
// shards. Depth bounds the number of DP tables one probability update
// recomputes (the dirty shard's spine).
func (v *View) Shape() treedec.Stats {
	v.store.mu.RLock()
	defer v.store.mu.RUnlock()
	agg := treedec.Stats{Width: -1}
	for _, vs := range v.shards {
		sh := vs.plan.Shape()
		agg.Nodes += sh.Nodes
		if sh.Width > agg.Width {
			agg.Width = sh.Width
		}
		if sh.MaxBag > agg.MaxBag {
			agg.MaxBag = sh.MaxBag
		}
		if sh.Depth > agg.Depth {
			agg.Depth = sh.Depth
		}
	}
	return agg
}

// Shards returns the number of shard plans currently serving the view.
func (v *View) Shards() int {
	v.store.mu.RLock()
	defer v.store.mu.RUnlock()
	return len(v.shards)
}

// Query returns the view's conjunctive query.
func (v *View) Query() rel.CQ { return v.q }

// UnregisterView removes a previously registered view: it stops being
// maintained (and stops appearing in commit notifications) from the next
// commit on. Maintenance cost is proportional to the registered views, so
// long-lived servers evicting cold queries should unregister them. A view
// that is not (or no longer) registered is a no-op. The view's last
// Probability stays readable but is frozen at its final commit.
func (s *Store) UnregisterView(v *View) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, other := range s.views {
		if other == v {
			s.views = append(s.views[:i], s.views[i+1:]...)
			return
		}
	}
}

// NumViews returns the number of currently registered views.
func (s *Store) NumViews() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.views)
}

// Seq returns the sequence number of the last applied commit (0 before the
// first commit). Matches the Seq delivered to subscribers.
func (s *Store) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// Snapshot materializes the live facts as a fresh TID instance, returning
// alongside it the store id of every snapshot fact (ids[i] is the store id
// of snapshot fact i) and the commit sequence the snapshot was taken at —
// all read in one critical section, so the caller can cache the snapshot
// keyed by sequence without racing concurrent commits. The snapshot is
// detached: later store commits do not touch it. This is the bridge to the
// frozen-plan machinery of internal/core — a query service prepares a
// ShardedPlan on the snapshot and evaluates request-supplied probability
// assignments against it without holding any store lock.
func (s *Store) Snapshot() (*pdb.TID, []int, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := pdb.NewTID()
	var ids []int
	for id, f := range s.facts {
		if !s.deleted[id] {
			t.Add(f, s.probs[id])
			ids = append(ids, id)
		}
	}
	return t, ids, s.seq
}

// Stats returns a snapshot of the store's work counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.Shards = len(s.shards)
	return st
}

// Len returns the number of fact ids ever issued (live and tombstoned).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.facts)
}

// NumLive returns the number of live (non-tombstoned) facts — what a
// Snapshot would contain, and the right gauge for dashboards (Len never
// decreases because ids are stable).
func (s *Store) NumLive() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, d := range s.deleted {
		if !d {
			n++
		}
	}
	return n
}

// Fact returns the fact with the given id.
func (s *Store) Fact(id int) (rel.Fact, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || id >= len(s.facts) {
		return rel.Fact{}, fmt.Errorf("incr: no fact %d (have %d)", id, len(s.facts))
	}
	return s.facts[id], nil
}

// Prob returns the current probability of fact id (0 for tombstones).
func (s *Store) Prob(id int) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || id >= len(s.facts) {
		return 0, fmt.Errorf("incr: no fact %d (have %d)", id, len(s.facts))
	}
	return s.probs[id], nil
}

// Live reports whether fact id exists and is not tombstoned.
func (s *Store) Live(id int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return id >= 0 && id < len(s.facts) && !s.deleted[id]
}

// IDOf returns the id of the given fact, or -1 when it was never inserted.
func (s *Store) IDOf(f rel.Fact) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id, ok := s.byKey[f.Key()]; ok {
		return id
	}
	return -1
}

// ShardOf returns the shard currently owning fact id, or -1 when the fact is
// unknown or was compacted away. Shard indices are only stable between
// rebuilds; they exist for observability, not as handles.
func (s *Store) ShardOf(id int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || id >= len(s.shardOf) {
		return -1
	}
	return s.shardOf[id]
}

// Subscribe registers fn to be called after every commit with the commit
// sequence number and the refreshed probability of every view. Callbacks run
// after the commit's write lock has been released, serialized in commit
// order (and in registration order within a commit), so a subscriber may
// call back into the store — Prob, Live, View.Probability, even further
// updates — without deadlocking; reads observe the notified commit or a
// later one. A slow subscriber delays later notifications but never blocks
// readers.
//
// The returned cancel function unregisters fn and is a barrier: once cancel
// returns, fn will never be invoked again — a commit that snapshotted its
// subscribers before the cancellation skips the cancelled entry at delivery
// time, and a callback already executing on another goroutine is waited
// out. (Network consumers rely on this: a handler that cancels on
// disconnect may immediately free the resources its callback writes to.)
// The one re-entrant exception: fn cancelling its own subscription from
// inside a callback returns immediately — waiting there would deadlock on
// the delivery in progress — and likewise never fires again. cancel is
// idempotent and safe for concurrent use.
func (s *Store) Subscribe(fn func(Commit)) (cancel func()) {
	sub := &subscriber{fn: fn}
	s.mu.Lock()
	s.subs = append(s.subs, sub)
	s.mu.Unlock()
	return func() {
		sub.cancelled.Store(true)
		s.mu.Lock()
		for i, other := range s.subs {
			if other == sub {
				s.subs = append(s.subs[:i], s.subs[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		if sub.delivering.Load() == goid() {
			return // self-cancel from inside the callback being delivered
		}
		s.deliverMu.Lock()
		for sub.delivering.Load() != 0 {
			s.deliver.Wait()
		}
		s.deliverMu.Unlock()
	}
}

// flushNotifications delivers every queued commit notification outside the
// store lock. notifyMu serializes deliverers so subscribers see commits in
// order; it is acquired with TryLock so that a subscriber issuing a further
// update from inside its callback (whose commit re-enters here on the same
// goroutine) hands its notification to the already-running drain instead of
// deadlocking on the non-reentrant mutex. The post-unlock re-check closes
// the race where a notification is enqueued just as the drain winds down.
//
// Each delivery claims the subscriber (delivering = this goroutine's id)
// before re-checking cancellation, so it either observes a cancel that
// already happened and skips the callback, or a racing cancel observes the
// claim and blocks until the callback returns — the barrier Subscribe
// documents.
func (s *Store) flushNotifications() {
	gid := goid()
	for {
		if !s.notifyMu.TryLock() {
			return // the current holder's drain loop delivers our commit
		}
		for {
			s.mu.Lock()
			if len(s.pending) == 0 {
				s.mu.Unlock()
				break
			}
			n := s.pending[0]
			s.pending = s.pending[1:]
			s.mu.Unlock()
			for _, sub := range n.subs {
				if sub.cancelled.Load() {
					continue
				}
				sub.delivering.Store(gid)
				if !sub.cancelled.Load() {
					// notifyMu is the delivery-serialization lock, held here by
					// design (TryLock above makes re-entrant commits hand off
					// instead of deadlocking); s.mu is NOT held.
					sub.fn(n.c) //pdblint:allow lockcallback delivery runs under notifyMu by contract
				}
				s.deliverMu.Lock()
				sub.delivering.Store(0)
				s.deliver.Broadcast()
				s.deliverMu.Unlock()
			}
		}
		s.notifyMu.Unlock()
		s.mu.RLock()
		again := len(s.pending) > 0
		s.mu.RUnlock()
		if !again {
			return
		}
	}
}

// finishCommit runs the post-lock tail of every mutating call: wait out the
// commit hook's durability barrier (marking the store broken when it fails —
// the in-memory state is then ahead of the durable history), and deliver the
// queued subscriber notifications.
func (s *Store) finishCommit(wait func() error, err error) error {
	if wait != nil {
		if werr := wait(); werr != nil {
			s.mu.Lock()
			if s.broken == nil {
				s.broken = fmt.Errorf("incr: commit not durable, store unusable: %w", werr)
			}
			s.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("incr: commit not durable: %w", werr)
			}
		}
	}
	s.flushNotifications()
	return err
}

// SetProb overwrites the probability of fact id and refreshes every view
// along the dirty spine of the owning shard.
func (s *Store) SetProb(id int, p float64) error {
	s.mu.Lock()
	err := s.stageSet(id, p)
	var wait func() error
	if err == nil {
		wait, err = s.commitLocked([]Update{{Op: OpSet, ID: id, P: p}})
	}
	s.mu.Unlock()
	return s.finishCommit(wait, err)
}

// Insert adds a fact with the given probability and returns its stable id.
// A fact already known to the store (live or tombstoned) is revived or
// re-weighted in place in its owning shard. A genuinely new fact is absorbed
// into that shard when its decompositions can cover it, opens a fresh
// singleton shard when all its constants are new, and triggers one full
// re-shard of all views otherwise (e.g. when it merges two components).
func (s *Store) Insert(f rel.Fact, p float64) (int, error) {
	s.mu.Lock()
	id, err := s.stageInsert(f, p)
	var wait func() error
	if err == nil {
		wait, err = s.commitLocked([]Update{{Op: OpInsert, Fact: f, P: p}})
	}
	s.mu.Unlock()
	if err = s.finishCommit(wait, err); err != nil {
		return -1, err
	}
	return id, nil
}

// Delete tombstones fact id: its event weight drops to zero, which yields
// exactly the distribution without the fact, at the owning shard's
// dirty-spine cost. The slot is reclaimed by the next fallback rebuild; the
// id stays valid and can be revived by Insert.
func (s *Store) Delete(id int) error {
	s.mu.Lock()
	err := s.stageDelete(id)
	var wait func() error
	if err == nil {
		wait, err = s.commitLocked([]Update{{Op: OpDelete, ID: id}})
	}
	s.mu.Unlock()
	return s.finishCommit(wait, err)
}

// ApplyBatch applies the updates in order and commits them as one unit:
// overlapping dirty spines are recomputed once, and any number of
// non-absorbable inserts in the batch cost a single rebuild. On the first
// invalid update the batch stops, the already-staged prefix is committed,
// and the error is returned.
func (s *Store) ApplyBatch(us []Update) error {
	_, _, err := s.ApplyBatchN(us)
	return err
}

// ApplyBatchN is ApplyBatch reporting how many updates actually landed —
// len(us) on success, the length of the committed prefix when the batch
// stopped at an invalid update — together with the commit sequence as of
// this batch (read atomically with the commit, so concurrent committers
// cannot be misattributed). The form for callers that must report partial
// commits honestly (the /update endpoint).
func (s *Store) ApplyBatchN(us []Update) (applied int, seq uint64, err error) {
	s.mu.Lock()
	staged := 0
	var stageErr error
	for _, u := range us {
		switch u.Op {
		case OpSet:
			stageErr = s.stageSet(u.ID, u.P)
		case OpInsert:
			_, stageErr = s.stageInsert(u.Fact, u.P)
		case OpDelete:
			stageErr = s.stageDelete(u.ID)
		default:
			stageErr = fmt.Errorf("incr: unknown update op %d", u.Op)
		}
		if stageErr != nil {
			break
		}
		staged++
	}
	var commitErr error
	var wait func() error
	if staged > 0 || s.needRebuild {
		// Only the applied prefix is committed — and only it reaches the
		// commit hook, so a durability log never records the rejected suffix
		// (replaying the record reproduces exactly the partial batch the
		// caller was told about).
		wait, commitErr = s.commitLocked(us[:staged])
	}
	seq = s.seq
	s.mu.Unlock()
	if err := s.finishCommit(wait, commitErr); err != nil {
		return 0, seq, err
	}
	return staged, seq, stageErr
}

// CommitEmpty forces a commit that stages no updates: the sequence number
// advances (and any pending rebuild runs) exactly as for a batch whose every
// update was rejected after it forced a rebuild. It exists for log replay —
// a recovery that encounters an empty commit record must advance the store
// through the same sequence number it had pre-crash.
func (s *Store) CommitEmpty() error {
	s.mu.Lock()
	wait, err := s.commitLocked(nil)
	s.mu.Unlock()
	return s.finishCommit(wait, err)
}

// --- staging (write lock held) ---

func (s *Store) checkID(id int) error {
	if s.broken != nil {
		return s.broken
	}
	if id < 0 || id >= len(s.facts) {
		return fmt.Errorf("incr: no fact %d (have %d)", id, len(s.facts))
	}
	return nil
}

// stageWeight routes a new weight for fact id's event to its owning shard:
// every view stages the change on that shard's materialized tables only.
func (s *Store) stageWeight(id int, p float64) {
	e := s.eventOf(id)
	s.pm[e] = p
	if s.needRebuild {
		return // the pending rebuild reads s.pm
	}
	k := s.shardOf[id]
	if k < 0 {
		// Not represented in any shard (compacted tombstone): only a rebuild
		// can bring it back; stageInsert routes here after re-attaching.
		s.needRebuild = true
		return
	}
	for _, v := range s.views {
		if err := v.shards[k].mat.Stage(e, p); err != nil {
			// The staged state and the views disagree; recover by rebuild.
			s.needRebuild = true
			return
		}
	}
}

func (s *Store) stageSet(id int, p float64) error {
	if err := s.checkID(id); err != nil {
		return err
	}
	if err := pdb.ValidateProb(p); err != nil {
		return fmt.Errorf("incr: fact %s: %w", s.facts[id], err)
	}
	if s.deleted[id] {
		return fmt.Errorf("incr: fact %s (id %d) is deleted; Insert revives it", s.facts[id], id)
	}
	s.probs[id] = p
	s.stats.SetProbs++
	s.stageWeight(id, p)
	return nil
}

func (s *Store) stageDelete(id int) error {
	if err := s.checkID(id); err != nil {
		return err
	}
	if s.deleted[id] {
		return fmt.Errorf("incr: fact %s (id %d) is already deleted", s.facts[id], id)
	}
	s.deleted[id] = true
	s.probs[id] = 0
	s.stats.Deletes++
	s.stats.Tombstones++
	// A live fact is always present in its shard: tombstone it by dropping
	// its event weight to zero.
	s.stageWeight(id, 0)
	return nil
}

func (s *Store) stageInsert(f rel.Fact, p float64) (int, error) {
	if s.broken != nil {
		return -1, s.broken
	}
	if err := pdb.ValidateProb(p); err != nil {
		return -1, fmt.Errorf("incr: fact %s: %w", f, err)
	}
	s.stats.Inserts++
	if id, known := s.byKey[f.Key()]; known {
		if s.deleted[id] {
			s.deleted[id] = false
			s.stats.Tombstones--
		}
		s.probs[id] = p
		if s.cIdx[id] < 0 {
			// The tombstone was compacted away by a rebuild: the fact is
			// genuinely absent from the current plans — attach it afresh.
			return id, s.routeNewFact(id, f, p)
		}
		s.stageWeight(id, p)
		return id, nil
	}
	id := len(s.facts)
	s.byKey[f.Key()] = id
	s.facts = append(s.facts, f)
	s.probs = append(s.probs, p)
	s.deleted = append(s.deleted, false)
	s.shardOf = append(s.shardOf, -1)
	s.cIdx = append(s.cIdx, -1)
	return id, s.routeNewFact(id, f, p)
}

// routeNewFact places fact id — absent from every current plan — into the
// shard layout: absorbed in place by the single shard owning its constants,
// opened as a fresh singleton shard when every constant is new, or falling
// back to a full re-shard when the fact spans components (it merges them) or
// defeats the attach search. Called with the fact's store-side state already
// updated.
func (s *Store) routeNewFact(id int, f rel.Fact, p float64) error {
	e := s.eventOf(id)
	s.pm[e] = p
	if s.needRebuild {
		return nil
	}

	owner, fresh := -1, 0
	spans := false
	for _, a := range f.Args {
		k, known := s.constShard[a]
		switch {
		case !known:
			fresh++
		case owner < 0:
			owner = k
		case owner != k:
			spans = true
		}
	}
	switch {
	case owner < 0 && !spans:
		// Every constant is new (or the fact has none): a brand-new
		// component, served by a fresh singleton shard. No existing shard's
		// tables are touched.
		s.openShard(id, f)
	case owner >= 0 && !spans && fresh == 0:
		// All constants live in one shard: absorb in place there.
		s.attachToShard(owner, id, f, p)
	default:
		// The fact merges components, or mixes known and new constants:
		// re-shard everything at commit.
		s.needRebuild = true
	}
	return nil
}

// openShard creates a new singleton shard holding only fact id and compiles
// each view's plan for it (a one-fact Prepare). On any failure the store
// falls back to a rebuild.
func (s *Store) openShard(id int, f rel.Fact) {
	c := pdb.NewCInstance()
	ci := c.Add(f, logic.Var(s.eventOf(id)))
	k := len(s.shards)
	s.shards = append(s.shards, c)
	s.shardOf[id], s.cIdx[id] = k, ci
	for _, a := range f.Args {
		s.constShard[a] = k
	}
	for _, v := range s.views {
		pl, err := core.PrepareCQ(c, v.q, v.opts)
		var mat *core.Materialized
		if err == nil {
			mat, err = pl.Materialize(s.pm)
		}
		if err != nil {
			s.needRebuild = true
			return
		}
		v.shards = append(v.shards, viewShard{plan: pl, mat: mat})
		v.comb = nil // shard set changed; recombine compiles the new fold post-commit
	}
	s.stats.NewShards++
	if m := s.metrics; m != nil {
		m.RoutedNewShard.Inc()
	}
}

// attachToShard absorbs fact id into shard k in place when every view's
// shard plan can cover it, and schedules the fallback rebuild otherwise.
func (s *Store) attachToShard(k, id int, f rel.Fact, p float64) {
	for _, v := range s.views {
		if !v.shards[k].plan.CanAttach(f) {
			s.needRebuild = true
			return
		}
	}
	ci := s.shards[k].Add(f, logic.Var(s.eventOf(id)))
	s.shardOf[id], s.cIdx[id] = k, ci
	for _, v := range s.views {
		if err := v.shards[k].mat.StageAttach(f, ci, s.eventOf(id), p); err != nil {
			s.needRebuild = true
			return
		}
	}
	if len(s.views) > 0 {
		s.stats.Attached++
		if m := s.metrics; m != nil {
			m.RoutedAttached.Inc()
		}
	}
}

// --- commit (write lock held) ---

// commitLocked applies everything staged since the last commit: one re-shard
// when some update could not be absorbed, the batched dirty-spine
// recomputation of each view's dirty shards otherwise. It then refreshes
// every view's combined probability, numbers the commit, offers the applied
// updates to the commit hook, and queues the subscriber notification
// (delivered by flushNotifications after the lock is released). The returned
// wait is the hook's durability barrier; the caller invokes it after
// releasing the lock, via finishCommit.
func (s *Store) commitLocked(us []Update) (wait func() error, err error) {
	if s.broken != nil {
		return nil, s.broken
	}
	t0 := time.Now()
	nodes0 := s.stats.NodesRecomputed
	rows0 := s.stats.RowsRecomputed
	cuts0 := s.stats.SpinesShortCircuited
	changed := make([]bool, len(s.views))
	if s.needRebuild {
		s.needRebuild = false
		s.rebuildShards()
		for i, v := range s.views {
			if err := v.build(); err != nil {
				// The store's data and its views have diverged and cannot be
				// reconciled; refuse further use rather than serve stale
				// answers.
				s.broken = fmt.Errorf("incr: rebuild failed, store unusable: %w", err)
				return nil, s.broken
			}
			// A rebuild recomputes every view from scratch; deltas are
			// unknowable, so every view counts as changed.
			changed[i] = true
		}
		s.stats.Rebuilds++
		if m := s.metrics; m != nil {
			m.Rebuilds.Inc()
		}
	} else {
		// Batched delta pass, shard-major: every view's tables for one shard
		// commit back-to-back — their spines walk the same decomposition of
		// the same sub-instance, so the shard's row layouts and kernel blocks
		// stay hot across views — with each table set propagating only its
		// changed rows and stopping at the first unchanged table. Only views
		// whose combined answer can have moved (a shard's root table changed,
		// or the shard set itself grew) then refold their shards; the rest
		// keep their probability without touching the combiner.
		for k := range s.shards {
			for i, v := range s.views {
				cs, err := v.shards[k].mat.CommitDelta()
				if err != nil {
					s.broken = fmt.Errorf("incr: commit failed, store unusable: %w", err)
					return nil, s.broken
				}
				s.stats.NodesRecomputed += uint64(cs.Nodes)
				s.stats.RowsRecomputed += uint64(cs.Rows)
				s.stats.SpinesShortCircuited += uint64(cs.ShortCircuits)
				if cs.Changed {
					changed[i] = true
				}
			}
		}
		for i, v := range s.views {
			if v.comb == nil {
				changed[i] = true // the shard set changed under the view
			} else if !changed[i] {
				continue // no shard root moved: the combined fold is current
			}
			if err := v.recombine(); err != nil {
				s.broken = fmt.Errorf("incr: commit failed, store unusable: %w", err)
				return nil, s.broken
			}
		}
	}
	s.seq++
	s.stats.Commits++
	s.stats.Updates += uint64(len(us))
	if m := s.metrics; m != nil {
		m.CommitSeconds.ObserveSince(t0)
		m.CommitUpdates.Observe(float64(len(us)))
		m.NodesRecomputed.Add(s.stats.NodesRecomputed - nodes0)
		m.RowsRecomputed.Add(s.stats.RowsRecomputed - rows0)
		m.SpinesShortCircuited.Add(s.stats.SpinesShortCircuited - cuts0)
		m.Commits.Inc()
	}
	if s.hook != nil {
		// CommitHook is documented to run under the store lock (it must see
		// the store exactly at the committed seq); hooks must not call back
		// into the store or block on subscriber-held resources.
		wait = s.hook(s.seq, us) //pdblint:allow lockcallback CommitHook runs under s.mu by documented contract
	}
	if len(s.subs) > 0 {
		snap := append([]*subscriber(nil), s.subs...)
		c := Commit{
			Seq:                  s.seq,
			Probabilities:        make([]float64, len(s.views)),
			Views:                append([]*View(nil), s.views...),
			Changed:              changed,
			RowsRecomputed:       s.stats.RowsRecomputed - rows0,
			SpinesShortCircuited: s.stats.SpinesShortCircuited - cuts0,
		}
		for i, v := range s.views {
			c.Probabilities[i] = v.prob
		}
		s.pending = append(s.pending, notification{subs: snap, c: c})
	}
	return wait, nil
}

// Oracle recomputes the view's probability from scratch — a fresh TID of the
// live facts, a fresh Prepare, one evaluation — bypassing every incremental
// structure. It is the ground truth the property and fuzz tests compare
// against, and a debugging aid; it does not touch the store's views.
func (s *Store) Oracle(q rel.CQ) (float64, error) {
	t, _, _ := s.Snapshot()
	pl, p, err := core.PrepareTID(t, q, core.Options{})
	if err != nil {
		return 0, err
	}
	return pl.Probability(p)
}
