// Package incr maintains live materialized views over prepared query plans:
// the incremental-maintenance layer of the serving stack.
//
// The frozen-plan path of internal/core answers repeated probability requests
// fast, but treats the database as a snapshot — any change to a probability
// or to the fact set throws the plan away and pays a full Prepare plus a full
// dynamic-programming pass. Following the shape of dynamic query evaluation
// (answering queries under updates by maintaining evaluation state), a Store
// keeps the per-node DP tables of each registered view materialized
// (core.Materialized) and maintains them under updates:
//
//   - SetProb touches one event weight, which is applied at a single forget
//     node of the nice decomposition, so only that node's root-path spine is
//     recomputed: O(depth) bag tables instead of O(n).
//   - Insert splices the new fact into every view in place when some existing
//     bag covers its arguments (treedec attach-point search); when the
//     decomposition cannot absorb it — a new constant, or no covering bag —
//     the store falls back to one counted full re-Prepare of every view.
//   - Delete tombstones the fact: its event weight drops to 0, which is
//     exactly the distribution without the fact, at dirty-spine cost.
//     Tombstones are compacted away by the next fallback rebuild.
//   - ApplyBatch stages a whole batch and commits once, so update spines
//     that overlap are recomputed a single time, and a batch containing any
//     non-absorbable insert costs one rebuild total.
//
// Readers (View.Probability, Stats) take a shared lock and may run
// concurrently with each other and between commits; Subscribe delivers the
// refreshed probabilities of every view after each commit.
package incr

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
	"repro/internal/treedec"
)

// Op selects the kind of an Update.
type Op uint8

const (
	// OpSet overwrites the probability of fact ID.
	OpSet Op = iota
	// OpInsert adds Fact with probability P (or revives/overwrites it if the
	// fact is already known).
	OpInsert
	// OpDelete tombstones fact ID.
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpSet:
		return "set"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return "unknown"
}

// Update is one mutation of an update batch.
type Update struct {
	Op   Op
	ID   int      // fact id for OpSet / OpDelete
	Fact rel.Fact // inserted fact for OpInsert
	P    float64  // probability for OpSet / OpInsert
}

// Commit describes one applied commit to subscribers.
type Commit struct {
	// Seq numbers commits from 1, in order.
	Seq uint64
	// Probabilities holds the refreshed query probability of every
	// registered view, in registration order.
	Probabilities []float64
}

// Stats counts the work the store has done, splitting the incremental paths
// from the re-Prepare fallbacks so the absorption rate is observable.
type Stats struct {
	Commits         uint64 // commits applied (one per mutating call)
	Updates         uint64 // individual updates inside those commits
	SetProbs        uint64
	Inserts         uint64
	Deletes         uint64
	Attached        uint64 // inserts absorbed in place by every view
	Rebuilds        uint64 // full re-Prepare fallbacks
	NodesRecomputed uint64 // DP tables recomputed incrementally, all views
	Tombstones      int    // deleted facts still occupying plan events
}

// Store is a mutable tuple-independent probabilistic database serving live
// materialized views. Fact ids are stable handles: they survive deletes,
// revivals and the internal rebuilds that compact tombstones away.
type Store struct {
	mu      sync.RWMutex
	facts   []rel.Fact
	probs   []float64
	deleted []bool
	byKey   map[string]int // fact key -> id, live or tombstoned

	c    *pdb.CInstance // the instance every view's plan is prepared on
	cIdx []int          // id -> fact index in c, -1 when compacted away
	pm   logic.Prob     // event probabilities for every event of c

	views       []*View
	needRebuild bool // set while staging when some insert cannot be absorbed
	broken      error

	subs  []func(Commit) // nil entries are cancelled subscriptions
	seq   uint64
	stats Stats
}

// View is a live materialized view: one query kept continuously answered
// over the store's current facts and probabilities.
type View struct {
	store *Store
	q     rel.CQ
	opts  core.Options
	plan  *core.Plan
	mat   *core.Materialized
}

// NewStore builds a store over a snapshot of the TID instance t (later
// changes to t are not observed; the store is the mutable handle from here
// on). Probabilities are validated fact by fact.
func NewStore(t *pdb.TID) (*Store, error) {
	s := &Store{byKey: map[string]int{}}
	for i := 0; i < t.NumFacts(); i++ {
		f := t.Fact(i)
		if err := pdb.ValidateProb(t.Prob(i)); err != nil {
			return nil, fmt.Errorf("incr: fact %s: %w", f, err)
		}
		if _, dup := s.byKey[f.Key()]; dup {
			return nil, fmt.Errorf("incr: duplicate fact %s", f)
		}
		s.byKey[f.Key()] = len(s.facts)
		s.facts = append(s.facts, f)
		s.probs = append(s.probs, t.Prob(i))
		s.deleted = append(s.deleted, false)
	}
	s.buildC()
	return s, nil
}

// eventOf names the private event of fact id; ids are stable, so the event
// name survives rebuilds (and matches pdb.TID.EventOf for the seed facts).
func (s *Store) eventOf(id int) logic.Event {
	return logic.Event(fmt.Sprintf("f%d", id))
}

// buildC rebuilds the plan-facing c-instance and probability map from the
// live facts, dropping tombstones.
func (s *Store) buildC() {
	s.c = pdb.NewCInstance()
	s.cIdx = make([]int, len(s.facts))
	s.pm = logic.Prob{}
	for id := range s.facts {
		s.cIdx[id] = -1
		if s.deleted[id] {
			continue
		}
		e := s.eventOf(id)
		s.cIdx[id] = s.c.Add(s.facts[id], logic.Var(e))
		s.pm[e] = s.probs[id]
	}
	s.stats.Tombstones = 0
}

// RegisterView compiles a plan for q over the store's current instance,
// materializes its DP tables, and keeps both maintained under every later
// update. Options are honoured as in core.PrepareCQ, except that a pinned
// Joint decomposition is rejected (the live instance outgrows it) and
// EmitLineage is ignored (live views answer probabilities, not lineages).
func (s *Store) RegisterView(q rel.CQ, opts core.Options) (*View, error) {
	if opts.Joint != nil {
		return nil, fmt.Errorf("incr: a live view cannot pin a precomputed decomposition")
	}
	opts.EmitLineage = false
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return nil, s.broken
	}
	v := &View{store: s, q: q, opts: opts}
	if err := v.build(); err != nil {
		return nil, err
	}
	s.views = append(s.views, v)
	return v, nil
}

// build (re)compiles the view's plan on the store's current instance and
// materializes it. Called under the store's write lock.
func (v *View) build() error {
	pl, err := core.PrepareCQ(v.store.c, v.q, v.opts)
	if err != nil {
		return fmt.Errorf("incr: prepare %s: %w", v.q, err)
	}
	mat, err := pl.Materialize(v.store.pm)
	if err != nil {
		return fmt.Errorf("incr: materialize %s: %w", v.q, err)
	}
	v.plan, v.mat = pl, mat
	return nil
}

// Probability returns the view's current query probability. Safe for any
// number of concurrent callers, including while other goroutines commit.
func (v *View) Probability() float64 {
	v.store.mu.RLock()
	defer v.store.mu.RUnlock()
	return v.mat.Probability()
}

// Shape returns the structural statistics of the view's current plan. Depth
// bounds the number of DP tables one probability update recomputes.
func (v *View) Shape() treedec.Stats {
	v.store.mu.RLock()
	defer v.store.mu.RUnlock()
	return v.plan.Shape()
}

// Query returns the view's conjunctive query.
func (v *View) Query() rel.CQ { return v.q }

// Stats returns a snapshot of the store's work counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Len returns the number of fact ids ever issued (live and tombstoned).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.facts)
}

// Fact returns the fact with the given id.
func (s *Store) Fact(id int) (rel.Fact, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || id >= len(s.facts) {
		return rel.Fact{}, fmt.Errorf("incr: no fact %d (have %d)", id, len(s.facts))
	}
	return s.facts[id], nil
}

// Prob returns the current probability of fact id (0 for tombstones).
func (s *Store) Prob(id int) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || id >= len(s.facts) {
		return 0, fmt.Errorf("incr: no fact %d (have %d)", id, len(s.facts))
	}
	return s.probs[id], nil
}

// Live reports whether fact id exists and is not tombstoned.
func (s *Store) Live(id int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return id >= 0 && id < len(s.facts) && !s.deleted[id]
}

// IDOf returns the id of the given fact, or -1 when it was never inserted.
func (s *Store) IDOf(f rel.Fact) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id, ok := s.byKey[f.Key()]; ok {
		return id
	}
	return -1
}

// Subscribe registers fn to be called after every commit with the commit
// sequence number and the refreshed probability of every view. Callbacks run
// synchronously under the store's lock, in registration order: they must be
// fast and must not call back into the store. The returned cancel function
// unregisters fn.
func (s *Store) Subscribe(fn func(Commit)) (cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := len(s.subs)
	s.subs = append(s.subs, fn)
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.subs[id] = nil
	}
}

// SetProb overwrites the probability of fact id and refreshes every view
// along the fact's dirty spine.
func (s *Store) SetProb(id int, p float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.stageSet(id, p); err != nil {
		return err
	}
	return s.commitLocked(1)
}

// Insert adds a fact with the given probability and returns its stable id.
// A fact already known to the store (live or tombstoned) is revived or
// re-weighted in place; a genuinely new fact is absorbed into every view
// when the decompositions can cover it, and triggers one full re-Prepare of
// all views otherwise.
func (s *Store) Insert(f rel.Fact, p float64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, err := s.stageInsert(f, p)
	if err != nil {
		return -1, err
	}
	return id, s.commitLocked(1)
}

// Delete tombstones fact id: its event weight drops to zero, which yields
// exactly the distribution without the fact. The slot is reclaimed by the
// next fallback rebuild; the id stays valid and can be revived by Insert.
func (s *Store) Delete(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.stageDelete(id); err != nil {
		return err
	}
	return s.commitLocked(1)
}

// ApplyBatch applies the updates in order and commits them as one unit:
// overlapping dirty spines are recomputed once, and any number of
// non-absorbable inserts in the batch cost a single rebuild. On the first
// invalid update the batch stops, the already-staged prefix is committed,
// and the error is returned.
func (s *Store) ApplyBatch(us []Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	staged := 0
	var stageErr error
	for _, u := range us {
		switch u.Op {
		case OpSet:
			stageErr = s.stageSet(u.ID, u.P)
		case OpInsert:
			_, stageErr = s.stageInsert(u.Fact, u.P)
		case OpDelete:
			stageErr = s.stageDelete(u.ID)
		default:
			stageErr = fmt.Errorf("incr: unknown update op %d", u.Op)
		}
		if stageErr != nil {
			break
		}
		staged++
	}
	if staged > 0 || s.needRebuild {
		if err := s.commitLocked(staged); err != nil {
			return err
		}
	}
	return stageErr
}

// --- staging (write lock held) ---

func (s *Store) checkID(id int) error {
	if s.broken != nil {
		return s.broken
	}
	if id < 0 || id >= len(s.facts) {
		return fmt.Errorf("incr: no fact %d (have %d)", id, len(s.facts))
	}
	return nil
}

func (s *Store) stageSet(id int, p float64) error {
	if err := s.checkID(id); err != nil {
		return err
	}
	if err := pdb.ValidateProb(p); err != nil {
		return fmt.Errorf("incr: fact %s: %w", s.facts[id], err)
	}
	if s.deleted[id] {
		return fmt.Errorf("incr: fact %s (id %d) is deleted; Insert revives it", s.facts[id], id)
	}
	s.probs[id] = p
	e := s.eventOf(id)
	s.pm[e] = p
	s.stats.SetProbs++
	if s.needRebuild {
		return nil // the pending rebuild reads s.pm
	}
	for _, v := range s.views {
		if err := v.mat.Stage(e, p); err != nil {
			// The staged state and the views disagree; recover by rebuild.
			s.needRebuild = true
			return nil
		}
	}
	return nil
}

func (s *Store) stageDelete(id int) error {
	if err := s.checkID(id); err != nil {
		return err
	}
	if s.deleted[id] {
		return fmt.Errorf("incr: fact %s (id %d) is already deleted", s.facts[id], id)
	}
	s.deleted[id] = true
	s.probs[id] = 0
	s.stats.Deletes++
	s.stats.Tombstones++
	// A live fact is always present in the current c-instance: tombstone it
	// by dropping its event weight to zero.
	e := s.eventOf(id)
	s.pm[e] = 0
	if s.needRebuild {
		return nil
	}
	for _, v := range s.views {
		if err := v.mat.Stage(e, 0); err != nil {
			s.needRebuild = true
			return nil
		}
	}
	return nil
}

func (s *Store) stageInsert(f rel.Fact, p float64) (int, error) {
	if s.broken != nil {
		return -1, s.broken
	}
	if err := pdb.ValidateProb(p); err != nil {
		return -1, fmt.Errorf("incr: fact %s: %w", f, err)
	}
	s.stats.Inserts++
	if id, known := s.byKey[f.Key()]; known {
		e := s.eventOf(id)
		if s.deleted[id] {
			s.deleted[id] = false
			s.stats.Tombstones--
		}
		s.probs[id] = p
		if s.cIdx[id] < 0 {
			// The tombstone was compacted away by a rebuild: the fact is
			// genuinely absent from the current plans — attach it afresh.
			return id, s.attachOrRebuild(id, f, p)
		}
		s.pm[e] = p
		if !s.needRebuild {
			for _, v := range s.views {
				if err := v.mat.Stage(e, p); err != nil {
					s.needRebuild = true
					break
				}
			}
		}
		return id, nil
	}
	id := len(s.facts)
	s.byKey[f.Key()] = id
	s.facts = append(s.facts, f)
	s.probs = append(s.probs, p)
	s.deleted = append(s.deleted, false)
	s.cIdx = append(s.cIdx, -1)
	return id, s.attachOrRebuild(id, f, p)
}

// attachOrRebuild absorbs fact id into every view in place when all of them
// can cover it, and schedules the fallback rebuild otherwise. Called with
// the fact's store-side state already updated.
func (s *Store) attachOrRebuild(id int, f rel.Fact, p float64) error {
	e := s.eventOf(id)
	if s.needRebuild {
		s.pm[e] = p
		return nil
	}
	canAll := true
	for _, v := range s.views {
		if !v.plan.CanAttach(f) {
			canAll = false
			break
		}
	}
	if !canAll {
		s.pm[e] = p
		s.needRebuild = true
		return nil
	}
	ci := s.c.Add(f, logic.Var(e))
	s.cIdx[id] = ci
	s.pm[e] = p
	for _, v := range s.views {
		if err := v.mat.StageAttach(f, ci, e, p); err != nil {
			s.needRebuild = true
			return nil
		}
	}
	if len(s.views) > 0 {
		s.stats.Attached++
	}
	return nil
}

// --- commit (write lock held) ---

// commitLocked applies everything staged since the last commit: one rebuild
// when some update could not be absorbed, the batched dirty-spine
// recomputation of every view otherwise. It then numbers the commit and
// notifies subscribers.
func (s *Store) commitLocked(updates int) error {
	if s.broken != nil {
		return s.broken
	}
	if s.needRebuild {
		s.needRebuild = false
		s.buildC()
		for _, v := range s.views {
			if err := v.build(); err != nil {
				// The store's data and its views have diverged and cannot be
				// reconciled; refuse further use rather than serve stale
				// answers.
				s.broken = fmt.Errorf("incr: rebuild failed, store unusable: %w", err)
				return s.broken
			}
		}
		s.stats.Rebuilds++
	} else {
		for _, v := range s.views {
			n, err := v.mat.Commit()
			if err != nil {
				s.broken = fmt.Errorf("incr: commit failed, store unusable: %w", err)
				return s.broken
			}
			s.stats.NodesRecomputed += uint64(n)
		}
	}
	s.seq++
	s.stats.Commits++
	s.stats.Updates += uint64(updates)
	if len(s.subs) > 0 {
		c := Commit{Seq: s.seq, Probabilities: make([]float64, len(s.views))}
		for i, v := range s.views {
			c.Probabilities[i] = v.mat.Probability()
		}
		for _, fn := range s.subs {
			if fn != nil {
				fn(c)
			}
		}
	}
	return nil
}

// Oracle recomputes the view's probability from scratch — a fresh TID of the
// live facts, a fresh Prepare, one evaluation — bypassing every incremental
// structure. It is the ground truth the property and fuzz tests compare
// against, and a debugging aid; it does not touch the store's views.
func (s *Store) Oracle(q rel.CQ) (float64, error) {
	s.mu.RLock()
	t := pdb.NewTID()
	for id, f := range s.facts {
		if !s.deleted[id] {
			t.Add(f, s.probs[id])
		}
	}
	s.mu.RUnlock()
	pl, p, err := core.PrepareTID(t, q, core.Options{})
	if err != nil {
		return 0, err
	}
	return pl.Probability(p)
}
