package incr

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rel"
	"repro/internal/treedec"
)

const tol = 1e-12

// checkViews compares every view against the full re-Prepare oracle.
func checkViews(t *testing.T, s *Store, views []*View, ctx string) {
	t.Helper()
	for i, v := range views {
		want, err := s.Oracle(v.Query())
		if err != nil {
			t.Fatalf("%s: oracle view %d: %v", ctx, i, err)
		}
		if got := v.Probability(); math.Abs(got-want) > tol {
			t.Fatalf("%s: view %d: incremental %v, oracle %v (|Δ|=%.3g)", ctx, i, got, want, math.Abs(got-want))
		}
	}
}

// chainStore builds a store over an RST chain with two registered views.
func chainStore(t *testing.T, n int) (*Store, []*View) {
	t.Helper()
	s, err := NewStore(gen.RSTChain(n, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := s.RegisterView(rel.HardQuery(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.RegisterView(rel.NewCQ(
		rel.NewAtom("S", rel.V("x"), rel.V("y")),
		rel.NewAtom("T", rel.V("y")),
	), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, []*View{v1, v2}
}

func TestSetProbMatchesOracle(t *testing.T) {
	s, views := chainStore(t, 8)
	r := rand.New(rand.NewSource(1))
	for step := 0; step < 30; step++ {
		id := r.Intn(s.Len())
		p := float64(r.Intn(11)) / 10
		if err := s.SetProb(id, p); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkViews(t, s, views, fmt.Sprintf("step %d", step))
	}
	st := s.Stats()
	if st.Rebuilds != 0 {
		t.Errorf("SetProb forced %d rebuilds", st.Rebuilds)
	}
	if st.NodesRecomputed == 0 {
		t.Error("no incremental recomputation recorded")
	}
}

// TestRandomUpdateSequences drives randomized SetProb / Insert / Delete
// sequences — the acceptance property: after every commit, every view equals
// the full re-Prepare oracle to 1e-12, including after fallbacks.
func TestRandomUpdateSequences(t *testing.T) {
	var attached, rebuilds uint64
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		s, views := chainStore(t, 4)
		for step := 0; step < 35; step++ {
			ctx := fmt.Sprintf("seed %d step %d", seed, step)
			switch r.Intn(4) {
			case 0: // probability tweak on a live fact
				id := r.Intn(s.Len())
				if !s.Live(id) {
					continue
				}
				if err := s.SetProb(id, float64(r.Intn(11))/10); err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
			case 1: // insert, sometimes with a fresh constant (forces rebuild)
				var f rel.Fact
				if r.Intn(3) == 0 {
					f = rel.NewFact("R", fmt.Sprintf("w%d", r.Intn(3)))
				} else {
					i := r.Intn(4)
					f = rel.NewFact("S", fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1))
				}
				if _, err := s.Insert(f, float64(1+r.Intn(9))/10); err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
			case 2: // delete a random live fact
				id := r.Intn(s.Len())
				if s.Live(id) {
					if err := s.Delete(id); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
				}
			case 3: // revive or re-weight via Insert on a known fact
				id := r.Intn(s.Len())
				f, err := s.Fact(id)
				if err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
				if _, err := s.Insert(f, float64(r.Intn(11))/10); err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
			}
			checkViews(t, s, views, ctx)
		}
		st := s.Stats()
		attached += st.Attached
		rebuilds += st.Rebuilds
	}
	// The sequences must exercise both the in-place path and the fallback.
	if attached == 0 {
		t.Error("no insert was absorbed in place")
	}
	if rebuilds == 0 {
		t.Error("no insert fell back to a rebuild")
	}
}

func TestDeleteTombstoneAndRevival(t *testing.T) {
	s, views := chainStore(t, 5)
	id := s.IDOf(rel.NewFact("S", "v2", "v3"))
	if id < 0 {
		t.Fatal("chain fact missing")
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if s.Live(id) {
		t.Error("deleted fact still live")
	}
	checkViews(t, s, views, "after delete")
	if err := s.Delete(id); err == nil {
		t.Error("double delete accepted")
	}
	if err := s.SetProb(id, 0.4); err == nil {
		t.Error("SetProb on a tombstone accepted")
	}
	// Revival restores the fact at a new probability.
	f, _ := s.Fact(id)
	rid, err := s.Insert(f, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if rid != id {
		t.Errorf("revival changed the id: %d -> %d", id, rid)
	}
	if !s.Live(id) {
		t.Error("revived fact not live")
	}
	checkViews(t, s, views, "after revival")
	if st := s.Stats(); st.Rebuilds != 0 {
		t.Errorf("tombstone/revival forced %d rebuilds", st.Rebuilds)
	}

	// Revival after a compacting rebuild re-attaches the fact.
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(rel.NewFact("R", "brandnew"), 0.5); err != nil { // forces rebuild
		t.Fatal(err)
	}
	if st := s.Stats(); st.Rebuilds != 1 || st.Tombstones != 0 {
		t.Fatalf("stats after compacting rebuild: %+v", st)
	}
	if _, err := s.Insert(f, 0.3); err != nil {
		t.Fatal(err)
	}
	checkViews(t, s, views, "after post-compaction revival")
}

func TestApplyBatchAmortizesSpines(t *testing.T) {
	mk := func() (*Store, []*View, []int) {
		s, views := chainStore(t, 30)
		ids := []int{0, 15, 33, 51, 69, 87}
		return s, views, ids
	}
	batchS, batchViews, ids := mk()
	var us []Update
	for _, id := range ids {
		us = append(us, Update{Op: OpSet, ID: id, P: 0.15})
	}
	if err := batchS.ApplyBatch(us); err != nil {
		t.Fatal(err)
	}
	checkViews(t, batchS, batchViews, "after batch")

	serialS, serialViews, _ := mk()
	for _, id := range ids {
		if err := serialS.SetProb(id, 0.15); err != nil {
			t.Fatal(err)
		}
	}
	checkViews(t, serialS, serialViews, "after serial updates")

	bs, ss := batchS.Stats(), serialS.Stats()
	if bs.Commits != 1 || ss.Commits != uint64(len(ids)) {
		t.Errorf("commits: batch %d, serial %d", bs.Commits, ss.Commits)
	}
	if bs.NodesRecomputed >= ss.NodesRecomputed {
		t.Errorf("batch recomputed %d nodes, serial %d: no amortization", bs.NodesRecomputed, ss.NodesRecomputed)
	}
	for i := range batchViews {
		if math.Abs(batchViews[i].Probability()-serialViews[i].Probability()) > tol {
			t.Errorf("view %d: batch %v, serial %v", i, batchViews[i].Probability(), serialViews[i].Probability())
		}
	}
}

func TestApplyBatchWithMixedOpsAndFallback(t *testing.T) {
	s, views := chainStore(t, 6)
	err := s.ApplyBatch([]Update{
		{Op: OpSet, ID: 0, P: 0.9},
		{Op: OpInsert, Fact: rel.NewFact("S", "v1", "v2"), P: 0.4},
		{Op: OpDelete, ID: 4},
		{Op: OpInsert, Fact: rel.NewFact("R", "fresh1"), P: 0.5}, // new constant
		{Op: OpInsert, Fact: rel.NewFact("T", "fresh1"), P: 0.6}, // rides the same rebuild
		{Op: OpSet, ID: 2, P: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Rebuilds != 1 {
		t.Errorf("batch with two fresh-constant inserts used %d rebuilds, want 1", st.Rebuilds)
	}
	if st.Commits != 1 {
		t.Errorf("batch used %d commits", st.Commits)
	}
	checkViews(t, s, views, "after mixed batch")

	// An invalid update stops the batch, commits the prefix, and errors.
	if err := s.ApplyBatch([]Update{
		{Op: OpSet, ID: 1, P: 0.3},
		{Op: OpSet, ID: 9999, P: 0.3},
	}); err == nil {
		t.Error("batch with an invalid id did not error")
	}
	if p, _ := s.Prob(1); p != 0.3 {
		t.Errorf("valid prefix not applied: P = %v", p)
	}
	checkViews(t, s, views, "after failed batch")
}

func TestValidationErrors(t *testing.T) {
	s, _ := chainStore(t, 3)
	if err := s.SetProb(0, math.NaN()); err == nil {
		t.Error("SetProb accepted NaN")
	}
	if err := s.SetProb(0, 1.5); err == nil {
		t.Error("SetProb accepted 1.5")
	}
	if err := s.SetProb(-1, 0.5); err == nil {
		t.Error("SetProb accepted a negative id")
	}
	if _, err := s.Insert(rel.NewFact("R", "v0"), -0.5); err == nil {
		t.Error("Insert accepted -0.5")
	}
	if err := s.Delete(4242); err == nil {
		t.Error("Delete accepted an unknown id")
	}
	// Nothing committed: the views saw no update.
	if st := s.Stats(); st.Commits != 0 {
		t.Errorf("invalid updates committed: %+v", st)
	}
}

func TestSubscribe(t *testing.T) {
	s, views := chainStore(t, 4)
	var got []Commit
	cancel := s.Subscribe(func(c Commit) { got = append(got, c) })
	if err := s.SetProb(0, 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(rel.NewFact("R", "other"), 0.5); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("commits = %+v", got)
	}
	for i, v := range views {
		if math.Abs(got[1].Probabilities[i]-v.Probability()) > tol {
			t.Errorf("subscriber view %d: %v vs %v", i, got[1].Probabilities[i], v.Probability())
		}
	}
	cancel()
	if err := s.SetProb(0, 0.8); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Error("cancelled subscriber still notified")
	}
}

func TestRegisterViewRejectsPinnedDecomposition(t *testing.T) {
	s, _ := chainStore(t, 3)
	g := gen.RSTChain(3, 0.5).Inst.GaifmanGraph(nil)
	joint := treedec.Decompose(g, treedec.MinDegree)
	if _, err := s.RegisterView(rel.HardQuery(), core.Options{Joint: joint}); err == nil {
		t.Error("pinned decomposition accepted")
	}
}

// TestConcurrentReadersDuringCommits runs probability readers against a
// committing writer; under -race this is the memory-safety check for the
// single-writer/shared-reader contract.
func TestConcurrentReadersDuringCommits(t *testing.T) {
	s, views := chainStore(t, 12)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, v := range views {
					p := v.Probability()
					if p < 0 || p > 1 {
						t.Errorf("probability %v out of range", p)
						return
					}
					_ = v.Shape()
				}
				_ = s.Stats()
			}
		}()
	}
	r := rand.New(rand.NewSource(7))
	for step := 0; step < 150; step++ {
		switch r.Intn(3) {
		case 0:
			if err := s.SetProb(r.Intn(s.Len()), r.Float64()); err != nil {
				t.Error(err)
			}
		case 1:
			i := r.Intn(12)
			f := rel.NewFact("S", fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1))
			if _, err := s.Insert(f, r.Float64()); err != nil {
				t.Error(err)
			}
		case 2:
			if _, err := s.Insert(rel.NewFact("R", fmt.Sprintf("x%d", r.Intn(4))), r.Float64()); err != nil {
				t.Error(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	checkViews(t, s, views, "after concurrent run")
}
