package incr

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pdb"
	"repro/internal/rel"
	"repro/internal/treedec"
)

const tol = 1e-12

// checkViews compares every view against the full re-Prepare oracle.
func checkViews(t *testing.T, s *Store, views []*View, ctx string) {
	t.Helper()
	for i, v := range views {
		want, err := s.Oracle(v.Query())
		if err != nil {
			t.Fatalf("%s: oracle view %d: %v", ctx, i, err)
		}
		if got := v.Probability(); math.Abs(got-want) > tol {
			t.Fatalf("%s: view %d: incremental %v, oracle %v (|Δ|=%.3g)", ctx, i, got, want, math.Abs(got-want))
		}
	}
}

// chainStore builds a store over an RST chain with two registered views.
func chainStore(t *testing.T, n int) (*Store, []*View) {
	t.Helper()
	s, err := NewStore(gen.RSTChain(n, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := s.RegisterView(rel.HardQuery(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.RegisterView(rel.NewCQ(
		rel.NewAtom("S", rel.V("x"), rel.V("y")),
		rel.NewAtom("T", rel.V("y")),
	), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, []*View{v1, v2}
}

func TestSetProbMatchesOracle(t *testing.T) {
	s, views := chainStore(t, 8)
	r := rand.New(rand.NewSource(1))
	for step := 0; step < 30; step++ {
		id := r.Intn(s.Len())
		p := float64(r.Intn(11)) / 10
		if err := s.SetProb(id, p); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkViews(t, s, views, fmt.Sprintf("step %d", step))
	}
	st := s.Stats()
	if st.Rebuilds != 0 {
		t.Errorf("SetProb forced %d rebuilds", st.Rebuilds)
	}
	if st.NodesRecomputed == 0 {
		t.Error("no incremental recomputation recorded")
	}
}

// TestRandomUpdateSequences drives randomized SetProb / Insert / Delete
// sequences — the acceptance property: after every commit, every view equals
// the full re-Prepare oracle to 1e-12, including after fallbacks.
func TestRandomUpdateSequences(t *testing.T) {
	var attached, rebuilds, newShards uint64
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		s, views := chainStore(t, 4)
		for step := 0; step < 35; step++ {
			ctx := fmt.Sprintf("seed %d step %d", seed, step)
			switch r.Intn(5) {
			case 0: // probability tweak on a live fact
				id := r.Intn(s.Len())
				if !s.Live(id) {
					continue
				}
				if err := s.SetProb(id, float64(r.Intn(11))/10); err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
			case 1: // insert: an existing edge, or a fresh constant (opens a shard)
				var f rel.Fact
				if r.Intn(3) == 0 {
					f = rel.NewFact("R", fmt.Sprintf("w%d", r.Intn(3)))
				} else {
					i := r.Intn(4)
					f = rel.NewFact("S", fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1))
				}
				if _, err := s.Insert(f, float64(1+r.Intn(9))/10); err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
			case 2: // delete a random live fact
				id := r.Intn(s.Len())
				if s.Live(id) {
					if err := s.Delete(id); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
				}
			case 3: // revive or re-weight via Insert on a known fact
				id := r.Intn(s.Len())
				f, err := s.Fact(id)
				if err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
				if _, err := s.Insert(f, float64(r.Intn(11))/10); err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
			case 4: // cross-shard link (merges components: rebuild) or a
				// unary fact on a w constant (absorbed by its shard)
				var f rel.Fact
				if r.Intn(2) == 0 {
					f = rel.NewFact("S", fmt.Sprintf("w%d", r.Intn(3)), fmt.Sprintf("v%d", r.Intn(5)))
				} else {
					f = rel.NewFact("T", fmt.Sprintf("w%d", r.Intn(3)))
				}
				if _, err := s.Insert(f, float64(1+r.Intn(9))/10); err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
			}
			checkViews(t, s, views, ctx)
		}
		st := s.Stats()
		attached += st.Attached
		rebuilds += st.Rebuilds
		newShards += st.NewShards
	}
	// The sequences must exercise the in-place path, the singleton-shard
	// path, and the re-shard fallback.
	if attached == 0 {
		t.Error("no insert was absorbed in place")
	}
	if rebuilds == 0 {
		t.Error("no insert fell back to a rebuild")
	}
	if newShards == 0 {
		t.Error("no insert opened a fresh shard")
	}
}

func TestDeleteTombstoneAndRevival(t *testing.T) {
	s, views := chainStore(t, 5)
	id := s.IDOf(rel.NewFact("S", "v2", "v3"))
	if id < 0 {
		t.Fatal("chain fact missing")
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if s.Live(id) {
		t.Error("deleted fact still live")
	}
	checkViews(t, s, views, "after delete")
	if err := s.Delete(id); err == nil {
		t.Error("double delete accepted")
	}
	if err := s.SetProb(id, 0.4); err == nil {
		t.Error("SetProb on a tombstone accepted")
	}
	// Revival restores the fact at a new probability.
	f, _ := s.Fact(id)
	rid, err := s.Insert(f, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if rid != id {
		t.Errorf("revival changed the id: %d -> %d", id, rid)
	}
	if !s.Live(id) {
		t.Error("revived fact not live")
	}
	checkViews(t, s, views, "after revival")
	if st := s.Stats(); st.Rebuilds != 0 {
		t.Errorf("tombstone/revival forced %d rebuilds", st.Rebuilds)
	}

	// Revival after a compacting rebuild re-attaches the fact. A fact mixing
	// a known constant with a brand-new one cannot be absorbed or opened as
	// its own shard, so it forces the compacting re-shard.
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(rel.NewFact("S", "v0", "brandnew"), 0.5); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Rebuilds != 1 || st.Tombstones != 0 {
		t.Fatalf("stats after compacting rebuild: %+v", st)
	}
	if _, err := s.Insert(f, 0.3); err != nil {
		t.Fatal(err)
	}
	checkViews(t, s, views, "after post-compaction revival")
}

func TestApplyBatchAmortizesSpines(t *testing.T) {
	mk := func() (*Store, []*View, []int) {
		s, views := chainStore(t, 30)
		ids := []int{0, 15, 33, 51, 69, 87}
		return s, views, ids
	}
	batchS, batchViews, ids := mk()
	var us []Update
	for _, id := range ids {
		us = append(us, Update{Op: OpSet, ID: id, P: 0.15})
	}
	if err := batchS.ApplyBatch(us); err != nil {
		t.Fatal(err)
	}
	checkViews(t, batchS, batchViews, "after batch")

	serialS, serialViews, _ := mk()
	for _, id := range ids {
		if err := serialS.SetProb(id, 0.15); err != nil {
			t.Fatal(err)
		}
	}
	checkViews(t, serialS, serialViews, "after serial updates")

	bs, ss := batchS.Stats(), serialS.Stats()
	if bs.Commits != 1 || ss.Commits != uint64(len(ids)) {
		t.Errorf("commits: batch %d, serial %d", bs.Commits, ss.Commits)
	}
	if bs.NodesRecomputed >= ss.NodesRecomputed {
		t.Errorf("batch recomputed %d nodes, serial %d: no amortization", bs.NodesRecomputed, ss.NodesRecomputed)
	}
	for i := range batchViews {
		if math.Abs(batchViews[i].Probability()-serialViews[i].Probability()) > tol {
			t.Errorf("view %d: batch %v, serial %v", i, batchViews[i].Probability(), serialViews[i].Probability())
		}
	}
}

func TestApplyBatchWithMixedOpsAndFallback(t *testing.T) {
	s, views := chainStore(t, 6)
	err := s.ApplyBatch([]Update{
		{Op: OpSet, ID: 0, P: 0.9},
		{Op: OpInsert, Fact: rel.NewFact("S", "v1", "v2"), P: 0.4},
		{Op: OpDelete, ID: 4},
		{Op: OpInsert, Fact: rel.NewFact("R", "fresh1"), P: 0.5},     // new constant: opens a shard
		{Op: OpInsert, Fact: rel.NewFact("T", "fresh1"), P: 0.6},     // absorbed by that shard
		{Op: OpInsert, Fact: rel.NewFact("S", "v5", "fresh2"), P: 1}, // spans components: one rebuild
		{Op: OpSet, ID: 2, P: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Rebuilds != 1 {
		t.Errorf("batch with a component-merging insert used %d rebuilds, want 1", st.Rebuilds)
	}
	if st.NewShards != 1 {
		t.Errorf("batch opened %d shards, want 1", st.NewShards)
	}
	if st.Commits != 1 {
		t.Errorf("batch used %d commits", st.Commits)
	}
	checkViews(t, s, views, "after mixed batch")

	// An invalid update stops the batch, commits the prefix, and errors.
	if err := s.ApplyBatch([]Update{
		{Op: OpSet, ID: 1, P: 0.3},
		{Op: OpSet, ID: 9999, P: 0.3},
	}); err == nil {
		t.Error("batch with an invalid id did not error")
	}
	if p, _ := s.Prob(1); p != 0.3 {
		t.Errorf("valid prefix not applied: P = %v", p)
	}
	checkViews(t, s, views, "after failed batch")
}

func TestValidationErrors(t *testing.T) {
	s, _ := chainStore(t, 3)
	if err := s.SetProb(0, math.NaN()); err == nil {
		t.Error("SetProb accepted NaN")
	}
	if err := s.SetProb(0, 1.5); err == nil {
		t.Error("SetProb accepted 1.5")
	}
	if err := s.SetProb(-1, 0.5); err == nil {
		t.Error("SetProb accepted a negative id")
	}
	if _, err := s.Insert(rel.NewFact("R", "v0"), -0.5); err == nil {
		t.Error("Insert accepted -0.5")
	}
	if err := s.Delete(4242); err == nil {
		t.Error("Delete accepted an unknown id")
	}
	// Nothing committed: the views saw no update.
	if st := s.Stats(); st.Commits != 0 {
		t.Errorf("invalid updates committed: %+v", st)
	}
}

func TestSubscribe(t *testing.T) {
	s, views := chainStore(t, 4)
	var got []Commit
	cancel := s.Subscribe(func(c Commit) { got = append(got, c) })
	if err := s.SetProb(0, 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(rel.NewFact("R", "other"), 0.5); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("commits = %+v", got)
	}
	for i, v := range views {
		if math.Abs(got[1].Probabilities[i]-v.Probability()) > tol {
			t.Errorf("subscriber view %d: %v vs %v", i, got[1].Probabilities[i], v.Probability())
		}
	}
	cancel()
	if err := s.SetProb(0, 0.8); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Error("cancelled subscriber still notified")
	}
}

func TestRegisterViewRejectsPinnedDecomposition(t *testing.T) {
	s, _ := chainStore(t, 3)
	g := gen.RSTChain(3, 0.5).Inst.GaifmanGraph(nil)
	joint := treedec.Decompose(g, treedec.MinDegree)
	if _, err := s.RegisterView(rel.HardQuery(), core.Options{Joint: joint}); err == nil {
		t.Error("pinned decomposition accepted")
	}
}

// TestConcurrentReadersDuringCommits runs probability readers against a
// committing writer; under -race this is the memory-safety check for the
// single-writer/shared-reader contract.
func TestConcurrentReadersDuringCommits(t *testing.T) {
	s, views := chainStore(t, 12)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, v := range views {
					p := v.Probability()
					if p < 0 || p > 1 {
						t.Errorf("probability %v out of range", p)
						return
					}
					_ = v.Shape()
				}
				_ = s.Stats()
			}
		}()
	}
	r := rand.New(rand.NewSource(7))
	for step := 0; step < 150; step++ {
		switch r.Intn(3) {
		case 0:
			if err := s.SetProb(r.Intn(s.Len()), r.Float64()); err != nil {
				t.Error(err)
			}
		case 1:
			i := r.Intn(12)
			f := rel.NewFact("S", fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1))
			if _, err := s.Insert(f, r.Float64()); err != nil {
				t.Error(err)
			}
		case 2:
			if _, err := s.Insert(rel.NewFact("R", fmt.Sprintf("x%d", r.Intn(4))), r.Float64()); err != nil {
				t.Error(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	checkViews(t, s, views, "after concurrent run")
}

// TestShardRoutingAndLocality checks the tentpole property of the sharded
// store: disjoint components get independent shards, an update dirties only
// its owning shard's spine, and cross-shard combination is exact — including
// for a disconnected query whose matches span shards.
func TestShardRoutingAndLocality(t *testing.T) {
	const chains, n = 4, 6
	s, err := NewStore(gen.RSTChains(chains, n, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	vHard, err := s.RegisterView(rel.HardQuery(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A disconnected query: R and T may come from different components, so
	// a per-shard product of probabilities would be wrong; only the root
	// join combine answers it exactly.
	qCross := rel.NewCQ(rel.NewAtom("R", rel.V("x")), rel.NewAtom("T", rel.V("y")))
	vCross, err := s.RegisterView(qCross, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	views := []*View{vHard, vCross}
	if st := s.Stats(); st.Shards != chains {
		t.Fatalf("store split into %d shards, want %d", st.Shards, chains)
	}
	if got := vHard.Shards(); got != chains {
		t.Fatalf("view serves %d shards, want %d", got, chains)
	}
	checkViews(t, s, views, "initial")

	// A single SetProb recomputes at most (depth+1) tables per view — the
	// dirty shard's spine — no matter how many shards the store holds.
	sh := vHard.Shape()
	for step := 0; step < 8; step++ {
		before := s.Stats().NodesRecomputed
		id := (step * 29) % s.Len()
		if err := s.SetProb(id, 0.3+0.05*float64(step)); err != nil {
			t.Fatal(err)
		}
		recomputed := int(s.Stats().NodesRecomputed - before)
		if limit := (sh.Depth + 1) * len(views); recomputed > limit {
			t.Fatalf("step %d: SetProb recomputed %d tables, dirty-shard bound is %d", step, recomputed, limit)
		}
		checkViews(t, s, views, fmt.Sprintf("set step %d", step))
	}

	// Inserts route to the owning shard; a cross-chain link merges two
	// components via one rebuild and the shard count drops.
	if _, err := s.Insert(rel.NewFact("T", "g2v3"), 0.7); err != nil {
		t.Fatal(err)
	}
	checkViews(t, s, views, "after routed insert")
	if st := s.Stats(); st.Rebuilds != 0 {
		t.Fatalf("routed insert caused %d rebuilds", st.Rebuilds)
	}
	if _, err := s.Insert(rel.NewFact("S", "g0v1", "g1v1"), 0.5); err != nil {
		t.Fatal(err)
	}
	checkViews(t, s, views, "after merging insert")
	st := s.Stats()
	if st.Rebuilds != 1 {
		t.Fatalf("merging insert used %d rebuilds, want 1", st.Rebuilds)
	}
	if st.Shards != chains-1 {
		t.Fatalf("after merge the store holds %d shards, want %d", st.Shards, chains-1)
	}
}

// TestSubscribeReentrant is the regression test for the callback-under-lock
// bug: subscribers used to run while the commit held the store's write lock,
// so any callback that re-entered the store deadlocked. Callbacks now run
// after unlock and may freely read the store — and even commit further
// updates, which are delivered in order.
func TestSubscribeReentrant(t *testing.T) {
	s, views := chainStore(t, 4)
	var seqs []uint64
	var probs []float64
	nested := false
	cancel := s.Subscribe(func(c Commit) {
		// Re-entrant reads: every one of these blocked forever before the fix.
		if p, err := s.Prob(0); err != nil || p < 0 {
			t.Errorf("re-entrant Prob: %v %v", p, err)
		}
		if !s.Live(0) {
			t.Error("re-entrant Live went false")
		}
		_ = s.Stats()
		probs = append(probs, views[0].Probability())
		seqs = append(seqs, c.Seq)
		// A subscriber may even commit a further update from its callback;
		// the nested commit's notification is delivered after this one.
		if !nested {
			nested = true
			if err := s.SetProb(1, 0.9); err != nil {
				t.Errorf("re-entrant SetProb: %v", err)
			}
		}
	})
	defer cancel()
	if err := s.SetProb(0, 0.25); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("delivered commits %v, want [1 2] in order", seqs)
	}
	if probs[1] != views[0].Probability() {
		t.Errorf("second delivery saw a stale probability")
	}
	checkViews(t, s, views, "after re-entrant subscriber")
}

// TestSameKeyChurnBatches drives Delete(k)→Insert(k) and Insert(k)→Delete(k)
// pairs of the same fact through single batches — including across a
// tombstone-compacting rebuild — and asserts every view equals the full
// re-Prepare oracle after each commit.
func TestSameKeyChurnBatches(t *testing.T) {
	s, views := chainStore(t, 3)
	id := s.IDOf(rel.NewFact("S", "v1", "v2"))
	f, err := s.Fact(id)
	if err != nil {
		t.Fatal(err)
	}

	// delete → insert in one batch: the fact survives at the new weight.
	if err := s.ApplyBatch([]Update{{Op: OpDelete, ID: id}, {Op: OpInsert, Fact: f, P: 0.9}}); err != nil {
		t.Fatal(err)
	}
	if !s.Live(id) {
		t.Fatal("delete→insert left the fact dead")
	}
	if p, _ := s.Prob(id); p != 0.9 {
		t.Fatalf("delete→insert weight %v, want 0.9", p)
	}
	if st := s.Stats(); st.Tombstones != 0 {
		t.Fatalf("delete→insert left %d tombstones", st.Tombstones)
	}
	checkViews(t, s, views, "after delete→insert")

	// insert → delete in one batch: ends tombstoned.
	if err := s.ApplyBatch([]Update{{Op: OpInsert, Fact: f, P: 0.4}, {Op: OpDelete, ID: id}}); err != nil {
		t.Fatal(err)
	}
	if s.Live(id) {
		t.Fatal("insert→delete left the fact live")
	}
	checkViews(t, s, views, "after insert→delete")

	// Compact the tombstone with a re-shard, then churn the same key again:
	// the insert re-attaches the compacted fact, the delete tombstones the
	// fresh attachment, the final insert revives it.
	if _, err := s.Insert(rel.NewFact("S", "v0", "zzz"), 0.5); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Rebuilds != 1 || st.Tombstones != 0 {
		t.Fatalf("stats after compacting rebuild: %+v", st)
	}
	if err := s.ApplyBatch([]Update{
		{Op: OpInsert, Fact: f, P: 0.7},
		{Op: OpDelete, ID: id},
		{Op: OpInsert, Fact: f, P: 0.2},
	}); err != nil {
		t.Fatal(err)
	}
	if !s.Live(id) {
		t.Fatal("churn across compaction left the fact dead")
	}
	if p, _ := s.Prob(id); p != 0.2 {
		t.Fatalf("churn weight %v, want 0.2", p)
	}
	checkViews(t, s, views, "after churn across compaction")

	// Randomized property: same-key pairs in both orders, any starting state.
	r := rand.New(rand.NewSource(5))
	for step := 0; step < 25; step++ {
		id := r.Intn(s.Len())
		f, err := s.Fact(id)
		if err != nil {
			t.Fatal(err)
		}
		pr := float64(1+r.Intn(9)) / 10
		var us []Update
		if s.Live(id) && r.Intn(2) == 0 {
			us = []Update{{Op: OpDelete, ID: id}, {Op: OpInsert, Fact: f, P: pr}}
		} else {
			us = []Update{{Op: OpInsert, Fact: f, P: pr}, {Op: OpDelete, ID: id}}
		}
		if err := s.ApplyBatch(us); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkViews(t, s, views, fmt.Sprintf("churn step %d", step))
	}
}

// TestBatchAttachThenOpenShard is the regression test for a combiner-staleness
// bug: a single batch that first attaches a fact to an existing shard
// (changing that shard's root state sets) and then opens a fresh singleton
// shard used to compile the new cross-shard fold from the stale pre-attach
// tables, poisoning the store with a mass-drift error at commit.
func TestBatchAttachThenOpenShard(t *testing.T) {
	tid := pdb.NewTID()
	tid.AddFact(0.5, "R", "a")
	tid.AddFact(0.8, "S", "a", "b")
	s, err := NewStore(tid)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.RegisterView(rel.HardQuery(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = s.ApplyBatch([]Update{
		{Op: OpInsert, Fact: rel.NewFact("T", "b"), P: 0.9},  // attaches: completes a match
		{Op: OpInsert, Fact: rel.NewFact("R", "zz"), P: 0.4}, // opens a singleton shard
	})
	if err != nil {
		t.Fatalf("legal batch broke the store: %v", err)
	}
	checkViews(t, s, []*View{v}, "after attach+open batch")
	if st := s.Stats(); st.Attached != 1 || st.NewShards != 1 || st.Rebuilds != 0 {
		t.Errorf("stats = %+v, want 1 attach, 1 new shard, 0 rebuilds", st)
	}
	// The reverse order in one batch must hold too.
	err = s.ApplyBatch([]Update{
		{Op: OpInsert, Fact: rel.NewFact("T", "zz"), P: 0.3}, // attaches to the singleton shard
		{Op: OpInsert, Fact: rel.NewFact("S", "a", "c"), P: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkViews(t, s, []*View{v}, "after second batch")
}

// TestSubscribeCancelBarrier: once cancel() returns, the callback must never
// run again — even when a commit snapshotted its subscribers before the
// cancellation, and even when the callback is mid-flight on another
// goroutine when cancel is called. Run under -race in CI.
func TestSubscribeCancelBarrier(t *testing.T) {
	s, _ := chainStore(t, 4)
	for round := 0; round < 20; round++ {
		var dead atomic.Bool // set by the canceller after cancel returns
		started := make(chan struct{}, 64)
		var fired atomic.Int64
		cancel := s.Subscribe(func(c Commit) {
			select {
			case started <- struct{}{}:
			default:
			}
			if dead.Load() {
				t.Error("callback invoked after cancel returned")
			}
			fired.Add(1)
		})

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := s.SetProb(i%s.Len(), float64(i%10+1)/10); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			<-started // let at least one delivery race with the cancel
			cancel()
			dead.Store(true)
		}()
		wg.Wait()
		// Post-cancel commits must not reach the callback either.
		before := fired.Load()
		if err := s.SetProb(0, 0.42); err != nil {
			t.Fatal(err)
		}
		if fired.Load() != before {
			t.Fatal("cancelled subscriber still notified by a later commit")
		}
	}
}

// TestSubscribeSelfCancel: a callback cancelling its own subscription does
// not deadlock, and the subscription never fires again.
func TestSubscribeSelfCancel(t *testing.T) {
	s, _ := chainStore(t, 4)
	var calls int
	var cancel func()
	cancel = s.Subscribe(func(c Commit) {
		calls++
		cancel()
	})
	if err := s.SetProb(0, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := s.SetProb(1, 0.6); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times, want exactly 1 (self-cancelled)", calls)
	}
}

// TestSubscribeCancelIdempotent: double cancel and cancel-after-commit are
// safe; concurrent cancels of distinct subscribers don't interfere.
func TestSubscribeCancelIdempotent(t *testing.T) {
	s, _ := chainStore(t, 4)
	var aCalls, bCalls int
	cancelA := s.Subscribe(func(Commit) { aCalls++ })
	cancelB := s.Subscribe(func(Commit) { bCalls++ })
	if err := s.SetProb(0, 0.2); err != nil {
		t.Fatal(err)
	}
	cancelA()
	cancelA()
	if err := s.SetProb(1, 0.8); err != nil {
		t.Fatal(err)
	}
	cancelB()
	if aCalls != 1 || bCalls != 2 {
		t.Fatalf("calls = %d/%d, want 1/2", aCalls, bCalls)
	}
}

// TestCommitCarriesViews: notifications identify the view behind each
// probability, surviving unregistration-induced index shifts.
func TestCommitCarriesViews(t *testing.T) {
	s, views := chainStore(t, 4)
	var last Commit
	cancel := s.Subscribe(func(c Commit) { last = c })
	defer cancel()
	if err := s.SetProb(0, 0.25); err != nil {
		t.Fatal(err)
	}
	if len(last.Views) != 2 || last.Views[0] != views[0] || last.Views[1] != views[1] {
		t.Fatalf("commit views %v do not match registration", last.Views)
	}
	s.UnregisterView(views[0])
	if s.NumViews() != 1 {
		t.Fatalf("NumViews = %d after unregister, want 1", s.NumViews())
	}
	if err := s.SetProb(1, 0.75); err != nil {
		t.Fatal(err)
	}
	if len(last.Views) != 1 || last.Views[0] != views[1] {
		t.Fatalf("commit views after unregister = %v, want just the second view", last.Views)
	}
	want, err := s.Oracle(views[1].Query())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(last.Probabilities[0]-want) > tol {
		t.Fatalf("surviving view probability %v, oracle %v", last.Probabilities[0], want)
	}
	// Unregistering twice (or an unknown view) is a no-op.
	s.UnregisterView(views[0])
}

// TestSnapshotDetached: Snapshot returns the live facts with stable ids and
// is unaffected by later commits.
func TestSnapshotDetached(t *testing.T) {
	s, views := chainStore(t, 4)
	if err := s.Delete(0); err != nil {
		t.Fatal(err)
	}
	tid, ids, snapSeq := s.Snapshot()
	if snapSeq != s.Seq() {
		t.Fatalf("snapshot seq %d, store %d", snapSeq, s.Seq())
	}
	if tid.NumFacts() != s.Len()-1 || len(ids) != tid.NumFacts() {
		t.Fatalf("snapshot has %d facts (ids %d), want %d", tid.NumFacts(), len(ids), s.Len()-1)
	}
	for i, id := range ids {
		f, err := s.Fact(id)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Equal(tid.Fact(i)) {
			t.Fatalf("snapshot fact %d = %s, store id %d = %s", i, tid.Fact(i), id, f)
		}
		if id == 0 {
			t.Fatal("tombstoned fact id 0 leaked into the snapshot")
		}
	}
	seqBefore := s.Seq()
	// A frozen plan over the snapshot answers like the live view did at
	// snapshot time, regardless of later commits.
	pl, p, err := core.PrepareShardedTID(tid, views[0].Query(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	atSnap := views[0].Probability()
	if err := s.SetProb(1, 0.9); err != nil {
		t.Fatal(err)
	}
	if s.Seq() != seqBefore+1 {
		t.Fatalf("Seq = %d, want %d", s.Seq(), seqBefore+1)
	}
	got, err := pl.Probability(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-atSnap) > tol {
		t.Fatalf("snapshot plan drifted with the store: %v vs %v", got, atSnap)
	}
}

// TestDeltaShortCircuitAndStats: a batch that nets out to nothing — a fact
// tombstoned and revived at its committed weight in one commit — recomputes
// the staged leaves but propagates no change: every view's Commit.Changed is
// false, the probabilities are bit-identical (the persisted tables were never
// swapped), and the delta counters record the cut spines. A genuine change
// afterwards flips Changed back on.
func TestDeltaShortCircuitAndStats(t *testing.T) {
	s, views := chainStore(t, 12)
	var last Commit
	cancel := s.Subscribe(func(c Commit) { last = c })
	defer cancel()

	before := make([]float64, len(views))
	for i, v := range views {
		before[i] = v.Probability()
	}
	id := 4
	cur, err := s.Prob(id)
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Fact(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyBatch([]Update{{Op: OpDelete, ID: id}, {Op: OpInsert, Fact: f, P: cur}}); err != nil {
		t.Fatal(err)
	}
	if last.AnyChanged() {
		t.Fatalf("net-zero churn reported changed views: %v", last.Changed)
	}
	if len(last.Changed) != len(views) {
		t.Fatalf("Commit.Changed has %d entries for %d views", len(last.Changed), len(views))
	}
	if last.RowsRecomputed == 0 {
		t.Fatal("churn commit recomputed no rows (the delta pass did not run)")
	}
	if last.SpinesShortCircuited == 0 {
		t.Fatal("unchanged tables did not cut any spine")
	}
	for i, v := range views {
		if got := v.Probability(); got != before[i] {
			t.Fatalf("view %d moved on a no-op commit: %v -> %v", i, before[i], got)
		}
	}
	st := s.Stats()
	if st.RowsRecomputed == 0 || st.SpinesShortCircuited == 0 {
		t.Fatalf("cumulative delta stats did not move: %+v", st)
	}
	if !s.Live(id) {
		t.Fatal("revival did not land")
	}

	// A real change propagates: Changed flips on for the touched views and
	// the results still match the oracle.
	nv := 0.9
	if cur == nv {
		nv = 0.3
	}
	if err := s.SetProb(id, nv); err != nil {
		t.Fatal(err)
	}
	if !last.AnyChanged() {
		t.Fatal("genuine probability change reported no changed views")
	}
	checkViews(t, s, views, "after churn then change")
}

// TestDeltaMultiViewBatchesMatchOracle drives shard-major batches (several
// spines per view per commit) through stores carrying three overlapping
// views and cross-checks every commit against the re-Prepare oracle,
// while verifying the per-commit delta payload is internally consistent:
// Changed[i] false implies that view's probability is bit-identical to its
// value before the commit.
func TestDeltaMultiViewBatchesMatchOracle(t *testing.T) {
	s, views := chainStore(t, 10)
	v3, err := s.RegisterView(rel.NewCQ(rel.NewAtom("R", rel.V("x"))), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	views = append(views, v3)
	prev := make([]float64, len(views))
	for i, v := range views {
		prev[i] = v.Probability()
	}
	var last Commit
	cancel := s.Subscribe(func(c Commit) { last = c })
	defer cancel()

	r := rand.New(rand.NewSource(17))
	for step := 0; step < 30; step++ {
		var us []Update
		for k := 0; k < 1+r.Intn(4); k++ {
			id := r.Intn(s.Len())
			if !s.Live(id) {
				continue
			}
			if r.Intn(5) == 0 {
				// occasional net-zero pair to exercise short-circuits mid-batch
				cur, err := s.Prob(id)
				if err != nil {
					t.Fatal(err)
				}
				f, err := s.Fact(id)
				if err != nil {
					t.Fatal(err)
				}
				us = append(us, Update{Op: OpDelete, ID: id}, Update{Op: OpInsert, Fact: f, P: cur})
			} else {
				us = append(us, Update{Op: OpSet, ID: id, P: float64(r.Intn(11)) / 10})
			}
		}
		if len(us) == 0 {
			continue
		}
		if err := s.ApplyBatch(us); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkViews(t, s, views, fmt.Sprintf("delta batch step %d", step))
		for i, v := range views {
			got := v.Probability()
			if i < len(last.Changed) && !last.Changed[i] && got != prev[i] {
				t.Fatalf("step %d view %d: Changed=false but probability moved %v -> %v", step, i, prev[i], got)
			}
			prev[i] = got
		}
	}
	if st := s.Stats(); st.SpinesShortCircuited == 0 {
		t.Fatalf("no spine was ever short-circuited across churn batches: %+v", st)
	}
}
