package incr

// The store's observability hooks: a Metrics bundle of obs handles the
// commit path records into. All recording is atomic and nil-guarded, so a
// store without metrics pays one pointer check per commit and the
// instrumented store pays a few atomic adds inside an already-locked
// critical section — negligible against the spine recompute it measures.

import (
	"repro/internal/obs"
)

// Metrics is the store's metric bundle. Build one with NewMetrics and
// install it with Store.SetMetrics before serving traffic.
type Metrics struct {
	// CommitSeconds is the latency of the commit critical section: staging
	// already done, this is the dirty-spine recompute (or rebuild) plus view
	// recombination — the in-memory cost of a commit, durability excluded
	// (the WAL's own histograms cover the fsync side).
	CommitSeconds *obs.Histogram
	// CommitUpdates is the number of updates carried per commit — the batch
	// amortization the ingest path achieves.
	CommitUpdates *obs.Histogram
	// NodesRecomputed counts DP tables recomputed incrementally across all
	// views (the spine work), and Commits the commits that drove them.
	NodesRecomputed *obs.Counter
	Commits         *obs.Counter
	// RowsRecomputed counts the table rows the delta passes actually touched
	// (a partial recompute touches only the rows a change feeds), and
	// SpinesShortCircuited the recomputed tables that came out unchanged and
	// stopped their spine's propagation early — together the observable
	// economics of delta maintenance.
	RowsRecomputed       *obs.Counter
	SpinesShortCircuited *obs.Counter
	// Routing outcome counters for inserts: absorbed in place by the owning
	// shard, opened a fresh singleton shard, or forced a full rebuild.
	RoutedAttached *obs.Counter
	RoutedNewShard *obs.Counter
	Rebuilds       *obs.Counter
}

// NewMetrics registers the store's metric families on r and returns the
// bundle. Idempotent per registry: two stores sharing one registry share
// the series.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		CommitSeconds: r.Histogram("incr_commit_seconds",
			"latency of the store commit critical section (spine recompute + recombine)",
			obs.LatencyBuckets()),
		CommitUpdates: r.Histogram("incr_commit_updates",
			"updates carried per commit",
			obs.ExpBuckets(1, 2, 16)),
		NodesRecomputed: r.Counter("incr_nodes_recomputed_total",
			"DP tables recomputed incrementally across all views"),
		Commits: r.Counter("incr_commits_total",
			"commits applied to the store"),
		RowsRecomputed: r.Counter("incr_rows_recomputed_total",
			"table rows recomputed by the delta passes across all views"),
		SpinesShortCircuited: r.Counter("incr_spines_shortcircuited_total",
			"recomputed tables that came out unchanged and cut their spine short"),
		RoutedAttached: r.Counter("incr_routed_total",
			"insert routing outcomes", "outcome", "attached"),
		RoutedNewShard: r.Counter("incr_routed_total",
			"insert routing outcomes", "outcome", "new_shard"),
		Rebuilds: r.Counter("incr_routed_total",
			"insert routing outcomes", "outcome", "rebuild"),
	}
}

// SetMetrics installs (or, with nil, removes) the store's metric bundle.
// Install before the store serves traffic; the handles are read inside the
// commit critical section.
func (s *Store) SetMetrics(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = m
}
