package incr

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/rel"

	"repro/internal/core"
)

// TestStoreMetrics drives every routing outcome through an instrumented
// store and checks the obs counters and histograms move in step with the
// store's own Stats.
func TestStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	s, err := NewStore(gen.RSTChain(20, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	s.SetMetrics(m)
	if _, err := s.RegisterView(rel.HardQuery(), core.Options{}); err != nil {
		t.Fatal(err)
	}

	if err := s.SetProb(0, 0.25); err != nil {
		t.Fatal(err)
	}
	// A fact over brand-new constants opens a singleton shard.
	if _, err := s.Insert(rel.NewFact("R", "zz1"), 0.5); err != nil {
		t.Fatal(err)
	}
	// A fact joining an existing constant to a new one forces a rebuild.
	if _, err := s.Insert(rel.NewFact("S", "zz1", "zz2"), 0.5); err != nil {
		t.Fatal(err)
	}
	// A batch: updates-per-commit histogram sees one commit of 3.
	if err := s.ApplyBatch([]Update{
		{Op: OpSet, ID: 0, P: 0.3},
		{Op: OpSet, ID: 1, P: 0.4},
		{Op: OpDelete, ID: 2},
	}); err != nil {
		t.Fatal(err)
	}

	// Net-zero churn: tombstone + revive at the committed weight moves the
	// delta counters (rows recomputed, spines cut) without changing results.
	cur, err := s.Prob(5)
	if err != nil {
		t.Fatal(err)
	}
	f5, err := s.Fact(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyBatch([]Update{
		{Op: OpDelete, ID: 5},
		{Op: OpInsert, Fact: f5, P: cur},
	}); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if got := m.Commits.Value(); got != st.Commits {
		t.Fatalf("Commits counter = %d, store says %d", got, st.Commits)
	}
	if got := m.Rebuilds.Value(); got != st.Rebuilds || got == 0 {
		t.Fatalf("Rebuilds counter = %d, store says %d (want nonzero)", got, st.Rebuilds)
	}
	if got := m.RoutedNewShard.Value(); got != st.NewShards || got == 0 {
		t.Fatalf("NewShards counter = %d, store says %d (want nonzero)", got, st.NewShards)
	}
	if got := m.NodesRecomputed.Value(); got != st.NodesRecomputed || got == 0 {
		t.Fatalf("NodesRecomputed counter = %d, store says %d (want nonzero)", got, st.NodesRecomputed)
	}
	if got := m.RowsRecomputed.Value(); got != st.RowsRecomputed || got == 0 {
		t.Fatalf("RowsRecomputed counter = %d, store says %d (want nonzero)", got, st.RowsRecomputed)
	}
	if got := m.SpinesShortCircuited.Value(); got != st.SpinesShortCircuited || got == 0 {
		t.Fatalf("SpinesShortCircuited counter = %d, store says %d (want nonzero)", got, st.SpinesShortCircuited)
	}
	cs := m.CommitSeconds.Snapshot()
	if cs.Count != st.Commits {
		t.Fatalf("CommitSeconds count = %d, want %d", cs.Count, st.Commits)
	}
	if cs.Sum <= 0 {
		t.Fatalf("CommitSeconds sum = %v, want > 0", cs.Sum)
	}
	cu := m.CommitUpdates.Snapshot()
	if cu.Count != st.Commits {
		t.Fatalf("CommitUpdates count = %d, want %d", cu.Count, st.Commits)
	}
	// The batch commit carried 3 updates; the max quantile must reach it.
	if q := cu.Quantile(1.0); q < 3 {
		t.Fatalf("CommitUpdates max quantile = %v, want >= 3", q)
	}
}

// TestStoreMetricsAttached exercises the absorbed-in-place routing path.
func TestStoreMetricsAttached(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	s, err := NewStore(gen.RSTChain(20, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	s.SetMetrics(m)
	if _, err := s.RegisterView(rel.HardQuery(), core.Options{}); err != nil {
		t.Fatal(err)
	}
	// Re-inserting a known fact's relation over existing constants of one
	// shard attaches in place (chain facts R(i), S(i,i+1), T(i) share
	// component constants).
	if _, err := s.Insert(rel.NewFact("R", "c0"), 0.5); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if got := m.RoutedAttached.Value(); got != st.Attached {
		t.Fatalf("Attached counter = %d, store says %d", got, st.Attached)
	}
}
