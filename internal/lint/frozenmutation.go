package lint

// frozenmutation enforces the freeze contract that makes lock-free
// concurrent serving sound: once a Plan / ShardedPlan is frozen, evaluation
// must be write-free on the plan itself — all mutable state lives in pooled
// per-evaluation scratch. A field write smuggled onto the evaluation path in
// a refactor is a data race the type system cannot see (and -race only
// catches if a test happens to exercise two goroutines through the new
// write).
//
// The analysis is directive-driven so it survives refactors of the types
// themselves:
//   - types marked //pdblint:frozen are the sealed plan types;
//   - methods marked //pdblint:frozenentry are the concurrent evaluation
//     entry points (Probability, Result, ProbabilityBatch, ...);
//   - the static same-package call closure of the entry points is computed,
//     and every assignment (including map-index writes and += / ++) whose
//     left side selects a field of a frozen type is reported — unless the
//     containing function is marked //pdblint:mutates, the annotation for
//     the two legal write classes: lazily-filled transition caches guarded
//     by missUnlessUnfrozen (unfrozen single-goroutine evaluation only) and
//     pool/arena bookkeeping that never aliases plan fields.
//
// Writes hidden behind methods of non-frozen field types (interners, pools)
// are out of scope; the directive on those helpers' callers plus the race
// detector cover that residue.

import (
	"go/ast"
	"go/types"
)

// FrozenMutation is the analyzer instance.
var FrozenMutation = &Analyzer{
	Name: "frozenmutation",
	Doc:  "no writes to //pdblint:frozen type fields on the frozen evaluation path",
	Run:  runFrozenMutation,
}

func runFrozenMutation(pass *Pass) error {
	frozen := frozenTypes(pass)
	if len(frozen) == 0 {
		return nil
	}
	idx := indexFuncs(pass)

	// Entry points and the allowlist.
	var entries []*types.Func
	mutates := map[*types.Func]bool{}
	for obj, decl := range idx {
		if _, ok := FuncDirective(decl, "frozenentry"); ok {
			entries = append(entries, obj)
		}
		if _, ok := FuncDirective(decl, "mutates"); ok {
			mutates[obj] = true
		}
	}
	if len(entries) == 0 {
		return nil
	}

	// Static same-package call closure from the entry points.
	reachable := map[*types.Func]*types.Func{} // function -> entry it is reachable from
	var queue []*types.Func
	for _, e := range entries {
		reachable[e] = e
		queue = append(queue, e)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		decl := idx[fn]
		if decl == nil {
			continue
		}
		entry := reachable[fn]
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			if _, seen := reachable[callee]; !seen {
				reachable[callee] = entry
				queue = append(queue, callee)
			}
			return true
		})
	}

	// Report frozen-field writes in the closure.
	for fn, entry := range reachable {
		if mutates[fn] {
			continue
		}
		decl := idx[fn]
		if decl == nil {
			continue
		}
		report := func(lhs ast.Expr) {
			field, owner, ok := frozenFieldWrite(pass, frozen, lhs)
			if !ok {
				return
			}
			pass.Reportf(lhs.Pos(),
				"write to %s field %s in %s, reachable from frozen evaluation entry %s (mark the function //pdblint:mutates if this is a guarded pre-freeze or pooled path)",
				owner, field, fn.Name(), entry.Name())
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // runs under its own caller's discipline
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					report(lhs)
				}
			case *ast.IncDecStmt:
				report(n.X)
			}
			return true
		})
	}
	return nil
}

// frozenTypes collects the named types marked //pdblint:frozen.
func frozenTypes(pass *Pass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declDirs := directives(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				dirs := append(append([]Directive{}, declDirs...), directives(ts.Doc, ts.Comment)...)
				for _, d := range dirs {
					if d.Name == "frozen" {
						if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
							out[tn] = true
						}
					}
				}
			}
		}
	}
	return out
}

// frozenFieldWrite reports whether lhs writes through a field of a frozen
// type: it strips index/star/paren wrappers and checks every field
// selection in the chain (so pl.setTrans[k] = v, pl.sets.buf = b and
// *pl.x = v all count).
func frozenFieldWrite(pass *Pass, frozen map[*types.TypeName]bool, lhs ast.Expr) (field, owner string, ok bool) {
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, found := pass.TypesInfo.Selections[x]; found && sel.Kind() == types.FieldVal {
				recv := sel.Recv()
				if ptr, isPtr := recv.(*types.Pointer); isPtr {
					recv = ptr.Elem()
				}
				if named, isNamed := recv.(*types.Named); isNamed && frozen[named.Obj()] {
					return x.Sel.Name, named.Obj().Name(), true
				}
			}
			e = x.X
		default:
			return "", "", false
		}
	}
}
