package lint

// Shared syntax/type helpers: resolving call targets, indexing a package's
// function declarations, and rendering lock expressions — used by the
// lockcallback and frozenmutation analyzers, both of which reason over the
// package's static call graph.

import (
	"go/ast"
	"go/types"
)

// funcIndex maps a package's *types.Func objects to their declarations, so
// static calls can be chased into bodies within the package.
type funcIndex map[*types.Func]*ast.FuncDecl

// indexFuncs builds the declaration index over the pass's files.
func indexFuncs(pass *Pass) funcIndex {
	idx := funcIndex{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				idx[obj] = fd
			}
		}
	}
	return idx
}

// staticCallee resolves the *types.Func a call statically dispatches to:
// package-level functions, methods called through a concrete receiver, and
// imported functions. It returns nil for calls of function values (the
// dynamic calls lockcallback exists to find), interface method calls, and
// type conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil // field of function type: a dynamic call
			}
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			if types.IsInterface(recvType(fn)) {
				return nil // dynamic dispatch; opaque to the call graph
			}
			return fn
		}
		// Package-qualified: pkg.Fn(...).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// recvType returns the receiver's type (nil for non-methods).
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// isConversion reports whether a CallExpr is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// isBuiltinCall reports whether a call targets a builtin (append, len, ...).
func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return true
		}
	}
	return false
}

// dynamicCall reports whether call invokes a function value — a variable,
// parameter, struct field or map/slice element of function type — rather
// than a statically known function. These are the calls that can re-enter
// arbitrary code (subscriber callbacks, hooks, onEvict handlers).
func dynamicCall(info *types.Info, call *ast.CallExpr) bool {
	if isConversion(info, call) || isBuiltinCall(info, call) {
		return false
	}
	fun := ast.Unparen(call.Fun)
	tv, ok := info.Types[fun]
	if !ok {
		return false
	}
	if _, isSig := tv.Type.Underlying().(*types.Signature); !isSig {
		return false
	}
	switch f := fun.(type) {
	case *ast.Ident:
		_, isFunc := info.Uses[f].(*types.Func)
		return !isFunc
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			return sel.Kind() == types.FieldVal
		}
		// Package-qualified selector: pkg.Fn is static, pkg.Var dynamic.
		_, isFunc := info.Uses[f.Sel].(*types.Func)
		return !isFunc
	case *ast.FuncLit:
		// Immediately-invoked literal: the body runs right here; the walkers
		// descend into it instead of flagging the call itself.
		return false
	default:
		// Call of a call result, index expression, type assertion, ...:
		// a function value of unknown provenance.
		return true
	}
}

// pkgPathOf returns the import path of the package a function belongs to
// ("" for builtins and error.Error-style universe methods).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// exprKey renders an expression as a stable string key ("s.mu") for lock
// identity tracking and diagnostics.
func exprKey(e ast.Expr) string {
	return types.ExprString(e)
}
