package lint

// hotpath enforces the allocation- and formatting-free discipline of the
// kernel layer on functions marked //pdblint:hotpath: the lane-block
// kernels, the compiled row program and the batch DP are called once per DP
// row per evaluation, so a stray fmt call, string concatenation or closure
// allocation silently costs the ~4× lane speedup the PR 6 benchmarks
// established.
//
// In a marked body the analyzer reports:
//   - any call into package fmt (including Sprintf / Errorf);
//   - string concatenation (+ / += on string operands);
//   - function literals (closure allocation);
//   - map iteration (range over a map), unless the directive carries
//     -maprange — the sparse map-keyed DP tables are hot by design.
//
// The directive argument `boundshint` additionally requires the body to keep
// at least one `_ = s[i]` statement — the bounds-check-elimination hint the
// kernels rely on for branch-free inner loops; deleting the hint in a
// refactor is a silent performance regression the compiler will not report.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath is the analyzer instance.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "ban fmt, string concat, closures and map iteration in //pdblint:hotpath bodies",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			dir, marked := FuncDirective(fd, "hotpath")
			if !marked {
				continue
			}
			wantBoundsHint, allowMapRange := false, false
			for _, arg := range dir.Args {
				switch arg {
				case "boundshint":
					wantBoundsHint = true
				case "-maprange":
					allowMapRange = true
				}
			}
			checkHotBody(pass, fd, allowMapRange)
			if wantBoundsHint && !hasBoundsHint(fd.Body) {
				pass.Reportf(fd.Name.Pos(),
					"hotpath function %s declares boundshint but its body has no `_ = s[i]` bounds-check hint", fd.Name.Name)
			}
		}
	}
	return nil
}

// checkHotBody walks a marked body reporting banned constructs.
func checkHotBody(pass *Pass, fd *ast.FuncDecl, allowMapRange bool) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocation in hotpath function %s", fd.Name.Name)
			return false
		case *ast.CallExpr:
			if fn := staticCallee(info, n); fn != nil && pkgPathOf(fn) == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s call in hotpath function %s", fn.Name(), fd.Name.Name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n.X) {
				pass.Reportf(n.OpPos, "string concatenation in hotpath function %s", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(info, n.Lhs[0]) {
				pass.Reportf(n.TokPos, "string concatenation in hotpath function %s", fd.Name.Name)
			}
		case *ast.RangeStmt:
			if !allowMapRange {
				if tv, ok := info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.For, "map iteration in hotpath function %s (add -maprange to the directive if the table is map-keyed by design)", fd.Name.Name)
					}
				}
			}
		}
		return true
	})
}

// isStringExpr reports whether e has string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, isBasic := tv.Type.Underlying().(*types.Basic)
	return isBasic && basic.Info()&types.IsString != 0
}

// hasBoundsHint reports whether the body contains a `_ = s[i]` statement —
// an assignment of an index expression to the blank identifier.
func hasBoundsHint(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, isIdent := as.Lhs[0].(*ast.Ident)
		if !isIdent || id.Name != "_" {
			return true
		}
		if _, isIndex := ast.Unparen(as.Rhs[0]).(*ast.IndexExpr); isIndex {
			found = true
		}
		return true
	})
	return found
}
