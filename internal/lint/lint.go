// Package lint is pdblint's analysis framework and analyzer suite: custom
// static checks that machine-enforce the invariants this codebase's
// correctness rests on but the compiler cannot see — subscriber callbacks
// never run under the incr.Store lock (the PR 4 deadlock class), obs metric
// labels stay fixed enums (the PR 8 cardinality rule), hot-path kernels stay
// allocation- and fmt-free with their bounds-check-elimination hints intact,
// frozen plans stay write-free so lock-free serving is sound, and internal
// packages log through slog instead of fmt/log prints.
//
// The Analyzer/Pass API deliberately mirrors golang.org/x/tools/go/analysis
// so each checker reads like a standard vet analyzer and porting onto the
// real framework is mechanical; the build environment is hermetic (no module
// downloads), so the few dozen lines of driver scaffolding live here instead
// of in an external dependency. cmd/pdblint is the multichecker: it speaks
// the `go vet -vettool` unitchecker protocol, so the suite runs over the
// whole tree — test files included — with the go command doing package
// loading and caching.
//
// # Directives
//
// Analyzers are steered by machine-readable comments (same style as
// //go:build):
//
//	//pdblint:hotpath [boundshint] [-maprange]   on a function: ban fmt calls,
//	    string concatenation, closure allocation and map iteration in the
//	    body; `boundshint` additionally requires a `_ = s[n]` bounds-check
//	    hint statement; `-maprange` permits map iteration (for sparse
//	    map-keyed DP tables that are hot by design).
//	//pdblint:frozen          on a type: its fields are sealed on the frozen
//	    evaluation path.
//	//pdblint:frozenentry     on a method: an entry point of the frozen
//	    (concurrent, lock-free) evaluation path.
//	//pdblint:mutates [why]   on a function: may write frozen-type fields
//	    (guarded cache fill, pool/arena management).
//	//pdblint:labelenum       on a package-level var: a fixed enum of metric
//	    label values; ranging over it yields legal label strings.
//	//pdblint:allow <analyzer> [why]   suppress that analyzer's diagnostics
//	    on this line (trailing comment) or the next line (standalone
//	    comment). Every use should carry a why.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check: a name (used in diagnostics and allow
// directives), a one-line contract statement, and the per-package Run.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's syntax and type information through an
// analyzer, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
	// allowed[file:line] holds the analyzer names suppressed on that line
	// via //pdblint:allow directives.
	allowed map[fileLine]map[string]bool
}

// fileLine keys suppression per file, not per raw line number — packages
// have many files and line numbers collide across them.
type fileLine struct {
	file string
	line int
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a diagnostic unless an //pdblint:allow directive covers
// its line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(pos) {
		return
	}
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Allowed reports whether an //pdblint:allow directive for the running
// analyzer covers the line of pos.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.allowed == nil {
		return false
	}
	pp := p.Fset.Position(pos)
	return p.allowed[fileLine{pp.Filename, pp.Line}][p.Analyzer.Name]
}

// Run executes one analyzer over one type-checked package and returns its
// diagnostics sorted by position.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		allowed:   allowLines(fset, files),
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.Slice(pass.diags, func(i, j int) bool { return pass.diags[i].Pos < pass.diags[j].Pos })
	return pass.diags, nil
}

// NewInfo returns a types.Info with every map an analyzer needs populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// --- directives ---

// Directive is one parsed //pdblint:<name> [args...] comment.
type Directive struct {
	Name string
	Args []string
	Pos  token.Pos
}

// parseDirective parses a single comment into a directive, if it is one.
func parseDirective(c *ast.Comment) (Directive, bool) {
	const prefix = "//pdblint:"
	if !strings.HasPrefix(c.Text, prefix) {
		return Directive{}, false
	}
	fields := strings.Fields(c.Text[len(prefix):])
	if len(fields) == 0 {
		return Directive{}, false
	}
	return Directive{Name: fields[0], Args: fields[1:], Pos: c.Pos()}, true
}

// directives extracts the pdblint directives from a comment group.
func directives(groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if d, ok := parseDirective(c); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// FuncDirective returns the named directive from a function's doc comment.
func FuncDirective(decl *ast.FuncDecl, name string) (Directive, bool) {
	for _, d := range directives(decl.Doc) {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// allowLines indexes every //pdblint:allow directive: a trailing comment
// suppresses its own line, a standalone comment suppresses the next line
// (both are recorded — over-approximating by one line keeps the scan
// position-free).
func allowLines(fset *token.FileSet, files []*ast.File) map[fileLine]map[string]bool {
	out := map[fileLine]map[string]bool{}
	add := func(k fileLine, analyzer string) {
		m := out[k]
		if m == nil {
			m = map[string]bool{}
			out[k] = m
		}
		m[analyzer] = true
	}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := parseDirective(c)
				if !ok || d.Name != "allow" || len(d.Args) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				add(fileLine{pos.Filename, pos.Line}, d.Args[0])
				add(fileLine{pos.Filename, pos.Line + 1}, d.Args[0])
			}
		}
	}
	return out
}
