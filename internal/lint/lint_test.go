package lint_test

// Per-analyzer golden tests over internal/lint/testdata/src: each package
// carries at least one flagged and one clean case; pr4regress re-introduces
// the PR 4 subscriber-under-lock deadlock and asserts pdblint reports it.

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestLockCallback(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.LockCallback, "lockcallback")
}

// TestLockCallbackPR4Regression: the exact ApplyBatch-notifies-under-lock
// shape PR 4 fixed must be caught statically.
func TestLockCallbackPR4Regression(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.LockCallback, "pr4regress")
}

func TestObsLabels(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.ObsLabels, "obslabels")
}

func TestHotPath(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.HotPath, "hotpath")
}

func TestFrozenMutation(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.FrozenMutation, "frozenmutation")
}

func TestSlogOnly(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.SlogOnly, "slogonly")
}

// TestSuiteScoping pins the driver-side package filters: the lock contract
// is scoped to the store and server, slogonly to internal packages, and
// vet's test-package decorations normalize away.
func TestSuiteScoping(t *testing.T) {
	match := map[string]func(string) bool{}
	for _, s := range lint.Suite() {
		match[s.Analyzer.Name] = s.Match
	}
	cases := []struct {
		analyzer, pkg string
		want          bool
	}{
		{"lockcallback", "repro/internal/incr", true},
		{"lockcallback", "repro/internal/server", true},
		{"lockcallback", "repro/internal/core", false},
		{"slogonly", "repro/internal/wal", true},
		{"slogonly", "repro/cmd/pdbd", false},
		{"hotpath", "repro/internal/core/kernel", true},
		{"frozenmutation", "repro/internal/core", true},
		{"obslabels", "repro/internal/server", true},
	}
	for _, c := range cases {
		if got := match[c.analyzer](c.pkg); got != c.want {
			t.Errorf("%s.Match(%q) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
	norm := map[string]string{
		"repro/internal/server [repro/internal/server.test]": "repro/internal/server",
		"repro/internal/server_test":                         "repro/internal/server",
		"repro/internal/incr":                                "repro/internal/incr",
	}
	for in, want := range norm {
		if got := lint.NormalizePkgPath(in); got != want {
			t.Errorf("NormalizePkgPath(%q) = %q, want %q", in, got, want)
		}
	}
}
