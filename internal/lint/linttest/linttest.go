// Package linttest is pdblint's analysistest analogue: it loads golden
// packages from a testdata/src GOPATH-style layout, type-checks them against
// the standard library (and sibling testdata packages), runs one analyzer,
// and matches the diagnostics against `// want "regexp"` comments — at least
// one flagged and one clean case per analyzer live under
// internal/lint/testdata/src.
//
// Stdlib dependencies are resolved with the source importer (go/importer
// "source" mode), so the harness needs no compiled export data and no
// network; imports among testdata packages resolve by directory, exactly
// like a GOPATH.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// shared across loads: one fileset and one (slow to warm) source importer.
var (
	fset    = token.NewFileSet()
	srcOnce sync.Once
	srcImp  types.Importer

	mu     sync.Mutex
	loaded = map[string]*pkgData{} // cache keyed by srcRoot + "\x00" + path
)

func sourceImporter() types.Importer {
	srcOnce.Do(func() { srcImp = importer.ForCompiler(fset, "source", nil) })
	return srcImp
}

// pkgData is one loaded testdata package.
type pkgData struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	err   error
}

// testdataImporter resolves imports locally first (testdata/src/<path>),
// then from the standard library.
type testdataImporter struct {
	srcRoot string
}

func (im *testdataImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(im.srcRoot, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		d := load(im.srcRoot, path)
		if d.err != nil {
			return nil, d.err
		}
		return d.pkg, nil
	}
	return sourceImporter().Import(path)
}

// load parses and type-checks testdata/src/<path>, caching the result.
func load(srcRoot, path string) *pkgData {
	mu.Lock()
	key := srcRoot + "\x00" + path
	if d, ok := loaded[key]; ok {
		mu.Unlock()
		return d
	}
	d := &pkgData{}
	loaded[key] = d
	mu.Unlock()

	dir := filepath.Join(srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		d.err = err
		return d
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			d.err = err
			return d
		}
		d.files = append(d.files, f)
	}
	if len(d.files) == 0 {
		d.err = fmt.Errorf("linttest: no Go files in %s", dir)
		return d
	}
	d.info = lint.NewInfo()
	conf := types.Config{Importer: &testdataImporter{srcRoot: srcRoot}}
	d.pkg, d.err = conf.Check(path, fset, d.files, d.info)
	return d
}

// expectation is one `// want` pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// wants extracts the `// want "p1" "p2"` expectations from the files.
func wants(t *testing.T, files []*ast.File) []*expectation {
	var out []*expectation
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[i+len("// want "):], -1) {
					raw := m[1]
					if m[2] != "" || raw == "" {
						unq, err := strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s:%d: bad want string: %v", pos.Filename, pos.Line, err)
						}
						raw = unq
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}

// Run loads testdata/src/<path> for each path, runs the analyzer, and
// asserts the diagnostics match the `// want` comments exactly: every
// diagnostic must match a want on its line, and every want must be hit.
func Run(t *testing.T, srcRoot string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		d := load(srcRoot, path)
		if d.err != nil {
			t.Fatalf("loading %s: %v", path, d.err)
		}
		diags, err := lint.Run(a, fset, d.files, d.pkg, d.info)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		exp := wants(t, d.files)
		for _, diag := range diags {
			pos := fset.Position(diag.Pos)
			found := false
			for _, e := range exp {
				if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.pattern.MatchString(diag.Message) {
					e.matched = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, pos.Filename, pos.Line, diag.Message)
			}
		}
		for _, e := range exp {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", a.Name, e.pattern, e.file, e.line)
			}
		}
	}
}
