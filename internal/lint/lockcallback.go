package lint

// lockcallback enforces the PR 4 re-entrancy contract: while a sync.Mutex /
// sync.RWMutex is held, code must not invoke function values (subscriber
// callbacks, commit hooks, eviction handlers), perform blocking channel
// operations, or call a same-package function that does either. A callback
// invoked under the store lock can re-enter the store and deadlock — the
// exact bug PR 4 fixed by moving subscriber delivery outside the lock.
//
// The analysis is a per-function abstract interpretation of the held-lock
// set (tracking mu.Lock/RLock/TryLock/Unlock/RUnlock and `defer
// mu.Unlock()`), plus one interprocedural level: a fixpoint marks functions
// that perform an unsafe operation while their own lock set is empty
// ("dirty" — safe to call, but only outside critical sections), and any call
// to a dirty function while a lock is held is reported with the root cause.
//
// Non-blocking channel use (select with a default clause) is legal under a
// lock; blocking sends, receives and default-less selects are not. Calls to
// named local closures (`find := func(...)`, declared in the same body) are
// exempt: they are reviewed-in-place code, not externally-supplied callbacks.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCallback is the analyzer instance.
var LockCallback = &Analyzer{
	Name: "lockcallback",
	Doc:  "flag callback invocations and blocking channel ops while a mutex is held",
	Run:  runLockCallback,
}

// lockSet maps a lock's expression key ("s.mu") to its acquisition site.
type lockSet map[string]token.Pos

func (ls lockSet) clone() lockSet {
	out := make(lockSet, len(ls))
	for k, v := range ls {
		out[k] = v
	}
	return out
}

// anyLock returns an arbitrary (key, pos) of the held set for diagnostics.
func (ls lockSet) anyLock() (string, token.Pos) {
	for k, v := range ls {
		return k, v
	}
	return "", token.NoPos
}

// unsafeOp is a dynamic call or blocking channel operation.
type unsafeOp struct {
	pos  token.Pos
	what string
}

// lcCall records a static same-package call and the lock set at the site.
type lcCall struct {
	callee *types.Func
	pos    token.Pos
	locks  lockSet // nil or empty when no lock is held
}

// lcViolation is an unsafe op performed while a lock was held.
type lcViolation struct {
	op      unsafeOp
	lockKey string
	lockPos token.Pos
}

// lcFacts is one function's summary.
type lcFacts struct {
	decl        *ast.FuncDecl
	unlockedOps []unsafeOp // candidate dirtiness: unsafe, but no lock held here
	calls       []lcCall
	violations  []lcViolation
}

func runLockCallback(pass *Pass) error {
	idx := indexFuncs(pass)
	facts := map[*types.Func]*lcFacts{}
	for obj, decl := range idx {
		w := &lcWalker{pass: pass, facts: &lcFacts{decl: decl}, body: decl.Body}
		w.stmt(decl.Body, lockSet{})
		facts[obj] = w.facts
	}

	// Direct violations.
	for _, f := range facts {
		for _, v := range f.violations {
			pass.Reportf(v.op.pos, "%s while holding %s (locked at %s)",
				v.op.what, v.lockKey, pass.Fset.Position(v.lockPos))
		}
	}

	// Fixpoint: a function is dirty when it performs an unsafe op with no
	// lock of its own held, or calls a dirty function with no lock held —
	// either way, calling it inside a critical section is a deadlock risk.
	cause := map[*types.Func]unsafeOp{}
	for obj, f := range facts {
		for _, op := range f.unlockedOps {
			if !pass.Allowed(op.pos) {
				cause[obj] = op
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, f := range facts {
			if _, dirty := cause[obj]; dirty {
				continue
			}
			for _, c := range f.calls {
				if len(c.locks) != 0 {
					continue
				}
				if root, dirty := cause[c.callee]; dirty && !pass.Allowed(c.pos) {
					cause[obj] = root
					changed = true
					break
				}
			}
		}
	}

	// Calls to dirty functions under a held lock.
	for _, f := range facts {
		for _, c := range f.calls {
			if len(c.locks) == 0 {
				continue
			}
			root, dirty := cause[c.callee]
			if !dirty {
				continue
			}
			key, lockPos := c.locks.anyLock()
			pass.Reportf(c.pos, "call to %s while holding %s (locked at %s): it reaches a %s at %s",
				c.callee.Name(), key, pass.Fset.Position(lockPos),
				root.what, pass.Fset.Position(root.pos))
		}
	}
	return nil
}

// --- the statement walker ---

type lcWalker struct {
	pass  *Pass
	facts *lcFacts
	body  *ast.BlockStmt // the enclosing FuncDecl's body, for localClosure
}

// localClosure reports whether a called function value is a variable declared
// inside the enclosing function's body — a named local closure (`find :=
// func(...)`). Those are visible, reviewed-in-place code, not the
// externally-supplied callbacks (struct fields, parameters) the re-entrancy
// contract is about; parameters declare outside the body and stay flagged.
func (w *lcWalker) localClosure(fun ast.Expr) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || w.body == nil {
		return false
	}
	obj := w.pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	return obj.Pos() >= w.body.Pos() && obj.Pos() < w.body.End()
}

// unsafe records an unsafe op under the current lock set.
func (w *lcWalker) unsafe(pos token.Pos, what string, st lockSet) {
	if len(st) == 0 {
		w.facts.unlockedOps = append(w.facts.unlockedOps, unsafeOp{pos: pos, what: what})
		return
	}
	key, lockPos := st.anyLock()
	w.facts.violations = append(w.facts.violations,
		lcViolation{op: unsafeOp{pos: pos, what: what}, lockKey: key, lockPos: lockPos})
}

// mutexOp classifies a call as a sync.Mutex/RWMutex method, returning the
// lock's expression key and the method name.
func (w *lcWalker) mutexOp(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, found := w.pass.TypesInfo.Selections[sel]
	if !found || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	fn, _ := selection.Obj().(*types.Func)
	if fn == nil || pkgPathOf(fn) != "sync" {
		return "", "", false
	}
	recv := recvType(fn)
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		return exprKey(sel.X), fn.Name(), true
	}
	return "", "", false
}

// tryLockCond matches `mu.TryLock()` / `!mu.TryLock()` conditions.
func (w *lcWalker) tryLockCond(cond ast.Expr) (key string, negated bool, pos token.Pos, ok bool) {
	e := ast.Unparen(cond)
	if un, isNot := e.(*ast.UnaryExpr); isNot && un.Op == token.NOT {
		e = ast.Unparen(un.X)
		negated = true
	}
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, token.NoPos, false
	}
	k, method, isMu := w.mutexOp(call)
	if !isMu || (method != "TryLock" && method != "TryRLock") {
		return "", false, token.NoPos, false
	}
	return k, negated, call.Pos(), true
}

// scan inspects an expression tree for unsafe operations and static calls
// under the lock set st. Function literal bodies are skipped (they run
// later, under whatever lock state their caller has) unless immediately
// invoked, in which case the body executes here and is scanned.
func (w *lcWalker) scan(e ast.Expr, st lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // scanned only via immediate invocation below
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.unsafe(n.Pos(), "blocking channel receive", st)
			}
		case *ast.CallExpr:
			if _, _, isMu := w.mutexOp(n); isMu {
				// Lock state transitions are handled at statement level;
				// a mutex call nested in an expression is not a callback.
				return true
			}
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				w.scan2(lit.Body, st) // immediately-invoked literal
				for _, a := range n.Args {
					w.scan(a, st)
				}
				return false
			}
			if dynamicCall(w.pass.TypesInfo, n) {
				if !w.localClosure(n.Fun) {
					w.unsafe(n.Pos(), "call of function value "+exprKey(n.Fun), st)
				}
			} else if callee := staticCallee(w.pass.TypesInfo, n); callee != nil && callee.Pkg() == w.pass.Pkg {
				w.facts.calls = append(w.facts.calls, lcCall{callee: callee, pos: n.Pos(), locks: st.clone()})
			}
		}
		return true
	})
}

// scan2 scans a block reached from expression context (immediately-invoked
// function literals), reusing the statement walker.
func (w *lcWalker) scan2(b *ast.BlockStmt, st lockSet) {
	w.stmt(b, st.clone())
}

// stmt interprets one statement, returning the lock set after it and
// whether control definitely leaves the enclosing block (return / break /
// continue / goto), which excludes the branch from joins.
func (w *lcWalker) stmt(s ast.Stmt, st lockSet) (lockSet, bool) {
	switch s := s.(type) {
	case nil:
		return st, false

	case *ast.BlockStmt:
		for _, sub := range s.List {
			var term bool
			st, term = w.stmt(sub, st)
			if term {
				return st, true
			}
		}
		return st, false

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, method, isMu := w.mutexOp(call); isMu {
				switch method {
				case "Lock", "RLock":
					st[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(st, key)
				}
				for _, a := range call.Args {
					w.scan(a, st)
				}
				return st, false
			}
		}
		w.scan(s.X, st)
		return st, false

	case *ast.SendStmt:
		w.unsafe(s.Arrow, "blocking channel send", st)
		w.scan(s.Chan, st)
		w.scan(s.Value, st)
		return st, false

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e, st)
		}
		for _, e := range s.Lhs {
			w.scan(e, st)
		}
		return st, false

	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held to function end, which is
		// exactly what not releasing it in the abstract state models. Other
		// deferred calls run at return, outside this walk; only their
		// argument expressions evaluate here.
		if _, method, isMu := w.mutexOp(s.Call); isMu && (method == "Unlock" || method == "RUnlock") {
			return st, false
		}
		for _, a := range s.Call.Args {
			w.scan(a, st)
		}
		return st, false

	case *ast.GoStmt:
		// The goroutine does not inherit the caller's critical section;
		// only the argument expressions evaluate synchronously.
		for _, a := range s.Call.Args {
			w.scan(a, st)
		}
		return st, false

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		thenSt, elseSt := st.clone(), st.clone()
		if key, negated, pos, isTry := w.tryLockCond(s.Cond); isTry {
			// `if mu.TryLock()` holds in the then-branch; `if !mu.TryLock()`
			// holds on the else/fall-through path.
			if negated {
				elseSt[key] = pos
			} else {
				thenSt[key] = pos
			}
		} else {
			w.scan(s.Cond, st)
		}
		thenOut, thenTerm := w.stmt(s.Body, thenSt)
		elseOut, elseTerm := elseSt, false
		if s.Else != nil {
			elseOut, elseTerm = w.stmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return thenOut, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return joinLocks(thenOut, elseOut), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.scan(s.Cond, st)
		w.stmt(s.Body, st.clone())
		if s.Post != nil {
			w.stmt(s.Post, st.clone())
		}
		return st, false // loop bodies are assumed lock-balanced

	case *ast.RangeStmt:
		w.scan(s.X, st)
		w.stmt(s.Body, st.clone())
		return st, false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var body *ast.BlockStmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, body = sw.Init, sw.Body
			w.scan(sw.Tag, st)
		case *ast.TypeSwitchStmt:
			init, body = sw.Init, sw.Body
		}
		if init != nil {
			st, _ = w.stmt(init, st)
		}
		out := st
		for _, c := range body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.scan(e, st)
			}
			caseSt := st.clone()
			for _, sub := range cc.Body {
				var term bool
				caseSt, term = w.stmt(sub, caseSt)
				if term {
					caseSt = nil
					break
				}
			}
			if caseSt != nil {
				out = joinLocks(out, caseSt)
			}
		}
		return out, false

	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.unsafe(s.Pos(), "blocking select", st)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			caseSt := st.clone()
			for _, sub := range cc.Body {
				var term bool
				caseSt, term = w.stmt(sub, caseSt)
				if term {
					break
				}
			}
		}
		return st, false

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e, st)
		}
		return st, true

	case *ast.BranchStmt:
		return st, true

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.IncDecStmt:
		w.scan(s.X, st)
		return st, false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scan(v, st)
					}
				}
			}
		}
		return st, false

	default:
		return st, false
	}
}

// joinLocks unions two lock states (conservative: a lock held on either
// path is treated as held after the join).
func joinLocks(a, b lockSet) lockSet {
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}
