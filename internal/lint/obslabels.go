package lint

// obslabels enforces the PR 8 cardinality contract: label values handed to
// the obs metrics registry (Registry.Counter / Gauge / GaugeFunc /
// Histogram) must be compile-time constants or members of a declared enum —
// never variables derived from requests (query fingerprints, paths, user
// strings), which would mint unbounded Prometheus series.
//
// A label argument is legal when it is:
//   - a compile-time constant (string literal, named const, constant expr);
//   - the key/value variable of a `range` over a package-level var marked
//     //pdblint:labelenum (a declared enum slice such as the endpoint list),
//     or an index expression into such a var;
//   - strconv.Itoa / strconv.FormatInt / strconv.FormatUint applied to a
//     legal value (rendering a declared numeric enum, e.g. status codes).
//
// Everything else — parameters, struct fields, function results, string
// concatenations — is reported.

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsLabels is the analyzer instance.
var ObsLabels = &Analyzer{
	Name: "obslabels",
	Doc:  "metric label values must be constants or declared enum members",
	Run:  runObsLabels,
}

func runObsLabels(pass *Pass) error {
	enumVars := labelEnumVars(pass)

	for _, file := range pass.Files {
		// Range variables drawing from enum-marked vars are legal label
		// sources within their loops; collect their objects file-wide.
		enumRangeVars := map[types.Object]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isEnumExpr(pass, enumVars, rs.X) {
				return true
			}
			for _, v := range []ast.Expr{rs.Key, rs.Value} {
				if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						enumRangeVars[obj] = true
					}
				}
			}
			return true
		})

		legal := func(arg ast.Expr) bool {
			var ok func(e ast.Expr) bool
			ok = func(e ast.Expr) bool {
				e = ast.Unparen(e)
				if tv, found := pass.TypesInfo.Types[e]; found && tv.Value != nil {
					return true // compile-time constant
				}
				switch e := e.(type) {
				case *ast.Ident:
					return enumRangeVars[pass.TypesInfo.Uses[e]]
				case *ast.IndexExpr:
					return isEnumExpr(pass, enumVars, e.X)
				case *ast.CallExpr:
					fn := staticCallee(pass.TypesInfo, e)
					if fn == nil || pkgPathOf(fn) != "strconv" {
						return false
					}
					switch fn.Name() {
					case "Itoa", "FormatInt", "FormatUint":
						return len(e.Args) >= 1 && ok(e.Args[0])
					}
					return false
				}
				return false
			}
			return ok(arg)
		}

		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			labelStart, isReg := registryCall(pass, call)
			if !isReg {
				return true
			}
			if call.Ellipsis.IsValid() {
				// labels passed as a spread slice: only a declared enum var
				// itself is acceptable.
				last := call.Args[len(call.Args)-1]
				if !isEnumExpr(pass, enumVars, last) {
					pass.Reportf(last.Pos(),
						"metric labels spread from %s, which is not a //pdblint:labelenum var", exprKey(last))
				}
				return true
			}
			for i := labelStart; i < len(call.Args); i++ {
				arg := call.Args[i]
				if !legal(arg) {
					pass.Reportf(arg.Pos(),
						"metric label argument %s is not a constant or declared enum member (request-derived label values are unbounded-cardinality)",
						exprKey(arg))
				}
			}
			return true
		})
	}
	return nil
}

// registryCall reports whether call is an obs.Registry registration method
// and returns the index of the first variadic label argument.
func registryCall(pass *Pass, call *ast.CallExpr) (labelStart int, ok bool) {
	fn := staticCallee(pass.TypesInfo, call)
	if fn == nil {
		return 0, false
	}
	path := pkgPathOf(fn)
	if path != "obs" && !strings.HasSuffix(path, "/obs") {
		return 0, false
	}
	recv := recvType(fn)
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Name() != "Registry" {
		return 0, false
	}
	switch fn.Name() {
	case "Counter", "Gauge":
		return 2, true // (name, help, labels...)
	case "GaugeFunc", "Histogram":
		return 3, true // (name, help, fn|bounds, labels...)
	}
	return 0, false
}

// labelEnumVars collects the package-level vars marked //pdblint:labelenum.
func labelEnumVars(pass *Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declDirs := directives(gd.Doc)
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				dirs := append(append([]Directive{}, declDirs...), directives(vs.Doc, vs.Comment)...)
				marked := false
				for _, d := range dirs {
					if d.Name == "labelenum" {
						marked = true
					}
				}
				if !marked {
					continue
				}
				for _, name := range vs.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
	}
	return out
}

// isEnumExpr reports whether e refers to an enum-marked package var.
func isEnumExpr(pass *Pass, enumVars map[types.Object]bool, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return enumVars[pass.TypesInfo.Uses[id]]
}
