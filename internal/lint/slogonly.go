package lint

// slogonly enforces the PR 8 logging contract in internal packages: all
// diagnostics go through log/slog with structured attributes (machine-
// parseable, leveled, redirectable), never fmt.Print* / log.Print* to
// ambient stdout/stderr. A raw print inside a library package bypasses the
// server's log configuration and interleaves with the slow-query log.
//
// Reported: calls to fmt.Print/Printf/Println, the printing functions of
// the legacy log package's default logger (Print*, Fatal*, Panic*), and the
// print/println builtins. Writer-directed formatting (fmt.Fprintf,
// fmt.Sprintf, log.New with an explicit writer) is fine. Example functions
// in _test.go files are exempt — their printed output IS the test contract.

import (
	"go/ast"
	"strings"
)

// SlogOnly is the analyzer instance.
var SlogOnly = &Analyzer{
	Name: "slogonly",
	Doc:  "no fmt.Print*/log.Print* in internal packages; use log/slog",
	Run:  runSlogOnly,
}

// bannedPrinters maps package path to the banned function names.
var bannedPrinters = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

func runSlogOnly(pass *Pass) error {
	for _, file := range pass.Files {
		isTestFile := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isTestFile && strings.HasPrefix(fd.Name.Name, "Example") {
				continue // the printed output is the Example's contract
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
					if id.Name == "print" || id.Name == "println" {
						if isBuiltinCall(pass.TypesInfo, call) {
							pass.Reportf(call.Pos(), "builtin %s in internal package; use log/slog", id.Name)
						}
					}
					return true
				}
				fn := staticCallee(pass.TypesInfo, call)
				if fn == nil {
					return true
				}
				if banned, ok := bannedPrinters[pkgPathOf(fn)]; ok && banned[fn.Name()] {
					pass.Reportf(call.Pos(), "%s.%s in internal package; use log/slog with structured attrs",
						pkgPathOf(fn), fn.Name())
				}
				return true
			})
		}
	}
	return nil
}
