package lint

// The pdblint suite: which analyzer runs over which packages. Scoping lives
// here (in the driver layer), not in the analyzers, so the analysistest
// harness can exercise each analyzer on synthetic packages with arbitrary
// import paths.

import "strings"

// Scoped pairs an analyzer with the package filter the pdblint driver
// applies.
type Scoped struct {
	Analyzer *Analyzer
	// Match reports whether the analyzer runs over the package with this
	// import path (already normalized: vet's " [test]" suffix and the
	// external-test "_test" suffix are stripped).
	Match func(pkgPath string) bool
}

// Suite returns the pdblint analyzer suite in reporting order.
func Suite() []Scoped {
	all := func(string) bool { return true }
	return []Scoped{
		// The re-entrancy contract is owned by the store and the server on
		// top of it — the packages where callbacks, hooks and watch streams
		// meet the commit lock.
		{LockCallback, func(p string) bool {
			return strings.HasPrefix(p, "repro/internal/incr") || strings.HasPrefix(p, "repro/internal/server")
		}},
		{ObsLabels, all},      // self-limits to obs.Registry call sites
		{HotPath, all},        // directive-gated
		{FrozenMutation, all}, // directive-gated
		{SlogOnly, func(p string) bool { return strings.Contains(p, "internal/") }},
	}
}

// NormalizePkgPath strips the decorations the go command adds to test
// package paths: "repro/internal/server [repro/internal/server.test]" and
// "repro/internal/server_test" both scope like "repro/internal/server".
func NormalizePkgPath(p string) string {
	if i := strings.Index(p, " ["); i >= 0 {
		p = p[:i]
	}
	p = strings.TrimSuffix(p, "_test")
	p = strings.TrimSuffix(p, ".test")
	return p
}
