// Golden cases for the frozenmutation analyzer: writes to frozen plan
// fields on the evaluation-path call closure are flagged; guarded
// //pdblint:mutates paths and build-time code are not.
package frozenmutation

// Plan is a miniature frozen plan: a transition cache, scratch, and a
// counter someone might be tempted to bump during evaluation.
//
//pdblint:frozen
type Plan struct {
	cache map[int]int
	buf   []int
	calls int
}

// Probability is the concurrent evaluation entry point.
//
//pdblint:frozenentry
func (p *Plan) Probability() float64 {
	p.calls++ // want `write to Plan field calls in Probability`
	return p.evalRoot()
}

// evalRoot is reachable from the entry, so its cache write is a data race
// on a frozen plan.
func (p *Plan) evalRoot() float64 {
	p.cache[1] = 2 // want `write to Plan field cache in evalRoot`
	p.fill(3, 4)
	return 0
}

// fill is the guarded cache-fill path (missUnlessUnfrozen shape) — marked,
// so its write is legal.
//
//pdblint:mutates cache fill guarded by the unfrozen check
func (p *Plan) fill(k, v int) {
	p.cache[k] = v
}

// Build is not reachable from any frozenentry, so construction-time writes
// are unrestricted.
func (p *Plan) Build() {
	p.buf = append(p.buf, 1)
	p.cache = map[int]int{}
}
