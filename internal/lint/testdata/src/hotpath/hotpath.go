// Golden cases for the hotpath analyzer: marked bodies must stay free of
// fmt, string concatenation, closures and map iteration, and keep their
// bounds-check-elimination hints.
package hotpath

import "fmt"

// AddTo is the clean kernel shape: bounds hint present, pure slice
// arithmetic.
//
//pdblint:hotpath boundshint
func AddTo(dst, src []float64) {
	_ = src[len(dst)-1]
	for i := range dst {
		dst[i] += src[i]
	}
}

// MissingHint deleted its bounds hint — the silent 4×-regression refactor.
//
//pdblint:hotpath boundshint
func MissingHint(dst, src []float64) { // want `declares boundshint but its body has no`
	for i := range dst {
		dst[i] += src[i]
	}
}

// Slow commits every banned construct.
//
//pdblint:hotpath
func Slow(xs []float64, label string) float64 {
	fmt.Println(label) // want `fmt\.Println call in hotpath function Slow`
	s := "x" + label   // want `string concatenation in hotpath function Slow`
	s += label         // want `string concatenation in hotpath function Slow`
	_ = s
	f := func() float64 { return 1 } // want `closure allocation in hotpath function Slow`
	m := map[int]float64{}
	var t float64
	for _, v := range m { // want `map iteration in hotpath function Slow`
		t += v
	}
	return t + f() + xs[0]
}

// Scatter iterates a map by design — the sparse-table exemption.
//
//pdblint:hotpath -maprange
func Scatter(dst []float64, src map[int]float64) {
	for i, v := range src {
		dst[i] = v
	}
}

// Free is unmarked: no restrictions apply.
func Free(label string) string { return "x" + label }
