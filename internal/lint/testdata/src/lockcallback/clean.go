// Golden clean cases: the lock-discipline shapes the real store uses after
// the PR 4 fix. None of these may be flagged.
package lockcallback

// NotifyUnlocked snapshots under the lock and delivers outside it — the
// PR 4 fix shape.
func (s *Store) NotifyUnlocked(c Commit) {
	s.mu.Lock()
	subs := append([]*subscriber(nil), s.subs...)
	s.mu.Unlock()
	for _, sub := range subs {
		sub.fn(c)
	}
}

// TrySend: non-blocking channel use (select with default) is legal under
// the lock.
func (s *Store) TrySend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
	default:
	}
}

// TryPath: `if !mu.TryLock()` guards the critical section; delivery happens
// after the unlock.
func (s *Store) TryPath() bool {
	if !s.mu.TryLock() {
		return false
	}
	subs := s.subs
	s.mu.Unlock()
	for _, sub := range subs {
		sub.fn(Commit{})
	}
	return true
}

// Async: a goroutine launched under the lock does not inherit the critical
// section.
func (s *Store) Async(c Commit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.deliver(c)
}

// HookedCommit invokes a hook under the lock by documented contract — the
// allow directive records the exception (the commit-hook pattern).
func (s *Store) HookedCommit(hook func(Commit)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hook(Commit{}) //pdblint:allow lockcallback the hook contract forbids re-entering the store
}

// BranchBalanced: a conditional early unlock on one path; delivery runs
// only on the unlocked path.
func (s *Store) BranchBalanced(c Commit, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		s.deliver(c)
		return
	}
	s.subs = nil
	s.mu.Unlock()
}

// LocalClosure: a named closure declared in the same body is reviewed-in-place
// code, not an externally-supplied callback — calling it under the lock is
// legal (the real store's union-find helper shape).
func (s *Store) LocalClosure() int {
	find := func(x int) int { return x }
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for i := range s.subs {
		total += find(i)
	}
	return total
}
