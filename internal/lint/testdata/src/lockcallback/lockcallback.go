// Golden flagged cases for the lockcallback analyzer: function-value calls,
// blocking channel operations and dirty-helper calls inside mutex critical
// sections.
package lockcallback

import "sync"

type Commit struct{ Seq uint64 }

type subscriber struct{ fn func(Commit) }

type Store struct {
	mu   sync.Mutex
	subs []*subscriber
	ch   chan int
}

// NotifyLocked invokes subscriber callbacks while the lock is held — the
// direct form of the PR 4 deadlock.
func (s *Store) NotifyLocked(c Commit) {
	s.mu.Lock()
	for _, sub := range s.subs {
		sub.fn(c) // want `call of function value sub\.fn while holding s\.mu`
	}
	s.mu.Unlock()
}

// DeferSend: a deferred unlock keeps the critical section open to function
// end, so the send blocks under the lock.
func (s *Store) DeferSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `blocking channel send while holding s\.mu`
}

// WaitLocked blocks on a default-less select under the lock.
func (s *Store) WaitLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while holding s\.mu`
	case <-s.ch:
	}
}

// RecvLocked blocks on a bare receive under the lock.
func (s *Store) RecvLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `blocking channel receive while holding s\.mu`
}

// deliver is safe on its own — but only outside a critical section.
func (s *Store) deliver(c Commit) {
	for _, sub := range s.subs {
		sub.fn(c)
	}
}

// Commit calls the dirty helper while holding the lock — the
// interprocedural form the PR 4 bug actually shipped in.
func (s *Store) Commit(c Commit) {
	s.mu.Lock()
	s.deliver(c) // want `call to deliver while holding s\.mu`
	s.mu.Unlock()
}
