// Package obs is a miniature of repro/internal/obs for the obslabels golden
// tests: the same registration API shape (name, help, [extra], labels...),
// so the analyzer resolves label positions identically.
package obs

type Counter struct{ n uint64 }

func (c *Counter) Inc() { c.n++ }

type Gauge struct{ v int64 }

type Histogram struct{ sum float64 }

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help string, labels ...string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, help string, labels ...string) *Gauge { return &Gauge{} }

func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {}

func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return &Histogram{}
}
