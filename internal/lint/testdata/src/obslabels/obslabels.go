// Golden cases for the obslabels analyzer: constant and declared-enum label
// values pass; request-derived strings are flagged.
package obslabels

import (
	"strconv"

	"obs"
)

const epQuery = "query"

//pdblint:labelenum
var endpoints = []string{epQuery, "batch", "update"}

//pdblint:labelenum
var statusCodes = []int{200, 400, 500}

// notEnum lacks the labelenum directive, so ranging over it does not
// launder its elements into label values.
var notEnum = []string{"a", "b"}

// wire is the legal registration shape: constants, enum ranges, and
// strconv over a numeric enum.
func wire(r *obs.Registry) {
	r.Counter("requests_total", "requests", "endpoint", epQuery)
	r.Gauge("depth", "queue depth")
	r.GaugeFunc("seq", "commit seq", func() float64 { return 0 }, "endpoint", "query")
	r.Histogram("lat_seconds", "latency", nil, "endpoint", endpoints[0])
	for _, ep := range endpoints {
		r.Counter("requests_total", "requests", "endpoint", ep)
		for _, code := range statusCodes {
			r.Counter("responses_total", "responses", "endpoint", ep, "code", strconv.Itoa(code))
		}
	}
}

// bad demonstrates every flagged shape: request-derived values, derived
// locals, and ranges over unmarked vars.
func bad(r *obs.Registry, fingerprint string) {
	r.Counter("bad_total", "bad", "fp", fingerprint) // want `label argument fingerprint is not a constant`
	q := "q_" + fingerprint
	r.Histogram("lat_seconds", "latency", nil, "query", q) // want `label argument q is not a constant`
	for _, v := range notEnum {
		r.Counter("x_total", "x", "k", v) // want `label argument v is not a constant`
	}
	labels := []string{"endpoint", fingerprint}
	r.Counter("y_total", "y", labels...) // want `labels spread from labels`
}
