// Package pr4regress re-introduces the PR 4 subscriber-under-lock deadlock
// in the exact shape it shipped: ApplyBatch holds the store's write lock
// (via a deferred unlock) while a notify helper invokes subscriber
// callbacks. Before pdblint, this was only caught when a subscriber that
// re-entered the store deadlocked a test under -race; the analyzer must
// report it statically.
package pr4regress

import "sync"

type Commit struct{ Seq uint64 }

type subscriber struct{ fn func(Commit) }

type Store struct {
	mu   sync.RWMutex
	seq  uint64
	subs []*subscriber
}

// notify delivers the commit to every subscriber. Safe — unless a caller
// still holds the store lock.
func (s *Store) notify(c Commit) {
	for _, sub := range s.subs {
		sub.fn(c)
	}
}

// ApplyBatch is the buggy pre-PR 4 commit path: notifications delivered
// inside the critical section, so a subscriber that calls back into the
// store (Prob, further updates) deadlocks.
func (s *Store) ApplyBatch() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.notify(Commit{Seq: s.seq}) // want `call to notify while holding s\.mu`
	return nil
}
