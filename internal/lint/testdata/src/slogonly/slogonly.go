// Golden cases for the slogonly analyzer: ambient prints are flagged,
// slog and writer-directed formatting are not.
package slogonly

import (
	"fmt"
	"log"
	"log/slog"
	"os"
)

// report uses every banned print form.
func report(err error) {
	fmt.Println("failed:", err)   // want `fmt\.Println in internal package`
	fmt.Printf("failed: %v", err) // want `fmt\.Printf in internal package`
	log.Printf("failed: %v", err) // want `log\.Printf in internal package`
	log.Fatal(err)                // want `log\.Fatal in internal package`
	println("failed")             // want `builtin println in internal package`
}

// ok uses the legal forms: structured slog, explicit writers, and
// formatting that produces values rather than output.
func ok(err error) {
	slog.Error("request failed", "err", err)
	fmt.Fprintf(os.Stderr, "usage: pdbd [flags]\n")
	_ = fmt.Sprintf("%v", err)
	_ = fmt.Errorf("wrapped: %w", err)
}
