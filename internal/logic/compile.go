package logic

import "fmt"

// CompiledFormula is a formula compiled for repeated, allocation-free
// evaluation under bitmask valuations: every variable of the formula is
// mapped, at compile time, to a bit position of a uint64 mask, and Eval
// walks a flat postfix program instead of the formula tree.
//
// This is the per-fact annotation evaluator of the compiled query plans in
// internal/core: the engine resolves each fact's annotation once per table
// row, and the Valuation map that the tree-walking Formula.Eval needs was
// the dominant allocation of the inner loop.
//
// A CompiledFormula is immutable after CompileMask and safe for concurrent
// use: Eval keeps its evaluation stack in a local buffer, so the compiled
// annotation evaluators of a frozen core.Plan can be shared by parallel
// evaluations.
type CompiledFormula struct {
	ops      []compiledOp
	maxDepth int
}

type compiledOp struct {
	kind uint8
	arg  int32 // bit index for opVar; operand count for opAnd/opOr
}

const (
	opConstFalse uint8 = iota
	opConstTrue
	opVar
	opNot
	opAnd
	opOr
)

// CompileMask compiles f for evaluation under bitmask valuations. varBit
// maps every event occurring in f to the index (0..63) of the bit that
// carries its value in the mask passed to Eval. Compilation panics if an
// event of f is missing from varBit or its bit index is out of range; both
// indicate a caller bug.
func CompileMask(f Formula, varBit map[Event]int) *CompiledFormula {
	cf := &CompiledFormula{}
	cf.compile(f, varBit)
	// Record the program's maximum stack depth so Eval can pick a local
	// buffer that never grows.
	depth, max := 0, 0
	for _, op := range cf.ops {
		switch op.kind {
		case opConstFalse, opConstTrue, opVar:
			depth++
		case opAnd, opOr:
			depth -= int(op.arg) - 1
		}
		if depth > max {
			max = depth
		}
	}
	cf.maxDepth = max
	return cf
}

func (cf *CompiledFormula) compile(f Formula, varBit map[Event]int) {
	switch g := f.(type) {
	case constFormula:
		if bool(g) {
			cf.ops = append(cf.ops, compiledOp{kind: opConstTrue})
		} else {
			cf.ops = append(cf.ops, compiledOp{kind: opConstFalse})
		}
	case varFormula:
		bit, ok := varBit[Event(g)]
		if !ok || bit < 0 || bit > 63 {
			panic(fmt.Sprintf("logic: CompileMask has no bit for event %q", Event(g)))
		}
		cf.ops = append(cf.ops, compiledOp{kind: opVar, arg: int32(bit)})
	case notFormula:
		cf.compile(g.f, varBit)
		cf.ops = append(cf.ops, compiledOp{kind: opNot})
	case andFormula:
		for _, sub := range g.fs {
			cf.compile(sub, varBit)
		}
		cf.ops = append(cf.ops, compiledOp{kind: opAnd, arg: int32(len(g.fs))})
	case orFormula:
		for _, sub := range g.fs {
			cf.compile(sub, varBit)
		}
		cf.ops = append(cf.ops, compiledOp{kind: opOr, arg: int32(len(g.fs))})
	default:
		panic("logic: CompileMask on unknown formula type")
	}
}

// evalStackBuf is the stack-allocated evaluation buffer of Eval; annotation
// formulas deeper than this (vanishingly rare) fall back to a heap slice.
const evalStackBuf = 32

// Eval evaluates the compiled formula under the valuation encoded in mask:
// the variable compiled to bit i is true iff bit i of mask is set. Eval does
// not mutate the CompiledFormula and may be called concurrently.
func (cf *CompiledFormula) Eval(mask uint64) bool {
	var buf [evalStackBuf]bool
	st := buf[:0]
	if cf.maxDepth > evalStackBuf {
		st = make([]bool, 0, cf.maxDepth)
	}
	for _, op := range cf.ops {
		switch op.kind {
		case opConstFalse:
			st = append(st, false)
		case opConstTrue:
			st = append(st, true)
		case opVar:
			st = append(st, mask&(1<<uint(op.arg)) != 0)
		case opNot:
			st[len(st)-1] = !st[len(st)-1]
		case opAnd:
			n := int(op.arg)
			v := true
			for _, b := range st[len(st)-n:] {
				if !b {
					v = false
					break
				}
			}
			st = st[:len(st)-n]
			st = append(st, v)
		case opOr:
			n := int(op.arg)
			v := false
			for _, b := range st[len(st)-n:] {
				if b {
					v = true
					break
				}
			}
			st = st[:len(st)-n]
			st = append(st, v)
		}
	}
	return st[0]
}
