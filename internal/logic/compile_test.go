package logic

import (
	"math/rand"
	"testing"
)

func TestCompiledFormulaMatchesEval(t *testing.T) {
	events := []Event{"a", "b", "c", "d"}
	varBit := map[Event]int{}
	for i, e := range events {
		varBit[e] = i
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		f := randomFormula(r, len(events), 10)
		cf := CompileMask(f, varBit)
		for mask := uint64(0); mask < 1<<uint(len(events)); mask++ {
			v := Valuation{}
			for i, e := range events {
				v[e] = mask&(1<<uint(i)) != 0
			}
			if got, want := cf.Eval(mask), f.Eval(v); got != want {
				t.Fatalf("trial %d mask %b: compiled %v, Eval %v (formula %s)",
					trial, mask, got, want, String(f))
			}
		}
	}
}

func TestCompiledFormulaSparseBits(t *testing.T) {
	// Bit positions need not be contiguous: the engine maps annotation
	// events to their positions within the bag's event list.
	f := And(Var("x"), Not(Var("y")))
	cf := CompileMask(f, map[Event]int{"x": 5, "y": 63})
	if !cf.Eval(1 << 5) {
		t.Error("x=1,y=0 should hold")
	}
	if cf.Eval(1<<5 | 1<<63) {
		t.Error("x=1,y=1 should not hold")
	}
	if cf.Eval(0) {
		t.Error("x=0 should not hold")
	}
}

func TestCompileMaskPanicsOnMissingVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unmapped event")
		}
	}()
	CompileMask(Var("zzz"), map[Event]int{})
}
