// Package logic implements Boolean events, valuations, and propositional
// formulas over events. It is the annotation language of c-instances and
// pc-instances (Imielinski–Lipski c-tables with independent event
// probabilities), and the substrate for every exhaustive "possible worlds"
// baseline in this repository.
//
// The probability computations in this package (Shannon expansion, model
// enumeration) are intentionally exponential: they are the baselines that the
// structurally tractable algorithms of internal/core and internal/circuit are
// measured against.
package logic

import (
	"fmt"
	"sort"
)

// Event names a Boolean random variable. Events are the atoms of annotation
// formulas: a valuation of the events picks out one possible world.
type Event string

// Valuation assigns a truth value to each event. Events absent from the map
// are treated as false by Valuation.Get; use Has to distinguish.
type Valuation map[Event]bool

// Get reports the value of e under v, defaulting to false.
func (v Valuation) Get(e Event) bool { return v[e] }

// Has reports whether v assigns a value to e.
func (v Valuation) Has(e Event) bool { _, ok := v[e]; return ok }

// Clone returns an independent copy of v.
func (v Valuation) Clone() Valuation {
	w := make(Valuation, len(v))
	for e, b := range v {
		w[e] = b
	}
	return w
}

// With returns a copy of v with e set to b.
func (v Valuation) With(e Event, b bool) Valuation {
	w := v.Clone()
	w[e] = b
	return w
}

// String renders the valuation deterministically, e.g. "{a=1 b=0}".
func (v Valuation) String() string {
	events := make([]string, 0, len(v))
	for e := range v {
		events = append(events, string(e))
	}
	sort.Strings(events)
	s := "{"
	for i, e := range events {
		if i > 0 {
			s += " "
		}
		val := 0
		if v[Event(e)] {
			val = 1
		}
		s += fmt.Sprintf("%s=%d", e, val)
	}
	return s + "}"
}

// Prob assigns an independent marginal probability to each event. It is the
// probabilistic layer that turns a c-instance into a pc-instance.
type Prob map[Event]float64

// P returns the probability of e, defaulting to 0.5 for unknown events so
// that possibility questions ("is P > 0?") remain meaningful on events the
// caller did not parameterize.
func (p Prob) P(e Event) float64 {
	if pr, ok := p[e]; ok {
		return pr
	}
	return 0.5
}

// Validate returns an error if any probability lies outside [0, 1] or is
// NaN (the negated comparison catches NaN, which every direct comparison
// would wave through).
func (p Prob) Validate() error {
	for e, pr := range p {
		if !(pr >= 0 && pr <= 1) {
			return fmt.Errorf("logic: probability of event %q is %v, outside [0,1]", e, pr)
		}
	}
	return nil
}

// ProbOfValuation returns the probability of drawing exactly the valuation v
// for the listed events under the independent distribution p.
func (p Prob) ProbOfValuation(events []Event, v Valuation) float64 {
	res := 1.0
	for _, e := range events {
		if v.Get(e) {
			res *= p.P(e)
		} else {
			res *= 1 - p.P(e)
		}
	}
	return res
}

// SortEvents sorts a slice of events in place and returns it, for
// deterministic iteration orders throughout the repository.
func SortEvents(events []Event) []Event {
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	return events
}

// EnumerateValuations calls fn with every valuation of the given events,
// in a deterministic order (events sorted, counting in binary). It is the
// 2^n possible-worlds loop used by every exhaustive baseline. fn may keep
// the valuation only for the duration of the call.
func EnumerateValuations(events []Event, fn func(Valuation)) {
	events = SortEvents(append([]Event(nil), events...))
	n := len(events)
	if n > 62 {
		panic(fmt.Sprintf("logic: refusing to enumerate 2^%d valuations", n))
	}
	v := make(Valuation, n)
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		for i, e := range events {
			v[e] = mask&(1<<uint(i)) != 0
		}
		fn(v)
	}
}
