package logic

import (
	"sort"
	"strings"
)

// Formula is a propositional formula over events. Formulas annotate the facts
// of c-instances: a fact is present in the world selected by a valuation v
// iff its annotation evaluates to true under v.
//
// Formulas are immutable; all operations return new formulas.
type Formula interface {
	// Eval returns the truth value of the formula under v.
	Eval(v Valuation) bool
	// collectVars adds every event occurring in the formula to set.
	collectVars(set map[Event]struct{})
	// write renders the formula into sb; prec is the precedence of the
	// enclosing operator, used to decide parenthesization.
	write(sb *strings.Builder, prec int)
}

// Operator precedences for printing (higher binds tighter).
const (
	precOr  = 1
	precAnd = 2
	precNot = 3
)

type constFormula bool

type varFormula Event

type notFormula struct{ f Formula }

type andFormula struct{ fs []Formula }

type orFormula struct{ fs []Formula }

// True is the formula that holds in every world.
var True Formula = constFormula(true)

// False is the formula that holds in no world.
var False Formula = constFormula(false)

// Var returns the formula consisting of the single event e.
func Var(e Event) Formula { return varFormula(e) }

// Not returns the negation of f, simplifying constants and double negation.
func Not(f Formula) Formula {
	switch g := f.(type) {
	case constFormula:
		return constFormula(!bool(g))
	case notFormula:
		return g.f
	}
	return notFormula{f}
}

// And returns the conjunction of fs, flattening nested conjunctions and
// simplifying constants. And() is True.
func And(fs ...Formula) Formula {
	var flat []Formula
	for _, f := range fs {
		switch g := f.(type) {
		case constFormula:
			if !bool(g) {
				return False
			}
		case andFormula:
			flat = append(flat, g.fs...)
		default:
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return True
	case 1:
		return flat[0]
	}
	return andFormula{flat}
}

// Or returns the disjunction of fs, flattening nested disjunctions and
// simplifying constants. Or() is False.
func Or(fs ...Formula) Formula {
	var flat []Formula
	for _, f := range fs {
		switch g := f.(type) {
		case constFormula:
			if bool(g) {
				return True
			}
		case orFormula:
			flat = append(flat, g.fs...)
		default:
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return False
	case 1:
		return flat[0]
	}
	return orFormula{flat}
}

// Implies returns the formula ¬a ∨ b.
func Implies(a, b Formula) Formula { return Or(Not(a), b) }

// Xor returns the formula (a ∧ ¬b) ∨ (¬a ∧ b).
func Xor(a, b Formula) Formula { return Or(And(a, Not(b)), And(Not(a), b)) }

func (c constFormula) Eval(Valuation) bool { return bool(c) }
func (e varFormula) Eval(v Valuation) bool { return v.Get(Event(e)) }
func (n notFormula) Eval(v Valuation) bool { return !n.f.Eval(v) }

func (a andFormula) Eval(v Valuation) bool {
	for _, f := range a.fs {
		if !f.Eval(v) {
			return false
		}
	}
	return true
}

func (o orFormula) Eval(v Valuation) bool {
	for _, f := range o.fs {
		if f.Eval(v) {
			return true
		}
	}
	return false
}

func (constFormula) collectVars(map[Event]struct{}) {}
func (e varFormula) collectVars(set map[Event]struct{}) {
	set[Event(e)] = struct{}{}
}
func (n notFormula) collectVars(set map[Event]struct{}) { n.f.collectVars(set) }
func (a andFormula) collectVars(set map[Event]struct{}) {
	for _, f := range a.fs {
		f.collectVars(set)
	}
}
func (o orFormula) collectVars(set map[Event]struct{}) {
	for _, f := range o.fs {
		f.collectVars(set)
	}
}

// Vars returns the sorted list of events occurring in the formulas.
func Vars(fs ...Formula) []Event {
	set := make(map[Event]struct{})
	for _, f := range fs {
		f.collectVars(set)
	}
	events := make([]Event, 0, len(set))
	for e := range set {
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	return events
}

func (c constFormula) write(sb *strings.Builder, _ int) {
	if bool(c) {
		sb.WriteString("true")
	} else {
		sb.WriteString("false")
	}
}

func (e varFormula) write(sb *strings.Builder, _ int) { sb.WriteString(string(e)) }

func (n notFormula) write(sb *strings.Builder, _ int) {
	sb.WriteString("!")
	n.f.write(sb, precNot)
}

func writeNary(sb *strings.Builder, fs []Formula, op string, myPrec, outerPrec int) {
	paren := myPrec < outerPrec
	if paren {
		sb.WriteString("(")
	}
	for i, f := range fs {
		if i > 0 {
			sb.WriteString(op)
		}
		f.write(sb, myPrec)
	}
	if paren {
		sb.WriteString(")")
	}
}

func (a andFormula) write(sb *strings.Builder, prec int) {
	writeNary(sb, a.fs, " & ", precAnd, prec)
}

func (o orFormula) write(sb *strings.Builder, prec int) {
	writeNary(sb, o.fs, " | ", precOr, prec)
}

// String renders f with & for conjunction, | for disjunction and ! for
// negation, parenthesizing only where precedence requires.
func String(f Formula) string {
	var sb strings.Builder
	f.write(&sb, 0)
	return sb.String()
}

// Restrict returns f with event e fixed to the value b, simplified.
func Restrict(f Formula, e Event, b bool) Formula {
	switch g := f.(type) {
	case constFormula:
		return g
	case varFormula:
		if Event(g) == e {
			return constFormula(b)
		}
		return g
	case notFormula:
		return Not(Restrict(g.f, e, b))
	case andFormula:
		parts := make([]Formula, 0, len(g.fs))
		for _, h := range g.fs {
			parts = append(parts, Restrict(h, e, b))
		}
		return And(parts...)
	case orFormula:
		parts := make([]Formula, 0, len(g.fs))
		for _, h := range g.fs {
			parts = append(parts, Restrict(h, e, b))
		}
		return Or(parts...)
	}
	panic("logic: unknown formula type")
}

// RestrictAll applies every assignment in v to f.
func RestrictAll(f Formula, v Valuation) Formula {
	events := make([]Event, 0, len(v))
	for e := range v {
		events = append(events, e)
	}
	SortEvents(events)
	for _, e := range events {
		f = Restrict(f, e, v[e])
	}
	return f
}

// IsConst reports whether f is a constant, and which one.
func IsConst(f Formula) (value, isConst bool) {
	c, ok := f.(constFormula)
	return bool(c), ok
}

// Probability computes the exact probability that f holds under the
// independent event distribution p, by Shannon expansion on the variables of
// f. This is exponential in the number of distinct events of f and serves as
// the exact baseline for tractable algorithms.
func Probability(f Formula, p Prob) float64 {
	vars := Vars(f)
	return shannonProb(f, vars, p)
}

func shannonProb(f Formula, vars []Event, p Prob) float64 {
	if value, isConst := IsConst(f); isConst {
		if value {
			return 1
		}
		return 0
	}
	// Expand on the first variable still present.
	e := vars[0]
	rest := vars[1:]
	pe := p.P(e)
	res := 0.0
	if pe > 0 {
		res += pe * shannonProb(Restrict(f, e, true), rest, p)
	}
	if pe < 1 {
		res += (1 - pe) * shannonProb(Restrict(f, e, false), rest, p)
	}
	return res
}

// CountModels returns the number of valuations of the formula's own variables
// satisfying f. Exponential in the variable count.
func CountModels(f Formula) uint64 {
	vars := Vars(f)
	if len(vars) > 62 {
		panic("logic: too many variables to count models")
	}
	var count uint64
	EnumerateValuations(vars, func(v Valuation) {
		if f.Eval(v) {
			count++
		}
	})
	return count
}

// Satisfiable reports whether some valuation makes f true (exponential).
func Satisfiable(f Formula) bool {
	vars := Vars(f)
	sat := false
	EnumerateValuations(vars, func(v Valuation) {
		if !sat && f.Eval(v) {
			sat = true
		}
	})
	return sat
}

// Tautology reports whether every valuation makes f true (exponential).
func Tautology(f Formula) bool { return !Satisfiable(Not(f)) }

// Equivalent reports whether f and g agree on every valuation of their
// combined variables (exponential).
func Equivalent(f, g Formula) bool {
	vars := Vars(f, g)
	eq := true
	EnumerateValuations(vars, func(v Valuation) {
		if eq && f.Eval(v) != g.Eval(v) {
			eq = false
		}
	})
	return eq
}

// Literal is an event with a polarity, the building block of event
// conjunctions on PrXML cie nodes and of DNF clauses.
type Literal struct {
	Event   Event
	Negated bool
}

// Formula returns the literal as a Formula.
func (l Literal) Formula() Formula {
	f := Var(l.Event)
	if l.Negated {
		return Not(f)
	}
	return f
}

// String renders the literal, e.g. "x" or "!x".
func (l Literal) String() string {
	if l.Negated {
		return "!" + string(l.Event)
	}
	return string(l.Event)
}

// Conjunction returns the conjunction of the literals, the annotation
// language of cie nodes ("conjunction of independent events").
func Conjunction(lits []Literal) Formula {
	parts := make([]Formula, len(lits))
	for i, l := range lits {
		parts[i] = l.Formula()
	}
	return And(parts...)
}
