package logic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructorsSimplify(t *testing.T) {
	a, b := Var("a"), Var("b")
	cases := []struct {
		name string
		got  Formula
		want Formula
	}{
		{"and-true", And(a, True), a},
		{"and-false", And(a, False, b), False},
		{"or-false", Or(a, False), a},
		{"or-true", Or(a, True, b), True},
		{"empty-and", And(), True},
		{"empty-or", Or(), False},
		{"double-neg", Not(Not(a)), a},
		{"not-true", Not(True), False},
		{"not-false", Not(False), True},
	}
	for _, c := range cases {
		if !Equivalent(c.got, c.want) {
			t.Errorf("%s: %s not equivalent to %s", c.name, String(c.got), String(c.want))
		}
	}
}

func TestEval(t *testing.T) {
	a, b, c := Var("a"), Var("b"), Var("c")
	f := Or(And(a, b), And(Not(a), c))
	tests := []struct {
		v    Valuation
		want bool
	}{
		{Valuation{"a": true, "b": true, "c": false}, true},
		{Valuation{"a": true, "b": false, "c": true}, false},
		{Valuation{"a": false, "b": false, "c": true}, true},
		{Valuation{"a": false, "b": true, "c": false}, false},
	}
	for _, tc := range tests {
		if got := f.Eval(tc.v); got != tc.want {
			t.Errorf("Eval(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestVarsSortedAndDeduplicated(t *testing.T) {
	f := And(Var("z"), Or(Var("a"), Var("z")), Not(Var("m")))
	vars := Vars(f)
	want := []Event{"a", "m", "z"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}

func TestString(t *testing.T) {
	f := Or(And(Var("a"), Not(Var("b"))), Var("c"))
	if got := String(f); got != "a & !b | c" {
		t.Errorf("String = %q", got)
	}
	g := And(Or(Var("a"), Var("b")), Var("c"))
	if got := String(g); got != "(a | b) & c" {
		t.Errorf("String = %q", got)
	}
}

func TestRestrict(t *testing.T) {
	a, b := Var("a"), Var("b")
	f := Or(And(a, b), Not(a))
	if g := Restrict(f, "a", true); !Equivalent(g, b) {
		t.Errorf("Restrict(f, a, true) = %s, want b", String(g))
	}
	if g := Restrict(f, "a", false); !Equivalent(g, True) {
		t.Errorf("Restrict(f, a, false) = %s, want true", String(g))
	}
}

func TestProbabilityKnownValues(t *testing.T) {
	a, b := Var("a"), Var("b")
	p := Prob{"a": 0.3, "b": 0.5}
	cases := []struct {
		f    Formula
		want float64
	}{
		{a, 0.3},
		{Not(a), 0.7},
		{And(a, b), 0.15},
		{Or(a, b), 0.3 + 0.5 - 0.15},
		{Xor(a, b), 0.3*0.5 + 0.7*0.5},
		{True, 1},
		{False, 0},
	}
	for _, c := range cases {
		if got := Probability(c.f, p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P(%s) = %v, want %v", String(c.f), got, c.want)
		}
	}
}

func TestHardQueryLineageProbability(t *testing.T) {
	// Lineage of the intro's query R(x),S(x,y),T(y) on a 2x2 TID with all
	// probabilities 1/2: facts r1,r2,s11,s12,s21,s22,t1,t2.
	lin := Or(
		And(Var("r1"), Var("s11"), Var("t1")),
		And(Var("r1"), Var("s12"), Var("t2")),
		And(Var("r2"), Var("s21"), Var("t1")),
		And(Var("r2"), Var("s22"), Var("t2")),
	)
	p := Prob{}
	for _, e := range Vars(lin) {
		p[e] = 0.5
	}
	want := float64(CountModels(lin)) / math.Pow(2, float64(len(Vars(lin))))
	if got := Probability(lin, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("P = %v, want %v (by model counting)", got, want)
	}
}

// randomFormula builds a random formula over nVars events with the given
// node budget, for property-based tests.
func randomFormula(r *rand.Rand, nVars, budget int) Formula {
	if budget <= 1 {
		switch r.Intn(6) {
		case 0:
			return True
		case 1:
			return False
		default:
			return Var(Event(string(rune('a' + r.Intn(nVars)))))
		}
	}
	switch r.Intn(3) {
	case 0:
		return Not(randomFormula(r, nVars, budget-1))
	case 1:
		return And(randomFormula(r, nVars, budget/2), randomFormula(r, nVars, budget/2))
	default:
		return Or(randomFormula(r, nVars, budget/2), randomFormula(r, nVars, budget/2))
	}
}

func randomValuation(r *rand.Rand, nVars int) Valuation {
	v := Valuation{}
	for i := 0; i < nVars; i++ {
		v[Event(string(rune('a'+i)))] = r.Intn(2) == 0
	}
	return v
}

func TestPropertyDeMorgan(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFormula(r, 4, 8)
		g := randomFormula(r, 4, 8)
		return Equivalent(Not(And(f, g)), Or(Not(f), Not(g))) &&
			Equivalent(Not(Or(f, g)), And(Not(f), Not(g)))
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyRestrictConsistentWithEval(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFormula(r, 4, 10)
		v := randomValuation(r, 4)
		g := RestrictAll(f, v)
		value, isConst := IsConst(g)
		return isConst && value == f.Eval(v)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyShannonMatchesEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFormula(r, 4, 10)
		p := Prob{}
		vars := Vars(f)
		for _, e := range vars {
			p[e] = r.Float64()
		}
		// Enumerate all valuations and sum their probabilities.
		want := 0.0
		EnumerateValuations(vars, func(v Valuation) {
			if f.Eval(v) {
				want += p.ProbOfValuation(vars, v)
			}
		})
		got := Probability(f, p)
		return math.Abs(got-want) < 1e-9
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyProbabilityInUnitInterval(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFormula(r, 5, 12)
		p := Prob{}
		for _, e := range Vars(f) {
			p[e] = r.Float64()
		}
		pr := Probability(f, p)
		return pr >= -1e-12 && pr <= 1+1e-12
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestSatisfiableTautology(t *testing.T) {
	a := Var("a")
	if !Satisfiable(a) || Satisfiable(And(a, Not(a))) {
		t.Error("Satisfiable misbehaves")
	}
	if !Tautology(Or(a, Not(a))) || Tautology(a) {
		t.Error("Tautology misbehaves")
	}
}

func TestEnumerateValuationsCountsWorlds(t *testing.T) {
	n := 0
	EnumerateValuations([]Event{"a", "b", "c"}, func(Valuation) { n++ })
	if n != 8 {
		t.Errorf("enumerated %d valuations, want 8", n)
	}
}

func TestConjunctionOfLiterals(t *testing.T) {
	f := Conjunction([]Literal{{Event: "pods"}, {Event: "stoc", Negated: true}})
	if !f.Eval(Valuation{"pods": true, "stoc": false}) {
		t.Error("conjunction should hold")
	}
	if f.Eval(Valuation{"pods": true, "stoc": true}) {
		t.Error("conjunction should fail")
	}
	if got := String(f); got != "pods & !stoc" {
		t.Errorf("String = %q", got)
	}
}

func TestProbValidate(t *testing.T) {
	if err := (Prob{"a": 0.5}).Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	if err := (Prob{"a": 1.5}).Validate(); err == nil {
		t.Error("expected error for probability > 1")
	}
}

func TestValuationHelpers(t *testing.T) {
	v := Valuation{"a": true}
	w := v.With("b", false)
	if !w.Get("a") || w.Get("b") || !w.Has("b") || v.Has("b") {
		t.Error("With/Has/Get misbehave")
	}
	if got := w.String(); got != "{a=1 b=0}" {
		t.Errorf("String = %q", got)
	}
}
