package logic

// Visitor folds over the structure of a formula. It lets other packages
// (e.g. internal/circuit) translate formulas without logic exposing its node
// types.
type Visitor interface {
	Const(value bool) interface{}
	Var(e Event) interface{}
	Not(sub interface{}) interface{}
	And(subs []interface{}) interface{}
	Or(subs []interface{}) interface{}
}

// Visit folds v over f bottom-up and returns the result for the root.
func Visit(f Formula, v Visitor) interface{} {
	switch g := f.(type) {
	case constFormula:
		return v.Const(bool(g))
	case varFormula:
		return v.Var(Event(g))
	case notFormula:
		return v.Not(Visit(g.f, v))
	case andFormula:
		subs := make([]interface{}, len(g.fs))
		for i, h := range g.fs {
			subs[i] = Visit(h, v)
		}
		return v.And(subs)
	case orFormula:
		subs := make([]interface{}, len(g.fs))
		for i, h := range g.fs {
			subs[i] = Visit(h, v)
		}
		return v.Or(subs)
	}
	panic("logic: unknown formula type")
}
