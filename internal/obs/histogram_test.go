package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bucketOf returns the index of the bucket value v lands in (le semantics),
// len(bounds) for the overflow bucket.
func bucketOf(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}

// TestQuantileCrossCheck is the exact cross-check the histogram's quantile
// extraction is specified by: for random samples and a sweep of quantiles,
// the histogram's answer must land in the same bucket as the true
// sorted-sample quantile — bucket counts are exact, so rank walking can be
// off by at most the interpolation inside one bucket.
func TestQuantileCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := LatencyBuckets()
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5000)
		h := NewHistogram(bounds)
		samples := make([]float64, n)
		for i := range samples {
			// Log-uniform over the bucket range, plus occasional outliers
			// beyond the last bound to exercise the overflow bucket.
			v := math.Exp(rng.Float64()*math.Log(20e0/1e-6)) * 1e-6
			if rng.Intn(50) == 0 {
				v = bounds[len(bounds)-1] * (1 + rng.Float64())
			}
			samples[i] = v
			h.Observe(v)
		}
		sort.Float64s(samples)
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := samples[rank-1]
			got := h.Quantile(q)
			wantBucket := bucketOf(bounds, exact)
			gotBucket := bucketOf(bounds, got)
			// The overflow bucket reports the last finite bound, which lives
			// in the final finite bucket — allow that one-off.
			if wantBucket == len(bounds) && got == bounds[len(bounds)-1] {
				continue
			}
			if gotBucket != wantBucket {
				t.Fatalf("trial %d n=%d q=%v: histogram quantile %v (bucket %d) vs exact %v (bucket %d)",
					trial, n, q, got, gotBucket, exact, wantBucket)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(0.5)
	if got := h.Quantile(0.5); got <= 0 || got > 1 {
		t.Fatalf("single observation in [0,1] bucket: quantile = %v", got)
	}
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100) // overflow only
	if got := h2.Quantile(0.5); got != 2 {
		t.Fatalf("overflow-only quantile = %v, want last bound 2", got)
	}
}

func TestHistogramSumCount(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	want := 0.0
	for i := 1; i <= 100; i++ {
		v := float64(i) * 1e-5
		h.Observe(v)
		want += v
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if math.Abs(s.Sum-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}
