// Package obs is the observability substrate of the serving stack: a
// dependency-free metrics registry (atomic counters, gauges and log-bucketed
// histograms with quantile extraction), a Prometheus text-exposition writer,
// and a lightweight per-request span tracer threaded through
// context.Context.
//
// The design constraints come from where the instrumentation sits — inside
// the cached /query hot path, the store's commit critical section and the
// WAL's group-commit flusher:
//
//   - Recording is wait-free: a counter increment is one atomic add, a
//     histogram observation is a binary search over ~25 bucket bounds plus
//     two atomic adds. No locks, no allocation, no time formatting.
//   - Handles are resolved once: callers hold *Counter / *Histogram
//     pointers obtained at wiring time, so the hot path never touches the
//     registry's maps.
//   - Cardinality is bounded by construction: label values are fixed at
//     registration (endpoints, outcome enums, fsync policies) — never
//     request-derived strings like query fingerprints, which belong in logs.
//
// Reading is the slow, coherent-enough side: WritePrometheus and
// Histogram.Snapshot read the atomics without stopping writers, so a scrape
// taken during a storm of updates may be internally off by the few
// observations that landed mid-read — the standard Prometheus contract.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 metric (queue depths, subscriber counts).
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric kinds, for type-mismatch detection and the TYPE exposition line.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labeled instance of a metric family: exactly one of the
// value fields is set, matching the family's kind.
type series struct {
	labels []string // k1, v1, k2, v2, ... (registration order)
	ctr    *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups the series sharing one metric name (and therefore one HELP /
// TYPE declaration in the exposition).
type family struct {
	name   string
	help   string
	kind   string
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families and hands out their series handles.
// Registration methods are idempotent: asking for the same name + label set
// again returns the existing handle, so wiring code can run per-instance
// without double-registration bookkeeping. Asking for an existing name with
// a different kind panics — that is a programming error, not a runtime
// condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns the counter named name with the given label pairs,
// creating it on first use. labels alternate key, value.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.getOrCreate(name, help, kindCounter, labels, func() *series {
		return &series{ctr: &Counter{}}
	})
	return s.ctr
}

// Gauge returns the gauge named name with the given label pairs, creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.getOrCreate(name, help, kindGauge, labels, func() *series {
		return &series{g: &Gauge{}}
	})
	return s.g
}

// GaugeFunc registers a pull gauge: fn is called at exposition time. The
// same name + labels keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.getOrCreate(name, help, kindGauge, labels, func() *series {
		return &series{gf: fn}
	})
}

// Histogram returns the histogram named name with the given label pairs and
// bucket upper bounds, creating it on first use. An existing histogram keeps
// its original buckets. bounds must be strictly increasing; the overflow
// (+Inf) bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	s := r.getOrCreate(name, help, kindHistogram, labels, func() *series {
		return &series{h: NewHistogram(bounds)}
	})
	return s.h
}

// getOrCreate resolves (or creates) the series for name + labels, enforcing
// name validity and kind consistency.
func (r *Registry) getOrCreate(name, help, kind string, labels []string, mk func() *series) *series {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: labels must be key/value pairs, got %d strings", name, len(labels)))
	}
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, labels[i]))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byKey: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	key := seriesKey(labels)
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := mk()
	s.labels = append([]string(nil), labels...)
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

func seriesKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	key := ""
	for i := 0; i < len(labels); i += 2 {
		key += labels[i] + "\x00" + labels[i+1] + "\x00"
	}
	return key
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// Histogram is a fixed-bucket histogram: counts per bucket, a running sum,
// all maintained with atomics so concurrent observers never contend on a
// lock. Buckets are upper-bound inclusive (Prometheus `le` semantics) with
// an implicit +Inf overflow bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; the last is the overflow bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// NewHistogram builds an unregistered histogram over the given strictly
// increasing upper bounds (most callers want Registry.Histogram instead;
// this form exists for metric consumers outside a registry, e.g. CLI
// latency summaries).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %v <= %v", i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// ExpBuckets returns n exponentially growing upper bounds starting at lo:
// lo, lo*factor, lo*factor², ... — the log-bucketed layout whose relative
// quantile error is bounded by the growth factor.
func ExpBuckets(lo, factor float64, n int) []float64 {
	if lo <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants lo > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := lo
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default layout for request/operation latencies in
// seconds: 1µs up to ~16.8s doubling each bucket (25 buckets), so every
// quantile is resolved within a factor of 2 and interpolation does the rest.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 25) }

// Observe records v.
func (h *Histogram) Observe(v float64) {
	// sort.SearchFloat64s finds the first bound >= v for `le` semantics
	// (bound-equal observations land in the bucket they bound).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the one-liner for
// latency histograms: defer-friendly and unit-consistent with the
// *_seconds naming convention.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// HistogramSnapshot is a point-in-time copy of a histogram's state, the unit
// quantiles and expositions are computed from.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, exclusive of the +Inf overflow
	Counts []uint64  // per-bucket (not cumulative); len(Bounds)+1
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's current counts and sum. Concurrent
// observers keep running; the snapshot may miss observations landing
// mid-copy (standard scrape semantics).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Quantile returns the q-quantile (0 < q <= 1) of the observations, exact at
// bucket granularity: the returned value lies in the same bucket as the true
// sample quantile, linearly interpolated within it. Returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Quantile is Histogram.Quantile over a snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based position of the quantile observation in the sorted
	// sample (ceil, the standard empirical quantile), so Quantile(1) is the
	// max bucket and Quantile(0+) the min.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i == len(s.Bounds) {
				// Overflow bucket: no finite upper bound; report the largest
				// finite bound (the value is at least that).
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := float64(rank-cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}
