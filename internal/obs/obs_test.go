package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "endpoint", "/query")
	b := r.Counter("x_total", "x", "endpoint", "/query")
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	c := r.Counter("x_total", "x", "endpoint", "/batch")
	if a == c {
		t.Fatal("different labels should return a different series")
	}
	h1 := r.Histogram("h_seconds", "h", LatencyBuckets())
	h2 := r.Histogram("h_seconds", "h", LatencyBuckets())
	if h1 != h2 {
		t.Fatal("same histogram should be returned")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name should panic")
		}
	}()
	r.Gauge("dual_total", "x")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9leading", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q should panic", bad)
				}
			}()
			r.Counter(bad, "x")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("odd label list should panic")
			}
		}()
		r.Counter("ok_total", "x", "lonely")
	}()
}

// TestConcurrentMetricUpdates hammers one counter, one gauge and one
// histogram from many goroutines while a reader scrapes — run under -race
// in CI, and the final counts must be exact (atomics lose nothing).
func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "c")
	g := r.Gauge("cc_gauge", "g")
	h := r.Histogram("cc_seconds", "h", LatencyBuckets())
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				_ = r.WritePrometheus(&sb)
				_ = h.Quantile(0.99)
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%1000+1) * 1e-6)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge = %d, want %d", got, workers*per)
	}
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}
