package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE declaration per family
// followed by its series, histograms expanded into cumulative _bucket lines
// plus _sum and _count. Families appear in registration order, so scrapes
// diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch {
			case s.ctr != nil:
				writeSample(&b, f.name, s.labels, "", "", float64(s.ctr.Value()))
			case s.g != nil:
				writeSample(&b, f.name, s.labels, "", "", float64(s.g.Value()))
			case s.gf != nil:
				writeSample(&b, f.name, s.labels, "", "", s.gf())
			case s.h != nil:
				snap := s.h.Snapshot()
				var cum uint64
				for i, bound := range snap.Bounds {
					cum += snap.Counts[i]
					writeSample(&b, f.name+"_bucket", s.labels, "le", formatFloat(bound), float64(cum))
				}
				writeSample(&b, f.name+"_bucket", s.labels, "le", "+Inf", float64(snap.Count))
				writeSample(&b, f.name+"_sum", s.labels, "", "", snap.Sum)
				writeSample(&b, f.name+"_count", s.labels, "", "", float64(snap.Count))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// writeSample emits one `name{labels} value` line; extraK/extraV append a
// synthetic label (the histogram `le` bound) after the series labels.
func writeSample(b *strings.Builder, name string, labels []string, extraK, extraV string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || extraK != "" {
		b.WriteByte('{')
		first := true
		for i := 0; i+1 < len(labels); i += 2 {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(b, "%s=%q", labels[i], escapeLabel(labels[i+1]))
		}
		if extraK != "" {
			if !first {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", extraK, escapeLabel(extraV))
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel prepares a label value for %q-quoting: the format's escapes
// (\\, \", \n) coincide with Go's for these characters, so the value only
// needs characters Go would escape differently to be absent — our label
// values are ASCII enums, but be safe about newlines regardless.
func escapeLabel(v string) string { return v }

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
