package obs

import (
	"bufio"
	"fmt"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// validateExposition is a strict-enough Prometheus text-format checker: every
// line must be a HELP, a TYPE or a sample; TYPE must precede its family's
// samples; sample names must belong to the declared family (exactly, or the
// _bucket/_sum/_count expansions for histograms); histogram buckets must be
// cumulative and end with le="+Inf" matching _count. It returns the parsed
// samples keyed by full line prefix (name + labels).
func validateExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typeOf := map[string]string{}
	var bucketCum float64
	var lastBucketSeries string
	sc := bufio.NewScanner(strings.NewReader(text))
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if !helpRe.MatchString(line) {
				t.Fatalf("line %d: bad HELP line: %q", ln, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad TYPE line: %q", ln, line)
			}
			if _, dup := typeOf[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln, m[1])
			}
			typeOf[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln, line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: bad sample line: %q", ln, line)
		}
		name, labels, valText := m[1], m[2], m[3]
		// Resolve the family: the name itself, or a histogram expansion.
		fam := name
		if typeOf[fam] == "" {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, suffix) {
					base := strings.TrimSuffix(name, suffix)
					if typeOf[base] == "histogram" {
						fam = base
						break
					}
				}
			}
		}
		if typeOf[fam] == "" {
			t.Fatalf("line %d: sample %s has no preceding TYPE", ln, name)
		}
		if labels != "" {
			inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
			for _, pair := range strings.Split(inner, ",") {
				if !labelRe.MatchString(pair) {
					t.Fatalf("line %d: bad label pair %q", ln, pair)
				}
			}
		}
		var v float64
		switch valText {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		case "NaN":
			v = math.NaN()
		default:
			var err error
			v, err = strconv.ParseFloat(valText, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln, valText, err)
			}
		}
		key := name + labels
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %s", ln, key)
		}
		samples[key] = v

		// Histogram bucket monotonicity: within one series' run of _bucket
		// lines, cumulative counts never decrease.
		if strings.HasSuffix(name, "_bucket") && typeOf[fam] == "histogram" {
			seriesID := name + stripLe(labels)
			if seriesID != lastBucketSeries {
				lastBucketSeries, bucketCum = seriesID, 0
			}
			if v < bucketCum {
				t.Fatalf("line %d: bucket counts not cumulative: %v after %v", ln, v, bucketCum)
			}
			bucketCum = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

var leRe = regexp.MustCompile(`,?le="[^"]*"`)

func stripLe(labels string) string { return leRe.ReplaceAllString(labels, "") }

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "requests served", "endpoint", "/query").Add(17)
	r.Counter("app_requests_total", "requests served", "endpoint", "/batch").Add(3)
	r.Gauge("app_subscribers", "live watchers").Set(2)
	r.GaugeFunc("app_seq", "commit sequence", func() float64 { return 42 })
	h := r.Histogram("app_latency_seconds", "request latency", LatencyBuckets(), "endpoint", "/query")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i+1) * 1e-5)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := validateExposition(t, text)

	if got := samples[`app_requests_total{endpoint="/query"}`]; got != 17 {
		t.Fatalf("counter sample = %v, want 17", got)
	}
	if got := samples[`app_subscribers`]; got != 2 {
		t.Fatalf("gauge sample = %v, want 2", got)
	}
	if got := samples[`app_seq`]; got != 42 {
		t.Fatalf("gauge func sample = %v, want 42", got)
	}
	if got := samples[`app_latency_seconds_count{endpoint="/query"}`]; got != 100 {
		t.Fatalf("histogram count = %v, want 100", got)
	}
	inf := fmt.Sprintf(`app_latency_seconds_bucket{endpoint="/query",le=%q}`, "+Inf")
	if got := samples[inf]; got != 100 {
		t.Fatalf("+Inf bucket = %v, want 100 (have keys like %q)", got, firstKey(samples))
	}
	// TYPE precedes samples and appears once — validateExposition enforced
	// it; spot-check the histogram declaration exists.
	if !strings.Contains(text, "# TYPE app_latency_seconds histogram") {
		t.Fatal("missing histogram TYPE line")
	}
}

func firstKey(m map[string]float64) string {
	for k := range m {
		return k
	}
	return ""
}

func TestPrometheusHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	validateExposition(t, rec.Body.String())
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Fatalf("body missing sample: %s", rec.Body.String())
	}
}
