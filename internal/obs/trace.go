package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is a lightweight single-request trace: a named sequence of stages
// whose durations tile the span's lifetime exactly (the first stage
// inherits the span's start, each Stage call closes the previous one, End
// closes the last), so the per-stage breakdown always sums to the measured
// end-to-end latency. Spans travel through context.Context (Trace /
// SpanFrom); every method is nil-safe, so instrumented code never has to
// check whether the request is being traced.
//
// A span is written by the goroutine serving its request; the internal
// mutex exists so a racing reader (or a handler that fans out) cannot
// corrupt it, not to make concurrent Stage calls meaningful.
type Span struct {
	mu     sync.Mutex
	name   string
	start  time.Time
	cur    string
	curAt  time.Time
	stages []Stage
	attrs  []Attr
}

// Stage is one closed interval of a span.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Attr is an annotation attached to a span by the code that learned it
// (query fingerprints, cache verdicts, plan shapes) — the request-scoped
// facts that belong in a slow-request log line but must never become metric
// labels.
type Attr struct {
	Key   string
	Value any
}

type spanKey struct{}

// Trace starts a span named name and returns a context carrying it. The
// caller owns the span and must End it.
func Trace(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now()}
	sp.curAt = sp.start
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFrom returns the span carried by ctx, or nil when the request is not
// traced. The nil span is usable: every method no-ops.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Stage closes the currently open stage (if any) and opens a new one. The
// first Stage call on a span inherits the span's start time, so no interval
// of the request goes unattributed.
func (s *Span) Stage(name string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.cur != "" {
		s.stages = append(s.stages, Stage{Name: s.cur, Dur: now.Sub(s.curAt)})
		s.curAt = now
	}
	s.cur = name
	s.mu.Unlock()
}

// SetAttr attaches an annotation to the span (later slow-log material).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span and returns its summary. Calling End on a nil span
// returns a zero summary.
func (s *Span) End() Summary {
	if s == nil {
		return Summary{}
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur != "" {
		s.stages = append(s.stages, Stage{Name: s.cur, Dur: now.Sub(s.curAt)})
		s.cur = ""
	}
	return Summary{
		Name:   s.name,
		Total:  now.Sub(s.start),
		Stages: append([]Stage(nil), s.stages...),
		Attrs:  append([]Attr(nil), s.attrs...),
	}
}

// Summary is a finished span: the measured end-to-end duration, the stage
// breakdown tiling it, and the attached annotations.
type Summary struct {
	Name   string
	Total  time.Duration
	Stages []Stage
	Attrs  []Attr
}

// StageString renders the breakdown as "parse=12.5us cache=3.1us ..." with
// microsecond floats — compact for humans, regular enough for tools (and
// tests) to parse back.
func (s Summary) StageString() string {
	var b strings.Builder
	for i, st := range s.Stages {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.1fus", st.Name, float64(st.Dur.Nanoseconds())/1e3)
	}
	return b.String()
}
