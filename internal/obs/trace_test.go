package obs

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestSpanStagesTileTotal is the contract the slow-query log leans on: the
// per-stage durations sum to the measured end-to-end duration (exactly, up
// to float/clock granularity — far inside the 10% the acceptance criteria
// allow).
func TestSpanStagesTileTotal(t *testing.T) {
	ctx, sp := Trace(context.Background(), "/query")
	got := SpanFrom(ctx)
	if got != sp {
		t.Fatal("SpanFrom should return the traced span")
	}
	sp.Stage("parse")
	time.Sleep(2 * time.Millisecond)
	sp.Stage("eval")
	time.Sleep(3 * time.Millisecond)
	sp.Stage("write")
	sum := sp.End()
	if len(sum.Stages) != 3 {
		t.Fatalf("stages = %v, want 3", sum.Stages)
	}
	var stagesTotal time.Duration
	for _, st := range sum.Stages {
		stagesTotal += st.Dur
	}
	diff := sum.Total - stagesTotal
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Microsecond {
		t.Fatalf("stage sum %v vs total %v: gap %v", stagesTotal, sum.Total, diff)
	}
	if sum.Stages[1].Dur < 2*time.Millisecond {
		t.Fatalf("eval stage %v, want >= 2ms", sum.Stages[1].Dur)
	}
}

func TestSpanFirstStageInheritsStart(t *testing.T) {
	_, sp := Trace(context.Background(), "x")
	time.Sleep(time.Millisecond)
	sp.Stage("only")
	sum := sp.End()
	if len(sum.Stages) != 1 {
		t.Fatalf("stages = %v", sum.Stages)
	}
	if sum.Stages[0].Dur < time.Millisecond {
		t.Fatalf("first stage should absorb pre-Stage time, got %v", sum.Stages[0].Dur)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var sp *Span
	sp.Stage("a")
	sp.SetAttr("k", 1)
	sum := sp.End()
	if sum.Total != 0 || len(sum.Stages) != 0 {
		t.Fatalf("nil span summary = %+v", sum)
	}
	if SpanFrom(context.Background()) != nil {
		t.Fatal("untraced context should carry no span")
	}
}

func TestSpanAttrsAndStageString(t *testing.T) {
	_, sp := Trace(context.Background(), "x")
	sp.SetAttr("fp", "abc")
	sp.Stage("parse")
	sp.Stage("eval")
	sum := sp.End()
	if len(sum.Attrs) != 1 || sum.Attrs[0].Key != "fp" || sum.Attrs[0].Value != "abc" {
		t.Fatalf("attrs = %+v", sum.Attrs)
	}
	str := sum.StageString()
	parts := strings.Fields(str)
	if len(parts) != 2 {
		t.Fatalf("stage string %q, want two fields", str)
	}
	for _, p := range parts {
		kv := strings.SplitN(p, "=", 2)
		if len(kv) != 2 || !strings.HasSuffix(kv[1], "us") {
			t.Fatalf("stage field %q not name=<float>us", p)
		}
		if _, err := strconv.ParseFloat(strings.TrimSuffix(kv[1], "us"), 64); err != nil {
			t.Fatalf("stage field %q: %v", p, err)
		}
	}
}

func TestSpanEndWithoutStages(t *testing.T) {
	_, sp := Trace(context.Background(), "x")
	sum := sp.End()
	if len(sum.Stages) != 0 {
		t.Fatalf("stages = %v, want none", sum.Stages)
	}
	if sum.Total < 0 {
		t.Fatalf("total = %v", sum.Total)
	}
}
