// Package pdb implements the uncertain relational formalisms of the paper:
//
//   - TID (tuple-independent) instances: every fact is present independently
//     with a given probability [Lakshmanan et al.].
//   - c-instances: facts carry propositional annotations over Boolean events
//     [Imielinski–Lipski]; each event valuation selects a possible world.
//   - pc-instances: c-instances plus independent event probabilities
//     [Green–Tannen, MayBMS].
//   - pcc-instances: facts annotated by gates of a shared Boolean circuit
//     (Section 2.2); bounded treewidth of the joint instance+circuit graph
//     is the tractability condition of Theorem 2.
//
// All formalisms come with exhaustive possible-worlds semantics (worlds,
// possibility, certainty, probability by enumeration) that serve as the
// exponential baselines and as test oracles for internal/core.
package pdb

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/rel"
	"repro/internal/treedec"
)

// TID is a tuple-independent probabilistic instance.
type TID struct {
	Inst  *rel.Instance
	Probs []float64 // Probs[i] is the marginal probability of fact i
}

// NewTID returns an empty TID instance.
func NewTID() *TID {
	return &TID{Inst: rel.NewInstance()}
}

// ValidateProb returns an error when p is not a probability: outside [0,1]
// or NaN. Every ingestion path validates through it, so bad weights are
// rejected at the door instead of flowing into the dynamic programs (where a
// NaN silently poisons every downstream sum).
func ValidateProb(p float64) error {
	if !(p >= 0 && p <= 1) { // the negated form also catches NaN
		return fmt.Errorf("pdb: probability %v outside [0,1]", p)
	}
	return nil
}

// Add inserts a fact with the given probability and returns its index.
// Re-adding an existing fact overwrites its probability. Add panics on an
// invalid probability (NaN included); use TryAdd where bad input is expected
// and should surface as an error.
func (t *TID) Add(f rel.Fact, p float64) int {
	i, err := t.TryAdd(f, p)
	if err != nil {
		panic(err.Error())
	}
	return i
}

// TryAdd inserts a fact with the given probability and returns its index,
// rejecting invalid probabilities (outside [0,1] or NaN) with an error. The
// ingestion path for untrusted input such as CLI instance files.
func (t *TID) TryAdd(f rel.Fact, p float64) (int, error) {
	if err := ValidateProb(p); err != nil {
		return -1, fmt.Errorf("%w for fact %s", err, f)
	}
	i := t.Inst.Add(f)
	if i == len(t.Probs) {
		t.Probs = append(t.Probs, p)
	} else {
		t.Probs[i] = p
	}
	return i, nil
}

// AddFact is a convenience wrapper.
func (t *TID) AddFact(p float64, relName string, args ...string) int {
	return t.Add(rel.NewFact(relName, args...), p)
}

// TryAddFact is the validating convenience wrapper.
func (t *TID) TryAddFact(p float64, relName string, args ...string) (int, error) {
	return t.TryAdd(rel.NewFact(relName, args...), p)
}

// Fact returns the i-th fact.
func (t *TID) Fact(i int) rel.Fact { return t.Inst.Fact(i) }

// Prob returns the marginal probability of fact i.
func (t *TID) Prob(i int) float64 { return t.Probs[i] }

// SetProb overwrites the marginal probability of fact i, validating the new
// value. The mutable-handle hook used by internal/incr's live stores.
func (t *TID) SetProb(i int, p float64) error {
	if i < 0 || i >= len(t.Probs) {
		return fmt.Errorf("pdb: no fact %d (have %d)", i, len(t.Probs))
	}
	if err := ValidateProb(p); err != nil {
		return fmt.Errorf("%w for fact %s", err, t.Inst.Fact(i))
	}
	t.Probs[i] = p
	return nil
}

// NumFacts returns the number of (possibly-present) facts.
func (t *TID) NumFacts() int { return t.Inst.NumFacts() }

// EventOf returns the canonical event name for fact i ("f<i>"), used when
// translating to c- or pcc-instances.
func (t *TID) EventOf(i int) logic.Event {
	return logic.Event(fmt.Sprintf("f%d", i))
}

// EventProb returns the event probability map of the canonical translation.
func (t *TID) EventProb() logic.Prob {
	p := logic.Prob{}
	for i, pr := range t.Probs {
		p[t.EventOf(i)] = pr
	}
	return p
}

// World materializes the world in which exactly the facts with present[i]
// true are kept.
func (t *TID) World(present []bool) *rel.Instance {
	return t.WorldInto(present, rel.NewInstance())
}

// WorldInto materializes the world selected by present into the given
// instance, which is Reset first and returned. Reusing one instance across
// draws is the allocation-free path for samplers.
func (t *TID) WorldInto(present []bool, into *rel.Instance) *rel.Instance {
	into.Reset()
	for i := 0; i < t.NumFacts(); i++ {
		if present[i] {
			into.AddFrom(t.Inst, i)
		}
	}
	return into
}

// EnumerateWorlds calls fn with every possible world and its probability.
// 2^n worlds: baseline only.
func (t *TID) EnumerateWorlds(fn func(world *rel.Instance, p float64)) {
	n := t.NumFacts()
	if n > 30 {
		panic(fmt.Sprintf("pdb: refusing to enumerate 2^%d worlds", n))
	}
	present := make([]bool, n)
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		p := 1.0
		for i := 0; i < n; i++ {
			present[i] = mask&(1<<uint(i)) != 0
			if present[i] {
				p *= t.Probs[i]
			} else {
				p *= 1 - t.Probs[i]
			}
		}
		if p > 0 {
			fn(t.World(present), p)
		}
	}
}

// QueryProbabilityEnumeration computes P(q) by enumerating every world.
func (t *TID) QueryProbabilityEnumeration(q rel.CQ) float64 {
	total := 0.0
	t.EnumerateWorlds(func(w *rel.Instance, p float64) {
		if q.Holds(w) {
			total += p
		}
	})
	return total
}

// Sample draws a world according to the fact probabilities.
func (t *TID) Sample(r *rand.Rand) *rel.Instance {
	present := make([]bool, t.NumFacts())
	for i := range present {
		present[i] = r.Float64() < t.Probs[i]
	}
	return t.World(present)
}

// Treewidth returns the treewidth bound of the underlying instance, the
// structural parameter of Theorem 1 (probabilities are forgotten).
func (t *TID) Treewidth() int { return t.Inst.Treewidth() }

// ToCInstance translates the TID into a c-instance with one fresh event per
// fact, plus the matching probability map (making it a pc-instance).
func (t *TID) ToCInstance() (*CInstance, logic.Prob) {
	c := NewCInstance()
	for i := 0; i < t.NumFacts(); i++ {
		c.Add(t.Inst.Fact(i), logic.Var(t.EventOf(i)))
	}
	return c, t.EventProb()
}

// CInstance is a c-instance: facts annotated with propositional formulas
// over events. The possible world of a valuation v keeps the facts whose
// annotation holds under v.
type CInstance struct {
	Inst *rel.Instance
	Ann  []logic.Formula
}

// NewCInstance returns an empty c-instance.
func NewCInstance() *CInstance {
	return &CInstance{Inst: rel.NewInstance()}
}

// Add inserts a fact with annotation ann and returns its index. Re-adding an
// existing fact disjoins the annotations (set semantics for facts).
func (c *CInstance) Add(f rel.Fact, ann logic.Formula) int {
	i := c.Inst.Add(f)
	if i == len(c.Ann) {
		c.Ann = append(c.Ann, ann)
	} else {
		c.Ann[i] = logic.Or(c.Ann[i], ann)
	}
	return i
}

// AddFact is a convenience wrapper.
func (c *CInstance) AddFact(ann logic.Formula, relName string, args ...string) int {
	return c.Add(rel.NewFact(relName, args...), ann)
}

// NumFacts returns the number of annotated facts.
func (c *CInstance) NumFacts() int { return c.Inst.NumFacts() }

// Events returns the sorted events used by the annotations.
func (c *CInstance) Events() []logic.Event {
	return logic.Vars(c.Ann...)
}

// World returns the possible world selected by the valuation v.
func (c *CInstance) World(v logic.Valuation) *rel.Instance {
	return c.WorldInto(v, rel.NewInstance())
}

// WorldInto materializes the world selected by v into the given instance,
// which is Reset first and returned. The reuse path for samplers.
func (c *CInstance) WorldInto(v logic.Valuation, into *rel.Instance) *rel.Instance {
	into.Reset()
	for i := 0; i < c.NumFacts(); i++ {
		if c.Ann[i].Eval(v) {
			into.AddFrom(c.Inst, i)
		}
	}
	return into
}

// EnumerateWorlds calls fn with every event valuation and its world.
func (c *CInstance) EnumerateWorlds(fn func(v logic.Valuation, world *rel.Instance)) {
	logic.EnumerateValuations(c.Events(), func(v logic.Valuation) {
		fn(v, c.World(v))
	})
}

// PossibleEnumeration reports whether q holds in some possible world.
func (c *CInstance) PossibleEnumeration(q rel.CQ) bool {
	possible := false
	c.EnumerateWorlds(func(_ logic.Valuation, w *rel.Instance) {
		if !possible && q.Holds(w) {
			possible = true
		}
	})
	return possible
}

// CertainEnumeration reports whether q holds in every possible world.
func (c *CInstance) CertainEnumeration(q rel.CQ) bool {
	certain := true
	c.EnumerateWorlds(func(_ logic.Valuation, w *rel.Instance) {
		if certain && !q.Holds(w) {
			certain = false
		}
	})
	return certain
}

// QueryProbabilityEnumeration computes P(q) under the independent event
// probabilities p by enumerating all valuations.
func (c *CInstance) QueryProbabilityEnumeration(q rel.CQ, p logic.Prob) float64 {
	events := c.Events()
	total := 0.0
	logic.EnumerateValuations(events, func(v logic.Valuation) {
		if q.Holds(c.World(v)) {
			total += p.ProbOfValuation(events, v)
		}
	})
	return total
}

// LineageEnumeration computes the lineage of q on the c-instance by brute
// force: the disjunction, over all matching fact sets, of the conjunction of
// the fact annotations. Exponential in general; a correctness oracle.
func (c *CInstance) LineageEnumeration(q rel.CQ) logic.Formula {
	sets := q.MatchingFactSets(c.Inst)
	var disjuncts []logic.Formula
	for _, set := range sets {
		conj := make([]logic.Formula, 0, len(set))
		for _, fi := range set {
			conj = append(conj, c.Ann[fi])
		}
		disjuncts = append(disjuncts, logic.And(conj...))
	}
	return logic.Or(disjuncts...)
}

// Sample draws a world by sampling each event independently under p.
func (c *CInstance) Sample(r *rand.Rand, p logic.Prob) *rel.Instance {
	v := logic.Valuation{}
	for _, e := range c.Events() {
		v[e] = r.Float64() < p.P(e)
	}
	return c.World(v)
}

// PCC is a pcc-instance (Section 2.2): facts annotated by gates of a shared
// Boolean circuit, with independent probabilities on the circuit's events.
// Correlations between facts are expressed by sharing gates or events.
type PCC struct {
	Inst *rel.Instance
	Circ *circuit.Circuit
	Ann  []circuit.Gate
	P    logic.Prob
}

// NewPCC returns an empty pcc-instance.
func NewPCC() *PCC {
	return &PCC{Inst: rel.NewInstance(), Circ: circuit.New(), P: logic.Prob{}}
}

// Add inserts a fact annotated by gate g and returns its index. Re-adding an
// existing fact disjoins the annotations.
func (p *PCC) Add(f rel.Fact, g circuit.Gate) int {
	i := p.Inst.Add(f)
	if i == len(p.Ann) {
		p.Ann = append(p.Ann, g)
	} else {
		p.Ann[i] = p.Circ.Or(p.Ann[i], g)
	}
	return i
}

// NumFacts returns the number of annotated facts.
func (p *PCC) NumFacts() int { return p.Inst.NumFacts() }

// World returns the possible world selected by the valuation v.
func (p *PCC) World(v logic.Valuation) *rel.Instance {
	in := rel.NewInstance()
	for i := 0; i < p.NumFacts(); i++ {
		if p.Circ.Eval(p.Ann[i], v) {
			in.Add(p.Inst.Fact(i))
		}
	}
	return in
}

// QueryProbabilityEnumeration computes P(q) by enumerating valuations.
func (p *PCC) QueryProbabilityEnumeration(q rel.CQ) float64 {
	events := p.Circ.Events()
	total := 0.0
	logic.EnumerateValuations(events, func(v logic.Valuation) {
		if q.Holds(p.World(v)) {
			total += p.P.ProbOfValuation(events, v)
		}
	})
	return total
}

// FromTID translates a TID to a pcc-instance with one variable gate per
// fact.
func FromTID(t *TID) *PCC {
	p := NewPCC()
	for i := 0; i < t.NumFacts(); i++ {
		e := t.EventOf(i)
		p.Add(t.Inst.Fact(i), p.Circ.Var(e))
		p.P[e] = t.Probs[i]
	}
	return p
}

// FromPC translates a pc-instance (c-instance plus probabilities) to a
// pcc-instance by compiling every annotation formula into the shared
// circuit.
func FromPC(c *CInstance, prob logic.Prob) *PCC {
	p := NewPCC()
	for i := 0; i < c.NumFacts(); i++ {
		p.Add(c.Inst.Fact(i), p.Circ.FromFormula(c.Ann[i]))
	}
	for _, e := range c.Events() {
		p.P[e] = prob.P(e)
	}
	return p
}

// JointGraph builds the graph whose treewidth is the structural parameter of
// Theorem 2: vertices are the domain elements of the instance followed by
// the gates of the circuit; edges are the Gaifman edges, the moralized
// circuit edges, and a link between each fact's arguments and its annotation
// gate (the "respects the link between gates and facts" condition).
//
// The returned offset is the vertex id of gate 0.
func (p *PCC) JointGraph() (g *treedec.Graph, di *rel.DomainIndex, gateOffset int) {
	di = p.Inst.IndexDomain()
	nDom := len(di.Names)
	nGates := p.Circ.NumGates()
	g = treedec.NewGraph(nDom + nGates)
	// Gaifman edges.
	for _, scope := range p.Inst.FactScopes(di) {
		g.AddClique(scope)
	}
	// Circuit moral edges, shifted.
	moral := p.Circ.MoralGraph()
	for _, e := range moral.Edges() {
		g.AddEdge(nDom+e[0], nDom+e[1])
	}
	// Fact-annotation links: the annotation gate joins the fact's clique.
	for i := 0; i < p.NumFacts(); i++ {
		scope := append([]int{}, factScope(p.Inst.Fact(i), di)...)
		scope = append(scope, nDom+int(p.Ann[i]))
		g.AddClique(scope)
	}
	return g, di, nDom
}

// JointWidth returns a heuristic bound on the joint treewidth of Theorem 2.
func (p *PCC) JointWidth() int {
	g, _, _ := p.JointGraph()
	return treedec.Treewidth(g)
}

func factScope(f rel.Fact, di *rel.DomainIndex) []int {
	seen := map[int]struct{}{}
	var scope []int
	for _, a := range f.Args {
		v := di.ByName[a]
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			scope = append(scope, v)
		}
	}
	return scope
}
