package pdb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/rel"
)

func TestTIDWorldsAndProbability(t *testing.T) {
	tid := NewTID()
	tid.AddFact(0.5, "R", "a")
	tid.AddFact(0.5, "S", "a", "b")
	tid.AddFact(0.5, "T", "b")
	// q holds iff all three facts present: P = 1/8.
	q := rel.HardQuery()
	if got := tid.QueryProbabilityEnumeration(q); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("P(q) = %v, want 0.125", got)
	}
	worlds := 0
	tid.EnumerateWorlds(func(*rel.Instance, float64) { worlds++ })
	if worlds != 8 {
		t.Errorf("worlds = %d, want 8", worlds)
	}
}

func TestTIDWorldProbabilitiesSumToOne(t *testing.T) {
	tid := NewTID()
	tid.AddFact(0.3, "R", "a")
	tid.AddFact(0.9, "R", "b")
	tid.AddFact(0.5, "S", "a", "b")
	total := 0.0
	tid.EnumerateWorlds(func(_ *rel.Instance, p float64) { total += p })
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("world probabilities sum to %v", total)
	}
}

func TestTIDDeterministicFactAlwaysPresent(t *testing.T) {
	tid := NewTID()
	tid.AddFact(1.0, "R", "a")
	tid.AddFact(0.0, "R", "b")
	tid.EnumerateWorlds(func(w *rel.Instance, p float64) {
		if !w.Has(rel.NewFact("R", "a")) {
			t.Error("certain fact missing from a positive-probability world")
		}
		if w.Has(rel.NewFact("R", "b")) {
			t.Error("impossible fact present in a positive-probability world")
		}
	})
}

func TestCInstanceTable1(t *testing.T) {
	// The paper's Table 1: flight bookings annotated over events pods, stoc.
	pods := logic.Var("pods")
	stoc := logic.Var("stoc")
	c := NewCInstance()
	c.AddFact(pods, "Trip", "CDG", "MEL")
	c.AddFact(logic.And(pods, logic.Not(stoc)), "Trip", "MEL", "CDG")
	c.AddFact(logic.And(pods, stoc), "Trip", "MEL", "PDX")
	c.AddFact(logic.And(logic.Not(pods), stoc), "Trip", "CDG", "PDX")
	c.AddFact(stoc, "Trip", "PDX", "CDG")

	// World pods=1, stoc=0: exactly CDG->MEL and MEL->CDG.
	w := c.World(logic.Valuation{"pods": true, "stoc": false})
	if w.NumFacts() != 2 || !w.Has(rel.NewFact("Trip", "CDG", "MEL")) || !w.Has(rel.NewFact("Trip", "MEL", "CDG")) {
		t.Errorf("world(pods,!stoc) = %v", w.Facts())
	}
	// World pods=1, stoc=1: CDG->MEL, MEL->PDX, PDX->CDG.
	w = c.World(logic.Valuation{"pods": true, "stoc": true})
	if w.NumFacts() != 3 || !w.Has(rel.NewFact("Trip", "MEL", "PDX")) {
		t.Errorf("world(pods,stoc) = %v", w.Facts())
	}
	// Query: some trip leaves CDG. Possible (pods world) but not certain
	// (pods=0, stoc=0 world is empty).
	q := rel.NewCQ(rel.NewAtom("Trip", rel.C("CDG"), rel.V("x")))
	if !c.PossibleEnumeration(q) {
		t.Error("query should be possible")
	}
	if c.CertainEnumeration(q) {
		t.Error("query should not be certain")
	}
	// Probability with P(pods)=0.8, P(stoc)=0.4: q holds iff pods or
	// (!pods & stoc) — i.e. pods | stoc: P = 1 - 0.2*0.6 = 0.88.
	p := logic.Prob{"pods": 0.8, "stoc": 0.4}
	if got := c.QueryProbabilityEnumeration(q, p); math.Abs(got-0.88) > 1e-12 {
		t.Errorf("P(q) = %v, want 0.88", got)
	}
}

func TestCInstanceReAddDisjoins(t *testing.T) {
	c := NewCInstance()
	c.AddFact(logic.Var("a"), "R", "x")
	c.AddFact(logic.Var("b"), "R", "x")
	if c.NumFacts() != 1 {
		t.Fatalf("NumFacts = %d, want 1", c.NumFacts())
	}
	if !c.Ann[0].Eval(logic.Valuation{"b": true}) {
		t.Error("annotation should be a | b")
	}
}

func TestLineageEnumeration(t *testing.T) {
	c := NewCInstance()
	c.AddFact(logic.Var("e1"), "R", "a")
	c.AddFact(logic.Var("e2"), "S", "a", "b")
	c.AddFact(logic.Var("e3"), "T", "b")
	lin := c.LineageEnumeration(rel.HardQuery())
	want := logic.And(logic.Var("e1"), logic.Var("e2"), logic.Var("e3"))
	if !logic.Equivalent(lin, want) {
		t.Errorf("lineage = %s, want %s", logic.String(lin), logic.String(want))
	}
}

func TestTIDToCInstanceRoundTrip(t *testing.T) {
	tid := NewTID()
	tid.AddFact(0.25, "R", "a")
	tid.AddFact(0.75, "S", "a", "b")
	c, p := tid.ToCInstance()
	q := rel.NewCQ(rel.NewAtom("R", rel.V("x")), rel.NewAtom("S", rel.V("x"), rel.V("y")))
	got := c.QueryProbabilityEnumeration(q, p)
	want := tid.QueryProbabilityEnumeration(q)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("c-instance P = %v, TID P = %v", got, want)
	}
}

func TestPCCFromTIDAgrees(t *testing.T) {
	tid := NewTID()
	tid.AddFact(0.5, "R", "a")
	tid.AddFact(0.4, "S", "a", "b")
	tid.AddFact(0.9, "T", "b")
	pcc := FromTID(tid)
	q := rel.HardQuery()
	got := pcc.QueryProbabilityEnumeration(q)
	want := tid.QueryProbabilityEnumeration(q)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("pcc P = %v, TID P = %v", got, want)
	}
}

func TestPCCFromPCAgrees(t *testing.T) {
	c := NewCInstance()
	c.AddFact(logic.And(logic.Var("x"), logic.Var("y")), "R", "a")
	c.AddFact(logic.Or(logic.Var("x"), logic.Not(logic.Var("y"))), "S", "a", "b")
	p := logic.Prob{"x": 0.3, "y": 0.6}
	pcc := FromPC(c, p)
	q := rel.NewCQ(rel.NewAtom("R", rel.V("v")), rel.NewAtom("S", rel.V("v"), rel.V("w")))
	got := pcc.QueryProbabilityEnumeration(q)
	want := c.QueryProbabilityEnumeration(q, p)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("pcc P = %v, pc P = %v", got, want)
	}
}

func TestJointGraphWidth(t *testing.T) {
	// A chain TID has joint width bounded by a small constant: each fact
	// adds a var gate linked to a chain edge.
	tid := NewTID()
	for i := 0; i < 8; i++ {
		tid.AddFact(0.5, "E", fmtInt(i), fmtInt(i+1))
	}
	pcc := FromTID(tid)
	w := pcc.JointWidth()
	if w > 3 {
		t.Errorf("joint width of chain pcc = %d, want small", w)
	}
	g, _, _ := pcc.JointGraph()
	if g.N() != 9+pcc.Circ.NumGates() {
		t.Errorf("joint graph has %d vertices", g.N())
	}
}

func fmtInt(i int) string { return string(rune('a' + i)) }

func TestPropertyTIDSamplingConvergesToWorldDistribution(t *testing.T) {
	// Sampled query frequency approaches the enumerated probability.
	tid := NewTID()
	tid.AddFact(0.5, "R", "a")
	tid.AddFact(0.7, "S", "a", "b")
	tid.AddFact(0.2, "T", "b")
	q := rel.HardQuery()
	want := tid.QueryProbabilityEnumeration(q)
	r := rand.New(rand.NewSource(42))
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if q.Holds(tid.Sample(r)) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.02 {
		t.Errorf("sampled %v, exact %v", got, want)
	}
}

func TestPropertyCInstanceWorldsMatchAnnotations(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCInstance()
		events := []logic.Event{"a", "b", "c"}
		for i := 0; i < 5; i++ {
			e := events[r.Intn(len(events))]
			var f logic.Formula = logic.Var(e)
			if r.Intn(2) == 0 {
				f = logic.Not(f)
			}
			c.AddFact(f, "R", string(rune('p'+i)))
		}
		ok := true
		c.EnumerateWorlds(func(v logic.Valuation, w *rel.Instance) {
			for i := 0; i < c.NumFacts(); i++ {
				if w.Has(c.Inst.Fact(i)) != c.Ann[i].Eval(v) {
					ok = false
				}
			}
		})
		return ok
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestTIDProbabilityValidation(t *testing.T) {
	tid := NewTID()
	for _, bad := range []float64{-0.1, 1.1, math.NaN(), math.Inf(1)} {
		if _, err := tid.TryAddFact(bad, "R", "a"); err == nil {
			t.Errorf("TryAddFact accepted %v", bad)
		}
	}
	if tid.NumFacts() != 0 {
		t.Fatalf("rejected facts were stored: %d", tid.NumFacts())
	}
	i, err := tid.TryAddFact(0.5, "R", "a")
	if err != nil || i != 0 {
		t.Fatalf("TryAddFact(0.5) = %d, %v", i, err)
	}
	if err := tid.SetProb(0, 0.9); err != nil || tid.Prob(0) != 0.9 {
		t.Errorf("SetProb = %v, prob %v", err, tid.Prob(0))
	}
	if err := tid.SetProb(0, math.NaN()); err == nil {
		t.Error("SetProb accepted NaN")
	}
	if err := tid.SetProb(5, 0.5); err == nil {
		t.Error("SetProb accepted an out-of-range index")
	}
	// Add still panics on bad input, NaN included.
	defer func() {
		if recover() == nil {
			t.Error("Add(NaN) did not panic")
		}
	}()
	tid.AddFact(math.NaN(), "R", "b")
}
