// Package pdbio parses the textual interchange formats shared by the CLIs
// and the query service: uncertain-instance files, conjunctive queries,
// annotation formulas and sweep specs. It is the single home of the formats
// documented in cmd/pdbcli's package comment, so pdbcli, pdbd and tests all
// read exactly the same language.
//
// Instance format, one declaration per line ('#' starts a comment):
//
//	fact 0.9 R a          # TID-style fact with marginal probability
//	event e1 0.7          # declare an event with its probability
//	cfact e1 & !e2 S a b  # c-instance fact with a formula annotation
//
// fact and cfact lines may be mixed; plain facts get private events.
package pdbio

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// WatchEvent is the wire frame of pdbd's GET /watch server-sent-event
// stream, one frame per store commit (plus one initial snapshot frame). The
// stream is delta-based: a frame carries in Changed only the views whose
// probability this commit actually moved, keyed by the view's normalized
// query fingerprint (the same key /query reports). Full carries the complete
// fingerprint→probability state instead and appears on the initial snapshot
// frame, on every frame when the client opted in with ?full=1 (the
// pre-delta wire format: Full marshals under the legacy "probabilities"
// key), and as a resync whenever events were dropped on a slow consumer —
// Dropped then says how many commits the resync covers. A frame with an
// empty Changed and no Full is a heartbeat: the commit advanced Seq but
// moved no watched view.
type WatchEvent struct {
	// Seq is the store commit the frame reflects.
	Seq uint64 `json:"seq"`
	// Changed maps the fingerprint of each view whose probability this
	// commit moved to its refreshed value.
	Changed map[string]float64 `json:"changed,omitempty"`
	// Full is the complete fingerprint→probability state, marshalled under
	// the legacy "probabilities" key so ?full=1 streams stay byte-compatible
	// with pre-delta consumers.
	Full map[string]float64 `json:"probabilities,omitempty"`
	// Dropped counts the commits lost on this (slow) subscriber since the
	// previous frame; a non-zero Dropped rides on a Full resync frame.
	Dropped uint64 `json:"dropped,omitempty"`
}

// TIDFromInstance converts a parsed instance into a tuple-independent one:
// every fact must be annotated by its own single positive event. Instances
// with shared or complex annotations are rejected — the live-update store
// maintains tuple-level probabilities, so correlated facts have no
// well-defined per-tuple weight to update.
func TIDFromInstance(c *pdb.CInstance, p logic.Prob) (*pdb.TID, error) {
	t := pdb.NewTID()
	seen := map[logic.Event]int{}
	for i := 0; i < c.NumFacts(); i++ {
		f := c.Inst.Fact(i)
		vars := logic.Vars(c.Ann[i])
		if len(vars) != 1 || !logic.Equivalent(c.Ann[i], logic.Var(vars[0])) {
			return nil, fmt.Errorf("fact %s has annotation %s: the update mode needs a tuple-independent instance (plain 'fact' lines, or one positive event per cfact)", f, logic.String(c.Ann[i]))
		}
		if prev, dup := seen[vars[0]]; dup {
			return nil, fmt.Errorf("facts %s and %s share event %s: the update mode needs independent tuples", c.Inst.Fact(prev), f, vars[0])
		}
		seen[vars[0]] = i
		if _, err := t.TryAdd(f, p.P(vars[0])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ParseSweep parses a -batch spec "event=v1,v2,..." into the event and its
// probability values.
func ParseSweep(spec string) (logic.Event, []float64, error) {
	name, list, ok := strings.Cut(spec, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return "", nil, fmt.Errorf("-batch wants 'event=v1,v2,...', got %q", spec)
	}
	var vals []float64
	for _, tok := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return "", nil, fmt.Errorf("-batch value %q: %v", tok, err)
		}
		if v < 0 || v > 1 {
			return "", nil, fmt.Errorf("-batch value %v outside [0,1]", v)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return "", nil, fmt.Errorf("-batch lists no values")
	}
	return logic.Event(name), vals, nil
}

// ParseInstance reads the instance format described in the package comment.
func ParseInstance(sc *bufio.Scanner) (*pdb.CInstance, logic.Prob, error) {
	c := pdb.NewCInstance()
	p := logic.Prob{}
	fresh := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "event":
			if len(fields) != 3 {
				return nil, nil, fmt.Errorf("line %d: event NAME PROB", line)
			}
			pr, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", line, err)
			}
			p[logic.Event(fields[1])] = pr
		case "fact":
			if len(fields) < 3 {
				return nil, nil, fmt.Errorf("line %d: fact PROB REL ARGS...", line)
			}
			pr, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", line, err)
			}
			e := logic.Event(fmt.Sprintf("_f%d", fresh))
			fresh++
			p[e] = pr
			c.AddFact(logic.Var(e), fields[2], fields[3:]...)
		case "cfact":
			// cfact FORMULA... REL ARGS...: the formula is everything up
			// to the second-to-last whitespace-run that starts a
			// relation name; we locate the split by parsing from the end:
			// the relation is the first field after the formula, so we
			// re-join and search for the last formula token.
			rest := strings.TrimSpace(text[len("cfact"):])
			ann, relPart, err := SplitAnnotation(rest)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", line, err)
			}
			f, err := ParseFormula(ann)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", line, err)
			}
			rf := strings.Fields(relPart)
			c.AddFact(f, rf[0], rf[1:]...)
		default:
			return nil, nil, fmt.Errorf("line %d: unknown directive %q", line, fields[0])
		}
	}
	return c, p, sc.Err()
}

// SplitAnnotation separates "e1 & !e2 S a b" into the formula part and the
// fact part: the fact begins at the last token run that is not part of a
// formula (no operators around it). We use the convention that the formula
// and the fact are separated by the last operator-free boundary: formula
// tokens are identifiers, '&', '|', '!', '(' , ')'; the first token that is
// followed only by identifier tokens and is preceded by an identifier or
// ')' begins the fact.
func SplitAnnotation(s string) (string, string, error) {
	tokens := strings.Fields(s)
	if len(tokens) < 2 {
		return "", "", fmt.Errorf("cfact needs a formula and a fact")
	}
	isOp := func(t string) bool {
		return t == "&" || t == "|" || strings.HasPrefix(t, "!") || strings.HasSuffix(t, "&") || strings.HasSuffix(t, "|")
	}
	// Scan from the right: the fact is the longest suffix of operator-free
	// tokens such that the token before the suffix is not an operator.
	split := -1
	for i := len(tokens) - 1; i >= 1; i-- {
		if isOp(tokens[i]) {
			split = i + 1
			break
		}
	}
	if split < 0 {
		split = 1 // single-token formula
	}
	if split >= len(tokens) {
		return "", "", fmt.Errorf("cfact is missing the fact after the formula")
	}
	return strings.Join(tokens[:split], " "), strings.Join(tokens[split:], " "), nil
}

// ParseFormula parses formulas with '!', '&', '|' and parentheses, with the
// usual precedences (! > & > |).
func ParseFormula(s string) (logic.Formula, error) {
	p := &fparser{input: s}
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("trailing input %q in formula", p.input[p.pos:])
	}
	return f, nil
}

type fparser struct {
	input string
	pos   int
}

func (p *fparser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *fparser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func (p *fparser) parseOr() (logic.Formula, error) {
	f, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		g, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		f = logic.Or(f, g)
	}
	return f, nil
}

func (p *fparser) parseAnd() (logic.Formula, error) {
	f, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == '&' {
		p.pos++
		g, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		f = logic.And(f, g)
	}
	return f, nil
}

func (p *fparser) parseUnary() (logic.Formula, error) {
	switch p.peek() {
	case '!':
		p.pos++
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return logic.Not(f), nil
	case '(':
		p.pos++
		f, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ')' in formula")
		}
		p.pos++
		return f, nil
	case 0:
		return nil, fmt.Errorf("unexpected end of formula")
	}
	start := p.pos
	for p.pos < len(p.input) && isIdent(p.input[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("unexpected character %q in formula", p.input[p.pos])
	}
	name := p.input[start:p.pos]
	switch name {
	case "true":
		return logic.True, nil
	case "false":
		return logic.False, nil
	}
	return logic.Var(logic.Event(name)), nil
}

func isIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// ParseCQ parses 'R(?x) & S(?x,?y) & T(c)': variables start with '?',
// everything else is a constant.
func ParseCQ(s string) (rel.CQ, error) {
	var atoms []rel.Atom
	for _, part := range strings.Split(s, "&") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		open := strings.IndexByte(part, '(')
		if open < 0 || !strings.HasSuffix(part, ")") {
			return rel.CQ{}, fmt.Errorf("atom %q must look like R(?x,c)", part)
		}
		relName := strings.TrimSpace(part[:open])
		if relName == "" {
			return rel.CQ{}, fmt.Errorf("atom %q has no relation name", part)
		}
		inner := part[open+1 : len(part)-1]
		var terms []rel.Term
		if strings.TrimSpace(inner) != "" {
			for _, raw := range strings.Split(inner, ",") {
				tok := strings.TrimSpace(raw)
				if tok == "" {
					return rel.CQ{}, fmt.Errorf("empty term in %q", part)
				}
				if strings.HasPrefix(tok, "?") {
					terms = append(terms, rel.V(tok[1:]))
				} else {
					terms = append(terms, rel.C(tok))
				}
			}
		}
		atoms = append(atoms, rel.NewAtom(relName, terms...))
	}
	if len(atoms) == 0 {
		return rel.CQ{}, fmt.Errorf("empty query")
	}
	return rel.NewCQ(atoms...), nil
}
