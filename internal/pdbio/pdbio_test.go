package pdbio

import (
	"bufio"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestParseCQ(t *testing.T) {
	q, err := ParseCQ("R(?x) & S(?x,?y) & T(c)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 3 {
		t.Fatalf("atoms = %d", len(q.Atoms))
	}
	if !q.Atoms[0].Terms[0].IsVar || q.Atoms[0].Terms[0].Name != "x" {
		t.Errorf("first term = %+v", q.Atoms[0].Terms[0])
	}
	if q.Atoms[2].Terms[0].IsVar || q.Atoms[2].Terms[0].Name != "c" {
		t.Errorf("constant term = %+v", q.Atoms[2].Terms[0])
	}
	if got := q.String(); got != "R(?x) & S(?x,?y) & T(c)" {
		t.Errorf("round trip = %q", got)
	}
}

func TestParseCQErrors(t *testing.T) {
	for _, bad := range []string{"", "R", "R(?x", "(?x)", "R(?x,)"} {
		if _, err := ParseCQ(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestParseFormula(t *testing.T) {
	cases := []struct {
		in   string
		want logic.Formula
	}{
		{"a", logic.Var("a")},
		{"!a", logic.Not(logic.Var("a"))},
		{"a & b | c", logic.Or(logic.And(logic.Var("a"), logic.Var("b")), logic.Var("c"))},
		{"a & (b | c)", logic.And(logic.Var("a"), logic.Or(logic.Var("b"), logic.Var("c")))},
		{"true & a", logic.Var("a")},
		{"!(a | b)", logic.And(logic.Not(logic.Var("a")), logic.Not(logic.Var("b")))},
	}
	for _, tc := range cases {
		got, err := ParseFormula(tc.in)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if !logic.Equivalent(got, tc.want) {
			t.Errorf("%q parsed to %s", tc.in, logic.String(got))
		}
	}
	for _, bad := range []string{"", "a &", "(a", "a b", "&a"} {
		if _, err := ParseFormula(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestParseInstance(t *testing.T) {
	input := `
# Table-1-ish instance
event pods 0.8
event stoc 0.3
cfact pods & !stoc Trip MEL CDG
cfact pods Trip CDG MEL
fact 0.5 Extra x
`
	c, p, err := ParseInstance(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumFacts() != 3 {
		t.Fatalf("facts = %d", c.NumFacts())
	}
	if math.Abs(p.P("pods")-0.8) > 1e-12 {
		t.Errorf("P(pods) = %v", p.P("pods"))
	}
	// The plain fact got a private event with probability 0.5.
	found := false
	for e, pr := range p {
		if strings.HasPrefix(string(e), "_f") && pr == 0.5 {
			found = true
		}
	}
	if !found {
		t.Error("private event for plain fact missing")
	}
	// The annotated fact evaluates per its formula.
	w := c.World(logic.Valuation{"pods": true, "stoc": false})
	if w.NumFacts() < 2 {
		t.Errorf("world too small: %v", w.Facts())
	}
}

func TestParseInstanceErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus 1 2",
		"event x",
		"fact notanumber R a",
		"cfact onlyformula",
	} {
		_, _, err := ParseInstance(bufio.NewScanner(strings.NewReader(bad)))
		if err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestParseSweep(t *testing.T) {
	event, vals, err := ParseSweep("e1=0.1, 0.5,0.9")
	if err != nil {
		t.Fatal(err)
	}
	if event != "e1" || len(vals) != 3 || vals[1] != 0.5 {
		t.Errorf("parsed %q / %v", event, vals)
	}
	for _, bad := range []string{"", "e1", "=0.1", "e1=", "e1=x", "e1=1.5"} {
		if _, _, err := ParseSweep(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestSplitAnnotation(t *testing.T) {
	ann, fact, err := SplitAnnotation("e1 & !e2 S a b")
	if err != nil {
		t.Fatal(err)
	}
	if ann != "e1 & !e2" || fact != "S a b" {
		t.Errorf("split = %q / %q", ann, fact)
	}
	ann, fact, err = SplitAnnotation("e1 R x")
	if err != nil {
		t.Fatal(err)
	}
	if ann != "e1" || fact != "R x" {
		t.Errorf("split = %q / %q", ann, fact)
	}
}

// TestWatchEventGoldenFrames pins the /watch wire format byte for byte:
// delta frames carry only "changed", full and resync frames marshal the
// complete state under the legacy "probabilities" key, a dropped count rides
// the resync, and a heartbeat is just the sequence number. Field order and
// key names are the protocol — a change here breaks deployed consumers.
func TestWatchEventGoldenFrames(t *testing.T) {
	cases := []struct {
		name string
		ev   WatchEvent
		want string
	}{
		{
			"delta",
			WatchEvent{Seq: 3, Changed: map[string]float64{"ab12cd34": 0.5}},
			`{"seq":3,"changed":{"ab12cd34":0.5}}`,
		},
		{
			"initial-or-full",
			WatchEvent{Seq: 1, Full: map[string]float64{"ab12cd34": 0.25}},
			`{"seq":1,"probabilities":{"ab12cd34":0.25}}`,
		},
		{
			"drop-resync",
			WatchEvent{Seq: 9, Full: map[string]float64{"ab12cd34": 1}, Dropped: 2},
			`{"seq":9,"probabilities":{"ab12cd34":1},"dropped":2}`,
		},
		{
			"heartbeat",
			WatchEvent{Seq: 5},
			`{"seq":5}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := json.Marshal(tc.ev)
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != tc.want {
				t.Fatalf("frame = %s, want %s", b, tc.want)
			}
			// The frame round-trips: a consumer decoding with the same type
			// sees exactly what was sent.
			var back WatchEvent
			if err := json.Unmarshal(b, &back); err != nil {
				t.Fatal(err)
			}
			if back.Seq != tc.ev.Seq || back.Dropped != tc.ev.Dropped ||
				len(back.Changed) != len(tc.ev.Changed) || len(back.Full) != len(tc.ev.Full) {
				t.Fatalf("round-trip mismatch: %+v vs %+v", back, tc.ev)
			}
		})
	}
}
