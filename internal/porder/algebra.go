package porder

// Positive relational algebra on labeled partial orders with bag semantics,
// following "Querying order-incomplete data" [6]. Each operator returns a
// new LPO whose possible worlds are the intended combinations of the
// operands' worlds; where several orderings of the result are reasonable,
// two operator variants capture the spectrum (parallel vs concatenating
// union, direct-product vs lexicographic product), formalizing the possible
// behaviours of SQL implementations on ordered data.

// Select keeps the elements whose label satisfies pred, with the induced
// order.
func Select(l *LPO, pred func(Tuple) bool) *LPO {
	out := NewLPO()
	keep := map[int]int{}
	for i := 0; i < l.N(); i++ {
		if pred(l.Label(i)) {
			keep[i] = out.Add(l.Label(i))
		}
	}
	for a, na := range keep {
		for b, nb := range keep {
			if a != b && l.Less(a, b) {
				out.Order(na, nb)
			}
		}
	}
	return out
}

// Project replaces every label by proj(label), keeping order and
// multiplicity (bag semantics: duplicates are not merged).
func Project(l *LPO, proj func(Tuple) Tuple) *LPO {
	out := NewLPO()
	for i := 0; i < l.N(); i++ {
		out.Add(proj(l.Label(i)))
	}
	for a := 0; a < l.N(); a++ {
		for b := 0; b < l.N(); b++ {
			if a != b && l.Less(a, b) {
				out.Order(a, b)
			}
		}
	}
	return out
}

// Columns returns a projection function keeping the given column indices.
func Columns(cols ...int) func(Tuple) Tuple {
	return func(t Tuple) Tuple {
		out := make(Tuple, len(cols))
		for i, c := range cols {
			out[i] = t[c]
		}
		return out
	}
}

// UnionParallel is the order-agnostic union: the disjoint union of the
// operands with no constraints between them. Its possible worlds are all
// interleavings of the operands' worlds.
func UnionParallel(a, b *LPO) *LPO {
	out := a.Clone()
	offset := out.N()
	for i := 0; i < b.N(); i++ {
		out.Add(b.Label(i))
	}
	for _, e := range b.edges {
		out.Order(e[0]+offset, e[1]+offset)
	}
	return out
}

// UnionConcat is the concatenating union: every element of a precedes every
// element of b, as in UNION ALL implementations that keep input order.
func UnionConcat(a, b *LPO) *LPO {
	out := UnionParallel(a, b)
	for i := 0; i < a.N(); i++ {
		for j := 0; j < b.N(); j++ {
			out.Order(i, a.N()+j)
		}
	}
	return out
}

// ProductDirect is the cartesian product under the direct (pointwise) order:
// (a1,b1) < (a2,b2) iff a1 ≤ a2 and b1 ≤ b2 with at least one strict. It
// commits to as little order as is forced by both operands.
func ProductDirect(a, b *LPO) *LPO {
	out := NewLPO()
	id := func(i, j int) int { return i*b.N() + j }
	for i := 0; i < a.N(); i++ {
		for j := 0; j < b.N(); j++ {
			out.Add(append(append(Tuple{}, a.Label(i)...), b.Label(j)...))
		}
	}
	for i1 := 0; i1 < a.N(); i1++ {
		for j1 := 0; j1 < b.N(); j1++ {
			for i2 := 0; i2 < a.N(); i2++ {
				for j2 := 0; j2 < b.N(); j2++ {
					if i1 == i2 && j1 == j2 {
						continue
					}
					aLE := i1 == i2 || a.Less(i1, i2)
					bLE := j1 == j2 || b.Less(j1, j2)
					if aLE && bLE {
						out.Order(id(i1, j1), id(i2, j2))
					}
				}
			}
		}
	}
	return out
}

// ProductLex is the cartesian product under the lexicographic order driven
// by the left operand: (a1,b1) < (a2,b2) iff a1 < a2, or a1 = a2 and
// b1 < b2 — the nested-loop evaluation order.
func ProductLex(a, b *LPO) *LPO {
	out := NewLPO()
	id := func(i, j int) int { return i*b.N() + j }
	for i := 0; i < a.N(); i++ {
		for j := 0; j < b.N(); j++ {
			out.Add(append(append(Tuple{}, a.Label(i)...), b.Label(j)...))
		}
	}
	for i1 := 0; i1 < a.N(); i1++ {
		for j1 := 0; j1 < b.N(); j1++ {
			for i2 := 0; i2 < a.N(); i2++ {
				for j2 := 0; j2 < b.N(); j2++ {
					if i1 == i2 && j1 == j2 {
						continue
					}
					if a.Less(i1, i2) || (i1 == i2 && b.Less(j1, j2)) {
						out.Order(id(i1, j1), id(i2, j2))
					}
				}
			}
		}
	}
	return out
}
