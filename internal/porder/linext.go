package porder

import (
	"fmt"
	"math/big"
)

// CountLinearExtensions counts the linear extensions of the LPO by the
// downset dynamic program: the count from a remaining-element set S is the
// sum over the minimal elements of S of the count without that element.
// Memoized on the remaining set, so the cost is bounded by the number of
// order ideals — exponential in general (the problem is #P-complete) but
// often far smaller in practice. Limited to 62 elements by the bitmask; use
// the series-parallel counter for large structured LPOs.
func (l *LPO) CountLinearExtensions() (*big.Int, error) {
	if err := l.close(); err != nil {
		return nil, err
	}
	n := l.N()
	if n > 62 {
		return nil, fmt.Errorf("porder: %d elements exceed the downset DP's 62-element bitmask", n)
	}
	// predMask[i] = strict predecessors of i as a bitmask.
	predMask := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if l.closure[i].get(j) {
				predMask[i] |= 1 << uint(j)
			}
		}
	}
	memo := map[uint64]*big.Int{}
	var count func(remaining uint64) *big.Int
	count = func(remaining uint64) *big.Int {
		if remaining == 0 {
			return big.NewInt(1)
		}
		if v, ok := memo[remaining]; ok {
			return v
		}
		total := new(big.Int)
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if remaining&bit == 0 {
				continue
			}
			// i is minimal among remaining iff no remaining predecessor.
			if predMask[i]&remaining != 0 {
				continue
			}
			total.Add(total, count(remaining&^bit))
		}
		memo[remaining] = total
		return total
	}
	full := uint64(0)
	if n > 0 {
		full = (1 << uint(n)) - 1
	}
	return count(full), nil
}

// EnumerateLinearExtensions calls fn with every linear extension, as a
// permutation of element indices. Factorial blowup: for tests and tiny
// inputs only.
func (l *LPO) EnumerateLinearExtensions(fn func(perm []int)) error {
	if err := l.close(); err != nil {
		return err
	}
	n := l.N()
	used := make([]bool, n)
	perm := make([]int, 0, n)
	var rec func()
	rec = func() {
		if len(perm) == n {
			fn(perm)
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			ok := true
			for j := 0; j < n; j++ {
				if !used[j] && l.closure[i].get(j) {
					ok = false // an unplaced predecessor remains
					break
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			perm = append(perm, i)
			rec()
			perm = perm[:len(perm)-1]
			used[i] = false
		}
	}
	rec()
	return nil
}

// IsLinearExtension reports whether the permutation of element indices
// respects the order (polynomial).
func (l *LPO) IsLinearExtension(perm []int) bool {
	if len(perm) != l.N() {
		return false
	}
	pos := make([]int, l.N())
	seen := make([]bool, l.N())
	for p, e := range perm {
		if e < 0 || e >= l.N() || seen[e] {
			return false
		}
		seen[e] = true
		pos[e] = p
	}
	for a := 0; a < l.N(); a++ {
		for b := 0; b < l.N(); b++ {
			if l.Less(a, b) && pos[a] >= pos[b] {
				return false
			}
		}
	}
	return true
}

// PossibleWorlds returns the distinct label sequences of the LPO's linear
// extensions, as slices of tuples. Exponential; tests and tiny inputs only.
func (l *LPO) PossibleWorlds() ([][]Tuple, error) {
	seen := map[string]bool{}
	var out [][]Tuple
	err := l.EnumerateLinearExtensions(func(perm []int) {
		var key string
		world := make([]Tuple, len(perm))
		for i, e := range perm {
			world[i] = l.labels[e]
			key += l.labels[e].Key() + ";"
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, world)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// IsPossibleWorld reports whether the label sequence is a possible world of
// the LPO: whether some linear extension produces exactly these labels in
// this order. With duplicate labels this is a matching problem, NP-hard in
// general (as the paper notes); this implementation backtracks, with two
// polynomial fast paths: totally unordered LPOs (multiset comparison) and
// sequences over distinct labels (greedy check).
func (l *LPO) IsPossibleWorld(seq []Tuple) (bool, error) {
	if err := l.close(); err != nil {
		return false, err
	}
	if len(seq) != l.N() {
		return false, nil
	}
	// Fast path: antichain — any permutation works, compare multisets.
	if l.IsAntichain() {
		return sameMultiset(l.labels, seq), nil
	}
	// Fast path: all labels distinct — the required element at each rank
	// is forced, check it is minimal among the remaining ones.
	if labelsDistinct(l.labels) {
		byKey := map[string]int{}
		for i, lab := range l.labels {
			byKey[lab.Key()] = i
		}
		placed := make([]bool, l.N())
		for _, lab := range seq {
			e, ok := byKey[lab.Key()]
			if !ok || placed[e] {
				return false, nil
			}
			for j := 0; j < l.N(); j++ {
				if !placed[j] && l.closure[e].get(j) {
					return false, nil
				}
			}
			placed[e] = true
		}
		return true, nil
	}
	// General case: backtracking over label-compatible minimal elements.
	used := make([]bool, l.N())
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(seq) {
			return true
		}
		for e := 0; e < l.N(); e++ {
			if used[e] || !l.labels[e].Equal(seq[k]) {
				continue
			}
			minimal := true
			for j := 0; j < l.N(); j++ {
				if !used[j] && l.closure[e].get(j) {
					minimal = false
					break
				}
			}
			if !minimal {
				continue
			}
			used[e] = true
			if rec(k + 1) {
				return true
			}
			used[e] = false
		}
		return false
	}
	return rec(0), nil
}

func labelsDistinct(labels []Tuple) bool {
	seen := map[string]bool{}
	for _, lab := range labels {
		k := lab.Key()
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}

func sameMultiset(a []Tuple, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	counts := map[string]int{}
	for _, t := range a {
		counts[t.Key()]++
	}
	for _, t := range b {
		counts[t.Key()]--
		if counts[t.Key()] < 0 {
			return false
		}
	}
	return true
}

// Factorial returns n! as a big integer (the linear extension count of an
// n-element antichain).
func Factorial(n int) *big.Int {
	out := big.NewInt(1)
	for i := 2; i <= n; i++ {
		out.Mul(out, big.NewInt(int64(i)))
	}
	return out
}
