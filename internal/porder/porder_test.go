package porder

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func tup(vals ...string) Tuple { return Tuple(vals) }

func TestChainAntichainBasics(t *testing.T) {
	c := Chain(tup("a"), tup("b"), tup("c"))
	if !c.IsChain() || c.IsAntichain() {
		t.Error("chain misclassified")
	}
	if !c.Less(0, 2) || c.Less(2, 0) {
		t.Error("transitive closure broken")
	}
	a := Antichain(tup("a"), tup("b"), tup("c"))
	if a.IsChain() || !a.IsAntichain() {
		t.Error("antichain misclassified")
	}
	if got := len(a.Minimal()); got != 3 {
		t.Errorf("antichain minimal = %d", got)
	}
	if got := len(c.Minimal()); got != 1 {
		t.Errorf("chain minimal = %d", got)
	}
}

func TestCycleDetection(t *testing.T) {
	l := NewLPO()
	l.Add(tup("a"))
	l.Add(tup("b"))
	l.Order(0, 1)
	l.Order(1, 0)
	if err := l.Validate(); err == nil {
		t.Error("expected cycle error")
	}
}

func TestCountLinearExtensionsKnownValues(t *testing.T) {
	cases := []struct {
		l    *LPO
		want int64
	}{
		{Chain(tup("a"), tup("b"), tup("c"), tup("d")), 1},
		{Antichain(tup("a"), tup("b"), tup("c"), tup("d")), 24},
		{NewLPO(), 1},
	}
	// V-shape: a < c, b < c has 2 extensions.
	v := NewLPO()
	v.Add(tup("a"))
	v.Add(tup("b"))
	v.Add(tup("c"))
	v.Order(0, 2)
	v.Order(1, 2)
	cases = append(cases, struct {
		l    *LPO
		want int64
	}{v, 2})
	for i, tc := range cases {
		got, err := tc.l.CountLinearExtensions()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Cmp(big.NewInt(tc.want)) != 0 {
			t.Errorf("case %d: count = %s, want %d", i, got, tc.want)
		}
	}
}

func randomPoset(r *rand.Rand, n int, p float64) *LPO {
	l := NewLPO()
	labels := []Tuple{tup("x"), tup("y"), tup("z")}
	for i := 0; i < n; i++ {
		l.Add(labels[r.Intn(len(labels))])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				l.Order(i, j) // i < j in index order: always acyclic
			}
		}
	}
	return l
}

func TestPropertyCountMatchesEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomPoset(r, 1+r.Intn(6), r.Float64())
		want := 0
		if err := l.EnumerateLinearExtensions(func([]int) { want++ }); err != nil {
			return false
		}
		got, err := l.CountLinearExtensions()
		if err != nil {
			return false
		}
		return got.Cmp(big.NewInt(int64(want))) == 0
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyEnumeratedExtensionsAreValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomPoset(r, 1+r.Intn(6), r.Float64())
		ok := true
		_ = l.EnumerateLinearExtensions(func(perm []int) {
			if !l.IsLinearExtension(perm) {
				ok = false
			}
		})
		return ok
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestSPCountsMatchDownsetDP(t *testing.T) {
	// Random series-parallel structures, cross-checked.
	r := rand.New(rand.NewSource(11))
	var build func(budget int) *SP
	build = func(budget int) *SP {
		if budget <= 1 {
			return Elem(tup("e"))
		}
		k := 2 + r.Intn(2)
		var parts []*SP
		for i := 0; i < k; i++ {
			parts = append(parts, build(budget/k))
		}
		if r.Intn(2) == 0 {
			return Series(parts...)
		}
		return Parallel(parts...)
	}
	for trial := 0; trial < 40; trial++ {
		sp := build(2 + r.Intn(8))
		want, err := sp.ToLPO().CountLinearExtensions()
		if err != nil {
			t.Fatal(err)
		}
		got := sp.CountLinearExtensions()
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: SP %s, downset %s", trial, got, want)
		}
	}
}

func TestSPKnownValues(t *testing.T) {
	// Two parallel chains of lengths 3 and 2: C(5,3) = 10 shuffles.
	sp := Parallel(
		SPChain(tup("a1"), tup("a2"), tup("a3")),
		SPChain(tup("b1"), tup("b2")),
	)
	if got := sp.CountLinearExtensions(); got.Cmp(big.NewInt(10)) != 0 {
		t.Errorf("count = %s, want 10", got)
	}
	if got := SPAntichain(tup("a"), tup("b"), tup("c")).CountLinearExtensions(); got.Cmp(big.NewInt(6)) != 0 {
		t.Errorf("antichain count = %s, want 6", got)
	}
	if got := SPChain(tup("a"), tup("b"), tup("c")).CountLinearExtensions(); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("chain count = %s, want 1", got)
	}
}

func TestSPLargePolynomial(t *testing.T) {
	// 1000 parallel 2-chains: the count is astronomically large but the SP
	// recursion computes it instantly; the downset DP could never.
	parts := make([]*SP, 1000)
	for i := range parts {
		parts[i] = SPChain(tup("x"), tup("y"))
	}
	sp := Parallel(parts...)
	got := sp.CountLinearExtensions()
	if got.BitLen() < 1000 {
		t.Errorf("count suspiciously small: %d bits", got.BitLen())
	}
}

func TestIsPossibleWorld(t *testing.T) {
	// a < b with c unordered, duplicate labels.
	l := NewLPO()
	l.Add(tup("x")) // 0
	l.Add(tup("y")) // 1
	l.Add(tup("x")) // 2 duplicate label, unordered
	l.Order(0, 1)   // x(0) < y
	cases := []struct {
		seq  []Tuple
		want bool
	}{
		{[]Tuple{tup("x"), tup("y"), tup("x")}, true},
		{[]Tuple{tup("x"), tup("x"), tup("y")}, true},
		{[]Tuple{tup("y"), tup("x"), tup("x")}, false}, // y before both x's violates x(0) < y
		{[]Tuple{tup("x"), tup("y")}, false},           // wrong length
		{[]Tuple{tup("x"), tup("y"), tup("z")}, false}, // wrong labels
	}
	for i, tc := range cases {
		got, err := l.IsPossibleWorld(tc.seq)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("case %d: got %v, want %v", i, got, tc.want)
		}
	}
}

func TestPropertyPossibleWorldMembershipMatchesEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomPoset(r, 1+r.Intn(5), r.Float64())
		worlds, err := l.PossibleWorlds()
		if err != nil {
			return false
		}
		// Every enumerated world is a member.
		for _, w := range worlds {
			ok, err := l.IsPossibleWorld(w)
			if err != nil || !ok {
				t.Logf("seed %d: enumerated world rejected", seed)
				return false
			}
		}
		// A random shuffle of the labels is a member iff it appears in the
		// enumeration.
		labels := make([]Tuple, l.N())
		for i := range labels {
			labels[i] = l.Label(i)
		}
		r.Shuffle(len(labels), func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
		inEnum := false
		for _, w := range worlds {
			same := true
			for i := range w {
				if !w[i].Equal(labels[i]) {
					same = false
					break
				}
			}
			if same {
				inEnum = true
				break
			}
		}
		got, err := l.IsPossibleWorld(labels)
		return err == nil && got == inEnum
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestSelectProject(t *testing.T) {
	l := Chain(tup("a", "1"), tup("b", "2"), tup("a", "3"))
	sel := Select(l, func(t Tuple) bool { return t[0] == "a" })
	if sel.N() != 2 || !sel.IsChain() {
		t.Errorf("selection of a chain must stay a chain: %s", sel)
	}
	proj := Project(l, Columns(0))
	if proj.N() != 3 {
		t.Errorf("projection must keep duplicates (bag semantics): %d", proj.N())
	}
	if !proj.Label(0).Equal(tup("a")) || !proj.Label(2).Equal(tup("a")) {
		t.Errorf("projection labels wrong")
	}
	if !proj.IsChain() {
		t.Error("projection must preserve order")
	}
}

func TestUnionVariants(t *testing.T) {
	a := Chain(tup("a1"), tup("a2"))
	b := Chain(tup("b1"), tup("b2"))
	par := UnionParallel(a, b)
	cat := UnionConcat(a, b)
	// Parallel union of two 2-chains: C(4,2) = 6 worlds.
	worldsPar, err := par.PossibleWorlds()
	if err != nil {
		t.Fatal(err)
	}
	if len(worldsPar) != 6 {
		t.Errorf("parallel union worlds = %d, want 6", len(worldsPar))
	}
	// Concatenating union: exactly one world a1 a2 b1 b2.
	worldsCat, err := cat.PossibleWorlds()
	if err != nil {
		t.Fatal(err)
	}
	if len(worldsCat) != 1 {
		t.Fatalf("concat union worlds = %d, want 1", len(worldsCat))
	}
	want := []Tuple{tup("a1"), tup("a2"), tup("b1"), tup("b2")}
	for i := range want {
		if !worldsCat[0][i].Equal(want[i]) {
			t.Errorf("concat world = %v", worldsCat[0])
			break
		}
	}
}

func TestProductVariants(t *testing.T) {
	a := Chain(tup("a1"), tup("a2"))
	b := Chain(tup("b1"), tup("b2"))
	lex := ProductLex(a, b)
	if !lex.IsChain() {
		t.Error("lexicographic product of chains must be a chain")
	}
	worlds, err := lex.PossibleWorlds()
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 1 {
		t.Fatalf("lex product worlds = %d, want 1", len(worlds))
	}
	first := worlds[0][0]
	if !first.Equal(tup("a1", "b1")) {
		t.Errorf("lex product starts with %v", first)
	}
	direct := ProductDirect(a, b)
	if direct.IsChain() {
		t.Error("direct product of chains is not total ((a1,b2) vs (a2,b1))")
	}
	// Direct product of 2-chains is the 2x2 grid poset: 2 extensions.
	count, err := direct.CountLinearExtensions()
	if err != nil {
		t.Fatal(err)
	}
	if count.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("direct product count = %s, want 2", count)
	}
}

func TestLogMergeScenario(t *testing.T) {
	// Merging two machine logs with no global timestamps (the paper's
	// fetchmail/dmesg example): parallel union, then select errors.
	log1 := Chain(tup("m1", "boot"), tup("m1", "error"), tup("m1", "halt"))
	log2 := Chain(tup("m2", "boot"), tup("m2", "error"))
	merged := UnionParallel(log1, log2)
	count, err := merged.CountLinearExtensions()
	if err != nil {
		t.Fatal(err)
	}
	if count.Cmp(big.NewInt(10)) != 0 { // C(5,3)
		t.Errorf("merge count = %s, want 10", count)
	}
	errs := Select(merged, func(t Tuple) bool { return t[1] == "error" })
	if errs.N() != 2 || errs.IsChain() {
		t.Errorf("errors from different machines must stay unordered: %s", errs)
	}
	// The two errors can appear in either order.
	worlds, err := errs.PossibleWorlds()
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 2 {
		t.Errorf("error order worlds = %d, want 2", len(worlds))
	}
}

func TestFactorial(t *testing.T) {
	if Factorial(5).Cmp(big.NewInt(120)) != 0 {
		t.Error("5! != 120")
	}
	if Factorial(0).Cmp(big.NewInt(1)) != 0 {
		t.Error("0! != 1")
	}
}
