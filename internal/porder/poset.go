// Package porder implements order uncertainty (Section 3): labeled partial
// orders (LPOs) as a representation system for relations whose order is only
// partially known, with
//
//   - possible-worlds semantics: the worlds of an LPO are the label
//     sequences of its linear extensions;
//   - a bag semantics for the positive relational algebra (selection,
//     projection, two unions, two products) following "Querying
//     order-incomplete data" [Amarilli–Ba–Deutch–Senellart];
//   - counting of linear extensions: a downset (order-ideal) dynamic
//     program, exponential in general (the problem is #P-complete,
//     Brightwell–Winkler), and a polynomial-time counter for
//     series-parallel LPOs — a structurally tractable class;
//   - possible-world membership: NP-hard for duplicate labels in general,
//     solved by backtracking with polynomial special cases (distinct
//     labels, unordered and totally ordered LPOs).
package porder

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is the label of an LPO element: a relational tuple.
type Tuple []string

// Key renders the tuple canonically.
func (t Tuple) Key() string { return strings.Join(t, ",") }

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// LPO is a labeled partial order: elements 0..n-1 carrying tuples, with a
// strict partial order given by edges (closed transitively on demand).
type LPO struct {
	labels  []Tuple
	edges   [][2]int
	closure []bitset // closure[i] = strict predecessors of i; nil when stale
}

// NewLPO returns an empty LPO.
func NewLPO() *LPO { return &LPO{} }

// Add appends an element with the given label and returns its index.
func (l *LPO) Add(label Tuple) int {
	l.labels = append(l.labels, append(Tuple(nil), label...))
	l.closure = nil
	return len(l.labels) - 1
}

// Order records a < b. Panics on out-of-range; cycles are detected lazily by
// Validate/close.
func (l *LPO) Order(a, b int) {
	if a < 0 || b < 0 || a >= len(l.labels) || b >= len(l.labels) {
		panic(fmt.Sprintf("porder: order (%d,%d) out of range", a, b))
	}
	l.edges = append(l.edges, [2]int{a, b})
	l.closure = nil
}

// N returns the number of elements.
func (l *LPO) N() int { return len(l.labels) }

// Label returns the tuple of element i.
func (l *LPO) Label(i int) Tuple { return l.labels[i] }

// close computes the transitive closure, returning an error on cycles.
func (l *LPO) close() error {
	if l.closure != nil {
		return nil
	}
	n := len(l.labels)
	succ := make([][]int, n)
	indeg := make([]int, n)
	for _, e := range l.edges {
		succ[e[0]] = append(succ[e[0]], e[1])
		indeg[e[1]]++
	}
	// Kahn topological order.
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	closure := make([]bitset, n)
	for i := range closure {
		closure[i] = newBitset(n)
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for _, w := range succ[v] {
			closure[w].or(closure[v])
			closure[w].set(v)
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("porder: order relation contains a cycle")
	}
	l.closure = closure
	return nil
}

// Validate checks that the order is acyclic.
func (l *LPO) Validate() error { return l.close() }

// Less reports whether a < b in the strict partial order.
func (l *LPO) Less(a, b int) bool {
	if err := l.close(); err != nil {
		panic(err)
	}
	return l.closure[b].get(a)
}

// Comparable reports whether a and b are ordered either way.
func (l *LPO) Comparable(a, b int) bool { return l.Less(a, b) || l.Less(b, a) }

// IsChain reports whether the order is total.
func (l *LPO) IsChain() bool {
	for i := 0; i < l.N(); i++ {
		for j := i + 1; j < l.N(); j++ {
			if !l.Comparable(i, j) {
				return false
			}
		}
	}
	return true
}

// IsAntichain reports whether no two elements are comparable.
func (l *LPO) IsAntichain() bool {
	for i := 0; i < l.N(); i++ {
		for j := i + 1; j < l.N(); j++ {
			if l.Comparable(i, j) {
				return false
			}
		}
	}
	return true
}

// Minimal returns the sorted minimal elements.
func (l *LPO) Minimal() []int {
	if err := l.close(); err != nil {
		panic(err)
	}
	var out []int
	for i := 0; i < l.N(); i++ {
		if l.closure[i].empty() {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns an independent copy.
func (l *LPO) Clone() *LPO {
	out := NewLPO()
	for _, lab := range l.labels {
		out.Add(lab)
	}
	out.edges = append([][2]int(nil), l.edges...)
	return out
}

// Chain builds a totally ordered LPO from the given labels, in order.
func Chain(labels ...Tuple) *LPO {
	l := NewLPO()
	for i, lab := range labels {
		l.Add(lab)
		if i > 0 {
			l.Order(i-1, i)
		}
	}
	return l
}

// Antichain builds a completely unordered LPO.
func Antichain(labels ...Tuple) *LPO {
	l := NewLPO()
	for _, lab := range labels {
		l.Add(lab)
	}
	return l
}

// String renders the LPO deterministically: labels and cover constraints.
func (l *LPO) String() string {
	var parts []string
	for i, lab := range l.labels {
		parts = append(parts, fmt.Sprintf("%d=%s", i, lab.Key()))
	}
	var es []string
	for _, e := range l.edges {
		es = append(es, fmt.Sprintf("%d<%d", e[0], e[1]))
	}
	sort.Strings(es)
	return strings.Join(parts, " ") + " | " + strings.Join(es, " ")
}

// bitset is a fixed-size bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) or(c bitset) {
	for i := range b {
		b[i] |= c[i]
	}
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}
