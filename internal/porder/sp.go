package porder

import "math/big"

// SP is a series-parallel labeled partial order, represented by its
// construction tree: single elements combined by series composition (all of
// P before all of Q) and parallel composition (no constraints between P and
// Q). Series-parallel LPOs are a structurally tractable class for order
// uncertainty: their linear extensions are countable in polynomial time by
// the product/binomial recursion below, in contrast with the #P-hardness of
// the general problem — the Section 3 analogue of bounded treewidth.
type SP struct {
	kind     spKind
	label    Tuple
	children []*SP
	size     int
}

type spKind int

const (
	spElem spKind = iota
	spSeries
	spParallel
)

// Elem returns a single-element series-parallel LPO.
func Elem(label Tuple) *SP {
	return &SP{kind: spElem, label: append(Tuple(nil), label...), size: 1}
}

// Series composes ps left to right: every element of ps[i] precedes every
// element of ps[i+1].
func Series(ps ...*SP) *SP {
	if len(ps) == 1 {
		return ps[0]
	}
	n := 0
	for _, p := range ps {
		n += p.size
	}
	return &SP{kind: spSeries, children: ps, size: n}
}

// Parallel composes ps with no cross constraints.
func Parallel(ps ...*SP) *SP {
	if len(ps) == 1 {
		return ps[0]
	}
	n := 0
	for _, p := range ps {
		n += p.size
	}
	return &SP{kind: spParallel, children: ps, size: n}
}

// SPChain builds a totally ordered series-parallel LPO.
func SPChain(labels ...Tuple) *SP {
	ps := make([]*SP, len(labels))
	for i, lab := range labels {
		ps[i] = Elem(lab)
	}
	return Series(ps...)
}

// SPAntichain builds a completely unordered series-parallel LPO.
func SPAntichain(labels ...Tuple) *SP {
	ps := make([]*SP, len(labels))
	for i, lab := range labels {
		ps[i] = Elem(lab)
	}
	return Parallel(ps...)
}

// Size returns the number of elements.
func (p *SP) Size() int { return p.size }

// CountLinearExtensions counts linear extensions in polynomial time:
//
//	e(x)              = 1
//	e(series(P, Q))   = e(P) · e(Q)
//	e(parallel(P, Q)) = e(P) · e(Q) · C(|P|+|Q|, |P|)
//
// (series fixes the relative order; parallel shuffles independently).
func (p *SP) CountLinearExtensions() *big.Int {
	switch p.kind {
	case spElem:
		return big.NewInt(1)
	case spSeries:
		out := big.NewInt(1)
		for _, c := range p.children {
			out.Mul(out, c.CountLinearExtensions())
		}
		return out
	default: // parallel
		out := big.NewInt(1)
		placed := 0
		for _, c := range p.children {
			out.Mul(out, c.CountLinearExtensions())
			out.Mul(out, binomial(placed+c.size, c.size))
			placed += c.size
		}
		return out
	}
}

func binomial(n, k int) *big.Int {
	return new(big.Int).Binomial(int64(n), int64(k))
}

// ToLPO materializes the series-parallel structure as a general LPO (with
// the full set of series constraints), for cross-checking against the
// downset DP and for running the relational algebra on it.
func (p *SP) ToLPO() *LPO {
	l := NewLPO()
	var build func(q *SP) (elems []int)
	build = func(q *SP) []int {
		switch q.kind {
		case spElem:
			return []int{l.Add(q.label)}
		case spSeries:
			var all []int
			var prev []int
			for _, c := range q.children {
				cur := build(c)
				for _, a := range prev {
					for _, b := range cur {
						l.Order(a, b)
					}
				}
				all = append(all, cur...)
				prev = cur
			}
			return all
		default:
			var all []int
			for _, c := range q.children {
				all = append(all, build(c)...)
			}
			return all
		}
	}
	build(p)
	return l
}
