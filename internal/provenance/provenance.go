// Package provenance implements semiring provenance (Green–Karvounarakis–
// Tannen) evaluated over the lineage circuits of internal/core.
//
// Section 2.2 of the paper shows that for monotone queries the lineage
// circuits produced by the automaton run are provenance circuits matching
// the standard definition of semiring provenance for absorptive semirings.
// The automaton may explore the same derivation several times and reuse a
// fact across branches, so the circuit computes the provenance polynomial
// only up to absorption (a ⊕ a⊗b = a) and multiplicative idempotence
// (a ⊗ a = a); semirings satisfying both — Boolean, Viterbi-style max-min,
// access-control levels, why-provenance — evaluate correctly. The counting
// semiring, which is neither, is intentionally not provided.
package provenance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Semiring is a commutative semiring that is absorptive and multiplicatively
// idempotent, the class for which lineage circuits compute semiring
// provenance.
type Semiring[T any] interface {
	Zero() T
	One() T
	Plus(a, b T) T
	Times(a, b T) T
}

// EvalCircuit evaluates a monotone circuit in the semiring, mapping each
// variable gate through tag. Or gates become ⊕, And gates ⊗. Negation is
// rejected: semiring provenance is defined for monotone queries.
func EvalCircuit[T any](sr Semiring[T], c *circuit.Circuit, root circuit.Gate, tag func(logic.Event) T) (T, error) {
	var zero T
	if !c.Monotone() {
		return zero, fmt.Errorf("provenance: circuit contains negation; semiring provenance requires monotone lineage")
	}
	vals := make([]T, c.NumGates())
	for g := circuit.Gate(0); int(g) < c.NumGates(); g++ {
		switch c.KindOf(g) {
		case circuit.KindConst:
			if c.ConstValue(g) {
				vals[g] = sr.One()
			} else {
				vals[g] = sr.Zero()
			}
		case circuit.KindVar:
			vals[g] = tag(c.EventOf(g))
		case circuit.KindAnd:
			acc := sr.One()
			for _, in := range c.Inputs(g) {
				acc = sr.Times(acc, vals[in])
			}
			vals[g] = acc
		case circuit.KindOr:
			acc := sr.Zero()
			for _, in := range c.Inputs(g) {
				acc = sr.Plus(acc, vals[in])
			}
			vals[g] = acc
		}
	}
	return vals[root], nil
}

// Bool is the Boolean semiring ({false, true}, ∨, ∧): provenance evaluates
// to query possibility.
type Bool struct{}

func (Bool) Zero() bool           { return false }
func (Bool) One() bool            { return true }
func (Bool) Plus(a, b bool) bool  { return a || b }
func (Bool) Times(a, b bool) bool { return a && b }

// MaxMin is the fuzzy/Viterbi-style semiring ([0,1], max, min): the result
// is the best over derivations of the weakest fact used — e.g. the
// confidence of the most credible proof. Absorptive and ⊗-idempotent.
type MaxMin struct{}

func (MaxMin) Zero() float64 { return 0 }
func (MaxMin) One() float64  { return 1 }
func (MaxMin) Plus(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func (MaxMin) Times(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Level is a totally ordered access-control/clearance semiring over the
// levels 0 (public) .. N (top secret): Plus = min (most permissive proof),
// Times = max (a proof is as classified as its most classified fact).
type Level struct{ Top int }

func (l Level) Zero() int { return l.Top + 1 } // "unavailable"
func (Level) One() int    { return 0 }
func (Level) Plus(a, b int) int {
	if a < b {
		return a
	}
	return b
}
func (Level) Times(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Witness is a set of fact identifiers: one minimal proof.
type Witness []string

// WhySet is an antichain of witnesses (absorption keeps only minimal sets):
// the why-provenance of the query.
type WhySet []Witness

// Why is the why-provenance semiring: sets of witnesses with union as ⊕ and
// pairwise union as ⊗, normalized by absorption (supersets of another
// witness are dropped), which makes it absorptive and ⊗-idempotent.
type Why struct{}

func (Why) Zero() WhySet { return nil }
func (Why) One() WhySet  { return WhySet{Witness{}} }

func (Why) Plus(a, b WhySet) WhySet { return normalize(append(append(WhySet{}, a...), b...)) }

func (Why) Times(a, b WhySet) WhySet {
	var out WhySet
	for _, wa := range a {
		for _, wb := range b {
			out = append(out, mergeWitness(wa, wb))
		}
	}
	return normalize(out)
}

// Tag returns the singleton why-annotation for a fact identifier.
func (Why) Tag(id string) WhySet { return WhySet{Witness{id}} }

func mergeWitness(a, b Witness) Witness {
	set := map[string]struct{}{}
	for _, x := range a {
		set[x] = struct{}{}
	}
	for _, x := range b {
		set[x] = struct{}{}
	}
	out := make(Witness, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

// normalize sorts, deduplicates, and applies absorption: any witness that
// is a superset of another is removed.
func normalize(ws WhySet) WhySet {
	seen := map[string]Witness{}
	for _, w := range ws {
		seen[strings.Join(w, ",")] = w
	}
	uniq := make(WhySet, 0, len(seen))
	for _, w := range seen {
		uniq = append(uniq, w)
	}
	sort.Slice(uniq, func(i, j int) bool {
		if len(uniq[i]) != len(uniq[j]) {
			return len(uniq[i]) < len(uniq[j])
		}
		return strings.Join(uniq[i], ",") < strings.Join(uniq[j], ",")
	})
	var out WhySet
	for _, w := range uniq {
		absorbed := false
		for _, kept := range out {
			if isSubset(kept, w) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			out = append(out, w)
		}
	}
	return out
}

func isSubset(a, b Witness) bool {
	set := map[string]struct{}{}
	for _, x := range b {
		set[x] = struct{}{}
	}
	for _, x := range a {
		if _, ok := set[x]; !ok {
			return false
		}
	}
	return true
}

// String renders a why-set canonically, e.g. "{f0,f1} {f2}".
func (ws WhySet) String() string {
	parts := make([]string, len(ws))
	for i, w := range ws {
		parts[i] = "{" + strings.Join(w, ",") + "}"
	}
	return strings.Join(parts, " ")
}
