package provenance

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

func lineageOf(t *testing.T, inst *rel.Instance, q rel.CQ) (*circuit.Circuit, circuit.Gate) {
	t.Helper()
	c, root, err := core.CQLineage(inst, q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c, root
}

func TestBoolSemiringIsPossibility(t *testing.T) {
	inst := rel.NewInstance()
	inst.AddFact("R", "a")
	inst.AddFact("S", "a", "b")
	inst.AddFact("T", "b")
	c, root := lineageOf(t, inst, rel.HardQuery())
	got, err := EvalCircuit[bool](Bool{}, c, root, func(logic.Event) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("possibility should hold with all facts available")
	}
	// Mark the T fact unavailable.
	got, err = EvalCircuit[bool](Bool{}, c, root, func(e logic.Event) bool { return e != core.FactEvent(2) })
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("possibility should fail without the T fact")
	}
}

func TestWhyProvenanceMatchesMinimalWitnesses(t *testing.T) {
	// Two witnesses for the hard query sharing the R fact.
	inst := rel.NewInstance()
	inst.AddFact("R", "a")      // f0
	inst.AddFact("S", "a", "b") // f1
	inst.AddFact("T", "b")      // f2
	inst.AddFact("S", "a", "c") // f3
	inst.AddFact("T", "c")      // f4
	q := rel.HardQuery()
	c, root := lineageOf(t, inst, q)
	why := Why{}
	got, err := EvalCircuit[WhySet](why, c, root, func(e logic.Event) WhySet { return why.Tag(string(e)) })
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "{f0,f1,f2} {f0,f3,f4}" {
		t.Errorf("why-provenance = %s", got)
	}
	// Cross-check against the brute-force minimal witness sets.
	sets := q.MatchingFactSets(inst)
	if len(sets) != len(got) {
		t.Errorf("witness count %d vs %d", len(got), len(sets))
	}
}

func TestPropertyWhyMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := rel.NewInstance()
		names := []string{"a", "b", "c"}
		for i := 0; i < 1+r.Intn(7); i++ {
			switch r.Intn(3) {
			case 0:
				inst.AddFact("R", names[r.Intn(3)])
			case 1:
				inst.AddFact("S", names[r.Intn(3)], names[r.Intn(3)])
			default:
				inst.AddFact("T", names[r.Intn(3)])
			}
		}
		q := rel.HardQuery()
		c, root, err := core.CQLineage(inst, q, core.Options{})
		if err != nil {
			return false
		}
		why := Why{}
		got, err := EvalCircuit[WhySet](why, c, root, func(e logic.Event) WhySet { return why.Tag(string(e)) })
		if err != nil {
			return false
		}
		// Brute force: minimal matching fact sets, absorbed.
		var brute WhySet
		for _, set := range q.MatchingFactSets(inst) {
			w := make(Witness, len(set))
			for i, fi := range set {
				w[i] = string(core.FactEvent(fi))
			}
			brute = append(brute, w)
		}
		brute = normalize(brute)
		if got.String() != brute.String() {
			t.Logf("seed %d: circuit %s, brute %s", seed, got, brute)
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestMaxMinBestWeakestLink(t *testing.T) {
	inst := rel.NewInstance()
	inst.AddFact("R", "a")      // conf 0.9
	inst.AddFact("S", "a", "b") // conf 0.5
	inst.AddFact("T", "b")      // conf 0.8
	inst.AddFact("S", "a", "c") // conf 0.7
	inst.AddFact("T", "c")      // conf 0.6
	conf := map[string]float64{"f0": 0.9, "f1": 0.5, "f2": 0.8, "f3": 0.7, "f4": 0.6}
	c, root := lineageOf(t, inst, rel.HardQuery())
	got, err := EvalCircuit[float64](MaxMin{}, c, root, func(e logic.Event) float64 { return conf[string(e)] })
	if err != nil {
		t.Fatal(err)
	}
	// Witness 1: min(0.9, 0.5, 0.8) = 0.5; witness 2: min(0.9, 0.7, 0.6) =
	// 0.6; best = 0.6.
	if got != 0.6 {
		t.Errorf("max-min = %v, want 0.6", got)
	}
}

func TestLevelSemiring(t *testing.T) {
	inst := rel.NewInstance()
	inst.AddFact("R", "a")
	inst.AddFact("S", "a", "b")
	inst.AddFact("T", "b")
	levels := map[string]int{"f0": 0, "f1": 2, "f2": 1}
	c, root := lineageOf(t, inst, rel.HardQuery())
	lv := Level{Top: 3}
	got, err := EvalCircuit[int](lv, c, root, func(e logic.Event) int { return levels[string(e)] })
	if err != nil {
		t.Fatal(err)
	}
	// The only proof needs clearance max(0,2,1) = 2.
	if got != 2 {
		t.Errorf("level = %d, want 2", got)
	}
}

func TestEvalRejectsNonMonotone(t *testing.T) {
	c := circuit.New()
	root := c.Not(c.Var("x"))
	if _, err := EvalCircuit[bool](Bool{}, c, root, func(logic.Event) bool { return true }); err == nil {
		t.Error("expected error on negation")
	}
}

func TestWhyAbsorption(t *testing.T) {
	why := Why{}
	a := WhySet{Witness{"x"}}
	ab := WhySet{Witness{"x", "y"}}
	sum := why.Plus(a, ab)
	if sum.String() != "{x}" {
		t.Errorf("absorption failed: %s", sum)
	}
	// ⊗-idempotence: a ⊗ a = a.
	prod := why.Times(a, a)
	if prod.String() != "{x}" {
		t.Errorf("idempotence failed: %s", prod)
	}
}

func TestUnsatisfiableQueryProvenanceIsZero(t *testing.T) {
	inst := rel.NewInstance()
	inst.AddFact("R", "a")
	c, root := lineageOf(t, inst, rel.HardQuery())
	why := Why{}
	got, err := EvalCircuit[WhySet](why, c, root, func(e logic.Event) WhySet { return why.Tag(string(e)) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("provenance of impossible query = %s, want empty", got)
	}
}

func TestTagNamesAreFactEvents(t *testing.T) {
	if !strings.HasPrefix(string(core.FactEvent(3)), "f") {
		t.Error("fact event naming changed; update provenance tags")
	}
	_ = pdb.NewTID() // keep pdb linked for the documentation example below
}
