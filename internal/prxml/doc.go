// Package prxml implements probabilistic XML (Section 2.1): unranked
// labelled trees with distribution nodes in the PrXML families of Kimelfeld
// and Senellart.
//
// Supported distribution nodes:
//
//   - ind: each child is kept independently with its own probability
//     (local uncertainty).
//   - mux: at most one child is kept, with probabilities summing to ≤ 1
//     (local, mutually exclusive choices).
//   - det: all children are kept (deterministic grouping).
//   - cie: each child is kept iff a conjunction of independent event
//     literals holds (global uncertainty: events are shared across the
//     document and induce correlations).
//
// In a possible world, distribution nodes are removed and surviving children
// are re-attached to their nearest tag ancestor.
//
// Query evaluation (tree-pattern probability) is implemented three ways:
// exhaustive enumeration of worlds (baseline), the linear-time bottom-up
// match-set DP for local models [Cohen–Kimelfeld–Sagiv], and the scope-based
// algorithm for event models whose scopes are bounded — the tractable class
// identified by the paper.
package prxml

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/logic"
)

// Kind classifies PrXML nodes.
type Kind int

const (
	// Tag is an ordinary XML element carrying a label.
	Tag Kind = iota
	// Ind keeps each child independently with probability Probs[i].
	Ind
	// Mux keeps at most one child, child i with probability Probs[i].
	Mux
	// Det keeps all children.
	Det
	// Cie keeps child i iff the conjunction of literals Conds[i] holds.
	Cie
)

func (k Kind) String() string {
	switch k {
	case Tag:
		return "tag"
	case Ind:
		return "ind"
	case Mux:
		return "mux"
	case Det:
		return "det"
	case Cie:
		return "cie"
	}
	return "unknown"
}

// Node is a PrXML tree node. Build trees with the constructors below.
type Node struct {
	Kind     Kind
	Label    string // Tag only
	Children []*Node
	Probs    []float64         // Ind, Mux: per-child probabilities
	Conds    [][]logic.Literal // Cie: per-child event conjunctions
}

// NewTag returns a tag node.
func NewTag(label string, children ...*Node) *Node {
	return &Node{Kind: Tag, Label: label, Children: children}
}

// NewInd returns an ind node; probs[i] is the keep-probability of child i.
func NewInd(probs []float64, children ...*Node) *Node {
	if len(probs) != len(children) {
		panic("prxml: ind needs one probability per child")
	}
	return &Node{Kind: Ind, Children: children, Probs: probs}
}

// NewMux returns a mux node; probs must sum to at most 1, the remainder
// being the probability that no child is kept.
func NewMux(probs []float64, children ...*Node) *Node {
	if len(probs) != len(children) {
		panic("prxml: mux needs one probability per child")
	}
	total := 0.0
	for _, p := range probs {
		total += p
	}
	if total > 1+1e-9 {
		panic(fmt.Sprintf("prxml: mux probabilities sum to %v > 1", total))
	}
	return &Node{Kind: Mux, Children: children, Probs: probs}
}

// NewDet returns a det node.
func NewDet(children ...*Node) *Node {
	return &Node{Kind: Det, Children: children}
}

// NewCie returns a cie node; conds[i] is the conjunction of event literals
// under which child i is kept.
func NewCie(conds [][]logic.Literal, children ...*Node) *Node {
	if len(conds) != len(children) {
		panic("prxml: cie needs one condition per child")
	}
	return &Node{Kind: Cie, Children: children, Conds: conds}
}

// Document is a PrXML document: a tree rooted at a tag node, together with
// the probabilities of the global events used by cie nodes.
//
// MatchProbability caches its structural compilation (the document's scope
// analysis and the per-pattern match-set index) on the document — a mini
// Prepare/Evaluate split: repeated calls with updated probabilities
// (EventProb values, ind/mux Probs) skip recompilation. Structural edits to
// the tree or to cie conditions must be followed by ResetCache. The caches
// are mutex-guarded, so concurrent MatchProbability calls on one shared
// (structurally unchanging) document remain safe.
type Document struct {
	Root      *Node
	EventProb logic.Prob

	cacheMu      sync.Mutex
	scopeCache   *ScopeInfo
	patternCache map[string]*patternIndex // keyed by Pattern.cacheKey()
}

// maxCachedPatterns bounds the per-pattern compilation cache: a long-lived
// document queried with ever-fresh ad-hoc patterns must not accumulate (and
// pin) every pattern it has ever seen. Recompiling after a wholesale drop is
// cheap relative to one evaluation.
const maxCachedPatterns = 64

// prepared returns the document's scope analysis and the compiled match-set
// index of p, computing each on first use. Both depend only on the tree
// structure and the pattern, never on probabilities. The pattern cache is
// keyed by the canonical rendering, so structurally equal patterns rebuilt
// per call still hit.
func (d *Document) prepared(p *Pattern) (*ScopeInfo, *patternIndex) {
	key := p.cacheKey()
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	if d.scopeCache == nil {
		d.scopeCache = d.Scopes()
	}
	pi, ok := d.patternCache[key]
	if !ok {
		if d.patternCache == nil || len(d.patternCache) >= maxCachedPatterns {
			d.patternCache = map[string]*patternIndex{}
		}
		pi = indexPattern(p)
		d.patternCache[key] = pi
	}
	return d.scopeCache, pi
}

// ResetCache drops the compiled scope and pattern caches. Call it after
// editing the tree structure, cie conditions, or a cached pattern;
// probability updates alone never require it.
func (d *Document) ResetCache() {
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	d.scopeCache = nil
	d.patternCache = nil
}

// NewDocument wraps a root tag node.
func NewDocument(root *Node, eventProb logic.Prob) *Document {
	if root.Kind != Tag {
		panic("prxml: document root must be a tag node")
	}
	if eventProb == nil {
		eventProb = logic.Prob{}
	}
	return &Document{Root: root, EventProb: eventProb}
}

// Validate checks structural sanity: probability ranges, matching arities,
// and that every cie event has a probability.
func (d *Document) Validate() error {
	if err := d.EventProb.Validate(); err != nil {
		return err
	}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		switch n.Kind {
		case Ind, Mux:
			if len(n.Probs) != len(n.Children) {
				return fmt.Errorf("prxml: %s node has %d probs for %d children", n.Kind, len(n.Probs), len(n.Children))
			}
			total := 0.0
			for _, p := range n.Probs {
				if p < 0 || p > 1 {
					return fmt.Errorf("prxml: probability %v outside [0,1]", p)
				}
				total += p
			}
			if n.Kind == Mux && total > 1+1e-9 {
				return fmt.Errorf("prxml: mux probabilities sum to %v", total)
			}
		case Cie:
			if len(n.Conds) != len(n.Children) {
				return fmt.Errorf("prxml: cie node has %d conds for %d children", len(n.Conds), len(n.Children))
			}
			for _, cond := range n.Conds {
				for _, lit := range cond {
					if _, ok := d.EventProb[lit.Event]; !ok {
						return fmt.Errorf("prxml: event %q has no probability", lit.Event)
					}
				}
			}
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(d.Root)
}

// Events returns the sorted global events used by cie nodes.
func (d *Document) Events() []logic.Event {
	set := map[logic.Event]struct{}{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Kind == Cie {
			for _, cond := range n.Conds {
				for _, lit := range cond {
					set[lit.Event] = struct{}{}
				}
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(d.Root)
	events := make([]logic.Event, 0, len(set))
	for e := range set {
		events = append(events, e)
	}
	return logic.SortEvents(events)
}

// Size returns the number of nodes in the document.
func (d *Document) Size() int {
	count := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		count++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(d.Root)
	return count
}

// XNode is a node of a certain (non-probabilistic) XML tree: a possible
// world of a document.
type XNode struct {
	Label    string
	Children []*XNode
}

// NewXNode builds a certain tree node.
func NewXNode(label string, children ...*XNode) *XNode {
	return &XNode{Label: label, Children: children}
}

// String renders the tree as nested s-expressions, e.g. "(a (b) (c))".
func (x *XNode) String() string {
	var sb strings.Builder
	var walk func(n *XNode)
	walk = func(n *XNode) {
		sb.WriteByte('(')
		sb.WriteString(n.Label)
		for _, c := range n.Children {
			sb.WriteByte(' ')
			walk(c)
		}
		sb.WriteByte(')')
	}
	walk(x)
	return sb.String()
}

// Count returns the number of nodes in the certain tree.
func (x *XNode) Count() int {
	n := 1
	for _, c := range x.Children {
		n += c.Count()
	}
	return n
}

// World materializes the possible world of the document determined by the
// event valuation v (for cie nodes) and the local choice oracle, a function
// returning for each ind child whether it is kept and for each mux node
// which child (or -1). Used by enumeration and sampling.
type choiceOracle interface {
	keepInd(n *Node, child int) bool
	pickMux(n *Node) int
}

// materialize builds the world tree under the given oracle and valuation.
func (d *Document) materialize(v logic.Valuation, oracle choiceOracle) *XNode {
	var build func(n *Node) []*XNode
	build = func(n *Node) []*XNode {
		switch n.Kind {
		case Tag:
			x := &XNode{Label: n.Label}
			for _, c := range n.Children {
				x.Children = append(x.Children, build(c)...)
			}
			return []*XNode{x}
		case Det:
			var out []*XNode
			for _, c := range n.Children {
				out = append(out, build(c)...)
			}
			return out
		case Ind:
			var out []*XNode
			for i, c := range n.Children {
				if oracle.keepInd(n, i) {
					out = append(out, build(c)...)
				}
			}
			return out
		case Mux:
			pick := oracle.pickMux(n)
			if pick < 0 {
				return nil
			}
			return build(n.Children[pick])
		case Cie:
			var out []*XNode
			for i, c := range n.Children {
				if logic.Conjunction(n.Conds[i]).Eval(v) {
					out = append(out, build(c)...)
				}
			}
			return out
		}
		return nil
	}
	return build(d.Root)[0]
}

// EnumerateWorlds calls fn with every possible world of the document and its
// probability. Exponential in the number of choices: the baseline arm.
func (d *Document) EnumerateWorlds(fn func(world *XNode, p float64)) {
	// Collect the local choice sites in a fixed order.
	var indSites []*Node
	var muxSites []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		switch n.Kind {
		case Ind:
			indSites = append(indSites, n)
		case Mux:
			muxSites = append(muxSites, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(d.Root)

	events := d.Events()
	// Recursive enumeration over event valuations, then ind masks, then mux
	// picks.
	var enumChoices func(v logic.Valuation, pv float64, site int, oracle *tableOracle)
	enumChoices = func(v logic.Valuation, pv float64, site int, oracle *tableOracle) {
		if pv == 0 {
			return
		}
		if site < len(indSites) {
			n := indSites[site]
			var rec func(child int, p float64)
			rec = func(child int, p float64) {
				if child == len(n.Children) {
					enumChoices(v, pv*p, site+1, oracle)
					return
				}
				oracle.ind[n][child] = true
				rec(child+1, p*n.Probs[child])
				oracle.ind[n][child] = false
				rec(child+1, p*(1-n.Probs[child]))
			}
			rec(0, 1)
			return
		}
		muxSite := site - len(indSites)
		if muxSite < len(muxSites) {
			n := muxSites[muxSite]
			rest := 1.0
			for i, p := range n.Probs {
				oracle.mux[n] = i
				rest -= p
				enumChoices(v, pv*p, site+1, oracle)
			}
			oracle.mux[n] = -1
			if rest > 1e-12 {
				enumChoices(v, pv*rest, site+1, oracle)
			}
			return
		}
		fn(d.materialize(v, oracle), pv)
	}

	logic.EnumerateValuations(events, func(v logic.Valuation) {
		pv := d.EventProb.ProbOfValuation(events, v)
		oracle := newTableOracle(indSites, muxSites)
		enumChoices(v.Clone(), pv, 0, oracle)
	})
}

type tableOracle struct {
	ind map[*Node][]bool
	mux map[*Node]int
}

func newTableOracle(indSites, muxSites []*Node) *tableOracle {
	o := &tableOracle{ind: map[*Node][]bool{}, mux: map[*Node]int{}}
	for _, n := range indSites {
		o.ind[n] = make([]bool, len(n.Children))
	}
	for _, n := range muxSites {
		o.mux[n] = -1
	}
	return o
}

func (o *tableOracle) keepInd(n *Node, child int) bool { return o.ind[n][child] }
func (o *tableOracle) pickMux(n *Node) int             { return o.mux[n] }

// sortLiterals orders a conjunction canonically (for printing and tests).
func sortLiterals(lits []logic.Literal) []logic.Literal {
	out := append([]logic.Literal(nil), lits...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Event != out[j].Event {
			return out[i].Event < out[j].Event
		}
		return !out[i].Negated && out[j].Negated
	})
	return out
}
