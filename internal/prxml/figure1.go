package prxml

import "repro/internal/logic"

// EJane is the global trust event of Figure 1: "we fully trust user Jane".
const EJane = logic.Event("eJane")

// Figure1 builds the exact PrXML document of the paper's Figure 1: the
// Wikidata entry Q298423 (Chelsea Manning) with
//
//   - an ind node keeping the "occupation → musician" subtree with
//     probability 0.4, independently of everything else;
//   - "place of birth → Crescent" and "surname → Manning" both conditioned,
//     through cie nodes, on the single event eJane (probability 0.9): either
//     Jane is trustworthy and both facts are present, or both are absent;
//   - "given name" a mux choice between Bradley (0.4) and Chelsea (0.6).
func Figure1() *Document {
	jane := []logic.Literal{{Event: EJane}}
	root := NewTag("Q298423",
		NewInd([]float64{0.4},
			NewTag("occupation", NewTag("musician")),
		),
		NewTag("place_of_birth",
			NewCie([][]logic.Literal{jane}, NewTag("Crescent")),
		),
		NewTag("surname",
			NewCie([][]logic.Literal{jane}, NewTag("Manning")),
		),
		NewTag("given_name",
			NewMux([]float64{0.4, 0.6}, NewTag("Bradley"), NewTag("Chelsea")),
		),
	)
	return NewDocument(root, logic.Prob{EJane: 0.9})
}
