package prxml

import "strings"

// Pattern is a Boolean tree-pattern query: a tree of label tests connected
// by child or descendant edges. The pattern matches a document tree when
// some node of the tree matches the pattern root (descendant-or-self
// semantics at the top, as in //-rooted XPath).
type Pattern struct {
	Label string // element label; "" is a wildcard
	Edges []PatternEdge
}

// PatternEdge connects a pattern node to a sub-pattern.
type PatternEdge struct {
	Child      *Pattern
	Descendant bool // true: descendant edge (//); false: child edge (/)
}

// NewPattern builds a pattern node with child edges to the given
// sub-patterns.
func NewPattern(label string, children ...*Pattern) *Pattern {
	p := &Pattern{Label: label}
	for _, c := range children {
		p.Edges = append(p.Edges, PatternEdge{Child: c})
	}
	return p
}

// WithDescendant appends a descendant edge and returns the pattern for
// chaining.
func (p *Pattern) WithDescendant(c *Pattern) *Pattern {
	p.Edges = append(p.Edges, PatternEdge{Child: c, Descendant: true})
	return p
}

// WithChild appends a child edge and returns the pattern for chaining.
func (p *Pattern) WithChild(c *Pattern) *Pattern {
	p.Edges = append(p.Edges, PatternEdge{Child: c})
	return p
}

// String renders the pattern in an XPath-like syntax, e.g.
// "a[/b][//c]".
func (p *Pattern) String() string {
	var sb strings.Builder
	label := p.Label
	if label == "" {
		label = "*"
	}
	sb.WriteString(label)
	for _, e := range p.Edges {
		sb.WriteByte('[')
		if e.Descendant {
			sb.WriteString("//")
		} else {
			sb.WriteString("/")
		}
		sb.WriteString(e.Child.String())
		sb.WriteByte(']')
	}
	return sb.String()
}

// cacheKey renders the pattern canonically for the document's compilation
// cache. Unlike String it keeps wildcard labels distinct from a literal "*"
// label, so structurally different patterns never share a key.
func (p *Pattern) cacheKey() string {
	var sb strings.Builder
	var walk func(q *Pattern)
	walk = func(q *Pattern) {
		if q.Label == "" {
			sb.WriteByte(0)
		} else {
			sb.WriteString(q.Label)
		}
		for _, e := range q.Edges {
			if e.Descendant {
				sb.WriteString("[//")
			} else {
				sb.WriteString("[/")
			}
			walk(e.Child)
			sb.WriteByte(']')
		}
	}
	walk(p)
	return sb.String()
}

// nodes returns the pattern nodes in a fixed order (preorder); index 0 is
// the root. Match sets are bitmasks over this order.
func (p *Pattern) nodes() []*Pattern {
	var out []*Pattern
	var walk func(q *Pattern)
	walk = func(q *Pattern) {
		out = append(out, q)
		for _, e := range q.Edges {
			walk(e.Child)
		}
	}
	walk(p)
	return out
}

// Matches reports whether the pattern matches the certain tree (at any
// node). Reference implementation by direct recursion; the probabilistic
// evaluators are tested against it.
func (p *Pattern) Matches(x *XNode) bool {
	return matchBelow(p, x)
}

// matchAt reports whether pattern q matches exactly at node x.
func matchAt(q *Pattern, x *XNode) bool {
	if q.Label != "" && q.Label != x.Label {
		return false
	}
	for _, e := range q.Edges {
		ok := false
		for _, c := range x.Children {
			if e.Descendant {
				if matchBelow(e.Child, c) {
					ok = true
					break
				}
			} else if matchAt(e.Child, c) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// matchBelow reports whether q matches at x or at some descendant of x.
func matchBelow(q *Pattern, x *XNode) bool {
	if matchAt(q, x) {
		return true
	}
	for _, c := range x.Children {
		if matchBelow(q, c) {
			return true
		}
	}
	return false
}

// matchSets is the deterministic bottom-up automaton state of a certain
// tree node: at[i] is set when pattern node i matches exactly at the node,
// below[i] when it matches at or below it. This lattice of match sets is the
// deterministic tree automaton that the probabilistic evaluators run.
type matchSets struct {
	at    uint32
	below uint32
}

// patternIndex precomputes, for each pattern node, its label and the bit
// masks of its child- and descendant-subgoals.
type patternIndex struct {
	nodes []*Pattern
	// childReq[i] and descReq[i] list the pattern indices that must match
	// at (resp. below) some child of a tree node for pattern i to match.
	childReq [][]int
	descReq  [][]int
}

func indexPattern(p *Pattern) *patternIndex {
	nodes := p.nodes()
	if len(nodes) > 30 {
		panic("prxml: pattern too large for bitmask match sets")
	}
	idxOf := map[*Pattern]int{}
	for i, q := range nodes {
		idxOf[q] = i
	}
	pi := &patternIndex{nodes: nodes, childReq: make([][]int, len(nodes)), descReq: make([][]int, len(nodes))}
	for i, q := range nodes {
		for _, e := range q.Edges {
			j := idxOf[e.Child]
			if e.Descendant {
				pi.descReq[i] = append(pi.descReq[i], j)
			} else {
				pi.childReq[i] = append(pi.childReq[i], j)
			}
		}
	}
	return pi
}

// evalAt computes the match bits of a tag node with the given label, given
// the union over its (materialized) children of their "at" bits (unionAt)
// and "below" bits (unionBelow).
func (pi *patternIndex) evalAt(label string, unionAt, unionBelow uint32) matchSets {
	var at uint32
	for i, q := range pi.nodes {
		if q.Label != "" && q.Label != label {
			continue
		}
		ok := true
		for _, j := range pi.childReq[i] {
			if unionAt&(1<<uint(j)) == 0 {
				ok = false
				break
			}
		}
		if ok {
			for _, j := range pi.descReq[i] {
				if unionBelow&(1<<uint(j)) == 0 {
					ok = false
					break
				}
			}
		}
		if ok {
			at |= 1 << uint(i)
		}
	}
	return matchSets{at: at, below: at | unionBelow}
}
