package prxml

import (
	"fmt"

	"repro/internal/logic"
)

// MatchProbability computes the exact probability that the tree pattern
// matches the document, by the bottom-up match-set dynamic program.
//
// For local models (ind/mux/det only) every conditioning table has a single
// entry and the run is linear in the document for a fixed pattern — the
// tractability result of Cohen–Kimelfeld–Sagiv. For event models (cie), each
// node carries a table over the valuations of the events *live* at the node
// (its scope, in the paper's terms: events that occur both inside and
// outside the node's subtree, and must therefore be remembered). The run is
// exponential only in the maximal scope size — the paper's sufficient
// condition for tractability — and returns an error when a table would
// exceed 2^maxScopeTable entries rather than silently blowing up.
func (d *Document) MatchProbability(p *Pattern) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	scopes, pi := d.prepared(p)
	ev := &evaluator{doc: d, pi: pi, scopes: scopes}
	table, err := ev.eval(d.Root)
	if err != nil {
		return 0, err
	}
	// The root has an empty scope: exactly one valuation remains.
	dist, ok := table[0]
	if !ok {
		return 0, fmt.Errorf("prxml: internal error: missing root table entry")
	}
	total := 0.0
	match := 0.0
	for key, pr := range dist {
		total += pr
		below := uint32(key)
		if below&1 != 0 { // pattern root (index 0) matched at or below
			match += pr
		}
	}
	if total < 0.999999 || total > 1.000001 {
		return 0, fmt.Errorf("prxml: probability mass %v drifted from 1", total)
	}
	if match < 0 {
		match = 0
	}
	if match > 1 {
		match = 1
	}
	return match, nil
}

// maxScopeTable bounds the conditioning tables: nodes whose relevant event
// set exceeds this trigger an error (the instance is outside the tractable
// bounded-scope class).
const maxScopeTable = 24

// stateKey packs (unionAt, unionBelow) match masks.
func stateKey(at, below uint32) uint64 { return uint64(at)<<32 | uint64(below) }

type dist map[uint64]float64

// convolve composes the contributions of two independent sibling groups:
// probabilities multiply and match masks union.
func convolve(a, b dist) dist {
	if len(a) == 1 {
		if _, ok := a[0]; ok {
			return b
		}
	}
	out := make(dist, len(a)*len(b))
	for ka, pa := range a {
		for kb, pb := range b {
			out[ka|kb] += pa * pb
		}
	}
	return out
}

// mix returns p·a + (1-p)·δ₀.
func mix(a dist, p float64) dist {
	out := make(dist, len(a)+1)
	for k, pa := range a {
		out[k] += p * pa
	}
	out[0] += 1 - p
	return out
}

type evaluator struct {
	doc    *Document
	pi     *patternIndex
	scopes *ScopeInfo
}

// condTable maps a valuation of the node's live events (bits in sorted
// live-list order) to the conditional distribution of the node's match-mask
// contribution.
type condTable map[uint32]dist

// eval returns the node's conditional contribution table over its live
// events.
func (ev *evaluator) eval(n *Node) (condTable, error) {
	children := make([]condTable, len(n.Children))
	for i, c := range n.Children {
		t, err := ev.eval(c)
		if err != nil {
			return nil, err
		}
		children[i] = t
	}
	live := ev.scopes.Live[n]
	// Relevant events: the children's live events plus this node's own cie
	// condition events.
	relevantSet := map[logic.Event]struct{}{}
	for _, c := range n.Children {
		for _, e := range ev.scopes.Live[c] {
			relevantSet[e] = struct{}{}
		}
	}
	if n.Kind == Cie {
		for _, cond := range n.Conds {
			for _, lit := range cond {
				relevantSet[lit.Event] = struct{}{}
			}
		}
	}
	relevant := make([]logic.Event, 0, len(relevantSet))
	for e := range relevantSet {
		relevant = append(relevant, e)
	}
	logic.SortEvents(relevant)
	if len(relevant) > maxScopeTable {
		return nil, fmt.Errorf("prxml: node requires conditioning on %d events (> %d): scopes are not bounded enough for exact evaluation", len(relevant), maxScopeTable)
	}
	relPos := map[logic.Event]int{}
	for i, e := range relevant {
		relPos[e] = i
	}
	// Projections of relevant valuations onto each child's live list.
	childBits := make([][]int, len(n.Children))
	for i, c := range n.Children {
		for _, e := range ev.scopes.Live[c] {
			childBits[i] = append(childBits[i], relPos[e])
		}
	}
	livePos := make([]int, len(live))
	for i, e := range live {
		livePos[i] = relPos[e]
	}
	marginal := make([]int, 0) // positions of events summed out here
	liveSet := map[logic.Event]struct{}{}
	for _, e := range live {
		liveSet[e] = struct{}{}
	}
	for i, e := range relevant {
		if _, keep := liveSet[e]; !keep {
			marginal = append(marginal, i)
		}
	}

	out := condTable{}
	nVal := uint32(1) << uint(len(relevant))
	for w := uint32(0); w < nVal; w++ {
		contribution, err := ev.combine(n, children, childBits, relevant, w)
		if err != nil {
			return nil, err
		}
		// Weight by the marginalized events' probabilities and project the
		// valuation onto the live list.
		weight := 1.0
		for _, pos := range marginal {
			pe := ev.doc.EventProb.P(relevant[pos])
			if w&(1<<uint(pos)) != 0 {
				weight *= pe
			} else {
				weight *= 1 - pe
			}
		}
		if weight == 0 {
			continue
		}
		var u uint32
		for i, pos := range livePos {
			if w&(1<<uint(pos)) != 0 {
				u |= 1 << uint(i)
			}
		}
		acc, ok := out[u]
		if !ok {
			acc = dist{}
			out[u] = acc
		}
		for k, pr := range contribution {
			acc[k] += weight * pr
		}
	}
	return out, nil
}

// combine computes the node's contribution distribution under a fixed
// valuation w of the relevant events.
func (ev *evaluator) combine(n *Node, children []condTable, childBits [][]int, relevant []logic.Event, w uint32) (dist, error) {
	project := func(i int) uint32 {
		var u uint32
		for bit, pos := range childBits[i] {
			if w&(1<<uint(pos)) != 0 {
				u |= 1 << uint(bit)
			}
		}
		return u
	}
	childDist := func(i int) dist { return children[i][project(i)] }

	switch n.Kind {
	case Mux:
		out := dist{}
		rest := 1.0
		for i := range n.Children {
			rest -= n.Probs[i]
			for k, pr := range childDist(i) {
				out[k] += n.Probs[i] * pr
			}
		}
		if rest > 1e-12 {
			out[0] += rest
		}
		return out, nil
	case Tag, Det, Ind, Cie:
		acc := dist{0: 1}
		for i := range n.Children {
			dc := childDist(i)
			switch n.Kind {
			case Ind:
				dc = mix(dc, n.Probs[i])
			case Cie:
				holds := true
				for _, lit := range n.Conds[i] {
					pos := indexOfEvent(relevant, lit.Event)
					value := w&(1<<uint(pos)) != 0
					if value == lit.Negated {
						holds = false
						break
					}
				}
				if !holds {
					continue // child dropped under this valuation
				}
			}
			acc = convolve(acc, dc)
		}
		if n.Kind != Tag {
			return acc, nil
		}
		// Apply the tag node's own match computation.
		out := make(dist, len(acc))
		for k, pr := range acc {
			uA := uint32(k >> 32)
			uB := uint32(k)
			s := ev.pi.evalAt(n.Label, uA, uB)
			out[stateKey(s.at, s.below)] += pr
		}
		return out, nil
	}
	return nil, fmt.Errorf("prxml: unknown node kind %v", n.Kind)
}

func indexOfEvent(events []logic.Event, e logic.Event) int {
	for i, x := range events {
		if x == e {
			return i
		}
	}
	panic("prxml: event not in relevant list")
}

// MatchProbabilityEnumeration computes the match probability by enumerating
// every possible world: the exponential baseline.
func (d *Document) MatchProbabilityEnumeration(p *Pattern) float64 {
	total := 0.0
	d.EnumerateWorlds(func(w *XNode, pr float64) {
		if p.Matches(w) {
			total += pr
		}
	})
	return total
}
