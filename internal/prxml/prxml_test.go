package prxml

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/rel"
)

func TestCertainTreeMatching(t *testing.T) {
	// (a (b (c)) (d))
	tree := NewXNode("a", NewXNode("b", NewXNode("c")), NewXNode("d"))
	cases := []struct {
		p    *Pattern
		want bool
	}{
		{NewPattern("a"), true},
		{NewPattern("a", NewPattern("b"), NewPattern("d")), true},
		{NewPattern("a", NewPattern("c")), false},               // c is not a child of a
		{NewPattern("a").WithDescendant(NewPattern("c")), true}, // but a descendant
		{NewPattern("b", NewPattern("c")), true},                // matches below the root
		{NewPattern("", NewPattern("c")), true},                 // wildcard
		{NewPattern("z"), false},
		{NewPattern("a", NewPattern("b", NewPattern("d"))), false},
	}
	for _, tc := range cases {
		if got := tc.p.Matches(tree); got != tc.want {
			t.Errorf("%s on %s = %v, want %v", tc.p, tree, got, tc.want)
		}
	}
}

func TestLocalModelSimpleInd(t *testing.T) {
	// Root with one ind child kept with probability 0.3.
	doc := NewDocument(NewTag("r", NewInd([]float64{0.3}, NewTag("x"))), nil)
	p := NewPattern("r", NewPattern("x"))
	got, err := doc.MatchProbability(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 1e-12 {
		t.Errorf("P = %v, want 0.3", got)
	}
}

// TestMatchProbabilityCachedAcrossProbabilityUpdates checks the mini
// Prepare/Evaluate split: repeated MatchProbability calls on one document
// reuse the compiled scope/pattern caches, and updated event or keep
// probabilities still give exact (enumeration-checked) answers.
func TestMatchProbabilityCachedAcrossProbabilityUpdates(t *testing.T) {
	e := logic.Event("e")
	ind := NewInd([]float64{0.3}, NewTag("x"))
	doc := NewDocument(NewTag("r",
		NewCie([][]logic.Literal{{{Event: e}}}, NewTag("y")),
		ind,
	), logic.Prob{e: 0.4})
	p := NewPattern("r", NewPattern("x"), NewPattern("y"))
	for trial, setup := range []func(){
		func() {},
		func() { doc.EventProb[e] = 0.9 }, // update an event probability
		func() { ind.Probs[0] = 0.8 },     // update a local keep probability
	} {
		setup()
		got, err := doc.MatchProbability(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := doc.MatchProbabilityEnumeration(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("trial %d: DP %v, enumeration %v", trial, got, want)
		}
		if doc.scopeCache == nil || doc.patternCache[p.cacheKey()] == nil {
			t.Errorf("trial %d: compilation was not cached", trial)
		}
	}
	// A structurally equal pattern rebuilt from scratch hits the same entry.
	rebuilt := NewPattern("r", NewPattern("x"), NewPattern("y"))
	if _, err := doc.MatchProbability(rebuilt); err != nil {
		t.Fatal(err)
	}
	if len(doc.patternCache) != 1 {
		t.Errorf("rebuilt equal pattern missed the cache: %d entries", len(doc.patternCache))
	}
	// A structural edit plus ResetCache recompiles and stays exact.
	doc.Root.Children = doc.Root.Children[:1] // drop the ind subtree
	doc.ResetCache()
	if doc.scopeCache != nil || doc.patternCache != nil {
		t.Fatal("ResetCache left caches in place")
	}
	got, err := doc.MatchProbability(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("pattern still matches after its subtree was removed: %v", got)
	}
}

// TestMatchProbabilityConcurrentCallsSafe checks that the compilation
// caches keep concurrent MatchProbability calls on one shared document safe
// (they were safe before the caches existed, when everything was built
// per call).
func TestMatchProbabilityConcurrentCallsSafe(t *testing.T) {
	e := logic.Event("e")
	doc := NewDocument(NewTag("r",
		NewCie([][]logic.Literal{{{Event: e}}}, NewTag("y")),
		NewInd([]float64{0.3}, NewTag("x")),
	), logic.Prob{e: 0.4})
	patterns := []*Pattern{
		NewPattern("r", NewPattern("x")),
		NewPattern("r", NewPattern("y")),
		NewPattern("r").WithDescendant(NewPattern("x")),
	}
	want := make([]float64, len(patterns))
	for i, p := range patterns {
		var err error
		if want[i], err = doc.MatchProbability(p); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 30; it++ {
				i := (g + it) % len(patterns)
				got, err := doc.MatchProbability(patterns[i])
				if err != nil {
					t.Error(err)
					return
				}
				if math.Abs(got-want[i]) > 1e-12 {
					t.Errorf("pattern %d: %v, want %v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPatternCacheBounded queries one document with more distinct patterns
// than the cache bound: the cache must stay bounded and the answers exact.
func TestPatternCacheBounded(t *testing.T) {
	doc := NewDocument(NewTag("r", NewInd([]float64{0.3}, NewTag("x"))), nil)
	for i := 0; i < 3*maxCachedPatterns; i++ {
		got, err := doc.MatchProbability(NewPattern("r", NewPattern("x")))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-0.3) > 1e-12 {
			t.Fatalf("iteration %d: P = %v, want 0.3", i, got)
		}
	}
	if n := len(doc.patternCache); n > maxCachedPatterns {
		t.Errorf("pattern cache grew to %d entries (bound %d)", n, maxCachedPatterns)
	}
}

func TestLocalModelMux(t *testing.T) {
	doc := NewDocument(NewTag("r",
		NewMux([]float64{0.2, 0.5}, NewTag("x"), NewTag("y")),
	), nil)
	for _, tc := range []struct {
		label string
		want  float64
	}{{"x", 0.2}, {"y", 0.5}, {"z", 0}} {
		got, err := doc.MatchProbability(NewPattern("r", NewPattern(tc.label)))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("P(%s) = %v, want %v", tc.label, got, tc.want)
		}
	}
	// Both children never coexist.
	got, err := doc.MatchProbability(NewPattern("r", NewPattern("x"), NewPattern("y")))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("P(x and y) = %v, want 0 (mutually exclusive)", got)
	}
}

func TestFigure1(t *testing.T) {
	doc := Figure1()
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    *Pattern
		want float64
	}{
		// The ind node keeps the occupation subtree with probability 0.4.
		{NewPattern("occupation", NewPattern("musician")), 0.4},
		// Given name choices.
		{NewPattern("given_name", NewPattern("Bradley")), 0.4},
		{NewPattern("given_name", NewPattern("Chelsea")), 0.6},
		// Jane's facts are correlated: both present iff eJane (0.9).
		{NewPattern("place_of_birth", NewPattern("Crescent")), 0.9},
		{NewPattern("surname", NewPattern("Manning")), 0.9},
		{
			NewPattern("Q298423",
				NewPattern("place_of_birth", NewPattern("Crescent")),
				NewPattern("surname", NewPattern("Manning"))), 0.9,
		},
		// The skeleton is certain.
		{NewPattern("Q298423", NewPattern("given_name")), 1},
	}
	for _, tc := range cases {
		got, err := doc.MatchProbability(tc.p)
		if err != nil {
			t.Fatalf("%s: %v", tc.p, err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("P(%s) = %v, want %v", tc.p, got, tc.want)
		}
		// Cross-check against full enumeration.
		if enum := doc.MatchProbabilityEnumeration(tc.p); math.Abs(got-enum) > 1e-12 {
			t.Errorf("P(%s): DP %v, enumeration %v", tc.p, got, enum)
		}
	}
}

func TestFigure1Scopes(t *testing.T) {
	doc := Figure1()
	info := doc.Scopes()
	// eJane is used by two cie nodes in different subtrees; it is live on
	// the paths between them but nowhere above their LCA (the root).
	if info.Max != 1 {
		t.Errorf("max scope = %d, want 1", info.Max)
	}
	if len(info.Live[doc.Root]) != 0 {
		t.Errorf("root live set = %v, want empty", info.Live[doc.Root])
	}
}

// randomLocalDoc builds a random ind/mux/det document.
func randomLocalDoc(r *rand.Rand, budget int) *Node {
	labels := []string{"a", "b", "c"}
	if budget <= 1 {
		return NewTag(labels[r.Intn(len(labels))])
	}
	nChildren := 1 + r.Intn(3)
	var children []*Node
	rest := (budget - 1) / nChildren
	for i := 0; i < nChildren; i++ {
		children = append(children, randomLocalDoc(r, rest))
	}
	switch r.Intn(4) {
	case 0:
		probs := make([]float64, len(children))
		for i := range probs {
			probs[i] = r.Float64()
		}
		return NewTag(labels[r.Intn(len(labels))], NewInd(probs, children...))
	case 1:
		probs := make([]float64, len(children))
		total := 1.0
		for i := range probs {
			probs[i] = total * r.Float64() / float64(len(probs))
			total -= probs[i]
		}
		return NewTag(labels[r.Intn(len(labels))], NewMux(probs, children...))
	case 2:
		return NewTag(labels[r.Intn(len(labels))], NewDet(children...))
	default:
		return NewTag(labels[r.Intn(len(labels))], children...)
	}
}

func randomPattern(r *rand.Rand, budget int) *Pattern {
	labels := []string{"a", "b", "c", ""}
	p := NewPattern(labels[r.Intn(len(labels))])
	if budget <= 1 {
		return p
	}
	n := r.Intn(3)
	for i := 0; i < n; i++ {
		c := randomPattern(r, budget/2)
		if r.Intn(2) == 0 {
			p.WithDescendant(c)
		} else {
			p.WithChild(c)
		}
	}
	return p
}

func TestPropertyLocalDPMatchesEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := NewDocument(randomLocalDoc(r, 6), nil)
		p := randomPattern(r, 4)
		got, err := doc.MatchProbability(p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := doc.MatchProbabilityEnumeration(p)
		if math.Abs(got-want) > 1e-9 {
			t.Logf("seed %d: DP %v, enum %v for %s", seed, got, want, p)
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// randomEventDoc builds a random document with cie nodes over a small event
// pool (so scopes stay small but events are reused across subtrees).
func randomEventDoc(r *rand.Rand, budget int, events []logic.Event) *Node {
	labels := []string{"a", "b", "c"}
	if budget <= 1 {
		return NewTag(labels[r.Intn(len(labels))])
	}
	nChildren := 1 + r.Intn(2)
	var children []*Node
	for i := 0; i < nChildren; i++ {
		children = append(children, randomEventDoc(r, (budget-1)/nChildren, events))
	}
	if r.Intn(2) == 0 {
		conds := make([][]logic.Literal, len(children))
		for i := range conds {
			lit := logic.Literal{Event: events[r.Intn(len(events))], Negated: r.Intn(2) == 0}
			conds[i] = []logic.Literal{lit}
			if r.Intn(3) == 0 {
				conds[i] = append(conds[i], logic.Literal{Event: events[r.Intn(len(events))]})
			}
		}
		return NewTag(labels[r.Intn(len(labels))], NewCie(conds, children...))
	}
	return NewTag(labels[r.Intn(len(labels))], children...)
}

func TestPropertyEventDPMatchesEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	events := []logic.Event{"e1", "e2", "e3"}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prob := logic.Prob{}
		for _, e := range events {
			prob[e] = r.Float64()
		}
		doc := NewDocument(randomEventDoc(r, 7, events), prob)
		p := randomPattern(r, 4)
		got, err := doc.MatchProbability(p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := doc.MatchProbabilityEnumeration(p)
		if math.Abs(got-want) > 1e-9 {
			t.Logf("seed %d: DP %v, enum %v for %s on %d-node doc", seed, got, want, p, doc.Size())
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestEncodeFigure1MatchesRelationalEngine(t *testing.T) {
	doc := Figure1()
	enc := doc.Encode()
	// Tree pattern given_name/Chelsea as a CQ over the encoding.
	q := rel.NewCQ(
		rel.NewAtom("node", rel.V("p"), rel.C("given_name")),
		rel.NewAtom("child", rel.V("p"), rel.V("c")),
		rel.NewAtom("node", rel.V("c"), rel.C("Chelsea")),
	)
	res, err := core.ProbabilityPC(enc.C, enc.P, q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := doc.MatchProbability(NewPattern("given_name", NewPattern("Chelsea")))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Probability-want) > 1e-9 {
		t.Errorf("relational engine %v, PrXML DP %v", res.Probability, want)
	}
	// Correlated facts through the encoding.
	q2 := rel.NewCQ(
		rel.NewAtom("node", rel.V("p"), rel.C("place_of_birth")),
		rel.NewAtom("child", rel.V("p"), rel.V("c")),
		rel.NewAtom("node", rel.V("c"), rel.C("Crescent")),
		rel.NewAtom("node", rel.V("q"), rel.C("surname")),
		rel.NewAtom("child", rel.V("q"), rel.V("d")),
		rel.NewAtom("node", rel.V("d"), rel.C("Manning")),
	)
	res2, err := core.ProbabilityPC(enc.C, enc.P, q2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Probability-0.9) > 1e-9 {
		t.Errorf("P(both Jane facts) = %v, want 0.9", res2.Probability)
	}
}

func TestPropertyEncodeWorldsMatchDocumentWorlds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	events := []logic.Event{"e1", "e2"}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prob := logic.Prob{}
		for _, e := range events {
			prob[e] = 0.25 + r.Float64()/2
		}
		doc := NewDocument(randomEventDoc(r, 5, events), prob)
		p := randomPattern(r, 3)
		// Probability via the document.
		want, err := doc.MatchProbability(p)
		if err != nil {
			return false
		}
		// Probability via the encoding: count matches of the pattern as a
		// CQ. Only works for child-only single-chain patterns, so restrict.
		if len(p.Edges) != 0 {
			return true // skip non-trivial structures; covered elsewhere
		}
		q := rel.NewCQ(rel.NewAtom("node", rel.V("x"), rel.C(p.Label)))
		if p.Label == "" {
			q = rel.NewCQ(rel.NewAtom("node", rel.V("x"), rel.V("l")))
		}
		enc := doc.Encode()
		got := enc.C.QueryProbabilityEnumeration(q, enc.P)
		if math.Abs(got-want) > 1e-9 {
			t.Logf("seed %d: encoding %v, document %v", seed, got, want)
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestScopesBoundedVsUnbounded(t *testing.T) {
	// A comb where every tooth uses the same event has that event live
	// along the whole spine... except it is the only event, so scope 1.
	// Using k distinct events that all cross the root's children gives
	// scope k at the crossing node.
	events := []logic.Event{"x1", "x2", "x3"}
	prob := logic.Prob{"x1": 0.5, "x2": 0.5, "x3": 0.5}
	mkLeaf := func(e logic.Event) *Node {
		return NewTag("l", NewCie([][]logic.Literal{{{Event: e}}}, NewTag("v")))
	}
	left := NewTag("L", mkLeaf(events[0]), mkLeaf(events[1]), mkLeaf(events[2]))
	right := NewTag("R", mkLeaf(events[0]), mkLeaf(events[1]), mkLeaf(events[2]))
	doc := NewDocument(NewTag("root", left, right), prob)
	info := doc.Scopes()
	// All three events occur on both sides, so they are live at L and R.
	if got := len(info.Live[left]); got != 3 {
		t.Errorf("live at L = %d, want 3", got)
	}
	if info.Max != 3 {
		t.Errorf("max scope = %d, want 3", info.Max)
	}
	// Probability still exact.
	got, err := doc.MatchProbability(NewPattern("l", NewPattern("v")))
	if err != nil {
		t.Fatal(err)
	}
	want := doc.MatchProbabilityEnumeration(NewPattern("l", NewPattern("v")))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("DP %v, enum %v", got, want)
	}
}

func TestDeepChainLinearScale(t *testing.T) {
	// A deep chain of ind nodes: enumeration has 2^80 worlds, the DP is
	// linear. P(leaf reachable) = 0.99^80.
	leaf := NewTag("leaf")
	cur := leaf
	for i := 0; i < 80; i++ {
		cur = NewTag("mid", NewInd([]float64{0.99}, cur))
	}
	doc := NewDocument(NewTag("root", cur), nil)
	got, err := doc.MatchProbability(NewPattern("leaf"))
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.99, 80)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("P = %v, want %v", got, want)
	}
}

func TestValidateRejectsBadDocuments(t *testing.T) {
	// cie event without probability.
	doc := NewDocument(NewTag("r",
		NewCie([][]logic.Literal{{{Event: "ghost"}}}, NewTag("x")),
	), nil)
	if err := doc.Validate(); err == nil {
		t.Error("expected error for unknown event")
	}
	// Negative probability smuggled in after construction.
	bad := NewTag("r", NewInd([]float64{0.5}, NewTag("x")))
	bad.Children[0].Probs[0] = -0.5
	if err := NewDocument(bad, nil).Validate(); err == nil {
		t.Error("expected error for negative probability")
	}
}

func TestEnumerateWorldsTotalsOne(t *testing.T) {
	doc := Figure1()
	total := 0.0
	worlds := 0
	doc.EnumerateWorlds(func(_ *XNode, p float64) {
		total += p
		worlds++
	})
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("world mass = %v", total)
	}
	// 2 (eJane) x 2 (ind) x 2 (mux, no-child case impossible: 0.4+0.6=1).
	if worlds != 8 {
		t.Errorf("worlds = %d, want 8", worlds)
	}
}
