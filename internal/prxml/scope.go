package prxml

import (
	"repro/internal/logic"
)

// ScopeInfo records, for each node, the events that are live at it: events
// occurring both inside the node's subtree and outside of it. This is the
// paper's notion of scope — "the set of nodes where the value of this event
// must be remembered when trying to evaluate a query on the tree". Bounded
// live sets are the sufficient condition for tractable query evaluation on
// PrXML documents with events (Section 2.1; [7]).
type ScopeInfo struct {
	// Live maps each node to its sorted live event list.
	Live map[*Node][]logic.Event
	// Max is the largest live set size over all nodes.
	Max int
}

// Scopes computes the live events of every node in one bottom-up pass over
// occurrence counts followed by a comparison against the global counts.
func (d *Document) Scopes() *ScopeInfo {
	total := map[logic.Event]int{}
	var count func(n *Node)
	count = func(n *Node) {
		if n.Kind == Cie {
			for _, cond := range n.Conds {
				for _, lit := range cond {
					total[lit.Event]++
				}
			}
		}
		for _, c := range n.Children {
			count(c)
		}
	}
	count(d.Root)

	info := &ScopeInfo{Live: map[*Node][]logic.Event{}}
	// below returns the occurrence counts within n's subtree and fills in
	// the live sets.
	var below func(n *Node) map[logic.Event]int
	below = func(n *Node) map[logic.Event]int {
		counts := map[logic.Event]int{}
		if n.Kind == Cie {
			for _, cond := range n.Conds {
				for _, lit := range cond {
					counts[lit.Event]++
				}
			}
		}
		for _, c := range n.Children {
			for e, k := range below(c) {
				counts[e] += k
			}
		}
		var live []logic.Event
		for e, k := range counts {
			if k < total[e] {
				live = append(live, e)
			}
		}
		logic.SortEvents(live)
		info.Live[n] = live
		if len(live) > info.Max {
			info.Max = len(live)
		}
		return counts
	}
	below(d.Root)
	return info
}

// MaxScope returns the largest live set size: the structural parameter of
// the bounded-scope tractability condition.
func (d *Document) MaxScope() int {
	return d.Scopes().Max
}
