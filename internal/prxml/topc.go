package prxml

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/pdb"
)

// Relational encoding of a document, connecting probabilistic XML to the
// relational formalisms of Section 2.2: every PrXML document rewrites to a
// pc-instance (and hence to a bounded-treewidth pcc-instance when the
// document's scopes are bounded), whose possible worlds are the document's
// worlds.
//
// Facts:
//
//	node(id, label)   — tag node id exists and carries label
//	child(pid, id)    — tag node id is a child of tag node pid in the world
//
// Both facts are annotated with the full presence condition of the node:
// the conjunction of the distribution choices on the path from the root.
// Local ind/mux choices become fresh independent events (mux via the usual
// prefix encoding); cie conditions contribute their global event literals.
type Encoded struct {
	C *pdb.CInstance
	P logic.Prob
	// RootID is the identifier of the document root's node fact.
	RootID string
}

// Encode translates the document.
func (d *Document) Encode() *Encoded {
	enc := &Encoded{C: pdb.NewCInstance(), P: logic.Prob{}}
	for e, pr := range d.EventProb {
		enc.P[e] = pr
	}
	nextID := 0
	freshID := func() string {
		nextID++
		return fmt.Sprintf("n%d", nextID-1)
	}
	nextEvent := 0
	freshEvent := func(pr float64) logic.Event {
		e := logic.Event(fmt.Sprintf("c%d", nextEvent))
		nextEvent++
		enc.P[e] = pr
		return e
	}

	// walk visits n with the given presence condition and nearest tag
	// ancestor id ("" for the root).
	var walk func(n *Node, cond logic.Formula, parentTag string)
	walk = func(n *Node, cond logic.Formula, parentTag string) {
		switch n.Kind {
		case Tag:
			id := freshID()
			enc.C.AddFact(cond, "node", id, n.Label)
			if parentTag == "" {
				enc.RootID = id
			} else {
				enc.C.AddFact(cond, "child", parentTag, id)
			}
			for _, c := range n.Children {
				walk(c, cond, id)
			}
		case Det:
			for _, c := range n.Children {
				walk(c, cond, parentTag)
			}
		case Ind:
			for i, c := range n.Children {
				e := freshEvent(n.Probs[i])
				walk(c, logic.And(cond, logic.Var(e)), parentTag)
			}
		case Mux:
			// Prefix encoding: child i is chosen iff its own coin comes up
			// after every earlier coin failed; coin i has the conditional
			// probability p_i / (1 - p_1 - ... - p_{i-1}).
			remaining := 1.0
			var prefix []logic.Formula
			for i, c := range n.Children {
				var coinProb float64
				if remaining > 1e-12 {
					coinProb = n.Probs[i] / remaining
				}
				if coinProb > 1 {
					coinProb = 1
				}
				e := freshEvent(coinProb)
				parts := append(append([]logic.Formula{cond}, prefix...), logic.Var(e))
				walk(c, logic.And(parts...), parentTag)
				prefix = append(prefix, logic.Not(logic.Var(e)))
				remaining -= n.Probs[i]
			}
		case Cie:
			for i, c := range n.Children {
				walk(c, logic.And(cond, logic.Conjunction(n.Conds[i])), parentTag)
			}
		}
	}
	walk(d.Root, logic.True, "")
	return enc
}
