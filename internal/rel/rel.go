// Package rel implements the relational substrate: schemas, facts,
// instances, conjunctive queries and their evaluation on certain (i.e.
// non-probabilistic) instances, and the Gaifman graph whose treewidth is the
// structural parameter of Theorems 1 and 2.
package rel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/treedec"
)

// Fact is a ground atom R(a1, ..., ak). Constants are strings.
type Fact struct {
	Rel  string
	Args []string
}

// NewFact builds a fact.
func NewFact(rel string, args ...string) Fact {
	return Fact{Rel: rel, Args: append([]string(nil), args...)}
}

// Key returns a canonical string identifying the fact, usable as a map key.
func (f Fact) Key() string {
	return f.Rel + "(" + strings.Join(f.Args, ",") + ")"
}

// String renders the fact, e.g. "R(a,b)".
func (f Fact) String() string { return f.Key() }

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool {
	if f.Rel != g.Rel || len(f.Args) != len(g.Args) {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// Instance is a finite relational instance: a set of facts. The zero value
// is an empty instance ready for use.
type Instance struct {
	facts []Fact
	keys  []string       // keys[i] = facts[i].Key(), cached at insertion
	index map[string]int // fact key -> position in facts
	byRel map[string][]int
}

// NewInstance returns an empty instance.
func NewInstance() *Instance {
	return &Instance{index: map[string]int{}, byRel: map[string][]int{}}
}

func (in *Instance) ensureInit() {
	if in.index == nil {
		in.index = map[string]int{}
		in.byRel = map[string][]int{}
	}
}

// Add inserts the fact if not already present and returns its index.
func (in *Instance) Add(f Fact) int {
	return in.addKeyed(f, f.Key())
}

// AddFrom inserts fact i of src, reusing src's cached canonical key so the
// key string is not re-rendered — the world-materialization hot path of the
// samplers, where every kept fact comes from the candidate instance.
func (in *Instance) AddFrom(src *Instance, i int) int {
	return in.addKeyed(src.facts[i], src.keys[i])
}

func (in *Instance) addKeyed(f Fact, key string) int {
	in.ensureInit()
	if i, ok := in.index[key]; ok {
		return i
	}
	i := len(in.facts)
	in.facts = append(in.facts, f)
	in.keys = append(in.keys, key)
	in.index[key] = i
	in.byRel[f.Rel] = append(in.byRel[f.Rel], i)
	return i
}

// AddFact is a convenience wrapper: Add(NewFact(rel, args...)).
func (in *Instance) AddFact(rel string, args ...string) int {
	return in.Add(NewFact(rel, args...))
}

// Reset empties the instance while retaining its allocated capacity (the
// fact slice, the index map, and the per-relation index slices), so tight
// loops — e.g. Monte Carlo samplers materializing one world per draw — can
// reuse a single instance instead of allocating one per iteration.
func (in *Instance) Reset() {
	in.ensureInit()
	in.facts = in.facts[:0]
	in.keys = in.keys[:0]
	clear(in.index)
	for r, ids := range in.byRel {
		in.byRel[r] = ids[:0]
	}
}

// Has reports whether the instance contains the fact.
func (in *Instance) Has(f Fact) bool {
	in.ensureInit()
	_, ok := in.index[f.Key()]
	return ok
}

// IndexOf returns the index of f, or -1.
func (in *Instance) IndexOf(f Fact) int {
	in.ensureInit()
	if i, ok := in.index[f.Key()]; ok {
		return i
	}
	return -1
}

// NumFacts returns the number of facts.
func (in *Instance) NumFacts() int { return len(in.facts) }

// Fact returns the i-th fact.
func (in *Instance) Fact(i int) Fact { return in.facts[i] }

// Facts returns all facts in insertion order (copy).
func (in *Instance) Facts() []Fact { return append([]Fact(nil), in.facts...) }

// FactsOf returns the indices of the facts of the given relation.
func (in *Instance) FactsOf(rel string) []int {
	in.ensureInit()
	return in.byRel[rel]
}

// Relations returns the sorted relation names present in the instance.
func (in *Instance) Relations() []string {
	in.ensureInit()
	rels := make([]string, 0, len(in.byRel))
	for r, ids := range in.byRel {
		if len(ids) > 0 { // Reset keeps emptied per-relation entries around
			rels = append(rels, r)
		}
	}
	sort.Strings(rels)
	return rels
}

// Domain returns the sorted active domain (all constants used by facts).
func (in *Instance) Domain() []string {
	set := map[string]struct{}{}
	for _, f := range in.facts {
		for _, a := range f.Args {
			set[a] = struct{}{}
		}
	}
	dom := make([]string, 0, len(set))
	for a := range set {
		dom = append(dom, a)
	}
	sort.Strings(dom)
	return dom
}

// Clone returns a deep copy.
func (in *Instance) Clone() *Instance {
	out := NewInstance()
	for _, f := range in.facts {
		out.Add(f)
	}
	return out
}

// String renders the instance deterministically, one fact per line.
func (in *Instance) String() string {
	keys := make([]string, len(in.facts))
	for i, f := range in.facts {
		keys[i] = f.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// DomainIndex maps the active domain to contiguous integers, the vertex
// space of the Gaifman graph and of tree decompositions.
type DomainIndex struct {
	ByName map[string]int
	Names  []string
}

// IndexDomain builds a DomainIndex for the instance.
func (in *Instance) IndexDomain() *DomainIndex {
	dom := in.Domain()
	di := &DomainIndex{ByName: make(map[string]int, len(dom)), Names: dom}
	for i, a := range dom {
		di.ByName[a] = i
	}
	return di
}

// GaifmanGraph returns the Gaifman (primal) graph of the instance: vertices
// are domain elements, with an edge between any two constants co-occurring
// in a fact. The treewidth of a TID instance is defined as the treewidth of
// this graph (Theorem 1), since the tuple of each fact forms a clique, every
// fact fits inside a single bag of any valid tree decomposition.
func (in *Instance) GaifmanGraph(di *DomainIndex) *treedec.Graph {
	if di == nil {
		di = in.IndexDomain()
	}
	g := treedec.NewGraph(len(di.Names))
	for _, f := range in.facts {
		scope := make([]int, 0, len(f.Args))
		for _, a := range f.Args {
			scope = append(scope, di.ByName[a])
		}
		g.AddClique(scope)
	}
	return g
}

// FactScopes returns, for each fact, its argument vertices under di
// (deduplicated). These are the clique scopes handed to
// treedec.Nice.AssignScopes.
func (in *Instance) FactScopes(di *DomainIndex) [][]int {
	scopes := make([][]int, len(in.facts))
	for i, f := range in.facts {
		seen := map[int]struct{}{}
		var scope []int
		for _, a := range f.Args {
			v := di.ByName[a]
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				scope = append(scope, v)
			}
		}
		sort.Ints(scope)
		scopes[i] = scope
	}
	return scopes
}

// Treewidth returns a heuristic upper bound on the instance's treewidth.
func (in *Instance) Treewidth() int {
	if in.NumFacts() == 0 {
		return -1
	}
	return treedec.Treewidth(in.GaifmanGraph(nil))
}

// Term is a variable or a constant in a query atom.
type Term struct {
	Name  string
	IsVar bool
}

// V returns a variable term.
func V(name string) Term { return Term{Name: name, IsVar: true} }

// C returns a constant term.
func C(name string) Term { return Term{Name: name} }

func (t Term) String() string {
	if t.IsVar {
		return "?" + t.Name
	}
	return t.Name
}

// Atom is a relational atom R(t1, ..., tk) of a conjunctive query.
type Atom struct {
	Rel   string
	Terms []Term
}

// NewAtom builds an atom.
func NewAtom(rel string, terms ...Term) Atom {
	return Atom{Rel: rel, Terms: append([]Term(nil), terms...)}
}

func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

// CQ is a Boolean conjunctive query: an existentially quantified conjunction
// of atoms. The paper's running example is ∃x∃y R(x) ∧ S(x,y) ∧ T(y), whose
// probability evaluation is #P-hard on unrestricted TIDs.
type CQ struct {
	Atoms []Atom
}

// NewCQ builds a conjunctive query.
func NewCQ(atoms ...Atom) CQ {
	return CQ{Atoms: append([]Atom(nil), atoms...)}
}

// HardQuery returns the intro's #P-hard query ∃xy R(x) S(x,y) T(y).
func HardQuery() CQ {
	return NewCQ(
		NewAtom("R", V("x")),
		NewAtom("S", V("x"), V("y")),
		NewAtom("T", V("y")),
	)
}

// Vars returns the sorted variable names of the query.
func (q CQ) Vars() []string {
	set := map[string]struct{}{}
	for _, a := range q.Atoms {
		for _, t := range a.Terms {
			if t.IsVar {
				set[t.Name] = struct{}{}
			}
		}
	}
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

func (q CQ) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, " & ")
}

// Holds reports whether the Boolean query q is satisfied by the instance,
// i.e. whether a homomorphism from q's atoms into the facts exists. Simple
// backtracking join; exponential in the query, polynomial in the data.
// Newly bound variables are tracked on a shared trail rather than per-fact
// slices, so a Holds call allocates only the binding map and the trail —
// this is the per-sample hot path of internal/sampling.
func (q CQ) Holds(in *Instance) bool {
	trail := make([]string, 0, 2*len(q.Atoms))
	return q.matchFrom(in, 0, make(map[string]string, 2*len(q.Atoms)), &trail)
}

func (q CQ) matchFrom(in *Instance, ai int, binding map[string]string, trail *[]string) bool {
	if ai == len(q.Atoms) {
		return true
	}
	atom := q.Atoms[ai]
	for _, fi := range in.FactsOf(atom.Rel) {
		f := in.Fact(fi)
		if len(f.Args) != len(atom.Terms) {
			continue
		}
		mark := len(*trail)
		ok := true
		for i, t := range atom.Terms {
			arg := f.Args[i]
			if !t.IsVar {
				if t.Name != arg {
					ok = false
					break
				}
				continue
			}
			if bound, has := binding[t.Name]; has {
				if bound != arg {
					ok = false
					break
				}
				continue
			}
			binding[t.Name] = arg
			*trail = append(*trail, t.Name)
		}
		if ok && q.matchFrom(in, ai+1, binding, trail) {
			return true
		}
		for _, v := range (*trail)[mark:] {
			delete(binding, v)
		}
		*trail = (*trail)[:mark]
	}
	return false
}

// Matches returns all homomorphisms from q into the instance, as bindings
// from variable names to constants. Used by the Datalog engine and by
// lineage cross-checks.
func (q CQ) Matches(in *Instance) []map[string]string {
	var out []map[string]string
	var rec func(ai int, binding map[string]string)
	rec = func(ai int, binding map[string]string) {
		if ai == len(q.Atoms) {
			m := make(map[string]string, len(binding))
			for k, v := range binding {
				m[k] = v
			}
			out = append(out, m)
			return
		}
		atom := q.Atoms[ai]
		for _, fi := range in.FactsOf(atom.Rel) {
			f := in.Fact(fi)
			if len(f.Args) != len(atom.Terms) {
				continue
			}
			var newVars []string
			ok := true
			for i, t := range atom.Terms {
				arg := f.Args[i]
				if !t.IsVar {
					if t.Name != arg {
						ok = false
						break
					}
					continue
				}
				if bound, has := binding[t.Name]; has {
					if bound != arg {
						ok = false
						break
					}
					continue
				}
				binding[t.Name] = arg
				newVars = append(newVars, t.Name)
			}
			if ok {
				rec(ai+1, binding)
			}
			for _, v := range newVars {
				delete(binding, v)
			}
		}
	}
	rec(0, map[string]string{})
	return out
}

// MatchingFactSets returns, for every homomorphism of q into the instance,
// the set of fact indices used (deduplicated, sorted). The disjunction over
// these sets of the conjunction of fact presences is the query's lineage by
// definition — the ground truth that internal/core's DP is tested against.
func (q CQ) MatchingFactSets(in *Instance) [][]int {
	var out [][]int
	seen := map[string]bool{}
	for _, binding := range q.Matches(in) {
		set := map[int]struct{}{}
		okAll := true
		for _, atom := range q.Atoms {
			args := make([]string, len(atom.Terms))
			for i, t := range atom.Terms {
				if t.IsVar {
					args[i] = binding[t.Name]
				} else {
					args[i] = t.Name
				}
			}
			fi := in.IndexOf(NewFact(atom.Rel, args...))
			if fi < 0 {
				okAll = false
				break
			}
			set[fi] = struct{}{}
		}
		if !okAll {
			continue
		}
		ids := make([]int, 0, len(set))
		for fi := range set {
			ids = append(ids, fi)
		}
		sort.Ints(ids)
		key := fmt.Sprint(ids)
		if !seen[key] {
			seen[key] = true
			out = append(out, ids)
		}
	}
	return out
}
