package rel

import (
	"testing"
)

func TestInstanceBasics(t *testing.T) {
	in := NewInstance()
	i1 := in.AddFact("R", "a")
	i2 := in.AddFact("S", "a", "b")
	if dup := in.AddFact("R", "a"); dup != i1 {
		t.Error("Add must deduplicate")
	}
	if in.NumFacts() != 2 {
		t.Errorf("NumFacts = %d", in.NumFacts())
	}
	if !in.Has(NewFact("S", "a", "b")) || in.Has(NewFact("S", "b", "a")) {
		t.Error("Has misbehaves")
	}
	if in.IndexOf(NewFact("S", "a", "b")) != i2 {
		t.Error("IndexOf misbehaves")
	}
	dom := in.Domain()
	if len(dom) != 2 || dom[0] != "a" || dom[1] != "b" {
		t.Errorf("Domain = %v", dom)
	}
	rels := in.Relations()
	if len(rels) != 2 || rels[0] != "R" || rels[1] != "S" {
		t.Errorf("Relations = %v", rels)
	}
}

func TestGaifmanGraphAndTreewidth(t *testing.T) {
	// Chain: S(a0,a1), S(a1,a2), ... -> path graph, treewidth 1.
	in := NewInstance()
	names := []string{"a0", "a1", "a2", "a3", "a4"}
	for i := 0; i+1 < len(names); i++ {
		in.AddFact("S", names[i], names[i+1])
	}
	if w := in.Treewidth(); w != 1 {
		t.Errorf("chain treewidth = %d, want 1", w)
	}
	// Triangle via a ternary fact: clique of size 3, treewidth 2.
	in2 := NewInstance()
	in2.AddFact("T3", "x", "y", "z")
	if w := in2.Treewidth(); w != 2 {
		t.Errorf("ternary-fact treewidth = %d, want 2", w)
	}
	di := in.IndexDomain()
	g := in.GaifmanGraph(di)
	if g.NumEdges() != 4 {
		t.Errorf("chain Gaifman edges = %d, want 4", g.NumEdges())
	}
	scopes := in.FactScopes(di)
	if len(scopes) != in.NumFacts() {
		t.Fatalf("FactScopes length mismatch")
	}
	for i, s := range scopes {
		if len(s) != 2 {
			t.Errorf("scope %d = %v, want 2 vertices", i, s)
		}
	}
}

func TestFactScopeDeduplicatesRepeatedArgs(t *testing.T) {
	in := NewInstance()
	in.AddFact("E", "a", "a")
	scopes := in.FactScopes(in.IndexDomain())
	if len(scopes[0]) != 1 {
		t.Errorf("scope = %v, want single vertex", scopes[0])
	}
}

func TestCQHolds(t *testing.T) {
	in := NewInstance()
	in.AddFact("R", "a")
	in.AddFact("S", "a", "b")
	in.AddFact("T", "b")
	q := HardQuery()
	if !q.Holds(in) {
		t.Error("hard query should hold")
	}
	// Remove the witness: T(b) replaced by T(c).
	in2 := NewInstance()
	in2.AddFact("R", "a")
	in2.AddFact("S", "a", "b")
	in2.AddFact("T", "c")
	if q.Holds(in2) {
		t.Error("hard query should not hold without T(b)")
	}
}

func TestCQConstantsAndRepeatedVars(t *testing.T) {
	in := NewInstance()
	in.AddFact("E", "a", "b")
	in.AddFact("E", "b", "b")
	// Self-loop query ∃x E(x,x).
	loop := NewCQ(NewAtom("E", V("x"), V("x")))
	if !loop.Holds(in) {
		t.Error("self-loop query should hold via E(b,b)")
	}
	// Constant query E(a, ?y).
	constQ := NewCQ(NewAtom("E", C("a"), V("y")))
	if !constQ.Holds(in) {
		t.Error("constant query should hold")
	}
	missing := NewCQ(NewAtom("E", C("c"), V("y")))
	if missing.Holds(in) {
		t.Error("query with absent constant should fail")
	}
}

func TestCQMatches(t *testing.T) {
	in := NewInstance()
	in.AddFact("R", "a")
	in.AddFact("R", "b")
	in.AddFact("S", "a", "c")
	in.AddFact("S", "b", "c")
	q := NewCQ(NewAtom("R", V("x")), NewAtom("S", V("x"), V("y")))
	ms := q.Matches(in)
	if len(ms) != 2 {
		t.Fatalf("Matches = %v, want 2", ms)
	}
	for _, m := range ms {
		if m["y"] != "c" {
			t.Errorf("binding %v should map y to c", m)
		}
	}
}

func TestMatchingFactSets(t *testing.T) {
	in := NewInstance()
	r := in.AddFact("R", "a")
	s := in.AddFact("S", "a", "b")
	tt := in.AddFact("T", "b")
	in.AddFact("T", "zzz") // not part of any match
	sets := HardQuery().MatchingFactSets(in)
	if len(sets) != 1 {
		t.Fatalf("MatchingFactSets = %v, want exactly 1 set", sets)
	}
	want := []int{r, s, tt}
	if len(sets[0]) != 3 {
		t.Fatalf("set = %v, want %v", sets[0], want)
	}
	for i := range want {
		if sets[0][i] != want[i] {
			t.Fatalf("set = %v, want %v", sets[0], want)
		}
	}
}

func TestCQVarsAndString(t *testing.T) {
	q := HardQuery()
	vars := q.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
	if got := q.String(); got != "R(?x) & S(?x,?y) & T(?y)" {
		t.Errorf("String = %q", got)
	}
}

func TestEmptyQueryHolds(t *testing.T) {
	if !NewCQ().Holds(NewInstance()) {
		t.Error("empty conjunction must hold on any instance")
	}
}

func TestInstanceCloneIndependent(t *testing.T) {
	in := NewInstance()
	in.AddFact("R", "a")
	cp := in.Clone()
	cp.AddFact("R", "b")
	if in.NumFacts() != 1 || cp.NumFacts() != 2 {
		t.Error("Clone must be independent")
	}
}
