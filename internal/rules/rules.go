// Package rules implements reasoning under rules (Section 2.3): a Datalog
// engine over certain instances, and a probabilistic chase over uncertain
// (pc-)instances for soft rules.
//
// A soft rule applies *per grounding*: each way of matching its body fires
// an independent coin with the rule's probability, matching the paper's
// desired semantics ("the rule applies, on average, in 80% of cases") and
// departing from models where a rule is globally true or false. Derived
// facts carry annotations built from the annotations of their premises and
// the firing coins, so query probability on the chased instance follows the
// possible-worlds semantics of internal/pdb and the tractable evaluation of
// internal/core.
//
// Rules may be existential (head variables absent from the body denote
// fresh nulls, Datalog±-style); the chase is truncated at a configurable
// depth, the paper's suggested handling of non-terminating chases.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// Rule is a (possibly probabilistic, possibly existential) rule
// Head :- Body with application probability Prob (1 = hard rule).
type Rule struct {
	Head rel.Atom
	Body []rel.Atom
	Prob float64
}

// NewRule builds a hard rule.
func NewRule(head rel.Atom, body ...rel.Atom) Rule {
	return Rule{Head: head, Body: body, Prob: 1}
}

// NewSoftRule builds a probabilistic rule: each grounding of the body fires
// independently with probability p.
func NewSoftRule(p float64, head rel.Atom, body ...rel.Atom) Rule {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("rules: probability %v outside [0,1]", p))
	}
	return Rule{Head: head, Body: body, Prob: p}
}

// ExistentialVars returns the head variables that do not occur in the body:
// the null-inventing positions.
func (r Rule) ExistentialVars() []string {
	bodyVars := map[string]bool{}
	for _, a := range r.Body {
		for _, t := range a.Terms {
			if t.IsVar {
				bodyVars[t.Name] = true
			}
		}
	}
	var out []string
	seen := map[string]bool{}
	for _, t := range r.Head.Terms {
		if t.IsVar && !bodyVars[t.Name] && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	return out
}

// Guarded reports whether some body atom contains every body variable (the
// guardedness condition under which the paper hopes to preserve
// treewidth-based tractability).
func (r Rule) Guarded() bool {
	vars := map[string]bool{}
	for _, a := range r.Body {
		for _, t := range a.Terms {
			if t.IsVar {
				vars[t.Name] = true
			}
		}
	}
	for _, a := range r.Body {
		covered := map[string]bool{}
		for _, t := range a.Terms {
			if t.IsVar {
				covered[t.Name] = true
			}
		}
		if len(covered) == len(vars) {
			all := true
			for v := range vars {
				if !covered[v] {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
	}
	return len(vars) == 0
}

func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	s := r.Head.String() + " :- " + strings.Join(parts, ", ")
	if r.Prob < 1 {
		s += fmt.Sprintf(" [p=%v]", r.Prob)
	}
	return s
}

// Program is a set of rules.
type Program struct {
	Rules []Rule
}

// NewProgram builds a program.
func NewProgram(rules ...Rule) *Program {
	return &Program{Rules: rules}
}

// Fixpoint computes the least fixpoint of the hard (non-existential,
// Prob = 1) rules on a certain instance: plain Datalog evaluation by
// iterated rule application with deduplication. Existential or soft rules
// cause an error; use Chase for those.
func (p *Program) Fixpoint(in *rel.Instance) (*rel.Instance, error) {
	for _, r := range p.Rules {
		if r.Prob < 1 {
			return nil, fmt.Errorf("rules: Fixpoint cannot handle soft rule %s", r)
		}
		if len(r.ExistentialVars()) > 0 {
			return nil, fmt.Errorf("rules: Fixpoint cannot handle existential rule %s", r)
		}
	}
	out := in.Clone()
	for {
		added := false
		for _, r := range p.Rules {
			q := rel.NewCQ(r.Body...)
			for _, binding := range q.Matches(out) {
				f, err := groundHead(r.Head, binding, nil)
				if err != nil {
					return nil, err
				}
				if !out.Has(f) {
					out.Add(f)
					added = true
				}
			}
		}
		if !added {
			return out, nil
		}
	}
}

func groundHead(head rel.Atom, binding map[string]string, nulls map[string]string) (rel.Fact, error) {
	args := make([]string, len(head.Terms))
	for i, t := range head.Terms {
		if !t.IsVar {
			args[i] = t.Name
			continue
		}
		if v, ok := binding[t.Name]; ok {
			args[i] = v
			continue
		}
		if v, ok := nulls[t.Name]; ok {
			args[i] = v
			continue
		}
		return rel.Fact{}, fmt.Errorf("rules: unbound head variable %s", t.Name)
	}
	return rel.NewFact(head.Rel, args...), nil
}

// ChaseOptions configures the probabilistic chase.
type ChaseOptions struct {
	// MaxRounds bounds the number of propagation rounds. Each round applies
	// every rule to every grounding over the facts known so far, and also
	// re-propagates annotations so that cyclic derivations converge to the
	// least fixpoint (a world's derived facts stabilize after at most
	// #facts rounds). 0 means: iterate until nothing changes syntactically
	// up to a safety cap.
	MaxRounds int
}

// ChaseResult is the outcome of a probabilistic chase.
type ChaseResult struct {
	// C is the chased pc-instance: base facts plus derived facts, each
	// annotated with the conditions under which it holds.
	C *pdb.CInstance
	// P extends the base probabilities with the firing coins.
	P logic.Prob
	// Rounds is the number of propagation rounds executed.
	Rounds int
	// Derived lists the indices (in C) of non-base facts.
	Derived []int
	// Nulls counts the fresh labelled nulls invented.
	Nulls int
}

// Chase runs the probabilistic chase of the program over a pc-instance.
//
// Every grounding of a soft rule receives a fresh independent coin with the
// rule's probability; the derived fact's annotation is the disjunction over
// its derivations of (conjunction of premise annotations ∧ coin). Rounds
// re-propagate annotations until the least fixpoint (or MaxRounds).
// Existential heads invent one labelled null per grounding (skolem
// semantics), so the chase explores new elements but remains finite under
// the round bound.
func (p *Program) Chase(base *pdb.CInstance, baseProb logic.Prob, opts ChaseOptions) (*ChaseResult, error) {
	res := &ChaseResult{C: pdb.NewCInstance(), P: logic.Prob{}}
	for e, pr := range baseProb {
		res.P[e] = pr
	}
	nBase := base.NumFacts()
	for i := 0; i < nBase; i++ {
		res.C.Add(base.Inst.Fact(i), base.Ann[i])
	}
	// Coins and nulls are keyed by (rule, grounding) so that the same
	// grounding reuses the same coin and null across rounds.
	coins := map[string]logic.Event{}
	nulls := map[string]string{}
	coinFor := func(key string, prob float64) logic.Event {
		if e, ok := coins[key]; ok {
			return e
		}
		e := logic.Event(fmt.Sprintf("r%d", len(coins)))
		coins[key] = e
		res.P[e] = prob
		return e
	}
	nullFor := func(key string) string {
		if v, ok := nulls[key]; ok {
			return v
		}
		v := fmt.Sprintf("_null%d", len(nulls))
		nulls[key] = v
		return v
	}

	maxRounds := opts.MaxRounds
	capRounds := maxRounds
	if capRounds == 0 {
		capRounds = 2*nBase + 2*len(p.Rules)*8 + 8 // safety cap for auto mode
	}
	for round := 0; round < capRounds; round++ {
		changed := false
		// Snapshot annotations so a round is a simultaneous application of
		// the immediate-consequence operator.
		snapshot := make([]logic.Formula, res.C.NumFacts())
		copy(snapshot, res.C.Ann)
		snapInst := res.C.Inst.Clone()
		annOf := func(f rel.Fact) logic.Formula {
			if i := snapInst.IndexOf(f); i >= 0 {
				return snapshot[i]
			}
			return logic.False
		}
		for ri, r := range p.Rules {
			q := rel.NewCQ(r.Body...)
			for _, binding := range q.Matches(snapInst) {
				gkey := groundingKey(ri, r, binding)
				// Premise annotation.
				conj := []logic.Formula{}
				okAll := true
				for _, atom := range r.Body {
					args := make([]string, len(atom.Terms))
					for i, t := range atom.Terms {
						if t.IsVar {
							args[i] = binding[t.Name]
						} else {
							args[i] = t.Name
						}
					}
					ann := annOf(rel.NewFact(atom.Rel, args...))
					if value, isConst := logic.IsConst(ann); isConst && !value {
						okAll = false
						break
					}
					conj = append(conj, ann)
				}
				if !okAll {
					continue
				}
				if r.Prob < 1 {
					conj = append(conj, logic.Var(coinFor(gkey, r.Prob)))
				}
				derivation := logic.And(conj...)
				// Ground the head, inventing nulls for existential vars.
				nullBinding := map[string]string{}
				for _, v := range r.ExistentialVars() {
					nullBinding[v] = nullFor(gkey + "/" + v)
				}
				f, err := groundHead(r.Head, binding, nullBinding)
				if err != nil {
					return nil, err
				}
				prev := res.C.Inst.IndexOf(f)
				if prev < 0 {
					idx := res.C.Add(f, derivation)
					res.Derived = append(res.Derived, idx)
					changed = true
					continue
				}
				// Merge the derivation, skipping it if it adds nothing. The
				// semantic check is exponential in the annotation's events,
				// so fall back to a syntactic check on large annotations
				// (sound: it may only run extra rounds, never miss one).
				merged := logic.Or(res.C.Ann[prev], derivation)
				if len(logic.Vars(merged)) <= 16 {
					if !logic.Equivalent(merged, res.C.Ann[prev]) {
						res.C.Ann[prev] = merged
						changed = true
					}
				} else if logic.String(merged) != logic.String(res.C.Ann[prev]) {
					res.C.Ann[prev] = merged
					changed = true
				}
			}
		}
		res.Rounds = round + 1
		if !changed {
			break
		}
		if maxRounds > 0 && res.Rounds >= maxRounds {
			break
		}
	}
	res.Nulls = len(nulls)
	return res, nil
}

func groundingKey(ri int, r Rule, binding map[string]string) string {
	vars := make([]string, 0, len(binding))
	for v := range binding {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", ri)
	for _, v := range vars {
		sb.WriteByte('|')
		sb.WriteString(v)
		sb.WriteByte('=')
		sb.WriteString(binding[v])
	}
	return sb.String()
}
