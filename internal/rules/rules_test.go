package rules

import (
	"math"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

func TestFixpointTransitiveClosure(t *testing.T) {
	in := rel.NewInstance()
	in.AddFact("E", "a", "b")
	in.AddFact("E", "b", "c")
	in.AddFact("E", "c", "d")
	prog := NewProgram(
		NewRule(rel.NewAtom("T", rel.V("x"), rel.V("y")), rel.NewAtom("E", rel.V("x"), rel.V("y"))),
		NewRule(rel.NewAtom("T", rel.V("x"), rel.V("z")),
			rel.NewAtom("T", rel.V("x"), rel.V("y")), rel.NewAtom("E", rel.V("y"), rel.V("z"))),
	)
	out, err := prog.Fixpoint(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "d"}} {
		if !out.Has(rel.NewFact("T", want[0], want[1])) {
			t.Errorf("missing T(%s,%s)", want[0], want[1])
		}
	}
	if out.Has(rel.NewFact("T", "b", "a")) {
		t.Error("unexpected backward edge")
	}
	if got := len(out.FactsOf("T")); got != 6 {
		t.Errorf("|T| = %d, want 6", got)
	}
}

func TestFixpointRejectsSoftAndExistential(t *testing.T) {
	soft := NewProgram(NewSoftRule(0.5, rel.NewAtom("B", rel.V("x")), rel.NewAtom("A", rel.V("x"))))
	if _, err := soft.Fixpoint(rel.NewInstance()); err == nil {
		t.Error("expected error for soft rule")
	}
	exist := NewProgram(NewRule(rel.NewAtom("B", rel.V("x"), rel.V("y")), rel.NewAtom("A", rel.V("x"))))
	if _, err := exist.Fixpoint(rel.NewInstance()); err == nil {
		t.Error("expected error for existential rule")
	}
}

func TestExistentialVarsAndGuardedness(t *testing.T) {
	r := NewRule(rel.NewAtom("Coauth", rel.V("s"), rel.V("a"), rel.V("p")),
		rel.NewAtom("Advises", rel.V("a"), rel.V("s")))
	ev := r.ExistentialVars()
	if len(ev) != 1 || ev[0] != "p" {
		t.Errorf("ExistentialVars = %v", ev)
	}
	if !r.Guarded() {
		t.Error("single-body-atom rule must be guarded")
	}
	unguarded := NewRule(rel.NewAtom("Q", rel.V("x"), rel.V("z")),
		rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("R", rel.V("y"), rel.V("z")))
	if unguarded.Guarded() {
		t.Error("two-atom rule with no covering atom must not be guarded")
	}
}

func TestChaseSoftRuleSimple(t *testing.T) {
	// A(a) certain; soft rule B(x) :- A(x) with p = 0.7.
	base := pdb.NewCInstance()
	base.AddFact(logic.True, "A", "a")
	prog := NewProgram(NewSoftRule(0.7, rel.NewAtom("B", rel.V("x")), rel.NewAtom("A", rel.V("x"))))
	res, err := prog.Chase(base, logic.Prob{}, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	i := res.C.Inst.IndexOf(rel.NewFact("B", "a"))
	if i < 0 {
		t.Fatal("B(a) not derived")
	}
	got := logic.Probability(res.C.Ann[i], res.P)
	if math.Abs(got-0.7) > 1e-12 {
		t.Errorf("P(B(a)) = %v, want 0.7", got)
	}
}

func TestChaseTwoIndependentDerivations(t *testing.T) {
	// B(a) derivable from two independent soft groundings: P = 1-(1-p)^2.
	base := pdb.NewCInstance()
	base.AddFact(logic.True, "A", "a", "1")
	base.AddFact(logic.True, "A", "a", "2")
	prog := NewProgram(NewSoftRule(0.5, rel.NewAtom("B", rel.V("x")), rel.NewAtom("A", rel.V("x"), rel.V("y"))))
	res, err := prog.Chase(base, logic.Prob{}, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	i := res.C.Inst.IndexOf(rel.NewFact("B", "a"))
	if i < 0 {
		t.Fatal("B(a) not derived")
	}
	got := logic.Probability(res.C.Ann[i], res.P)
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P(B(a)) = %v, want 0.75", got)
	}
}

func TestChaseUncertainPremise(t *testing.T) {
	// A(a) with probability 0.6; hard rule B(x) :- A(x): P(B(a)) = 0.6.
	base := pdb.NewCInstance()
	base.AddFact(logic.Var("e"), "A", "a")
	prog := NewProgram(NewRule(rel.NewAtom("B", rel.V("x")), rel.NewAtom("A", rel.V("x"))))
	res, err := prog.Chase(base, logic.Prob{"e": 0.6}, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	i := res.C.Inst.IndexOf(rel.NewFact("B", "a"))
	got := logic.Probability(res.C.Ann[i], res.P)
	if math.Abs(got-0.6) > 1e-12 {
		t.Errorf("P(B(a)) = %v, want 0.6", got)
	}
}

func TestChaseChainedSoftRules(t *testing.T) {
	// A -> B (0.8), B -> C (0.5): P(C) = 0.4.
	base := pdb.NewCInstance()
	base.AddFact(logic.True, "A", "a")
	prog := NewProgram(
		NewSoftRule(0.8, rel.NewAtom("B", rel.V("x")), rel.NewAtom("A", rel.V("x"))),
		NewSoftRule(0.5, rel.NewAtom("C", rel.V("x")), rel.NewAtom("B", rel.V("x"))),
	)
	res, err := prog.Chase(base, logic.Prob{}, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	i := res.C.Inst.IndexOf(rel.NewFact("C", "a"))
	if i < 0 {
		t.Fatal("C(a) not derived")
	}
	got := logic.Probability(res.C.Ann[i], res.P)
	if math.Abs(got-0.4) > 1e-12 {
		t.Errorf("P(C(a)) = %v, want 0.4", got)
	}
}

func TestChaseCyclicRulesConverge(t *testing.T) {
	// Symmetric reachability with uncertain base edges: R(x,y) :- E(x,y);
	// R(x,y) :- R(y,x). Cyclic but convergent.
	base := pdb.NewCInstance()
	base.AddFact(logic.Var("e1"), "E", "a", "b")
	prog := NewProgram(
		NewRule(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("E", rel.V("x"), rel.V("y"))),
		NewRule(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("R", rel.V("y"), rel.V("x"))),
	)
	res, err := prog.Chase(base, logic.Prob{"e1": 0.3}, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []rel.Fact{rel.NewFact("R", "a", "b"), rel.NewFact("R", "b", "a")} {
		i := res.C.Inst.IndexOf(f)
		if i < 0 {
			t.Fatalf("%s not derived", f)
		}
		got := logic.Probability(res.C.Ann[i], res.P)
		if math.Abs(got-0.3) > 1e-12 {
			t.Errorf("P(%s) = %v, want 0.3", f, got)
		}
	}
}

func TestChaseExistentialInventsNulls(t *testing.T) {
	// Every student has some (probably unknown) coauthored paper with
	// their advisor: Coauth(s, a, p) :- Advises(a, s), p existential.
	base := pdb.NewCInstance()
	base.AddFact(logic.True, "Advises", "alice", "bob")
	base.AddFact(logic.True, "Advises", "carol", "dan")
	prog := NewProgram(NewSoftRule(0.9,
		rel.NewAtom("Coauth", rel.V("s"), rel.V("a"), rel.V("p")),
		rel.NewAtom("Advises", rel.V("a"), rel.V("s"))))
	res, err := prog.Chase(base, logic.Prob{}, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nulls != 2 {
		t.Errorf("nulls = %d, want 2 (one per grounding)", res.Nulls)
	}
	found := 0
	for _, i := range res.Derived {
		f := res.C.Inst.Fact(i)
		if f.Rel == "Coauth" && strings.HasPrefix(f.Args[2], "_null") {
			found++
			got := logic.Probability(res.C.Ann[i], res.P)
			if math.Abs(got-0.9) > 1e-12 {
				t.Errorf("P(%s) = %v, want 0.9", f, got)
			}
		}
	}
	if found != 2 {
		t.Errorf("found %d Coauth facts with nulls, want 2", found)
	}
}

func TestChaseTransitiveClosureProbability(t *testing.T) {
	// Uncertain edges a->b->c, transitive closure as hard rules; check
	// P(T(a,c)) = P(e1)·P(e2) via both the annotation and ground truth.
	base := pdb.NewCInstance()
	base.AddFact(logic.Var("e1"), "E", "a", "b")
	base.AddFact(logic.Var("e2"), "E", "b", "c")
	prob := logic.Prob{"e1": 0.8, "e2": 0.5}
	prog := NewProgram(
		NewRule(rel.NewAtom("T", rel.V("x"), rel.V("y")), rel.NewAtom("E", rel.V("x"), rel.V("y"))),
		NewRule(rel.NewAtom("T", rel.V("x"), rel.V("z")),
			rel.NewAtom("T", rel.V("x"), rel.V("y")), rel.NewAtom("T", rel.V("y"), rel.V("z"))),
	)
	res, err := prog.Chase(base, prob, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	i := res.C.Inst.IndexOf(rel.NewFact("T", "a", "c"))
	if i < 0 {
		t.Fatal("T(a,c) not derived")
	}
	got := logic.Probability(res.C.Ann[i], res.P)
	if math.Abs(got-0.4) > 1e-12 {
		t.Errorf("P(T(a,c)) = %v, want 0.4", got)
	}
}

func TestChaseMaxRoundsTruncates(t *testing.T) {
	// Growing chain via existential rule: N(x) gives N(y) for a fresh y.
	// Unbounded chase; the round bound truncates it.
	base := pdb.NewCInstance()
	base.AddFact(logic.True, "N", "a")
	prog := NewProgram(NewSoftRule(0.5, rel.NewAtom("N", rel.V("y")), rel.NewAtom("N", rel.V("x"))))
	res, err := prog.Chase(base, logic.Prob{}, ChaseOptions{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", res.Rounds)
	}
	if res.Nulls == 0 || res.Nulls > 10 {
		t.Errorf("nulls = %d, want a small positive number", res.Nulls)
	}
}
