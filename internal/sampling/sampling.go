// Package sampling implements Monte Carlo estimation of query probability —
// the approximate method that the paper's exact structural algorithms are
// positioned against ("makes it necessary in practice to approximate query
// results via sampling"). Used as the accuracy baseline of experiment E10
// and as the fallback the paper envisions for high-treewidth cores.
package sampling

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// Estimate is a Monte Carlo estimate with a confidence interval.
type Estimate struct {
	P       float64 // point estimate (hit fraction)
	Samples int
	// Radius is the half-width of the two-sided Hoeffding confidence
	// interval at the requested confidence level.
	Radius float64
}

// Interval returns the clamped confidence interval [lo, hi].
func (e Estimate) Interval() (lo, hi float64) {
	lo = math.Max(0, e.P-e.Radius)
	hi = math.Min(1, e.P+e.Radius)
	return lo, hi
}

func (e Estimate) String() string {
	lo, hi := e.Interval()
	return fmt.Sprintf("%.4f ± %.4f [%.4f, %.4f] (n=%d)", e.P, e.Radius, lo, hi, e.Samples)
}

// hoeffdingRadius returns r such that P(|est - p| >= r) <= 1 - confidence.
func hoeffdingRadius(n int, confidence float64) float64 {
	if n == 0 {
		return 1
	}
	delta := 1 - confidence
	return math.Sqrt(math.Log(2/delta) / (2 * float64(n)))
}

// QueryTID estimates P(q) on a TID instance from n sampled worlds.
func QueryTID(t *pdb.TID, q rel.CQ, n int, confidence float64, r *rand.Rand) Estimate {
	hits := 0
	for i := 0; i < n; i++ {
		if q.Holds(t.Sample(r)) {
			hits++
		}
	}
	return Estimate{P: float64(hits) / float64(n), Samples: n, Radius: hoeffdingRadius(n, confidence)}
}

// QueryPC estimates P(q) on a pc-instance from n sampled worlds.
func QueryPC(c *pdb.CInstance, p logic.Prob, q rel.CQ, n int, confidence float64, r *rand.Rand) Estimate {
	hits := 0
	for i := 0; i < n; i++ {
		if q.Holds(c.Sample(r, p)) {
			hits++
		}
	}
	return Estimate{P: float64(hits) / float64(n), Samples: n, Radius: hoeffdingRadius(n, confidence)}
}

// SamplesForRadius returns the number of samples Hoeffding requires for the
// given interval half-width and confidence — the cost sampling pays where
// the exact algorithms answer in one pass.
func SamplesForRadius(radius, confidence float64) int {
	delta := 1 - confidence
	return int(math.Ceil(math.Log(2/delta) / (2 * radius * radius)))
}
