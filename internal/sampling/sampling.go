// Package sampling implements Monte Carlo estimation of query probability —
// the approximate method that the paper's exact structural algorithms are
// positioned against ("makes it necessary in practice to approximate query
// results via sampling"). Used as the accuracy baseline of experiment E10
// and as the fallback the paper envisions for high-treewidth cores.
package sampling

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

// Estimate is a Monte Carlo estimate with a confidence interval.
type Estimate struct {
	P       float64 // point estimate (hit fraction)
	Samples int
	// Radius is the half-width of the two-sided Hoeffding confidence
	// interval at the requested confidence level.
	Radius float64
}

// Interval returns the clamped confidence interval [lo, hi].
func (e Estimate) Interval() (lo, hi float64) {
	lo = math.Max(0, e.P-e.Radius)
	hi = math.Min(1, e.P+e.Radius)
	return lo, hi
}

func (e Estimate) String() string {
	lo, hi := e.Interval()
	return fmt.Sprintf("%.4f ± %.4f [%.4f, %.4f] (n=%d)", e.P, e.Radius, lo, hi, e.Samples)
}

// hoeffdingRadius returns r such that P(|est - p| >= r) <= 1 - confidence.
func hoeffdingRadius(n int, confidence float64) float64 {
	if n == 0 {
		return 1
	}
	delta := 1 - confidence
	return math.Sqrt(math.Log(2/delta) / (2 * float64(n)))
}

// QueryTID estimates P(q) on a TID instance from n sampled worlds. One
// presence mask and one world instance are reused across all draws, so the
// per-sample cost is the query match, not allocation.
func QueryTID(t *pdb.TID, q rel.CQ, n int, confidence float64, r *rand.Rand) Estimate {
	hits := 0
	present := make([]bool, t.NumFacts())
	world := rel.NewInstance()
	for i := 0; i < n; i++ {
		for j := range present {
			present[j] = r.Float64() < t.Probs[j]
		}
		if q.Holds(t.WorldInto(present, world)) {
			hits++
		}
	}
	return Estimate{P: float64(hits) / float64(n), Samples: n, Radius: hoeffdingRadius(n, confidence)}
}

// QueryPC estimates P(q) on a pc-instance from n sampled worlds. The event
// list, the valuation map and the world instance are hoisted out of the
// sampling loop and reused across all draws.
func QueryPC(c *pdb.CInstance, p logic.Prob, q rel.CQ, n int, confidence float64, r *rand.Rand) Estimate {
	hits := 0
	events := c.Events()
	v := make(logic.Valuation, len(events))
	world := rel.NewInstance()
	for i := 0; i < n; i++ {
		for _, e := range events {
			v[e] = r.Float64() < p.P(e)
		}
		if q.Holds(c.WorldInto(v, world)) {
			hits++
		}
	}
	return Estimate{P: float64(hits) / float64(n), Samples: n, Radius: hoeffdingRadius(n, confidence)}
}

// planLanes is the batch width of the plan-based samplers: how many sampled
// worlds one multi-lane DP pass decides.
const planLanes = 64

// queryPlan decides n sampled worlds through a prepared plan: each draw
// fixes every event to 0 or 1, and batches of planLanes draws are decided by
// one multi-lane pass of (*core.Plan).ProbabilityBatch, whose lanes then
// hold the exact 0/1 indicator of the query on each world. The lane maps are
// allocated once and rewritten in place between batches.
func queryPlan(pl *core.Plan, events []logic.Event, drawP func(logic.Event) float64, n int, confidence float64, r *rand.Rand) (Estimate, error) {
	lanes := make([]logic.Prob, planLanes)
	for i := range lanes {
		lanes[i] = make(logic.Prob, len(events))
	}
	hits := 0
	for done := 0; done < n; {
		batch := planLanes
		if n-done < batch {
			batch = n - done
		}
		for l := 0; l < batch; l++ {
			for _, e := range events {
				if r.Float64() < drawP(e) {
					lanes[l][e] = 1
				} else {
					lanes[l][e] = 0
				}
			}
		}
		out, err := pl.ProbabilityBatch(lanes[:batch])
		if err != nil {
			return Estimate{}, err
		}
		for _, ind := range out {
			if ind > 0.5 {
				hits++
			}
		}
		done += batch
	}
	return Estimate{P: float64(hits) / float64(n), Samples: n, Radius: hoeffdingRadius(n, confidence)}, nil
}

// QueryTIDPlan estimates P(q) on a TID instance from n sampled worlds,
// deciding every world through the prepared plan pl (as returned by
// core.PrepareTID for the same instance and query) instead of re-matching
// the query per sample: the query is decided once at Prepare time, and each
// batch of draws costs one multi-lane DP pass.
func QueryTIDPlan(t *pdb.TID, pl *core.Plan, n int, confidence float64, r *rand.Rand) (Estimate, error) {
	events := make([]logic.Event, t.NumFacts())
	probs := make(logic.Prob, t.NumFacts())
	for i := range events {
		events[i] = t.EventOf(i)
		probs[events[i]] = t.Probs[i]
	}
	return queryPlan(pl, events, probs.P, n, confidence, r)
}

// QueryPCPlan estimates P(q) on a pc-instance from n sampled worlds decided
// through the prepared plan pl (as returned by core.PrepareCQ for the same
// instance and query).
func QueryPCPlan(c *pdb.CInstance, p logic.Prob, pl *core.Plan, n int, confidence float64, r *rand.Rand) (Estimate, error) {
	return queryPlan(pl, c.Events(), p.P, n, confidence, r)
}

// SamplesForRadius returns the number of samples Hoeffding requires for the
// given interval half-width and confidence — the cost sampling pays where
// the exact algorithms answer in one pass.
func SamplesForRadius(radius, confidence float64) int {
	delta := 1 - confidence
	return int(math.Ceil(math.Log(2/delta) / (2 * radius * radius)))
}
