package sampling

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/pdb"
	"repro/internal/rel"
)

func TestQueryTIDConverges(t *testing.T) {
	tid := pdb.NewTID()
	tid.AddFact(0.5, "R", "a")
	tid.AddFact(0.7, "S", "a", "b")
	tid.AddFact(0.4, "T", "b")
	q := rel.HardQuery()
	exact := tid.QueryProbabilityEnumeration(q)
	r := rand.New(rand.NewSource(99))
	est := QueryTID(tid, q, 20000, 0.99, r)
	if math.Abs(est.P-exact) > est.Radius {
		t.Errorf("estimate %s misses exact %v", est, exact)
	}
	lo, hi := est.Interval()
	if lo > exact || hi < exact {
		t.Errorf("interval [%v, %v] misses exact %v", lo, hi, exact)
	}
}

func TestQueryPCConverges(t *testing.T) {
	c := pdb.NewCInstance()
	c.AddFact(logic.Var("e"), "R", "a")
	c.AddFact(logic.Not(logic.Var("e")), "R", "b")
	p := logic.Prob{"e": 0.3}
	q := rel.NewCQ(rel.NewAtom("R", rel.C("a")))
	r := rand.New(rand.NewSource(7))
	est := QueryPC(c, p, q, 20000, 0.99, r)
	if math.Abs(est.P-0.3) > est.Radius {
		t.Errorf("estimate %s misses 0.3", est)
	}
}

func TestRadiusShrinksWithSamples(t *testing.T) {
	small := hoeffdingRadius(100, 0.95)
	large := hoeffdingRadius(10000, 0.95)
	if large >= small {
		t.Errorf("radius did not shrink: %v vs %v", small, large)
	}
	// The 1/sqrt(n) law: 100x samples -> 10x tighter.
	if math.Abs(small/large-10) > 1e-9 {
		t.Errorf("radius ratio = %v, want 10", small/large)
	}
}

func TestSamplesForRadiusInverse(t *testing.T) {
	n := SamplesForRadius(0.01, 0.95)
	r := hoeffdingRadius(n, 0.95)
	if r > 0.01 {
		t.Errorf("n = %d gives radius %v > 0.01", n, r)
	}
	// One fewer sample should not suffice (up to ceiling slack).
	if prev := hoeffdingRadius(n-10, 0.95); prev <= 0.0099 {
		t.Errorf("SamplesForRadius overshoots badly: %v", prev)
	}
}

// TestQueryTIDPlanConverges decides sampled worlds through a prepared plan
// (0/1 lanes of the batched DP) and must converge like the direct sampler.
func TestQueryTIDPlanConverges(t *testing.T) {
	tid := pdb.NewTID()
	tid.AddFact(0.5, "R", "a")
	tid.AddFact(0.7, "S", "a", "b")
	tid.AddFact(0.4, "T", "b")
	q := rel.HardQuery()
	exact := tid.QueryProbabilityEnumeration(q)
	pl, _, err := core.PrepareTID(tid, q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Uneven n exercises the final partial batch.
	est, err := QueryTIDPlan(tid, pl, 5000+17, 0.99, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.P-exact) > est.Radius {
		t.Errorf("estimate %s misses exact %v", est, exact)
	}
}

// TestQueryPCPlanConverges does the same on a pc-instance with correlated
// annotations, where the plan decides worlds the CQ matcher would get from
// shared events.
func TestQueryPCPlanConverges(t *testing.T) {
	c := pdb.NewCInstance()
	c.AddFact(logic.Var("e"), "R", "a")
	c.AddFact(logic.Not(logic.Var("e")), "R", "b")
	p := logic.Prob{"e": 0.3}
	q := rel.NewCQ(rel.NewAtom("R", rel.C("a")))
	pl, err := core.PrepareCQ(c, q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := QueryPCPlan(c, p, pl, 20000, 0.99, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.P-0.3) > est.Radius {
		t.Errorf("estimate %s misses 0.3", est)
	}
}

func TestDeterministicSeeding(t *testing.T) {
	tid := pdb.NewTID()
	tid.AddFact(0.5, "R", "a")
	q := rel.NewCQ(rel.NewAtom("R", rel.V("x")))
	a := QueryTID(tid, q, 1000, 0.95, rand.New(rand.NewSource(1)))
	b := QueryTID(tid, q, 1000, 0.95, rand.New(rand.NewSource(1)))
	if a.P != b.P {
		t.Error("same seed must give the same estimate")
	}
}
