package server

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/logic"
	"repro/internal/obs"
)

// planCache is the LRU view cache of the service, keyed by the normalized
// query fingerprint (core.FingerprintCQ): textually different but identical
// CQs share one registered view, so the Prepare cost of a query shape is
// paid once no matter how many clients ask it.
//
// Lookups are single-flight: concurrent misses on one fingerprint block on
// a single RegisterView call instead of compiling the same plan N times.
// Eviction unregisters the view from the store (via onEvict) so the store
// stops maintaining cold query shapes under updates.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry
	order   *list.List // front = most recently used; values are *cacheEntry
	onEvict func(*incr.View)

	hits, misses, evictions uint64

	// optional obs handles (nil until instrument); mHit counts every reuse,
	// mCoalesce additionally counts the reuses that joined a still-in-flight
	// registration — the single-flight savings made visible.
	mHit, mMiss, mEvict, mCoalesce *obs.Counter
}

// instrument attaches the metric handles the cache records its events on.
// Call before serving traffic.
func (pc *planCache) instrument(hit, miss, evict, coalesce *obs.Counter) {
	pc.mu.Lock()
	pc.mHit, pc.mMiss, pc.mEvict, pc.mCoalesce = hit, miss, evict, coalesce
	pc.mu.Unlock()
}

type cacheEntry struct {
	fp    string
	elem  *list.Element
	ready chan struct{} // closed once view/err are set
	view  *incr.View
	err   error
}

func newPlanCache(max int, onEvict func(*incr.View)) *planCache {
	if max < 1 {
		max = 1
	}
	return &planCache{
		max:     max,
		entries: map[string]*cacheEntry{},
		order:   list.New(),
		onEvict: onEvict,
	}
}

// get returns the cached view for fp, building it with build on a miss.
// hit reports whether a cached (or in-flight) entry was reused. A build
// failure is not cached: the entry is removed so the next request retries.
func (pc *planCache) get(fp string, build func() (*incr.View, error)) (v *incr.View, hit bool, err error) {
	pc.mu.Lock()
	if e, ok := pc.entries[fp]; ok {
		pc.order.MoveToFront(e.elem)
		pc.hits++
		if pc.mHit != nil {
			pc.mHit.Inc()
			select {
			case <-e.ready:
			default:
				// the entry is still building: this request coalesced onto an
				// in-flight registration rather than finding a finished one.
				pc.mCoalesce.Inc()
			}
		}
		pc.mu.Unlock()
		<-e.ready
		return e.view, true, e.err
	}
	e := &cacheEntry{fp: fp, ready: make(chan struct{})}
	e.elem = pc.order.PushFront(e)
	pc.entries[fp] = e
	pc.misses++
	if pc.mMiss != nil {
		pc.mMiss.Inc()
	}
	evicted := pc.evictLocked()
	pc.mu.Unlock()

	for _, old := range evicted {
		pc.onEvict(old)
	}

	e.view, e.err = build()
	close(e.ready)
	if e.err != nil {
		pc.mu.Lock()
		// Only remove if the entry is still ours (it is: failed entries are
		// only removed here, and fp collisions wait on ready).
		if pc.entries[fp] == e {
			delete(pc.entries, fp)
			pc.order.Remove(e.elem)
		}
		pc.mu.Unlock()
	}
	return e.view, false, e.err
}

// evictLocked trims the cache to max entries, skipping entries whose build
// is still in flight (their view is not yet known). Returns the views to
// unregister, to be released outside the lock.
func (pc *planCache) evictLocked() []*incr.View {
	var out []*incr.View
	for elem := pc.order.Back(); elem != nil && pc.order.Len() > pc.max; {
		e := elem.Value.(*cacheEntry)
		prev := elem.Prev()
		select {
		case <-e.ready:
			if e.view != nil {
				out = append(out, e.view)
			}
			delete(pc.entries, e.fp)
			pc.order.Remove(elem)
			pc.evictions++
			if pc.mEvict != nil {
				pc.mEvict.Inc()
			}
		default:
			// still building; never evict an in-flight entry
		}
		elem = prev
	}
	return out
}

// stats returns the cumulative hit/miss/eviction counters and current size.
func (pc *planCache) stats() (hits, misses, evictions uint64, size int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses, pc.evictions, pc.order.Len()
}

// frozenEntry is one cached frozen-plan snapshot for the /batch and
// assignment-override paths: a component-sharded plan prepared on the
// store's live facts as of commit seq, its base probability map, and the
// store-id → event index used to apply request-supplied overrides.
type frozenEntry struct {
	seq     uint64
	sp      *core.ShardedPlan
	base    logic.Prob
	eventOf map[int]logic.Event // store fact id -> event of the snapshot plan
}

// frozenCache caches frozen snapshot plans per fingerprint. Entries are
// valid only for the commit sequence they were prepared at — a store commit
// invalidates them, so a hit requires seq to match. Builds are single-flight
// per fingerprint. The cache is bounded by max; stale or excess entries are
// dropped on insert.
type frozenCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*frozenSlot
	hits    uint64
	misses  uint64

	mHit, mMiss *obs.Counter // optional obs handles (nil until instrument)
}

// instrument attaches the metric handles hit/miss events are recorded on.
func (fc *frozenCache) instrument(hit, miss *obs.Counter) {
	fc.mu.Lock()
	fc.mHit, fc.mMiss = hit, miss
	fc.mu.Unlock()
}

type frozenSlot struct {
	mu    sync.Mutex // serializes rebuilds of this fingerprint
	entry *frozenEntry
	pins  int // gets in flight on this slot (guarded by frozenCache.mu)
}

func newFrozenCache(max int) *frozenCache {
	if max < 1 {
		max = 1
	}
	return &frozenCache{max: max, entries: map[string]*frozenSlot{}}
}

// get returns the frozen snapshot for fp at commit seq, building it with
// build on a miss or when the cached snapshot is stale. hit reports whether
// a still-fresh entry was reused.
func (fc *frozenCache) get(fp string, seq uint64, build func() (*frozenEntry, error)) (e *frozenEntry, hit bool, err error) {
	fc.mu.Lock()
	slot, ok := fc.entries[fp]
	if !ok {
		slot = &frozenSlot{}
		fc.entries[fp] = slot
		// Bound the table: drop an arbitrary other entry when over budget
		// (snapshot plans are cheap to rebuild relative to serving value, so
		// LRU precision is not worth a second list here). A pinned slot —
		// one some get() has fetched and not yet released — is never
		// dropped: deleting it would let a concurrent request for the same
		// fingerprint open a fresh slot and run a duplicate Prepare,
		// breaking the single-flight guarantee.
		for key, other := range fc.entries {
			if len(fc.entries) <= fc.max {
				break
			}
			if key != fp && other.pins == 0 {
				delete(fc.entries, key)
			}
		}
	}
	slot.pins++
	fc.mu.Unlock()
	defer func() {
		fc.mu.Lock()
		slot.pins--
		fc.mu.Unlock()
	}()

	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.entry != nil && slot.entry.seq == seq {
		fc.mu.Lock()
		fc.hits++
		if fc.mHit != nil {
			fc.mHit.Inc()
		}
		fc.mu.Unlock()
		return slot.entry, true, nil
	}
	fc.mu.Lock()
	fc.misses++
	if fc.mMiss != nil {
		fc.mMiss.Inc()
	}
	fc.mu.Unlock()
	// slot.mu is a per-fingerprint build lock: holding it across build is the
	// singleflight — concurrent getters of the same snapshot wait for one
	// build instead of duplicating it. The store lock is not held here.
	e, err = build() //pdblint:allow lockcallback per-slot singleflight holds slot.mu across build by design
	if err != nil {
		return nil, false, err
	}
	slot.entry = e
	return e, false, nil
}

func (fc *frozenCache) stats() (hits, misses uint64, size int) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.hits, fc.misses, len(fc.entries)
}
