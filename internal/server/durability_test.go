package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/incr"
	"repro/internal/wal"
)

func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// durableServer wires a test server to a WAL over an in-memory backend and
// writes the baseline snapshot, mirroring pdbd's fresh-data-dir path.
func durableServer(t *testing.T, cfg Config) (*Server, *wal.MemBackend, *wal.WAL) {
	t.Helper()
	mem := wal.NewMemBackend()
	w, rec, err := wal.Open(wal.Options{Backend: mem, BatchSize: 8, MaxWait: 0, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 0 {
		t.Fatalf("empty backend recovered seq %d", rec.Seq)
	}
	st, err := incr.NewStore(rstTID(0.9, 0.8, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	s := NewFromStore(st, cfg)
	s.AttachWAL(w)
	if err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	return s, mem, w
}

// TestPartialBatchSurvivesCrash pins the 422 contract end-to-end through a
// crash: a batch whose third update is invalid commits its 2-update prefix
// (HTTP 422, applied=2), the server dies without warning, and recovery
// reproduces exactly the partially-applied state — the prefix present, the
// rejected suffix absent, the same commit sequence.
func TestPartialBatchSurvivesCrash(t *testing.T) {
	s, mem, w := durableServer(t, Config{})
	ts := newHTTPServer(t, s)

	// A clean commit first, then the partial batch.
	var up updateResponse
	resp := postJSON(t, ts.URL+"/update", map[string]any{
		"updates": []map[string]any{{"op": "set", "id": 0, "p": 0.55}},
	}, &up)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean update: %d", resp.StatusCode)
	}

	var partial updateResponse
	resp = postJSON(t, ts.URL+"/update", map[string]any{
		"updates": []map[string]any{
			{"op": "set", "id": 1, "p": 0.25},
			{"op": "insert", "rel": "R", "args": []string{"zz"}, "p": 0.4},
			{"op": "set", "id": 9999, "p": 0.5}, // no such fact: stops the batch
			{"op": "set", "id": 2, "p": 0.1},    // never applied
		},
	}, &partial)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("partial batch: status %d, want 422", resp.StatusCode)
	}
	if partial.Applied != 2 {
		t.Fatalf("partial batch applied %d, want 2", partial.Applied)
	}
	if partial.Error == "" {
		t.Fatal("422 response carries no error")
	}

	// Live state the 422 left behind, then crash.
	var q queryResponse
	postJSON(t, ts.URL+"/query", map[string]any{"query": "R(?x) & S(?x, ?y) & T(?y)"}, &q)
	wantSeq := s.Store().Seq()
	if q.Seq != wantSeq || partial.Seq != wantSeq {
		t.Fatalf("seqs diverge: query %d, partial %d, store %d", q.Seq, partial.Seq, wantSeq)
	}
	w.Kill()

	rec, err := wal.Replay(mem)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rec.Seq != wantSeq {
		t.Fatalf("recovered seq %d, want %d", rec.Seq, wantSeq)
	}
	st := rec.Store
	if p, _ := st.Prob(1); p != 0.25 {
		t.Errorf("prefix set lost: fact 1 at %v, want 0.25", p)
	}
	if p, _ := st.Prob(2); p != 0.7 {
		t.Errorf("rejected suffix applied: fact 2 at %v, want its original 0.7", p)
	}
	if id := st.Len(); id != 4 {
		t.Errorf("recovered %d slots, want 4 (3 seeded + 1 inserted)", id)
	}

	// The recovered server answers the same query with the same number.
	s2 := NewFromStore(st, Config{})
	ts2 := newHTTPServer(t, s2)
	var q2 queryResponse
	postJSON(t, ts2.URL+"/query", map[string]any{"query": "R(?x) & S(?x, ?y) & T(?y)"}, &q2)
	if d := math.Abs(q2.Probability - q.Probability); d > 1e-12 {
		t.Fatalf("recovered answer %v, pre-crash %v (|Δ|=%.3g)", q2.Probability, q.Probability, d)
	}
}

// TestDurabilityInStatsAndHealth checks /healthz and /statsz expose the
// durability state, and that Shutdown seals the log so a restart replays
// nothing.
func TestDurabilityInStatsAndHealth(t *testing.T) {
	s, mem, _ := durableServer(t, Config{})
	ts := newHTTPServer(t, s)

	var up updateResponse
	postJSON(t, ts.URL+"/update", map[string]any{
		"updates": []map[string]any{{"op": "set", "id": 0, "p": 0.5}},
	}, &up)

	var health map[string]any
	resp := getJSON(t, ts.URL+"/healthz", &health)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if health["durable"] != true {
		t.Errorf("healthz durable=%v", health["durable"])
	}
	if got := health["synced_seq"]; got != float64(up.Seq) {
		t.Errorf("healthz synced_seq=%v, want %v (an acked commit is synced under fsync=always)", got, up.Seq)
	}
	st := s.Stats()
	if st.Durability == nil {
		t.Fatal("statsz carries no durability block")
	}
	if st.Durability.SyncedSeq != up.Seq || st.Durability.Policy != "always" {
		t.Errorf("durability stats %+v", st.Durability)
	}
	if st.Durability.Appends == 0 || st.Durability.LogBytes == 0 {
		t.Errorf("durability counters empty: %+v", st.Durability)
	}

	if !s.Shutdown(time.Second) {
		t.Fatal("shutdown did not complete cleanly")
	}
	rec, err := wal.Replay(mem)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 {
		t.Errorf("planned restart would replay %d records, want 0", rec.Records)
	}
	if rec.Seq != up.Seq {
		t.Errorf("sealed at seq %d, want %d", rec.Seq, up.Seq)
	}
}
