package server

// The ingest batcher coalesces concurrent /update requests into shared
// store commits, the same group-commit shape the WAL uses for fsyncs: while
// one ApplyBatch holds the store's write lock, later arrivals queue behind
// the leader goroutine instead of serializing one commit each, and the next
// flush carries them all through a single delta pass. Per-caller semantics
// are preserved exactly — each caller's updates stay a contiguous slice of
// the merged batch, in arrival order, and a stage failure is attributed to
// the caller owning the failing update: callers fully inside the committed
// prefix succeed, the owner sees its own partial prefix plus the error, and
// the untouched suffix callers are re-flushed as a fresh batch so a bad
// update in one request never poisons another.

import (
	"sync/atomic"
	"time"

	"repro/internal/incr"
)

// ingestResult is what one caller's slice of a merged batch came to: the
// same triple ApplyBatchN would have returned for the slice alone.
type ingestResult struct {
	applied int
	seq     uint64
	err     error
}

// ingestCall is one caller's update batch queued for a shared commit.
type ingestCall struct {
	us   []incr.Update
	done chan ingestResult
}

// ingestBatcher owns the leader goroutine that merges queued calls and
// drives them through ApplyBatchN.
type ingestBatcher struct {
	store   *incr.Store
	maxSize int           // max updates per merged flush
	maxWait time.Duration // 0: coalesce only what queued behind the in-flight commit
	calls   chan *ingestCall
	stop    <-chan struct{} // the server's drain channel

	metrics *serverMetrics

	flushes   atomic.Uint64 // merged commits driven
	coalesced atomic.Uint64 // requests that shared their commit with another
}

func newIngestBatcher(store *incr.Store, maxSize int, maxWait time.Duration, stop <-chan struct{}, m *serverMetrics) *ingestBatcher {
	b := &ingestBatcher{
		store:   store,
		maxSize: maxSize,
		maxWait: maxWait,
		// The channel is unbuffered on purpose: a send succeeds only while
		// the leader is alive to receive it, so a caller racing the drain
		// falls through to its direct-apply path instead of parking a call
		// nobody will ever flush.
		calls:   make(chan *ingestCall),
		stop:    stop,
		metrics: m,
	}
	go b.run()
	return b
}

// submit hands one caller's updates to the leader and waits for its share of
// the merged commit. After the server starts draining (or if the leader is
// mid-exit), the updates are applied directly — correctness never depends on
// the batcher being alive, only throughput does.
func (b *ingestBatcher) submit(us []incr.Update) ingestResult {
	c := &ingestCall{us: us, done: make(chan ingestResult, 1)}
	select {
	case b.calls <- c:
		return <-c.done
	case <-b.stop:
		applied, seq, err := b.store.ApplyBatchN(us)
		return ingestResult{applied: applied, seq: seq, err: err}
	}
}

// run is the leader loop: take the first queued call, gather more until the
// window closes (size cap hit, max-wait elapsed, or — with no wait window —
// the queue momentarily empty), then flush the batch as one commit.
func (b *ingestBatcher) run() {
	for {
		select {
		case c := <-b.calls:
			b.flush(b.gather(c))
		case <-b.stop:
			// Serve the callers already blocked in submit, then exit; later
			// arrivals take submit's direct path.
			for {
				select {
				case c := <-b.calls:
					b.flush([]*ingestCall{c})
				default:
					return
				}
			}
		}
	}
}

// gather collects calls behind first until the batching window closes.
func (b *ingestBatcher) gather(first *ingestCall) []*ingestCall {
	batch := []*ingestCall{first}
	n := len(first.us)
	var timer *time.Timer
	var deadline <-chan time.Time
	if b.maxWait > 0 {
		timer = time.NewTimer(b.maxWait)
		deadline = timer.C
		defer timer.Stop()
	}
	for n < b.maxSize {
		select {
		case c := <-b.calls:
			batch = append(batch, c)
			n += len(c.us)
			continue
		default:
		}
		if deadline == nil {
			return batch // no wait window: take only what already queued
		}
		select {
		case c := <-b.calls:
			batch = append(batch, c)
			n += len(c.us)
		case <-deadline:
			return batch
		case <-b.stop:
			return batch
		}
	}
	return batch
}

// flush drives a merged batch through one ApplyBatchN and distributes the
// outcome to each caller's slice. ApplyBatchN's contract — exactly `applied`
// leading updates landed, the rest never ran — maps onto the callers as: all
// callers before the failure point succeeded, the owner of the failing
// update gets its partial count and the error, and the callers after it are
// re-flushed untouched (their own merged commit, same semantics, no shared
// blame).
func (b *ingestBatcher) flush(batch []*ingestCall) {
	for len(batch) > 0 {
		merged := batch[0].us
		if len(batch) > 1 {
			merged = make([]incr.Update, 0, totalUpdates(batch))
			for _, c := range batch {
				merged = append(merged, c.us...)
			}
		}
		b.flushes.Add(1)
		if len(batch) > 1 {
			b.coalesced.Add(uint64(len(batch)))
			b.metrics.ingestCoalesced.Add(uint64(len(batch)))
		}
		b.metrics.ingestBatchSize.Observe(float64(len(merged)))
		applied, seq, err := b.store.ApplyBatchN(merged)
		if err == nil {
			for _, c := range batch {
				c.done <- ingestResult{applied: len(c.us), seq: seq, err: nil}
			}
			return
		}
		// The update at merged index `applied` failed; find its owner.
		off := 0
		for i, c := range batch {
			if applied < off+len(c.us) {
				c.done <- ingestResult{applied: applied - off, seq: seq, err: err}
				batch = batch[i+1:] // the untouched suffix flushes afresh
				break
			}
			c.done <- ingestResult{applied: len(c.us), seq: seq, err: nil}
			off += len(c.us)
		}
	}
}

func totalUpdates(batch []*ingestCall) int {
	n := 0
	for _, c := range batch {
		n += len(c.us)
	}
	return n
}

// stats snapshots the batcher's coalescing counters.
func (b *ingestBatcher) statsSnapshot() (flushes, coalesced uint64) {
	return b.flushes.Load(), b.coalesced.Load()
}
