package server

// The server's metric bundle: every handle the request path records into,
// resolved once at construction so handlers never touch the registry's maps.
// Label cardinality is fixed here by construction — endpoints and cache
// events are enums, HTTP codes are drawn from the small set the handlers can
// produce (anything else lands under code="other"). Request-derived strings
// (fingerprints, normalized queries) go to the slow-request log as span
// attributes, never into labels.

import (
	"strconv"

	"repro/internal/obs"
)

// the three instrumented JSON endpoints, as label values.
const (
	epQuery  = "query"
	epBatch  = "batch"
	epUpdate = "update"
)

//pdblint:labelenum
var endpoints = []string{epQuery, epBatch, epUpdate}

// statusCodes are the response codes the handlers emit; the exposition keeps
// one series per (endpoint, code) pair so the label space is 3 × len(this).
//
//pdblint:labelenum
var statusCodes = []int{200, 400, 404, 413, 422, 500, 503}

type serverMetrics struct {
	reg *obs.Registry

	// per-endpoint request counters and latency histograms
	requests map[string]*obs.Counter
	latency  map[string]*obs.Histogram
	// responses[endpoint][code] — fixed map, read-only after construction.
	responses map[string]map[int]*obs.Counter

	// plan-cache events: hit/miss/evict plus coalesce (a hit that joined an
	// in-flight registration instead of finding a finished one).
	cacheHit, cacheMiss, cacheEvict, cacheCoalesce *obs.Counter
	frozenHit, frozenMiss                          *obs.Counter

	// preprocessing vs evaluation split (the Prepare-once economics).
	prepareView    *obs.Histogram // live-view registrations
	prepareFrozen  *obs.Histogram // frozen snapshot plan builds
	evalSeconds    *obs.Histogram // frozen-plan evaluations (single + batch)
	shardEvalGauge *obs.Histogram // per-shard DP time inside an evaluation

	batchLanes *obs.Histogram

	watchDropped *obs.Counter

	// ingest batcher: requests that shared a merged commit, and the size
	// (in updates) of every merged flush.
	ingestCoalesced *obs.Counter
	ingestBatchSize *obs.Histogram

	slowRequests *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		reg:       reg,
		requests:  map[string]*obs.Counter{},
		latency:   map[string]*obs.Histogram{},
		responses: map[string]map[int]*obs.Counter{},
	}
	for _, ep := range endpoints {
		m.requests[ep] = reg.Counter("pdbd_http_requests_total",
			"requests admitted per endpoint", "endpoint", ep)
		m.latency[ep] = reg.Histogram("pdbd_http_request_seconds",
			"end-to-end request latency per endpoint",
			obs.LatencyBuckets(), "endpoint", ep)
		byCode := map[int]*obs.Counter{}
		for _, code := range statusCodes {
			byCode[code] = reg.Counter("pdbd_http_responses_total",
				"responses per endpoint and status code",
				"endpoint", ep, "code", strconv.Itoa(code))
		}
		byCode[0] = reg.Counter("pdbd_http_responses_total",
			"responses per endpoint and status code",
			"endpoint", ep, "code", "other")
		m.responses[ep] = byCode
	}
	m.cacheHit = reg.Counter("pdbd_plan_cache_events_total",
		"live-view plan cache events", "event", "hit")
	m.cacheMiss = reg.Counter("pdbd_plan_cache_events_total",
		"live-view plan cache events", "event", "miss")
	m.cacheEvict = reg.Counter("pdbd_plan_cache_events_total",
		"live-view plan cache events", "event", "evict")
	m.cacheCoalesce = reg.Counter("pdbd_plan_cache_events_total",
		"live-view plan cache events", "event", "coalesce")
	m.frozenHit = reg.Counter("pdbd_frozen_cache_events_total",
		"frozen snapshot plan cache events", "event", "hit")
	m.frozenMiss = reg.Counter("pdbd_frozen_cache_events_total",
		"frozen snapshot plan cache events", "event", "miss")

	m.prepareView = reg.Histogram("pdbd_prepare_seconds",
		"preprocessing time per plan build", obs.LatencyBuckets(), "kind", "view")
	m.prepareFrozen = reg.Histogram("pdbd_prepare_seconds",
		"preprocessing time per plan build", obs.LatencyBuckets(), "kind", "frozen")
	m.evalSeconds = reg.Histogram("pdbd_eval_seconds",
		"frozen-plan evaluation time (single and batched)", obs.LatencyBuckets())
	m.shardEvalGauge = reg.Histogram("pdbd_shard_eval_seconds",
		"per-shard DP time inside a frozen-plan evaluation", obs.LatencyBuckets())

	m.batchLanes = reg.Histogram("pdbd_batch_lanes",
		"assignments carried per /batch request", obs.ExpBuckets(1, 2, 12))

	m.watchDropped = reg.Counter("pdbd_watch_dropped_total",
		"watch events dropped on slow subscribers")

	m.ingestCoalesced = reg.Counter("pdbd_ingest_coalesced_total",
		"update requests that shared a merged ingest commit")
	m.ingestBatchSize = reg.Histogram("pdbd_ingest_batch_size",
		"updates carried per merged ingest flush", obs.ExpBuckets(1, 2, 12))

	m.slowRequests = reg.Counter("pdbd_slow_requests_total",
		"requests exceeding the slow-query threshold")
	return m
}

// response resolves the counter for an (endpoint, code) pair; unexpected
// codes share the "other" series rather than minting new label values.
func (m *serverMetrics) response(ep string, code int) *obs.Counter {
	byCode := m.responses[ep]
	if c, ok := byCode[code]; ok {
		return c
	}
	return byCode[0]
}

// registerStoreGauges wires the pull gauges that mirror live store state.
func (s *Server) registerStoreGauges() {
	reg := s.metrics.reg
	reg.GaugeFunc("pdbd_store_seq",
		"commit sequence of the live store",
		func() float64 { return float64(s.store.Seq()) })
	reg.GaugeFunc("pdbd_store_facts",
		"live facts in the store",
		func() float64 { return float64(s.store.NumLive()) })
	reg.GaugeFunc("pdbd_store_views",
		"registered live views",
		func() float64 { return float64(s.store.NumViews()) })
	reg.GaugeFunc("pdbd_http_inflight",
		"requests currently being served",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("pdbd_watch_subscribers",
		"open /watch streams",
		func() float64 { return float64(s.nWatchers.Load()) })
	reg.GaugeFunc("pdbd_plan_cache_size",
		"entries in the live-view plan cache",
		func() float64 { _, _, _, n := s.cache.stats(); return float64(n) })
}

// registerWALGauges mirrors the attached WAL's counters as pull gauges (the
// WAL's own histograms — fsync latency, flush batch size — are registered by
// wal.NewMetrics on the same registry).
func (s *Server) registerWALGauges() {
	reg := s.metrics.reg
	reg.GaugeFunc("pdbd_wal_synced_seq",
		"highest commit sequence made durable",
		func() float64 { return float64(s.wal.Stats().SyncedSeq) })
	reg.GaugeFunc("pdbd_wal_queue_depth",
		"commits appended but not yet flushed",
		func() float64 { return float64(s.wal.Stats().QueueDepth) })
	reg.GaugeFunc("pdbd_wal_snapshot_seq",
		"commit sequence of the newest snapshot",
		func() float64 { return float64(s.wal.Stats().SnapshotSeq) })
	reg.GaugeFunc("pdbd_wal_log_bytes",
		"bytes in the live log segment",
		func() float64 { return float64(s.wal.Stats().LogBytes) })
}
