package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/wal"
)

// scrapeMetrics fetches /metrics and returns every sample keyed by its full
// series name (metric name + label block, exactly as exposed).
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndToEnd drives every instrumented path of a durable server —
// live queries (miss then hit), a frozen-plan assignment query, a batch, a
// durable update — and asserts the exposition carries the series the
// acceptance criteria name, with sane values.
func TestMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	mem := wal.NewMemBackend()
	w, rec, err := wal.Open(wal.Options{
		Backend: mem, BatchSize: 8, Sync: wal.SyncAlways,
		Metrics: wal.NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 0 {
		t.Fatalf("empty backend recovered seq %d", rec.Seq)
	}
	st, err := incr.NewStore(rstTID(0.9, 0.8, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	s := NewFromStore(st, Config{Metrics: reg})
	s.AttachWAL(w)
	if err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)

	q := map[string]any{"query": "R(?x) & S(?x,?y) & T(?y)"}
	var qr queryResponse
	postJSON(t, ts.URL+"/query", q, &qr) // miss: registers the view
	postJSON(t, ts.URL+"/query", q, &qr) // hit
	if !qr.Cached {
		t.Fatal("second query not served from cache")
	}
	postJSON(t, ts.URL+"/query", map[string]any{
		"query": "R(?x) & S(?x,?y) & T(?y)", "assignment": map[string]float64{"0": 0.5},
	}, &qr)
	postJSON(t, ts.URL+"/batch", map[string]any{
		"query":       "R(?x) & S(?x,?y) & T(?y)",
		"assignments": []map[string]float64{{"0": 0.1}, {"0": 0.9}},
	}, nil)
	postJSON(t, ts.URL+"/update", map[string]any{
		"updates": []map[string]any{{"op": "set", "id": 0, "p": 0.55}},
	}, nil)
	postJSON(t, ts.URL+"/query", map[string]any{"query": "not a query"}, nil) // 400

	m := scrapeMetrics(t, ts.URL)

	// The acceptance criteria: latency histograms for all three endpoints
	// and the WAL fsync histogram.
	wantPositive := []string{
		`pdbd_http_request_seconds_count{endpoint="query"}`,
		`pdbd_http_request_seconds_sum{endpoint="query"}`,
		`pdbd_http_request_seconds_count{endpoint="batch"}`,
		`pdbd_http_request_seconds_count{endpoint="update"}`,
		`wal_fsync_seconds_count`,
		`wal_fsync_seconds_sum`,
		`wal_flush_records_count`,
		`wal_snapshot_seconds_count`,
		`pdbd_http_requests_total{endpoint="query"}`,
		`pdbd_http_responses_total{endpoint="query",code="200"}`,
		`pdbd_http_responses_total{endpoint="query",code="400"}`,
		`pdbd_plan_cache_events_total{event="hit"}`,
		`pdbd_plan_cache_events_total{event="miss"}`,
		`pdbd_frozen_cache_events_total{event="miss"}`,
		`pdbd_prepare_seconds_count{kind="view"}`,
		`pdbd_prepare_seconds_count{kind="frozen"}`,
		`pdbd_eval_seconds_count`,
		`pdbd_shard_eval_seconds_count`,
		`pdbd_batch_lanes_count`,
		`incr_commits_total`,
		`incr_commit_seconds_count`,
		`pdbd_store_facts`,
		`pdbd_store_views`,
		`pdbd_wal_synced_seq`,
	}
	for _, name := range wantPositive {
		v, ok := m[name]
		if !ok {
			t.Errorf("series %s missing from exposition", name)
			continue
		}
		if v <= 0 {
			t.Errorf("series %s = %v, want > 0", name, v)
		}
	}
	if got := m[`pdbd_http_request_seconds_count{endpoint="query"}`]; got != 4 {
		t.Errorf("query request count = %v, want 4", got)
	}
	if got := m[`pdbd_batch_lanes_sum`]; got != 2 {
		t.Errorf("batch lanes sum = %v, want 2", got)
	}
	if got := m[`pdbd_store_seq`]; got != float64(s.Store().Seq()) {
		t.Errorf("pdbd_store_seq = %v, store says %d", got, s.Store().Seq())
	}
	// The cumulative +Inf bucket of a histogram equals its count.
	if inf, cnt := m[`pdbd_http_request_seconds_bucket{endpoint="query",le="+Inf"}`],
		m[`pdbd_http_request_seconds_count{endpoint="query"}`]; inf != cnt {
		t.Errorf("+Inf bucket %v != count %v", inf, cnt)
	}

	// The /statsz quantile view is derived from the same histograms.
	stz := s.Stats()
	lat, ok := stz.Latency[epQuery]
	if !ok || lat.Count != 4 {
		t.Fatalf("statsz latency[query] = %+v, want count 4", lat)
	}
	if lat.P50us <= 0 || lat.P99us < lat.P50us {
		t.Fatalf("statsz quantiles not ordered: %+v", lat)
	}
	if sn, ok := s.LatencySnapshot(epQuery); !ok || sn.Count != 4 {
		t.Fatalf("LatencySnapshot(query) count = %d, want 4", sn.Count)
	}
	if _, ok := s.LatencySnapshot("nope"); ok {
		t.Fatal("LatencySnapshot accepted an unknown endpoint")
	}
}

// TestSlowQueryLog sets a 1ns threshold so every request is slow, then
// checks the structured record: endpoint, total, and a stage breakdown whose
// durations sum to within 10% of the logged end-to-end latency (the span
// contract the tracer guarantees by construction).
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s, err := New(rstTID(0.9, 0.8, 0.7), Config{SlowQuery: time.Nanosecond, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)

	postJSON(t, ts.URL+"/query", map[string]any{"query": "R(?x) & S(?x,?y) & T(?y)"}, nil)
	postJSON(t, ts.URL+"/query", map[string]any{
		"query": "R(?x) & S(?x,?y) & T(?y)", "assignment": map[string]float64{"0": 0.5},
	}, nil)
	postJSON(t, ts.URL+"/update", map[string]any{
		"updates": []map[string]any{{"op": "set", "id": 0, "p": 0.5}},
	}, nil)

	type record struct {
		Msg     string  `json:"msg"`
		Level   string  `json:"level"`
		ReqID   uint64  `json:"request_id"`
		Endpt   string  `json:"endpoint"`
		Code    int     `json:"code"`
		TotalUs float64 `json:"total_us"`
		Stages  string  `json:"stages"`
		Path    string  `json:"path"`
		Cached  *bool   `json:"cached"`
	}
	var slow []record
	dec := json.NewDecoder(&buf)
	for {
		var r record
		if err := dec.Decode(&r); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if r.Msg == "slow request" {
			slow = append(slow, r)
		}
	}
	if len(slow) != 3 {
		t.Fatalf("got %d slow-request records, want 3", len(slow))
	}
	wantEndpoints := map[string]bool{epQuery: false, epUpdate: false}
	for _, r := range slow {
		if r.Level != "WARN" {
			t.Errorf("slow record level %q, want WARN", r.Level)
		}
		if r.Code != 200 {
			t.Errorf("slow record code %d, want 200", r.Code)
		}
		if r.ReqID == 0 {
			t.Error("slow record has no request id")
		}
		if r.TotalUs <= 0 || r.Stages == "" {
			t.Fatalf("degenerate slow record: %+v", r)
		}
		wantEndpoints[r.Endpt] = true

		// Stage durations must tile the request: sum within 10% of total.
		var sum float64
		for _, part := range strings.Fields(r.Stages) {
			name, val, ok := strings.Cut(part, "=")
			if !ok || name == "" || !strings.HasSuffix(val, "us") {
				t.Fatalf("unparseable stage %q in %q", part, r.Stages)
			}
			us, err := strconv.ParseFloat(strings.TrimSuffix(val, "us"), 64)
			if err != nil {
				t.Fatalf("stage %q: %v", part, err)
			}
			sum += us
		}
		if rel := math.Abs(sum-r.TotalUs) / r.TotalUs; rel > 0.10 {
			t.Errorf("endpoint %s: stages sum %.1fus vs total %.1fus (off %.1f%%)",
				r.Endpt, sum, r.TotalUs, 100*rel)
		}
	}
	for ep, seen := range wantEndpoints {
		if !seen {
			t.Errorf("no slow record for endpoint %s", ep)
		}
	}
	// The query records carry the handler's span attributes.
	for _, r := range slow {
		if r.Endpt == epQuery && r.Path == "" {
			t.Errorf("query slow record missing path attr: %+v", r)
		}
	}
	if got := s.Stats().SlowRequests; got != 3 {
		t.Errorf("statsz slow_requests = %d, want 3", got)
	}
}

// TestMetricsReachableWhileDraining: scrapers keep working through a drain,
// like /healthz does.
func TestMetricsReachableWhileDraining(t *testing.T) {
	s, err := New(rstTID(0.9, 0.8, 0.7), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)
	postJSON(t, ts.URL+"/query", map[string]any{"query": "R(?x)"}, nil)
	if !s.Shutdown(time.Second) {
		t.Fatal("shutdown did not drain")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics during drain: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"query":"R(?x)"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/query during drain: status %d, want 503", resp.StatusCode)
	}
}
